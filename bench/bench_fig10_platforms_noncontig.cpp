// Figure 10: non-contiguous datatype communication across platforms —
// bandwidth of the strided vector (nc) against the equivalent contiguous
// transfer (c). SCI-MPICH rows (M-S, M-s) come from the full simulator;
// Table 1 comparator platforms from their models (plat/platform_model.hpp).
#include <benchmark/benchmark.h>

#include "common.hpp"
#include "plat/platform_model.hpp"

namespace {

using namespace scimpi;
using namespace scimpi::bench;
using plat::PlatformId;
using plat::PlatformModel;

const std::vector<PlatformId> kPlatforms = plat::all_platforms();

void BM_PlatformNoncontig(benchmark::State& state) {
    const auto plat_idx = static_cast<std::size_t>(state.range(0));
    const auto block = static_cast<std::size_t>(state.range(1));
    PlatformModel m(kPlatforms[plat_idx]);
    double bw = 0.0;
    for (auto _ : state) {
        bw = m.transfer_bandwidth(kNoncontigTotal, block);
        state.SetIterationTime(to_seconds(m.transfer_time(kNoncontigTotal, block)));
    }
    state.counters["MiB/s"] = bw;
    state.counters["efficiency"] = m.noncontig_efficiency(kNoncontigTotal, block);
    state.SetLabel(m.platform().code);
}

void sweep(benchmark::internal::Benchmark* b) {
    for (std::size_t p = 0; p < kPlatforms.size(); ++p)
        for (std::size_t block = 64; block <= 64_KiB; block *= 16)
            b->Args({static_cast<std::int64_t>(p), static_cast<std::int64_t>(block)});
    b->UseManualTime()->Iterations(1)->Unit(benchmark::kMicrosecond);
}

BENCHMARK(BM_PlatformNoncontig)->Apply(sweep);

}  // namespace

int main(int argc, char** argv) {
    scimpi::bench::json_init("fig10_platforms_noncontig", argc, argv);
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();

    std::printf("\n=== Figure 10: noncontig (nc) vs contiguous (c) bandwidth, MiB/s ===\n");
    std::printf("total payload: %zu KiB\n\n", kNoncontigTotal / 1024);
    std::printf("%-6s", "block");
    std::printf(" | %9s %9s", "M-S nc", "M-S c");
    std::printf(" | %9s %9s", "M-s nc", "M-s c");
    for (const auto id : kPlatforms) {
        const auto s = plat::spec(id);
        std::printf(" | %6s nc %6s c", s.code.c_str(), s.code.c_str());
    }
    std::printf("\n");

    for (std::size_t block = 64; block <= 64_KiB; block *= 4) {
        std::printf("%-6zu", block);
        // Simulated SCI-MPICH rows (ff enabled: the library's default path).
        const double ms_nc = noncontig_bandwidth(true, block, true);
        const double ms_c = noncontig_bandwidth(true, 0, true);
        const double mshm_nc = noncontig_bandwidth(false, block, true);
        const double mshm_c = noncontig_bandwidth(false, 0, true);
        std::printf(" | %9.1f %9.1f | %9.1f %9.1f", ms_nc, ms_c, mshm_nc, mshm_c);
        for (const auto id : kPlatforms) {
            PlatformModel m(id);
            std::printf(" | %9.1f %8.1f", m.transfer_bandwidth(kNoncontigTotal, block),
                        m.transfer_bandwidth(kNoncontigTotal, 0));
        }
        std::printf("\n");
    }
    std::printf(
        "\nefficiency highlights: T3E ~1 only for 8-32 KiB blocks; Sun shm jumps at\n"
        "16 KiB; all other implementations use generic pack-and-send (paper 5.1).\n");
    benchmark::Shutdown();
    scimpi::bench::json_write();
    return 0;
}
