// Figure 9: the *sparse* micro-benchmark — MPI_Get / MPI_Put latency (top)
// and bandwidth (bottom) for strided accesses, with the communication window
// in *shared* SCI memory (direct remote access) or in *private* process
// memory (access emulated via message exchange + remote handler).
#include <benchmark/benchmark.h>

#include "common.hpp"

namespace {

using namespace scimpi;
using namespace scimpi::bench;

void BM_Sparse(benchmark::State& state) {
    const auto access = static_cast<std::size_t>(state.range(0));
    const bool shared = state.range(1) != 0;
    const bool is_put = state.range(2) != 0;
    SparseResult r;
    for (auto _ : state) {
        r = sparse_osc(shared, is_put, access);
        state.SetIterationTime(r.latency_us * 1e-6);
    }
    state.counters["lat_us"] = r.latency_us;
    state.counters["MiB/s"] = r.bandwidth;
    export_counters(state, {"rma.direct_puts", "rma.emulated_puts",
                            "rma.direct_gets", "rma.remote_put_gets"});
}

void sweep(benchmark::internal::Benchmark* b) {
    for (std::size_t a = 8; a <= 64_KiB; a *= 8)
        for (const int shared : {1, 0})
            for (const int put : {1, 0})
                b->Args({static_cast<std::int64_t>(a), shared, put});
    b->UseManualTime()->Iterations(1)->Unit(benchmark::kMicrosecond);
}

BENCHMARK(BM_Sparse)->Apply(sweep);

}  // namespace

int main(int argc, char** argv) {
    scimpi::bench::json_init("fig09_sparse", argc, argv);
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();

    std::printf("\n=== Figure 9: sparse micro-benchmark (strided one-sided) ===\n");
    std::printf("%10s | %21s | %21s | %21s | %21s\n", "", "put/shared", "put/private",
                "get/shared", "get/private");
    std::printf("%10s | %10s %10s | %10s %10s | %10s %10s | %10s %10s\n", "access",
                "lat_us", "MiB/s", "lat_us", "MiB/s", "lat_us", "MiB/s", "lat_us",
                "MiB/s");
    for (std::size_t a = 8; a <= 64_KiB; a *= 2) {
        const SparseResult ps = sparse_osc(true, true, a);
        const SparseResult pp = sparse_osc(false, true, a);
        const SparseResult gs = sparse_osc(true, false, a);
        const SparseResult gp = sparse_osc(false, false, a);
        std::printf("%10zu | %10.2f %10.1f | %10.2f %10.1f | %10.2f %10.1f | %10.2f %10.1f\n",
                    a, ps.latency_us, ps.bandwidth, pp.latency_us, pp.bandwidth,
                    gs.latency_us, gs.bandwidth, gp.latency_us, gp.bandwidth);
    }
    benchmark::Shutdown();
    scimpi::bench::json_write();
    return 0;
}
