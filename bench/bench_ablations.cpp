// Ablations for the design decisions called out in DESIGN.md:
//   D1 stream-buffer gathering   (cfg.stream_buffers)
//   D2 write-combining           (cfg.write_combine)
//   D3 rendezvous chunk size     (cfg.rndv_chunk vs L2)
//   D4 ff-stack merging          (cfg.ff_merge_stacks)
//   D5 remote-put get threshold  (cfg.get_remote_put_threshold)
//   D6 direct_pack_ff min block  (cfg.ff_min_block)
#include <benchmark/benchmark.h>

#include <functional>

#include "common.hpp"

namespace {

using namespace scimpi;
using namespace scimpi::bench;

double noncontig_with(const std::function<void(Config&)>& tweak, std::size_t block) {
    ClusterOptions opt;
    opt.nodes = 2;
    tweak(opt.cfg);
    double seconds = 0.0;
    const int elems = static_cast<int>(block / 8);
    auto type = Datatype::vector(static_cast<int>(kNoncontigTotal / block), elems,
                                 2 * elems, Datatype::float64());
    const std::size_t span = static_cast<std::size_t>(type.extent()) / 8 + 16;
    Cluster cluster(opt);
    cluster.run([&](Comm& comm) {
        std::vector<double> buf(span, 1.0);
        for (int it = 0; it < 3; ++it) {
            comm.barrier();
            const double t0 = comm.wtime();
            if (comm.rank() == 0)
                SCIMPI_REQUIRE(comm.send(buf.data(), 1, type, 1, it).is_ok(),
                               "send failed");
            else {
                comm.recv(buf.data(), 1, type, 0, it);
                if (it > 0) seconds += comm.wtime() - t0;
            }
        }
    });
    return bandwidth_mib(2 * kNoncontigTotal, static_cast<SimTime>(seconds * 1e9));
}

double get_with(std::size_t threshold, std::size_t access) {
    ClusterOptions opt;
    opt.nodes = 2;
    opt.cfg.get_remote_put_threshold = threshold;
    SparseResult r;
    Cluster cluster(opt);
    cluster.run([&](Comm& comm) {
        auto mem = comm.alloc_mem(256_KiB);
        auto win = comm.win_create(mem.value().data(), 256_KiB);
        std::vector<std::byte> local(access);
        win->fence();
        const double t0 = comm.wtime();
        std::uint64_t ops = 0;
        for (std::size_t off = 0; off + access <= 256_KiB; off += 2 * access) {
            SCIMPI_REQUIRE(win->get(local.data(), static_cast<int>(access),
                                    Datatype::byte_(), 1 - comm.rank(), off)
                               .is_ok(),
                           "get failed");
            ++ops;
        }
        win->fence();
        if (comm.rank() == 0)
            r.bandwidth = bandwidth_mib(ops * access,
                                        static_cast<SimTime>((comm.wtime() - t0) * 1e9));
    });
    return r.bandwidth;
}

void BM_Ablation(benchmark::State& state) {
    const int which = static_cast<int>(state.range(0));
    const bool enabled = state.range(1) != 0;
    double metric = 0.0;
    const char* label = "";
    switch (which) {
        case 1:  // D1 stream buffers, large blocks
            label = "D1_stream_buffers_bw64KiB";
            metric = noncontig_with(
                [&](Config& c) { c.stream_buffers = enabled; }, 64_KiB);
            break;
        case 2:  // D2 write combining, 64 B blocks
            label = "D2_write_combine_bw64B";
            metric = noncontig_with(
                [&](Config& c) { c.write_combine = enabled; }, 64);
            break;
        case 3:  // D3 rendezvous chunk <= L2 (256 KiB on the P-III)
            label = "D3_rndv_chunk_bw4KiB";
            metric = noncontig_with(
                [&](Config& c) { c.rndv_chunk = enabled ? 64_KiB : 1_MiB; }, 4_KiB);
            break;
        case 4:  // D4 ff-stack merging, tiny blocks
            label = "D4_ff_merge_bw64B";
            metric = noncontig_with(
                [&](Config& c) { c.ff_merge_stacks = enabled; }, 64);
            break;
        case 5:  // D5 remote-put threshold for gets, 16 KiB accesses
            label = "D5_remote_put_get_bw16KiB";
            metric = get_with(enabled ? 2_KiB : 1_GiB, 16_KiB);
            break;
        case 6:  // D6 ff minimum block size, 8 B blocks
            label = "D6_ff_min_block_bw8B";
            metric = noncontig_with(
                [&](Config& c) { c.ff_min_block = enabled ? 16 : 0; }, 8);
            break;
    }
    for (auto _ : state) {
        state.SetIterationTime(1.0 / std::max(metric, 1e-9));
    }
    state.counters["MiB/s"] = metric;
    state.SetLabel(std::string(label) + (enabled ? "/on" : "/off"));
}

void sweep(benchmark::internal::Benchmark* b) {
    for (int d = 1; d <= 6; ++d)
        for (const int on : {1, 0}) b->Args({d, on});
    b->UseManualTime()->Iterations(1)->Unit(benchmark::kMillisecond);
}

BENCHMARK(BM_Ablation)->Apply(sweep);

}  // namespace

int main(int argc, char** argv) {
    scimpi::bench::json_init("ablations", argc, argv);
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();

    std::printf("\n=== Ablation summary (MiB/s with feature on vs off) ===\n");
    struct Row {
        const char* name;
        double on, off;
    };
    const Row rows[] = {
        {"D1 stream-buffer gathering (64 KiB blocks)",
         noncontig_with([](Config& c) { c.stream_buffers = true; }, 64_KiB),
         noncontig_with([](Config& c) { c.stream_buffers = false; }, 64_KiB)},
        {"D2 write-combining (64 B blocks)",
         noncontig_with([](Config& c) { c.write_combine = true; }, 64),
         noncontig_with([](Config& c) { c.write_combine = false; }, 64)},
        {"D3 rendezvous chunk 64 KiB vs 1 MiB (4 KiB blocks)",
         noncontig_with([](Config& c) { c.rndv_chunk = 64_KiB; }, 4_KiB),
         noncontig_with([](Config& c) { c.rndv_chunk = 1_MiB; }, 4_KiB)},
        {"D4 ff-stack merge (64 B blocks)",
         noncontig_with([](Config& c) { c.ff_merge_stacks = true; }, 64),
         noncontig_with([](Config& c) { c.ff_merge_stacks = false; }, 64)},
        {"D5 remote-put gets (16 KiB accesses)", get_with(2_KiB, 16_KiB),
         get_with(1_GiB, 16_KiB)},
        {"D6 ff min-block=16 fallback (8 B blocks)",
         noncontig_with([](Config& c) { c.ff_min_block = 16; }, 8),
         noncontig_with([](Config& c) { c.ff_min_block = 0; }, 8)},
    };
    std::printf("%-52s %10s %10s %8s\n", "design decision", "on", "off", "ratio");
    for (const Row& r : rows)
        std::printf("%-52s %10.1f %10.1f %8.2f\n", r.name, r.on, r.off,
                    r.on / r.off);
    benchmark::Shutdown();
    scimpi::bench::json_write();
    return 0;
}
