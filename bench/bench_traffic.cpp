// bench_traffic: heavy-traffic workload generators for the request engine.
//
// Three generators, selected with --gen:
//
//   halo       2D periodic halo exchange on a px*py rank grid, driven
//              entirely by persistent requests (Send_init/Recv_init once,
//              Startall/Waitall per step). Per-step time lands in the
//              traffic.halo_step_ns histogram.
//   transpose  alltoall storm: back-to-back personalized exchanges, the
//              all-pairs pattern that saturates every fabric link at once
//              (traffic.alltoall_step_ns).
//   rpc        request/reply pairs: odd ranks are clients issuing fixed-size
//              requests against their even-rank server, replies have
//              LCG-drawn sizes spanning the short/eager/rendezvous protocol
//              bands; per-call round-trip latency lands in rpc.latency_ns.
//
// Each generator prints p50/p90/p99 of its histogram (obs::Histogram
// percentiles) and the scimpi-check violation count when SCIMPI_CHECK=1 —
// the smoke_traffic ctest runs halo and rpc checked and requires zero.
//
//   ./bench_traffic --gen halo|transpose|rpc [--ranks N] [--iters N]
//                   [--bytes N] [--json FILE] [--async]
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "mpi/comm.hpp"

using namespace scimpi;
using namespace scimpi::mpi;

namespace {

struct TrafficArgs {
    std::string gen;
    int ranks = 8;
    int iters = 16;
    std::size_t bytes = 4_KiB;
    std::string json_path;
    bool async = false;
};

/// Largest divisor of n that is <= sqrt(n): the px of a px*py rank grid.
int grid_width(int n) {
    int best = 1;
    for (int w = 1; w * w <= n; ++w)
        if (n % w == 0) best = w;
    return best;
}

/// Deterministic reply-size sequence both ends of an RPC pair can replay.
struct Lcg {
    std::uint64_t s;
    explicit Lcg(std::uint64_t seed) : s(seed * 2862933555777941757ULL + 3037000493ULL) {}
    std::uint64_t next() {
        s = s * 6364136223846793005ULL + 1442695040888963407ULL;
        return s >> 33;
    }
};

void run_halo(const TrafficArgs& a, Cluster& cluster, obs::Histogram& hist) {
    const int px = grid_width(a.ranks);
    const int py = a.ranks / px;
    const int edge = static_cast<int>(a.bytes / sizeof(double));
    cluster.run([&, px, py, edge](Comm& comm) {
        const int x = comm.rank() % px;
        const int y = comm.rank() / px;
        const auto at = [&](int gx, int gy) {
            return ((gy + py) % py) * px + ((gx + px) % px);
        };
        const int nbr[4] = {at(x - 1, y), at(x + 1, y), at(x, y - 1), at(x, y + 1)};
        // One send edge + one recv edge per direction; the persistent
        // requests are built once and re-armed every step with start_all.
        // Direction tags pair up (send left <-> recv from right) so a 2-wide
        // torus, where left and right are the same rank, still matches.
        std::vector<std::vector<double>> sedge(4), redge(4);
        std::vector<Request> reqs;
        const int stag[4] = {0, 1, 2, 3};
        const int rtag[4] = {1, 0, 3, 2};
        for (int d = 0; d < 4; ++d) {
            sedge[static_cast<std::size_t>(d)].assign(
                static_cast<std::size_t>(edge), static_cast<double>(comm.rank()));
            redge[static_cast<std::size_t>(d)].assign(
                static_cast<std::size_t>(edge), 0.0);
            reqs.push_back(comm.recv_init(redge[static_cast<std::size_t>(d)].data(),
                                          edge, Datatype::float64(), nbr[d],
                                          rtag[d]));
            reqs.push_back(comm.send_init(sedge[static_cast<std::size_t>(d)].data(),
                                          edge, Datatype::float64(), nbr[d],
                                          stag[d]));
        }
        comm.barrier();
        for (int it = 0; it < a.iters; ++it) {
            const double t0 = comm.wtime();
            comm.start_all(reqs);
            comm.proc().delay(3_us);  // interior stencil update
            SCIMPI_REQUIRE(comm.wait_all(reqs).is_ok(), "halo waitall failed");
            for (int d = 0; d < 4; ++d)
                SCIMPI_REQUIRE(redge[static_cast<std::size_t>(d)][0] ==
                                   static_cast<double>(nbr[d]),
                               "halo edge carries wrong payload");
            hist.record(static_cast<std::uint64_t>((comm.wtime() - t0) * 1e9));
        }
    });
    std::printf("halo: %dx%d grid, %d steps, %d doubles/edge\n", px, py, a.iters,
                edge);
}

void run_transpose(const TrafficArgs& a, Cluster& cluster, obs::Histogram& hist) {
    cluster.run([&](Comm& comm) {
        const std::size_t each = a.bytes;
        std::vector<std::byte> in(each * static_cast<std::size_t>(comm.size()));
        std::vector<std::byte> out(in.size());
        for (std::size_t i = 0; i < in.size(); ++i)
            in[i] = static_cast<std::byte>((i + static_cast<std::size_t>(comm.rank())) & 0xff);
        comm.barrier();
        for (int it = 0; it < a.iters; ++it) {
            const double t0 = comm.wtime();
            SCIMPI_REQUIRE(comm.alltoall(in.data(), each, out.data()).is_ok(),
                           "alltoall failed");
            hist.record(static_cast<std::uint64_t>((comm.wtime() - t0) * 1e9));
        }
    });
    std::printf("transpose: %d ranks, %d storms, %zu bytes/pair\n", a.ranks,
                a.iters, a.bytes);
}

void run_rpc(const TrafficArgs& a, Cluster& cluster, obs::Histogram& hist) {
    cluster.run([&](Comm& comm) {
        const int me = comm.rank();
        const int peer = me ^ 1;
        if (peer >= comm.size()) return;  // odd world: last rank sits out
        // Both ends replay the same LCG, so the server knows each reply size
        // without a length prefix. Sizes sweep the short/eager/rendezvous
        // protocol bands.
        Lcg lcg(static_cast<std::uint64_t>(std::min(me, peer)));
        std::vector<std::byte> request(64);
        std::vector<std::byte> reply(64_KiB);
        for (int it = 0; it < a.iters; ++it) {
            const int reply_bytes =
                static_cast<int>(64 + lcg.next() % (64_KiB - 64));
            if (me % 2 == 1) {  // client
                const double t0 = comm.wtime();
                SCIMPI_REQUIRE(comm.send(request.data(), 64, Datatype::byte_(),
                                         peer, it)
                                   .is_ok(),
                               "rpc request failed");
                comm.recv(reply.data(), reply_bytes, Datatype::byte_(), peer, it);
                hist.record(static_cast<std::uint64_t>((comm.wtime() - t0) * 1e9));
            } else {  // server
                comm.recv(request.data(), 64, Datatype::byte_(), peer, it);
                comm.proc().delay(500);  // handler work
                SCIMPI_REQUIRE(comm.send(reply.data(), reply_bytes,
                                         Datatype::byte_(), peer, it)
                                   .is_ok(),
                               "rpc reply failed");
            }
        }
    });
    std::printf("rpc: %d ranks (%d pairs), %d calls/client\n", a.ranks,
                a.ranks / 2, a.iters);
}

}  // namespace

int main(int argc, char** argv) {
    TrafficArgs a;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--gen" && i + 1 < argc) {
            a.gen = argv[++i];
        } else if (arg == "--ranks" && i + 1 < argc) {
            a.ranks = std::atoi(argv[++i]);
        } else if (arg == "--iters" && i + 1 < argc) {
            a.iters = std::atoi(argv[++i]);
        } else if (arg == "--bytes" && i + 1 < argc) {
            a.bytes = static_cast<std::size_t>(std::atoll(argv[++i]));
        } else if (arg == "--json" && i + 1 < argc) {
            a.json_path = argv[++i];
        } else if (arg == "--async") {
            a.async = true;
        } else {
            std::fprintf(stderr,
                         "usage: bench_traffic --gen halo|transpose|rpc "
                         "[--ranks N] [--iters N] [--bytes N] [--json FILE] "
                         "[--async]\n");
            return 2;
        }
    }
    const bool known = a.gen == "halo" || a.gen == "transpose" || a.gen == "rpc";
    if (!known || a.ranks < 2 || a.iters <= 0 || a.bytes < sizeof(double)) {
        std::fprintf(stderr, "bench_traffic: bad parameters (--gen required)\n");
        return 2;
    }

    ClusterOptions opt;
    opt.nodes = a.ranks;
    opt.collect_stats = true;
    opt.async_progress = a.async;
    Cluster cluster(opt);
    const char* hist_name = a.gen == "halo"      ? "traffic.halo_step_ns"
                            : a.gen == "transpose" ? "traffic.alltoall_step_ns"
                                                   : "rpc.latency_ns";
    obs::Histogram& hist = cluster.metrics().histogram(hist_name);
    if (a.gen == "halo") run_halo(a, cluster, hist);
    else if (a.gen == "transpose") run_transpose(a, cluster, hist);
    else run_rpc(a, cluster, hist);

    const obs::RunReport report = cluster.stats_report();
    for (const obs::HistogramSnapshot& h : report.histograms) {
        if (h.name != hist_name) continue;
        std::printf("%s: n=%llu p50=%.0f ns p90=%.0f ns p99=%.0f ns\n",
                    h.name.c_str(), static_cast<unsigned long long>(h.count),
                    h.p50, h.p90, h.p99);
    }
    if (report.check_enabled)
        std::printf("scimpi-check: %zu violations\n", report.violations.size());

    if (!a.json_path.empty()) {
        std::string json = "{\n  \"bench\": \"traffic\",\n  \"schema_version\": 4,\n"
                           "  \"runs\": [\n";
        char buf[192];
        std::snprintf(buf, sizeof buf,
                      "    {\"label\": \"traffic/%s\", \"params\": {\"ranks\": "
                      "%d, \"iters\": %d, \"bytes\": %zu, \"async\": %s}, "
                      "\"report\": ",
                      a.gen.c_str(), a.ranks, a.iters, a.bytes,
                      a.async ? "true" : "false");
        json += buf;
        json += report.to_json();
        if (!json.empty() && json.back() == '\n') json.pop_back();
        json += "}\n  ]\n}\n";
        std::FILE* f = std::fopen(a.json_path.c_str(), "w");
        if (f == nullptr) {
            std::fprintf(stderr, "bench_traffic: cannot open '%s'\n",
                         a.json_path.c_str());
            return 1;
        }
        std::fwrite(json.data(), 1, json.size(), f);
        std::fclose(f);
        std::printf("wrote %s\n", a.json_path.c_str());
    }
    return report.check_enabled && !report.violations.empty() ? 1 : 0;
}
