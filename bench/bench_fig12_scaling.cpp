// Figure 12: scaling of one-sided strided communication (sparse benchmark,
// MPI_Put) on the platforms with hardware support. Metric: minimum of the
// per-process maximum bandwidths. SCI rows run the full ring simulation
// (every active node puts to the node 4 hops downstream — the paper's
// "average scenario" of ~4 transfers per segment); shared-memory and T3E
// rows use the platform models.
#include <benchmark/benchmark.h>

#include "common.hpp"
#include "plat/platform_model.hpp"

namespace {

using namespace scimpi;
using namespace scimpi::bench;
using plat::PlatformId;
using plat::PlatformModel;

void BM_SciScaling(benchmark::State& state) {
    const int active = static_cast<int>(state.range(0));
    ScalingResult r;
    for (auto _ : state) {
        r = scaling_put(8, active, /*distance=*/active > 1 ? active - 1 : 1, 64_KiB, 2_MiB);
        state.SetIterationTime(2.0 / std::max(r.min_bw, 1e-9));
    }
    state.counters["min_MiB/s"] = r.min_bw;
    state.counters["acc_MiB/s"] = r.accumulated;
}

BENCHMARK(BM_SciScaling)
    ->DenseRange(2, 8)
    ->UseManualTime()
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
    scimpi::bench::json_init("fig12_scaling", argc, argv);
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();

    std::printf("\n=== Figure 12: one-sided strided put scaling (min per-process MiB/s) ===\n");
    std::printf("%6s %10s %10s %10s %10s\n", "procs", "SCI(M-S)", "T3E(C)",
                "SunFire(F-s)", "Xeon(X-s)");
    PlatformModel t3e(PlatformId::cray_t3e);
    PlatformModel fire(PlatformId::sunfire_shm);
    PlatformModel xeon(PlatformId::lam_xeon_shm);
    for (const int n : {2, 3, 4, 5, 6, 7, 8, 12, 16, 24, 32}) {
        std::printf("%6d", n);
        if (n <= 8) {
            // Each new node's transfer reaches one segment further: segment
            // utilization grows with the machine (the paper's setup).
            const ScalingResult r = scaling_put(8, n, n - 1, 64_KiB, 2_MiB);
            std::printf(" %10.1f", r.min_bw);
        } else {
            std::printf(" %10s", "-");  // single ringlet: 8 nodes max
        }
        std::printf(" %10.1f", n <= 32 ? t3e.osc_scaling_bandwidth(n, 64_KiB) : 0.0);
        if (n <= 24)
            std::printf(" %10.1f", fire.osc_scaling_bandwidth(n, 64_KiB));
        else
            std::printf(" %10s", "-");
        if (n <= 4)
            std::printf(" %10.1f", xeon.osc_scaling_bandwidth(n, 64_KiB));
        else
            std::printf(" %10s", "-");
        std::printf("\n");
    }

    std::printf("\nfine-grained accesses (256 B), per-process MiB/s:\n");
    std::printf("%6s %10s %10s %10s\n", "procs", "SCI(M-S)", "T3E(C)", "SunFire(F-s)");
    for (const int n : {2, 4, 8}) {
        const ScalingResult r = scaling_put(8, n, n - 1, 256, 256_KiB);
        std::printf("%6d %10.2f %10.2f %10.2f\n", n, r.min_bw,
                    t3e.osc_scaling_bandwidth(n, 256),
                    fire.osc_scaling_bandwidth(n, 256));
    }
    benchmark::Shutdown();
    scimpi::bench::json_write();
    return 0;
}
