// Figure 1: raw SCI communication performance.
//   top:    small-data latency of PIO write / PIO read / DMA
//   bottom: bandwidth of PIO and DMA transfers vs transfer size (note the
//           PIO dip past 128 KiB — the local memory-read limit, footnote 2)
// Plus the intra-node shared-memory copy as reference.
#include <benchmark/benchmark.h>

#include "common.hpp"

namespace {

using namespace scimpi;
using namespace scimpi::bench;

enum class RawOp { pio_write, pio_read, dma_write, local_copy };

/// One raw transfer between node 0 and node 1 using the adapter directly.
double raw_seconds(RawOp op, std::size_t bytes) {
    ClusterOptions opt;
    opt.nodes = 2;
    opt.arena_bytes = 8_MiB;
    Cluster cluster(opt);
    double seconds = 0.0;
    auto& engine = cluster.engine();
    engine.spawn("raw", [&](sim::Process& p) {
        auto span = cluster.memory(1).allocate(std::max<std::size_t>(bytes, 64));
        const auto seg = cluster.directory().create(1, span.value());
        auto map = cluster.directory().import(0, seg).value();
        std::vector<std::byte> host(std::max<std::size_t>(bytes, 64), std::byte{7});

        auto& adapter = cluster.adapter(0);
        // Warm up the stream state, then measure.
        const int repeats = 4;
        SimTime t0 = 0;
        for (int it = 0; it < repeats + 1; ++it) {
            if (it == 1) t0 = p.now();
            switch (op) {
                case RawOp::pio_write:
                    SCIMPI_REQUIRE(
                        adapter.write(p, map, 0, host.data(), bytes, bytes).is_ok(),
                        "write failed");
                    adapter.store_barrier(p);
                    break;
                case RawOp::pio_read:
                    SCIMPI_REQUIRE(adapter.read(p, map, 0, host.data(), bytes).is_ok(),
                                   "read failed");
                    break;
                case RawOp::dma_write:
                    SCIMPI_REQUIRE(
                        adapter.dma_write(p, map, 0, host.data(), bytes).is_ok(),
                        "dma failed");
                    break;
                case RawOp::local_copy: {
                    mem::CopyModel cm(cluster.options().host);
                    p.delay(cm.copy_cost(bytes, {}, {}));
                    break;
                }
            }
        }
        seconds = to_seconds(p.now() - t0) / repeats;
    });
    engine.run();
    return seconds;
}

void report(benchmark::State& state, RawOp op) {
    const auto bytes = static_cast<std::size_t>(state.range(0));
    double seconds = 0.0;
    for (auto _ : state) {
        seconds = raw_seconds(op, bytes);
        state.SetIterationTime(seconds);
    }
    state.counters["lat_us"] = seconds * 1e6;
    state.counters["MiB/s"] = bandwidth_mib(bytes, static_cast<SimTime>(seconds * 1e9));
}

void BM_PioWrite(benchmark::State& s) { report(s, RawOp::pio_write); }
void BM_PioRead(benchmark::State& s) { report(s, RawOp::pio_read); }
void BM_DmaWrite(benchmark::State& s) { report(s, RawOp::dma_write); }
void BM_LocalCopy(benchmark::State& s) { report(s, RawOp::local_copy); }

void sweep(benchmark::internal::Benchmark* b) {
    for (std::size_t sz = 8; sz <= 512_KiB; sz *= 4)
        b->Arg(static_cast<std::int64_t>(sz));
    b->UseManualTime()->Iterations(1)->Unit(benchmark::kMicrosecond);
}

BENCHMARK(BM_PioWrite)->Apply(sweep);
BENCHMARK(BM_PioRead)->Apply(sweep);
BENCHMARK(BM_DmaWrite)->Apply(sweep);
BENCHMARK(BM_LocalCopy)->Apply(sweep);

}  // namespace

int main(int argc, char** argv) {
    scimpi::bench::json_init("fig01_raw_sci", argc, argv);
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();

    // Paper-style summary table.
    std::printf("\n=== Figure 1: raw SCI performance (simulated) ===\n");
    std::printf("%10s %12s %12s %12s %12s\n", "bytes", "PIOwr MiB/s", "PIOrd MiB/s",
                "DMA MiB/s", "shm MiB/s");
    for (std::size_t sz = 64; sz <= 512_KiB; sz *= 2) {
        const double w = bandwidth_mib(
            sz, static_cast<SimTime>(raw_seconds(RawOp::pio_write, sz) * 1e9));
        const double r = bandwidth_mib(
            sz, static_cast<SimTime>(raw_seconds(RawOp::pio_read, sz) * 1e9));
        const double d = bandwidth_mib(
            sz, static_cast<SimTime>(raw_seconds(RawOp::dma_write, sz) * 1e9));
        const double l = bandwidth_mib(
            sz, static_cast<SimTime>(raw_seconds(RawOp::local_copy, sz) * 1e9));
        std::printf("%10zu %12.1f %12.1f %12.1f %12.1f\n", sz, w, r, d, l);
    }
    std::printf("\nsmall-data latency (8 B): write %.2f us, read %.2f us, DMA %.2f us\n",
                raw_seconds(RawOp::pio_write, 8) * 1e6,
                raw_seconds(RawOp::pio_read, 8) * 1e6,
                raw_seconds(RawOp::dma_write, 8) * 1e6);
    benchmark::Shutdown();
    scimpi::bench::json_write();
    return 0;
}
