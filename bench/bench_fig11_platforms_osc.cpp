// Figure 11: performance of single-sided communication in the *sparse*
// micro-benchmark across the platforms of Table 1 that support it. The
// SCI-MPICH rows (shared/private window) run the full simulator; the
// comparators use their platform models. Prints Table 1 as a capability
// preamble.
#include <benchmark/benchmark.h>

#include "common.hpp"
#include "plat/platform_model.hpp"

namespace {

using namespace scimpi;
using namespace scimpi::bench;
using plat::PlatformId;
using plat::PlatformModel;

const std::vector<PlatformId> kOsc = plat::osc_platforms();

void BM_PlatformSparse(benchmark::State& state) {
    const auto idx = static_cast<std::size_t>(state.range(0));
    const auto access = static_cast<std::size_t>(state.range(1));
    const bool is_put = state.range(2) != 0;
    PlatformModel m(kOsc[idx]);
    double lat = 0.0, bw = 0.0;
    for (auto _ : state) {
        lat = to_us(m.osc_latency(access, is_put));
        bw = m.osc_bandwidth(access, is_put);
        state.SetIterationTime(lat * 1e-6);
    }
    state.counters["lat_us"] = lat;
    state.counters["MiB/s"] = bw;
    state.SetLabel(m.platform().code + (is_put ? "/put" : "/get"));
}

void sweep(benchmark::internal::Benchmark* b) {
    for (std::size_t p = 0; p < kOsc.size(); ++p)
        for (std::size_t a = 8; a <= 64_KiB; a *= 16)
            for (const int put : {1, 0})
                b->Args({static_cast<std::int64_t>(p), static_cast<std::int64_t>(a), put});
    b->UseManualTime()->Iterations(1)->Unit(benchmark::kMicrosecond);
}

BENCHMARK(BM_PlatformSparse)->Apply(sweep);

void print_table1() {
    std::printf("=== Table 1: cluster platforms for the evaluation ===\n");
    std::printf("%-4s %-52s %-4s\n", "ID", "machine / interconnect / MPI", "OSC");
    std::printf("%-4s %-52s %-4s\n", "M-S",
                "PentiumIII dual SMP 800 / SCI / scimpi (this library)", "yes");
    std::printf("%-4s %-52s %-4s\n", "M-s",
                "PentiumIII dual SMP 800 / shared memory / scimpi", "yes");
    for (const auto id : plat::all_platforms()) {
        const auto s = plat::spec(id);
        std::printf("%-4s %-52s %-4s%s\n", s.code.c_str(), s.name.c_str(),
                    s.supports_osc ? "yes" : "no",
                    s.osc_get_deadlocks ? " (only MPI_Get; MPI_Put deadlocked)" : "");
    }
    std::printf("\n");
}

}  // namespace

int main(int argc, char** argv) {
    scimpi::bench::json_init("fig11_platforms_osc", argc, argv);
    benchmark::Initialize(&argc, argv);
    print_table1();
    benchmark::RunSpecifiedBenchmarks();

    std::printf("\n=== Figure 11: sparse one-sided put latency / bandwidth ===\n");
    std::printf("%10s", "access");
    std::printf(" | %9s %9s | %9s %9s", "M-S lat", "M-S bw", "M-s lat", "M-s bw");
    for (const auto id : kOsc) {
        const auto s = plat::spec(id);
        std::printf(" | %5s lat %6s bw", s.code.c_str(), s.code.c_str());
    }
    std::printf("\n");
    for (std::size_t a = 8; a <= 64_KiB; a *= 4) {
        std::printf("%10zu", a);
        const SparseResult shared = sparse_osc(true, true, a);
        const SparseResult priv = sparse_osc(false, true, a);
        std::printf(" | %9.1f %9.1f | %9.1f %9.1f", shared.latency_us,
                    shared.bandwidth, priv.latency_us, priv.bandwidth);
        for (const auto id : kOsc) {
            PlatformModel m(id);
            std::printf(" | %9.1f %9.1f", to_us(m.osc_latency(a, true)),
                        m.osc_bandwidth(a, true));
        }
        std::printf("\n");
    }
    std::printf(
        "\n(M-S = SCI-MPICH over SCI shared windows, M-s = private windows via\n"
        "message-exchange emulation; comparators from platform models.)\n");
    benchmark::Shutdown();
    scimpi::bench::json_write();
    return 0;
}
