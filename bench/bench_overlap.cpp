// bench_overlap: OSU-style communication/computation overlap microbench.
//
// Two ranks exchange rendezvous-sized messages while each burns a calibrated
// slab of compute. Three phases per message size:
//
//   comm    blocking exchange, no compute  -> calibrates the compute slab
//   block   blocking exchange + compute    -> comm and compute serialize
//   nonblk  Irecv/Isend + compute + Waitall with async progress on -> the
//           transfer runs underneath the compute, so per-iteration time
//           drops toward max(comm, compute)
//
// The bench fails (exit 1) unless nonblk is measurably faster than block at
// every rendezvous size — the acceptance gate for the request engine's
// overlap path — and prints the achieved overlap ratio the profiler
// measured per rank (RunReport profiles[].overlap_ratio).
//
// A derived-datatype integrity pass rides along: the same exchange through
// a strided Datatype::vector, with the payload pattern verified element-
// wise and the stride gaps checked for corruption every iteration.
//
//   ./bench_overlap [--json FILE] [--sizes 32768,131072] [--iters N]
//
// --json writes one RunReport v4 per phase/size under "runs", the format
// scripts/bench_compare.py diffs.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "mpi/comm.hpp"

using namespace scimpi;
using namespace scimpi::mpi;

namespace {

struct OverlapRun {
    obs::RunReport report;
    double iter_us = 0.0;        ///< simulated time per iteration
    double overlap_ratio = 0.0;  ///< aggregate over both ranks' profiles
};

/// One two-rank exchange phase. compute_ns == 0 is the calibration run.
OverlapRun run_phase(std::size_t bytes, int iters, bool nonblocking,
                     SimTime compute_ns) {
    ClusterOptions opt;
    opt.nodes = 2;
    opt.collect_stats = true;
    opt.profile = true;
    opt.async_progress = nonblocking;
    OverlapRun out;
    double elapsed = 0.0;
    Cluster cluster(opt);
    cluster.run([&](Comm& comm) {
        const int n = static_cast<int>(bytes / sizeof(double));
        const int peer = 1 - comm.rank();
        std::vector<double> sbuf(static_cast<std::size_t>(n), 1.0);
        std::vector<double> rbuf(static_cast<std::size_t>(n), 0.0);
        comm.barrier();
        const double t0 = comm.wtime();
        for (int it = 0; it < iters; ++it) {
            if (nonblocking) {
                Request reqs[2] = {
                    comm.irecv(rbuf.data(), n, Datatype::float64(), peer, it),
                    comm.isend(sbuf.data(), n, Datatype::float64(), peer, it),
                };
                if (compute_ns > 0) comm.proc().delay(compute_ns);
                SCIMPI_REQUIRE(comm.wait_all(reqs).is_ok(), "waitall failed");
            } else {
                if (comm.rank() == 0) {
                    SCIMPI_REQUIRE(comm.send(sbuf.data(), n, Datatype::float64(),
                                             peer, it)
                                       .is_ok(),
                                   "send failed");
                    comm.recv(rbuf.data(), n, Datatype::float64(), peer, it);
                } else {
                    comm.recv(rbuf.data(), n, Datatype::float64(), peer, it);
                    SCIMPI_REQUIRE(comm.send(sbuf.data(), n, Datatype::float64(),
                                             peer, it)
                                       .is_ok(),
                                   "send failed");
                }
                if (compute_ns > 0) comm.proc().delay(compute_ns);
            }
        }
        if (comm.rank() == 0) elapsed = comm.wtime() - t0;
    });
    out.report = cluster.stats_report();
    out.iter_us = elapsed * 1e6 / iters;
    std::uint64_t ov = 0;
    std::uint64_t win = 0;
    for (const auto& p : out.report.profiles) {
        ov += p.overlap_ns;
        win += p.comm_window_ns;
    }
    if (win > 0) out.overlap_ratio = static_cast<double>(ov) / static_cast<double>(win);
    return out;
}

/// Strided-datatype exchange with end-to-end integrity checking: every
/// second column of a rows x cols matrix travels; the untouched columns of
/// the receive matrix must survive the exchange bit-exact.
bool run_integrity(int iters, bool nonblocking) {
    constexpr int kRows = 64;
    constexpr int kCols = 32;
    constexpr int kBlock = kCols / 2;
    ClusterOptions opt;
    opt.nodes = 2;
    opt.async_progress = nonblocking;
    bool ok = true;
    Cluster cluster(opt);
    cluster.run([&](Comm& comm) {
        Datatype strided =
            Datatype::vector(kRows, kBlock, kCols, Datatype::float64());
        const int peer = 1 - comm.rank();
        std::vector<double> smat(kRows * kCols);
        std::vector<double> rmat(kRows * kCols);
        for (int it = 0; it < iters; ++it) {
            for (int i = 0; i < kRows * kCols; ++i) {
                smat[static_cast<std::size_t>(i)] = comm.rank() * 1e6 + it * 1e3 + i;
                rmat[static_cast<std::size_t>(i)] = -1.0 - i;
            }
            Request reqs[2] = {
                comm.irecv(rmat.data(), 1, strided, peer, it),
                comm.isend(smat.data(), 1, strided, peer, it),
            };
            comm.proc().delay(2_us);
            SCIMPI_REQUIRE(comm.wait_all(reqs).is_ok(), "integrity waitall failed");
            for (int r = 0; r < kRows && ok; ++r) {
                for (int c = 0; c < kCols && ok; ++c) {
                    const int i = r * kCols + c;
                    const double got = rmat[static_cast<std::size_t>(i)];
                    const double want = c < kBlock ? peer * 1e6 + it * 1e3 + i
                                                   : -1.0 - i;
                    if (got != want) {
                        std::fprintf(stderr,
                                     "integrity: rank %d iter %d [%d,%d]: got "
                                     "%g want %g\n",
                                     comm.rank(), it, r, c, got, want);
                        ok = false;
                    }
                }
            }
        }
    });
    return ok;
}

}  // namespace

int main(int argc, char** argv) {
    std::string json_path;
    std::vector<std::size_t> sizes = {32_KiB, 128_KiB, 512_KiB};
    int iters = 8;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--json" && i + 1 < argc) {
            json_path = argv[++i];
        } else if (arg == "--sizes" && i + 1 < argc) {
            sizes.clear();
            for (const char* p = argv[++i]; *p != '\0';) {
                char* end = nullptr;
                const long long v = std::strtoll(p, &end, 10);
                if (end == p || v <= 0) break;
                sizes.push_back(static_cast<std::size_t>(v));
                p = *end == ',' ? end + 1 : end;
            }
        } else if (arg == "--iters" && i + 1 < argc) {
            iters = std::atoi(argv[++i]);
        } else {
            std::fprintf(stderr,
                         "usage: bench_overlap [--json FILE] [--sizes a,b,c] "
                         "[--iters N]\n");
            return 2;
        }
    }
    if (sizes.empty() || iters <= 0) {
        std::fprintf(stderr, "bench_overlap: bad parameters\n");
        return 2;
    }

    std::printf("%10s %12s %12s %12s %10s %10s\n", "bytes", "comm_us", "block_us",
                "nonblk_us", "saved", "overlap");
    std::string json = "{\n  \"bench\": \"overlap\",\n  \"schema_version\": 4,\n"
                       "  \"runs\": [\n";
    bool pass = true;
    for (std::size_t i = 0; i < sizes.size(); ++i) {
        const std::size_t bytes = sizes[i];
        // Calibrate: pure communication time per iteration, then give each
        // iteration that much compute — the regime where overlap pays most.
        const OverlapRun comm = run_phase(bytes, iters, /*nonblocking=*/false, 0);
        const auto compute_ns = static_cast<SimTime>(comm.iter_us * 1e3);
        const OverlapRun block =
            run_phase(bytes, iters, /*nonblocking=*/false, compute_ns);
        const OverlapRun nonblk =
            run_phase(bytes, iters, /*nonblocking=*/true, compute_ns);
        const double saved = 1.0 - nonblk.iter_us / block.iter_us;
        std::printf("%10zu %12.2f %12.2f %12.2f %9.1f%% %9.1f%%\n", bytes,
                    comm.iter_us, block.iter_us, nonblk.iter_us, saved * 100.0,
                    nonblk.overlap_ratio * 100.0);
        if (nonblk.iter_us >= block.iter_us) {
            std::fprintf(stderr,
                         "bench_overlap: no overlap at %zu bytes (nonblocking "
                         "%.2f us/iter >= blocking %.2f us/iter)\n",
                         bytes, nonblk.iter_us, block.iter_us);
            pass = false;
        }
        if (!json_path.empty()) {
            const struct {
                const char* label;
                const OverlapRun* run;
                bool async;
            } phases[] = {{"comm", &comm, false},
                          {"block", &block, false},
                          {"nonblk", &nonblk, true}};
            for (std::size_t p = 0; p < 3; ++p) {
                char buf[192];
                std::snprintf(buf, sizeof buf,
                              "    {\"label\": \"overlap/%s-%zu\", \"params\": "
                              "{\"bytes\": %zu, \"iters\": %d, \"compute_ns\": "
                              "%llu, \"async\": %s}, \"report\": ",
                              phases[p].label, bytes, bytes, iters,
                              static_cast<unsigned long long>(
                                  p == 0 ? 0 : compute_ns),
                              phases[p].async ? "true" : "false");
                json += buf;
                json += phases[p].run->report.to_json();
                if (!json.empty() && json.back() == '\n') json.pop_back();
                json += (i + 1 < sizes.size() || p + 1 < 3) ? "},\n" : "}\n";
            }
        }
    }
    json += "  ]\n}\n";

    if (!run_integrity(4, /*nonblocking=*/false) ||
        !run_integrity(4, /*nonblocking=*/true)) {
        std::fprintf(stderr, "bench_overlap: derived-datatype integrity FAILED\n");
        pass = false;
    } else {
        std::printf("derived-datatype integrity: ok\n");
    }

    if (!json_path.empty()) {
        std::FILE* f = std::fopen(json_path.c_str(), "w");
        if (f == nullptr) {
            std::fprintf(stderr, "bench_overlap: cannot open '%s'\n",
                         json_path.c_str());
            return 1;
        }
        std::fwrite(json.data(), 1, json.size(), f);
        std::fclose(f);
        std::printf("wrote %s (%zu runs)\n", json_path.c_str(), sizes.size() * 3);
    }
    return pass ? 0 : 1;
}
