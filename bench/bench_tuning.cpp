// Protocol tuning study: sensitivity of the SCI-MPICH-style protocols to
// their runtime parameters, the knobs a real installation would tune
// (SCI-MPICH shipped with exactly such a parameter file).
//   * eager threshold   — where the eager/rendezvous switch should sit,
//   * rendezvous chunk  — pipelining granularity vs L2 thrash (paper §3.3.2),
//   * eager credits     — flow-control depth under message floods.
#include <benchmark/benchmark.h>

#include "common.hpp"

namespace {

using namespace scimpi;
using namespace scimpi::bench;

/// Bandwidth of a single message of `bytes` under config tweaks.
double message_bw(std::size_t bytes, const std::function<void(Config&)>& tweak) {
    ClusterOptions opt;
    opt.nodes = 2;
    tweak(opt.cfg);
    double seconds = 0.0;
    Cluster cluster(opt);
    cluster.run([&](Comm& comm) {
        std::vector<std::byte> buf(bytes, std::byte{1});
        for (int it = 0; it < 4; ++it) {
            comm.barrier();
            const double t0 = comm.wtime();
            if (comm.rank() == 0)
                SCIMPI_REQUIRE(comm.send(buf.data(), static_cast<int>(bytes),
                                         Datatype::byte_(), 1, it)
                                   .is_ok(),
                               "send failed");
            else {
                comm.recv(buf.data(), static_cast<int>(bytes), Datatype::byte_(), 0,
                          it);
                if (it > 0) seconds += comm.wtime() - t0;
            }
        }
    });
    return bandwidth_mib(3 * bytes, static_cast<SimTime>(seconds * 1e9));
}

/// Time to flood `n` messages of `bytes` with `slots` eager credits.
double flood_ms(int n, std::size_t bytes, std::size_t slots) {
    ClusterOptions opt;
    opt.nodes = 2;
    opt.cfg.eager_slots = slots;
    double seconds = 0.0;
    Cluster cluster(opt);
    cluster.run([&](Comm& comm) {
        std::vector<std::byte> buf(bytes, std::byte{1});
        comm.barrier();
        const double t0 = comm.wtime();
        if (comm.rank() == 0) {
            for (int i = 0; i < n; ++i)
                SCIMPI_REQUIRE(comm.send(buf.data(), static_cast<int>(bytes),
                                         Datatype::byte_(), 1, i)
                                   .is_ok(),
                               "send failed");
        } else {
            for (int i = 0; i < n; ++i)
                comm.recv(buf.data(), static_cast<int>(bytes), Datatype::byte_(), 0,
                          i);
            seconds = comm.wtime() - t0;
        }
    });
    return seconds * 1e3;
}

void BM_EagerThreshold(benchmark::State& state) {
    const auto threshold = static_cast<std::size_t>(state.range(0));
    const auto bytes = static_cast<std::size_t>(state.range(1));
    double bw = 0.0;
    for (auto _ : state) {
        bw = message_bw(bytes, [&](Config& c) { c.eager_threshold = threshold; });
        state.SetIterationTime(1.0 / std::max(bw, 1e-9));
    }
    state.counters["MiB/s"] = bw;
}

void sweep(benchmark::internal::Benchmark* b) {
    for (const std::int64_t thr : {2048, 16384, 131072})
        for (const std::int64_t bytes : {4096, 32768}) b->Args({thr, bytes});
    b->UseManualTime()->Iterations(1)->Unit(benchmark::kMicrosecond);
}
BENCHMARK(BM_EagerThreshold)->Apply(sweep);

}  // namespace

int main(int argc, char** argv) {
    scimpi::bench::json_init("tuning", argc, argv);
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();

    std::printf("\n=== Tuning: eager threshold (message bandwidth, MiB/s) ===\n");
    std::printf("%12s", "msg bytes");
    for (const std::size_t thr : {2_KiB, 8_KiB, 16_KiB, 64_KiB})
        std::printf("  thr=%-6zu", thr);
    std::printf("\n");
    for (const std::size_t bytes : {1_KiB, 4_KiB, 16_KiB, 64_KiB}) {
        std::printf("%12zu", bytes);
        for (const std::size_t thr : {2_KiB, 8_KiB, 16_KiB, 64_KiB})
            std::printf("  %10.1f",
                        message_bw(bytes, [&](Config& c) { c.eager_threshold = thr; }));
        std::printf("\n");
    }

    std::printf("\n=== Tuning: rendezvous chunk size (1 MiB message, MiB/s) ===\n");
    std::printf("%12s %10s\n", "chunk", "MiB/s");
    for (const std::size_t chunk : {8_KiB, 32_KiB, 64_KiB, 128_KiB, 512_KiB})
        std::printf("%12zu %10.1f\n", chunk,
                    message_bw(1_MiB, [&](Config& c) { c.rndv_chunk = chunk; }));

    std::printf("\n=== Tuning: eager credits under a 64-message 8 KiB flood ===\n");
    std::printf("%8s %10s\n", "slots", "ms");
    for (const std::size_t slots : {1u, 2u, 4u, 8u, 16u})
        std::printf("%8zu %10.3f\n", slots, flood_ms(64, 8_KiB, slots));

    std::printf(
        "\nLarger eager thresholds help mid-size messages (no handshake) at the\n"
        "price of receiver buffering; rendezvous chunks peak near 64-128 KiB\n"
        "(pipelining vs per-chunk overhead); a few credits suffice once the\n"
        "receiver drains at line rate.\n");
    benchmark::Shutdown();
    scimpi::bench::json_write();
    return 0;
}
