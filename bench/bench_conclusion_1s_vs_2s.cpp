// Section 6 conclusion: "if synchronization is considered, one-sided
// communication does usually not provide lower latencies if compared
// directly with two-sided communication using micro-benchmarks. [...]
// ping-pong-like comparisons are not really meaningful, but can give an
// upper limit of performance."
//
// This bench quantifies that statement on the simulated SCI cluster:
//   * two-sided ping-pong (send/recv),
//   * one-sided "ping-pong" with fence synchronization (put + fence both ways),
//   * one-sided put with post/start/complete/wait,
//   * raw put without synchronization (the upper limit the paper mentions).
#include <benchmark/benchmark.h>

#include "common.hpp"

namespace {

using namespace scimpi;
using namespace scimpi::bench;

enum class Mode { two_sided, osc_fence, osc_pscw, osc_unsync };

double round_trip_us(Mode mode, std::size_t bytes, int reps = 16) {
    ClusterOptions opt;
    opt.nodes = 2;
    double us = 0.0;
    Cluster cluster(opt);
    cluster.run([&](Comm& comm) {
        std::vector<std::byte> buf(std::max<std::size_t>(bytes, 8), std::byte{1});
        auto mem = comm.alloc_mem(std::max<std::size_t>(bytes, 8));
        auto win = comm.win_create(mem.value().data(), mem.value().size());
        const int peer = 1 - comm.rank();
        const int group[1] = {peer};
        win->fence();
        comm.barrier();
        const double t0 = comm.wtime();
        for (int i = 0; i < reps; ++i) {
            switch (mode) {
                case Mode::two_sided:
                    if (comm.rank() == 0) {
                        SCIMPI_REQUIRE(
                            comm.send(buf.data(), static_cast<int>(bytes),
                                      Datatype::byte_(), 1, i)
                                .is_ok(),
                            "send failed");
                        comm.recv(buf.data(), static_cast<int>(bytes),
                                  Datatype::byte_(), 1, i);
                    } else {
                        comm.recv(buf.data(), static_cast<int>(bytes),
                                  Datatype::byte_(), 0, i);
                        SCIMPI_REQUIRE(
                            comm.send(buf.data(), static_cast<int>(bytes),
                                      Datatype::byte_(), 0, i)
                                .is_ok(),
                            "send failed");
                    }
                    break;
                case Mode::osc_fence:
                    // Each direction is one access epoch ended by a fence.
                    if (comm.rank() == 0)
                        SCIMPI_REQUIRE(
                            win->put(buf.data(), static_cast<int>(bytes),
                                     Datatype::byte_(), 1, 0)
                                .is_ok(),
                            "put failed");
                    win->fence();
                    if (comm.rank() == 1)
                        SCIMPI_REQUIRE(
                            win->put(buf.data(), static_cast<int>(bytes),
                                     Datatype::byte_(), 0, 0)
                                .is_ok(),
                            "put failed");
                    win->fence();
                    break;
                case Mode::osc_pscw:
                    if (comm.rank() == 0) {
                        win->post(group);
                        win->start(group);
                        SCIMPI_REQUIRE(
                            win->put(buf.data(), static_cast<int>(bytes),
                                     Datatype::byte_(), 1, 0)
                                .is_ok(),
                            "put failed");
                        win->complete();
                        win->wait();
                    } else {
                        win->post(group);
                        win->start(group);
                        SCIMPI_REQUIRE(
                            win->put(buf.data(), static_cast<int>(bytes),
                                     Datatype::byte_(), 0, 0)
                                .is_ok(),
                            "put failed");
                        win->complete();
                        win->wait();
                    }
                    break;
                case Mode::osc_unsync:
                    // The "upper limit": put + local flush only, no epoch.
                    SCIMPI_REQUIRE(win->put(buf.data(), static_cast<int>(bytes),
                                            Datatype::byte_(), peer, 0)
                                       .is_ok(),
                                   "put failed");
                    comm.rank_state().adapter().store_barrier(comm.proc());
                    break;
            }
        }
        if (comm.rank() == 0) us = (comm.wtime() - t0) / reps * 1e6;
        win->fence();
    });
    return us;
}

void BM_OneVsTwoSided(benchmark::State& state) {
    const auto mode = static_cast<Mode>(state.range(0));
    const auto bytes = static_cast<std::size_t>(state.range(1));
    double us = 0.0;
    for (auto _ : state) {
        us = round_trip_us(mode, bytes);
        state.SetIterationTime(us * 1e-6);
    }
    state.counters["us_per_iter"] = us;
    static const char* names[] = {"two_sided", "osc_fence", "osc_pscw",
                                  "osc_unsync"};
    state.SetLabel(names[state.range(0)]);
}

void sweep(benchmark::internal::Benchmark* b) {
    for (int m = 0; m < 4; ++m)
        for (const std::int64_t bytes : {8, 1024, 16384}) b->Args({m, bytes});
    b->UseManualTime()->Iterations(1)->Unit(benchmark::kMicrosecond);
}

BENCHMARK(BM_OneVsTwoSided)->Apply(sweep);

}  // namespace

int main(int argc, char** argv) {
    scimpi::bench::json_init("conclusion_1s_vs_2s", argc, argv);
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();

    std::printf("\n=== Section 6: one-sided vs two-sided (us per round/epoch) ===\n");
    std::printf("%10s %12s %12s %12s %14s\n", "bytes", "send/recv", "put+fence",
                "put+PSCW", "put unsync");
    for (const std::size_t bytes : {8u, 128u, 1024u, 16384u}) {
        std::printf("%10zu %12.2f %12.2f %12.2f %14.2f\n", bytes,
                    round_trip_us(Mode::two_sided, bytes),
                    round_trip_us(Mode::osc_fence, bytes),
                    round_trip_us(Mode::osc_pscw, bytes),
                    round_trip_us(Mode::osc_unsync, bytes));
    }
    std::printf(
        "\nWith synchronization included, one-sided epochs cost at least as much\n"
        "as the two-sided round trip; the unsynchronized put is the upper limit\n"
        "— exactly the paper's concluding observation.\n");
    benchmark::Shutdown();
    scimpi::bench::json_write();
    return 0;
}
