// Section 4.3 (text): the low-level strided remote-write study. Effective
// bandwidth of strided PIO writes for various access sizes and strides —
// the write-combining sensitivity that explains the sparse results:
// "varying between 5 and 28 MiB/s for 8 byte access size, or 7 and 162
// MiB/s for 256 byte access size. The values for strides which deliver the
// maximum performance are multiples of 32 [...]. Disabling the
// write-combining avoids the performance drops, but lowers the overall
// bandwidth about 50%."
#include <benchmark/benchmark.h>

#include "common.hpp"

namespace {

using namespace scimpi;
using namespace scimpi::bench;

double strided_write_bw(std::size_t access, std::size_t stride, bool write_combine) {
    ClusterOptions opt;
    opt.nodes = 2;
    opt.cfg.write_combine = write_combine;
    opt.arena_bytes = 8_MiB;
    Cluster cluster(opt);
    double bw = 0.0;
    cluster.engine().spawn("writer", [&](sim::Process& p) {
        auto span = cluster.memory(1).allocate(4_MiB);
        const auto seg = cluster.directory().create(1, span.value());
        auto map = cluster.directory().import(0, seg).value();
        std::vector<std::byte> host(access, std::byte{0x33});
        auto& adapter = cluster.adapter(0);

        const SimTime t0 = p.now();
        std::size_t written = 0;
        for (std::size_t off = 0; off + access <= 2_MiB && written < 256_KiB;
             off += stride) {
            SCIMPI_REQUIRE(adapter.write(p, map, off, host.data(), access).is_ok(),
                           "write failed");
            written += access;
        }
        adapter.store_barrier(p);
        bw = bandwidth_mib(written, p.now() - t0);
    });
    cluster.engine().run();
    return bw;
}

void BM_StridedWrite(benchmark::State& state) {
    const auto access = static_cast<std::size_t>(state.range(0));
    const auto stride = static_cast<std::size_t>(state.range(1));
    const bool wc = state.range(2) != 0;
    double bw = 0.0;
    for (auto _ : state) {
        bw = strided_write_bw(access, stride, wc);
        state.SetIterationTime(256_KiB / 1048576.0 / bw);
    }
    state.counters["MiB/s"] = bw;
}

void sweep(benchmark::internal::Benchmark* b) {
    for (const std::int64_t access : {8, 64, 256})
        for (const std::int64_t stride_mult : {2, 3})
            for (const int wc : {1, 0})
                b->Args({access, access * stride_mult, wc});
    b->UseManualTime()->Iterations(1)->Unit(benchmark::kMicrosecond);
}

BENCHMARK(BM_StridedWrite)->Apply(sweep);

}  // namespace

int main(int argc, char** argv) {
    scimpi::bench::json_init("sec43_stride_wc", argc, argv);
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();

    std::printf("\n=== Section 4.3: strided remote-write bandwidth (MiB/s) ===\n");
    for (const bool wc : {true, false}) {
        std::printf("\nwrite-combining %s\n", wc ? "ENABLED" : "DISABLED");
        std::printf("%8s", "stride");
        for (const std::size_t access : {8u, 64u, 256u}) std::printf("  acc=%4zuB", access);
        std::printf("\n");
        for (std::size_t stride = 8; stride <= 512; stride += 20) {
            std::printf("%8zu", stride);
            for (const std::size_t access : {8u, 64u, 256u}) {
                if (stride < access) {
                    std::printf("  %9s", "-");
                    continue;
                }
                std::printf("  %9.1f", strided_write_bw(access, stride, wc));
            }
            std::printf("%s\n", stride % 32 == 0 ? "   <- stride %% 32 == 0" : "");
        }
    }
    benchmark::Shutdown();
    scimpi::bench::json_write();
    return 0;
}
