// Table 2: scalability for different segment utilization levels on a single
// SCI ringlet of 8 nodes.
//   * 1 transfer/segment  — every active node puts to its downstream
//     neighbour (distance 1): per-node bandwidth stays flat,
//   * 8 transfers/segment — every active node puts to the node 7 hops
//     downstream (each segment carries ~7 data streams + echoes): the ring
//     saturates and per-node bandwidth declines.
// Also reproduces the 200 MHz link-frequency experiment: the worst-case
// accumulated bandwidth rises linearly with the ring bandwidth.
#include <benchmark/benchmark.h>

#include "common.hpp"

namespace {

using namespace scimpi;
using namespace scimpi::bench;

void BM_SegmentUtilization(benchmark::State& state) {
    const int active = static_cast<int>(state.range(0));
    const int distance = static_cast<int>(state.range(1));
    ScalingResult r;
    for (auto _ : state) {
        r = scaling_put(8, active, distance, 64_KiB, 2_MiB);
        state.SetIterationTime(2.0 / std::max(r.min_bw, 1e-9));
    }
    state.counters["per_node"] = r.min_bw;
    state.counters["accumulated"] = r.accumulated;
    state.counters["efficiency_pct"] = r.efficiency * 100.0;
}

void sweep(benchmark::internal::Benchmark* b) {
    for (int active = 4; active <= 8; ++active)
        for (const int distance : {1, 7}) b->Args({active, distance});
    b->UseManualTime()->Iterations(1)->Unit(benchmark::kMillisecond);
}

BENCHMARK(BM_SegmentUtilization)->Apply(sweep);

}  // namespace

int main(int argc, char** argv) {
    scimpi::bench::json_init("table2_segments", argc, argv);
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();

    std::printf("\n=== Table 2: segment utilization on one 8-node ringlet (166 MHz) ===\n");
    std::printf("%7s | %10s %10s | %10s %10s %8s %8s\n", "active",
                "1/seg p.n", "1/seg acc", "8/seg p.n", "8/seg acc", "load%", "eff%");
    // Per-node bandwidth at utilization 1 defines the offered load.
    const double solo = scaling_put(8, 1, 1, 64_KiB, 2_MiB).min_bw;
    for (int active = 4; active <= 8; ++active) {
        const ScalingResult u1 = scaling_put(8, active, 1, 64_KiB, 2_MiB);
        const ScalingResult u8 = scaling_put(8, active, 7, 64_KiB, 2_MiB);
        const double load = static_cast<double>(active) * solo / u8.nominal * 100.0;
        std::printf("%7d | %10.2f %10.1f | %10.2f %10.1f %7.1f%% %7.1f%%\n", active,
                    u1.min_bw, u1.accumulated, u8.min_bw, u8.accumulated, load,
                    u8.efficiency * 100.0);
    }

    std::printf("\n--- link frequency scaling (worst case: 8 nodes, 8 transfers/segment) ---\n");
    std::printf("%9s %12s %12s %12s\n", "link MHz", "nominal", "accumulated", "p. node");
    for (const double mhz : {166.0, 200.0}) {
        const ScalingResult r = scaling_put(8, 8, 7, 64_KiB, 2_MiB, mhz);
        std::printf("%9.0f %12.1f %12.1f %12.2f\n", mhz, r.nominal, r.accumulated,
                    r.min_bw);
    }
    benchmark::Shutdown();
    scimpi::bench::json_write();
    return 0;
}
