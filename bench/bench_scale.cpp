// bench_scale: simulator throughput at growing world sizes.
//
// The ROADMAP's scaling goal (256-1024 ranks) needs the simulator itself to
// be fast, so this harness measures the *simulator*, not the simulated
// machine: sim-events/sec of wall clock and wall-clock spent per simulated
// second, at 4/8/16/32 ranks running a fixed collective+p2p workload with
// the flight recorder on.
//
//   ./bench_scale [--json FILE] [--ranks 4,8,16,32] [--iters N] [--bytes N]
//
// --json writes one RunReport v4 per scale under "runs", the format
// scripts/bench_compare.py diffs:
//
//   {"bench": "scale", "schema_version": 4,
//    "runs": [{"label": "scale/n4", "params": {...}, "report": {...}}, ...]}
//
// Simulated-side numbers (sim_time_ns, events_dispatched, counters, the
// sim.* timeseries) are bit-deterministic across hosts; wall-side numbers
// (wall_ns, events_per_sec_wall, ...) are not, and bench_compare.py skips
// them unless asked.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <numeric>
#include <string>
#include <vector>

#include "mpi/comm.hpp"

using namespace scimpi;
using namespace scimpi::mpi;

namespace {

struct ScaleRun {
    int ranks = 0;
    obs::RunReport report;
};

ScaleRun run_scale(int nodes, int iters, std::size_t bytes) {
    ClusterOptions opt;
    opt.nodes = nodes;
    opt.collect_stats = true;
    opt.record = 5_us;  // sim.* / link*.util series for the regression diff
    ScaleRun out;
    out.ranks = nodes;
    Cluster cluster(opt);
    cluster.run([iters, bytes](Comm& comm) {
        const int n = static_cast<int>(bytes / sizeof(double));
        std::vector<double> buf(static_cast<std::size_t>(n), 1.0);
        std::vector<double> sum(static_cast<std::size_t>(n), 0.0);
        std::vector<double> ring(64, 0.0);
        for (int it = 0; it < iters; ++it) {
            // One "timestep": a bcast fan-out, an allreduce, and a ring
            // neighbour exchange — the mix drives collectives, eager p2p and
            // the fabric at once.
            SCIMPI_REQUIRE(
                comm.bcast(buf.data(), n, Datatype::float64(), it % comm.size())
                    .is_ok(),
                "bcast failed");
            SCIMPI_REQUIRE(comm.allreduce_sum(buf.data(), sum.data(), n).is_ok(),
                           "allreduce failed");
            const int right = (comm.rank() + 1) % comm.size();
            const int left = (comm.rank() + comm.size() - 1) % comm.size();
            if (comm.rank() % 2 == 0) {
                SCIMPI_REQUIRE(comm.send(ring.data(), 64, Datatype::float64(),
                                         right, it)
                                   .is_ok(),
                               "ring send failed");
                comm.recv(ring.data(), 64, Datatype::float64(), left, it);
            } else {
                comm.recv(ring.data(), 64, Datatype::float64(), left, it);
                SCIMPI_REQUIRE(comm.send(ring.data(), 64, Datatype::float64(),
                                         right, it)
                                   .is_ok(),
                               "ring send failed");
            }
        }
    });
    out.report = cluster.stats_report();
    return out;
}

}  // namespace

int main(int argc, char** argv) {
    std::string json_path;
    std::vector<int> scales = {4, 8, 16, 32};
    int iters = 4;
    std::size_t bytes = 16_KiB;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--json" && i + 1 < argc) {
            json_path = argv[++i];
        } else if (arg == "--ranks" && i + 1 < argc) {
            scales.clear();
            for (const char* p = argv[++i]; *p != '\0';) {
                char* end = nullptr;
                const long v = std::strtol(p, &end, 10);
                if (end == p || v <= 0) break;
                scales.push_back(static_cast<int>(v));
                p = *end == ',' ? end + 1 : end;
            }
        } else if (arg == "--iters" && i + 1 < argc) {
            iters = std::atoi(argv[++i]);
        } else if (arg == "--bytes" && i + 1 < argc) {
            bytes = static_cast<std::size_t>(std::atoll(argv[++i]));
        } else {
            std::fprintf(stderr,
                         "usage: bench_scale [--json FILE] [--ranks 4,8,16] "
                         "[--iters N] [--bytes N]\n");
            return 2;
        }
    }
    if (scales.empty() || iters <= 0 || bytes < sizeof(double)) {
        std::fprintf(stderr, "bench_scale: bad parameters\n");
        return 2;
    }

    std::printf("%6s %12s %14s %12s %14s %16s\n", "ranks", "sim_ms", "events",
                "wall_ms", "events/s", "wall_per_sim_s");
    std::string json = "{\n  \"bench\": \"scale\",\n  \"schema_version\": 4,\n"
                       "  \"runs\": [\n";
    for (std::size_t i = 0; i < scales.size(); ++i) {
        const ScaleRun r = run_scale(scales[i], iters, bytes);
        const obs::RunReport& rep = r.report;
        std::printf("%6d %12.3f %14llu %12.3f %14.3g %16.3g\n", r.ranks,
                    rep.sim_seconds * 1e3,
                    static_cast<unsigned long long>(rep.events_dispatched),
                    static_cast<double>(rep.wall_ns) / 1e6,
                    rep.events_per_sec_wall, rep.wall_per_sim_second);
        if (!json_path.empty()) {
            char buf[128];
            std::snprintf(buf, sizeof buf,
                          "    {\"label\": \"scale/n%d\", \"params\": "
                          "{\"ranks\": %d, \"iters\": %d, \"bytes\": %zu}, "
                          "\"report\": ",
                          r.ranks, r.ranks, iters, bytes);
            json += buf;
            json += rep.to_json();
            // to_json ends in "}\n"; drop the newline, then close the run
            // object before the separator.
            if (!json.empty() && json.back() == '\n') json.pop_back();
            json += i + 1 < scales.size() ? "},\n" : "}\n";
        }
    }
    json += "  ]\n}\n";
    if (!json_path.empty()) {
        std::FILE* f = std::fopen(json_path.c_str(), "w");
        if (f == nullptr) {
            std::fprintf(stderr, "bench_scale: cannot open '%s'\n",
                         json_path.c_str());
            return 1;
        }
        std::fwrite(json.data(), 1, json.size(), f);
        std::fclose(f);
        std::printf("wrote %s (%zu runs)\n", json_path.c_str(), scales.size());
    }
    return 0;
}
