// Collective engine: shared-segment algorithms (SCIMPI_COLL auto/seg) vs the
// seed point-to-point trees ("p2p") for bcast / allreduce / alltoall across
// cluster sizes and payloads. The interesting regime is >= 4 ranks at
// >= 64 KiB, where the persistent collective segments amortize their
// bootstrap and the ring/pairwise schedules beat log-depth p2p trees.
#include <benchmark/benchmark.h>

#include <cstring>

#include "common.hpp"

namespace {

using namespace scimpi;
using namespace scimpi::bench;

enum class Op { bcast, allreduce, alltoall };

constexpr const char* kOpName[] = {"bcast", "allreduce", "alltoall"};

/// Average steady-state latency (simulated seconds) of one collective call.
/// One untimed warmup round absorbs the lazy segment-set bootstrap, exactly
/// as a long-running application would.
double coll_latency(Op op, int nodes, std::size_t bytes, const char* path,
                    int iters = 4) {
    ClusterOptions opt;
    opt.nodes = nodes;
    opt.coll = path;
    opt.collect_stats = true;  // host-side only; simulated time is unaffected
    Cluster cluster(opt);

    const int n_elems = static_cast<int>(bytes / 8);
    double elapsed = 0.0;
    cluster.run([&](Comm& c) {
        const int size = c.size();
        std::vector<double> in(static_cast<std::size_t>(n_elems) *
                                   (op == Op::alltoall ? static_cast<std::size_t>(size) : 1),
                               static_cast<double>(c.rank() + 1));
        std::vector<double> out(in.size(), 0.0);
        auto round = [&] {
            Status st;
            switch (op) {
                case Op::bcast:
                    st = c.bcast(in.data(), n_elems, Datatype::float64(), 0);
                    break;
                case Op::allreduce:
                    st = c.allreduce_sum(in.data(), out.data(), n_elems);
                    break;
                case Op::alltoall:
                    st = c.alltoall(in.data(), bytes, out.data());
                    break;
            }
            SCIMPI_REQUIRE(st.is_ok(), "collective failed");
        };
        round();  // warmup: segment-set bootstrap + rendezvous handshakes
        c.barrier();
        const double t0 = c.wtime();
        for (int i = 0; i < iters; ++i) round();
        c.barrier();
        if (c.rank() == 0) elapsed = (c.wtime() - t0) / iters;
    });
    last_report() = cluster.stats_report();
    return elapsed;
}

/// Payload bytes moved per call (for the goodput figure in the JSON dump).
std::size_t coll_payload(Op op, int nodes, std::size_t bytes) {
    return op == Op::alltoall ? bytes * static_cast<std::size_t>(nodes) : bytes;
}

double run_and_record(Op op, int nodes, std::size_t bytes, bool seg) {
    const char* path = seg ? "" : "p2p";  // "" = auto selection (segment engine)
    const double s = coll_latency(op, nodes, bytes, path);
    const double goodput =
        static_cast<double>(coll_payload(op, nodes, bytes)) / 1048576.0 / s;
    std::string label = std::string(kOpName[static_cast<int>(op)]) + "/n" +
                        std::to_string(nodes) + "/" + std::to_string(bytes) +
                        (seg ? "/auto" : "/p2p");
    json_run(label,
             {{"nodes", static_cast<double>(nodes)},
              {"bytes", static_cast<double>(bytes)},
              {"seg", seg ? 1.0 : 0.0},
              {"latency_us", s * 1e6}},
             goodput);
    return s;
}

void BM_Coll(benchmark::State& state) {
    const Op op = static_cast<Op>(state.range(0));
    const int nodes = static_cast<int>(state.range(1));
    const auto bytes = static_cast<std::size_t>(state.range(2));
    const bool seg = state.range(3) != 0;
    double s = 0.0;
    for (auto _ : state) {
        s = run_and_record(op, nodes, bytes, seg);
        state.SetIterationTime(s);
    }
    state.counters["us"] = s * 1e6;
    export_counters(state, {"coll.seg_bytes", "coll.seg_chunks", "coll.seg_ops",
                            "coll.p2p_ops", "coll.fallbacks"});
}

void sweep(benchmark::internal::Benchmark* b) {
    for (int op = 0; op < 3; ++op)
        for (const int nodes : {4, 8})
            for (const std::size_t bytes : {4_KiB, 64_KiB, 256_KiB})
                for (const int seg : {0, 1})
                    b->Args({op, nodes, static_cast<std::int64_t>(bytes), seg});
    b->UseManualTime()->Iterations(1)->Unit(benchmark::kMicrosecond);
}

BENCHMARK(BM_Coll)->Apply(sweep);

}  // namespace

int main(int argc, char** argv) {
    scimpi::bench::json_init("coll", argc, argv);
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();

    std::printf("\n=== Collective engine: segment path vs seed p2p (latency, us) ===\n");
    std::printf("steady state (one warmup round excluded); speedup = p2p / auto\n");
    for (const Op op : {Op::bcast, Op::allreduce, Op::alltoall}) {
        std::printf("\n--- %s ---\n", kOpName[static_cast<int>(op)]);
        std::printf("%6s %10s %12s %12s %9s\n", "ranks", "payload", "p2p", "auto",
                    "speedup");
        for (const int nodes : {4, 8}) {
            for (const std::size_t bytes : {4_KiB, 64_KiB, 256_KiB}) {
                const double p2p = coll_latency(op, nodes, bytes, "p2p");
                const double seg = coll_latency(op, nodes, bytes, "");
                std::printf("%6d %7zu KiB %10.1f %12.1f %8.2fx\n", nodes,
                            bytes / 1024, p2p * 1e6, seg * 1e6, p2p / seg);
            }
        }
    }
    benchmark::Shutdown();
    scimpi::bench::json_write();
    return 0;
}
