// Section 5.3 outlook: "a limit of 8 nodes per ringlet seems reasonable,
// which gives a 512 nodes system when using 3D-torus topology."
//
// This bench demonstrates the claim: the same all-active sparse-put workload
// that saturates a single ringlet keeps its per-node bandwidth when the
// machine grows as a torus of small ringlets, because dimension-order
// routing keeps most traffic on short local rings.
#include <benchmark/benchmark.h>

#include "common.hpp"

namespace {

using namespace scimpi;
using namespace scimpi::bench;

/// All nodes put to a neighbour one hop away in the highest dimension used.
double torus_put_min_bw(int nodes, int torus_w, int torus_h, int distance,
                        std::size_t bytes) {
    ClusterOptions opt;
    opt.nodes = nodes;
    opt.torus_w = torus_w;
    opt.torus_h = torus_h;
    opt.arena_bytes = 8_MiB;
    std::vector<double> bw(static_cast<std::size_t>(nodes), 0.0);
    Cluster cluster(opt);
    cluster.run([&](Comm& comm) {
        const std::size_t winsize = 512_KiB;
        auto mem = comm.alloc_mem(winsize);
        auto win = comm.win_create(mem.value().data(), winsize);
        std::vector<std::byte> local(64_KiB, std::byte{1});
        const int target = (comm.rank() + distance) % comm.size();
        win->fence();
        const double t0 = comm.wtime();
        std::size_t sent = 0, off = 0;
        while (sent < bytes) {
            SCIMPI_REQUIRE(
                win->put(local.data(), 64_KiB, Datatype::byte_(), target, off)
                    .is_ok(),
                "put failed");
            sent += 64_KiB;
            off = (off + 128_KiB) % (winsize - 64_KiB);
        }
        win->fence();
        bw[static_cast<std::size_t>(comm.rank())] =
            bandwidth_mib(bytes, static_cast<SimTime>((comm.wtime() - t0) * 1e9));
    });
    double min_bw = 1e30;
    for (const double b : bw) min_bw = std::min(min_bw, b);
    return min_bw;
}

void BM_TorusScaling(benchmark::State& state) {
    const int nodes = static_cast<int>(state.range(0));
    const int w = static_cast<int>(state.range(1));
    const int h = static_cast<int>(state.range(2));
    double bw = 0.0;
    for (auto _ : state) {
        bw = torus_put_min_bw(nodes, w, h, nodes > 4 ? 5 : 1, 1_MiB);
        state.SetIterationTime(1.0 / std::max(bw, 1e-9));
    }
    state.counters["min_MiB/s"] = bw;
}

void sweep(benchmark::internal::Benchmark* b) {
    b->Args({8, 0, 0});    // single ringlet of 8
    b->Args({16, 0, 0});   // one oversized ring of 16 (the anti-pattern)
    b->Args({16, 4, 0});   // 4x4 2D torus
    b->Args({27, 3, 3});   // 3x3x3 3D torus
    b->UseManualTime()->Iterations(1)->Unit(benchmark::kMillisecond);
}

BENCHMARK(BM_TorusScaling)->Apply(sweep);

}  // namespace

int main(int argc, char** argv) {
    scimpi::bench::json_init("outlook_torus", argc, argv);
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();

    std::printf("\n=== Outlook: ringlet vs torus scaling (all nodes active, min per-node MiB/s) ===\n");
    std::printf("%-28s %8s %12s\n", "topology", "nodes", "min MiB/s");
    struct Row {
        const char* name;
        int nodes, w, h, distance;
    };
    const Row rows[] = {
        {"ring(8)", 8, 0, 0, 5},
        {"ring(16)", 16, 0, 0, 5},
        {"ring(32)", 32, 0, 0, 5},
        {"torus2d(4x4)", 16, 4, 0, 5},
        {"torus2d(8x4)", 32, 8, 0, 5},
        {"torus3d(3x3x3)", 27, 3, 3, 5},
        {"torus3d(4x4x2)", 32, 4, 4, 5},
    };
    for (const Row& r : rows)
        std::printf("%-28s %8d %12.1f\n", r.name, r.nodes,
                    torus_put_min_bw(r.nodes, r.w, r.h, r.distance, 1_MiB));
    std::printf(
        "\nLong single rings collapse under distance-5 traffic; tori keep routes\n"
        "short and per-node bandwidth close to the adapter limit (~158 MiB/s).\n");
    benchmark::Shutdown();
    scimpi::bench::json_write();
    return 0;
}
