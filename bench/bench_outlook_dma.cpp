// Section 6 outlook: "It will be interesting to evaluate the possibilities
// of non-contiguous data transfers with DMA-based interconnects. This can be
// done with the DMA-engine of the PCI-SCI adapters."
//
// This bench implements that evaluation: rendezvous chunks moved by the
// adapter's DMA engine (contiguous descriptors and chained-descriptor
// gathers for non-contiguous data) against the paper's PIO direct_pack_ff.
// The shape it demonstrates: DMA wins for large contiguous transfers
// (235 vs ~160 MiB/s streaming) but the per-descriptor cost makes chained
// gather DMA lose badly for small basic blocks — exactly why the paper left
// it as future work.
#include <benchmark/benchmark.h>

#include "common.hpp"

namespace {

using namespace scimpi;
using namespace scimpi::bench;

double dma_noncontig_bandwidth(std::size_t block, bool use_dma) {
    ClusterOptions opt;
    opt.nodes = 2;
    opt.cfg.use_dma_rndv = use_dma;
    opt.cfg.dma_rndv_threshold = 32_KiB;
    opt.cfg.rndv_chunk = 128_KiB;

    Datatype type;
    const std::size_t total = 1_MiB;
    if (block == 0) {
        type = Datatype::contiguous(static_cast<int>(total / 8), Datatype::float64());
    } else {
        const int elems = static_cast<int>(block / 8);
        type = Datatype::vector(static_cast<int>(total / block), elems, 2 * elems,
                                Datatype::float64());
    }
    const std::size_t span = static_cast<std::size_t>(type.extent()) / 8 + 16;
    double seconds = 0.0;
    Cluster cluster(opt);
    cluster.run([&](Comm& comm) {
        std::vector<double> buf(span, 1.0);
        for (int it = 0; it < 3; ++it) {
            comm.barrier();
            const double t0 = comm.wtime();
            if (comm.rank() == 0)
                SCIMPI_REQUIRE(comm.send(buf.data(), 1, type, 1, it).is_ok(),
                               "send failed");
            else {
                comm.recv(buf.data(), 1, type, 0, it);
                if (it > 0) seconds += comm.wtime() - t0;
            }
        }
    });
    return bandwidth_mib(2 * total, static_cast<SimTime>(seconds * 1e9));
}

void BM_DmaNoncontig(benchmark::State& state) {
    const auto block = static_cast<std::size_t>(state.range(0));
    const bool dma = state.range(1) != 0;
    double bw = 0.0;
    for (auto _ : state) {
        bw = dma_noncontig_bandwidth(block, dma);
        state.SetIterationTime(1.0 / std::max(bw, 1e-9));
    }
    state.counters["MiB/s"] = bw;
    state.SetLabel(dma ? "dma" : "pio");
}

void sweep(benchmark::internal::Benchmark* b) {
    for (const std::int64_t block : {0, 1024, 8192, 65536})
        for (const int dma : {0, 1}) b->Args({block, dma});
    b->UseManualTime()->Iterations(1)->Unit(benchmark::kMillisecond);
}

BENCHMARK(BM_DmaNoncontig)->Apply(sweep);

}  // namespace

int main(int argc, char** argv) {
    scimpi::bench::json_init("outlook_dma", argc, argv);
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();

    std::printf("\n=== Section 6 outlook: DMA vs PIO rendezvous (MiB/s, 1 MiB payload) ===\n");
    std::printf("%12s %10s %10s %8s\n", "block", "PIO/ff", "DMA", "DMA/PIO");
    for (const std::size_t block : {0u, 512u, 2048u, 8192u, 32768u, 131072u}) {
        const double pio = dma_noncontig_bandwidth(block, false);
        const double dma = dma_noncontig_bandwidth(block, true);
        std::printf("%12s %10.1f %10.1f %8.2f\n",
                    block == 0 ? "contiguous" : std::to_string(block).c_str(), pio,
                    dma, dma / pio);
    }
    std::printf(
        "\nDMA wins for large blocks/contiguous data; chained descriptors make\n"
        "it lose for fine-grained layouts — the trade-off the outlook predicts.\n");
    benchmark::Shutdown();
    scimpi::bench::json_write();
    return 0;
}
