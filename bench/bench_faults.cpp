// Goodput under fault load versus clean runs (ISSUE 2 / DESIGN.md §8). The
// same rendezvous stream is driven over a healthy ring, through link-flap
// windows of growing length, through a CRC error-rate window, and through a
// seeded probabilistic soak. The seed code answered the flap with a terminal
// link_failure; with the resilience layer every byte still arrives — at a
// goodput that prices the backoff — and the retry/recovery counters show the
// protocol loop (not luck) moved it.
#include <benchmark/benchmark.h>

#include "common.hpp"
#include "fault/schedule.hpp"

namespace {

using namespace scimpi;
using namespace scimpi::bench;

struct GoodputResult {
    double goodput = 0.0;  ///< MiB/s of payload delivered intact
    std::uint64_t delivered = 0;
    std::uint64_t failed = 0;
    double sim_seconds = 0.0;
};

/// Stream `messages` rendezvous sends of `bytes` each from node 0 to node 1
/// of a 2-node ring while `faults` plays out, and report the goodput of the
/// transfers that completed successfully.
GoodputResult stream_goodput(const fault::FaultSchedule& faults,
                             int messages = 16, std::size_t bytes = 256_KiB) {
    ClusterOptions opt;
    opt.nodes = 2;
    opt.collect_stats = true;
    opt.faults = faults;
    GoodputResult r;
    Cluster cluster(opt);
    cluster.run([&](Comm& comm) {
        std::vector<std::byte> buf(bytes, std::byte{0x5a});
        const double t0 = comm.wtime();
        for (int m = 0; m < messages; ++m) {
            if (comm.rank() == 0) {
                const Status st = comm.send(buf.data(), static_cast<int>(bytes),
                                            Datatype::byte_(), 1, m);
                if (st)
                    ++r.delivered;
                else
                    ++r.failed;
            } else {
                (void)comm.recv(buf.data(), static_cast<int>(bytes),
                                Datatype::byte_(), 0, m);
            }
        }
        if (comm.rank() == 0) r.sim_seconds = comm.wtime() - t0;
    });
    last_report() = cluster.stats_report();
    r.goodput = bandwidth_mib(r.delivered * bytes,
                              static_cast<SimTime>(r.sim_seconds * 1e9));
    return r;
}

/// range(0) = flap length in microseconds (0: clean run). The flap opens at
/// 300us, well inside the stream, so at least one rendezvous chunk lands in
/// the window and has to back off.
void BM_FlapGoodput(benchmark::State& state) {
    const SimTime flap_us = state.range(0);
    fault::FaultSchedule faults;
    if (flap_us > 0) faults.flap(300'000, 0, flap_us * 1'000);
    GoodputResult r;
    for (auto _ : state) {
        r = stream_goodput(faults);
        state.SetIterationTime(r.sim_seconds);
    }
    state.counters["goodput_MiB/s"] = r.goodput;
    state.counters["delivered"] = static_cast<double>(r.delivered);
    state.counters["failed"] = static_cast<double>(r.failed);
    export_counters(state, {"fault.injected", "mpi.send_retries",
                            "mpi.send_recoveries"});
}

BENCHMARK(BM_FlapGoodput)
    ->Arg(0)
    ->Arg(500)
    ->Arg(1000)
    ->Arg(2000)
    ->UseManualTime()
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

/// Probabilistic soak: every 500us each link flaps with p=0.1 for 100us.
/// Same seed ⇒ same fault pattern ⇒ same goodput, run to run.
void BM_SoakGoodput(benchmark::State& state) {
    fault::FaultSchedule faults;
    faults.set_seed(static_cast<std::uint64_t>(state.range(0)))
        .soak(0, 50'000'000, 500'000, 0.1, 100'000);
    GoodputResult r;
    for (auto _ : state) {
        r = stream_goodput(faults);
        state.SetIterationTime(r.sim_seconds);
    }
    state.counters["goodput_MiB/s"] = r.goodput;
    export_counters(state, {"fault.injected", "mpi.send_recoveries"});
}

BENCHMARK(BM_SoakGoodput)
    ->Arg(42)
    ->Arg(43)
    ->UseManualTime()
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
    scimpi::bench::json_init("faults", argc, argv);
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();

    std::printf("\n=== Goodput under fault load (2-node ring, 16 x 256 KiB rendezvous) ===\n");
    std::printf("%-18s %12s %10s %8s %10s %8s\n", "fault load", "goodput MiB/s",
                "delivered", "retries", "recoveries", "vs clean");
    const GoodputResult clean = stream_goodput({});
    auto row = [&](const char* label, const GoodputResult& r) {
        std::printf("%-18s %12.1f %7llu/16 %8llu %10llu %7.0f%%\n", label,
                    r.goodput, static_cast<unsigned long long>(r.delivered),
                    static_cast<unsigned long long>(last_report().counter("mpi.send_retries")),
                    static_cast<unsigned long long>(last_report().counter("mpi.send_recoveries")),
                    100.0 * r.goodput / clean.goodput);
    };
    std::printf("%-18s %12.1f %7llu/16 %8d %10d %7s\n", "clean", clean.goodput,
                static_cast<unsigned long long>(clean.delivered), 0, 0, "-");
    for (const SimTime us : {500, 1000, 2000}) {
        fault::FaultSchedule faults;
        faults.flap(300'000, 0, us * 1'000);
        char label[32];
        std::snprintf(label, sizeof label, "flap %lldus",
                      static_cast<long long>(us));
        row(label, stream_goodput(faults));
    }
    {
        fault::FaultSchedule faults;
        faults.error_window(0, 20'000'000, 0, 0.05);
        row("5% CRC errors", stream_goodput(faults));
    }
    {
        fault::FaultSchedule faults;
        faults.set_seed(42).soak(0, 50'000'000, 500'000, 0.1, 100'000);
        row("soak p=0.1", stream_goodput(faults));
    }
    benchmark::Shutdown();
    scimpi::bench::json_write();
    return 0;
}
