// Shared measurement harness for the paper-reproduction benchmarks. Each
// helper builds a fresh simulated cluster, runs the communication pattern of
// the corresponding paper experiment, and returns *simulated* time /
// bandwidth. Host wall-clock never enters any number.
#pragma once

#include <cstdio>
#include <initializer_list>
#include <numeric>
#include <string>
#include <string_view>
#include <vector>

#include "mpi/comm.hpp"
#include "mpi/rma/window.hpp"
#include "obs/metrics.hpp"

namespace scimpi::bench {

using namespace scimpi::mpi;

/// Run report of the most recent helper invocation (each helper overwrites
/// it). Benchmarks pull protocol counters out of it into their user counters.
inline obs::RunReport& last_report() {
    static obs::RunReport report;
    return report;
}

/// Copy selected registry counters of the last run into a benchmark's
/// user-counter table (any benchmark::State-like type works).
template <typename State>
void export_counters(State& state, std::initializer_list<std::string_view> names) {
    for (const std::string_view n : names)
        state.counters[std::string(n)] =
            static_cast<double>(last_report().counter(n));
}

// ---------------------------------------------------------------------------
// Machine-readable results: `--json FILE` makes the binary additionally write
// a JSON document ("BENCH_<name>.json" by convention) with one object per
// measured configuration — its parameters, the goodput, and the non-empty
// histogram snapshots of that run's stats report. The flag is stripped from
// argv before benchmark::Initialize sees it.
// ---------------------------------------------------------------------------

struct JsonState {
    std::string bench;              ///< benchmark name, e.g. "fig07_noncontig"
    std::string path;               ///< empty = --json not given, all no-ops
    std::vector<std::string> runs;  ///< pre-serialized run objects
};
inline JsonState& json_state() {
    static JsonState s;
    return s;
}

/// Call first in main(): remembers the benchmark name and strips
/// `--json FILE` out of argv.
inline void json_init(std::string_view bench, int& argc, char** argv) {
    JsonState& js = json_state();
    js.bench = bench;
    for (int i = 1; i < argc; ++i) {
        if (std::string_view(argv[i]) == "--json" && i + 1 < argc) {
            js.path = argv[i + 1];
            for (int j = i; j + 2 < argc; ++j) argv[j] = argv[j + 2];
            argc -= 2;
            return;
        }
    }
}

/// Record one measured configuration against the current last_report().
/// The cluster helpers below call this automatically.
inline void json_run(std::string_view label,
                     std::initializer_list<std::pair<std::string_view, double>> params,
                     double goodput_mibs) {
    JsonState& js = json_state();
    if (js.path.empty()) return;
    char buf[64];
    std::string r = R"(    {"label": ")";
    obs::json_escape(r, label);
    r += R"(", "params": {)";
    bool first = true;
    for (const auto& [k, v] : params) {
        if (!first) r += ", ";
        first = false;
        r += '"';
        obs::json_escape(r, k);
        r += "\": ";
        std::snprintf(buf, sizeof buf, "%.6g", v);
        r += buf;
    }
    std::snprintf(buf, sizeof buf, "%.6g", goodput_mibs);
    r += R"(}, "goodput_mibs": )";
    r += buf;
    r += R"(, "histograms": {)";
    first = true;
    for (const obs::HistogramSnapshot& h : last_report().histograms) {
        if (h.count == 0) continue;
        if (!first) r += ", ";
        first = false;
        r += '"';
        obs::json_escape(r, h.name);
        r += "\": ";
        r += h.to_json();
    }
    r += "}}";
    js.runs.push_back(std::move(r));
}

/// Write the collected runs; call last in main(). No-op without `--json`.
inline void json_write() {
    const JsonState& js = json_state();
    if (js.path.empty()) return;
    std::string out = "{\n  \"bench\": \"";
    obs::json_escape(out, js.bench);
    out += "\",\n  \"runs\": [\n";
    for (std::size_t i = 0; i < js.runs.size(); ++i) {
        out += js.runs[i];
        if (i + 1 < js.runs.size()) out += ',';
        out += '\n';
    }
    out += "  ]\n}\n";
    std::FILE* f = std::fopen(js.path.c_str(), "w");
    if (f == nullptr) {
        std::fprintf(stderr, "bench: cannot open '%s' for --json output\n",
                     js.path.c_str());
        return;
    }
    std::fwrite(out.data(), 1, out.size(), f);
    std::fclose(f);
    std::printf("wrote %s (%zu runs)\n", js.path.c_str(), js.runs.size());
}

/// Total payload of the noncontig micro-benchmark (paper Section 3.4).
inline constexpr std::size_t kNoncontigTotal = 256_KiB;

/// Figure 7 data point: transfer kNoncontigTotal bytes as blocks of `block`
/// bytes with stride 2*block (block == 0: contiguous reference). Returns the
/// receiver-observed bandwidth in MiB/s.
inline double noncontig_bandwidth(bool internode, std::size_t block, bool use_ff,
                                  int repeats = 3) {
    ClusterOptions opt;
    if (internode) {
        opt.nodes = 2;
    } else {
        opt.nodes = 1;
        opt.procs_per_node = 2;
    }
    opt.cfg.use_direct_pack_ff = use_ff;
    opt.cfg.ff_min_block = 0;  // paper footnote: full comparison down to 8 B
    opt.collect_stats = true;  // host-side only; simulated time is unaffected

    Datatype type;
    if (block == 0) {
        type = Datatype::contiguous(static_cast<int>(kNoncontigTotal / 8),
                                    Datatype::float64());
    } else {
        const int elems = static_cast<int>(block / 8);
        const int count = static_cast<int>(kNoncontigTotal / block);
        type = Datatype::vector(count, elems, 2 * elems, Datatype::float64());
    }
    const std::size_t span =
        static_cast<std::size_t>(type.extent()) / 8 + 16;

    double seconds = 0.0;
    Cluster cluster(opt);
    cluster.run([&](Comm& comm) {
        std::vector<double> buf(span, 1.0);
        for (int it = 0; it < repeats + 1; ++it) {  // first iteration warms up
            comm.barrier();
            const double t0 = comm.wtime();
            if (comm.rank() == 0) {
                SCIMPI_REQUIRE(comm.send(buf.data(), 1, type, 1, it).is_ok(),
                               "send failed");
            } else {
                comm.recv(buf.data(), 1, type, 0, it);
                if (it > 0) seconds += comm.wtime() - t0;
            }
        }
    });
    last_report() = cluster.stats_report();
    const double bw =
        bandwidth_mib(kNoncontigTotal * static_cast<std::size_t>(repeats),
                      static_cast<SimTime>(seconds * 1e9));
    json_run(internode ? "noncontig:internode" : "noncontig:intranode",
             {{"block", static_cast<double>(block)},
              {"use_ff", use_ff ? 1.0 : 0.0},
              {"repeats", static_cast<double>(repeats)}},
             bw);
    return bw;
}

struct SparseResult {
    double latency_us = 0.0;   ///< per communication call
    double bandwidth = 0.0;    ///< MiB/s of accessed payload, per process
    std::uint64_t ops = 0;
};

/// Figure 9 data point: the *sparse* micro-benchmark. Both processes sweep
/// the partner's window with `access`-byte puts/gets at stride 2, then
/// fence (paper Figure 8).
inline SparseResult sparse_osc(bool shared_window, bool is_put, std::size_t access,
                               std::size_t winsize = 256_KiB) {
    ClusterOptions opt;
    opt.nodes = 2;
    opt.collect_stats = true;
    SparseResult result;
    Cluster cluster(opt);
    cluster.run([&](Comm& comm) {
        std::span<std::byte> wmem;
        std::vector<std::byte> heap;
        if (shared_window) {
            auto mem = comm.alloc_mem(winsize);
            SCIMPI_REQUIRE(mem.is_ok(), "window alloc failed");
            wmem = mem.value();
        } else {
            heap.assign(winsize, std::byte{0});
            wmem = {heap.data(), heap.size()};
        }
        auto win = comm.win_create(wmem.data(), winsize);
        std::vector<std::byte> local(access, std::byte{0x42});
        const int partner = 1 - comm.rank();
        const auto type = Datatype::byte_();
        const int count = static_cast<int>(access);

        win->fence();
        const double t0 = comm.wtime();
        std::uint64_t ops = 0;
        const std::size_t stride = 2 * access;
        for (std::size_t off = 0; off + access <= winsize; off += stride) {
            if (is_put)
                SCIMPI_REQUIRE(
                    win->put(local.data(), count, type, partner, off).is_ok(),
                    "put failed");
            else
                SCIMPI_REQUIRE(
                    win->get(local.data(), count, type, partner, off).is_ok(),
                    "get failed");
            ++ops;
        }
        win->fence();
        const double dt = comm.wtime() - t0;
        if (comm.rank() == 0) {
            result.ops = ops;
            result.latency_us = dt / static_cast<double>(ops) * 1e6;
            result.bandwidth = bandwidth_mib(ops * access,
                                             static_cast<SimTime>(dt * 1e9));
        }
    });
    last_report() = cluster.stats_report();
    json_run(is_put ? "sparse:put" : "sparse:get",
             {{"shared_window", shared_window ? 1.0 : 0.0},
              {"access", static_cast<double>(access)},
              {"winsize", static_cast<double>(winsize)}},
             result.bandwidth);
    return result;
}

/// Figure 12 / Table 2 data point: `active` nodes on a ring of `ring_nodes`
/// simultaneously stream `bytes` of sparse puts (access `access`, stride 2)
/// to the node `distance` hops downstream. Returns the minimum of the
/// per-process bandwidths (the paper's scaling metric).
struct ScalingResult {
    double min_bw = 0.0;       ///< MiB/s per node (min of max)
    double accumulated = 0.0;  ///< sum over active nodes
    double efficiency = 0.0;   ///< accumulated / nominal ring bandwidth
    double nominal = 0.0;      ///< nominal link bandwidth (MiB/s)
};

inline ScalingResult scaling_put(int ring_nodes, int active, int distance,
                                 std::size_t access = 64_KiB,
                                 std::size_t bytes = 4_MiB,
                                 double link_mhz = 166.0) {
    ClusterOptions opt;
    opt.nodes = ring_nodes;
    opt.sci.link_mhz = link_mhz;
    opt.arena_bytes = 24_MiB;
    opt.collect_stats = true;
    ScalingResult result;
    std::vector<double> bw(static_cast<std::size_t>(ring_nodes), 0.0);
    double elapsed = 0.0;
    Cluster cluster(opt);
    cluster.run([&](Comm& comm) {
        const std::size_t winsize = 2 * access * 8;  // 8 strided slots
        auto mem = comm.alloc_mem(winsize);
        SCIMPI_REQUIRE(mem.is_ok(), "window alloc failed");
        auto win = comm.win_create(mem.value().data(), winsize);
        std::vector<std::byte> local(access, std::byte{1});
        const bool sender = comm.rank() < active;
        const int target = (comm.rank() + distance) % comm.size();

        win->fence();
        const double t0 = comm.wtime();
        if (sender) {
            std::size_t sent = 0;
            std::size_t off = 0;
            while (sent < bytes) {
                SCIMPI_REQUIRE(win->put(local.data(), static_cast<int>(access),
                                        Datatype::byte_(), target, off)
                                   .is_ok(),
                               "put failed");
                sent += access;
                off = (off + 2 * access) % winsize;
            }
        }
        win->fence();
        const double dt = comm.wtime() - t0;
        if (sender)
            bw[static_cast<std::size_t>(comm.rank())] =
                bandwidth_mib(bytes, static_cast<SimTime>(dt * 1e9));
        if (comm.rank() == 0) elapsed = dt;
    });
    (void)elapsed;
    last_report() = cluster.stats_report();

    result.min_bw = 1e30;
    for (int r = 0; r < active; ++r) {
        result.min_bw = std::min(result.min_bw, bw[static_cast<std::size_t>(r)]);
        result.accumulated += bw[static_cast<std::size_t>(r)];
    }
    result.nominal = cluster.fabric().params().nominal_link_bw();
    result.efficiency = result.accumulated / result.nominal;
    json_run("scaling:put",
             {{"ring_nodes", static_cast<double>(ring_nodes)},
              {"active", static_cast<double>(active)},
              {"distance", static_cast<double>(distance)},
              {"access", static_cast<double>(access)}},
             result.accumulated);
    return result;
}

}  // namespace scimpi::bench
