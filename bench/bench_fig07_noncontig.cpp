// Figure 7: performance of non-contiguous data transfers in SCI-MPICH —
// generic pack-and-send vs direct_pack_ff, inter-node (SCI) and intra-node
// (shared memory), with the equivalent contiguous transfer as reference.
// 256 KiB total payload, blocksize 8 B .. 128 KiB, stride = 2 x blocksize.
#include <benchmark/benchmark.h>

#include "common.hpp"

namespace {

using namespace scimpi;
using namespace scimpi::bench;

void BM_Noncontig(benchmark::State& state) {
    const auto block = static_cast<std::size_t>(state.range(0));
    const bool internode = state.range(1) != 0;
    const bool use_ff = state.range(2) != 0;
    double bw = 0.0;
    for (auto _ : state) {
        bw = noncontig_bandwidth(internode, block, use_ff);
        state.SetIterationTime(
            static_cast<double>(kNoncontigTotal) / 1048576.0 / bw);
    }
    state.counters["MiB/s"] = bw;
    export_counters(state, {"pack.ff_packs", "pack.generic_packs",
                            "pack.ff_direct_blocks", "pack.ff_direct_bytes",
                            "pack.generic_staged_bytes"});
    state.counters["eff_vs_contig"] =
        bw / noncontig_bandwidth(internode, 0, use_ff);
}

void sweep(benchmark::internal::Benchmark* b) {
    for (std::size_t block = 8; block <= 128_KiB; block *= 4)
        for (const int internode : {1, 0})
            for (const int ff : {1, 0})
                b->Args({static_cast<std::int64_t>(block), internode, ff});
    b->UseManualTime()->Iterations(1)->Unit(benchmark::kMicrosecond);
}

BENCHMARK(BM_Noncontig)->Apply(sweep);

}  // namespace

int main(int argc, char** argv) {
    scimpi::bench::json_init("fig07_noncontig", argc, argv);
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();

    std::printf("\n=== Figure 7: non-contiguous transfer bandwidth (MiB/s) ===\n");
    std::printf("total %zu KiB, stride = 2 x blocksize\n\n", kNoncontigTotal / 1024);
    for (const bool internode : {true, false}) {
        const double contig = noncontig_bandwidth(internode, 0, true);
        std::printf("--- %s (contiguous reference: %.1f MiB/s) ---\n",
                    internode ? "inter-node via SCI" : "intra-node via shared memory",
                    contig);
        std::printf("%10s %14s %14s %10s\n", "block", "generic", "direct_pack_ff",
                    "ff/contig");
        for (std::size_t block = 8; block <= 128_KiB; block *= 2) {
            const double gen = noncontig_bandwidth(internode, block, false);
            const double ff = noncontig_bandwidth(internode, block, true);
            std::printf("%10zu %14.1f %14.1f %9.0f%%\n", block, gen, ff,
                        ff / contig * 100.0);
        }
        std::printf("\n");
    }
    benchmark::Shutdown();
    scimpi::bench::json_write();
    return 0;
}
