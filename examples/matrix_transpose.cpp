// Distributed matrix transpose: the classic all-to-all workload whose local
// data movement is all strided — a natural fit for subarray datatypes and
// the direct_pack_ff engine.
//
// An N x N matrix is distributed by block columns over P ranks. The
// transpose sends block (r, c) of the column slab as a *subarray datatype*
// (no manual packing in user code) and receives into the transposed
// position. Verified against a serial transpose.
#include <cstdio>
#include <numeric>
#include <vector>

#include "mpi/comm.hpp"

using namespace scimpi;
using namespace scimpi::mpi;

namespace {
constexpr int kRanks = 4;
constexpr int kN = 256;                 // global matrix is kN x kN doubles
constexpr int kCols = kN / kRanks;      // columns per rank

double value_at(int row, int col) { return row * 1000.0 + col; }
}  // namespace

int main() {
    ClusterOptions opt;
    opt.nodes = kRanks;
    Cluster cluster(opt);

    bool ok = true;
    cluster.run([&](Comm& comm) {
        const int rank = comm.rank();
        // Local slab: kN rows x kCols columns, row-major.
        std::vector<double> slab(static_cast<std::size_t>(kN) * kCols);
        for (int r = 0; r < kN; ++r)
            for (int c = 0; c < kCols; ++c)
                slab[static_cast<std::size_t>(r) * kCols + c] =
                    value_at(r, rank * kCols + c);

        // The (block-row p) x (all my columns) tile I send to rank p, and
        // the transposed tile layout I receive into, both as subarrays.
        const std::array<int, 2> sizes{kN, kCols};
        const std::array<int, 2> tile{kCols, kCols};
        std::vector<double> result(slab.size(), -1.0);

        std::vector<Request> reqs;
        for (int p = 0; p < kRanks; ++p) {
            const std::array<int, 2> send_start{p * kCols, 0};
            auto send_t = Datatype::subarray(sizes, tile, send_start,
                                             Datatype::float64());
            const std::array<int, 2> recv_start{p * kCols, 0};
            auto recv_t = Datatype::subarray(sizes, tile, recv_start,
                                             Datatype::float64());
            if (p == rank) {
                // Local tile: transpose in place into the result.
                for (int r = 0; r < kCols; ++r)
                    for (int c = 0; c < kCols; ++c)
                        result[static_cast<std::size_t>(p * kCols + r) * kCols + c] =
                            slab[static_cast<std::size_t>(p * kCols + c) * kCols + r];
                continue;
            }
            reqs.push_back(comm.irecv(result.data(), 1, recv_t, p, 1));
            reqs.push_back(comm.isend(slab.data(), 1, send_t, p, 1));
        }
        SCIMPI_REQUIRE(comm.wait_all(reqs).is_ok(), "wait_all failed");

        // Received tiles hold the *untransposed* remote data; transpose each
        // tile locally (cache-friendly small tiles).
        for (int p = 0; p < kRanks; ++p) {
            if (p == rank) continue;
            for (int r = 0; r < kCols; ++r)
                for (int c = r + 1; c < kCols; ++c)
                    std::swap(result[static_cast<std::size_t>(p * kCols + r) * kCols + c],
                              result[static_cast<std::size_t>(p * kCols + c) * kCols + r]);
        }
        comm.proc().delay(static_cast<SimTime>(slab.size()) * 2);  // transpose flops

        // result now holds columns [rank*kCols, ...) of the transposed
        // matrix: result[r][c] == value_at(c_global, r)? Verify.
        int errors = 0;
        for (int r = 0; r < kN; ++r)
            for (int c = 0; c < kCols; ++c) {
                const double want = value_at(rank * kCols + c, r);  // transposed
                const double got = result[static_cast<std::size_t>(r) * kCols + c];
                if (want != got && ++errors < 3)
                    std::printf("[rank %d] mismatch at (%d,%d): %f != %f\n", rank, r,
                                c, got, want);
            }
        if (errors > 0) ok = false;
        if (comm.rank() == 0)
            std::printf("transpose of %dx%d over %d ranks: ff packs used: %llu\n",
                        kN, kN, kRanks,
                        static_cast<unsigned long long>(
                            comm.rank_state().stats().ff_packs));
    });

    std::printf("matrix transpose %s, simulated %.3f ms\n", ok ? "verified" : "FAILED",
                cluster.wtime() * 1e3);
    return ok ? 0 : 1;
}
