// Dynamic load balancing with passive-target one-sided communication — the
// "computational chemistry" use case from Section 4 of the paper: task sizes
// vary wildly, so a shared work counter beats any static distribution.
//
// Rank 0's window holds the global next-task counter. Workers grab chunks
// with MPI_Win_lock / get / put / unlock; nobody polls, nobody receives —
// exactly the pattern two-sided messaging makes painful.
#include <cstdio>
#include <vector>

#include "common/rng.hpp"
#include "mpi/comm.hpp"
#include "mpi/rma/window.hpp"

using namespace scimpi;
using namespace scimpi::mpi;

namespace {
constexpr int kRanks = 6;
constexpr int kTasks = 240;
constexpr int kChunk = 4;

/// Wildly varying task cost (simulated compute), deterministic per task id.
SimTime task_cost(int id) {
    Rng rng(1234u + static_cast<std::uint64_t>(id));
    return static_cast<SimTime>(5'000 + rng.below(400'000));  // 5 us .. 405 us
}
}  // namespace

int main() {
    ClusterOptions opt;
    opt.nodes = kRanks;
    Cluster cluster(opt);

    std::vector<int> done_per_rank(kRanks, 0);
    std::vector<double> busy_us(kRanks, 0.0);

    cluster.run([&](Comm& comm) {
        const int rank = comm.rank();
        // The shared counter lives in rank 0's window.
        auto mem = comm.alloc_mem(sizeof(double));
        auto* counter = reinterpret_cast<double*>(mem.value().data());
        *counter = 0.0;
        auto win = comm.win_create(mem.value().data(), sizeof(double));
        win->fence();

        int my_tasks = 0;
        double my_busy = 0.0;
        for (;;) {
            // Atomically grab the next chunk of task ids.
            win->lock(0);
            double next = 0.0;
            SCIMPI_REQUIRE(win->get(&next, 1, Datatype::float64(), 0, 0).is_ok(),
                           "get failed");
            const double grabbed = next + kChunk;
            SCIMPI_REQUIRE(
                win->put(&grabbed, 1, Datatype::float64(), 0, 0).is_ok(),
                "put failed");
            win->unlock(0);

            const int first = static_cast<int>(next);
            if (first >= kTasks) break;
            for (int t = first; t < std::min(first + kChunk, kTasks); ++t) {
                const SimTime cost = task_cost(t);
                comm.proc().delay(cost);
                my_busy += to_us(cost);
                ++my_tasks;
            }
        }
        win->fence();
        done_per_rank[static_cast<std::size_t>(rank)] = my_tasks;
        busy_us[static_cast<std::size_t>(rank)] = my_busy;
    });

    int total = 0;
    double max_busy = 0.0, sum_busy = 0.0;
    for (int r = 0; r < kRanks; ++r) {
        std::printf("[rank %d] completed %3d tasks, busy %8.0f us\n", r,
                    done_per_rank[static_cast<std::size_t>(r)],
                    busy_us[static_cast<std::size_t>(r)]);
        total += done_per_rank[static_cast<std::size_t>(r)];
        max_busy = std::max(max_busy, busy_us[static_cast<std::size_t>(r)]);
        sum_busy += busy_us[static_cast<std::size_t>(r)];
    }
    const double balance = sum_busy / (kRanks * max_busy);
    std::printf("total %d/%d tasks, load balance %.2f, simulated %.2f ms\n", total,
                kTasks, balance, cluster.wtime() * 1e3);
    // Every task executed exactly once, and the stealing balanced the load.
    return (total == kTasks && balance > 0.7) ? 0 : 1;
}
