// Collective tour: the SCI-native collective engine end to end.
//
// Simulates a 6-node SCI cluster and walks every collective through the
// shared-segment engine (DESIGN.md §11): a flags barrier, size-steered
// broadcasts (flat fan-out, binomial tree, scatter + ring allgather), a
// binomial reduce, the small/medium/large allreduce ladder, a ring
// allgather over a strided datatype, and the spread alltoall. Every result
// is verified in place, so a silent wrong answer aborts the tour.
//
// Build & run:  cmake --build build && ./build/examples/coll_tour
//
// `--stats` prints the structured run report (JSON) with the per-algorithm
// selection counters (coll.bcast.scatter_ag, coll.seg_bytes, ...);
// `--check` replays the tour under scimpi-check, whose happens-before
// tracking must see the ready/ack flag protocol license every slot reuse —
// a clean tour reports zero violations. `--coll SPEC` overrides the
// selection like SCIMPI_COLL (try `--coll p2p` to time the seed path).
#include <cstdio>
#include <cstring>
#include <numeric>
#include <string_view>
#include <vector>

#include "mpi/comm.hpp"

using namespace scimpi;
using namespace scimpi::mpi;

int main(int argc, char** argv) {
    ClusterOptions opt;
    opt.nodes = 6;  // big enough for scatter_ag / ring selection (n >= 4)

    bool print_stats = false;
    for (int i = 1; i < argc; ++i) {
        const std::string_view arg = argv[i];
        if (arg == "--stats") {
            print_stats = true;
            opt.collect_stats = true;
        } else if (arg == "--check") {
            opt.check = true;
        } else if (arg == "--coll" && i + 1 < argc) {
            opt.coll = argv[++i];
        } else {
            std::fprintf(stderr, "coll_tour: unknown or incomplete flag '%s'\n",
                         std::string(arg).c_str());
            std::fprintf(stderr, "usage: coll_tour [--stats] [--check] [--coll SPEC]\n");
            return 2;
        }
    }
    opt.collect_stats = opt.collect_stats || print_stats;

    Cluster cluster(opt);
    cluster.run([](Comm& comm) {
        const int rank = comm.rank();
        const int n = comm.size();

        // ---- 1. barrier: dissemination on SCI flag words -------------------
        const double tb = comm.wtime();
        comm.barrier();
        if (rank == 0)
            std::printf("[barrier]   %d ranks in %.1f us\n", n,
                        (comm.wtime() - tb) * 1e6);

        // ---- 2. bcast at three sizes: flat -> binomial -> scatter_ag -------
        for (const std::size_t bytes : {4_KiB, 16_KiB, 256_KiB}) {
            std::vector<double> data(bytes / sizeof(double), -1.0);
            if (rank == 2) std::iota(data.begin(), data.end(), 7.0);
            const double t0 = comm.wtime();
            SCIMPI_REQUIRE(
                comm.bcast(data.data(), static_cast<int>(data.size()),
                           Datatype::float64(), /*root=*/2)
                    .is_ok(),
                "bcast failed");
            SCIMPI_REQUIRE(data.front() == 7.0 &&
                               data.back() == 7.0 + double(data.size()) - 1.0,
                           "bcast data corrupt");
            if (rank == 0)
                std::printf("[bcast]     %6zu KiB from root 2 in %8.1f us\n",
                            bytes / 1024, (comm.wtime() - t0) * 1e6);
        }

        // ---- 3. reduce: binomial fan-in over segments ----------------------
        {
            std::vector<double> in(32_KiB / sizeof(double));
            for (std::size_t i = 0; i < in.size(); ++i)
                in[i] = rank + static_cast<double>(i);
            std::vector<double> out(in.size(), 0.0);
            SCIMPI_REQUIRE(comm.reduce_sum(in.data(), out.data(),
                                           static_cast<int>(in.size()), /*root=*/0)
                               .is_ok(),
                           "reduce failed");
            const double ranksum = n * (n - 1) / 2.0;
            if (rank == 0) {
                SCIMPI_REQUIRE(out[5] == ranksum + n * 5.0, "reduce sum wrong");
                std::printf("[reduce]    %6zu KiB to root 0, out[5]=%.0f\n",
                            in.size() * sizeof(double) / 1024, out[5]);
            }
        }

        // ---- 4. allreduce ladder: rdouble / reduce_bcast / ring ------------
        for (const std::size_t bytes : {1_KiB, 32_KiB, 256_KiB}) {
            std::vector<double> in(bytes / sizeof(double), rank + 1.0);
            std::vector<double> out(in.size(), 0.0);
            const double t0 = comm.wtime();
            SCIMPI_REQUIRE(comm.allreduce_sum(in.data(), out.data(),
                                              static_cast<int>(in.size()))
                               .is_ok(),
                           "allreduce failed");
            SCIMPI_REQUIRE(out.back() == n * (n + 1) / 2.0, "allreduce sum wrong");
            if (rank == 0)
                std::printf("[allreduce] %6zu KiB in %8.1f us (sum=%.0f)\n",
                            bytes / 1024, (comm.wtime() - t0) * 1e6, out.back());
        }

        // ---- 5. allgather of a strided column: ff into the segments --------
        {
            auto col = Datatype::vector(256, 4, 8, Datatype::float64());
            col.commit(comm.cluster().options().cfg);
            const std::size_t ext = col.extent() / sizeof(double);
            std::vector<double> mine(ext, -1.0);
            for (int b = 0; b < 256; ++b)
                for (int i = 0; i < 4; ++i)
                    mine[static_cast<std::size_t>(b * 8 + i)] = rank * 1e4 + b;
            std::vector<double> all(static_cast<std::size_t>(n) * ext, -1.0);
            SCIMPI_REQUIRE(comm.allgather(mine.data(), 1, col, all.data()).is_ok(),
                           "allgather failed");
            for (int r = 0; r < n; ++r)
                SCIMPI_REQUIRE(all[static_cast<std::size_t>(r) * ext + 8] ==
                                   r * 1e4 + 1,
                               "allgather block wrong");
            if (rank == 0)
                std::printf("[allgather] strided column x%d ranks ok\n", n);
        }

        // ---- 6. alltoall: all pairwise streams posted at once --------------
        {
            constexpr std::size_t kEach = 64_KiB;
            std::vector<std::byte> in(kEach * static_cast<std::size_t>(n));
            for (std::size_t i = 0; i < in.size(); ++i)
                in[i] = static_cast<std::byte>((rank * 131 + i * 7) & 0xFF);
            std::vector<std::byte> out(in.size());
            const double t0 = comm.wtime();
            SCIMPI_REQUIRE(comm.alltoall(in.data(), kEach, out.data()).is_ok(),
                           "alltoall failed");
            // Block f of my output is block `rank` of rank f's input.
            for (int f = 0; f < n; ++f) {
                const std::size_t i = static_cast<std::size_t>(rank) * kEach + 17;
                SCIMPI_REQUIRE(out[static_cast<std::size_t>(f) * kEach + 17] ==
                                   static_cast<std::byte>((f * 131 + i * 7) & 0xFF),
                               "alltoall block wrong");
            }
            if (rank == 0)
                std::printf("[alltoall]  %6zu KiB per pair in %8.1f us\n",
                            kEach / 1024, (comm.wtime() - t0) * 1e6);
        }
        comm.barrier();
    });

    std::printf("simulated time: %.3f ms\n", cluster.wtime() * 1e3);
    if (check::Checker* ck = cluster.checker())
        std::printf("scimpi-check: %zu violation(s) detected\n",
                    ck->violations().size());
    if (print_stats)
        std::printf("%s\n", cluster.stats_report().to_json().c_str());
    return 0;
}
