// race_demo: a deliberately mis-synchronized one-sided program, used to
// demonstrate (and smoke-test) scimpi-check.
//
// Default mode plants a textbook MPI-2 epoch violation: ranks 1 and 2 both
// put into rank 0's window inside the *same* fence epoch, and their byte
// ranges overlap. On real SCI hardware the direct PIO path makes the result
// silently non-deterministic; under the simulator the outcome is fixed, so
// the bug would survive any benchmark. With checking on, every run reports
// the conflict with the exact overlapping byte range.
//
//   ./build/examples/race_demo           # racy: expects 1+ violations
//   ./build/examples/race_demo --clean   # disjoint ranges: expects 0
//
// Both modes run under the checker and self-verify: the exit code is 0 only
// when the checker's verdict matches the mode's expectation.
#include <cstdio>
#include <cstring>
#include <string_view>
#include <vector>

#include "mpi/comm.hpp"
#include "mpi/rma/window.hpp"

using namespace scimpi;
using namespace scimpi::mpi;

int main(int argc, char** argv) {
    bool clean = false;
    for (int i = 1; i < argc; ++i) {
        const std::string_view arg = argv[i];
        if (arg == "--clean") {
            clean = true;
        } else {
            std::fprintf(stderr, "race_demo: unknown flag '%s'\n",
                         std::string(arg).c_str());
            std::fprintf(stderr, "usage: race_demo [--clean]\n");
            return 2;
        }
    }

    ClusterOptions opt;
    opt.nodes = 3;
    opt.check = true;  // scimpi-check on: this demo exists to be diagnosed

    Cluster cluster(opt);
    cluster.run([clean](Comm& comm) {
        auto wmem = comm.alloc_mem(4096);
        auto win = comm.win_create(wmem.value().data(), 4096);

        std::vector<double> payload(8, 100.0 + comm.rank());
        win->fence();
        if (comm.rank() == 1) {
            // Bytes [0, 64) of rank 0's window.
            SCIMPI_REQUIRE(win->put(payload.data(), 8, Datatype::float64(), 0, 0)
                               .is_ok(),
                           "put failed");
        } else if (comm.rank() == 2) {
            // Racy: bytes [32, 96) — the halves [32, 64) collide with rank
            // 1's put in this very epoch. Clean: disjoint [64, 128).
            SCIMPI_REQUIRE(win->put(payload.data(), 8, Datatype::float64(), 0,
                                    clean ? 64 : 32)
                               .is_ok(),
                           "put failed");
        }
        win->fence();
        win->fence();
    });

    const std::size_t n = cluster.checker()->violations().size();
    std::printf("race_demo (%s): scimpi-check reported %zu violation(s)\n",
                clean ? "clean" : "racy", n);
    const bool as_expected = clean ? n == 0 : n > 0;
    if (!as_expected)
        std::fprintf(stderr, "race_demo: checker verdict does not match mode\n");
    return as_expected ? 0 : 1;
}
