// race_demo: deliberately mis-synchronized one-sided programs, used to
// demonstrate (and smoke-test) scimpi-check and the schedule explorer.
//
// Default mode plants a textbook MPI-2 epoch violation: ranks 1 and 2 both
// put into rank 0's window inside the *same* fence epoch, and their byte
// ranges overlap. On real SCI hardware the direct PIO path makes the result
// silently non-deterministic; under the simulator the outcome is fixed, so
// the bug would survive any benchmark. With checking on, every run reports
// the conflict with the exact overlapping byte range.
//
// The --pscw mode plants the opposite kind of bug: an *order-dependent*
// PSCW race that every single deterministic run misses. Rank 1 completes its
// access epoch and then sends a "data is ready" token; rank 0 receives the
// token and uses MPI_Win_test to decide whether the exposure epoch is over —
// touching its own window when test() says no. In the deterministic schedule
// the complete-interrupt always beats the token, test() succeeds, and the
// window write is legal; flip the two deliveries (as real interrupt jitter
// would) and rank 0 writes exposed window memory. `--explore` hands the
// program to check::Explorer, which hunts that schedule systematically and
// emits a replayable decision trace.
//
//   ./build/examples/race_demo                  # fence race: expects 1+
//   ./build/examples/race_demo --clean          # disjoint ranges: expects 0
//   ./build/examples/race_demo --pscw           # one run: expects clean
//   ./build/examples/race_demo --pscw --seeds 100   # N seeds: all clean
//   ./build/examples/race_demo --pscw --explore     # must find the race
//
// All modes self-verify: the exit code is 0 only when the checker's (or
// explorer's) verdict matches the mode's expectation. With
// SCIMPI_EXPLORE_REPLAY set, --pscw expects the replayed schedule to *hit*
// the race instead — that is the smoke test for portable repro traces.
#include <array>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <string_view>
#include <vector>

#include "mpi/comm.hpp"
#include "mpi/explore.hpp"
#include "mpi/rma/window.hpp"

using namespace scimpi;
using namespace scimpi::mpi;

namespace {

/// The order-dependent PSCW program (2 ranks). Clean under the default
/// deterministic schedule; racy when the kComplete interrupt is delivered
/// after the token message.
void pscw_program(Comm& comm) {
    auto wmem = comm.alloc_mem(4096);
    SCIMPI_REQUIRE(wmem.is_ok(), "alloc_mem failed");
    auto win = comm.win_create(wmem.value().data(), 4096);
    constexpr int kTokenTag = 7;

    if (comm.rank() == 1) {
        const std::array<int, 1> targets{0};
        std::vector<double> payload(8, 41.0);
        win->start(targets);
        SCIMPI_REQUIRE(
            win->put(payload.data(), 8, Datatype::float64(), 0, 0).is_ok(),
            "put failed");
        win->complete();
        // Post-processing before announcing the data: the complete-interrupt
        // is already in flight and this compute time normally lets it land
        // well before the token — but nothing *orders* it before the token.
        comm.proc().delay(15000);
        const int token = 1;
        SCIMPI_REQUIRE(
            comm.send(&token, 1, Datatype::int32(), 0, kTokenTag).is_ok(),
            "send failed");
    } else if (comm.rank() == 0) {
        const std::array<int, 1> origins{1};
        win->post(origins);
        int token = 0;
        comm.recv(&token, 1, Datatype::int32(), 1, kTokenTag);
        // Bug: the token only proves rank 1 called complete(), not that the
        // completion reached us. When test() fails the epoch is still open,
        // and the "scratch" write below touches exposed window memory.
        if (!win->test()) {
            const double scratch = 0.0;
            SCIMPI_REQUIRE(
                win->put(&scratch, 1, Datatype::float64(), 0, 128).is_ok(),
                "local put failed");
            win->wait();
        }
    }
}

ClusterOptions pscw_options() {
    ClusterOptions opt;
    opt.nodes = 2;
    opt.check = true;
    return opt;
}

int run_fence_mode(bool clean) {
    ClusterOptions opt;
    opt.nodes = 3;
    opt.check = true;  // scimpi-check on: this demo exists to be diagnosed

    Cluster cluster(opt);
    cluster.run([clean](Comm& comm) {
        auto wmem = comm.alloc_mem(4096);
        auto win = comm.win_create(wmem.value().data(), 4096);

        std::vector<double> payload(8, 100.0 + comm.rank());
        win->fence();
        if (comm.rank() == 1) {
            // Bytes [0, 64) of rank 0's window.
            SCIMPI_REQUIRE(win->put(payload.data(), 8, Datatype::float64(), 0, 0)
                               .is_ok(),
                           "put failed");
        } else if (comm.rank() == 2) {
            // Racy: bytes [32, 96) — the halves [32, 64) collide with rank
            // 1's put in this very epoch. Clean: disjoint [64, 128).
            SCIMPI_REQUIRE(win->put(payload.data(), 8, Datatype::float64(), 0,
                                    clean ? 64 : 32)
                               .is_ok(),
                           "put failed");
        }
        win->fence();
        win->fence();
    });

    const std::size_t n = cluster.checker()->violations().size();
    std::printf("race_demo (%s): scimpi-check reported %zu violation(s)\n",
                clean ? "clean" : "racy", n);
    const bool as_expected = clean ? n == 0 : n > 0;
    if (!as_expected)
        std::fprintf(stderr, "race_demo: checker verdict does not match mode\n");
    return as_expected ? 0 : 1;
}

/// N single deterministic runs over distinct seeds: the PSCW bug must stay
/// invisible in every one (that is the point of the demo). With
/// SCIMPI_EXPLORE_REPLAY set the expectation flips: the replayed schedule
/// must hit the race.
int run_pscw_seeds(int seeds) {
    const bool replaying = std::getenv("SCIMPI_EXPLORE_REPLAY") != nullptr;
    std::size_t dirty = 0;
    for (int s = 1; s <= seeds; ++s) {
        ClusterOptions opt = pscw_options();
        opt.cfg.seed = static_cast<std::uint64_t>(s);
        Cluster cluster(opt);
        cluster.run(pscw_program);
        if (!cluster.checker()->violations().empty()) ++dirty;
    }
    if (replaying) {
        std::printf("race_demo (pscw replay): %zu of %d run(s) hit the race\n",
                    dirty, seeds);
        return dirty == static_cast<std::size_t>(seeds) ? 0 : 1;
    }
    std::printf("race_demo (pscw): %d single-seed run(s), %zu dirty (want 0)\n",
                seeds, dirty);
    if (dirty != 0)
        std::fprintf(stderr, "race_demo: single runs were supposed to be clean\n");
    return dirty == 0 ? 0 : 1;
}

int run_pscw_explore(const ClusterOptions::ExploreSpec& spec) {
    ClusterOptions opt = pscw_options();
    opt.explore = spec;
    const ExploreClusterResult res = explore_cluster(opt, pscw_program);
    const check::ExploreResult& r = res.result;

    std::printf(
        "race_demo (pscw explore): %s after %llu schedule(s), %llu pruned, "
        "%zu decision(s) in the minimized trace\n",
        r.found ? "race found" : "nothing found",
        static_cast<unsigned long long>(r.schedules),
        static_cast<unsigned long long>(r.pruned), r.trace.decisions.size());
    if (!r.found) {
        std::fprintf(stderr, "race_demo: explorer exhausted=%d budget=%llu\n",
                     r.exhausted ? 1 : 0,
                     static_cast<unsigned long long>(spec.max_schedules));
        return 1;
    }
    std::fputs(r.finding.report.c_str(), stdout);
    if (!res.replay_matches) {
        std::fprintf(stderr,
                     "race_demo: replay of the minimized trace did not "
                     "reproduce the identical report\n%s",
                     res.replay_report.c_str());
        return 1;
    }
    std::printf("race_demo (pscw explore): trace replay byte-identical%s%s\n",
                spec.trace_file.empty() ? "" : ", trace written to ",
                spec.trace_file.c_str());
    return 0;
}

}  // namespace

int main(int argc, char** argv) {
    bool clean = false;
    bool pscw = false;
    bool explore = false;
    int seeds = 1;
    ClusterOptions::ExploreSpec spec;
    spec.fuzz = 20000;  // 20us: generous co-enabled window for irq jitter

    for (int i = 1; i < argc; ++i) {
        const std::string_view arg = argv[i];
        const bool has_next = i + 1 < argc;
        if (arg == "--clean") {
            clean = true;
        } else if (arg == "--pscw") {
            pscw = true;
        } else if (arg == "--explore") {
            explore = true;
        } else if (arg == "--seeds" && has_next) {
            seeds = std::atoi(argv[++i]);
        } else if (arg == "--budget" && has_next) {
            spec.max_schedules = static_cast<std::uint64_t>(std::atoll(argv[++i]));
        } else if (arg == "--fuzz" && has_next) {
            spec.fuzz = static_cast<SimTime>(std::atoll(argv[++i]));
        } else if (arg == "--naive") {
            spec.dpor = false;
        } else if (arg == "--trace" && has_next) {
            spec.trace_file = argv[++i];
        } else {
            std::fprintf(stderr, "race_demo: unknown flag '%s'\n",
                         std::string(arg).c_str());
            std::fprintf(stderr,
                         "usage: race_demo [--clean] | --pscw [--seeds N] "
                         "[--explore [--budget N] [--fuzz NS] [--naive] "
                         "[--trace FILE]]\n");
            return 2;
        }
    }
    if (seeds < 1) {
        std::fprintf(stderr, "race_demo: --seeds wants a positive count\n");
        return 2;
    }

    if (!pscw) return run_fence_mode(clean);
    if (explore) return run_pscw_explore(spec);
    return run_pscw_seeds(seeds);
}
