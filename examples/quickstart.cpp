// Quickstart: a 10-minute tour of the library.
//
// Simulates a 4-node SCI cluster and exercises the three pillars of the
// paper: two-sided messaging, non-contiguous datatypes packed with
// direct_pack_ff, and MPI-2 one-sided communication over a shared window.
//
// Build & run:  cmake --build build && ./build/examples/quickstart
//
// Observability: `--stats` prints the structured run report (JSON) after the
// run; `--trace FILE` writes a Chrome trace (open in ui.perfetto.dev);
// `--profile` prints the per-rank time-attribution table (where each rank's
// simulated time went — compute, packing, PIO, waiting; DESIGN.md §9). The
// SCIMPI_STATS / SCIMPI_STATS_FILE / SCIMPI_TRACE_FILE / SCIMPI_PROFILE
// environment variables do the same without flags. `--faults SPEC` (or
// SCIMPI_FAULTS) replays a deterministic fault schedule while the tour runs
// — see DESIGN.md §8. `--check` (or SCIMPI_CHECK=1) runs the tour under
// scimpi-check, the one-sided race/epoch checker — see DESIGN.md §10; a
// clean tour reports zero violations.
#include <cstdio>
#include <numeric>
#include <string_view>
#include <vector>

#include "mpi/comm.hpp"
#include "mpi/rma/window.hpp"

using namespace scimpi;
using namespace scimpi::mpi;

int main(int argc, char** argv) {
    ClusterOptions opt;
    opt.nodes = 4;  // 4 nodes on one SCI ringlet, 1 rank each

    bool print_stats = false;
    bool print_profile = false;
    for (int i = 1; i < argc; ++i) {
        const std::string_view arg = argv[i];
        if (arg == "--stats") {
            print_stats = true;
            opt.collect_stats = true;
        } else if (arg == "--profile") {
            print_profile = true;
            opt.profile = true;
        } else if (arg == "--trace" && i + 1 < argc) {
            opt.trace_file = argv[++i];
        } else if (arg == "--faults" && i + 1 < argc) {
            // Deterministic fault injection from a text spec (see
            // src/fault/schedule.hpp for the format; env: SCIMPI_FAULTS).
            opt.fault_spec_file = argv[++i];
        } else if (arg == "--check") {
            opt.check = true;
        } else if (arg == "--record") {
            // Flight recorder (DESIGN.md §12): sample gauges/counters every
            // 10 simulated us into RunReport v4 timeseries. SCIMPI_RECORD
            // sets a custom cadence ("500ns", "1ms", ...) without the flag.
            opt.record = 10_us;
            opt.collect_stats = true;
        } else {
            // Name the offender: a silent catch-all would let `--chekc`
            // typos run unchecked. Flags that take a value also land here
            // when the value is missing.
            std::fprintf(stderr, "quickstart: unknown or incomplete flag '%s'\n",
                         std::string(arg).c_str());
            std::fprintf(stderr,
                         "usage: quickstart [--stats] [--profile] [--check] "
                         "[--record] [--trace FILE] [--faults SPEC]\n");
            return 2;
        }
    }

    Cluster cluster(opt);
    cluster.run([](Comm& comm) {
        const int rank = comm.rank();
        const int size = comm.size();

        // ---- 1. plain two-sided messaging ----------------------------------
        if (rank == 0) {
            std::vector<double> payload(1024);
            std::iota(payload.begin(), payload.end(), 0.0);
            SCIMPI_REQUIRE(
                comm.send(payload.data(), 1024, Datatype::float64(), 1, /*tag=*/0)
                    .is_ok(),
                "send failed");
        } else if (rank == 1) {
            std::vector<double> inbox(1024);
            const RecvResult r = comm.recv(inbox.data(), 1024, Datatype::float64(),
                                           0, 0);
            std::printf("[rank 1] received %zu bytes from rank %d (sum tail %.0f)\n",
                        r.bytes, r.source, inbox.back());
        }
        comm.barrier();

        // ---- 2. non-contiguous datatype (direct_pack_ff under the hood) ----
        // A strided vector: 512 blocks of 4 doubles with equal-sized gaps.
        auto column = Datatype::vector(512, 4, 8, Datatype::float64());
        const double t0 = comm.wtime();
        if (rank == 0) {
            std::vector<double> grid(512 * 8);
            std::iota(grid.begin(), grid.end(), 0.0);
            SCIMPI_REQUIRE(comm.send(grid.data(), 1, column, 1, 1).is_ok(),
                           "strided send failed");
        } else if (rank == 1) {
            std::vector<double> grid(512 * 8, -1.0);
            comm.recv(grid.data(), 1, column, 0, 1);
            std::printf("[rank 1] strided recv in %.1f us, grid[8]=%.0f (gap %.0f)\n",
                        (comm.wtime() - t0) * 1e6, grid[8], grid[4]);
        }
        comm.barrier();

        // ---- 3. one-sided communication over a shared window ---------------
        auto wmem = comm.alloc_mem(4096);  // SCI-shared: enables direct puts
        auto win = comm.win_create(wmem.value().data(), 4096);
        win->fence();
        // Everyone deposits its rank into the right neighbour's window.
        const double stamp = 100.0 + rank;
        SCIMPI_REQUIRE(
            win->put(&stamp, 1, Datatype::float64(), (rank + 1) % size, 0).is_ok(),
            "put failed");
        win->fence();
        const double got = *reinterpret_cast<double*>(win->local().data());
        std::printf("[rank %d] window holds %.0f (from rank %d), path: %s\n", rank,
                    got, (rank + size - 1) % size,
                    win->stats().direct_puts > 0 ? "direct SCI put" : "emulated");
        win->fence();
    });

    std::printf("simulated time: %.3f ms\n", cluster.wtime() * 1e3);
    if (check::Checker* ck = cluster.checker())
        std::printf("scimpi-check: %zu violation(s) detected\n",
                    ck->violations().size());
    if (print_stats)
        std::printf("%s\n", cluster.stats_report().to_json().c_str());
    if (print_profile) {
        const obs::RunReport report = cluster.stats_report();
        std::printf("\nper-rank time attribution (%% of %.3f ms simulated):\n",
                    cluster.wtime() * 1e3);
        std::printf("%6s", "rank");
        for (int s = 0; s < obs::kProfStates; ++s)
            std::printf(" %13s",
                        obs::prof_state_name(static_cast<obs::ProfState>(s)));
        std::printf("  late-snd  late-rcv\n");
        for (const auto& p : report.profiles) {
            std::printf("%6d", p.rank);
            for (int s = 0; s < obs::kProfStates; ++s)
                std::printf(" %12.1f%%",
                            p.total_ns == 0
                                ? 0.0
                                : 100.0 *
                                      static_cast<double>(
                                          p.state_ns[static_cast<std::size_t>(s)]) /
                                      static_cast<double>(p.total_ns));
            std::printf("  %8llu  %8llu\n",
                        static_cast<unsigned long long>(p.late_senders),
                        static_cast<unsigned long long>(p.late_receivers));
        }
    }
    return 0;
}
