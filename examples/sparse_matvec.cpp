// Distributed sparse matrix-vector product with one-sided communication —
// the "irregularly distributed data" use case from Section 4 of the paper.
//
// The matrix is a random sparse band matrix distributed by block rows; the
// input vector x lives in an MPI-2 window (one block per rank, allocated
// with alloc_mem so remote ranks can MPI_Get directly). Each rank fetches
// exactly the remote x entries its nonzeros touch — fine-grained MPI_Get
// calls inside a fence epoch, just like the paper's *sparse* benchmark.
#include <cstdio>
#include <vector>

#include "common/rng.hpp"
#include "mpi/comm.hpp"
#include "mpi/rma/window.hpp"

using namespace scimpi;
using namespace scimpi::mpi;

namespace {

constexpr int kRanks = 4;
constexpr int kRowsPerRank = 256;
constexpr int kN = kRanks * kRowsPerRank;
constexpr int kNnzPerRow = 12;
constexpr int kBand = 300;  // nonzeros cluster around the diagonal

struct Csr {
    std::vector<int> row_ptr, col;
    std::vector<double> val;
};

Csr build_rows(int first_row, int rows, std::uint64_t seed) {
    Csr m;
    Rng rng(seed);
    m.row_ptr.push_back(0);
    for (int r = 0; r < rows; ++r) {
        const int gr = first_row + r;
        for (int k = 0; k < kNnzPerRow; ++k) {
            const int c = static_cast<int>(
                (gr - kBand / 2 + static_cast<int>(rng.below(kBand)) + kN) % kN);
            m.col.push_back(c);
            m.val.push_back(1.0 + static_cast<double>(rng.below(9)));
        }
        m.row_ptr.push_back(static_cast<int>(m.col.size()));
    }
    return m;
}

double reference_x(int i) { return 0.5 + (i % 17) * 0.25; }

}  // namespace

int main() {
    ClusterOptions opt;
    opt.nodes = kRanks;
    Cluster cluster(opt);

    bool ok = true;
    cluster.run([&](Comm& comm) {
        const int rank = comm.rank();
        const int first_row = rank * kRowsPerRank;
        const Csr A = build_rows(first_row, kRowsPerRank, 42 + rank);

        // x block in a shared window.
        auto xmem = comm.alloc_mem(kRowsPerRank * sizeof(double));
        auto* x_local = reinterpret_cast<double*>(xmem.value().data());
        for (int i = 0; i < kRowsPerRank; ++i)
            x_local[i] = reference_x(first_row + i);
        auto win = comm.win_create(xmem.value().data(), kRowsPerRank * sizeof(double));
        win->fence();

        // Gather the needed x entries: local ones directly, remote ones via
        // fine-grained MPI_Get from the owner's window.
        const double t0 = comm.wtime();
        std::vector<double> xg(static_cast<std::size_t>(A.col.size()));
        std::uint64_t remote_gets = 0;
        for (std::size_t k = 0; k < A.col.size(); ++k) {
            const int c = A.col[k];
            const int owner = c / kRowsPerRank;
            const std::size_t disp =
                static_cast<std::size_t>(c % kRowsPerRank) * sizeof(double);
            if (owner == rank) {
                xg[k] = x_local[c % kRowsPerRank];
            } else {
                SCIMPI_REQUIRE(
                    win->get(&xg[k], 1, Datatype::float64(), owner, disp).is_ok(),
                    "remote get failed");
                ++remote_gets;
            }
        }
        win->fence();
        const double gather_us = (comm.wtime() - t0) * 1e6;

        // y = A x over the gathered entries.
        std::vector<double> y(kRowsPerRank, 0.0);
        for (int r = 0; r < kRowsPerRank; ++r)
            for (int k = A.row_ptr[static_cast<std::size_t>(r)];
                 k < A.row_ptr[static_cast<std::size_t>(r) + 1]; ++k)
                y[static_cast<std::size_t>(r)] +=
                    A.val[static_cast<std::size_t>(k)] * xg[static_cast<std::size_t>(k)];
        comm.proc().delay(kRowsPerRank * kNnzPerRow * 2);  // 2 flops/nnz

        // Verify against a serial recomputation of this rank's rows.
        double err = 0.0;
        for (int r = 0; r < kRowsPerRank; ++r) {
            double want = 0.0;
            for (int k = A.row_ptr[static_cast<std::size_t>(r)];
                 k < A.row_ptr[static_cast<std::size_t>(r) + 1]; ++k)
                want += A.val[static_cast<std::size_t>(k)] *
                        reference_x(A.col[static_cast<std::size_t>(k)]);
            err += std::abs(want - y[static_cast<std::size_t>(r)]);
        }
        if (err > 1e-9) ok = false;

        std::printf(
            "[rank %d] %d rows, %zu nnz, %llu remote gets (%llu direct / %llu "
            "remote-put) in %.0f us, residual %.1e\n",
            rank, kRowsPerRank, A.col.size(),
            static_cast<unsigned long long>(remote_gets),
            static_cast<unsigned long long>(win->stats().direct_gets),
            static_cast<unsigned long long>(win->stats().remote_put_gets), gather_us,
            err);
        win->fence();
    });

    std::printf("sparse matvec %s, simulated time %.3f ms\n",
                ok ? "verified" : "FAILED", cluster.wtime() * 1e3);
    return ok ? 0 : 1;
}
