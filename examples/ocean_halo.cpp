// Ocean-model boundary exchange (the paper's motivating application,
// Figure 2): a 2D decomposition of a simulated ocean surface. Each rank owns
// an NxN tile and exchanges halo rows/columns with its neighbours every
// iteration. North/south halos are contiguous rows; east/west halos are
// *strided columns* expressed as an MPI vector datatype — exactly the
// non-contiguous case direct_pack_ff accelerates.
//
// The example runs the same simulation twice — with direct_pack_ff and with
// the generic pack-and-send baseline — and reports the halo-exchange time.
#include <cmath>
#include <cstdio>
#include <vector>

#include "mpi/comm.hpp"

using namespace scimpi;
using namespace scimpi::mpi;

namespace {

constexpr int kTile = 192;    // local tile is kTile x kTile doubles
constexpr int kPx = 2;        // process grid
constexpr int kPy = 2;
constexpr int kIters = 5;

struct Neighbours {
    int north = -1, south = -1, east = -1, west = -1;
};

Neighbours neighbours(int rank) {
    const int px = rank % kPx;
    const int py = rank / kPx;
    Neighbours n;
    if (py > 0) n.north = rank - kPx;
    if (py < kPy - 1) n.south = rank + kPx;
    if (px > 0) n.west = rank - 1;
    if (px < kPx - 1) n.east = rank + 1;
    return n;
}

/// Run the ocean relaxation; returns (halo seconds, checksum).
std::pair<double, double> run_ocean(Comm& comm) {
    constexpr int W = kTile + 2;  // tile plus halo frame
    std::vector<double> field(static_cast<std::size_t>(W) * W, 0.0);
    std::vector<double> next(field.size(), 0.0);
    auto at = [&](std::vector<double>& f, int y, int x) -> double& {
        return f[static_cast<std::size_t>(y) * W + static_cast<std::size_t>(x)];
    };
    // Heat source in the global north-west tile.
    if (comm.rank() == 0)
        for (int i = 1; i <= kTile; ++i) at(field, 1, i) = 100.0;

    // Column halo: kTile elements with stride W (a strided vector datatype).
    auto column = Datatype::vector(kTile, 1, W, Datatype::float64());
    auto row = Datatype::contiguous(kTile, Datatype::float64());
    const Neighbours nb = neighbours(comm.rank());

    double halo_seconds = 0.0;
    for (int iter = 0; iter < kIters; ++iter) {
        const double t0 = comm.wtime();
        // Exchange halos with all four neighbours (tags per direction).
        if (nb.north >= 0)
            SCIMPI_REQUIRE(comm.sendrecv(&at(field, 1, 1), 1, row, nb.north, 10,
                                         &at(field, 0, 1), 1, row, nb.north, 11)
                               .is_ok(),
                           "north halo exchange failed");
        if (nb.south >= 0)
            SCIMPI_REQUIRE(
                comm.sendrecv(&at(field, kTile, 1), 1, row, nb.south, 11,
                              &at(field, kTile + 1, 1), 1, row, nb.south, 10)
                    .is_ok(),
                "south halo exchange failed");
        if (nb.west >= 0)
            SCIMPI_REQUIRE(comm.sendrecv(&at(field, 1, 1), 1, column, nb.west, 12,
                                         &at(field, 1, 0), 1, column, nb.west, 13)
                               .is_ok(),
                           "west halo exchange failed");
        if (nb.east >= 0)
            SCIMPI_REQUIRE(
                comm.sendrecv(&at(field, 1, kTile), 1, column, nb.east, 13,
                              &at(field, 1, kTile + 1), 1, column, nb.east, 12)
                    .is_ok(),
                "east halo exchange failed");
        halo_seconds += comm.wtime() - t0;

        // Jacobi relaxation step (charged as compute time).
        for (int y = 1; y <= kTile; ++y)
            for (int x = 1; x <= kTile; ++x)
                at(next, y, x) = 0.25 * (at(field, y - 1, x) + at(field, y + 1, x) +
                                         at(field, y, x - 1) + at(field, y, x + 1));
        comm.proc().delay(kTile * kTile * 4);  // ~4 ns per 4-flop stencil point
        std::swap(field, next);
        if (comm.rank() == 0)
            for (int i = 1; i <= kTile; ++i) at(field, 1, i) = 100.0;
    }

    double checksum = 0.0;
    for (int y = 1; y <= kTile; ++y)
        for (int x = 1; x <= kTile; ++x) checksum += at(field, y, x);
    double total = 0.0;
    SCIMPI_REQUIRE(comm.allreduce_sum(&checksum, &total, 1).is_ok(),
                   "allreduce failed");
    return {halo_seconds, total};
}

}  // namespace

int main() {
    double halo_ff = 0.0, halo_gen = 0.0, sum_ff = 0.0, sum_gen = 0.0;

    for (const bool use_ff : {true, false}) {
        ClusterOptions opt;
        opt.nodes = kPx * kPy;
        opt.cfg.use_direct_pack_ff = use_ff;
        Cluster cluster(opt);
        cluster.run([&](Comm& comm) {
            const auto [halo, sum] = run_ocean(comm);
            if (comm.rank() == 0) {
                (use_ff ? halo_ff : halo_gen) = halo;
                (use_ff ? sum_ff : sum_gen) = sum;
            }
        });
    }

    std::printf("ocean %dx%d tiles on a %dx%d process grid, %d iterations\n", kTile,
                kTile, kPx, kPy, kIters);
    std::printf("  halo exchange, direct_pack_ff : %8.1f us\n", halo_ff * 1e6);
    std::printf("  halo exchange, generic pack   : %8.1f us\n", halo_gen * 1e6);
    std::printf("  speedup                       : %8.2fx\n", halo_gen / halo_ff);
    std::printf("  checksums match               : %s (%.3f)\n",
                std::abs(sum_ff - sum_gen) < 1e-9 ? "yes" : "NO", sum_ff);
    return std::abs(sum_ff - sum_gen) < 1e-9 ? 0 : 1;
}
