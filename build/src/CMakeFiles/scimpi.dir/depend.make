# Empty dependencies file for scimpi.
# This may be replaced when dependencies are built.
