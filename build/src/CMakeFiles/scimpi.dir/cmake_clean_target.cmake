file(REMOVE_RECURSE
  "libscimpi.a"
)
