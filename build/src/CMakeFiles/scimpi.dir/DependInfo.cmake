
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/common/config.cpp" "src/CMakeFiles/scimpi.dir/common/config.cpp.o" "gcc" "src/CMakeFiles/scimpi.dir/common/config.cpp.o.d"
  "/root/repo/src/common/log.cpp" "src/CMakeFiles/scimpi.dir/common/log.cpp.o" "gcc" "src/CMakeFiles/scimpi.dir/common/log.cpp.o.d"
  "/root/repo/src/common/status.cpp" "src/CMakeFiles/scimpi.dir/common/status.cpp.o" "gcc" "src/CMakeFiles/scimpi.dir/common/status.cpp.o.d"
  "/root/repo/src/mem/allocator.cpp" "src/CMakeFiles/scimpi.dir/mem/allocator.cpp.o" "gcc" "src/CMakeFiles/scimpi.dir/mem/allocator.cpp.o.d"
  "/root/repo/src/mem/copy_model.cpp" "src/CMakeFiles/scimpi.dir/mem/copy_model.cpp.o" "gcc" "src/CMakeFiles/scimpi.dir/mem/copy_model.cpp.o.d"
  "/root/repo/src/mem/machine_profile.cpp" "src/CMakeFiles/scimpi.dir/mem/machine_profile.cpp.o" "gcc" "src/CMakeFiles/scimpi.dir/mem/machine_profile.cpp.o.d"
  "/root/repo/src/mem/node_memory.cpp" "src/CMakeFiles/scimpi.dir/mem/node_memory.cpp.o" "gcc" "src/CMakeFiles/scimpi.dir/mem/node_memory.cpp.o.d"
  "/root/repo/src/mpi/coll.cpp" "src/CMakeFiles/scimpi.dir/mpi/coll.cpp.o" "gcc" "src/CMakeFiles/scimpi.dir/mpi/coll.cpp.o.d"
  "/root/repo/src/mpi/comm.cpp" "src/CMakeFiles/scimpi.dir/mpi/comm.cpp.o" "gcc" "src/CMakeFiles/scimpi.dir/mpi/comm.cpp.o.d"
  "/root/repo/src/mpi/datatype/builders.cpp" "src/CMakeFiles/scimpi.dir/mpi/datatype/builders.cpp.o" "gcc" "src/CMakeFiles/scimpi.dir/mpi/datatype/builders.cpp.o.d"
  "/root/repo/src/mpi/datatype/datatype.cpp" "src/CMakeFiles/scimpi.dir/mpi/datatype/datatype.cpp.o" "gcc" "src/CMakeFiles/scimpi.dir/mpi/datatype/datatype.cpp.o.d"
  "/root/repo/src/mpi/datatype/flatten.cpp" "src/CMakeFiles/scimpi.dir/mpi/datatype/flatten.cpp.o" "gcc" "src/CMakeFiles/scimpi.dir/mpi/datatype/flatten.cpp.o.d"
  "/root/repo/src/mpi/datatype/pack_ff.cpp" "src/CMakeFiles/scimpi.dir/mpi/datatype/pack_ff.cpp.o" "gcc" "src/CMakeFiles/scimpi.dir/mpi/datatype/pack_ff.cpp.o.d"
  "/root/repo/src/mpi/datatype/pack_generic.cpp" "src/CMakeFiles/scimpi.dir/mpi/datatype/pack_generic.cpp.o" "gcc" "src/CMakeFiles/scimpi.dir/mpi/datatype/pack_generic.cpp.o.d"
  "/root/repo/src/mpi/protocol.cpp" "src/CMakeFiles/scimpi.dir/mpi/protocol.cpp.o" "gcc" "src/CMakeFiles/scimpi.dir/mpi/protocol.cpp.o.d"
  "/root/repo/src/mpi/rma/emulation.cpp" "src/CMakeFiles/scimpi.dir/mpi/rma/emulation.cpp.o" "gcc" "src/CMakeFiles/scimpi.dir/mpi/rma/emulation.cpp.o.d"
  "/root/repo/src/mpi/rma/ops.cpp" "src/CMakeFiles/scimpi.dir/mpi/rma/ops.cpp.o" "gcc" "src/CMakeFiles/scimpi.dir/mpi/rma/ops.cpp.o.d"
  "/root/repo/src/mpi/rma/sync.cpp" "src/CMakeFiles/scimpi.dir/mpi/rma/sync.cpp.o" "gcc" "src/CMakeFiles/scimpi.dir/mpi/rma/sync.cpp.o.d"
  "/root/repo/src/mpi/rma/window.cpp" "src/CMakeFiles/scimpi.dir/mpi/rma/window.cpp.o" "gcc" "src/CMakeFiles/scimpi.dir/mpi/rma/window.cpp.o.d"
  "/root/repo/src/mpi/runtime.cpp" "src/CMakeFiles/scimpi.dir/mpi/runtime.cpp.o" "gcc" "src/CMakeFiles/scimpi.dir/mpi/runtime.cpp.o.d"
  "/root/repo/src/plat/platform_model.cpp" "src/CMakeFiles/scimpi.dir/plat/platform_model.cpp.o" "gcc" "src/CMakeFiles/scimpi.dir/plat/platform_model.cpp.o.d"
  "/root/repo/src/plat/profiles.cpp" "src/CMakeFiles/scimpi.dir/plat/profiles.cpp.o" "gcc" "src/CMakeFiles/scimpi.dir/plat/profiles.cpp.o.d"
  "/root/repo/src/sci/adapter.cpp" "src/CMakeFiles/scimpi.dir/sci/adapter.cpp.o" "gcc" "src/CMakeFiles/scimpi.dir/sci/adapter.cpp.o.d"
  "/root/repo/src/sci/dma.cpp" "src/CMakeFiles/scimpi.dir/sci/dma.cpp.o" "gcc" "src/CMakeFiles/scimpi.dir/sci/dma.cpp.o.d"
  "/root/repo/src/sci/fabric.cpp" "src/CMakeFiles/scimpi.dir/sci/fabric.cpp.o" "gcc" "src/CMakeFiles/scimpi.dir/sci/fabric.cpp.o.d"
  "/root/repo/src/sci/segment.cpp" "src/CMakeFiles/scimpi.dir/sci/segment.cpp.o" "gcc" "src/CMakeFiles/scimpi.dir/sci/segment.cpp.o.d"
  "/root/repo/src/sci/topology.cpp" "src/CMakeFiles/scimpi.dir/sci/topology.cpp.o" "gcc" "src/CMakeFiles/scimpi.dir/sci/topology.cpp.o.d"
  "/root/repo/src/sim/dispatcher.cpp" "src/CMakeFiles/scimpi.dir/sim/dispatcher.cpp.o" "gcc" "src/CMakeFiles/scimpi.dir/sim/dispatcher.cpp.o.d"
  "/root/repo/src/sim/engine.cpp" "src/CMakeFiles/scimpi.dir/sim/engine.cpp.o" "gcc" "src/CMakeFiles/scimpi.dir/sim/engine.cpp.o.d"
  "/root/repo/src/sim/process.cpp" "src/CMakeFiles/scimpi.dir/sim/process.cpp.o" "gcc" "src/CMakeFiles/scimpi.dir/sim/process.cpp.o.d"
  "/root/repo/src/sim/sync.cpp" "src/CMakeFiles/scimpi.dir/sim/sync.cpp.o" "gcc" "src/CMakeFiles/scimpi.dir/sim/sync.cpp.o.d"
  "/root/repo/src/sim/trace.cpp" "src/CMakeFiles/scimpi.dir/sim/trace.cpp.o" "gcc" "src/CMakeFiles/scimpi.dir/sim/trace.cpp.o.d"
  "/root/repo/src/smi/barrier.cpp" "src/CMakeFiles/scimpi.dir/smi/barrier.cpp.o" "gcc" "src/CMakeFiles/scimpi.dir/smi/barrier.cpp.o.d"
  "/root/repo/src/smi/lock.cpp" "src/CMakeFiles/scimpi.dir/smi/lock.cpp.o" "gcc" "src/CMakeFiles/scimpi.dir/smi/lock.cpp.o.d"
  "/root/repo/src/smi/region.cpp" "src/CMakeFiles/scimpi.dir/smi/region.cpp.o" "gcc" "src/CMakeFiles/scimpi.dir/smi/region.cpp.o.d"
  "/root/repo/src/smi/signal.cpp" "src/CMakeFiles/scimpi.dir/smi/signal.cpp.o" "gcc" "src/CMakeFiles/scimpi.dir/smi/signal.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
