# Empty compiler generated dependencies file for ocean_halo.
# This may be replaced when dependencies are built.
