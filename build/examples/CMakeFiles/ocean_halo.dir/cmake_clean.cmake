file(REMOVE_RECURSE
  "CMakeFiles/ocean_halo.dir/ocean_halo.cpp.o"
  "CMakeFiles/ocean_halo.dir/ocean_halo.cpp.o.d"
  "ocean_halo"
  "ocean_halo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ocean_halo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
