# Empty dependencies file for matrix_transpose.
# This may be replaced when dependencies are built.
