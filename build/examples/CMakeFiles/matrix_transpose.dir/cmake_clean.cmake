file(REMOVE_RECURSE
  "CMakeFiles/matrix_transpose.dir/matrix_transpose.cpp.o"
  "CMakeFiles/matrix_transpose.dir/matrix_transpose.cpp.o.d"
  "matrix_transpose"
  "matrix_transpose.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/matrix_transpose.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
