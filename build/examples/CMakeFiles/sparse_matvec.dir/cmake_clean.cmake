file(REMOVE_RECURSE
  "CMakeFiles/sparse_matvec.dir/sparse_matvec.cpp.o"
  "CMakeFiles/sparse_matvec.dir/sparse_matvec.cpp.o.d"
  "sparse_matvec"
  "sparse_matvec.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sparse_matvec.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
