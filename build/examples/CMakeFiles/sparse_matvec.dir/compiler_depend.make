# Empty compiler generated dependencies file for sparse_matvec.
# This may be replaced when dependencies are built.
