file(REMOVE_RECURSE
  "CMakeFiles/work_stealing.dir/work_stealing.cpp.o"
  "CMakeFiles/work_stealing.dir/work_stealing.cpp.o.d"
  "work_stealing"
  "work_stealing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/work_stealing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
