# Empty compiler generated dependencies file for work_stealing.
# This may be replaced when dependencies are built.
