# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(example_quickstart "/root/repo/build/examples/quickstart")
set_tests_properties(example_quickstart PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;4;add_test;/root/repo/examples/CMakeLists.txt;7;scimpi_example;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_ocean_halo "/root/repo/build/examples/ocean_halo")
set_tests_properties(example_ocean_halo PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;4;add_test;/root/repo/examples/CMakeLists.txt;8;scimpi_example;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_sparse_matvec "/root/repo/build/examples/sparse_matvec")
set_tests_properties(example_sparse_matvec PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;4;add_test;/root/repo/examples/CMakeLists.txt;9;scimpi_example;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_work_stealing "/root/repo/build/examples/work_stealing")
set_tests_properties(example_work_stealing PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;4;add_test;/root/repo/examples/CMakeLists.txt;10;scimpi_example;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_matrix_transpose "/root/repo/build/examples/matrix_transpose")
set_tests_properties(example_matrix_transpose PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;4;add_test;/root/repo/examples/CMakeLists.txt;11;scimpi_example;/root/repo/examples/CMakeLists.txt;0;")
