# Empty compiler generated dependencies file for bench_sec43_stride_wc.
# This may be replaced when dependencies are built.
