file(REMOVE_RECURSE
  "CMakeFiles/bench_sec43_stride_wc.dir/bench_sec43_stride_wc.cpp.o"
  "CMakeFiles/bench_sec43_stride_wc.dir/bench_sec43_stride_wc.cpp.o.d"
  "bench_sec43_stride_wc"
  "bench_sec43_stride_wc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sec43_stride_wc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
