file(REMOVE_RECURSE
  "CMakeFiles/bench_fig09_sparse.dir/bench_fig09_sparse.cpp.o"
  "CMakeFiles/bench_fig09_sparse.dir/bench_fig09_sparse.cpp.o.d"
  "bench_fig09_sparse"
  "bench_fig09_sparse.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig09_sparse.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
