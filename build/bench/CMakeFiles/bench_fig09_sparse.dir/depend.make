# Empty dependencies file for bench_fig09_sparse.
# This may be replaced when dependencies are built.
