file(REMOVE_RECURSE
  "CMakeFiles/bench_table2_segments.dir/bench_table2_segments.cpp.o"
  "CMakeFiles/bench_table2_segments.dir/bench_table2_segments.cpp.o.d"
  "bench_table2_segments"
  "bench_table2_segments.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table2_segments.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
