# Empty compiler generated dependencies file for bench_table2_segments.
# This may be replaced when dependencies are built.
