# Empty dependencies file for bench_fig12_scaling.
# This may be replaced when dependencies are built.
