file(REMOVE_RECURSE
  "CMakeFiles/bench_fig11_platforms_osc.dir/bench_fig11_platforms_osc.cpp.o"
  "CMakeFiles/bench_fig11_platforms_osc.dir/bench_fig11_platforms_osc.cpp.o.d"
  "bench_fig11_platforms_osc"
  "bench_fig11_platforms_osc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig11_platforms_osc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
