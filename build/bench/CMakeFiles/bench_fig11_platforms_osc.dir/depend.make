# Empty dependencies file for bench_fig11_platforms_osc.
# This may be replaced when dependencies are built.
