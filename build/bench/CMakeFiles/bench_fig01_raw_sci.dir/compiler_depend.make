# Empty compiler generated dependencies file for bench_fig01_raw_sci.
# This may be replaced when dependencies are built.
