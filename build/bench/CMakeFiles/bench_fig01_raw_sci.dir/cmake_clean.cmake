file(REMOVE_RECURSE
  "CMakeFiles/bench_fig01_raw_sci.dir/bench_fig01_raw_sci.cpp.o"
  "CMakeFiles/bench_fig01_raw_sci.dir/bench_fig01_raw_sci.cpp.o.d"
  "bench_fig01_raw_sci"
  "bench_fig01_raw_sci.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig01_raw_sci.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
