file(REMOVE_RECURSE
  "CMakeFiles/bench_fig07_noncontig.dir/bench_fig07_noncontig.cpp.o"
  "CMakeFiles/bench_fig07_noncontig.dir/bench_fig07_noncontig.cpp.o.d"
  "bench_fig07_noncontig"
  "bench_fig07_noncontig.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig07_noncontig.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
