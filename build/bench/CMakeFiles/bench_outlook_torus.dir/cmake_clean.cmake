file(REMOVE_RECURSE
  "CMakeFiles/bench_outlook_torus.dir/bench_outlook_torus.cpp.o"
  "CMakeFiles/bench_outlook_torus.dir/bench_outlook_torus.cpp.o.d"
  "bench_outlook_torus"
  "bench_outlook_torus.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_outlook_torus.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
