# Empty compiler generated dependencies file for bench_outlook_torus.
# This may be replaced when dependencies are built.
