file(REMOVE_RECURSE
  "CMakeFiles/bench_fig10_platforms_noncontig.dir/bench_fig10_platforms_noncontig.cpp.o"
  "CMakeFiles/bench_fig10_platforms_noncontig.dir/bench_fig10_platforms_noncontig.cpp.o.d"
  "bench_fig10_platforms_noncontig"
  "bench_fig10_platforms_noncontig.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig10_platforms_noncontig.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
