# Empty compiler generated dependencies file for bench_fig10_platforms_noncontig.
# This may be replaced when dependencies are built.
