file(REMOVE_RECURSE
  "CMakeFiles/bench_outlook_dma.dir/bench_outlook_dma.cpp.o"
  "CMakeFiles/bench_outlook_dma.dir/bench_outlook_dma.cpp.o.d"
  "bench_outlook_dma"
  "bench_outlook_dma.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_outlook_dma.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
