# Empty compiler generated dependencies file for bench_conclusion_1s_vs_2s.
# This may be replaced when dependencies are built.
