file(REMOVE_RECURSE
  "CMakeFiles/bench_conclusion_1s_vs_2s.dir/bench_conclusion_1s_vs_2s.cpp.o"
  "CMakeFiles/bench_conclusion_1s_vs_2s.dir/bench_conclusion_1s_vs_2s.cpp.o.d"
  "bench_conclusion_1s_vs_2s"
  "bench_conclusion_1s_vs_2s.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_conclusion_1s_vs_2s.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
