# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for bench_conclusion_1s_vs_2s.
