# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_common[1]_include.cmake")
include("/root/repo/build/tests/test_sim[1]_include.cmake")
include("/root/repo/build/tests/test_mem[1]_include.cmake")
include("/root/repo/build/tests/test_sci[1]_include.cmake")
include("/root/repo/build/tests/test_smi[1]_include.cmake")
include("/root/repo/build/tests/test_datatype[1]_include.cmake")
include("/root/repo/build/tests/test_p2p[1]_include.cmake")
include("/root/repo/build/tests/test_coll[1]_include.cmake")
include("/root/repo/build/tests/test_rma[1]_include.cmake")
include("/root/repo/build/tests/test_api[1]_include.cmake")
include("/root/repo/build/tests/test_robust[1]_include.cmake")
include("/root/repo/build/tests/test_fuzz[1]_include.cmake")
include("/root/repo/build/tests/test_split[1]_include.cmake")
include("/root/repo/build/tests/test_boundary[1]_include.cmake")
include("/root/repo/build/tests/test_plat[1]_include.cmake")
include("/root/repo/build/tests/test_shapes[1]_include.cmake")
