file(REMOVE_RECURSE
  "CMakeFiles/test_mem.dir/mem/allocator_test.cpp.o"
  "CMakeFiles/test_mem.dir/mem/allocator_test.cpp.o.d"
  "CMakeFiles/test_mem.dir/mem/copy_model_test.cpp.o"
  "CMakeFiles/test_mem.dir/mem/copy_model_test.cpp.o.d"
  "CMakeFiles/test_mem.dir/mem/node_memory_test.cpp.o"
  "CMakeFiles/test_mem.dir/mem/node_memory_test.cpp.o.d"
  "test_mem"
  "test_mem.pdb"
  "test_mem[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_mem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
