# Empty dependencies file for test_sci.
# This may be replaced when dependencies are built.
