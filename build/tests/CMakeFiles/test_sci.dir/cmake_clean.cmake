file(REMOVE_RECURSE
  "CMakeFiles/test_sci.dir/sci/adapter_test.cpp.o"
  "CMakeFiles/test_sci.dir/sci/adapter_test.cpp.o.d"
  "CMakeFiles/test_sci.dir/sci/dma_test.cpp.o"
  "CMakeFiles/test_sci.dir/sci/dma_test.cpp.o.d"
  "CMakeFiles/test_sci.dir/sci/fabric_test.cpp.o"
  "CMakeFiles/test_sci.dir/sci/fabric_test.cpp.o.d"
  "CMakeFiles/test_sci.dir/sci/gather_test.cpp.o"
  "CMakeFiles/test_sci.dir/sci/gather_test.cpp.o.d"
  "CMakeFiles/test_sci.dir/sci/topology_test.cpp.o"
  "CMakeFiles/test_sci.dir/sci/topology_test.cpp.o.d"
  "test_sci"
  "test_sci.pdb"
  "test_sci[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sci.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
