
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/sci/adapter_test.cpp" "tests/CMakeFiles/test_sci.dir/sci/adapter_test.cpp.o" "gcc" "tests/CMakeFiles/test_sci.dir/sci/adapter_test.cpp.o.d"
  "/root/repo/tests/sci/dma_test.cpp" "tests/CMakeFiles/test_sci.dir/sci/dma_test.cpp.o" "gcc" "tests/CMakeFiles/test_sci.dir/sci/dma_test.cpp.o.d"
  "/root/repo/tests/sci/fabric_test.cpp" "tests/CMakeFiles/test_sci.dir/sci/fabric_test.cpp.o" "gcc" "tests/CMakeFiles/test_sci.dir/sci/fabric_test.cpp.o.d"
  "/root/repo/tests/sci/gather_test.cpp" "tests/CMakeFiles/test_sci.dir/sci/gather_test.cpp.o" "gcc" "tests/CMakeFiles/test_sci.dir/sci/gather_test.cpp.o.d"
  "/root/repo/tests/sci/topology_test.cpp" "tests/CMakeFiles/test_sci.dir/sci/topology_test.cpp.o" "gcc" "tests/CMakeFiles/test_sci.dir/sci/topology_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/scimpi.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
