# Empty compiler generated dependencies file for test_boundary.
# This may be replaced when dependencies are built.
