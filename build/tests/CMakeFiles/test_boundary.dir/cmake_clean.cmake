file(REMOVE_RECURSE
  "CMakeFiles/test_boundary.dir/mpi/boundary_test.cpp.o"
  "CMakeFiles/test_boundary.dir/mpi/boundary_test.cpp.o.d"
  "test_boundary"
  "test_boundary.pdb"
  "test_boundary[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_boundary.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
