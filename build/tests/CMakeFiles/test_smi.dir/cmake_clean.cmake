file(REMOVE_RECURSE
  "CMakeFiles/test_smi.dir/smi/smi_test.cpp.o"
  "CMakeFiles/test_smi.dir/smi/smi_test.cpp.o.d"
  "test_smi"
  "test_smi.pdb"
  "test_smi[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_smi.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
