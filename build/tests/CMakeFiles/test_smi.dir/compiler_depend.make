# Empty compiler generated dependencies file for test_smi.
# This may be replaced when dependencies are built.
