file(REMOVE_RECURSE
  "CMakeFiles/test_rma.dir/mpi/rma_test.cpp.o"
  "CMakeFiles/test_rma.dir/mpi/rma_test.cpp.o.d"
  "test_rma"
  "test_rma.pdb"
  "test_rma[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_rma.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
