# Empty compiler generated dependencies file for test_rma.
# This may be replaced when dependencies are built.
