file(REMOVE_RECURSE
  "CMakeFiles/test_split.dir/mpi/split_test.cpp.o"
  "CMakeFiles/test_split.dir/mpi/split_test.cpp.o.d"
  "test_split"
  "test_split.pdb"
  "test_split[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_split.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
