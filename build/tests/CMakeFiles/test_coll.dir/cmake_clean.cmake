file(REMOVE_RECURSE
  "CMakeFiles/test_coll.dir/mpi/coll_test.cpp.o"
  "CMakeFiles/test_coll.dir/mpi/coll_test.cpp.o.d"
  "test_coll"
  "test_coll.pdb"
  "test_coll[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_coll.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
