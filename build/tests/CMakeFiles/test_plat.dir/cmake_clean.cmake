file(REMOVE_RECURSE
  "CMakeFiles/test_plat.dir/plat/platform_test.cpp.o"
  "CMakeFiles/test_plat.dir/plat/platform_test.cpp.o.d"
  "test_plat"
  "test_plat.pdb"
  "test_plat[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_plat.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
