# Empty compiler generated dependencies file for test_plat.
# This may be replaced when dependencies are built.
