// Shared-memory spinlock across nodes, after Schulz's SCI synchronization
// techniques (paper reference [14]): very low latency when uncontended, a
// polling loop over remote memory when contended. Correctness is enforced by
// simulation-level queuing; the SCI access costs are charged explicitly.
#pragma once

#include "common/units.hpp"
#include "sci/params.hpp"
#include "sim/sync.hpp"

namespace scimpi::smi {

class SmiLock {
public:
    /// `home_node`: the node whose memory holds the lock word.
    SmiLock(int home_node, sci::SciParams params)
        : home_(home_node), params_(params) {}

    /// Acquire from a process running on `my_node`.
    void acquire(sim::Process& self, int my_node);
    void release(sim::Process& self, int my_node);

    [[nodiscard]] bool locked() const { return mutex_.locked(); }
    [[nodiscard]] std::uint64_t acquisitions() const { return acquisitions_; }
    [[nodiscard]] std::uint64_t contentions() const { return contentions_; }

private:
    /// Round-trip cost of one lock-word access from `my_node`.
    [[nodiscard]] SimTime access_cost(int my_node) const {
        // Local accesses hit cached shared memory; remote ones stall on a
        // fetch of the lock word plus the compare-and-store write-out.
        return my_node == home_ ? 120 : params_.read_latency + params_.txn_overhead;
    }

    int home_;
    sci::SciParams params_;
    sim::SimMutex mutex_;
    std::uint64_t acquisitions_ = 0;
    std::uint64_t contentions_ = 0;
};

}  // namespace scimpi::smi
