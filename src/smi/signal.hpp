// Remote signal channel: models SCI remote interrupts. An origin process
// posts a small control message; after the interrupt latency the target's
// handler (a process blocked in recv) wakes with the payload. Used by the
// MPI layer to invoke remote handlers for emulated one-sided accesses on
// private window memory (paper Section 4.2).
#pragma once

#include <cstdint>
#include <vector>

#include "obs/metrics.hpp"
#include "sci/params.hpp"
#include "sim/dispatcher.hpp"
#include "sim/sync.hpp"

namespace scimpi::smi {

struct Signal {
    int from_rank = -1;
    int kind = 0;
    std::uint64_t a = 0, b = 0, c = 0;       ///< small scalar arguments
    std::vector<std::byte> payload;          ///< optional inline data
    std::uint64_t flow = 0;                  ///< trace flow id (0 = no tracing)
    SimTime post_time = 0;                   ///< when the origin posted the op
};

class SignalChannel {
public:
    SignalChannel(sim::Dispatcher& dispatcher, sci::SciParams params,
                  int target_node)
        : dispatcher_(&dispatcher), params_(params), target_node_(target_node) {}

    /// Post a signal from a process on `from_node`; it is delivered (and a
    /// blocked handler woken) after the interrupt latency. The origin is
    /// charged only the doorbell write.
    void post(sim::Process& self, int from_node, Signal s);

    /// Handler side: block until a signal arrives.
    Signal wait(sim::Process& self) { return inbox_.recv(self, "signal inbox"); }

    [[nodiscard]] bool pending() const { return !inbox_.empty(); }
    [[nodiscard]] std::uint64_t delivered() const { return delivered_; }

    /// Fault injection: swallow the next `n` interrupts. The doorbell write
    /// still lands, so the origin notices the missing completion after
    /// irq_retry_timeout and retransmits — delivery is delayed, never lost.
    void drop_next(int n) { drop_next_ += n; }
    [[nodiscard]] std::uint64_t dropped() const { return dropped_; }
    [[nodiscard]] std::uint64_t retransmits() const { return retransmits_; }

    /// Cluster counters smi.irq_dropped / smi.irq_retransmits.
    void bind_metrics(obs::MetricsRegistry& m);

private:
    sim::Dispatcher* dispatcher_;
    sci::SciParams params_;
    int target_node_;
    sim::Mailbox<Signal> inbox_;
    std::uint64_t delivered_ = 0;
    int drop_next_ = 0;
    std::uint64_t dropped_ = 0;
    std::uint64_t retransmits_ = 0;
    obs::Counter* dropped_c_ = nullptr;
    obs::Counter* retransmits_c_ = nullptr;
};

}  // namespace scimpi::smi
