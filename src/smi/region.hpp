// SMI (Shared Memory Interface) region abstraction, after the paper's [26]:
// a single read/write/barrier API over both intra-node shared memory and
// imported SCI segments. Thanks to this layer, every optimization built for
// SCI (direct packing, one-sided windows) applies unchanged to intra-node
// communication — exactly the property the paper highlights in Section 6.
#pragma once

#include <span>

#include "mem/copy_model.hpp"
#include "sci/adapter.hpp"
#include "sci/segment.hpp"

namespace scimpi::smi {

class Region {
public:
    /// Intra-node shared memory region: plain cached copies, immediately
    /// visible, barriers are (nearly) free.
    static Region local(std::span<std::byte> mem, mem::MachineProfile profile);

    /// Region backed by an (imported) SCI segment. If the mapping is a
    /// loopback (origin == target node), behaves like a local region.
    static Region sci(sci::SciMapping map, sci::SciAdapter& adapter);

    /// True if accesses cross the SCI fabric.
    [[nodiscard]] bool remote() const { return adapter_ != nullptr && map_.remote(); }

    [[nodiscard]] std::span<std::byte> mem() { return map_.mem; }
    [[nodiscard]] std::span<const std::byte> mem() const { return map_.mem; }
    [[nodiscard]] std::size_t size() const { return map_.mem.size(); }

    /// Store `len` bytes at `off`. `src_traffic` as in SciAdapter::write.
    Status write(sim::Process& self, std::size_t off, const void* src, std::size_t len,
                 std::size_t src_traffic = 0);

    /// Gather-store: `blocks` land back to back at `off` (the direct_pack_ff
    /// fast path of SciAdapter::write_gather, available through the unified
    /// region API so collective algorithms work unchanged intra-node).
    Status write_gather(sim::Process& self, std::size_t off,
                        std::span<const sci::SciAdapter::ConstIovec> blocks,
                        std::size_t src_traffic = 0);

    /// Load `len` bytes from `off`.
    Status read(sim::Process& self, std::size_t off, void* dst, std::size_t len);

    /// Ensure every preceding write of this process has reached the region.
    void store_barrier(sim::Process& self);

    [[nodiscard]] const sci::SciMapping& mapping() const { return map_; }

    /// Attach the scimpi-check checker (may be null). Remote accesses are
    /// already observed at the adapter choke point; this covers the local /
    /// loopback branch, which never reaches the adapter. `sci()` regions
    /// inherit the adapter's checker automatically; this override exists
    /// for `local()` regions, which have no adapter to inherit from.
    void bind_checker(check::Checker* ck) { checker_ = ck; }

private:
    Region() = default;

    sci::SciMapping map_;                 // local regions use a synthetic mapping
    sci::SciAdapter* adapter_ = nullptr;  // null => local
    mem::CopyModel local_model_{mem::MachineProfile{}};
    check::Checker* checker_ = nullptr;   // null unless SCIMPI_CHECK
};

}  // namespace scimpi::smi
