#include "smi/barrier.hpp"

namespace scimpi::smi {

void SmiBarrier::arrive_and_wait(sim::Process& self, int rank) {
    const int my_node = nodes_.at(static_cast<std::size_t>(rank));
    // Post the arrival flag into the home node's flag array.
    self.delay(my_node == home_ ? 80 : params_.txn_overhead + params_.stream_restart);
    const bool last = rank == 0;  // bookkeeping only; any arriver may be last
    (void)last;
    barrier_.arrive_and_wait(self);
    ++rounds_;
    // Observe the release word: a poll iteration on the home node's memory.
    self.delay(my_node == home_ ? 80 : params_.read_latency);
}

}  // namespace scimpi::smi
