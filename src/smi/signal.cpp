#include "smi/signal.hpp"

namespace scimpi::smi {

void SignalChannel::post(sim::Process& self, int from_node, Signal s) {
    // Doorbell: one small remote (or local) store.
    const bool remote = from_node != target_node_;
    self.delay(remote ? params_.txn_overhead + params_.stream_restart : 80);
    const SimTime latency = remote ? params_.irq_latency : params_.irq_latency / 4;
    dispatcher_->after(latency, [this, s = std::move(s)]() mutable {
        ++delivered_;
        inbox_.send(std::move(s));
    });
}

}  // namespace scimpi::smi
