#include "smi/signal.hpp"

namespace scimpi::smi {

void SignalChannel::bind_metrics(obs::MetricsRegistry& m) {
    dropped_c_ = &m.counter("smi.irq_dropped");
    retransmits_c_ = &m.counter("smi.irq_retransmits");
}

void SignalChannel::post(sim::Process& self, int from_node, Signal s) {
    // Doorbell: one small remote (or local) store.
    const bool remote = from_node != target_node_;
    self.delay(remote ? params_.txn_overhead + params_.stream_restart : 80);
    const SimTime latency = remote ? params_.irq_latency : params_.irq_latency / 4;
    SimTime extra = 0;
    if (drop_next_ > 0) {
        // Injected fault: this interrupt is swallowed. The origin's driver
        // notices the missing completion and rings the doorbell again, so
        // the signal arrives late by one retry timeout — delayed, not lost.
        --drop_next_;
        ++dropped_;
        ++retransmits_;
        if (dropped_c_ != nullptr) dropped_c_->inc();
        if (retransmits_c_ != nullptr) retransmits_c_->inc();
        extra = params_.irq_retry_timeout;
    }
    dispatcher_->after(latency + extra, [this, s = std::move(s)]() mutable {
        ++delivered_;
        inbox_.send(std::move(s));
    });
}

}  // namespace scimpi::smi
