// Cluster-wide barrier over shared memory flags (one flag per participant in
// the home node's memory; the last arriver flips a release word everyone
// polls). Costs follow the SCI access model; correctness uses sim barriers.
#pragma once

#include <vector>

#include "common/units.hpp"
#include "sci/params.hpp"
#include "sim/sync.hpp"

namespace scimpi::smi {

class SmiBarrier {
public:
    /// `home_node`: node holding the flag array; `nodes[i]`: node of rank i.
    SmiBarrier(int home_node, std::vector<int> nodes, sci::SciParams params)
        : home_(home_node),
          nodes_(std::move(nodes)),
          params_(params),
          barrier_(static_cast<int>(nodes_.size())) {}

    /// Called by rank `rank` (running on nodes_[rank]).
    void arrive_and_wait(sim::Process& self, int rank);

    [[nodiscard]] int participants() const { return barrier_.participants(); }
    [[nodiscard]] std::uint64_t rounds() const { return rounds_; }

private:
    int home_;
    std::vector<int> nodes_;
    sci::SciParams params_;
    sim::SimBarrier barrier_;
    std::uint64_t rounds_ = 0;
};

}  // namespace scimpi::smi
