#include "smi/lock.hpp"

namespace scimpi::smi {

void SmiLock::acquire(sim::Process& self, int my_node) {
    // One test-and-set round trip; on contention, the waiter effectively
    // polls — we charge the poll detection latency when finally woken.
    self.delay(access_cost(my_node));
    if (mutex_.locked()) {
        ++contentions_;
        mutex_.lock(self, "smi lock");  // parks until hand-off
        // Detection: the releasing store must cross the fabric and the
        // spinning load observe it.
        self.delay(access_cost(my_node));
    } else {
        mutex_.lock(self);
    }
    ++acquisitions_;
}

void SmiLock::release(sim::Process& self, int my_node) {
    // The releasing store is posted; charge its issue cost.
    self.delay(my_node == home_ ? 60 : params_.txn_overhead + params_.stream_restart);
    mutex_.unlock(self);
}

}  // namespace scimpi::smi
