#include "smi/region.hpp"

#include <cstring>

#include "check/checker.hpp"

namespace scimpi::smi {

Region Region::local(std::span<std::byte> mem, mem::MachineProfile profile) {
    Region r;
    r.map_.mem = mem;
    r.map_.origin_node = 0;
    r.map_.target_node = 0;
    r.local_model_ = mem::CopyModel(std::move(profile));
    return r;
}

Region Region::sci(sci::SciMapping map, sci::SciAdapter& adapter) {
    Region r;
    r.map_ = map;
    r.adapter_ = &adapter;
    r.local_model_ = mem::CopyModel(adapter.host());
    // Loopback mappings short-circuit past the adapter, so the region must
    // carry the checker itself to keep watched segments observed.
    r.checker_ = adapter.checker();
    return r;
}

Status Region::write(sim::Process& self, std::size_t off, const void* src,
                     std::size_t len, std::size_t src_traffic) {
    if (remote()) return adapter_->write(self, map_, off, src, len, src_traffic);
    SCIMPI_REQUIRE(off + len <= size(), "region write out of bounds");
    if (len == 0) return Status::ok();
    if (checker_ != nullptr)
        checker_->on_segment_access(map_.seg.node, map_.seg.id, self.id(), off, len,
                                    /*is_store=*/true, self.now());
    const std::size_t traffic = src_traffic == 0 ? len : src_traffic;
    self.delay(local_model_.copy_cost(traffic, {}, {}));
    std::memcpy(map_.mem.data() + off, src, len);
    return Status::ok();
}

Status Region::write_gather(sim::Process& self, std::size_t off,
                            std::span<const sci::SciAdapter::ConstIovec> blocks,
                            std::size_t src_traffic) {
    if (remote()) return adapter_->write_gather(self, map_, off, blocks, src_traffic);
    std::size_t len = 0;
    for (const auto& b : blocks) len += b.len;
    SCIMPI_REQUIRE(off + len <= size(), "region write_gather out of bounds");
    if (len == 0) return Status::ok();
    if (checker_ != nullptr)
        checker_->on_segment_access(map_.seg.node, map_.seg.id, self.id(), off, len,
                                    /*is_store=*/true, self.now());
    const std::size_t traffic = src_traffic == 0 ? len : src_traffic;
    self.delay(local_model_.copy_cost(traffic, {}, {}));
    std::byte* dst = map_.mem.data() + off;
    for (const auto& b : blocks) {
        std::memcpy(dst, b.ptr, b.len);
        dst += b.len;
    }
    return Status::ok();
}

Status Region::read(sim::Process& self, std::size_t off, void* dst, std::size_t len) {
    if (remote()) return adapter_->read(self, map_, off, dst, len);
    SCIMPI_REQUIRE(off + len <= size(), "region read out of bounds");
    if (len == 0) return Status::ok();
    if (checker_ != nullptr)
        checker_->on_segment_access(map_.seg.node, map_.seg.id, self.id(), off, len,
                                    /*is_store=*/false, self.now());
    self.delay(local_model_.copy_cost(len, {}, {}));
    std::memcpy(dst, map_.mem.data() + off, len);
    return Status::ok();
}

void Region::store_barrier(sim::Process& self) {
    if (remote()) {
        adapter_->store_barrier(self);
        return;
    }
    // Intra-node: a compiler/CPU store fence, nanoseconds.
    self.delay(20);
}

}  // namespace scimpi::smi
