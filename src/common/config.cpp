#include "common/config.hpp"

namespace scimpi {

Config default_config() { return Config{}; }

}  // namespace scimpi
