#include "common/log.hpp"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <mutex>

namespace scimpi {
namespace {

LogLevel g_level = [] {
    const char* env = std::getenv("SCIMPI_LOG");
    if (env == nullptr) return LogLevel::warn;
    if (std::strcmp(env, "trace") == 0) return LogLevel::trace;
    if (std::strcmp(env, "debug") == 0) return LogLevel::debug;
    if (std::strcmp(env, "info") == 0) return LogLevel::info;
    if (std::strcmp(env, "error") == 0) return LogLevel::error;
    if (std::strcmp(env, "off") == 0) return LogLevel::off;
    return LogLevel::warn;
}();

const char* level_tag(LogLevel lvl) {
    switch (lvl) {
        case LogLevel::trace: return "TRACE";
        case LogLevel::debug: return "DEBUG";
        case LogLevel::info: return "INFO ";
        case LogLevel::warn: return "WARN ";
        case LogLevel::error: return "ERROR";
        case LogLevel::off: return "OFF  ";
    }
    return "?";
}

std::mutex g_mutex;

}  // namespace

LogLevel log_level() { return g_level; }
void set_log_level(LogLevel lvl) { g_level = lvl; }

void log_message(LogLevel lvl, const std::string& msg) {
    const std::lock_guard<std::mutex> lock(g_mutex);
    std::fprintf(stderr, "[scimpi %s] %s\n", level_tag(lvl), msg.c_str());
}

}  // namespace scimpi
