// Error handling: the library reports recoverable failures through Status /
// Result<T>; programming errors (precondition violations) throw
// scimpi::Panic, which tests assert on.
#pragma once

#include <stdexcept>
#include <string>
#include <utility>
#include <variant>

namespace scimpi {

enum class Errc {
    ok = 0,
    invalid_argument,
    out_of_memory,        // simulated segment space exhausted
    not_found,
    truncated,            // receive buffer smaller than incoming message
    unsupported,          // feature disabled on this platform profile
    link_failure,         // unrecoverable SCI transmission failure
    peer_unreachable,     // retry/backoff budget exhausted or peer marked dead
    rma_sync_error,       // one-sided synchronization misuse
    deadlock,             // simulation detected global deadlock
    io_error,             // host-side file I/O failure (trace/stats export)
};

const char* errc_name(Errc e);

/// Unrecoverable usage error (assert-like). Thrown, never returned.
class Panic : public std::logic_error {
public:
    explicit Panic(const std::string& what) : std::logic_error(what) {}
};

[[noreturn]] void panic(const std::string& msg);

#define SCIMPI_REQUIRE(cond, msg)                       \
    do {                                                \
        if (!(cond)) ::scimpi::panic(std::string(msg)); \
    } while (0)

/// Lightweight status: an error code plus optional detail message. The
/// class-level [[nodiscard]] makes every silently-dropped Status return a
/// compiler warning (an error under SCIMPI_WERROR): callers must check,
/// propagate, or cast to void with a reason.
class [[nodiscard]] Status {
public:
    Status() = default;
    Status(Errc code, std::string detail) : code_(code), detail_(std::move(detail)) {}
    static Status ok() { return {}; }
    static Status error(Errc code, std::string detail = {}) { return {code, std::move(detail)}; }

    [[nodiscard]] bool is_ok() const { return code_ == Errc::ok; }
    explicit operator bool() const { return is_ok(); }
    [[nodiscard]] Errc code() const { return code_; }
    [[nodiscard]] const std::string& detail() const { return detail_; }
    [[nodiscard]] std::string to_string() const;

private:
    Errc code_ = Errc::ok;
    std::string detail_;
};

/// Minimal expected-like result carrier. [[nodiscard]] for the same reason
/// as Status: a dropped Result is a dropped error.
template <typename T>
class [[nodiscard]] Result {
public:
    Result(T value) : v_(std::move(value)) {}  // NOLINT(google-explicit-constructor)
    Result(Status st) : v_(std::move(st)) {    // NOLINT(google-explicit-constructor)
        SCIMPI_REQUIRE(!std::get<Status>(v_).is_ok(), "Result constructed from ok Status");
    }

    [[nodiscard]] bool is_ok() const { return std::holds_alternative<T>(v_); }
    explicit operator bool() const { return is_ok(); }

    T& value() {
        SCIMPI_REQUIRE(is_ok(), "Result::value() on error: " + status().to_string());
        return std::get<T>(v_);
    }
    const T& value() const {
        SCIMPI_REQUIRE(is_ok(), "Result::value() on error: " + status().to_string());
        return std::get<T>(v_);
    }
    [[nodiscard]] Status status() const {
        return is_ok() ? Status::ok() : std::get<Status>(v_);
    }
    T value_or(T fallback) const { return is_ok() ? std::get<T>(v_) : std::move(fallback); }

private:
    std::variant<T, Status> v_;
};

}  // namespace scimpi
