// Unit helpers: binary size literals and time conversions used throughout
// the simulator. All simulated time is kept in integer nanoseconds.
#pragma once

#include <cstdint>

namespace scimpi {

constexpr std::uint64_t operator""_KiB(unsigned long long v) { return v * 1024ull; }
constexpr std::uint64_t operator""_MiB(unsigned long long v) { return v * 1024ull * 1024ull; }
constexpr std::uint64_t operator""_GiB(unsigned long long v) { return v * 1024ull * 1024ull * 1024ull; }

/// Simulated time in nanoseconds.
using SimTime = std::int64_t;

constexpr SimTime operator""_ns(unsigned long long v) { return static_cast<SimTime>(v); }
constexpr SimTime operator""_us(unsigned long long v) { return static_cast<SimTime>(v) * 1000; }
constexpr SimTime operator""_ms(unsigned long long v) { return static_cast<SimTime>(v) * 1000000; }
constexpr SimTime operator""_s(unsigned long long v) { return static_cast<SimTime>(v) * 1000000000; }

constexpr double to_us(SimTime t) { return static_cast<double>(t) / 1e3; }
constexpr double to_ms(SimTime t) { return static_cast<double>(t) / 1e6; }
constexpr double to_seconds(SimTime t) { return static_cast<double>(t) / 1e9; }

/// Time (ns) to move `bytes` at `mib_per_s` MiB/s. Returns at least 1 ns for
/// any non-zero amount so that causality is preserved in the event queue.
constexpr SimTime transfer_time(std::uint64_t bytes, double mib_per_s) {
    if (bytes == 0 || mib_per_s <= 0.0) return 0;
    const double seconds = static_cast<double>(bytes) / (mib_per_s * 1048576.0);
    const auto ns = static_cast<SimTime>(seconds * 1e9);
    return ns > 0 ? ns : 1;
}

/// Achieved bandwidth in MiB/s for `bytes` moved in `t` nanoseconds.
constexpr double bandwidth_mib(std::uint64_t bytes, SimTime t) {
    if (t <= 0) return 0.0;
    return static_cast<double>(bytes) / 1048576.0 / to_seconds(t);
}

}  // namespace scimpi
