// Minimal leveled logger. Off (warn-and-above) by default; tests and
// debugging can raise verbosity per-run via set_log_level or the
// SCIMPI_LOG environment variable ("trace","debug","info","warn","error").
#pragma once

#include <sstream>
#include <string>

namespace scimpi {

enum class LogLevel { trace = 0, debug, info, warn, error, off };

LogLevel log_level();
void set_log_level(LogLevel lvl);
void log_message(LogLevel lvl, const std::string& msg);

namespace detail {
template <typename... Args>
std::string log_concat(Args&&... args) {
    std::ostringstream os;
    (os << ... << args);
    return os.str();
}
}  // namespace detail

#define SCIMPI_LOG(lvl, ...)                                                     \
    do {                                                                         \
        if (static_cast<int>(lvl) >= static_cast<int>(::scimpi::log_level()))    \
            ::scimpi::log_message(lvl, ::scimpi::detail::log_concat(__VA_ARGS__)); \
    } while (0)

#define SCIMPI_TRACE(...) SCIMPI_LOG(::scimpi::LogLevel::trace, __VA_ARGS__)
#define SCIMPI_DEBUG(...) SCIMPI_LOG(::scimpi::LogLevel::debug, __VA_ARGS__)
#define SCIMPI_INFO(...) SCIMPI_LOG(::scimpi::LogLevel::info, __VA_ARGS__)
#define SCIMPI_WARN(...) SCIMPI_LOG(::scimpi::LogLevel::warn, __VA_ARGS__)

}  // namespace scimpi
