// Library-wide tunables. These mirror the runtime parameters of SCI-MPICH
// (protocol thresholds, rendezvous chunking) plus the ablation switches for
// the design decisions called out in DESIGN.md (D1-D6).
#pragma once

#include <cstddef>
#include <cstdint>

#include "common/units.hpp"

namespace scimpi {

struct Config {
    // ---- two-sided protocol thresholds (bytes of payload) ----
    std::size_t short_threshold = 128;        ///< inline data in control packet
    std::size_t eager_threshold = 16_KiB;     ///< preallocated remote eager slots
    std::size_t rndv_chunk = 64_KiB;          ///< rendezvous handshake chunk (D3: keep < L2)
    std::size_t eager_slots = 8;              ///< eager buffers per peer

    // ---- datatype engine ----
    bool use_direct_pack_ff = true;           ///< false: always generic pack+send
    std::size_t ff_min_block = 0;             ///< D6: below this basic-block size fall
                                              ///< back to generic (paper sets 0 for Fig. 7)
    bool ff_merge_stacks = true;              ///< D4: merge adjacent blocks at commit

    // ---- DMA rendezvous (paper Section 6 outlook) ----
    bool use_dma_rndv = false;            ///< move rendezvous chunks by DMA
    std::size_t dma_rndv_threshold = 64_KiB;  ///< minimum chunk size for DMA

    // ---- one-sided communication ----
    std::size_t get_remote_put_threshold = 2_KiB;  ///< D5: larger gets served by
                                                   ///< target-side remote-put
    bool osc_direct = true;                   ///< allow direct PIO access to shared windows

    // ---- collective engine (src/mpi/coll/; see DESIGN.md §11) ----
    bool coll_segments = true;                ///< allow the shared-segment collective path
    std::size_t coll_chunk = 64_KiB;          ///< pipeline chunk of a collective stream
    std::size_t coll_seg_max = 8_MiB;         ///< per-rank data-segment cap (shrinks chunk)
    std::size_t coll_seg_min = 1_KiB;         ///< below this payload collectives stay p2p
    std::size_t coll_small_allreduce = 4_KiB; ///< recursive-doubling fast path below
    std::size_t coll_ring_min = 64_KiB;       ///< ring allreduce at or above this payload
    SimTime coll_poll_timeout = 50'000;       ///< ns parked on a flag before re-polling
                                              ///< (and probing for a p2p fallback)

    // ---- SCI adapter model ----
    bool stream_buffers = true;               ///< D1: gather ascending stores into 64 B txns
    bool write_combine = true;                ///< D2: 32 B CPU write-combine buffer
    double link_error_rate = 0.0;             ///< probability a transaction needs retry
    int max_retries = 8;                      ///< retries before link_failure

    // ---- resilience (responses to injected faults; see src/fault/) ----
    int send_retries = 16;                    ///< protocol-level attempts per chunk/op
    SimTime retry_backoff = 20'000;           ///< ns first backoff; doubles per retry
    SimTime retry_backoff_max = 2'000'000;    ///< ns backoff ceiling
    SimTime retry_budget = 20'000'000;        ///< ns of backoff per op before giving up
                                              ///< with peer_unreachable
    bool torus_reroute = true;                ///< route around a down link via the
                                              ///< alternate dimension order
    bool rma_fallback = true;                 ///< direct RMA falls back to the emulated
                                              ///< handler path when the route is dead
    SimTime monitor_period = 0;               ///< ns between connection-monitor probe
                                              ///< sweeps (0 = monitor disabled)
    int monitor_dead_after = 3;               ///< consecutive probe failures -> dead

    // ---- simulation ----
    std::uint64_t seed = 1;                   ///< error-injection RNG seed
};

/// Baseline configuration matching the paper's SCI-MPICH setup.
Config default_config();

}  // namespace scimpi
