#include "common/status.hpp"

namespace scimpi {

const char* errc_name(Errc e) {
    switch (e) {
        case Errc::ok: return "ok";
        case Errc::invalid_argument: return "invalid_argument";
        case Errc::out_of_memory: return "out_of_memory";
        case Errc::not_found: return "not_found";
        case Errc::truncated: return "truncated";
        case Errc::unsupported: return "unsupported";
        case Errc::link_failure: return "link_failure";
        case Errc::peer_unreachable: return "peer_unreachable";
        case Errc::rma_sync_error: return "rma_sync_error";
        case Errc::deadlock: return "deadlock";
        case Errc::io_error: return "io_error";
    }
    return "unknown";
}

void panic(const std::string& msg) { throw Panic(msg); }

std::string Status::to_string() const {
    std::string s = errc_name(code_);
    if (!detail_.empty()) {
        s += ": ";
        s += detail_;
    }
    return s;
}

}  // namespace scimpi
