// Deterministic, seedable RNG (splitmix64) used for error injection and for
// property-test datatype generation. Independent of std::mt19937 so streams
// are stable across standard library implementations.
#pragma once

#include <cstdint>

namespace scimpi {

class Rng {
public:
    explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ull) : state_(seed) {}

    std::uint64_t next() {
        std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ull);
        z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
        z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
        return z ^ (z >> 31);
    }

    /// Uniform in [0, bound). bound must be > 0.
    std::uint64_t below(std::uint64_t bound) { return next() % bound; }

    /// Uniform in [lo, hi] inclusive.
    std::int64_t range(std::int64_t lo, std::int64_t hi) {
        return lo + static_cast<std::int64_t>(below(static_cast<std::uint64_t>(hi - lo + 1)));
    }

    /// Uniform double in [0, 1).
    double uniform() { return static_cast<double>(next() >> 11) * 0x1.0p-53; }

    /// True with probability p.
    bool chance(double p) { return uniform() < p; }

private:
    std::uint64_t state_;
};

}  // namespace scimpi
