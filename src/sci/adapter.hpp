// The PCI-SCI adapter model (Dolphin D330 class). One instance per node.
//
// PIO writes are *posted*: the call returns once the CPU has issued the
// stores, but the bytes only become visible in the target's memory after the
// pipeline latency (modelled with delayed dispatcher callbacks). A store
// barrier stalls until every outstanding store of the calling process has
// landed — upper layers must barrier before setting completion flags, exactly
// as on real SCI (Section 2, points 3 and 4 of the paper).
//
// Cost model per write call (see SciParams):
//   * ascending-contiguous continuation       -> burst_bw full lines,
//   * continuation shorter than wc_gather_min -> WC gather-timeout flush,
//   * jump: stream restart + partial-line transactions (aligned vs
//     misaligned chunks) + full lines at strided_burst_bw for the first
//     stream_ramp bytes, burst_bw beyond,
//   * write-combining disabled -> flat uncached_bw (no stride sensitivity),
//   * source feed: local reads feeding the PIO stream are capped by L2 /
//     memory-read bandwidth (the >128 KiB dip of Figure 1, footnote 2).
#pragma once

#include <algorithm>
#include <cstdint>
#include <span>
#include <unordered_map>
#include <vector>

#include "common/config.hpp"
#include "common/rng.hpp"
#include "common/status.hpp"
#include "mem/machine_profile.hpp"
#include "obs/metrics.hpp"
#include "sci/fabric.hpp"
#include "sci/segment.hpp"
#include "sim/dispatcher.hpp"
#include "sim/sync.hpp"

namespace scimpi::check {
class Checker;
}

namespace scimpi::sci {

class SciAdapter {
public:
    SciAdapter(int node, Fabric& fabric, sim::Dispatcher& dispatcher,
               mem::MachineProfile host, Config cfg);

    struct Stats {
        std::uint64_t write_calls = 0;
        std::uint64_t bytes_written = 0;
        std::uint64_t read_calls = 0;
        std::uint64_t bytes_read = 0;
        std::uint64_t stream_restarts = 0;
        std::uint64_t partial_flushes = 0;
        std::uint64_t misaligned_txns = 0;
        std::uint64_t gather_timeouts = 0;
        std::uint64_t barriers = 0;
        std::uint64_t retries = 0;
        std::uint64_t dma_bytes = 0;
        std::uint64_t probes = 0;
        std::uint64_t probe_failures = 0;
        std::uint64_t stall_waits = 0;  ///< calls that waited out an injected stall
    };

    /// Transparent remote store of `len` bytes to `map` at `off`.
    /// `src_traffic` is the number of bytes the CPU reads locally to feed the
    /// stream (>= len when the source pattern wastes cache lines; 0 == len).
    /// Returns link_failure if a transaction exceeded its retry budget.
    Status write(sim::Process& self, const SciMapping& map, std::size_t off,
                 const void* src, std::size_t len, std::size_t src_traffic = 0);

    /// Gather-write: the direct_pack_ff fast path. The blocks land back to
    /// back at `off` (ascending contiguous destination), so after the
    /// initial jump every block continues the stream; blocks below
    /// wc_gather_min still pay the WC gather timeout. One arrival event
    /// covers the whole call.
    struct ConstIovec {
        const void* ptr = nullptr;
        std::size_t len = 0;
    };
    Status write_gather(sim::Process& self, const SciMapping& map, std::size_t off,
                        std::span<const ConstIovec> blocks,
                        std::size_t src_traffic = 0);

    /// Wire+feed cost of streaming `len` bytes to a remote node without a
    /// pre-established mapping (short/eager control payloads).
    [[nodiscard]] SimTime pio_stream_cost(std::size_t len, std::size_t src_traffic = 0) const;

    /// Transparent remote load (CPU stalls per transaction round trip).
    Status read(sim::Process& self, const SciMapping& map, std::size_t off,
                void* dst, std::size_t len);

    /// Flush write-combine + stream buffers and wait until every posted
    /// store of this process has arrived at its target.
    void store_barrier(sim::Process& self);

    /// Synchronous DMA transfer (descriptor setup + engine streaming).
    Status dma_write(sim::Process& self, const SciMapping& map, std::size_t off,
                     const void* src, std::size_t len);
    Status dma_read(sim::Process& self, const SciMapping& map, std::size_t off,
                    void* dst, std::size_t len);
    /// Chained-descriptor gather DMA: the non-contiguous transfer mode the
    /// paper's Section 6 outlook proposes. One descriptor per block
    /// (dma_desc_cost each) plus the usual startup; the engine streams the
    /// payload at dma_bw into an ascending destination.
    Status dma_write_gather(sim::Process& self, const SciMapping& map, std::size_t off,
                            std::span<const ConstIovec> blocks);

    /// Connection monitoring probe: one round trip to the peer node; false
    /// (after the probe timeout) when the route is broken. Charges
    /// sci.probes / sci.probe_failures.
    bool probe_peer(sim::Process& self, int peer_node);

    /// Fault injection: the adapter is wedged (PCI bridge reset, firmware
    /// hiccup) until simulated time `t` — every operation issued before then
    /// first waits the stall out. Extends, never shortens, a pending stall.
    void stall_until(SimTime t) { stall_until_ = std::max(stall_until_, t); }
    [[nodiscard]] SimTime stalled_until() const { return stall_until_; }

    /// Attach a metrics registry: every adapter resolves the same cluster
    /// counters (sci.pio_bytes, sci.dma_bytes, ...), so increments aggregate
    /// over all nodes. Per-adapter Stats stay unconditional.
    void bind_metrics(obs::MetricsRegistry& m);

    /// Attach the scimpi-check checker (may be null). The adapter is the
    /// choke point for every access through an imported mapping, so all
    /// remote loads/stores of watched segments are observed here.
    void bind_checker(check::Checker* ck) { checker_ = ck; }
    /// The bound checker (null unless SCIMPI_CHECK); smi::Region inherits
    /// it at creation so loopback accesses that bypass the adapter are
    /// still observed.
    [[nodiscard]] check::Checker* checker() const { return checker_; }

    [[nodiscard]] int node() const { return node_; }
    [[nodiscard]] Fabric& fabric() { return fabric_; }
    [[nodiscard]] const Stats& stats() const { return stats_; }
    [[nodiscard]] const Config& config() const { return cfg_; }
    Config& config() { return cfg_; }
    [[nodiscard]] const mem::MachineProfile& host() const { return host_; }
    void reset_stats() { stats_ = Stats{}; }

    /// Posted stores currently in flight across all processes on this node
    /// (the adapter's write-queue depth; flight-recorder probe).
    [[nodiscard]] int pending_store_count() const {
        int n = 0;
        for (const auto& [pid, c] : pending_stores_) n += c;
        return n;
    }

private:
    struct StreamState {
        bool valid = false;
        SegmentId seg;
        std::size_t next_off = 0;
    };

    /// Wire-side time for a PIO write; updates the per-process stream state.
    SimTime wc_write_time(int pid, const SciMapping& map, std::size_t off, std::size_t len);

    /// Cost of flushing a sub-line segment [off, off+len): greedy aligned
    /// power-of-two decomposition, misaligned chunks cost more.
    SimTime partial_segment_cost(std::size_t off, std::size_t len);

    /// Error injection for `packets` transactions at `rate` (the max of the
    /// global Config rate and any injected per-link window on the route);
    /// adds retry time to *t and returns link_failure when a transaction
    /// exhausts its retries.
    Status inject_errors(std::size_t packets, SimTime* t, double rate);

    /// Max of the configured error rate and the injected per-link rates on
    /// `path` (empty path -> just the configured rate).
    [[nodiscard]] double route_error_rate(const RoutePath& path) const;

    /// Block `self` until any injected adapter stall has elapsed.
    void wait_if_stalled(sim::Process& self);

    int node_;
    Fabric& fabric_;
    sim::Dispatcher& dispatcher_;
    mem::MachineProfile host_;
    Config cfg_;
    Rng rng_;
    Stats stats_;
    SimTime stall_until_ = 0;

    std::unordered_map<int, StreamState> streams_;   // per process
    std::unordered_map<int, int> pending_stores_;    // per process, in-flight
    sim::WaitQueue barrier_waiters_;

    obs::Counter* pio_bytes_c_ = nullptr;       // PIO store bytes (write paths)
    obs::Counter* read_bytes_c_ = nullptr;      // transparent remote loads
    obs::Counter* dma_bytes_c_ = nullptr;       // DMA engine bytes
    obs::Counter* restarts_c_ = nullptr;        // stream buffer restarts
    obs::Counter* barriers_c_ = nullptr;        // store barriers issued
    obs::Counter* probes_c_ = nullptr;          // connection-monitor probes
    obs::Counter* probe_fail_c_ = nullptr;      // probes that timed out
    obs::Counter* stall_waits_c_ = nullptr;     // ops delayed by injected stalls
    check::Checker* checker_ = nullptr;         // null unless SCIMPI_CHECK
};

}  // namespace scimpi::sci
