// Timing parameters of the simulated SCI fabric and PCI-SCI adapter,
// calibrated against the paper's Figure 1 / Section 4.3 numbers for a
// Dolphin D330 adapter on a 64 bit/66 MHz PCI bus and a 166 MHz ringlet.
//
// The mechanisms these parameters feed (see sci/adapter.cpp):
//  * stream buffers  — ascending contiguous stores gather into 64 B SCI
//    transactions and move at `burst_bw`; a jump restarts the stream,
//  * write-combining — the CPU's 32 B WC buffer; partial-line flushes cost a
//    per-transaction overhead, misaligned chunks cost more (Section 4.3:
//    5-28 MiB/s at 8 B depending on stride),
//  * slow reads      — the CPU stalls per read transaction round-trip,
//  * source feed     — PIO writes are fed by local memory reads; beyond L2
//    the LE chipset's read limit caps bandwidth (Figure 1 footnote 2).
#pragma once

#include <cstddef>

#include "common/units.hpp"

namespace scimpi::sci {

struct SciParams {
    double link_mhz = 166.0;           ///< ringlet frequency; 166 -> 633 MiB/s nominal

    // PIO write path
    double burst_bw = 160.0;           ///< MiB/s established stream, full-line bursts
                                       ///< (P-III write-combining to PCI limit)
    double strided_burst_bw = 125.0;   ///< MiB/s full lines before the adapter's
                                       ///< stream buffers are re-filled after a jump
    std::size_t stream_ramp = 2_KiB;   ///< bytes written at strided_burst_bw after a
                                       ///< jump before the stream counts as established
    double uncached_bw = 80.0;         ///< MiB/s with write-combining disabled
                                       ///< (paper §4.3: "lowers bandwidth about 50%")
    double pio_src_mem_bw = 125.0;     ///< MiB/s source-feed limit when the source
                                       ///< buffer exceeds L2 (ServerSet III LE)
    SimTime txn_overhead = 150;        ///< ns per aligned partial-line transaction
    SimTime txn_misaligned = 560;      ///< ns per misaligned chunk transaction
    SimTime stream_restart = 150;      ///< ns to re-arm stream buffers after a jump
    SimTime write_latency = 1400;      ///< ns pipeline latency, first store visible
    std::size_t wc_line = 32;          ///< CPU write-combine buffer size (P-III)
    std::size_t wc_gather_min = 16;    ///< continuation stores shorter than this hit
    SimTime wc_gather_timeout = 450;   ///< ...the WC gather timeout: partial flush (ns)

    // PIO read path
    SimTime read_latency = 2900;       ///< ns CPU-stall round trip per read txn
    std::size_t read_txn_bytes = 128;  ///< read/prefetch granularity

    // Barriers, interrupts
    SimTime barrier_latency = 900;     ///< ns store-barrier flush + ack
    SimTime irq_latency = 9000;        ///< ns remote interrupt until handler runs

    // DMA engine
    SimTime dma_startup = 26000;       ///< ns descriptor setup + completion irq
    SimTime dma_desc_cost = 2500;      ///< ns per chained gather descriptor
    double dma_bw = 235.0;             ///< MiB/s DMA streaming

    // Wire accounting
    std::size_t sci_packet = 64;       ///< payload bytes per SCI transaction
    std::size_t header_bytes = 16;     ///< header + CRC per packet
    double echo_fraction = 0.18;       ///< echo/flow-control bytes per payload byte

    // Error model
    SimTime retry_penalty = 2200;      ///< ns per retried transaction
    SimTime irq_retry_timeout = 50000; ///< ns until a dropped remote interrupt is
                                       ///< noticed and the doorbell retransmitted

    [[nodiscard]] double nominal_link_bw() const {
        // 16-bit links moving 2 bytes per edge x 2 (DDR): 4 B per cycle.
        // 166 MHz -> 633 MiB/s, 200 MHz -> 762 MiB/s as in the paper.
        return link_mhz * 4e6 / 1048576.0;
    }
};

}  // namespace scimpi::sci
