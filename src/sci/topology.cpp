#include "sci/topology.hpp"

#include <algorithm>

namespace scimpi::sci {

void Topology::add_ring(const std::vector<int>& members) {
    Ring r;
    r.members = members;
    const int n = static_cast<int>(members.size());
    for (int i = 0; i < n; ++i) {
        const int link = static_cast<int>(link_from_.size());
        link_from_.push_back(members[static_cast<std::size_t>(i)]);
        link_to_.push_back(members[static_cast<std::size_t>((i + 1) % n)]);
        r.member_link.push_back(link);
    }
    // Record ring membership (dimension = index of ring list per node).
    for (int i = 0; i < n; ++i) {
        const int node = members[static_cast<std::size_t>(i)];
        for (auto& dim : node_rings_) {
            auto& ref = dim[static_cast<std::size_t>(node)];
            if (ref.ring < 0) {
                ref = {static_cast<int>(rings_.size()), i};
                goto recorded;
            }
        }
        node_rings_.emplace_back(nodes_);
        node_rings_.back()[static_cast<std::size_t>(node)] = {static_cast<int>(rings_.size()), i};
    recorded:;
    }
    rings_.push_back(std::move(r));
}

Topology Topology::ring(int nodes) {
    SCIMPI_REQUIRE(nodes >= 1, "ring needs >= 1 node");
    Topology t;
    t.nodes_ = nodes;
    std::vector<int> members(static_cast<std::size_t>(nodes));
    for (int i = 0; i < nodes; ++i) members[static_cast<std::size_t>(i)] = i;
    t.add_ring(members);
    t.precompute_routes();
    return t;
}

Topology Topology::torus2d(int w, int h) {
    SCIMPI_REQUIRE(w >= 1 && h >= 1, "torus needs positive dimensions");
    Topology t;
    t.nodes_ = w * h;
    // Horizontal ringlets (x dimension) first: routing goes x then y.
    for (int y = 0; y < h; ++y) {
        std::vector<int> row;
        row.reserve(static_cast<std::size_t>(w));
        for (int x = 0; x < w; ++x) row.push_back(y * w + x);
        t.add_ring(row);
    }
    for (int x = 0; x < w; ++x) {
        std::vector<int> col;
        col.reserve(static_cast<std::size_t>(h));
        for (int y = 0; y < h; ++y) col.push_back(y * w + x);
        t.add_ring(col);
    }
    t.precompute_routes();
    return t;
}

Topology Topology::torus3d(int w, int h, int d) {
    SCIMPI_REQUIRE(w >= 1 && h >= 1 && d >= 1, "torus needs positive dimensions");
    Topology t;
    t.nodes_ = w * h * d;
    const auto id = [w, h](int x, int y, int z) { return (z * h + y) * w + x; };
    // x ringlets first, then y, then z: the dimension-order of routing.
    for (int z = 0; z < d; ++z)
        for (int y = 0; y < h; ++y) {
            std::vector<int> ring_members;
            for (int x = 0; x < w; ++x) ring_members.push_back(id(x, y, z));
            t.add_ring(ring_members);
        }
    for (int z = 0; z < d; ++z)
        for (int x = 0; x < w; ++x) {
            std::vector<int> ring_members;
            for (int y = 0; y < h; ++y) ring_members.push_back(id(x, y, z));
            t.add_ring(ring_members);
        }
    for (int y = 0; y < h; ++y)
        for (int x = 0; x < w; ++x) {
            std::vector<int> ring_members;
            for (int z = 0; z < d; ++z) ring_members.push_back(id(x, y, z));
            t.add_ring(ring_members);
        }
    t.precompute_routes();
    return t;
}

void Topology::precompute_routes() {
    compute_table(routes_, /*reverse_dims=*/false);
    compute_table(alt_routes_, /*reverse_dims=*/true);
}

void Topology::compute_table(std::vector<std::vector<std::vector<int>>>& out_table,
                             bool reverse_dims) const {
    out_table.assign(static_cast<std::size_t>(nodes_),
                     std::vector<std::vector<int>>(static_cast<std::size_t>(nodes_)));
    std::vector<std::size_t> dim_order(node_rings_.size());
    for (std::size_t i = 0; i < dim_order.size(); ++i)
        dim_order[i] = reverse_dims ? dim_order.size() - 1 - i : i;
    for (int src = 0; src < nodes_; ++src) {
        for (int dst = 0; dst < nodes_; ++dst) {
            if (src == dst) continue;
            auto& out = out_table[static_cast<std::size_t>(src)][static_cast<std::size_t>(dst)];
            // Dimension-order routing: in each dimension, a node's position
            // on its ring *is* its coordinate along that dimension, so we
            // walk the current ring from our position to dst's coordinate.
            int cur = src;
            for (const std::size_t d : dim_order) {
                const auto& dim = node_rings_[d];
                const RingRef ref = dim[static_cast<std::size_t>(cur)];
                const RingRef dst_ref = dim[static_cast<std::size_t>(dst)];
                if (ref.ring < 0 || dst_ref.ring < 0) continue;
                const Ring& ring = rings_[static_cast<std::size_t>(ref.ring)];
                const int target_pos = dst_ref.pos;
                int pos = ref.pos;
                const int n = static_cast<int>(ring.members.size());
                while (pos != target_pos) {
                    out.push_back(ring.member_link[static_cast<std::size_t>(pos)]);
                    pos = (pos + 1) % n;
                }
                cur = ring.members[static_cast<std::size_t>(target_pos)];
                if (cur == dst) break;
            }
            SCIMPI_REQUIRE(cur == dst, "routing failed to reach destination");
        }
    }
}

const std::vector<int>& Topology::route(int src, int dst) const {
    return routes_.at(static_cast<std::size_t>(src)).at(static_cast<std::size_t>(dst));
}

const std::vector<int>& Topology::alt_route(int src, int dst) const {
    return alt_routes_.at(static_cast<std::size_t>(src)).at(static_cast<std::size_t>(dst));
}

}  // namespace scimpi::sci
