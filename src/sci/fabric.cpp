#include "sci/fabric.hpp"

#include <algorithm>
#include <string>

#include "sim/engine.hpp"

namespace scimpi::sci {

Fabric::Fabric(Topology topo, SciParams params)
    : topo_(std::move(topo)),
      params_(params),
      load_(static_cast<std::size_t>(topo_.links()), 0.0),
      up_(static_cast<std::size_t>(topo_.links()), 1),
      error_rate_(static_cast<std::size_t>(topo_.links()), 0.0),
      stats_(static_cast<std::size_t>(topo_.links())) {}

void Fabric::bind_metrics(obs::MetricsRegistry& m) {
    payload_bytes_c_ = &m.counter("fabric.payload_bytes");
    wire_bytes_c_ = &m.counter("fabric.wire_bytes");
    echo_bytes_c_ = &m.counter("fabric.echo_bytes");
    transfers_c_ = &m.counter("fabric.transfers");
    link_down_c_ = &m.counter("fabric.link_down_events");
    link_up_c_ = &m.counter("fabric.link_up_events");
    reroutes_c_ = &m.counter("fabric.reroutes");
    active_g_ = &m.gauge("fabric.concurrent_transfers");
}

namespace {
bool all_up(const std::vector<char>& up, const std::vector<int>& links) {
    for (int link : links)
        if (up[static_cast<std::size_t>(link)] == 0) return false;
    return true;
}
}  // namespace

RoutePath Fabric::resolve_route(int src, int dst) {
    RoutePath p;
    p.src = src;
    p.dst = dst;
    p.fwd = &topo_.route(src, dst);
    p.echo = &topo_.echo_route(src, dst);
    p.healthy = all_up(up_, *p.fwd);
    if (!p.healthy && reroute_enabled_) {
        const std::vector<int>& alt = topo_.alt_route(src, dst);
        if (alt != *p.fwd && all_up(up_, alt)) {
            p.fwd = &alt;
            p.echo = &topo_.alt_route(dst, src);
            p.healthy = true;
            p.rerouted = true;
            ++reroutes_;
            if (reroutes_c_ != nullptr) reroutes_c_->inc();
        }
    }
    return p;
}

bool Fabric::route_usable(int src, int dst) {
    if (route_healthy(src, dst)) return true;
    if (!reroute_enabled_) return false;
    const std::vector<int>& alt = topo_.alt_route(src, dst);
    return alt != topo_.route(src, dst) && all_up(up_, alt);
}

void Fabric::register_transfer(int src, int dst) {
    RoutePath p;
    p.src = src;
    p.dst = dst;
    p.fwd = &topo_.route(src, dst);
    p.echo = &topo_.echo_route(src, dst);
    register_transfer(p);
}

void Fabric::register_transfer(const RoutePath& path) {
    for (int link : *path.fwd) load_[static_cast<std::size_t>(link)] += 1.0;
    for (int link : *path.echo)
        load_[static_cast<std::size_t>(link)] += params_.echo_fraction;
    ++active_transfers_;
    peak_transfers_ = std::max(peak_transfers_, active_transfers_);
    if (transfers_c_ != nullptr) transfers_c_->inc();
    if (active_g_ != nullptr) active_g_->set(active_transfers_);
}

void Fabric::unregister_transfer(int src, int dst) {
    RoutePath p;
    p.src = src;
    p.dst = dst;
    p.fwd = &topo_.route(src, dst);
    p.echo = &topo_.echo_route(src, dst);
    unregister_transfer(p);
}

void Fabric::unregister_transfer(const RoutePath& path) {
    SCIMPI_REQUIRE(active_transfers_ > 0, "unregister_transfer without register");
    --active_transfers_;
    if (active_g_ != nullptr) active_g_->set(active_transfers_);
    for (int link : *path.fwd) {
        auto& a = load_[static_cast<std::size_t>(link)];
        SCIMPI_REQUIRE(a >= 1.0 - 1e-9, "unregister_transfer underflow");
        a -= 1.0;
    }
    for (int link : *path.echo) {
        auto& a = load_[static_cast<std::size_t>(link)];
        SCIMPI_REQUIRE(a >= params_.echo_fraction - 1e-9,
                       "unregister_transfer echo underflow");
        a -= params_.echo_fraction;
    }
}

double Fabric::effective_bw(int src, int dst, double src_cap) const {
    RoutePath p;
    p.fwd = &topo_.route(src, dst);
    p.echo = &topo_.echo_route(src, dst);
    return effective_bw(p, src_cap);
}

double Fabric::effective_bw(const RoutePath& path, double src_cap) const {
    double bw = src_cap;
    // Headers consume link bandwidth alongside payload.
    const double payload_eff =
        static_cast<double>(params_.sci_packet) /
        static_cast<double>(params_.sci_packet + params_.header_bytes);
    for (int link : *path.fwd) {
        const double users = std::max(1.0, load_[static_cast<std::size_t>(link)]);
        const double share = params_.nominal_link_bw() * payload_eff / users;
        bw = std::min(bw, share);
    }
    return bw;
}

void Fabric::account(int src, int dst, std::size_t payload) {
    if (src == dst || payload == 0) return;
    RoutePath p;
    p.src = src;
    p.dst = dst;
    p.fwd = &topo_.route(src, dst);
    p.echo = &topo_.echo_route(src, dst);
    account(p, payload);
}

void Fabric::account(const RoutePath& path, std::size_t payload) {
    if (path.src == path.dst || payload == 0) return;
    const std::size_t packets = (payload + params_.sci_packet - 1) / params_.sci_packet;
    const std::size_t wire = payload + packets * params_.header_bytes;
    const auto echo = static_cast<std::uint64_t>(
        static_cast<double>(payload) * params_.echo_fraction);
    for (int link : *path.fwd) {
        auto& s = stats_[static_cast<std::size_t>(link)];
        s.payload_bytes += payload;
        s.wire_bytes += wire;
        if (payload_bytes_c_ != nullptr) {
            payload_bytes_c_->add(payload);
            wire_bytes_c_->add(wire);
        }
    }
    for (int link : *path.echo) {
        stats_[static_cast<std::size_t>(link)].echo_bytes += echo;
        if (echo_bytes_c_ != nullptr) echo_bytes_c_->add(echo);
    }
}

void Fabric::trace_load(sim::Process& self, int src, int dst) {
    RoutePath p;
    p.fwd = &topo_.route(src, dst);
    p.echo = &topo_.echo_route(src, dst);
    trace_load(self, p);
}

void Fabric::trace_load(sim::Process& self, const RoutePath& path) {
    sim::Tracer& tr = self.engine().tracer();
    if (!tr.enabled()) return;
    if (link_track_names_.empty()) {
        link_track_names_.reserve(static_cast<std::size_t>(topo_.links()));
        for (int l = 0; l < topo_.links(); ++l)
            link_track_names_.push_back("link" + std::to_string(l) + ".load");
    }
    tr.counter("fabric.active_transfers", self.now(), active_transfers_);
    for (int link : *path.fwd)
        tr.counter(link_track_names_[static_cast<std::size_t>(link)], self.now(),
                   load_[static_cast<std::size_t>(link)]);
}

SimTime Fabric::timed_transfer(sim::Process& self, int src, int dst, std::size_t bytes,
                               double src_cap, std::size_t chunk) {
    if (bytes == 0) return 0;
    if (src == dst) {
        // Local move at the source cap; no fabric involvement.
        const SimTime t = transfer_time(bytes, src_cap);
        self.delay(t);
        return t;
    }
    SCIMPI_REQUIRE(chunk > 0, "timed_transfer with zero chunk");
    // Resolve the route once so a link flap mid-transfer cannot desync the
    // register/unregister pair (the in-flight data keeps its path; the
    // *next* operation picks up the new link state).
    const RoutePath path = resolve_route(src, dst);
    return timed_transfer(self, path, bytes, src_cap, chunk);
}

SimTime Fabric::timed_transfer(sim::Process& self, const RoutePath& path,
                               std::size_t bytes, double src_cap, std::size_t chunk) {
    if (bytes == 0) return 0;
    if (path.src == path.dst) {
        const SimTime t = transfer_time(bytes, src_cap);
        self.delay(t);
        return t;
    }
    SCIMPI_REQUIRE(chunk > 0, "timed_transfer with zero chunk");
    register_transfer(path);
    trace_load(self, path);
    inflight_bytes_ += bytes;
    SimTime total = 0;
    std::size_t left = bytes;
    while (left > 0) {
        const std::size_t n = std::min(left, chunk);
        const double bw = effective_bw(path, src_cap);
        const SimTime t = transfer_time(n, bw);
        self.delay(t);
        account(path, n);
        inflight_bytes_ -= n;
        total += t;
        left -= n;
    }
    unregister_transfer(path);
    trace_load(self, path);
    return total;
}

void Fabric::set_link_up(int link, bool up) {
    auto& cell = up_.at(static_cast<std::size_t>(link));
    const char want = up ? 1 : 0;
    if (cell == want) return;  // idempotent: only real state changes count
    cell = want;
    if (up) {
        ++link_up_events_;
        if (link_up_c_ != nullptr) link_up_c_->inc();
    } else {
        ++link_down_events_;
        if (link_down_c_ != nullptr) link_down_c_->inc();
    }
    if (engine_ != nullptr && engine_->tracer().enabled()) {
        const std::string mark = std::string(up ? "link_up " : "link_down ") +
                                 std::to_string(link) + " (" +
                                 std::to_string(topo_.link_from(link)) + "->" +
                                 std::to_string(topo_.link_to(link)) + ")";
        engine_->tracer().instant(0, mark, engine_->now());
    }
    if (link_listener_) link_listener_(link, up);
}

bool Fabric::route_healthy(int src, int dst) const {
    for (int link : topo_.route(src, dst))
        if (up_[static_cast<std::size_t>(link)] == 0) return false;
    return true;
}

std::string Fabric::describe_down_route(int src, int dst) const {
    for (int link : topo_.route(src, dst)) {
        if (up_[static_cast<std::size_t>(link)] == 0) {
            return "route " + std::to_string(src) + "->" + std::to_string(dst) +
                   " down at link " + std::to_string(link) + " (" +
                   std::to_string(topo_.link_from(link)) + "->" +
                   std::to_string(topo_.link_to(link)) + ")";
        }
    }
    return {};
}

void Fabric::set_link_error_rate(int link, double rate) {
    error_rate_.at(static_cast<std::size_t>(link)) = rate;
}

double Fabric::route_error_rate(const RoutePath& path) const {
    double r = 0.0;
    if (path.fwd != nullptr)
        for (int link : *path.fwd)
            r = std::max(r, error_rate_[static_cast<std::size_t>(link)]);
    return r;
}

void Fabric::reset_stats() {
    std::fill(stats_.begin(), stats_.end(), LinkStats{});
}

std::uint64_t Fabric::total_wire_bytes() const {
    std::uint64_t sum = 0;
    for (const auto& s : stats_) sum += s.total();
    return sum;
}

}  // namespace scimpi::sci
