#include "sci/fabric.hpp"

#include <algorithm>
#include <string>

#include "sim/engine.hpp"

namespace scimpi::sci {

Fabric::Fabric(Topology topo, SciParams params)
    : topo_(std::move(topo)),
      params_(params),
      load_(static_cast<std::size_t>(topo_.links()), 0.0),
      up_(static_cast<std::size_t>(topo_.links()), 1),
      stats_(static_cast<std::size_t>(topo_.links())) {}

void Fabric::bind_metrics(obs::MetricsRegistry& m) {
    payload_bytes_c_ = &m.counter("fabric.payload_bytes");
    wire_bytes_c_ = &m.counter("fabric.wire_bytes");
    echo_bytes_c_ = &m.counter("fabric.echo_bytes");
    transfers_c_ = &m.counter("fabric.transfers");
    active_g_ = &m.gauge("fabric.concurrent_transfers");
}

void Fabric::register_transfer(int src, int dst) {
    for (int link : topo_.route(src, dst)) load_[static_cast<std::size_t>(link)] += 1.0;
    for (int link : topo_.echo_route(src, dst))
        load_[static_cast<std::size_t>(link)] += params_.echo_fraction;
    ++active_transfers_;
    peak_transfers_ = std::max(peak_transfers_, active_transfers_);
    if (transfers_c_ != nullptr) transfers_c_->inc();
    if (active_g_ != nullptr) active_g_->set(active_transfers_);
}

void Fabric::unregister_transfer(int src, int dst) {
    SCIMPI_REQUIRE(active_transfers_ > 0, "unregister_transfer without register");
    --active_transfers_;
    if (active_g_ != nullptr) active_g_->set(active_transfers_);
    for (int link : topo_.route(src, dst)) {
        auto& a = load_[static_cast<std::size_t>(link)];
        SCIMPI_REQUIRE(a >= 1.0 - 1e-9, "unregister_transfer underflow");
        a -= 1.0;
    }
    for (int link : topo_.echo_route(src, dst)) {
        auto& a = load_[static_cast<std::size_t>(link)];
        SCIMPI_REQUIRE(a >= params_.echo_fraction - 1e-9,
                       "unregister_transfer echo underflow");
        a -= params_.echo_fraction;
    }
}

double Fabric::effective_bw(int src, int dst, double src_cap) const {
    double bw = src_cap;
    // Headers consume link bandwidth alongside payload.
    const double payload_eff =
        static_cast<double>(params_.sci_packet) /
        static_cast<double>(params_.sci_packet + params_.header_bytes);
    for (int link : topo_.route(src, dst)) {
        const double users = std::max(1.0, load_[static_cast<std::size_t>(link)]);
        const double share = params_.nominal_link_bw() * payload_eff / users;
        bw = std::min(bw, share);
    }
    return bw;
}

void Fabric::account(int src, int dst, std::size_t payload) {
    if (src == dst || payload == 0) return;
    const std::size_t packets = (payload + params_.sci_packet - 1) / params_.sci_packet;
    const std::size_t wire = payload + packets * params_.header_bytes;
    const auto echo = static_cast<std::uint64_t>(
        static_cast<double>(payload) * params_.echo_fraction);
    for (int link : topo_.route(src, dst)) {
        auto& s = stats_[static_cast<std::size_t>(link)];
        s.payload_bytes += payload;
        s.wire_bytes += wire;
        if (payload_bytes_c_ != nullptr) {
            payload_bytes_c_->add(payload);
            wire_bytes_c_->add(wire);
        }
    }
    for (int link : topo_.echo_route(src, dst)) {
        stats_[static_cast<std::size_t>(link)].echo_bytes += echo;
        if (echo_bytes_c_ != nullptr) echo_bytes_c_->add(echo);
    }
}

void Fabric::trace_load(sim::Process& self, int src, int dst) {
    sim::Tracer& tr = self.engine().tracer();
    if (!tr.enabled()) return;
    if (link_track_names_.empty()) {
        link_track_names_.reserve(static_cast<std::size_t>(topo_.links()));
        for (int l = 0; l < topo_.links(); ++l)
            link_track_names_.push_back("link" + std::to_string(l) + ".load");
    }
    tr.counter("fabric.active_transfers", self.now(), active_transfers_);
    for (int link : topo_.route(src, dst))
        tr.counter(link_track_names_[static_cast<std::size_t>(link)], self.now(),
                   load_[static_cast<std::size_t>(link)]);
}

SimTime Fabric::timed_transfer(sim::Process& self, int src, int dst, std::size_t bytes,
                               double src_cap, std::size_t chunk) {
    if (bytes == 0) return 0;
    if (src == dst) {
        // Local move at the source cap; no fabric involvement.
        const SimTime t = transfer_time(bytes, src_cap);
        self.delay(t);
        return t;
    }
    SCIMPI_REQUIRE(chunk > 0, "timed_transfer with zero chunk");
    register_transfer(src, dst);
    trace_load(self, src, dst);
    SimTime total = 0;
    std::size_t left = bytes;
    while (left > 0) {
        const std::size_t n = std::min(left, chunk);
        const double bw = effective_bw(src, dst, src_cap);
        const SimTime t = transfer_time(n, bw);
        self.delay(t);
        account(src, dst, n);
        total += t;
        left -= n;
    }
    unregister_transfer(src, dst);
    trace_load(self, src, dst);
    return total;
}

void Fabric::set_link_up(int link, bool up) {
    up_.at(static_cast<std::size_t>(link)) = up ? 1 : 0;
}

bool Fabric::route_healthy(int src, int dst) const {
    for (int link : topo_.route(src, dst))
        if (up_[static_cast<std::size_t>(link)] == 0) return false;
    return true;
}

void Fabric::reset_stats() {
    std::fill(stats_.begin(), stats_.end(), LinkStats{});
}

std::uint64_t Fabric::total_wire_bytes() const {
    std::uint64_t sum = 0;
    for (const auto& s : stats_) sum += s.total();
    return sum;
}

}  // namespace scimpi::sci
