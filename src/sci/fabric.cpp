#include "sci/fabric.hpp"

#include <algorithm>

namespace scimpi::sci {

Fabric::Fabric(Topology topo, SciParams params)
    : topo_(std::move(topo)),
      params_(params),
      load_(static_cast<std::size_t>(topo_.links()), 0.0),
      up_(static_cast<std::size_t>(topo_.links()), 1),
      stats_(static_cast<std::size_t>(topo_.links())) {}

void Fabric::register_transfer(int src, int dst) {
    for (int link : topo_.route(src, dst)) load_[static_cast<std::size_t>(link)] += 1.0;
    for (int link : topo_.echo_route(src, dst))
        load_[static_cast<std::size_t>(link)] += params_.echo_fraction;
}

void Fabric::unregister_transfer(int src, int dst) {
    for (int link : topo_.route(src, dst)) {
        auto& a = load_[static_cast<std::size_t>(link)];
        SCIMPI_REQUIRE(a >= 1.0 - 1e-9, "unregister_transfer underflow");
        a -= 1.0;
    }
    for (int link : topo_.echo_route(src, dst)) {
        auto& a = load_[static_cast<std::size_t>(link)];
        SCIMPI_REQUIRE(a >= params_.echo_fraction - 1e-9,
                       "unregister_transfer echo underflow");
        a -= params_.echo_fraction;
    }
}

double Fabric::effective_bw(int src, int dst, double src_cap) const {
    double bw = src_cap;
    // Headers consume link bandwidth alongside payload.
    const double payload_eff =
        static_cast<double>(params_.sci_packet) /
        static_cast<double>(params_.sci_packet + params_.header_bytes);
    for (int link : topo_.route(src, dst)) {
        const double users = std::max(1.0, load_[static_cast<std::size_t>(link)]);
        const double share = params_.nominal_link_bw() * payload_eff / users;
        bw = std::min(bw, share);
    }
    return bw;
}

void Fabric::account(int src, int dst, std::size_t payload) {
    if (src == dst || payload == 0) return;
    const std::size_t packets = (payload + params_.sci_packet - 1) / params_.sci_packet;
    const std::size_t wire = payload + packets * params_.header_bytes;
    const auto echo = static_cast<std::uint64_t>(
        static_cast<double>(payload) * params_.echo_fraction);
    for (int link : topo_.route(src, dst)) {
        auto& s = stats_[static_cast<std::size_t>(link)];
        s.payload_bytes += payload;
        s.wire_bytes += wire;
    }
    for (int link : topo_.echo_route(src, dst))
        stats_[static_cast<std::size_t>(link)].echo_bytes += echo;
}

SimTime Fabric::timed_transfer(sim::Process& self, int src, int dst, std::size_t bytes,
                               double src_cap, std::size_t chunk) {
    if (bytes == 0) return 0;
    if (src == dst) {
        // Local move at the source cap; no fabric involvement.
        const SimTime t = transfer_time(bytes, src_cap);
        self.delay(t);
        return t;
    }
    SCIMPI_REQUIRE(chunk > 0, "timed_transfer with zero chunk");
    register_transfer(src, dst);
    SimTime total = 0;
    std::size_t left = bytes;
    while (left > 0) {
        const std::size_t n = std::min(left, chunk);
        const double bw = effective_bw(src, dst, src_cap);
        const SimTime t = transfer_time(n, bw);
        self.delay(t);
        account(src, dst, n);
        total += t;
        left -= n;
    }
    unregister_transfer(src, dst);
    return total;
}

void Fabric::set_link_up(int link, bool up) {
    up_.at(static_cast<std::size_t>(link)) = up ? 1 : 0;
}

bool Fabric::route_healthy(int src, int dst) const {
    for (int link : topo_.route(src, dst))
        if (up_[static_cast<std::size_t>(link)] == 0) return false;
    return true;
}

void Fabric::reset_stats() {
    std::fill(stats_.begin(), stats_.end(), LinkStats{});
}

std::uint64_t Fabric::total_wire_bytes() const {
    std::uint64_t sum = 0;
    for (const auto& s : stats_) sum += s.total();
    return sum;
}

}  // namespace scimpi::sci
