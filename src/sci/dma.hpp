// Asynchronous DMA engine: a daemon process per adapter that consumes
// transfer descriptors from a mailbox, letting the CPU overlap computation
// with bulk transfers (the adapter's dma_write/dma_read are the synchronous
// equivalents). Descriptors on one engine execute in FIFO order, as on the
// real PCI-SCI card.
#pragma once

#include <memory>

#include "sci/adapter.hpp"
#include "sim/sync.hpp"

namespace scimpi::sci {

class DmaEngine {
public:
    DmaEngine(sim::Engine& engine, SciAdapter& adapter);

    struct Transfer {
        std::shared_ptr<sim::Event> done = std::make_shared<sim::Event>();
        Status result;  // valid once done is set

        void wait(sim::Process& self) { done->wait(self); }
    };
    using Handle = std::shared_ptr<Transfer>;

    /// Queue an asynchronous remote write. The descriptor setup cost is
    /// charged to the caller; streaming happens on the engine process.
    Handle post_write(sim::Process& self, const SciMapping& map, std::size_t off,
                      const void* src, std::size_t len);
    Handle post_read(sim::Process& self, const SciMapping& map, std::size_t off,
                     void* dst, std::size_t len);

    [[nodiscard]] std::size_t queued() const { return queue_.size(); }

private:
    struct Descriptor {
        bool is_write = true;
        SciMapping map;
        std::size_t off = 0;
        const void* src = nullptr;
        void* dst = nullptr;
        std::size_t len = 0;
        Handle handle;
    };

    void engine_loop(sim::Process& self);

    SciAdapter& adapter_;
    sim::Mailbox<Descriptor> queue_;
};

}  // namespace scimpi::sci
