// SCI network topologies: unidirectional ringlets and 2D tori of ringlets.
// Links are unidirectional point-to-point segments (node i -> node i+1 on a
// ring). Routing is along the ring; on a torus, dimension-order (x then y).
#pragma once

#include <vector>

#include "common/status.hpp"

namespace scimpi::sci {

class Topology {
public:
    /// Single unidirectional ringlet of `nodes` nodes. Link i: i -> (i+1)%n.
    static Topology ring(int nodes);

    /// 2D torus of ringlets: `w` x `h` nodes, a horizontal ringlet per row
    /// and a vertical ringlet per column. Node id = y*w + x.
    static Topology torus2d(int w, int h);

    /// 3D torus of ringlets (the paper's Section 5.3 scaling proposal:
    /// "a 512 nodes system when using 3D-torus topology").
    /// Node id = (z*h + y)*w + x; dimension-order routing x, then y, then z.
    static Topology torus3d(int w, int h, int d);

    [[nodiscard]] int nodes() const { return nodes_; }
    [[nodiscard]] int links() const { return static_cast<int>(link_from_.size()); }

    /// Link endpoints.
    [[nodiscard]] int link_from(int link) const { return link_from_.at(static_cast<std::size_t>(link)); }
    [[nodiscard]] int link_to(int link) const { return link_to_.at(static_cast<std::size_t>(link)); }

    /// Links traversed by a request travelling src -> dst (empty if equal).
    [[nodiscard]] const std::vector<int>& route(int src, int dst) const;

    /// Alternate route using the reversed dimension order (y before x on a
    /// 2D torus). On a single ringlet there is no alternative, so this
    /// equals route(). Used to steer around a down link (degraded mode).
    [[nodiscard]] const std::vector<int>& alt_route(int src, int dst) const;

    /// Links traversed by the echo/response on its way back (dst -> src,
    /// continuing around the ring(s)).
    [[nodiscard]] const std::vector<int>& echo_route(int src, int dst) const {
        return route(dst, src);
    }

    [[nodiscard]] int hops(int src, int dst) const {
        return static_cast<int>(route(src, dst).size());
    }

private:
    Topology() = default;
    void add_ring(const std::vector<int>& members);
    void precompute_routes();
    void compute_table(std::vector<std::vector<std::vector<int>>>& out,
                       bool reverse_dims) const;

    int nodes_ = 0;
    std::vector<int> link_from_, link_to_;
    // ring_of_node_[dim][node] -> (ring index, position) used for routing
    struct RingRef {
        int ring = -1;
        int pos = -1;
    };
    struct Ring {
        std::vector<int> members;      // node ids in ring order
        std::vector<int> member_link;  // link id leaving members[i]
    };
    std::vector<Ring> rings_;
    std::vector<std::vector<RingRef>> node_rings_;  // per dimension
    std::vector<std::vector<std::vector<int>>> routes_;      // [src][dst] -> links
    std::vector<std::vector<std::vector<int>>> alt_routes_;  // reversed dim order
};

}  // namespace scimpi::sci
