// The SCI fabric: links with quasi-static bandwidth sharing and wire-level
// traffic accounting. Bulk transfers register on their route, move in chunks,
// and see an effective bandwidth of min over traversed links of
// nominal/active_transfers — reproducing the ring-saturation behaviour of
// the paper's Table 2.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "common/units.hpp"
#include "obs/metrics.hpp"
#include "sci/params.hpp"
#include "sci/topology.hpp"
#include "sim/process.hpp"

namespace scimpi::sim {
class Engine;
}

namespace scimpi::sci {

struct LinkStats {
    std::uint64_t payload_bytes = 0;  ///< user data moved over this link
    std::uint64_t wire_bytes = 0;     ///< payload + packet headers
    std::uint64_t echo_bytes = 0;     ///< echo / flow-control traffic
    std::uint64_t total() const { return wire_bytes + echo_bytes; }
};

/// A route resolved once for the lifetime of one transfer, so register /
/// account / unregister stay consistent even if links flap mid-operation.
/// `rerouted` marks the degraded-mode alternate (reversed dimension order)
/// chosen because the primary crosses a down link.
struct RoutePath {
    int src = -1;
    int dst = -1;
    const std::vector<int>* fwd = nullptr;   ///< forward data links
    const std::vector<int>* echo = nullptr;  ///< echo/flow-control links
    bool healthy = false;                    ///< every forward link is up
    bool rerouted = false;                   ///< alternate dimension order in use
};

class Fabric {
public:
    Fabric(Topology topo, SciParams params);

    [[nodiscard]] const Topology& topology() const { return topo_; }
    [[nodiscard]] const SciParams& params() const { return params_; }
    SciParams& params() { return params_; }

    /// Resolve the route to use for a transfer src -> dst right now: the
    /// primary dimension-order route when healthy, else (reroute enabled and
    /// it helps) the alternate reversed-dimension-order route. The result
    /// stays valid for the fabric's lifetime; hold it across one operation.
    [[nodiscard]] RoutePath resolve_route(int src, int dst);

    /// Register/unregister an active bulk transfer on the route src -> dst.
    /// Data packets load the forward route with weight 1; the echo/flow
    /// control stream loads the remaining ring links with echo_fraction.
    void register_transfer(int src, int dst);
    void unregister_transfer(int src, int dst);
    void register_transfer(const RoutePath& path);
    void unregister_transfer(const RoutePath& path);

    /// Current effective bandwidth (MiB/s) for a transfer src -> dst whose
    /// source side can push at most `src_cap` MiB/s. A transfer must be
    /// registered while it measures itself (it counts as one active user).
    [[nodiscard]] double effective_bw(int src, int dst, double src_cap) const;
    [[nodiscard]] double effective_bw(const RoutePath& path, double src_cap) const;

    /// Account wire traffic for `payload` bytes moved src -> dst: data
    /// packets on the forward route, echoes returning the rest of the way
    /// around the ring.
    void account(int src, int dst, std::size_t payload);
    void account(const RoutePath& path, std::size_t payload);

    /// Move `bytes` src -> dst in `chunk`-sized steps, charging simulated
    /// time on `self` and re-evaluating contention each chunk. Registers and
    /// unregisters the transfer internally. Returns total time charged.
    SimTime timed_transfer(sim::Process& self, int src, int dst, std::size_t bytes,
                           double src_cap, std::size_t chunk = 16_KiB);
    /// Variant for callers that already resolved (and health-checked) the
    /// route — avoids double-counting fabric.reroutes.
    SimTime timed_transfer(sim::Process& self, const RoutePath& path, std::size_t bytes,
                           double src_cap, std::size_t chunk = 16_KiB);

    /// Attach a metrics registry: aggregate payload/wire/echo byte counters
    /// plus a concurrent-transfer gauge then update live with account() /
    /// register_transfer().
    void bind_metrics(obs::MetricsRegistry& m);

    [[nodiscard]] const LinkStats& link_stats(int link) const {
        return stats_.at(static_cast<std::size_t>(link));
    }
    [[nodiscard]] double load_on_link(int link) const {
        return load_.at(static_cast<std::size_t>(link));
    }
    void reset_stats();

    /// Connection monitoring: mark a link (un)usable — a pulled cable. Any
    /// transfer whose route crosses a down link fails with link_failure
    /// (unless the alternate dimension order routes around it). Idempotent;
    /// real state changes bump fabric.link_down/up_events, emit a trace
    /// instant, and fire the link listener.
    void set_link_up(int link, bool up);
    [[nodiscard]] bool link_up(int link) const {
        return up_.at(static_cast<std::size_t>(link));
    }
    /// True if every link on the route src -> dst is up.
    [[nodiscard]] bool route_healthy(int src, int dst) const;
    /// True if the route src -> dst resolves to a usable path (considers
    /// the alternate dimension order when rerouting is enabled).
    [[nodiscard]] bool route_usable(int src, int dst);

    /// Human-readable diagnosis of why src -> dst is unusable: names the
    /// first down link and its endpoints, e.g.
    /// "route 0->2 down at link 1 (1->2)". Empty if the route is healthy.
    [[nodiscard]] std::string describe_down_route(int src, int dst) const;

    /// Enable/disable degraded-mode routing via the alternate dimension
    /// order (Config::torus_reroute). On a plain ring there is no
    /// alternative, so this has no effect there.
    void set_reroute(bool on) { reroute_enabled_ = on; }
    [[nodiscard]] bool reroute_enabled() const { return reroute_enabled_; }
    [[nodiscard]] std::uint64_t reroutes() const { return reroutes_; }

    /// Per-link injected CRC error rate (fault windows). The adapter takes
    /// max(Config::link_error_rate, max over the links of its route).
    void set_link_error_rate(int link, double rate);
    [[nodiscard]] double link_error_rate(int link) const {
        return error_rate_.at(static_cast<std::size_t>(link));
    }
    /// Max injected error rate over the forward links of `path`.
    [[nodiscard]] double route_error_rate(const RoutePath& path) const;

    /// Called on every real link state change with (link, up). Used by the
    /// connection monitor to wake its sweep.
    void set_link_listener(std::function<void(int, bool)> fn) {
        link_listener_ = std::move(fn);
    }

    /// Bind the engine so state changes made from outside any sim process
    /// (e.g. the fault controller) can still emit trace instants.
    void bind_engine(sim::Engine* eng) { engine_ = eng; }

    [[nodiscard]] std::uint64_t link_down_events() const { return link_down_events_; }
    [[nodiscard]] std::uint64_t link_up_events() const { return link_up_events_; }

    /// Aggregate wire traffic over all links (for ring-load metrics).
    [[nodiscard]] std::uint64_t total_wire_bytes() const;

    /// Transfers currently registered / the peak seen so far (always
    /// tracked; independent of any bound registry).
    [[nodiscard]] int active_transfers() const { return active_transfers_; }
    [[nodiscard]] int peak_concurrent_transfers() const { return peak_transfers_; }

    /// Bytes accepted by timed_transfer() but not yet moved over the wire —
    /// the fabric's instantaneous backlog (flight-recorder probe).
    [[nodiscard]] std::uint64_t inflight_bytes() const { return inflight_bytes_; }

    /// Emit per-link load + active-transfer counter tracks to the tracer of
    /// `self`'s engine (no-op while tracing is disabled). Called after each
    /// register/unregister by the paths that hold a Process.
    void trace_load(sim::Process& self, int src, int dst);
    void trace_load(sim::Process& self, const RoutePath& path);

private:
    Topology topo_;
    SciParams params_;
    std::vector<double> load_;
    std::vector<char> up_;
    std::vector<double> error_rate_;
    std::vector<LinkStats> stats_;
    int active_transfers_ = 0;
    int peak_transfers_ = 0;
    std::uint64_t inflight_bytes_ = 0;
    bool reroute_enabled_ = true;
    std::uint64_t reroutes_ = 0;
    std::uint64_t link_down_events_ = 0;
    std::uint64_t link_up_events_ = 0;
    std::vector<std::string> link_track_names_;  // lazily built "linkN.load"
    std::function<void(int, bool)> link_listener_;
    sim::Engine* engine_ = nullptr;
    obs::Counter* payload_bytes_c_ = nullptr;
    obs::Counter* wire_bytes_c_ = nullptr;
    obs::Counter* echo_bytes_c_ = nullptr;
    obs::Counter* transfers_c_ = nullptr;
    obs::Counter* link_down_c_ = nullptr;
    obs::Counter* link_up_c_ = nullptr;
    obs::Counter* reroutes_c_ = nullptr;
    obs::Gauge* active_g_ = nullptr;
};

}  // namespace scimpi::sci
