// The SCI fabric: links with quasi-static bandwidth sharing and wire-level
// traffic accounting. Bulk transfers register on their route, move in chunks,
// and see an effective bandwidth of min over traversed links of
// nominal/active_transfers — reproducing the ring-saturation behaviour of
// the paper's Table 2.
#pragma once

#include <cstdint>
#include <vector>

#include "common/units.hpp"
#include "obs/metrics.hpp"
#include "sci/params.hpp"
#include "sci/topology.hpp"
#include "sim/process.hpp"

namespace scimpi::sci {

struct LinkStats {
    std::uint64_t payload_bytes = 0;  ///< user data moved over this link
    std::uint64_t wire_bytes = 0;     ///< payload + packet headers
    std::uint64_t echo_bytes = 0;     ///< echo / flow-control traffic
    std::uint64_t total() const { return wire_bytes + echo_bytes; }
};

class Fabric {
public:
    Fabric(Topology topo, SciParams params);

    [[nodiscard]] const Topology& topology() const { return topo_; }
    [[nodiscard]] const SciParams& params() const { return params_; }
    SciParams& params() { return params_; }

    /// Register/unregister an active bulk transfer on the route src -> dst.
    /// Data packets load the forward route with weight 1; the echo/flow
    /// control stream loads the remaining ring links with echo_fraction.
    void register_transfer(int src, int dst);
    void unregister_transfer(int src, int dst);

    /// Current effective bandwidth (MiB/s) for a transfer src -> dst whose
    /// source side can push at most `src_cap` MiB/s. A transfer must be
    /// registered while it measures itself (it counts as one active user).
    [[nodiscard]] double effective_bw(int src, int dst, double src_cap) const;

    /// Account wire traffic for `payload` bytes moved src -> dst: data
    /// packets on the forward route, echoes returning the rest of the way
    /// around the ring.
    void account(int src, int dst, std::size_t payload);

    /// Move `bytes` src -> dst in `chunk`-sized steps, charging simulated
    /// time on `self` and re-evaluating contention each chunk. Registers and
    /// unregisters the transfer internally. Returns total time charged.
    SimTime timed_transfer(sim::Process& self, int src, int dst, std::size_t bytes,
                           double src_cap, std::size_t chunk = 16_KiB);

    /// Attach a metrics registry: aggregate payload/wire/echo byte counters
    /// plus a concurrent-transfer gauge then update live with account() /
    /// register_transfer().
    void bind_metrics(obs::MetricsRegistry& m);

    [[nodiscard]] const LinkStats& link_stats(int link) const {
        return stats_.at(static_cast<std::size_t>(link));
    }
    [[nodiscard]] double load_on_link(int link) const {
        return load_.at(static_cast<std::size_t>(link));
    }
    void reset_stats();

    /// Connection monitoring: mark a link (un)usable — a pulled cable. Any
    /// transfer whose route crosses a down link fails with link_failure.
    void set_link_up(int link, bool up);
    [[nodiscard]] bool link_up(int link) const {
        return up_.at(static_cast<std::size_t>(link));
    }
    /// True if every link on the route src -> dst is up.
    [[nodiscard]] bool route_healthy(int src, int dst) const;

    /// Aggregate wire traffic over all links (for ring-load metrics).
    [[nodiscard]] std::uint64_t total_wire_bytes() const;

    /// Transfers currently registered / the peak seen so far (always
    /// tracked; independent of any bound registry).
    [[nodiscard]] int active_transfers() const { return active_transfers_; }
    [[nodiscard]] int peak_concurrent_transfers() const { return peak_transfers_; }

    /// Emit per-link load + active-transfer counter tracks to the tracer of
    /// `self`'s engine (no-op while tracing is disabled). Called after each
    /// register/unregister by the paths that hold a Process.
    void trace_load(sim::Process& self, int src, int dst);

private:
    Topology topo_;
    SciParams params_;
    std::vector<double> load_;
    std::vector<char> up_;
    std::vector<LinkStats> stats_;
    int active_transfers_ = 0;
    int peak_transfers_ = 0;
    std::vector<std::string> link_track_names_;  // lazily built "linkN.load"
    obs::Counter* payload_bytes_c_ = nullptr;
    obs::Counter* wire_bytes_c_ = nullptr;
    obs::Counter* echo_bytes_c_ = nullptr;
    obs::Counter* transfers_c_ = nullptr;
    obs::Gauge* active_g_ = nullptr;
};

}  // namespace scimpi::sci
