// SCI shared-memory segments. A target node exports a region of its memory
// arena under a segment id; an origin node imports it, obtaining a mapping
// through which the CPU can issue transparent remote loads and stores.
// Since the simulated cluster shares one host address space, the mapping
// carries a direct span onto the target's memory — the adapter charges the
// modelled time for every access through it.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <span>
#include <utility>

#include "common/status.hpp"

namespace scimpi::check {
class Checker;
}

namespace scimpi::sci {

struct SegmentId {
    int node = -1;   ///< exporting node
    int id = -1;     ///< per-node segment number
    auto operator<=>(const SegmentId&) const = default;
};

/// An imported segment as seen from an origin node.
struct SciMapping {
    SegmentId seg;
    int origin_node = -1;
    int target_node = -1;
    std::span<std::byte> mem;

    [[nodiscard]] bool remote() const { return origin_node != target_node; }
    [[nodiscard]] std::size_t size() const { return mem.size(); }
};

/// Cluster-global segment name service (the role of the SCI driver's
/// segment tables; purely bookkeeping, no timing).
class SegmentDirectory {
public:
    /// Export `mem` (a region of node `node`'s arena) as a new segment.
    SegmentId create(int node, std::span<std::byte> mem);

    /// Withdraw a segment. Existing mappings become invalid.
    Status destroy(SegmentId seg);

    /// Import a segment into `origin_node`'s address space.
    Result<SciMapping> import(int origin_node, SegmentId seg);

    [[nodiscard]] std::size_t segment_count() const { return segments_.size(); }

    /// Find the exported segment of `node` containing [p, p+len), with the
    /// byte offset of `p` within it. Used by scimpi-check to attribute
    /// request buffers that live inside watched segments.
    [[nodiscard]] std::optional<std::pair<SegmentId, std::uint64_t>> locate(
        int node, const void* p, std::size_t len) const;

    /// Attach the scimpi-check checker (may be null): destroy() then drops
    /// any segment watch so stale accesses are not misattributed.
    void bind_checker(check::Checker* ck) { checker_ = ck; }

private:
    std::map<SegmentId, std::span<std::byte>> segments_;
    int next_id_ = 1;
    check::Checker* checker_ = nullptr;
};

}  // namespace scimpi::sci
