#include "sci/segment.hpp"

#include "check/checker.hpp"

namespace scimpi::sci {

SegmentId SegmentDirectory::create(int node, std::span<std::byte> mem) {
    SCIMPI_REQUIRE(!mem.empty(), "cannot export empty segment");
    const SegmentId seg{node, next_id_++};
    segments_.emplace(seg, mem);
    return seg;
}

Status SegmentDirectory::destroy(SegmentId seg) {
    if (segments_.erase(seg) == 0)
        return Status::error(Errc::not_found, "segment not exported");
    if (checker_ != nullptr) checker_->on_segment_destroyed(seg.node, seg.id);
    return Status::ok();
}

std::optional<std::pair<SegmentId, std::uint64_t>> SegmentDirectory::locate(
    int node, const void* p, std::size_t len) const {
    const auto* b = static_cast<const std::byte*>(p);
    for (const auto& [seg, mem] : segments_) {
        if (seg.node != node) continue;
        if (b >= mem.data() && b + len <= mem.data() + mem.size())
            return std::make_pair(seg, static_cast<std::uint64_t>(b - mem.data()));
    }
    return std::nullopt;
}

Result<SciMapping> SegmentDirectory::import(int origin_node, SegmentId seg) {
    const auto it = segments_.find(seg);
    if (it == segments_.end())
        return Status::error(Errc::not_found, "segment not exported");
    SciMapping m;
    m.seg = seg;
    m.origin_node = origin_node;
    m.target_node = seg.node;
    m.mem = it->second;
    return m;
}

}  // namespace scimpi::sci
