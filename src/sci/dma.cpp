#include "sci/dma.hpp"

#include <string>

#include "sim/trace.hpp"

namespace scimpi::sci {

DmaEngine::DmaEngine(sim::Engine& engine, SciAdapter& adapter) : adapter_(adapter) {
    engine.spawn_daemon(std::string("dma-node") + std::to_string(adapter.node()),
                        [this](sim::Process& self) { engine_loop(self); });
}

DmaEngine::Handle DmaEngine::post_write(sim::Process& self, const SciMapping& map,
                                        std::size_t off, const void* src,
                                        std::size_t len) {
    // Descriptor setup is CPU work; the streaming itself is not.
    self.delay(adapter_.fabric().params().dma_startup / 4);
    Descriptor d;
    d.is_write = true;
    d.map = map;
    d.off = off;
    d.src = src;
    d.len = len;
    d.handle = std::make_shared<Transfer>();
    Handle h = d.handle;
    queue_.send(std::move(d));
    return h;
}

DmaEngine::Handle DmaEngine::post_read(sim::Process& self, const SciMapping& map,
                                       std::size_t off, void* dst, std::size_t len) {
    self.delay(adapter_.fabric().params().dma_startup / 4);
    Descriptor d;
    d.is_write = false;
    d.map = map;
    d.off = off;
    d.dst = dst;
    d.len = len;
    d.handle = std::make_shared<Transfer>();
    Handle h = d.handle;
    queue_.send(std::move(d));
    return h;
}

void DmaEngine::engine_loop(sim::Process& self) {
    for (;;) {
        Descriptor d = queue_.recv(self);
        const sim::TraceScope trace(self, d.is_write ? "dma:write" : "dma:read",
                                    "sci", d.len);
        if (d.is_write) {
            d.handle->result = adapter_.dma_write(self, d.map, d.off, d.src, d.len);
        } else {
            d.handle->result = adapter_.dma_read(self, d.map, d.off, d.dst, d.len);
        }
        d.handle->done->set();
    }
}

}  // namespace scimpi::sci
