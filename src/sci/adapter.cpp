#include "sci/adapter.hpp"

#include <algorithm>
#include <cstring>

#include "check/checker.hpp"
#include "mem/copy_model.hpp"

namespace scimpi::sci {

namespace {
constexpr std::size_t round_up(std::size_t v, std::size_t a) { return (v + a - 1) / a * a; }
constexpr std::size_t round_down(std::size_t v, std::size_t a) { return v / a * a; }
}  // namespace

SciAdapter::SciAdapter(int node, Fabric& fabric, sim::Dispatcher& dispatcher,
                       mem::MachineProfile host, Config cfg)
    : node_(node),
      fabric_(fabric),
      dispatcher_(dispatcher),
      host_(std::move(host)),
      cfg_(cfg),
      rng_(cfg.seed * 0x51ed2701u + static_cast<std::uint64_t>(node) + 1) {}

void SciAdapter::bind_metrics(obs::MetricsRegistry& m) {
    pio_bytes_c_ = &m.counter("sci.pio_bytes");
    read_bytes_c_ = &m.counter("sci.read_bytes");
    dma_bytes_c_ = &m.counter("sci.dma_bytes");
    restarts_c_ = &m.counter("sci.stream_restarts");
    barriers_c_ = &m.counter("sci.store_barriers");
    probes_c_ = &m.counter("sci.probes");
    probe_fail_c_ = &m.counter("sci.probe_failures");
    stall_waits_c_ = &m.counter("sci.adapter_stall_waits");
}

void SciAdapter::wait_if_stalled(sim::Process& self) {
    if (self.now() >= stall_until_) return;
    ++stats_.stall_waits;
    if (stall_waits_c_ != nullptr) stall_waits_c_->inc();
    // The stall may be extended while we wait, so loop until clear.
    while (self.now() < stall_until_) self.delay(stall_until_ - self.now());
}

double SciAdapter::route_error_rate(const RoutePath& path) const {
    return std::max(cfg_.link_error_rate, fabric_.route_error_rate(path));
}

SimTime SciAdapter::partial_segment_cost(std::size_t off, std::size_t len) {
    const SciParams& p = fabric_.params();
    SimTime t = transfer_time(len, p.burst_bw);
    // Greedy naturally-aligned power-of-two decomposition, as the PCI bridge
    // splits a partial write-combine flush into individual transactions.
    std::size_t pos = off;
    std::size_t left = len;
    while (left > 0) {
        std::size_t chunk = p.wc_line;
        while (chunk > left || (pos % chunk) != 0) chunk /= 2;
        if (chunk >= 8) {
            t += p.txn_overhead;
        } else {
            t += p.txn_misaligned;
            ++stats_.misaligned_txns;
        }
        pos += chunk;
        left -= chunk;
    }
    ++stats_.partial_flushes;
    return t;
}

SimTime SciAdapter::wc_write_time(int pid, const SciMapping& map, std::size_t off,
                                  std::size_t len) {
    const SciParams& p = fabric_.params();
    StreamState& st = streams_[pid];

    if (!cfg_.write_combine) {
        // Every store goes out individually; insensitive to stride but slow.
        st.valid = false;
        return transfer_time(len, p.uncached_bw);
    }

    const bool continuation = st.valid && st.seg == map.seg && st.next_off == off;
    if (continuation) {
        st.next_off = off + len;
        if (len < p.wc_gather_min) {
            // The source-side pause between tiny blocks lets the WC buffer
            // time out and flush partially.
            ++stats_.gather_timeouts;
            return p.wc_gather_timeout + transfer_time(len, p.burst_bw);
        }
        return transfer_time(len, p.burst_bw);
    }

    // Jump: the WC buffer's previous content was already charged as its own
    // transmission when it was written; only the stream re-arm costs extra.
    SimTime t = 0;
    if (cfg_.stream_buffers) t += p.stream_restart;
    ++stats_.stream_restarts;
    if (restarts_c_ != nullptr) restarts_c_->inc();

    const std::size_t line = p.wc_line;
    const std::size_t head_end = std::min(round_up(off, line), off + len);
    const std::size_t full_end = std::max(round_down(off + len, line), head_end);
    const std::size_t head = head_end - off;
    const std::size_t full = full_end - head_end;
    const std::size_t tail = off + len - full_end;

    if (head > 0) t += partial_segment_cost(off, head);
    if (tail > 0) t += partial_segment_cost(full_end, tail);
    if (full > 0) {
        if (cfg_.stream_buffers) {
            const std::size_t ramp = std::min(full, p.stream_ramp);
            t += transfer_time(ramp, p.strided_burst_bw);
            t += transfer_time(full - ramp, p.burst_bw);
        } else {
            // Without gathering, every line is its own SCI transaction.
            t += static_cast<SimTime>(full / line) * p.txn_overhead;
            t += transfer_time(full, p.burst_bw);
        }
    }

    st.valid = true;
    st.seg = map.seg;
    st.next_off = off + len;
    return t;
}

Status SciAdapter::inject_errors(std::size_t packets, SimTime* t, double rate) {
    if (rate <= 0.0 || packets == 0) return Status::ok();
    const SciParams& p = fabric_.params();
    for (std::size_t i = 0; i < packets; ++i) {
        int attempts = 0;
        while (rng_.chance(rate)) {
            ++attempts;
            ++stats_.retries;
            *t += p.retry_penalty;
            if (attempts >= cfg_.max_retries)
                return Status::error(Errc::link_failure,
                                     "transaction exceeded retry budget (node " +
                                         std::to_string(node_) + ")");
        }
    }
    return Status::ok();
}

Status SciAdapter::write(sim::Process& self, const SciMapping& map, std::size_t off,
                         const void* src, std::size_t len, std::size_t src_traffic) {
    SCIMPI_REQUIRE(off + len <= map.size(), "remote write out of segment bounds");
    if (len == 0) return Status::ok();
    if (checker_ != nullptr)
        checker_->on_segment_access(map.seg.node, map.seg.id, self.id(), off, len,
                                    /*is_store=*/true, self.now());
    wait_if_stalled(self);
    RoutePath path;
    if (map.remote()) {
        path = fabric_.resolve_route(node_, map.target_node);
        if (!path.healthy)
            return Status::error(Errc::link_failure,
                                 fabric_.describe_down_route(node_, map.target_node));
    }
    if (src_traffic == 0) src_traffic = len;
    ++stats_.write_calls;
    stats_.bytes_written += len;
    if (pio_bytes_c_ != nullptr) pio_bytes_c_->add(len);

    if (!map.remote()) {
        // Loopback mapping: an ordinary cached local copy.
        mem::CopyModel cm(host_);
        self.delay(cm.copy_cost(len, {}, {}));
        std::memcpy(map.mem.data() + off, src, len);
        return Status::ok();
    }

    const SciParams& p = fabric_.params();
    SimTime t_wire = wc_write_time(self.id(), map, off, len);

    // Source feed: the CPU reads the data locally while pushing it out.
    const double feed_bw =
        src_traffic <= host_.l2_size ? host_.copy_bw_l2 : p.pio_src_mem_bw;
    const SimTime t_src = transfer_time(src_traffic, feed_bw);
    SimTime t = std::max(t_wire, t_src);

    // Link contention can throttle below the adapter's own rate.
    fabric_.register_transfer(path);
    fabric_.trace_load(self, path);
    const double link_bw = fabric_.effective_bw(path, 1e9);
    const SimTime t_link = transfer_time(len, link_bw);
    t = std::max(t, t_link);

    const std::size_t packets = (len + p.sci_packet - 1) / p.sci_packet;
    const Status err = inject_errors(packets, &t, route_error_rate(path));

    self.delay(t);
    fabric_.account(path, len);
    fabric_.unregister_transfer(path);
    fabric_.trace_load(self, path);
    if (!err) return err;  // data of the failed transaction never lands

    // The stores are posted: they land after the pipeline latency.
    std::vector<std::byte> data(static_cast<const std::byte*>(src),
                                static_cast<const std::byte*>(src) + len);
    const int pid = self.id();
    ++pending_stores_[pid];
    std::byte* dst = map.mem.data() + off;
    dispatcher_.after(p.write_latency, [this, pid, dst, data = std::move(data)] {
        std::memcpy(dst, data.data(), data.size());
        if (--pending_stores_[pid] == 0) barrier_waiters_.wake_all();
    });
    return Status::ok();
}

SimTime SciAdapter::pio_stream_cost(std::size_t len, std::size_t src_traffic) const {
    if (len == 0) return 0;
    if (src_traffic == 0) src_traffic = len;
    const SciParams& p = fabric_.params();
    SimTime t_wire = p.stream_restart;
    const std::size_t ramp = std::min(len, p.stream_ramp);
    t_wire += transfer_time(ramp, p.strided_burst_bw);
    t_wire += transfer_time(len - ramp, p.burst_bw);
    const double feed_bw =
        src_traffic <= host_.l2_size ? host_.copy_bw_l2 : p.pio_src_mem_bw;
    return std::max(t_wire, transfer_time(src_traffic, feed_bw));
}

Status SciAdapter::write_gather(sim::Process& self, const SciMapping& map,
                                std::size_t off, std::span<const ConstIovec> blocks,
                                std::size_t src_traffic) {
    std::size_t total = 0;
    for (const auto& b : blocks) total += b.len;
    SCIMPI_REQUIRE(off + total <= map.size(), "gather write out of segment bounds");
    if (total == 0) return Status::ok();
    // Gathered blocks land back to back at `off` (the destination is
    // contiguous, only the source is scattered), so the single
    // [off, off+total) record covers exactly the bytes written.
    if (checker_ != nullptr)
        checker_->on_segment_access(map.seg.node, map.seg.id, self.id(), off, total,
                                    /*is_store=*/true, self.now());
    wait_if_stalled(self);
    RoutePath path;
    if (map.remote()) {
        path = fabric_.resolve_route(node_, map.target_node);
        if (!path.healthy)
            return Status::error(Errc::link_failure,
                                 fabric_.describe_down_route(node_, map.target_node));
    }
    if (src_traffic == 0) src_traffic = total;
    ++stats_.write_calls;
    stats_.bytes_written += total;
    if (pio_bytes_c_ != nullptr) pio_bytes_c_->add(total);

    if (!map.remote()) {
        // Local scatter-gather copy: strided source, contiguous destination.
        mem::CopyModel cm(host_);
        const std::size_t avg =
            std::max<std::size_t>(1, total / std::max<std::size_t>(1, blocks.size()));
        self.delay(cm.copy_cost(total, mem::AccessPattern::strided(avg, avg * 2), {},
                                blocks.size()));
        std::byte* dst = map.mem.data() + off;
        for (const auto& b : blocks) {
            std::memcpy(dst, b.ptr, b.len);
            dst += b.len;
        }
        return Status::ok();
    }

    const SciParams& p = fabric_.params();
    // Wire time: the first block jumps to `off`, the rest continue the
    // stream. The per-block CPU work (ff stack arithmetic, address
    // generation) stalls the store pipeline, so it adds to the wire time.
    SimTime t_wire = static_cast<SimTime>(blocks.size()) * host_.per_block_overhead;
    std::size_t cursor = off;
    for (const auto& b : blocks) {
        t_wire += wc_write_time(self.id(), map, cursor, b.len);
        cursor += b.len;
    }
    const double feed_bw =
        src_traffic <= host_.l2_size ? host_.copy_bw_l2 : p.pio_src_mem_bw;
    SimTime t = std::max(t_wire, transfer_time(src_traffic, feed_bw));

    fabric_.register_transfer(path);
    fabric_.trace_load(self, path);
    const double link_bw = fabric_.effective_bw(path, 1e9);
    t = std::max(t, transfer_time(total, link_bw));
    const std::size_t packets = (total + p.sci_packet - 1) / p.sci_packet;
    const Status err = inject_errors(packets, &t, route_error_rate(path));

    self.delay(t);
    fabric_.account(path, total);
    fabric_.unregister_transfer(path);
    fabric_.trace_load(self, path);
    if (!err) return err;

    std::vector<std::byte> data;
    data.reserve(total);
    for (const auto& b : blocks) {
        const auto* src = static_cast<const std::byte*>(b.ptr);
        data.insert(data.end(), src, src + b.len);
    }
    const int pid = self.id();
    ++pending_stores_[pid];
    std::byte* dst = map.mem.data() + off;
    dispatcher_.after(p.write_latency, [this, pid, dst, data = std::move(data)] {
        std::memcpy(dst, data.data(), data.size());
        if (--pending_stores_[pid] == 0) barrier_waiters_.wake_all();
    });
    return Status::ok();
}

Status SciAdapter::read(sim::Process& self, const SciMapping& map, std::size_t off,
                        void* dst, std::size_t len) {
    SCIMPI_REQUIRE(off + len <= map.size(), "remote read out of segment bounds");
    if (len == 0) return Status::ok();
    if (checker_ != nullptr)
        checker_->on_segment_access(map.seg.node, map.seg.id, self.id(), off, len,
                                    /*is_store=*/false, self.now());
    wait_if_stalled(self);
    RoutePath path;
    if (map.remote()) {
        // Reads travel target -> node: the response path is what matters.
        path = fabric_.resolve_route(map.target_node, node_);
        if (!path.healthy)
            return Status::error(Errc::link_failure,
                                 fabric_.describe_down_route(map.target_node, node_));
    }
    ++stats_.read_calls;
    stats_.bytes_read += len;
    if (read_bytes_c_ != nullptr) read_bytes_c_->add(len);

    if (!map.remote()) {
        mem::CopyModel cm(host_);
        self.delay(cm.copy_cost(len, {}, {}));
        std::memcpy(dst, map.mem.data() + off, len);
        return Status::ok();
    }

    const SciParams& p = fabric_.params();
    const std::size_t txns = (len + p.read_txn_bytes - 1) / p.read_txn_bytes;
    SimTime t = static_cast<SimTime>(txns) * p.read_latency;

    fabric_.register_transfer(path);
    fabric_.trace_load(self, path);
    const double link_bw = fabric_.effective_bw(path, 1e9);
    t = std::max(t, transfer_time(len, link_bw));
    const Status err = inject_errors(txns, &t, route_error_rate(path));

    self.delay(t);
    fabric_.account(path, len);
    fabric_.unregister_transfer(path);
    fabric_.trace_load(self, path);
    if (!err) return err;

    // Loads stall the CPU: the data is current as of completion time.
    std::memcpy(dst, map.mem.data() + off, len);
    return Status::ok();
}


Status SciAdapter::dma_write_gather(sim::Process& self, const SciMapping& map,
                                    std::size_t off,
                                    std::span<const ConstIovec> blocks) {
    std::size_t total = 0;
    for (const auto& b : blocks) total += b.len;
    SCIMPI_REQUIRE(off + total <= map.size(), "DMA gather out of segment bounds");
    if (total == 0) return Status::ok();
    wait_if_stalled(self);
    RoutePath path;
    if (map.remote()) {
        path = fabric_.resolve_route(node_, map.target_node);
        if (!path.healthy)
            return Status::error(Errc::link_failure,
                                 fabric_.describe_down_route(node_, map.target_node));
    }
    const SciParams& p = fabric_.params();
    stats_.dma_bytes += total;
    if (dma_bytes_c_ != nullptr) dma_bytes_c_->add(total);
    // Descriptor chain setup: one per block. This is why DMA pays off only
    // for large basic blocks (Section 6 outlook).
    self.delay(p.dma_startup +
               static_cast<SimTime>(blocks.size()) * p.dma_desc_cost);
    if (map.remote()) {
        const std::size_t packets = (total + p.sci_packet - 1) / p.sci_packet;
        SimTime t_err = 0;
        const Status err = inject_errors(packets, &t_err, route_error_rate(path));
        if (t_err > 0) self.delay(t_err);
        if (!err) return err;
        fabric_.timed_transfer(self, path, total, p.dma_bw);
    } else {
        self.delay(transfer_time(total, p.dma_bw));
    }
    std::byte* dst = map.mem.data() + off;
    for (const auto& b : blocks) {
        std::memcpy(dst, b.ptr, b.len);
        dst += b.len;
    }
    return Status::ok();
}

bool SciAdapter::probe_peer(sim::Process& self, int peer_node) {
    const SciParams& p = fabric_.params();
    ++stats_.probes;
    if (probes_c_ != nullptr) probes_c_->inc();
    if (peer_node == node_) {
        self.delay(100);
        return true;
    }
    wait_if_stalled(self);
    if (!fabric_.route_usable(node_, peer_node) ||
        !fabric_.route_usable(peer_node, node_)) {
        // Probe times out after the retry budget.
        self.delay(static_cast<SimTime>(cfg_.max_retries) * p.retry_penalty);
        ++stats_.probe_failures;
        if (probe_fail_c_ != nullptr) probe_fail_c_->inc();
        return false;
    }
    self.delay(p.read_latency);  // one small round trip
    return true;
}

void SciAdapter::store_barrier(sim::Process& self) {
    const SciParams& p = fabric_.params();
    ++stats_.barriers;
    if (barriers_c_ != nullptr) barriers_c_->inc();
    SimTime t = p.barrier_latency;
    StreamState& st = streams_[self.id()];
    if (st.valid) {
        t += p.txn_overhead;  // flush the write-combine remainder
        st.valid = false;
    }
    self.delay(t);
    while (pending_stores_[self.id()] > 0)
        barrier_waiters_.park(self, "store barrier");
}

Status SciAdapter::dma_write(sim::Process& self, const SciMapping& map, std::size_t off,
                             const void* src, std::size_t len) {
    SCIMPI_REQUIRE(off + len <= map.size(), "DMA write out of segment bounds");
    if (len == 0) return Status::ok();
    wait_if_stalled(self);
    RoutePath path;
    if (map.remote()) {
        path = fabric_.resolve_route(node_, map.target_node);
        if (!path.healthy)
            return Status::error(Errc::link_failure,
                                 fabric_.describe_down_route(node_, map.target_node));
    }
    const SciParams& p = fabric_.params();
    stats_.dma_bytes += len;
    if (dma_bytes_c_ != nullptr) dma_bytes_c_->add(len);
    self.delay(p.dma_startup);
    if (!map.remote()) {
        self.delay(transfer_time(len, p.dma_bw));
        std::memcpy(map.mem.data() + off, src, len);
        return Status::ok();
    }
    const std::size_t packets = (len + p.sci_packet - 1) / p.sci_packet;
    SimTime t_err = 0;
    const Status err = inject_errors(packets, &t_err, route_error_rate(path));
    if (t_err > 0) self.delay(t_err);
    if (!err) return err;
    fabric_.timed_transfer(self, path, len, p.dma_bw);
    std::memcpy(map.mem.data() + off, src, len);
    return Status::ok();
}

Status SciAdapter::dma_read(sim::Process& self, const SciMapping& map, std::size_t off,
                            void* dst, std::size_t len) {
    SCIMPI_REQUIRE(off + len <= map.size(), "DMA read out of segment bounds");
    if (len == 0) return Status::ok();
    wait_if_stalled(self);
    RoutePath path;
    if (map.remote()) {
        path = fabric_.resolve_route(map.target_node, node_);
        if (!path.healthy)
            return Status::error(Errc::link_failure,
                                 fabric_.describe_down_route(map.target_node, node_));
    }
    const SciParams& p = fabric_.params();
    stats_.dma_bytes += len;
    if (dma_bytes_c_ != nullptr) dma_bytes_c_->add(len);
    self.delay(p.dma_startup);
    if (!map.remote()) {
        self.delay(transfer_time(len, p.dma_bw));
        std::memcpy(dst, map.mem.data() + off, len);
        return Status::ok();
    }
    const std::size_t packets = (len + p.sci_packet - 1) / p.sci_packet;
    SimTime t_err = 0;
    const Status err = inject_errors(packets, &t_err, route_error_rate(path));
    if (t_err > 0) self.delay(t_err);
    if (!err) return err;
    // DMA reads stream request/response pairs; effective rate is lower.
    fabric_.timed_transfer(self, path, len, p.dma_bw * 0.7);
    std::memcpy(dst, map.mem.data() + off, len);
    return Status::ok();
}

}  // namespace scimpi::sci
