#include "mpi/comm.hpp"

#include "mpi/req/nbc.hpp"
#include "mpi/rma/window.hpp"

namespace scimpi::mpi {

namespace {
std::shared_ptr<const CommGroup> world_group(const Cluster& cluster) {
    auto g = std::make_shared<CommGroup>();
    g->context = 0;
    g->members.resize(static_cast<std::size_t>(cluster.world_size()));
    for (int r = 0; r < cluster.world_size(); ++r)
        g->members[static_cast<std::size_t>(r)] = r;
    return g;
}
}  // namespace

Comm::Comm(Cluster& cluster, Rank& rank)
    : cluster_(&cluster), rank_(&rank), group_(world_group(cluster)),
      local_rank_(rank.rank()) {}

Comm::Comm(Cluster& cluster, Rank& rank, std::shared_ptr<const CommGroup> group)
    : cluster_(&cluster), rank_(&rank), group_(std::move(group)) {
    for (std::size_t i = 0; i < group_->members.size(); ++i)
        if (group_->members[i] == rank.rank()) local_rank_ = static_cast<int>(i);
    SCIMPI_REQUIRE(local_rank_ >= 0, "rank not a member of its communicator group");
}

Comm Comm::split(int color, int key) {
    // Exchange (color, key, world, next_context) over this communicator.
    struct Entry {
        std::int64_t color, key, world, next_ctx;
    };
    const Entry mine{color, key, rank_->rank(), rank_->peek_next_context()};
    std::vector<Entry> all(static_cast<std::size_t>(size()));
    const Status st = allgather(&mine, sizeof mine, all.data());
    SCIMPI_REQUIRE(st.is_ok(), "split allgather failed: " + st.to_string());

    // Deterministic context allocation: distinct colors get consecutive ids
    // starting at the max next_context over the participants.
    std::vector<std::int64_t> colors;
    std::int64_t base = 1;
    for (const Entry& e : all) {
        base = std::max(base, e.next_ctx);
        colors.push_back(e.color);
    }
    std::sort(colors.begin(), colors.end());
    colors.erase(std::unique(colors.begin(), colors.end()), colors.end());
    const auto color_idx = static_cast<std::int64_t>(
        std::lower_bound(colors.begin(), colors.end(), color) - colors.begin());
    rank_->set_next_context(static_cast<int>(base + static_cast<std::int64_t>(colors.size())));

    auto g = std::make_shared<CommGroup>();
    g->context = static_cast<int>(base + color_idx);
    std::vector<Entry> members;
    for (const Entry& e : all)
        if (e.color == color) members.push_back(e);
    std::sort(members.begin(), members.end(), [](const Entry& a, const Entry& b) {
        return a.key != b.key ? a.key < b.key : a.world < b.world;
    });
    for (const Entry& e : members) g->members.push_back(static_cast<int>(e.world));
    return Comm(*cluster_, *rank_, std::move(g));
}

Status Comm::send(const void* buf, int count, const Datatype& type, int dst, int tag) {
    SCIMPI_REQUIRE(tag >= 0, "user tags must be non-negative");
    return rank_->send(buf, count, type, world_rank(dst), tag, context());
}

RecvResult Comm::recv(void* buf, int count, const Datatype& type, int src, int tag) {
    SCIMPI_REQUIRE(tag >= 0 || tag == ANY_TAG, "user tags must be non-negative");
    RecvResult r = rank_->recv(buf, count, type,
                               src == ANY_SOURCE ? ANY_SOURCE : world_rank(src), tag,
                               context());
    r.source = local_of_world(r.source);
    return r;
}

Request Comm::isend(const void* buf, int count, const Datatype& type, int dst, int tag) {
    SCIMPI_REQUIRE(tag >= 0, "user tags must be non-negative");
    return rank_->requests().isend(buf, count, type, world_rank(dst), tag, context());
}

Request Comm::irecv(void* buf, int count, const Datatype& type, int src, int tag) {
    SCIMPI_REQUIRE(tag >= 0 || tag == ANY_TAG, "user tags must be non-negative");
    return rank_->requests().irecv(buf, count, type,
                                   src == ANY_SOURCE ? ANY_SOURCE : world_rank(src),
                                   tag, context());
}

Status Comm::wait(Request& req) { return rank_->requests().wait(req); }

Status Comm::wait_all(std::span<Request> reqs) {
    return rank_->requests().waitall(reqs);
}

bool Comm::test(Request& req, Status* st) { return rank_->requests().test(req, st); }

int Comm::wait_any(std::span<Request> reqs) {
    return rank_->requests().waitany(reqs);
}

std::vector<int> Comm::test_some(std::span<Request> reqs) {
    return rank_->requests().testsome(reqs);
}

RecvResult Comm::recv_result(const Request& req) const {
    RecvResult r = req.result();
    if (r.source >= 0) r.source = local_of_world(r.source);
    return r;
}

Request Comm::send_init(const void* buf, int count, const Datatype& type, int dst,
                        int tag) {
    SCIMPI_REQUIRE(tag >= 0, "user tags must be non-negative");
    return rank_->requests().send_init(buf, count, type, world_rank(dst), tag,
                                       context());
}

Request Comm::recv_init(void* buf, int count, const Datatype& type, int src, int tag) {
    SCIMPI_REQUIRE(tag >= 0 || tag == ANY_TAG, "user tags must be non-negative");
    return rank_->requests().recv_init(buf, count, type,
                                       src == ANY_SOURCE ? ANY_SOURCE : world_rank(src),
                                       tag, context());
}

void Comm::start(Request& req) { rank_->requests().start(req); }

void Comm::start_all(std::span<Request> reqs) { rank_->requests().startall(reqs); }

Request Comm::ibarrier() {
    req::Engine& eng = rank_->requests();
    return eng.start_coll(req::make_ibarrier(*rank_, group_->members, local_rank_,
                                             context(),
                                             eng.nbc_tag_base(context())));
}

Request Comm::ibcast(void* buf, std::size_t bytes, int root) {
    req::Engine& eng = rank_->requests();
    return eng.start_coll(req::make_ibcast(*rank_, group_->members, local_rank_,
                                           context(), eng.nbc_tag_base(context()),
                                           buf, bytes, root));
}

Request Comm::iallreduce_sum(const double* in, double* out, int n) {
    req::Engine& eng = rank_->requests();
    return eng.start_coll(req::make_iallreduce(*rank_, group_->members, local_rank_,
                                               context(),
                                               eng.nbc_tag_base(context()), in, out,
                                               n));
}

Request Comm::iallgather(const void* in, std::size_t bytes_each, void* out) {
    req::Engine& eng = rank_->requests();
    return eng.start_coll(req::make_iallgather(*rank_, group_->members, local_rank_,
                                               context(),
                                               eng.nbc_tag_base(context()), in,
                                               bytes_each, out));
}

Status Comm::sendrecv(const void* sbuf, int scount, const Datatype& stype, int dst,
                      int stag, void* rbuf, int rcount, const Datatype& rtype, int src,
                      int rtag) {
    auto r = rank_->irecv(rbuf, rcount, rtype,
                          src == ANY_SOURCE ? ANY_SOURCE : world_rank(src), rtag,
                          context());
    auto s = rank_->isend(sbuf, scount, stype, world_rank(dst), stag, context());
    rank_->wait(*s);
    rank_->wait(*r);
    if (!s->status) return s->status;
    return r->status;
}

Status Comm::sendrecv_replace(void* buf, int count, const Datatype& type, int dst,
                              int stag, int src, int rtag) {
    // Stage the outgoing data so the incoming message may overwrite buf.
    Datatype t = type;
    if (!t.committed()) t.commit(cluster_->options().cfg);
    const std::size_t bytes = t.size() * static_cast<std::size_t>(count);
    std::vector<std::byte> staged(bytes);
    std::size_t pos = 0;
    Status st = pack(buf, count, t, staged, &pos);
    if (!st) return st;
    auto r = rank_->irecv(buf, count, t,
                          src == ANY_SOURCE ? ANY_SOURCE : world_rank(src), rtag,
                          context());
    auto s = rank_->isend(staged.data(), static_cast<int>(bytes), Datatype::byte_(),
                          world_rank(dst), stag, context());
    rank_->wait(*s);
    rank_->wait(*r);
    if (!s->status) return s->status;
    return r->status;
}

RecvResult Comm::probe(int src, int tag) {
    const auto env = rank_->probe(src == ANY_SOURCE ? ANY_SOURCE : world_rank(src),
                                  tag, /*blocking=*/true, context());
    SCIMPI_REQUIRE(env.has_value(), "blocking probe returned empty");
    return RecvResult{Status::ok(), local_of_world(env->src), env->tag, env->bytes};
}

bool Comm::iprobe(int src, int tag, RecvResult* out) {
    const auto env = rank_->probe(src == ANY_SOURCE ? ANY_SOURCE : world_rank(src),
                                  tag, /*blocking=*/false, context());
    if (!env) return false;
    if (out != nullptr)
        *out = RecvResult{Status::ok(), local_of_world(env->src), env->tag, env->bytes};
    return true;
}

Status Comm::pack(const void* inbuf, int count, const Datatype& type,
                  std::span<std::byte> outbuf, std::size_t* position) {
    SCIMPI_REQUIRE(position != nullptr, "pack: null position");
    Datatype t = type;
    if (!t.committed()) t.commit(cluster_->options().cfg);
    const std::size_t bytes = t.size() * static_cast<std::size_t>(count);
    if (*position + bytes > outbuf.size())
        return Status::error(Errc::truncated, "pack buffer too small");
    // Canonical order on the wire; ff machinery when it is order-safe.
    if (cluster_->options().cfg.use_direct_pack_ff &&
        t.flat().leaf_major_is_canonical()) {
        FFPacker ff(t, count, const_cast<void*>(inbuf));
        const PackWork w = ff.pack(0, bytes, outbuf.data() + *position);
        proc().delay(FFPacker::cost(w, rank_->copy_model()));
    } else {
        GenericPacker gp(t, count, const_cast<void*>(inbuf));
        const PackWork w = gp.pack(0, bytes, outbuf.data() + *position);
        proc().delay(GenericPacker::cost(w, rank_->copy_model()));
    }
    *position += bytes;
    return Status::ok();
}

Status Comm::unpack(std::span<const std::byte> inbuf, std::size_t* position,
                    void* outbuf, int count, const Datatype& type) {
    SCIMPI_REQUIRE(position != nullptr, "unpack: null position");
    Datatype t = type;
    if (!t.committed()) t.commit(cluster_->options().cfg);
    const std::size_t bytes = t.size() * static_cast<std::size_t>(count);
    if (*position + bytes > inbuf.size())
        return Status::error(Errc::truncated, "unpack past end of buffer");
    if (cluster_->options().cfg.use_direct_pack_ff &&
        t.flat().leaf_major_is_canonical()) {
        FFPacker ff(t, count, outbuf);
        const PackWork w = ff.unpack(0, bytes, inbuf.data() + *position);
        proc().delay(FFPacker::cost(w, rank_->copy_model()));
    } else {
        GenericPacker gp(t, count, outbuf);
        const PackWork w = gp.unpack(0, bytes, inbuf.data() + *position);
        proc().delay(GenericPacker::cost(w, rank_->copy_model()));
    }
    *position += bytes;
    return Status::ok();
}

Result<std::span<std::byte>> Comm::alloc_mem(std::size_t bytes) {
    return cluster_->memory(rank_->node()).allocate(bytes);
}

Status Comm::free_mem(std::span<std::byte> mem) {
    return cluster_->memory(rank_->node()).free(mem);
}

bool Comm::is_shared_mem(const void* p) const {
    return cluster_->memory(rank_->node()).contains(p);
}

std::shared_ptr<Win> Comm::win_create(void* base, std::size_t size) {
    return Win::create(*this, base, size);
}

}  // namespace scimpi::mpi
