// Collective algorithms over the two-sided engine. These are the reference
// implementations: always available, used directly for latency-bound sizes
// and as the degradation target when no segment set is usable. Internal
// messages use reserved negative tags, which user-level ANY_TAG receives
// never match.
#include <cstring>
#include <vector>

#include "mpi/coll/algos.hpp"
#include "mpi/coll/coll.hpp"
#include "mpi/comm.hpp"

namespace scimpi::mpi::coll::p2p {

namespace {

/// Internal send/recv bypass the non-negative tag check of the public API
/// and translate communicator-local ranks to world ranks.
Status internal_send(Comm& c, const void* buf, std::size_t bytes, int dst, int tag) {
    return c.rank_state().send(buf, static_cast<int>(bytes), Datatype::byte_(),
                               c.world_rank(dst), tag, c.context());
}
RecvResult internal_recv(Comm& c, void* buf, std::size_t bytes, int src, int tag) {
    return c.rank_state().recv(buf, static_cast<int>(bytes), Datatype::byte_(),
                               c.world_rank(src), tag, c.context());
}

/// Full-duplex raw exchange on one internal tag (both requests posted before
/// either wait, so symmetric pairs cannot deadlock).
Status internal_xchg(Comm& c, const void* sbuf, std::size_t sbytes, int dst,
                     void* rbuf, std::size_t rbytes, int src, int tag) {
    Rank& rk = c.rank_state();
    auto rx = rk.irecv(rbuf, static_cast<int>(rbytes), Datatype::byte_(),
                       c.world_rank(src), tag, c.context());
    auto tx = rk.isend(sbuf, static_cast<int>(sbytes), Datatype::byte_(),
                       c.world_rank(dst), tag, c.context());
    rk.wait(*tx);
    rk.wait(*rx);
    if (!rx->status) return rx->status;
    return tx->status;
}

}  // namespace

void barrier(Comm& c) {
    const int n = c.size();
    const int r = c.rank();
    if (n == 1) return;
    Rank& rk = c.rank_state();
    std::byte token{0};
    int round = 0;
    for (int k = 1; k < n; k <<= 1, ++round) {
        const int dst = (r + k) % n;
        const int src = (r - k + n) % n;
        auto rx = rk.irecv(&token, 1, Datatype::byte_(), c.world_rank(src),
                           kTagBarrier - round, c.context());
        auto tx = rk.isend(&token, 1, Datatype::byte_(), c.world_rank(dst),
                           kTagBarrier - round, c.context());
        rk.wait(*tx);
        rk.wait(*rx);
    }
}

Status bcast(Comm& c, void* buf, int count, const Datatype& type, int root) {
    const int n = c.size();
    if (n == 1) return Status::ok();
    const int vr = (c.rank() - root + n) % n;
    // Receive from the parent (clear the lowest set bit).
    int mask = 1;
    while (mask < n) {
        if ((vr & mask) != 0) {
            const int parent = ((vr - mask) + root) % n;
            const RecvResult res = c.rank_state().recv(
                buf, count, type, c.world_rank(parent), kTagBcast, c.context());
            if (!res.status) return res.status;
            break;
        }
        mask <<= 1;
    }
    // Forward to children.
    mask >>= 1;
    while (mask > 0) {
        if ((vr & (mask - 1)) == 0 && (vr & mask) == 0 && vr + mask < n) {
            const int child = (vr + mask + root) % n;
            const Status st = c.rank_state().send(
                buf, count, type, c.world_rank(child), kTagBcast, c.context());
            if (!st) return st;
        }
        mask >>= 1;
    }
    return Status::ok();
}

Status reduce_sum(Comm& c, const double* in, double* out, int n_elems, int root) {
    const int n = c.size();
    const int vr = (c.rank() - root + n) % n;
    std::vector<double> acc(in, in + n_elems);
    std::vector<double> tmp(static_cast<std::size_t>(n_elems));
    int mask = 1;
    while (mask < n) {
        if ((vr & mask) != 0) {
            const int parent = ((vr - mask) + root) % n;
            const Status st = internal_send(c, acc.data(), acc.size() * sizeof(double),
                                            parent, kTagReduce);
            if (!st) return st;
            break;
        }
        if (vr + mask < n) {
            const int child = (vr + mask + root) % n;
            const RecvResult res = internal_recv(
                c, tmp.data(), tmp.size() * sizeof(double), child, kTagReduce);
            if (!res.status) return res.status;
            // Model the arithmetic: one flop per element at ~1 ns each.
            c.proc().delay(n_elems);
            for (int i = 0; i < n_elems; ++i)
                acc[static_cast<std::size_t>(i)] += tmp[static_cast<std::size_t>(i)];
        }
        mask <<= 1;
    }
    if (c.rank() == root) std::memcpy(out, acc.data(), acc.size() * sizeof(double));
    return Status::ok();
}

Status allreduce_rdouble(Comm& c, const double* in, double* out, int n_elems) {
    const int n = c.size();
    const int r = c.rank();
    const std::size_t bytes = static_cast<std::size_t>(n_elems) * sizeof(double);
    std::vector<double> acc(in, in + n_elems);
    if (n > 1) {
        std::vector<double> tmp(static_cast<std::size_t>(n_elems));
        int pof2 = 1;
        while (pof2 * 2 <= n) pof2 *= 2;
        const int rem = n - pof2;
        // Fold the non-power-of-two surplus: odd ranks below 2*rem hand
        // their vector to the even neighbour and sit the exchange out.
        int newrank = 0;
        if (r < 2 * rem) {
            if ((r % 2) != 0) {
                const Status st =
                    internal_send(c, acc.data(), bytes, r - 1, kTagRdouble);
                if (!st) return st;
                newrank = -1;
            } else {
                const RecvResult res =
                    internal_recv(c, tmp.data(), bytes, r + 1, kTagRdouble);
                if (!res.status) return res.status;
                c.proc().delay(n_elems);
                for (int i = 0; i < n_elems; ++i)
                    acc[static_cast<std::size_t>(i)] +=
                        tmp[static_cast<std::size_t>(i)];
                newrank = r / 2;
            }
        } else {
            newrank = r - rem;
        }
        if (newrank >= 0) {
            int round = 0;
            for (int mask = 1; mask < pof2; mask <<= 1, ++round) {
                const int partner_new = newrank ^ mask;
                const int partner =
                    partner_new < rem ? partner_new * 2 : partner_new + rem;
                const Status st =
                    internal_xchg(c, acc.data(), bytes, partner, tmp.data(), bytes,
                                  partner, kTagRdouble - 1 - round);
                if (!st) return st;
                c.proc().delay(n_elems);
                // a+b == b+a element-wise, so every rank ends each round
                // with the bit-identical partial sum.
                for (int i = 0; i < n_elems; ++i)
                    acc[static_cast<std::size_t>(i)] +=
                        tmp[static_cast<std::size_t>(i)];
            }
        }
        // Unfold: the evens hand the finished vector back to the odds.
        if (r < 2 * rem) {
            if ((r % 2) != 0) {
                const RecvResult res =
                    internal_recv(c, acc.data(), bytes, r - 1, kTagRdouble);
                if (!res.status) return res.status;
            } else {
                const Status st =
                    internal_send(c, acc.data(), bytes, r + 1, kTagRdouble);
                if (!st) return st;
            }
        }
    }
    std::memcpy(out, acc.data(), bytes);
    return Status::ok();
}

Status allgather(Comm& c, const void* in, std::size_t bytes_each, void* out) {
    const int n = c.size();
    const int r = c.rank();
    auto* dst = static_cast<std::byte*>(out);
    std::memcpy(dst + static_cast<std::size_t>(r) * bytes_each, in, bytes_each);
    // Ring: in step s, pass along the block that originated at (r - s).
    for (int s = 0; s < n - 1; ++s) {
        const int send_block = (r - s + n) % n;
        const int recv_block = (r - s - 1 + n) % n;
        const Status st = internal_xchg(
            c, dst + static_cast<std::size_t>(send_block) * bytes_each, bytes_each,
            (r + 1) % n, dst + static_cast<std::size_t>(recv_block) * bytes_each,
            bytes_each, (r - 1 + n) % n, kTagGather - s);
        if (!st) return st;
    }
    return Status::ok();
}

Status allgather_typed(Comm& c, const void* in, int count, const Datatype& type,
                       void* out) {
    const int n = c.size();
    const std::size_t bytes_each = type.size() * static_cast<std::size_t>(count);
    // Stage through the canonical packed form: pack the local block, ring
    // the raw bytes, unpack the concatenation (which *is* the packed stream
    // of n x count elements) back into the typed layout.
    std::vector<std::byte> mine(bytes_each);
    std::size_t pos = 0;
    Status st = c.pack(in, count, type, mine, &pos);
    if (!st) return st;
    std::vector<std::byte> stage(static_cast<std::size_t>(n) * bytes_each);
    st = allgather(c, mine.data(), bytes_each, stage.data());
    if (!st) return st;
    pos = 0;
    return c.unpack(stage, &pos, out, n * count, type);
}

Status gather(Comm& c, const void* in, std::size_t bytes_each, void* out, int root) {
    const int n = c.size();
    if (c.rank() != root)
        return internal_send(c, in, bytes_each, root, kTagGather - 100);
    auto* dst = static_cast<std::byte*>(out);
    std::memcpy(dst + static_cast<std::size_t>(root) * bytes_each, in, bytes_each);
    for (int r = 0; r < n; ++r) {
        if (r == root) continue;
        const RecvResult res =
            internal_recv(c, dst + static_cast<std::size_t>(r) * bytes_each,
                          bytes_each, r, kTagGather - 100);
        if (!res.status) return res.status;
    }
    return Status::ok();
}

Status scatter(Comm& c, const void* in, std::size_t bytes_each, void* out, int root) {
    const int n = c.size();
    if (c.rank() == root) {
        const auto* src = static_cast<const std::byte*>(in);
        for (int r = 0; r < n; ++r) {
            if (r == root) continue;
            const Status st =
                internal_send(c, src + static_cast<std::size_t>(r) * bytes_each,
                              bytes_each, r, kTagGather - 101);
            if (!st) return st;
        }
        std::memcpy(out, src + static_cast<std::size_t>(root) * bytes_each,
                    bytes_each);
        return Status::ok();
    }
    return internal_recv(c, out, bytes_each, root, kTagGather - 101).status;
}

Status alltoall(Comm& c, const void* in, std::size_t bytes_each, void* out) {
    const int n = c.size();
    const int r = c.rank();
    const auto* src = static_cast<const std::byte*>(in);
    auto* dst = static_cast<std::byte*>(out);
    std::memcpy(dst + static_cast<std::size_t>(r) * bytes_each,
                src + static_cast<std::size_t>(r) * bytes_each, bytes_each);
    // Pairwise exchange: in step s swap with peers (r + s) and (r - s). The
    // step index fixes the pairing, so the output is deterministic for any
    // arrival order.
    for (int s = 1; s < n; ++s) {
        const int to = (r + s) % n;
        const int from = (r - s + n) % n;
        const Status st = internal_xchg(
            c, src + static_cast<std::size_t>(to) * bytes_each, bytes_each, to,
            dst + static_cast<std::size_t>(from) * bytes_each, bytes_each, from,
            kTagGather - 200 - s);
        if (!st) return st;
    }
    return Status::ok();
}

}  // namespace scimpi::mpi::coll::p2p
