#include "mpi/coll/tuning.hpp"

#include <array>
#include <cstddef>

namespace scimpi::mpi::coll {

namespace {

constexpr std::array<const char*, kOps> kOpNames = {
    "barrier", "bcast", "reduce", "allreduce",
    "allgather", "gather", "scatter", "alltoall",
};

constexpr std::array<const char*, 11> kAlgNames = {
    "auto", "p2p", "flat", "binomial", "ring",
    "pairwise", "flags", "rdouble", "reduce_bcast",
    "scatter_ag", "spread",
};

/// Which algorithms make sense for which operation (p2p/auto fit all).
bool valid_for(Op op, Alg a) {
    switch (a) {
        case Alg::auto_:
        case Alg::p2p:
            return true;
        case Alg::flat:
            return op == Op::bcast || op == Op::allgather;
        case Alg::binomial:
            return op == Op::bcast || op == Op::reduce;
        case Alg::ring:
            return op == Op::allgather || op == Op::allreduce;
        case Alg::pairwise:
            return op == Op::alltoall;
        case Alg::flags:
            return op == Op::barrier;
        case Alg::rdouble:
            return op == Op::allreduce;
        case Alg::reduce_bcast:
            return op == Op::allreduce;
        case Alg::scatter_ag:
            return op == Op::bcast;
        case Alg::spread:
            return op == Op::alltoall;
    }
    return false;
}

bool parse_op(const std::string& s, Op* out) {
    for (int i = 0; i < kOps; ++i) {
        if (s == kOpNames[static_cast<std::size_t>(i)]) {
            *out = static_cast<Op>(i);
            return true;
        }
    }
    return false;
}

bool parse_alg(const std::string& s, Alg* out) {
    for (std::size_t i = 0; i < kAlgNames.size(); ++i) {
        if (s == kAlgNames[i]) {
            *out = static_cast<Alg>(i);
            return true;
        }
    }
    return false;
}

}  // namespace

const char* op_name(Op op) { return kOpNames[static_cast<std::size_t>(op)]; }
const char* alg_name(Alg a) { return kAlgNames[static_cast<std::size_t>(a)]; }

Result<Tuning> Tuning::parse(const std::string& spec, const Config& cfg) {
    Tuning t;
    t.cfg_ = cfg;
    std::size_t pos = 0;
    while (pos <= spec.size() && !spec.empty()) {
        std::size_t comma = spec.find(',', pos);
        if (comma == std::string::npos) comma = spec.size();
        const std::string tok = spec.substr(pos, comma - pos);
        pos = comma + 1;
        if (tok.empty()) {
            if (pos > spec.size()) break;
            continue;
        }
        const std::size_t eq = tok.find('=');
        if (eq == std::string::npos) {
            // Global token: auto / p2p / seg.
            if (tok == "auto") {
                t.prefer_seg_ = false;
                t.seg_allowed_ = true;
            } else if (tok == "p2p") {
                t.seg_allowed_ = false;
                for (auto& f : t.force_) f = Alg::p2p;
            } else if (tok == "seg") {
                t.prefer_seg_ = true;
                t.seg_allowed_ = true;
            } else {
                return Status::error(Errc::invalid_argument,
                                     "SCIMPI_COLL: unknown token '" + tok + "'");
            }
            continue;
        }
        Op op{};
        Alg alg{};
        if (!parse_op(tok.substr(0, eq), &op))
            return Status::error(Errc::invalid_argument,
                                 "SCIMPI_COLL: unknown op '" + tok.substr(0, eq) + "'");
        if (!parse_alg(tok.substr(eq + 1), &alg))
            return Status::error(
                Errc::invalid_argument,
                "SCIMPI_COLL: unknown algorithm '" + tok.substr(eq + 1) + "'");
        if (!valid_for(op, alg))
            return Status::error(Errc::invalid_argument,
                                 std::string("SCIMPI_COLL: algorithm '") +
                                     alg_name(alg) + "' not valid for '" +
                                     op_name(op) + "'");
        t.force_[static_cast<std::size_t>(op)] = alg;
        if (alg != Alg::p2p && alg != Alg::auto_ && alg != Alg::rdouble)
            t.seg_allowed_ = true;
        if (pos > spec.size()) break;
    }
    return t;
}

Alg Tuning::select(Op op, const SelectCtx& c) const {
    if (c.comm_size <= 1) return Alg::p2p;  // trivial; p2p algos no-op at n==1
    Alg a = force_[static_cast<std::size_t>(op)];
    if (a == Alg::auto_) a = pick_auto(op, c);
    // A segment algorithm without a usable segment set degrades to the
    // matching p2p implementation (same happens under cfg.coll_segments=0).
    const bool seg = a == Alg::flat || a == Alg::binomial || a == Alg::ring ||
                     a == Alg::pairwise || a == Alg::flags ||
                     a == Alg::reduce_bcast || a == Alg::scatter_ag ||
                     a == Alg::spread;
    if (seg && !c.segments_ok) {
        if (op == Op::allreduce) return Alg::rdouble;
        return Alg::p2p;
    }
    return a;
}

Alg Tuning::pick_auto(Op op, const SelectCtx& c) const {
    const std::size_t seg_min = prefer_seg_ ? 0 : cfg_.coll_seg_min;
    switch (op) {
        case Op::barrier:
            return Alg::flags;
        case Op::bcast:
            if (c.bytes < seg_min) return Alg::p2p;
            // Bandwidth-bound regime: scatter + ring allgather moves the
            // payload through the root's port once instead of per subtree.
            if (c.bytes >= cfg_.coll_ring_min && c.comm_size >= 4)
                return Alg::scatter_ag;
            // A flat fan-out wins while the root can stream to everyone
            // faster than relaying adds hops; past that the binomial tree
            // parallelizes the injection.
            return (c.comm_size <= 4 || c.bytes <= 4_KiB) ? Alg::flat
                                                          : Alg::binomial;
        case Op::reduce:
            return c.bytes < seg_min ? Alg::p2p : Alg::binomial;
        case Op::allreduce:
            // Pinned small-message fast path: recursive doubling over the
            // short/eager p2p protocol beats any segment setup below a few
            // KiB (latency-bound regime).
            if (c.bytes <= cfg_.coll_small_allreduce && !prefer_seg_)
                return Alg::rdouble;
            // Large payloads: bandwidth-optimal ring (reduce-scatter +
            // allgather). Medium: tree reduce + tree bcast over segments.
            if (c.bytes >= cfg_.coll_ring_min && c.comm_size >= 4)
                return Alg::ring;
            return Alg::reduce_bcast;
        case Op::allgather:
            return c.bytes < seg_min ? Alg::p2p : Alg::ring;
        case Op::gather:
        case Op::scatter:
            // Rooted, fan-in/fan-out limited by the root's port either way;
            // the p2p eager path is already near-optimal (see DESIGN.md §11).
            return Alg::p2p;
        case Op::alltoall:
            // Spread (all streams posted at once) dominates the stepwise
            // pairwise schedule, which stays available as an override.
            return c.bytes < seg_min ? Alg::p2p : Alg::spread;
    }
    return Alg::p2p;
}

}  // namespace scimpi::mpi::coll
