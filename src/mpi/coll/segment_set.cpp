#include "mpi/coll/segment_set.hpp"

#include <cstring>

#include "check/checker.hpp"
#include "fault/retry.hpp"
#include "mpi/coll/algos.hpp"
#include "mpi/coll/coll.hpp"
#include "mpi/comm.hpp"
#include "mpi/datatype/pack_ff.hpp"
#include "mpi/datatype/pack_generic.hpp"
#include "sim/dispatcher.hpp"
#include "sim/trace.hpp"

namespace scimpi::mpi::coll {

namespace {

/// Same wire-order predicate as Comm::pack / the rendezvous direct path:
/// ff may feed the segment only when its leaf-major order is canonical.
bool use_ff(const Config& cfg, const Datatype& t) {
    return cfg.use_direct_pack_ff && t.flat().leaf_major_is_canonical();
}

/// Same granularity gate as Rank::pack_into_ring (config D6): below
/// ff_min_block the per-transaction PIO overhead of a gather write exceeds
/// the staging copy it saves, so fall back to the generic path.
bool ff_blocks_ok(const Config& cfg, const Datatype& t, const XferView& v) {
    if (cfg.ff_min_block == 0) return true;
    FFPacker ff(t, v.count, v.data);
    return ff.dominant_pattern().block >= cfg.ff_min_block;
}

}  // namespace

CollSegmentSet::CollSegmentSet(Cluster& cluster, int comm_size, CollMetrics& cm)
    : cluster_(cluster), cm_(cm), n_(comm_size) {
    const Config& cfg = cluster_.options().cfg;
    const std::size_t areas = static_cast<std::size_t>(n_) * kSlots * 2;
    chunk_ = cfg.coll_chunk;
    if (areas * chunk_ > cfg.coll_seg_max) chunk_ = cfg.coll_seg_max / areas;
    chunk_ &= ~static_cast<std::size_t>(255);  // keep chunk areas line-aligned
    if (chunk_ < 2_KiB) chunk_ = 0;            // too many ranks for the cap
    data_bytes_ = areas * chunk_;
    ctrl_bytes_ =
        static_cast<std::size_t>(kBarrierRounds + 2 * n_ * kSlots) * sizeof(std::uint64_t);
    members_.resize(static_cast<std::size_t>(n_));
    for (Member& m : members_) {
        m.tx.assign(static_cast<std::size_t>(n_) * kSlots, {});
        m.rx.assign(static_cast<std::size_t>(n_) * kSlots, {});
        m.degraded.assign(static_cast<std::size_t>(n_), 0);
        m.ctrl_to.resize(static_cast<std::size_t>(n_));
        m.data_to.resize(static_cast<std::size_t>(n_));
    }
}

CollSegmentSet::~CollSegmentSet() {
    for (Member& m : members_) {
        if (!m.alloc_ok) continue;
        (void)cluster_.directory().destroy(m.data_seg);
        (void)cluster_.directory().destroy(m.ctrl_seg);
        (void)cluster_.memory(m.node).free(m.data_mem);
        (void)cluster_.memory(m.node).free(m.ctrl_mem);
    }
}

void CollSegmentSet::init_member(Comm& c) {
    Member& m = member(c.rank());
    if (m.init_done) return;
    m.init_done = true;
    m.node = c.node();
    bool ok = chunk_ != 0;
    if (ok) {
        auto ctrl = cluster_.memory(m.node).allocate(ctrl_bytes_);
        auto data = cluster_.memory(m.node).allocate(data_bytes_);
        if (ctrl.is_ok() && data.is_ok()) {
            m.ctrl_mem = ctrl.value();
            m.data_mem = data.value();
            std::memset(m.ctrl_mem.data(), 0, m.ctrl_mem.size());
            m.ctrl_seg = cluster_.directory().create(m.node, m.ctrl_mem);
            m.data_seg = cluster_.directory().create(m.node, m.data_mem);
            // Only the data segment carries user payload; the control words
            // are the synchronization protocol itself and stay unwatched.
            if (check::Checker* ck = cluster_.checker())
                ck->watch_segment(m.data_seg.node, m.data_seg.id);
            m.alloc_ok = true;
        } else {
            if (ctrl.is_ok()) (void)cluster_.memory(m.node).free(ctrl.value());
            if (data.is_ok()) (void)cluster_.memory(m.node).free(data.value());
            ok = false;
        }
    }
    // Veto allgather: the set is usable only if every member allocated, so
    // all ranks take identical paths even when one arena is exhausted.
    std::uint8_t mine = ok ? 1 : 0;
    std::vector<std::uint8_t> all(static_cast<std::size_t>(n_));
    const Status st = p2p::allgather(c, &mine, 1, all.data());
    SCIMPI_REQUIRE(st.is_ok(),
                   "collective segment-set bootstrap failed: " + st.to_string());
    bool every = true;
    for (const std::uint8_t b : all) every = every && b != 0;
    usable_ = every;
    if (!verdict_known_) {
        verdict_known_ = true;
        if (usable_) cm_.segment_sets->inc();
    }
}

std::size_t CollSegmentSet::barrier_off(int round) const {
    return static_cast<std::size_t>(round) * sizeof(std::uint64_t);
}

std::size_t CollSegmentSet::ready_off(int writer, int slot) const {
    return static_cast<std::size_t>(kBarrierRounds + writer * kSlots + slot) *
           sizeof(std::uint64_t);
}

std::size_t CollSegmentSet::ack_off(int reader, int slot) const {
    return static_cast<std::size_t>(kBarrierRounds + (n_ + reader) * kSlots + slot) *
           sizeof(std::uint64_t);
}

std::size_t CollSegmentSet::area_off(int writer, int slot, int parity) const {
    return ((static_cast<std::size_t>(writer) * kSlots + static_cast<std::size_t>(slot)) *
                2 +
            static_cast<std::size_t>(parity)) *
           chunk_;
}

smi::Region& CollSegmentSet::ctrl_region(int me, int target) {
    Member& m = member(me);
    auto& slot = m.ctrl_to[static_cast<std::size_t>(target)];
    if (!slot) {
        auto imp = cluster_.directory().import(m.node, member(target).ctrl_seg);
        SCIMPI_REQUIRE(imp.is_ok(), "coll: control-segment import failed");
        slot.emplace(smi::Region::sci(imp.value(), cluster_.adapter(m.node)));
    }
    return *slot;
}

smi::Region& CollSegmentSet::data_region(int me, int target) {
    Member& m = member(me);
    auto& slot = m.data_to[static_cast<std::size_t>(target)];
    if (!slot) {
        auto imp = cluster_.directory().import(m.node, member(target).data_seg);
        SCIMPI_REQUIRE(imp.is_ok(), "coll: data-segment import failed");
        slot.emplace(smi::Region::sci(imp.value(), cluster_.adapter(m.node)));
    }
    return *slot;
}

std::uint64_t CollSegmentSet::read_my_word(Comm& c, std::size_t word_off) {
    // Polling a flag word of my own exported control segment is a plain
    // cached load (all waiting happens on local memory, the SCI way), so it
    // carries no simulated cost — unlike a loopback Region::read, which
    // charges the copy model per call.
    std::uint64_t v = 0;
    std::memcpy(&v, member(c.rank()).ctrl_mem.data() + word_off, sizeof v);
    return v;
}

Status CollSegmentSet::put_word(Comm& c, int target, std::size_t word_off,
                                std::uint64_t v) {
    smi::Region& r = ctrl_region(c.rank(), target);
    const Status st = r.write(c.proc(), word_off, &v, sizeof v);
    if (!st) return st;
    if (!r.remote()) {
        member(target).waiters.wake_all();
        return st;
    }
    // The store is posted, not flushed: it becomes visible write_latency
    // after the call, so schedule the host-side wake for exactly that moment
    // instead of stalling this process in a store barrier. Posted stores of
    // one process share that constant pipeline latency, so the flag can
    // never overtake the chunk data written just before it.
    sim::WaitQueue* q = &member(target).waiters;
    cluster_.dispatcher().after(cluster_.fabric().params().write_latency + 1,
                                [q] { q->wake_all(); });
    return st;
}

void CollSegmentSet::park(Comm& c) {
    const sim::ProfScope prof(c.proc(), obs::ProfState::wait_sync);
    sim::WaitQueue* q = &member(c.rank()).waiters;
    // Timeout wakeup: a lost notify (or a writer that switched to the p2p
    // fallback) turns into a re-poll instead of a hang.
    cluster_.dispatcher().after(cluster_.options().cfg.coll_poll_timeout,
                                [q] { q->wake_all(); });
    q->park(c.proc());
}

Status CollSegmentSet::publish_chunk(Comm& c, ActiveSend& s, std::size_t ci) {
    const int me = c.rank();
    sim::Process& self = c.proc();
    const Config& cfg = cluster_.options().cfg;
    const std::uint64_t seq = s.base + ci + 1;
    const std::size_t clen = std::min(chunk_, s.len - ci * chunk_);
    const std::size_t spos = s.pos + ci * chunk_;
    const std::size_t doff = area_off(me, s.slot, static_cast<int>(seq & 1));
    smi::Region& data = data_region(me, s.to);
    Status st;
    bool ff_used = false;
    bool generic_used = false;
    if (s.v.type == nullptr || s.v.type->is_contiguous()) {
        const sim::ProfScope io(self, obs::ProfState::pio_write);
        st = data.write(self, doff, static_cast<const std::byte*>(s.v.data) + spos,
                        clen, clen);
    } else if (use_ff(cfg, *s.v.type) && ff_blocks_ok(cfg, *s.v.type, s.v)) {
        // The paper's §3 trick applied to collectives: gather the flattened
        // blocks straight into the remote segment, no staging copy.
        FFPacker ff(*s.v.type, s.v.count, s.v.data);
        std::vector<sci::SciAdapter::ConstIovec> blocks;
        ff.for_range(spos, clen, [&blocks](std::byte* mem, std::size_t len) {
            blocks.push_back({mem, len});
        });
        const sim::ProfScope io(self, obs::ProfState::pio_write);
        st = data.write_gather(self, doff, blocks, ff.memory_traffic(clen));
        ff_used = true;
    } else {
        std::vector<std::byte> stage(clen);
        {
            const sim::ProfScope pk(self, obs::ProfState::pack);
            GenericPacker gp(*s.v.type, s.v.count, s.v.data);
            const PackWork w = gp.pack(spos, clen, stage.data());
            self.delay(GenericPacker::cost(w, c.rank_state().copy_model()));
        }
        const sim::ProfScope io(self, obs::ProfState::pio_write);
        st = data.write(self, doff, stage.data(), clen, clen);
        generic_used = true;
    }
    if (!st) return st;
    st = put_word(c, s.to, ready_off(me, s.slot), seq);  // wakes the reader
    if (!st) return st;
    member(me).tx[static_cast<std::size_t>(s.to * kSlots + s.slot)].sent = seq;
    cm_.seg_chunks->inc();
    cm_.seg_bytes->add(clen);
    if (ff_used) cm_.ff_seg_packs->inc();
    if (generic_used) cm_.generic_seg_packs->inc();
    return Status::ok();
}

void CollSegmentSet::consume_chunk(Comm& c, ActiveRecv& r, std::size_t ci) {
    const int me = c.rank();
    sim::Process& self = c.proc();
    Member& m = member(me);
    const Config& cfg = cluster_.options().cfg;
    const std::uint64_t seq = r.base + ci + 1;
    const std::size_t clen = std::min(chunk_, r.len - ci * chunk_);
    const std::size_t spos = r.pos + ci * chunk_;
    const std::size_t doff = area_off(r.from, r.slot, static_cast<int>(seq & 1));
    // The observed ready flag is the happens-before edge writer -> reader.
    if (check::Checker* ck = cluster_.checker())
        ck->on_p2p(c.world_rank(r.from), c.world_rank(me));
    if (r.v.type == nullptr || r.v.type->is_contiguous()) {
        (void)data_region(me, me).read(
            self, doff, static_cast<std::byte*>(r.v.data) + spos, clen);
    } else {
        // Typed consume: unpack directly out of the segment memory (the
        // loopback read cost is the unpack itself).
        if (check::Checker* ck = cluster_.checker())
            ck->on_segment_access(m.data_seg.node, m.data_seg.id, self.id(), doff,
                                  clen, /*is_store=*/false, self.now());
        const std::byte* src = m.data_mem.data() + doff;
        const sim::ProfScope pk(self, obs::ProfState::pack);
        if (use_ff(cfg, *r.v.type)) {
            FFPacker ff(*r.v.type, r.v.count, r.v.data);
            const PackWork w = ff.unpack(spos, clen, src);
            self.delay(FFPacker::cost(w, c.rank_state().copy_model()));
            cm_.ff_seg_packs->inc();
        } else {
            GenericPacker gp(*r.v.type, r.v.count, r.v.data);
            const PackWork w = gp.unpack(spos, clen, src);
            self.delay(GenericPacker::cost(w, c.rank_state().copy_model()));
            cm_.generic_seg_packs->inc();
        }
    }
    // Acknowledge; a failed ack is dropped — the writer times out into the
    // p2p fallback on its own if the reverse direction matters.
    const Status ast = put_word(c, r.from, ack_off(me, r.slot), seq);
    if (!ast) cm_.ack_drops->inc();
    m.rx[static_cast<std::size_t>(r.from * kSlots + r.slot)].rcvd = seq;
}

Status CollSegmentSet::fallback_send(Comm& c, ActiveSend& s, std::size_t ci) {
    const int me = c.rank();
    sim::Process& self = c.proc();
    const Config& cfg = cluster_.options().cfg;
    Member& m = member(me);
    // Flush in-flight posted stores: every chunk published before the divert
    // must be visible at the reader before the p2p message can overtake it.
    data_region(me, s.to).store_barrier(self);
    if (m.degraded[static_cast<std::size_t>(s.to)] == 0) {
        m.degraded[static_cast<std::size_t>(s.to)] = 1;
        cm_.degraded_edges->inc();
    }
    cm_.fallbacks->inc();
    Stream& t = m.tx[static_cast<std::size_t>(s.to * kSlots + s.slot)];
    const std::uint64_t start_seq = s.base + ci;
    const std::uint64_t end_seq = s.base + s.n_chunks;
    const std::size_t off0 = ci * chunk_;
    const std::size_t rem = s.len - off0;
    std::vector<std::byte> buf(2 * sizeof(std::uint64_t) + rem);
    std::memcpy(buf.data(), &start_seq, sizeof start_seq);
    std::memcpy(buf.data() + sizeof start_seq, &end_seq, sizeof end_seq);
    std::byte* payload = buf.data() + 2 * sizeof(std::uint64_t);
    {
        const sim::ProfScope pk(self, obs::ProfState::pack);
        if (s.v.type == nullptr || s.v.type->is_contiguous()) {
            std::memcpy(payload,
                        static_cast<const std::byte*>(s.v.data) + s.pos + off0, rem);
            self.delay(c.rank_state().copy_model().copy_cost(rem, {}, {}));
        } else if (use_ff(cfg, *s.v.type)) {
            FFPacker ff(*s.v.type, s.v.count, s.v.data);
            const PackWork w = ff.pack(s.pos + off0, rem, payload);
            self.delay(FFPacker::cost(w, c.rank_state().copy_model()));
        } else {
            GenericPacker gp(*s.v.type, s.v.count, s.v.data);
            const PackWork w = gp.pack(s.pos + off0, rem, payload);
            self.delay(GenericPacker::cost(w, c.rank_state().copy_model()));
        }
    }
    // Whatever happens, the stream counters advance so both sides stay in
    // phase for the next transfer on this edge.
    t.sent = end_seq;
    t.acked = end_seq;
    return c.rank_state().send(buf.data(), static_cast<int>(buf.size()),
                               Datatype::byte_(), c.world_rank(s.to),
                               kTagStreamFbk - s.slot, c.context());
}

bool CollSegmentSet::fallback_recv(Comm& c, ActiveRecv& r) {
    const int me = c.rank();
    sim::Process& self = c.proc();
    const Config& cfg = cluster_.options().cfg;
    Member& m = member(me);
    Stream& x = m.rx[static_cast<std::size_t>(r.from * kSlots + r.slot)];
    const int tag = kTagStreamFbk - r.slot;
    const auto env =
        c.rank_state().probe(c.world_rank(r.from), tag, /*blocking=*/false,
                             c.context());
    if (!env.has_value()) return false;
    std::vector<std::byte> buf(env->bytes);
    const RecvResult res =
        c.rank_state().recv(buf.data(), static_cast<int>(buf.size()),
                            Datatype::byte_(), c.world_rank(r.from), tag,
                            c.context());
    SCIMPI_REQUIRE(res.status.is_ok(), "coll: fallback receive failed");
    std::uint64_t start_seq = 0;
    std::uint64_t end_seq = 0;
    std::memcpy(&start_seq, buf.data(), sizeof start_seq);
    std::memcpy(&end_seq, buf.data() + sizeof start_seq, sizeof end_seq);
    // A flag write the writer *thought* failed may still have landed, in
    // which case this transfer already completed on the segment path and
    // the message is a stale duplicate for a finished transfer.
    if (end_seq <= x.rcvd) return false;
    // Chunks the writer published before diverting are guaranteed visible
    // (it store-barriered before sending): consume them from the segment.
    while (x.rcvd < start_seq) consume_chunk(c, r, x.rcvd - r.base);
    // The writer's ack view may lag: skip payload chunks already consumed.
    const std::uint64_t skip = x.rcvd - start_seq;
    const std::size_t ci0 = x.rcvd - r.base;
    const std::size_t spos = r.pos + ci0 * chunk_;
    const std::size_t rem = r.len - ci0 * chunk_;
    const std::byte* payload =
        buf.data() + 2 * sizeof(std::uint64_t) + skip * chunk_;
    {
        const sim::ProfScope pk(self, obs::ProfState::pack);
        if (r.v.type == nullptr || r.v.type->is_contiguous()) {
            std::memcpy(static_cast<std::byte*>(r.v.data) + spos, payload, rem);
            self.delay(c.rank_state().copy_model().copy_cost(rem, {}, {}));
        } else if (use_ff(cfg, *r.v.type)) {
            FFPacker ff(*r.v.type, r.v.count, r.v.data);
            const PackWork w = ff.unpack(spos, rem, payload);
            self.delay(FFPacker::cost(w, c.rank_state().copy_model()));
        } else {
            GenericPacker gp(*r.v.type, r.v.count, r.v.data);
            const PackWork w = gp.unpack(spos, rem, payload);
            self.delay(GenericPacker::cost(w, c.rank_state().copy_model()));
        }
    }
    x.rcvd = end_seq;
    r.done = true;
    cm_.fallback_recvs->inc();
    return true;
}

bool CollSegmentSet::pump_send(Comm& c, ActiveSend& s, Status* st) {
    const int me = c.rank();
    const Config& cfg = cluster_.options().cfg;
    Member& m = member(me);
    if (m.degraded[static_cast<std::size_t>(s.to)] != 0) {
        *st = fallback_send(c, s, s.next_ci);
        s.done = true;
        return true;
    }
    Stream& t = m.tx[static_cast<std::size_t>(s.to * kSlots + s.slot)];
    const std::uint64_t w = read_my_word(c, ack_off(s.to, s.slot));
    if (w > t.acked) {
        t.acked = w;
        // The observed ack is the happens-before edge reader -> writer that
        // licenses chunk-buffer reuse.
        if (check::Checker* ck = cluster_.checker())
            ck->on_p2p(c.world_rank(s.to), c.world_rank(me));
    }
    bool progressed = false;
    while (s.next_ci < s.n_chunks) {
        const std::uint64_t seq = s.base + s.next_ci + 1;
        if (seq > t.acked + 2) break;  // both buffers of the slot in flight
        const std::size_t ci = s.next_ci;
        const fault::RetryOutcome out = fault::retry_with_backoff(
            c.proc(), cfg, cluster_.monitor(), m.node, member(s.to).node,
            [&] { return publish_chunk(c, s, ci); });
        if (!out.status) {
            *st = fallback_send(c, s, ci);
            s.done = true;
            return true;
        }
        ++s.next_ci;
        progressed = true;
    }
    if (s.next_ci >= s.n_chunks) {
        // Everything is published; trailing acks are collected lazily by
        // the next transfer's buffer-reuse window.
        s.done = true;
        return true;
    }
    if (progressed) {
        s.stall_since = -1;
        return true;
    }
    // Window closed: budget the ack wait like any other remote op before
    // concluding the reverse path is dead and diverting to p2p.
    if (s.stall_since < 0) {
        s.stall_since = c.proc().now();
    } else if (c.proc().now() - s.stall_since > cfg.retry_budget) {
        *st = fallback_send(c, s, s.next_ci);
        s.done = true;
        return true;
    }
    return false;
}

bool CollSegmentSet::pump_recv(Comm& c, ActiveRecv& r, Status* st) {
    (void)st;  // readers complete on whichever path the writer chose
    Member& m = member(c.rank());
    Stream& x = m.rx[static_cast<std::size_t>(r.from * kSlots + r.slot)];
    bool progressed = false;
    for (;;) {
        if (x.rcvd >= r.base + r.n_chunks) {
            r.done = true;
            return true;
        }
        const std::uint64_t want = x.rcvd + 1;
        if (read_my_word(c, ready_off(r.from, r.slot)) >= want) {
            consume_chunk(c, r, x.rcvd - r.base);
            progressed = true;
            continue;
        }
        // Probing also drives the two-sided progress engine, which keeps
        // relays and fallback traffic moving while we wait on the flag.
        if (c.rank_state()
                .probe(c.world_rank(r.from), kTagStreamFbk - r.slot,
                       /*blocking=*/false, c.context())
                .has_value()) {
            if (fallback_recv(c, r)) return true;
            progressed = true;  // drained a stale duplicate
            continue;
        }
        break;
    }
    return progressed;
}

Status CollSegmentSet::pump_all(Comm& c, std::span<ActiveSend> sends,
                                std::span<ActiveRecv> recvs) {
    const int me = c.rank();
    Status sst;
    Status rst;
    for (ActiveSend& s : sends) {
        s.n_chunks = (s.len + chunk_ - 1) / chunk_;
        s.base = member(me).tx[static_cast<std::size_t>(s.to * kSlots + s.slot)].sent;
        if (s.len == 0) s.done = true;
    }
    for (ActiveRecv& r : recvs) {
        r.n_chunks = (r.len + chunk_ - 1) / chunk_;
        r.base = member(me).rx[static_cast<std::size_t>(r.from * kSlots + r.slot)].rcvd;
        if (r.len == 0) r.done = true;
    }
    for (;;) {
        bool pending = false;
        bool prog = false;
        for (ActiveSend& s : sends) {
            if (s.done) continue;
            prog = pump_send(c, s, &sst) || prog;
            pending = pending || !s.done;
        }
        for (ActiveRecv& r : recvs) {
            if (r.done) continue;
            prog = pump_recv(c, r, &rst) || prog;
            pending = pending || !r.done;
        }
        if (!pending) break;
        if (!prog) park(c);
    }
    if (!sst) return sst;
    return rst;
}

Status CollSegmentSet::run_streams(Comm& c, std::span<const StreamOp> sends,
                                   std::span<const StreamOp> recvs) {
    std::vector<ActiveSend> ss;
    ss.reserve(sends.size());
    for (const StreamOp& o : sends)
        ss.push_back({.to = o.peer, .slot = o.slot, .v = o.v, .pos = o.pos,
                      .len = o.len});
    std::vector<ActiveRecv> rr;
    rr.reserve(recvs.size());
    for (const StreamOp& o : recvs)
        rr.push_back({.from = o.peer, .slot = o.slot, .v = o.v, .pos = o.pos,
                      .len = o.len});
    return pump_all(c, ss, rr);
}

Status CollSegmentSet::send_stream(Comm& c, int to, int slot, const XferView& v,
                                   std::size_t pos, std::size_t len) {
    ActiveSend s{.to = to, .slot = slot, .v = v, .pos = pos, .len = len};
    return pump_all(c, {&s, 1}, {});
}

Status CollSegmentSet::recv_stream(Comm& c, int from, int slot, const XferView& v,
                                   std::size_t pos, std::size_t len) {
    ActiveRecv r{.from = from, .slot = slot, .v = v, .pos = pos, .len = len};
    return pump_all(c, {}, {&r, 1});
}

Status CollSegmentSet::xchg_streams(Comm& c, int to, int sslot, const XferView& sv,
                                    std::size_t spos, std::size_t slen, int from,
                                    int rslot, const XferView& rv, std::size_t rpos,
                                    std::size_t rlen) {
    ActiveSend s{.to = to, .slot = sslot, .v = sv, .pos = spos, .len = slen};
    ActiveRecv r{.from = from, .slot = rslot, .v = rv, .pos = rpos, .len = rlen};
    return pump_all(c, {&s, 1}, {&r, 1});
}

void CollSegmentSet::barrier_flags(Comm& c) {
    const int me = c.rank();
    const int n = n_;
    Member& m = member(me);
    const std::uint64_t gen = ++m.barrier_gen;
    int round = 0;
    for (int k = 1; k < n; k <<= 1, ++round) {
        const int dst = (me + k) % n;
        const int src = (me - k + n) % n;
        bool token_path = m.degraded[static_cast<std::size_t>(dst)] != 0;
        if (!token_path) {
            const Status st = put_word(c, dst, barrier_off(round), gen);
            if (!st) {
                m.degraded[static_cast<std::size_t>(dst)] = 1;
                cm_.degraded_edges->inc();
                token_path = true;
            }
        }
        if (token_path) {
            // Tokens are short messages: they ride the doorbell path, which
            // is modeled hardware-reliable, so the round always completes.
            cm_.fallbacks->inc();
            (void)c.rank_state().send(&gen, sizeof gen, Datatype::byte_(),
                                      c.world_rank(dst), kTagBarrierFbk - round,
                                      c.context());
        }
        for (;;) {
            if (read_my_word(c, barrier_off(round)) >= gen) {
                if (check::Checker* ck = cluster_.checker())
                    ck->on_p2p(c.world_rank(src), c.world_rank(me));
                break;
            }
            if (c.rank_state()
                    .probe(c.world_rank(src), kTagBarrierFbk - round,
                           /*blocking=*/false, c.context())
                    .has_value()) {
                std::uint64_t tg = 0;
                (void)c.rank_state().recv(&tg, sizeof tg, Datatype::byte_(),
                                          c.world_rank(src),
                                          kTagBarrierFbk - round, c.context());
                if (tg >= gen) break;
                continue;  // stale token from an earlier generation
            }
            park(c);
        }
    }
}

}  // namespace scimpi::mpi::coll
