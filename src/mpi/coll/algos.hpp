// Internal algorithm entry points shared between the engine dispatcher
// (api.cpp) and the two implementation families. All functions are
// collective over `c` and blocking; ranks are communicator-local.
#pragma once

#include <cstddef>

#include "common/status.hpp"
#include "mpi/datatype/datatype.hpp"

namespace scimpi::mpi {
class Comm;
}

namespace scimpi::mpi::coll {

class CollSegmentSet;

// ---- seed algorithms over the two-sided engine (p2p_algos.cpp) ----
namespace p2p {
void barrier(Comm& c);
Status bcast(Comm& c, void* buf, int count, const Datatype& type, int root);
Status reduce_sum(Comm& c, const double* in, double* out, int n_elems, int root);
Status allgather(Comm& c, const void* in, std::size_t bytes_each, void* out);
Status gather(Comm& c, const void* in, std::size_t bytes_each, void* out, int root);
Status scatter(Comm& c, const void* in, std::size_t bytes_each, void* out, int root);
Status alltoall(Comm& c, const void* in, std::size_t bytes_each, void* out);
/// Recursive-doubling allreduce: the pinned small-message fast path.
Status allreduce_rdouble(Comm& c, const double* in, double* out, int n_elems);
/// Typed allgather staged through canonical pack (reference path).
Status allgather_typed(Comm& c, const void* in, int count, const Datatype& type,
                       void* out);
}  // namespace p2p

// ---- segment algorithms over a CollSegmentSet (seg_algos.cpp) ----
namespace seg {
Status bcast_flat(Comm& c, CollSegmentSet& s, void* buf, int count,
                  const Datatype& type, int root);
Status bcast_binomial(Comm& c, CollSegmentSet& s, void* buf, int count,
                      const Datatype& type, int root);
/// Van de Geijn large-message bcast: root scatters byte blocks to all ranks
/// concurrently, then a ring allgather reassembles them — the root's port
/// carries the payload once instead of once per subtree.
Status bcast_scatter_ag(Comm& c, CollSegmentSet& s, void* buf, int count,
                        const Datatype& type, int root);
Status reduce_binomial(Comm& c, CollSegmentSet& s, const double* in, double* out,
                       int n_elems, int root);
Status allreduce_ring(Comm& c, CollSegmentSet& s, const double* in, double* out,
                      int n_elems);
Status allgather_ring(Comm& c, CollSegmentSet& s, const void* in,
                      std::size_t bytes_each, void* out);
/// Pairwise-exchange typed allgather: each rank injects its block into every
/// peer's segment with direct_pack_ff and unpacks arrivals straight out of
/// its own segment — no staging copies at all.
Status allgather_flat_typed(Comm& c, CollSegmentSet& s, const void* in, int count,
                            const Datatype& type, void* out);
Status alltoall_pairwise(Comm& c, CollSegmentSet& s, const void* in,
                         std::size_t bytes_each, void* out);
/// All pairwise streams posted concurrently (no step barriers); produces the
/// same bytes as the pairwise schedule but overlaps every edge's latency.
Status alltoall_spread(Comm& c, CollSegmentSet& s, const void* in,
                       std::size_t bytes_each, void* out);
}  // namespace seg

}  // namespace scimpi::mpi::coll
