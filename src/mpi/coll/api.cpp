// Engine dispatch: Comm's collective methods land here, an algorithm is
// selected (tuning.hpp), the per-communicator segment set is bootstrapped on
// first segment-routed use, and the call is recorded in coll.* metrics and
// the trace.
#include <cstring>
#include <string>

#include "mpi/coll/algos.hpp"
#include "mpi/coll/coll.hpp"
#include "mpi/coll/segment_set.hpp"
#include "mpi/comm.hpp"
#include "obs/evgraph.hpp"
#include "sim/engine.hpp"
#include "sim/trace.hpp"

namespace scimpi::mpi::coll {

CollRuntime::CollRuntime(Cluster& cluster, const std::string& spec)
    : cluster_(cluster) {
    auto parsed = Tuning::parse(spec, cluster.options().cfg);
    SCIMPI_REQUIRE(parsed.is_ok(), parsed.status().to_string());
    tuning_ = parsed.value();
    obs::MetricsRegistry& reg = cluster.metrics();
    for (int i = 0; i < kOps; ++i) {
        const std::string base = std::string("coll.") + op_name(static_cast<Op>(i));
        cm_.calls[i] = &reg.counter(base + ".calls");
        cm_.latency[i] = &reg.histogram(base + ".latency_ns");
    }
    cm_.seg_ops = &reg.counter("coll.seg_ops");
    cm_.p2p_ops = &reg.counter("coll.p2p_ops");
    cm_.seg_bytes = &reg.counter("coll.seg_bytes");
    cm_.seg_chunks = &reg.counter("coll.seg_chunks");
    cm_.ff_seg_packs = &reg.counter("coll.ff_seg_packs");
    cm_.generic_seg_packs = &reg.counter("coll.generic_seg_packs");
    cm_.fallbacks = &reg.counter("coll.fallbacks");
    cm_.fallback_recvs = &reg.counter("coll.fallback_recvs");
    cm_.ack_drops = &reg.counter("coll.ack_drops");
    cm_.degraded_edges = &reg.counter("coll.degraded_edges");
    cm_.segment_sets = &reg.counter("coll.segment_sets");
    cm_.small_allreduce = &reg.counter("coll.small_allreduce");
}

CollRuntime::~CollRuntime() = default;

void CollRuntime::release_sets() { sets_.clear(); }

CollSegmentSet* CollRuntime::ensure_set(Comm& comm) {
    auto& slot = sets_[comm.context()];
    if (!slot)
        slot = std::make_unique<CollSegmentSet>(cluster_, comm.size(), cm_);
    if (!slot->initialized(comm.rank())) slot->init_member(comm);
    return slot->usable() ? slot.get() : nullptr;
}

namespace {

bool is_seg_alg(Alg a) {
    return a == Alg::flat || a == Alg::binomial || a == Alg::ring ||
           a == Alg::pairwise || a == Alg::flags || a == Alg::reduce_bcast ||
           a == Alg::scatter_ag || a == Alg::spread;
}

/// Select the algorithm and, when it is a segment one, bootstrap the set.
/// Selection is deterministic in (op, bytes, comm shape), so every member
/// reaches the bootstrap (and its internal allgather) together; when the
/// set turns out unusable, everyone re-selects with segments off.
Alg choose(Comm& c, Op op, std::size_t bytes, CollSegmentSet** set_out) {
    Cluster& cl = c.cluster();
    CollRuntime& rt = cl.coll_runtime();
    const ClusterOptions& opt = cl.options();
    SelectCtx ctx{
        .bytes = bytes,
        .comm_size = c.size(),
        .segments_ok = rt.tuning().segments_enabled() && opt.cfg.coll_segments &&
                       c.size() > 1,
        .torus = opt.torus_w > 0,
        .procs_per_node = opt.procs_per_node,
    };
    Alg a = rt.tuning().select(op, ctx);
    if (is_seg_alg(a)) {
        CollSegmentSet* s = rt.ensure_set(c);
        if (s == nullptr) {
            ctx.segments_ok = false;
            a = rt.tuning().select(op, ctx);
        } else {
            *set_out = s;
        }
    }
    return a;
}

/// Per-call bookkeeping: invocation counter, routing counter, a per-(op,
/// algorithm) counter, a trace span and the latency histogram on exit.
class OpCall {
public:
    OpCall(Comm& c, Op op, Alg alg, std::size_t bytes, bool seg)
        : c_(c),
          op_(op),
          alg_(alg),
          t0_(c.proc().now()),
          trace_(c.proc(), std::string(op_name(op)) + ":" + alg_name(alg), "coll",
                 bytes) {
        CollMetrics& m = c.cluster().coll_runtime().metrics();
        m.calls[static_cast<std::size_t>(op)]->inc();
        (seg ? m.seg_ops : m.p2p_ops)->inc();
        c.cluster()
            .metrics()
            .counter(std::string("coll.") + op_name(op) + "." + alg_name(alg))
            .inc();
        // Causal graph: a zero-width entry marker feeds the epoch's
        // latest-entry slot (the straggler everyone else waits for).
        obs::EventGraph& g = c.proc().engine().evgraph();
        if (g.enabled()) {
            CollRuntime& rt = c.cluster().coll_runtime();
            seq_ = rt.next_coll_seq(c.context(), c.rank());
            entry_ev_ = g.node(c.proc().id(), obs::EvCat::proto, "coll:enter",
                               t0_, t0_);
            rt.coll_enter(c.context(), seq_, entry_ev_);
        }
    }
    ~OpCall() {
        CollMetrics& m = c_.cluster().coll_runtime().metrics();
        m.latency[static_cast<std::size_t>(op_)]->record(
            static_cast<std::uint64_t>(c_.proc().now() - t0_));
        obs::EventGraph& g = c_.proc().engine().evgraph();
        if (g.enabled() && entry_ev_ != 0) {
            // Transparent container spanning the whole call; the wait_sync
            // edge from the epoch's latest entry routes early exiters' time
            // to the rank that arrived last.
            const std::uint64_t exit_ev =
                g.node(c_.proc().id(), obs::EvCat::coll,
                       std::string(op_name(op_)) + ":" + alg_name(alg_), t0_,
                       c_.proc().now());
            const std::uint64_t latest = c_.cluster().coll_runtime().coll_exit(
                c_.context(), seq_, c_.size());
            if (latest != 0 && latest != entry_ev_)
                g.edge(latest, exit_ev, obs::EvCat::wait_sync);
        }
    }
    OpCall(const OpCall&) = delete;
    OpCall& operator=(const OpCall&) = delete;

private:
    Comm& c_;
    Op op_;
    Alg alg_;
    SimTime t0_;
    sim::TraceScope trace_;
    std::uint64_t entry_ev_ = 0;
    std::uint64_t seq_ = 0;
};

}  // namespace

void barrier(Comm& c) {
    if (c.size() <= 1) return;
    CollSegmentSet* set = nullptr;
    const Alg a = choose(c, Op::barrier, 0, &set);
    const OpCall call(c, Op::barrier, a, 0, set != nullptr);
    if (a == Alg::flags && set != nullptr)
        set->barrier_flags(c);
    else
        p2p::barrier(c);
}

Status bcast(Comm& c, void* buf, int count, const Datatype& ty, int root) {
    if (c.size() <= 1) return Status::ok();
    Datatype type = ty;
    if (!type.committed()) type.commit(c.cluster().options().cfg);
    const std::size_t bytes = type.size() * static_cast<std::size_t>(count);
    CollSegmentSet* set = nullptr;
    const Alg a = choose(c, Op::bcast, bytes, &set);
    const OpCall call(c, Op::bcast, a, bytes, set != nullptr);
    if (a == Alg::flat) return seg::bcast_flat(c, *set, buf, count, type, root);
    if (a == Alg::binomial)
        return seg::bcast_binomial(c, *set, buf, count, type, root);
    if (a == Alg::scatter_ag)
        return seg::bcast_scatter_ag(c, *set, buf, count, type, root);
    return p2p::bcast(c, buf, count, type, root);
}

Status reduce_sum(Comm& c, const double* in, double* out, int n, int root) {
    if (c.size() <= 1) {
        std::memcpy(out, in, static_cast<std::size_t>(n) * sizeof(double));
        return Status::ok();
    }
    const std::size_t bytes = static_cast<std::size_t>(n) * sizeof(double);
    CollSegmentSet* set = nullptr;
    const Alg a = choose(c, Op::reduce, bytes, &set);
    const OpCall call(c, Op::reduce, a, bytes, set != nullptr);
    if (a == Alg::binomial) return seg::reduce_binomial(c, *set, in, out, n, root);
    return p2p::reduce_sum(c, in, out, n, root);
}

Status allreduce_sum(Comm& c, const double* in, double* out, int n) {
    if (c.size() <= 1) {
        std::memcpy(out, in, static_cast<std::size_t>(n) * sizeof(double));
        return Status::ok();
    }
    const std::size_t bytes = static_cast<std::size_t>(n) * sizeof(double);
    CollSegmentSet* set = nullptr;
    const Alg a = choose(c, Op::allreduce, bytes, &set);
    const OpCall call(c, Op::allreduce, a, bytes, set != nullptr);
    CollMetrics& m = c.cluster().coll_runtime().metrics();
    if (a == Alg::rdouble) {
        if (bytes <= c.cluster().options().cfg.coll_small_allreduce)
            m.small_allreduce->inc();
        return p2p::allreduce_rdouble(c, in, out, n);
    }
    if (a == Alg::ring) return seg::allreduce_ring(c, *set, in, out, n);
    if (a == Alg::reduce_bcast) {
        Status st = seg::reduce_binomial(c, *set, in, out, n, 0);
        if (!st) return st;
        Datatype byte = Datatype::byte_();
        byte.commit(c.cluster().options().cfg);
        return seg::bcast_binomial(c, *set, out, static_cast<int>(bytes), byte, 0);
    }
    // The seed composition, kept as the explicit "p2p" behaviour.
    Status st = p2p::reduce_sum(c, in, out, n, 0);
    if (!st) return st;
    return p2p::bcast(c, out, static_cast<int>(bytes), Datatype::byte_(), 0);
}

Status allgather(Comm& c, const void* in, std::size_t bytes_each, void* out) {
    if (c.size() <= 1) {
        std::memcpy(out, in, bytes_each);
        return Status::ok();
    }
    CollSegmentSet* set = nullptr;
    const Alg a = choose(c, Op::allgather, bytes_each, &set);
    const OpCall call(c, Op::allgather, a, bytes_each, set != nullptr);
    if (a == Alg::ring || a == Alg::flat)
        return seg::allgather_ring(c, *set, in, bytes_each, out);
    return p2p::allgather(c, in, bytes_each, out);
}

Status allgather_typed(Comm& c, const void* in, int count, const Datatype& ty,
                       void* out) {
    Datatype type = ty;
    if (!type.committed()) type.commit(c.cluster().options().cfg);
    const std::size_t bytes = type.size() * static_cast<std::size_t>(count);
    if (c.size() <= 1) {
        // Self-block copy through the canonical stream.
        std::vector<std::byte> tmp(bytes);
        std::size_t pos = 0;
        Status st = c.pack(in, count, type, tmp, &pos);
        if (!st) return st;
        pos = 0;
        return c.unpack(tmp, &pos, out, count, type);
    }
    CollSegmentSet* set = nullptr;
    const Alg a = choose(c, Op::allgather, bytes, &set);
    const OpCall call(c, Op::allgather, a, bytes, set != nullptr);
    if (a == Alg::ring || a == Alg::flat)
        return seg::allgather_flat_typed(c, *set, in, count, type, out);
    return p2p::allgather_typed(c, in, count, type, out);
}

Status gather(Comm& c, const void* in, std::size_t bytes_each, void* out, int root) {
    if (c.size() <= 1) {
        std::memcpy(out, in, bytes_each);
        return Status::ok();
    }
    const OpCall call(c, Op::gather, Alg::p2p, bytes_each, false);
    return p2p::gather(c, in, bytes_each, out, root);
}

Status scatter(Comm& c, const void* in, std::size_t bytes_each, void* out, int root) {
    if (c.size() <= 1) {
        std::memcpy(out, in, bytes_each);
        return Status::ok();
    }
    const OpCall call(c, Op::scatter, Alg::p2p, bytes_each, false);
    return p2p::scatter(c, in, bytes_each, out, root);
}

Status alltoall(Comm& c, const void* in, std::size_t bytes_each, void* out) {
    if (c.size() <= 1) {
        std::memcpy(out, in, bytes_each);
        return Status::ok();
    }
    CollSegmentSet* set = nullptr;
    const Alg a = choose(c, Op::alltoall, bytes_each, &set);
    const OpCall call(c, Op::alltoall, a, bytes_each, set != nullptr);
    if (a == Alg::spread) return seg::alltoall_spread(c, *set, in, bytes_each, out);
    if (a == Alg::pairwise)
        return seg::alltoall_pairwise(c, *set, in, bytes_each, out);
    return p2p::alltoall(c, in, bytes_each, out);
}

}  // namespace scimpi::mpi::coll

// ---- Comm collective methods: thin forwards into the engine ----
namespace scimpi::mpi {

void Comm::barrier() { coll::barrier(*this); }

Status Comm::bcast(void* buf, int count, const Datatype& type, int root) {
    return coll::bcast(*this, buf, count, type, root);
}

Status Comm::reduce_sum(const double* in, double* out, int n, int root) {
    return coll::reduce_sum(*this, in, out, n, root);
}

Status Comm::allreduce_sum(const double* in, double* out, int n) {
    return coll::allreduce_sum(*this, in, out, n);
}

Status Comm::allgather(const void* in, std::size_t bytes_each, void* out) {
    return coll::allgather(*this, in, bytes_each, out);
}

Status Comm::allgather(const void* in, int count, const Datatype& type, void* out) {
    return coll::allgather_typed(*this, in, count, type, out);
}

Status Comm::gather(const void* in, std::size_t bytes_each, void* out, int root) {
    return coll::gather(*this, in, bytes_each, out, root);
}

Status Comm::scatter(const void* in, std::size_t bytes_each, void* out, int root) {
    return coll::scatter(*this, in, bytes_each, out, root);
}

Status Comm::alltoall(const void* in, std::size_t bytes_each, void* out) {
    return coll::alltoall(*this, in, bytes_each, out);
}

}  // namespace scimpi::mpi
