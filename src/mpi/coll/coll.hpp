// The SCI-native collective engine (DESIGN.md §11). Comm's collective
// methods forward here; the engine selects an algorithm (tuning.hpp), lazily
// bootstraps a per-communicator collective segment set (segment_set.hpp) and
// dispatches to the p2p or segment implementation, recording coll.* metrics
// and a trace span per call.
#pragma once

#include <algorithm>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <utility>

#include "common/status.hpp"
#include "mpi/coll/tuning.hpp"
#include "mpi/datatype/datatype.hpp"
#include "obs/metrics.hpp"

namespace scimpi::mpi {
class Cluster;
class Comm;
}  // namespace scimpi::mpi

namespace scimpi::mpi::coll {

class CollSegmentSet;

// Reserved tags (context-scoped, never matched by user ANY_TAG receives).
// The seed p2p algorithms keep their historical tags (-16..-200-s); the
// segment engine claims the -1024 region for stream fallbacks and -1100 for
// barrier tokens.
inline constexpr int kTagBarrier = -16;
inline constexpr int kTagBcast = -32;
inline constexpr int kTagReduce = -48;
inline constexpr int kTagGather = -64;
inline constexpr int kTagRdouble = -300;
inline constexpr int kTagStreamFbk = -1024;  ///< minus the stream slot
inline constexpr int kTagBarrierFbk = -1100; ///< minus the dissemination round

/// Cluster-wide registry slots for the engine, resolved once.
struct CollMetrics {
    obs::Counter* calls[kOps] = {};          ///< per-op invocation counts
    obs::Histogram* latency[kOps] = {};      ///< per-op call latency (ns)
    obs::Counter* seg_ops = nullptr;         ///< calls routed over segments
    obs::Counter* p2p_ops = nullptr;         ///< calls routed over p2p
    obs::Counter* seg_bytes = nullptr;       ///< payload bytes through segments
    obs::Counter* seg_chunks = nullptr;      ///< stream chunks written
    obs::Counter* ff_seg_packs = nullptr;    ///< direct_pack_ff into a segment
    obs::Counter* generic_seg_packs = nullptr;
    obs::Counter* fallbacks = nullptr;       ///< writer-side p2p fallbacks
    obs::Counter* fallback_recvs = nullptr;  ///< transfers finished via p2p
    obs::Counter* ack_drops = nullptr;       ///< reader acks lost to dead links
    obs::Counter* degraded_edges = nullptr;  ///< edges pinned to the p2p path
    obs::Counter* segment_sets = nullptr;    ///< collective segment sets built
    obs::Counter* small_allreduce = nullptr; ///< pinned fast-path hits
};

/// Cluster-owned engine state: the parsed tuning plus the per-communicator
/// segment-set pool. Single simulated-thread discipline: no locking.
class CollRuntime {
public:
    CollRuntime(Cluster& cluster, const std::string& spec);
    ~CollRuntime();
    CollRuntime(const CollRuntime&) = delete;
    CollRuntime& operator=(const CollRuntime&) = delete;

    [[nodiscard]] const Tuning& tuning() const { return tuning_; }
    [[nodiscard]] CollMetrics& metrics() { return cm_; }

    /// The segment set for `comm`'s context, bootstrapping it on first use.
    /// Collective: selection is deterministic, so every member reaches the
    /// first segment-routed op together and synchronizes inside. Returns
    /// null when the set is unusable (arena exhausted on any node).
    CollSegmentSet* ensure_set(Comm& comm);

    /// Destroy every segment set, returning the arena bytes. Called by
    /// Cluster::run after the simulation drains (no processes left).
    void release_sets();

    // ---- causal event graph (obs/evgraph): collective sync epochs ----
    // Every member of a communicator calls collectives in the same order, so
    // the Nth collective on a context is one epoch across all members. The
    // epoch tracks the latest entry event; each member's exit hangs a
    // wait_sync edge off it, giving the critical-path walk a route from an
    // early rank's barrier exit to the straggler that held everyone up.
    /// Per-(context, rank) collective-call sequence number.
    std::uint64_t next_coll_seq(int context, int rank) {
        return coll_seq_[{context, rank}]++;
    }
    /// Record `entry_ev` (a rank's entry node) into epoch (context, seq).
    void coll_enter(int context, std::uint64_t seq, std::uint64_t entry_ev) {
        std::uint64_t& latest = epochs_[{context, seq}].latest_entry;
        latest = std::max(latest, entry_ev);  // node ids are time-ordered
    }
    /// A member left epoch (context, seq): returns the latest entry event so
    /// the caller can add the wait_sync edge; frees the epoch once all
    /// `comm_size` members exited.
    std::uint64_t coll_exit(int context, std::uint64_t seq, int comm_size) {
        const auto key = std::make_pair(context, seq);
        auto it = epochs_.find(key);
        if (it == epochs_.end()) return 0;
        const std::uint64_t latest = it->second.latest_entry;
        if (++it->second.exits >= comm_size) epochs_.erase(it);
        return latest;
    }

private:
    Cluster& cluster_;
    Tuning tuning_;
    CollMetrics cm_;
    std::map<int, std::unique_ptr<CollSegmentSet>> sets_;  // by context id

    struct CollEpoch {
        std::uint64_t latest_entry = 0;
        int exits = 0;
    };
    std::map<std::pair<int, std::uint64_t>, CollEpoch> epochs_;
    std::map<std::pair<int, int>, std::uint64_t> coll_seq_;
};

// ---- engine entry points (called by the Comm methods) ----
void barrier(Comm& c);
Status bcast(Comm& c, void* buf, int count, const Datatype& type, int root);
Status reduce_sum(Comm& c, const double* in, double* out, int n, int root);
Status allreduce_sum(Comm& c, const double* in, double* out, int n);
Status allgather(Comm& c, const void* in, std::size_t bytes_each, void* out);
Status allgather_typed(Comm& c, const void* in, int count, const Datatype& type,
                       void* out);
Status gather(Comm& c, const void* in, std::size_t bytes_each, void* out, int root);
Status scatter(Comm& c, const void* in, std::size_t bytes_each, void* out, int root);
Status alltoall(Comm& c, const void* in, std::size_t bytes_each, void* out);

}  // namespace scimpi::mpi::coll
