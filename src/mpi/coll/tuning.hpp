// Collective algorithm selection (the XHC-style per-size tuning idea applied
// to the SCI segment engine). Every rank evaluates select() with identical
// inputs, so the choice is deterministic and collectively consistent without
// any extra agreement traffic. Overrides come from ClusterOptions::coll /
// SCIMPI_COLL ("p2p", "seg", "auto", or "op=alg" lists).
#pragma once

#include <cstdint>
#include <string>

#include "common/config.hpp"
#include "common/status.hpp"

namespace scimpi::mpi::coll {

enum class Op : std::uint8_t {
    barrier,
    bcast,
    reduce,
    allreduce,
    allgather,
    gather,
    scatter,
    alltoall,
};
inline constexpr int kOps = 8;

enum class Alg : std::uint8_t {
    auto_,         ///< spec placeholder: size/topology-based choice
    p2p,           ///< seed algorithms over the two-sided engine
    flat,          ///< flat-tree remote-write fan-out (bcast, typed allgather)
    binomial,      ///< binomial tree over segments (bcast, reduce)
    ring,          ///< ring over segments (allgather; allreduce reduce-scatter)
    pairwise,      ///< pairwise exchange over segments (alltoall)
    flags,         ///< dissemination on SCI flag words (barrier)
    rdouble,       ///< recursive doubling over p2p (small allreduce)
    reduce_bcast,  ///< segment reduce + segment bcast (medium allreduce)
    scatter_ag,    ///< scatter + ring allgather over segments (large bcast)
    spread,        ///< all pairwise streams at once (alltoall)
};

const char* op_name(Op op);
const char* alg_name(Alg a);

/// Facts the selection consults; identical on every rank of the call.
struct SelectCtx {
    std::size_t bytes = 0;    ///< packed payload per rank
    int comm_size = 1;
    bool segments_ok = false; ///< a usable collective segment set is available
    bool torus = false;
    int procs_per_node = 1;
};

class Tuning {
public:
    /// Parse an override spec (empty = all auto). Errors name the bad token.
    static Result<Tuning> parse(const std::string& spec, const Config& cfg);

    [[nodiscard]] Alg select(Op op, const SelectCtx& c) const;

    /// False under a global "p2p" override: lets the engine skip segment-set
    /// bootstrap entirely.
    [[nodiscard]] bool segments_enabled() const { return seg_allowed_; }

private:
    [[nodiscard]] Alg pick_auto(Op op, const SelectCtx& c) const;

    Alg force_[kOps] = {Alg::auto_, Alg::auto_, Alg::auto_, Alg::auto_,
                        Alg::auto_, Alg::auto_, Alg::auto_, Alg::auto_};
    bool prefer_seg_ = false;  ///< "seg": ignore the minimum-payload threshold
    bool seg_allowed_ = true;
    Config cfg_{};
};

}  // namespace scimpi::mpi::coll
