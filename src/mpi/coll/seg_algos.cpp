// Collective algorithms over a CollSegmentSet: data moves by remote writes
// into the peers' exported collective segments (adapter PIO path) instead of
// through the two-sided protocol. Rank/step conventions mirror the p2p
// family so the two are drop-in replacements for each other.
#include <cstring>
#include <vector>

#include "mpi/coll/algos.hpp"
#include "mpi/coll/segment_set.hpp"
#include "mpi/comm.hpp"
#include "mpi/datatype/pack_ff.hpp"
#include "mpi/datatype/pack_generic.hpp"
#include "sim/trace.hpp"

namespace scimpi::mpi::coll::seg {

namespace {

XferView typed(void* buf, int count, const Datatype& type) {
    return XferView{.data = buf, .count = count, .type = &type};
}
XferView typed(const void* buf, int count, const Datatype& type) {
    return typed(const_cast<void*>(buf), count, type);
}
XferView raw(void* buf) { return XferView{.data = buf}; }
XferView raw(const void* buf) { return XferView{.data = const_cast<void*>(buf)}; }

/// Copy the local contribution into block `block` of the typed allgather
/// result: canonical-pack `in`, then unpack that stream range into the
/// n*count-element view at `out` (what a peer's remote write would do).
Status copy_typed_block(Comm& c, const void* in, int count, const Datatype& type,
                        void* out, int n, int block) {
    const std::size_t be = type.size() * static_cast<std::size_t>(count);
    std::vector<std::byte> tmp(be);
    std::size_t pos = 0;
    const Status st = c.pack(in, count, type, tmp, &pos);
    if (!st) return st;
    const std::size_t spos = static_cast<std::size_t>(block) * be;
    const sim::ProfScope pk(c.proc(), obs::ProfState::pack);
    if (type.is_contiguous()) {
        std::memcpy(static_cast<std::byte*>(out) + spos, tmp.data(), be);
        c.proc().delay(c.rank_state().copy_model().copy_cost(be, {}, {}));
    } else if (c.cluster().options().cfg.use_direct_pack_ff &&
               type.flat().leaf_major_is_canonical()) {
        FFPacker ff(type, n * count, out);
        const PackWork w = ff.unpack(spos, be, tmp.data());
        c.proc().delay(FFPacker::cost(w, c.rank_state().copy_model()));
    } else {
        GenericPacker gp(type, n * count, out);
        const PackWork w = gp.unpack(spos, be, tmp.data());
        c.proc().delay(GenericPacker::cost(w, c.rank_state().copy_model()));
    }
    return Status::ok();
}

}  // namespace

Status bcast_flat(Comm& c, CollSegmentSet& s, void* buf, int count,
                  const Datatype& type, int root) {
    const int n = c.size();
    const std::size_t len = type.size() * static_cast<std::size_t>(count);
    const XferView v = typed(buf, count, type);
    if (c.rank() != root) return s.recv_stream(c, root, 0, v, 0, len);
    // Flat fan-out: the posted-write pipeline overlaps the streams, so the
    // root's injection port is the only serialization point.
    for (int i = 0; i < n; ++i) {
        if (i == root) continue;
        const Status st = s.send_stream(c, i, 0, v, 0, len);
        if (!st) return st;
    }
    return Status::ok();
}

Status bcast_binomial(Comm& c, CollSegmentSet& s, void* buf, int count,
                      const Datatype& type, int root) {
    const int n = c.size();
    const int vr = (c.rank() - root + n) % n;
    const std::size_t len = type.size() * static_cast<std::size_t>(count);
    const XferView v = typed(buf, count, type);
    int mask = 1;
    while (mask < n) {
        if ((vr & mask) != 0) {
            const int parent = ((vr - mask) + root) % n;
            const Status st = s.recv_stream(c, parent, 0, v, 0, len);
            if (!st) return st;
            break;
        }
        mask <<= 1;
    }
    mask >>= 1;
    while (mask > 0) {
        if ((vr & (mask - 1)) == 0 && (vr & mask) == 0 && vr + mask < n) {
            const int child = (vr + mask + root) % n;
            const Status st = s.send_stream(c, child, 0, v, 0, len);
            if (!st) return st;
        }
        mask >>= 1;
    }
    return Status::ok();
}

Status reduce_binomial(Comm& c, CollSegmentSet& s, const double* in, double* out,
                       int n_elems, int root) {
    const int n = c.size();
    const int vr = (c.rank() - root + n) % n;
    const std::size_t bytes = static_cast<std::size_t>(n_elems) * sizeof(double);
    std::vector<double> acc(in, in + n_elems);
    std::vector<double> tmp(static_cast<std::size_t>(n_elems));
    int mask = 1;
    while (mask < n) {
        if ((vr & mask) != 0) {
            const int parent = ((vr - mask) + root) % n;
            const Status st = s.send_stream(c, parent, 0, raw(acc.data()), 0, bytes);
            if (!st) return st;
            break;
        }
        if (vr + mask < n) {
            const int child = (vr + mask + root) % n;
            const Status st = s.recv_stream(c, child, 0, raw(tmp.data()), 0, bytes);
            if (!st) return st;
            c.proc().delay(n_elems);
            for (int i = 0; i < n_elems; ++i)
                acc[static_cast<std::size_t>(i)] += tmp[static_cast<std::size_t>(i)];
        }
        mask <<= 1;
    }
    if (c.rank() == root) std::memcpy(out, acc.data(), bytes);
    return Status::ok();
}

Status allreduce_ring(Comm& c, CollSegmentSet& s, const double* in, double* out,
                      int n_elems) {
    const int n = c.size();
    const int r = c.rank();
    const int to = (r + 1) % n;
    const int from = (r - 1 + n) % n;
    // Element partition: block b covers [off[b], off[b+1]).
    std::vector<std::size_t> off(static_cast<std::size_t>(n) + 1, 0);
    const int per = n_elems / n;
    const int rem = n_elems % n;
    for (int b = 0; b < n; ++b)
        off[static_cast<std::size_t>(b) + 1] =
            off[static_cast<std::size_t>(b)] +
            static_cast<std::size_t>(per + (b < rem ? 1 : 0));
    auto blk_bytes = [&off](int b) {
        return (off[static_cast<std::size_t>(b) + 1] - off[static_cast<std::size_t>(b)]) *
               sizeof(double);
    };
    std::memcpy(out, in, static_cast<std::size_t>(n_elems) * sizeof(double));
    std::vector<double> tmp(static_cast<std::size_t>(per) + 1);
    // Phase 1, reduce-scatter ring: after step t every block has one more
    // contribution; rank r ends up owning the fully reduced block (r+1)%n.
    for (int t = 0; t < n - 1; ++t) {
        const int sb = (r - t + n) % n;
        const int rb = (r - t - 1 + n) % n;
        const Status st = s.xchg_streams(
            c, to, 0, raw(out + off[static_cast<std::size_t>(sb)]), 0, blk_bytes(sb),
            from, 0, raw(tmp.data()), 0, blk_bytes(rb));
        if (!st) return st;
        const int cnt =
            static_cast<int>(blk_bytes(rb) / sizeof(double));
        c.proc().delay(cnt);
        double* dst = out + off[static_cast<std::size_t>(rb)];
        for (int i = 0; i < cnt; ++i) dst[i] += tmp[static_cast<std::size_t>(i)];
    }
    // Phase 2, allgather ring of the owned blocks, straight into `out`.
    for (int t = 0; t < n - 1; ++t) {
        const int sb = (r + 1 - t + n) % n;
        const int rb = (r - t + n) % n;
        const Status st = s.xchg_streams(
            c, to, 0, raw(out + off[static_cast<std::size_t>(sb)]), 0, blk_bytes(sb),
            from, 0, raw(out + off[static_cast<std::size_t>(rb)]), 0, blk_bytes(rb));
        if (!st) return st;
    }
    return Status::ok();
}

Status allgather_ring(Comm& c, CollSegmentSet& s, const void* in,
                      std::size_t bytes_each, void* out) {
    const int n = c.size();
    const int r = c.rank();
    auto* dst = static_cast<std::byte*>(out);
    std::memcpy(dst + static_cast<std::size_t>(r) * bytes_each, in, bytes_each);
    for (int t = 0; t < n - 1; ++t) {
        const int sb = (r - t + n) % n;
        const int rb = (r - t - 1 + n) % n;
        const Status st = s.xchg_streams(
            c, (r + 1) % n, 0, raw(dst + static_cast<std::size_t>(sb) * bytes_each),
            0, bytes_each, (r - 1 + n) % n, 0,
            raw(dst + static_cast<std::size_t>(rb) * bytes_each), 0, bytes_each);
        if (!st) return st;
    }
    return Status::ok();
}

Status allgather_flat_typed(Comm& c, CollSegmentSet& s, const void* in, int count,
                            const Datatype& type, void* out) {
    const int n = c.size();
    const int r = c.rank();
    const std::size_t be = type.size() * static_cast<std::size_t>(count);
    // Pairwise exchange of typed blocks: the send side flattens `in`
    // straight into the peer's segment, the receive side unpacks straight
    // out of its own segment into block `from` of the result — the only
    // staging copy anywhere is the local self-block below.
    Status st = copy_typed_block(c, in, count, type, out, n, r);
    if (!st) return st;
    const XferView rv = typed(out, n * count, type);
    for (int t = 1; t < n; ++t) {
        const int to = (r + t) % n;
        const int from = (r - t + n) % n;
        st = s.xchg_streams(c, to, 0, typed(in, count, type), 0, be, from, 0, rv,
                            static_cast<std::size_t>(from) * be, be);
        if (!st) return st;
    }
    return Status::ok();
}

Status bcast_scatter_ag(Comm& c, CollSegmentSet& s, void* buf, int count,
                        const Datatype& type, int root) {
    const int n = c.size();
    const std::size_t len = type.size() * static_cast<std::size_t>(count);
    const XferView v = typed(buf, count, type);
    // Byte partition of the packed stream into n nearly-equal blocks; the
    // stream views pack/unpack arbitrary byte ranges, so blocks need not
    // align to datatype elements.
    const std::size_t base = len / static_cast<std::size_t>(n);
    const std::size_t rem = len % static_cast<std::size_t>(n);
    auto blk_len = [&](int i) {
        return base + (static_cast<std::size_t>(i) < rem ? 1 : 0);
    };
    auto blk_off = [&](int i) {
        const auto ui = static_cast<std::size_t>(i);
        return ui * base + std::min(ui, rem);
    };
    const int vr = (c.rank() - root + n) % n;  // virtual rank, root first
    auto rk = [&](int vrank) { return (vrank + root) % n; };
    // Phase 1 (van de Geijn): the root scatters block i to virtual rank i,
    // all streams concurrently, moving len bytes through its port once —
    // not once per child like the flat fan-out.
    if (vr == 0) {
        std::vector<CollSegmentSet::StreamOp> sends;
        sends.reserve(static_cast<std::size_t>(n) - 1);
        for (int i = 1; i < n; ++i)
            sends.push_back({.peer = rk(i), .slot = 0, .v = v,
                             .pos = blk_off(i), .len = blk_len(i)});
        const Status st = s.run_streams(c, sends, {});
        if (!st) return st;
    } else {
        const Status st = s.recv_stream(c, root, 0, v, blk_off(vr), blk_len(vr));
        if (!st) return st;
    }
    // Phase 2: ring allgather of the blocks over the virtual-rank ring. The
    // root receives (identical) bytes it already holds, which keeps every
    // stream's schedule uniform.
    for (int t = 1; t < n; ++t) {
        const int sb = (vr - t + 1 + n) % n;
        const int rb = (vr - t + n) % n;
        const Status st =
            s.xchg_streams(c, rk((vr + 1) % n), 0, v, blk_off(sb), blk_len(sb),
                           rk((vr - 1 + n) % n), 0, v, blk_off(rb), blk_len(rb));
        if (!st) return st;
    }
    return Status::ok();
}

Status alltoall_spread(Comm& c, CollSegmentSet& s, const void* in,
                       std::size_t bytes_each, void* out) {
    const int n = c.size();
    const int r = c.rank();
    const auto* src = static_cast<const std::byte*>(in);
    auto* dst = static_cast<std::byte*>(out);
    std::memcpy(dst + static_cast<std::size_t>(r) * bytes_each,
                src + static_cast<std::size_t>(r) * bytes_each, bytes_each);
    // Every pairwise stream posted at once: no step barriers, so per-pair
    // flag/ack latencies overlap and a slow edge delays only its own block.
    // Blocks land at fixed offsets, so the result is byte-identical to the
    // stepwise pairwise schedule.
    std::vector<CollSegmentSet::StreamOp> sends;
    std::vector<CollSegmentSet::StreamOp> recvs;
    sends.reserve(static_cast<std::size_t>(n) - 1);
    recvs.reserve(static_cast<std::size_t>(n) - 1);
    for (int t = 1; t < n; ++t) {
        const int to = (r + t) % n;
        const int from = (r - t + n) % n;
        sends.push_back({.peer = to, .slot = 0,
                         .v = raw(src + static_cast<std::size_t>(to) * bytes_each),
                         .pos = 0, .len = bytes_each});
        recvs.push_back({.peer = from, .slot = 0,
                         .v = raw(dst + static_cast<std::size_t>(from) * bytes_each),
                         .pos = 0, .len = bytes_each});
    }
    return s.run_streams(c, sends, recvs);
}

Status alltoall_pairwise(Comm& c, CollSegmentSet& s, const void* in,
                         std::size_t bytes_each, void* out) {
    const int n = c.size();
    const int r = c.rank();
    const auto* src = static_cast<const std::byte*>(in);
    auto* dst = static_cast<std::byte*>(out);
    std::memcpy(dst + static_cast<std::size_t>(r) * bytes_each,
                src + static_cast<std::size_t>(r) * bytes_each, bytes_each);
    // Same step/peer pairing as the p2p family, so the two paths produce
    // byte-identical results in the same deterministic order.
    for (int t = 1; t < n; ++t) {
        const int to = (r + t) % n;
        const int from = (r - t + n) % n;
        const Status st = s.xchg_streams(
            c, to, 0, raw(src + static_cast<std::size_t>(to) * bytes_each), 0,
            bytes_each, from, 0,
            raw(dst + static_cast<std::size_t>(from) * bytes_each), 0, bytes_each);
        if (!st) return st;
    }
    return Status::ok();
}

}  // namespace scimpi::mpi::coll::seg
