// Persistent per-communicator collective segment set (DESIGN.md §11).
//
// Every member exports two SCI segments from its node arena, once, at the
// first segment-routed collective on the communicator:
//   * a data segment, carved into per-(writer, slot) double-buffered chunk
//     areas that peers write into over the adapter PIO path (watched by
//     scimpi-check when checking is on), and
//   * a control segment of flag words — per-stream ready/ack sequence
//     counters plus the dissemination-barrier rounds — which carries only
//     the synchronization protocol and stays unwatched, exactly like the
//     p2p engine's internal rings.
//
// A transfer is a *stream*: the writer remote-writes chunk `seq` into the
// reader's data area (parity seq&1), store-barriers, publishes `seq` in the
// reader's ready word, store-barriers again and wakes the reader. The reader
// polls its own memory (cheap local reads, the SCI way), consumes the chunk
// and acknowledges by writing `seq` into the writer's ack word. A writer
// reuses a chunk buffer only once `acked >= seq - 2`, which doubles as the
// happens-before edge that makes checked runs race-free. Sequence numbers
// never reset, so buffer-reuse discipline holds across collective calls.
//
// Fault story: writer-side segment failures (chunk/flag writes exhausting
// the fault-retry policy, or ack starvation past the retry budget) divert
// the *remainder* of the transfer into one p2p message tagged per stream;
// the edge is then pinned to the p2p path. Readers never unilaterally give
// up on the flag path — they park with a timeout and probe for the fallback
// message, so a transfer completes on whichever path the writer chose.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <span>
#include <vector>

#include "common/status.hpp"
#include "mpi/datatype/datatype.hpp"
#include "sci/segment.hpp"
#include "sim/sync.hpp"
#include "smi/region.hpp"

namespace scimpi::mpi {
class Cluster;
class Comm;
}  // namespace scimpi::mpi

namespace scimpi::mpi::coll {

struct CollMetrics;

/// One side of a collective transfer in packed-stream terms. `type` null
/// means raw bytes (stream position p maps to `data` + p); otherwise the
/// stream is the canonical packed form of `count` x `type` at `data`, packed
/// with direct_pack_ff straight into the remote segment when order-safe.
struct XferView {
    void* data = nullptr;  ///< treated as const on the send side
    int count = 0;
    const Datatype* type = nullptr;
};

class CollSegmentSet {
public:
    /// Chunk streams per (writer, reader) pair; tree algorithms use
    /// slot = round % kSlots, sequential ring steps alternate slots.
    static constexpr int kSlots = 2;
    static constexpr int kBarrierRounds = 32;

    CollSegmentSet(Cluster& cluster, int comm_size, CollMetrics& cm);
    ~CollSegmentSet();
    CollSegmentSet(const CollSegmentSet&) = delete;
    CollSegmentSet& operator=(const CollSegmentSet&) = delete;

    /// First-use bootstrap (collective): export this member's segments, then
    /// agree over a p2p allgather that every member allocated successfully.
    /// After it returns, usable() is identical on every member.
    void init_member(Comm& comm);
    [[nodiscard]] bool initialized(int local) const {
        return members_[static_cast<std::size_t>(local)].init_done;
    }
    [[nodiscard]] bool usable() const { return usable_; }

    [[nodiscard]] std::size_t chunk() const { return chunk_; }

    /// One direction of a multi-stream pump batch. `peer` is the remote
    /// local rank (writer for recvs, reader for sends); a batch must not
    /// contain two ops on the same (peer, slot, direction) stream.
    struct StreamOp {
        int peer = 0;
        int slot = 0;
        XferView v;
        std::size_t pos = 0;
        std::size_t len = 0;
    };

    // ---- stream transfers (local ranks; blocking, collective-internal) ----
    Status send_stream(Comm& c, int to, int slot, const XferView& v,
                       std::size_t pos, std::size_t len);
    Status recv_stream(Comm& c, int from, int slot, const XferView& v,
                       std::size_t pos, std::size_t len);
    /// Full-duplex send+recv pump (ring/pairwise steps): neither direction
    /// blocks the other, which is what makes >2-chunk ring steps safe.
    Status xchg_streams(Comm& c, int to, int sslot, const XferView& sv,
                        std::size_t spos, std::size_t slen, int from, int rslot,
                        const XferView& rv, std::size_t rpos, std::size_t rlen);
    /// Pump any number of concurrent sends and recvs to completion (the
    /// scatter/spread schedules): every stream progresses independently, so
    /// one slow or degraded edge never stalls the others.
    Status run_streams(Comm& c, std::span<const StreamOp> sends,
                       std::span<const StreamOp> recvs);

    /// Dissemination barrier on the control-segment flag words, degrading
    /// per edge to short p2p tokens (which ride the hardware-reliable
    /// doorbell path) when a flag write fails.
    void barrier_flags(Comm& c);

private:
    struct Stream {
        std::uint64_t sent = 0;   ///< writer: chunks published
        std::uint64_t acked = 0;  ///< writer: ack floor (word or fallback)
        std::uint64_t rcvd = 0;   ///< reader: chunks consumed
    };

    struct Member {
        bool init_done = false;
        bool alloc_ok = false;
        int node = -1;
        sci::SegmentId ctrl_seg;
        sci::SegmentId data_seg;
        std::span<std::byte> ctrl_mem;
        std::span<std::byte> data_mem;
        sim::WaitQueue waiters;              ///< woken by peer flag/ack writes
        std::vector<Stream> tx;              ///< me as writer, [peer*kSlots+slot]
        std::vector<Stream> rx;              ///< me as reader, [peer*kSlots+slot]
        std::vector<std::uint8_t> degraded;  ///< per peer: segment path dead
        std::uint64_t barrier_gen = 0;
        // Imported regions, cached per target member (index == local rank).
        std::vector<std::optional<smi::Region>> ctrl_to;
        std::vector<std::optional<smi::Region>> data_to;
    };

    struct ActiveSend {
        int to = 0;
        int slot = 0;
        XferView v;
        std::size_t pos = 0;       ///< stream offset of the transfer
        std::size_t len = 0;
        std::size_t n_chunks = 0;
        std::size_t next_ci = 0;   ///< next chunk index to publish
        std::uint64_t base = 0;    ///< tx.sent at transfer start
        SimTime stall_since = -1;  ///< ack-wait start (-1: not stalled)
        bool done = false;
    };
    struct ActiveRecv {
        int from = 0;
        int slot = 0;
        XferView v;
        std::size_t pos = 0;
        std::size_t len = 0;
        std::size_t n_chunks = 0;
        std::uint64_t base = 0;    ///< rx.rcvd at transfer start
        bool done = false;
    };

    // Control-word offsets (u64 words) within a member's control segment.
    [[nodiscard]] std::size_t barrier_off(int round) const;
    [[nodiscard]] std::size_t ready_off(int writer, int slot) const;
    [[nodiscard]] std::size_t ack_off(int reader, int slot) const;
    /// Chunk-area offset within a member's data segment.
    [[nodiscard]] std::size_t area_off(int writer, int slot, int parity) const;

    Member& member(int local) { return members_[static_cast<std::size_t>(local)]; }
    smi::Region& ctrl_region(int me, int target);
    smi::Region& data_region(int me, int target);

    /// Read a word of my own control segment (loopback region, charged).
    std::uint64_t read_my_word(Comm& c, std::size_t word_off);
    /// Publish a word in `target`'s control segment: write + store barrier +
    /// host-side wake. Single attempt; adapter-internal retries only.
    Status put_word(Comm& c, int target, std::size_t word_off, std::uint64_t v);
    /// Park until a peer wakes this member or the poll timeout elapses.
    void park(Comm& c);

    // Pump steps; return true when they made progress.
    bool pump_send(Comm& c, ActiveSend& s, Status* st);
    bool pump_recv(Comm& c, ActiveRecv& r, Status* st);
    Status pump_all(Comm& c, std::span<ActiveSend> sends,
                    std::span<ActiveRecv> recvs);

    /// Write chunk `ci` of `s` (data + flag + wake) through the segments.
    Status publish_chunk(Comm& c, ActiveSend& s, std::size_t ci);
    /// Consume chunk `ci` of `r` from my own data segment.
    void consume_chunk(Comm& c, ActiveRecv& r, std::size_t ci);
    /// Divert the rest of `s` (chunks >= ci) into one p2p message.
    Status fallback_send(Comm& c, ActiveSend& s, std::size_t ci);
    /// Absorb a pending fallback message; false if it was stale.
    bool fallback_recv(Comm& c, ActiveRecv& r);

    Cluster& cluster_;
    CollMetrics& cm_;
    int n_;
    std::size_t chunk_ = 0;       ///< 0: data segment would not fit any chunks
    std::size_t ctrl_bytes_ = 0;
    std::size_t data_bytes_ = 0;
    bool usable_ = false;
    bool verdict_known_ = false;  ///< init allgather completed once
    std::vector<Member> members_;
};

}  // namespace scimpi::mpi::coll
