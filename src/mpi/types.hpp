// Shared protocol-level types of the MPI layer.
#pragma once

#include <cstdint>
#include <vector>

#include "common/status.hpp"
#include "common/units.hpp"

namespace scimpi::mpi {

inline constexpr int ANY_SOURCE = -1;
inline constexpr int ANY_TAG = -1;

/// Message envelope carried by every control packet.
struct Envelope {
    int src = -1;          ///< world ranks on the wire
    int dst = -1;
    int context = 0;       ///< communicator context id (0 = world)
    int tag = 0;
    std::uint64_t seq = 0;        ///< per-(src,dst) sequence number
    std::size_t bytes = 0;        ///< payload size
    std::uint64_t type_fp = 0;    ///< sender datatype fingerprint
    bool sender_canonical = true; ///< sender's leaf-major order == type map
    SimTime post_time = 0;        ///< virtual time the send was posted
                                  ///< (post→delivery latency histograms)
    std::uint64_t flow = 0;       ///< trace flow id (0 = tracing disabled)
};

/// How a rendezvous stream is packed on the wire.
enum class PackMode : std::uint8_t {
    canonical,      ///< type-map order (each side picks ff or generic locally)
    ff_leaf_major,  ///< leaf-major order; requires matching fingerprints
};

enum class CtrlKind : std::uint8_t {
    short_msg,    ///< payload inline in the control packet
    eager,        ///< payload deposited in the receiver's eager slot
    eager_credit, ///< receiver returns an eager slot
    rndv_rts,     ///< request to send
    rndv_cts,     ///< receiver grants the ring buffer + pack mode
    rndv_chunk,   ///< sender filled ring chunk `a` with `b` bytes
    rndv_ack,     ///< receiver drained ring chunk `a`
    rndv_fail,    ///< sender exhausted its retry budget; receiver aborts with
                  ///< the Errc carried in `a` and releases its ring
};

struct CtrlMsg {
    CtrlKind kind = CtrlKind::short_msg;
    Envelope env;
    std::uint64_t sender_handle = 0;  ///< sender-side op id (echoed in cts/ack)
    std::uint64_t recv_handle = 0;    ///< receiver-side op id (echoed in chunk)
    std::uint64_t a = 0;              ///< kind-specific scalar (slot / chunk idx)
    std::uint64_t b = 0;              ///< kind-specific scalar (chunk bytes)
    PackMode mode = PackMode::canonical;
    std::vector<std::byte> inline_data;  ///< short payload
    SimTime arrived = 0;  ///< receiver-side arrival stamp (set when the message
                          ///< is parked in the unexpected queue)
    std::uint64_t ev = 0;  ///< causal-graph node the message hangs off: the
                           ///< sender's wire-push node at post_ctrl time,
                           ///< rewritten to the receiver's arrival node by
                           ///< dispatch (0 = event graph disabled)
};

/// Result of a receive operation.
struct RecvResult {
    Status status;
    int source = -1;
    int tag = 0;
    std::size_t bytes = 0;
};

}  // namespace scimpi::mpi
