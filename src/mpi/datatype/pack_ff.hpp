// direct_pack_ff (paper Section 3.3): non-recursive packing driven by the
// flattened ff-stack representation built at commit time.
//
//   * find_position: O(N) + O(D) location of an arbitrary stream offset
//     (N = leaves, D = max stack depth) — partial packs resume anywhere,
//   * copy_split_block: finishes a block cut by the previous chunk,
//   * copy_leaf_basic: two nested loops over simple stack (odometer)
//     operations — no recursive tree traversal.
//
// The packed stream is leaf-major (all replications of leaf 0, then leaf 1,
// ...), instance-major across `count` type instances. The receive side runs
// the same iteration with the copy direction swapped.
#pragma once

#include <functional>

#include "mem/copy_model.hpp"
#include "mpi/datatype/datatype.hpp"
#include "mpi/datatype/pack_generic.hpp"  // PackWork

namespace scimpi::mpi {

class FFPacker {
public:
    /// A view of `count` instances of committed `type` at `userbuf`.
    FFPacker(const Datatype& type, int count, void* userbuf);

    [[nodiscard]] std::size_t total_bytes() const { return total_; }

    /// Drive the ff iteration over packed-stream range [pos, pos+len):
    /// `emit(mem, n)` is called once per (possibly split) basic block in
    /// stream order, where `mem` points into the user buffer.
    PackWork for_range(std::size_t pos, std::size_t len,
                       const std::function<void(std::byte*, std::size_t)>& emit) const;

    /// Gather the range into a contiguous buffer.
    PackWork pack(std::size_t pos, std::size_t len, std::byte* out) const;
    /// Scatter a contiguous buffer back into the user view.
    PackWork unpack(std::size_t pos, std::size_t len, const std::byte* in) const;

    /// Simulated CPU time of an ff pack/unpack performing `work` against
    /// local memory (stack-driven loops; no recursion overhead).
    static SimTime cost(const PackWork& work, const mem::CopyModel& model);

    /// Dominant memory access pattern (for cache-line-waste accounting on
    /// the side that feeds/absorbs a transfer).
    [[nodiscard]] mem::AccessPattern dominant_pattern() const;

    /// Bytes the memory system moves for `work` given the pattern (payload
    /// plus cache-line waste) — the src_traffic for SciAdapter::write.
    [[nodiscard]] std::size_t memory_traffic(std::size_t bytes) const;

private:
    Datatype type_;
    int count_;
    std::byte* user_;
    std::size_t total_;
    std::vector<std::int64_t> leaf_prefix_;  // cumulative payload per leaf
};

}  // namespace scimpi::mpi
