#include "mpi/datatype/flatten.hpp"

#include <algorithm>
#include <limits>

namespace scimpi::mpi {

bool FlatRep::leaf_major_is_canonical() const {
    if (leaves.size() <= 1) return true;
    // If each leaf's full memory span (over one instance) ends before the
    // next leaf's begins, leaf-major equals type-map order.
    std::ptrdiff_t prev_end = std::numeric_limits<std::ptrdiff_t>::min();
    for (const auto& leaf : leaves) {
        std::ptrdiff_t lo = leaf.first_offset;
        std::ptrdiff_t hi = leaf.first_offset + static_cast<std::ptrdiff_t>(leaf.blocklen);
        for (const auto& s : leaf.stack) {
            // The level spans (count-1) strides in either direction.
            const std::ptrdiff_t span = (s.count - 1) * s.extent;
            if (span >= 0)
                hi += span;
            else
                lo += span;
        }
        if (lo < prev_end) return false;
        prev_end = hi;
    }
    return true;
}

std::uint64_t FlatRep::structural_hash() const {
    std::uint64_t h = 0xcbf29ce484222325ull;
    auto mix = [&h](std::uint64_t v) {
        h ^= v;
        h *= 0x100000001b3ull;
    };
    mix(leaves.size());
    for (const auto& leaf : leaves) {
        mix(leaf.blocklen);
        mix(static_cast<std::uint64_t>(leaf.first_offset));
        mix(leaf.stack.size());
        for (const auto& s : leaf.stack) {
            mix(static_cast<std::uint64_t>(s.count));
            mix(static_cast<std::uint64_t>(s.extent));
        }
    }
    return h;
}

void merge_flat(FlatRep& rep) {
    for (auto& leaf : rep.leaves) {
        // Drop count-1 items: they replicate nothing (their offset went
        // into first_offset during flattening).
        std::erase_if(leaf.stack, [](const FFStackItem& s) { return s.count == 1; });
        // Collapse dense innermost replication: stride == blocklen means the
        // blocks of that level form one contiguous run.
        while (!leaf.stack.empty() &&
               leaf.stack.back().extent ==
                   static_cast<std::ptrdiff_t>(leaf.blocklen)) {
            leaf.blocklen *= static_cast<std::size_t>(leaf.stack.back().count);
            leaf.stack.pop_back();
        }
    }
    // Fuse consecutive leaves forming one contiguous run with equal stacks
    // (e.g. struct members lying back to back).
    std::vector<FlatLeaf> fused;
    for (auto& leaf : rep.leaves) {
        if (!fused.empty() && fused.back().stack == leaf.stack &&
            fused.back().first_offset +
                    static_cast<std::ptrdiff_t>(fused.back().blocklen) ==
                leaf.first_offset) {
            fused.back().blocklen += leaf.blocklen;
        } else {
            fused.push_back(std::move(leaf));
        }
    }
    rep.leaves = std::move(fused);
    // The fuse may have made an innermost level dense; run one more pass.
    for (auto& leaf : rep.leaves) {
        while (!leaf.stack.empty() &&
               leaf.stack.back().extent ==
                   static_cast<std::ptrdiff_t>(leaf.blocklen)) {
            leaf.blocklen *= static_cast<std::size_t>(leaf.stack.back().count);
            leaf.stack.pop_back();
        }
    }
    rep.max_depth = 0;
    for (const auto& leaf : rep.leaves)
        rep.max_depth = std::max(rep.max_depth, static_cast<int>(leaf.stack.size()));
    rep.merged = true;
}

}  // namespace scimpi::mpi
