// Flattened datatype representation for the direct_pack_ff algorithm
// (paper Section 3.3, derived from Träff's "flattening on the fly").
//
// A committed datatype becomes a list of leaves; each leaf is a contiguous
// basic block plus a *stack* describing its repeat pattern: one item per
// tree level with a replication count and an extent (stride). The stacks are
// built at commit time and then *merged*: adjacent blocks combine into
// bigger ones and count-1 items are elided (Section 3.3.1).
//
// Packed-stream order is leaf-major, as in the paper's Figure 6 top loop:
// all replications of leaf 0, then all of leaf 1, ... The receiving side
// runs the same iteration with the copy direction swapped.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace scimpi::mpi {

struct FFStackItem {
    std::int64_t count = 1;        ///< replications at this level
    std::ptrdiff_t extent = 0;     ///< byte distance between replications

    friend bool operator==(const FFStackItem&, const FFStackItem&) = default;
};

struct FlatLeaf {
    std::size_t blocklen = 0;        ///< contiguous bytes per block
    std::ptrdiff_t first_offset = 0; ///< offset of the first block
    std::vector<FFStackItem> stack;  ///< outermost..innermost repeat pattern

    /// Total payload bytes this leaf contributes per type instance.
    [[nodiscard]] std::int64_t total_bytes() const {
        std::int64_t t = static_cast<std::int64_t>(blocklen);
        for (const auto& s : stack) t *= s.count;
        return t;
    }
    /// Number of basic blocks per type instance.
    [[nodiscard]] std::int64_t block_count() const {
        std::int64_t n = 1;
        for (const auto& s : stack) n *= s.count;
        return n;
    }

    friend bool operator==(const FlatLeaf&, const FlatLeaf&) = default;
};

struct FlatRep {
    std::vector<FlatLeaf> leaves;
    std::size_t type_size = 0;       ///< payload bytes per instance
    std::ptrdiff_t type_extent = 0;  ///< memory span per instance
    int max_depth = 0;               ///< deepest stack (D in the O(N)+O(D) bound)
    bool merged = false;             ///< merge pass was applied

    /// True if the leaf-major packed order coincides with canonical
    /// type-map order: single leaf, or leaves whose memory regions do not
    /// interleave. Used when only one communication end is non-contiguous.
    [[nodiscard]] bool leaf_major_is_canonical() const;

    /// Structural hash covering blocklens, offsets and stacks.
    [[nodiscard]] std::uint64_t structural_hash() const;
};

/// Merge pass (Section 3.3.1): collapse innermost dense replications into
/// the block length, drop count-1 stack items, and fuse consecutive leaves
/// that form one contiguous run.
void merge_flat(FlatRep& rep);

}  // namespace scimpi::mpi
