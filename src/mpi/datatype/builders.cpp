// Datatype constructors: the MPI-1 type-constructor family. Each builder
// computes size, bounds, depth and the per-instance block/step counts used
// by the packers' cost accounting.
#include <algorithm>
#include <array>
#include <vector>
#include <limits>

#include "mpi/datatype/datatype.hpp"

namespace scimpi::mpi {

const char* type_kind_name(TypeKind k) {
    switch (k) {
        case TypeKind::basic: return "basic";
        case TypeKind::contiguous: return "contiguous";
        case TypeKind::vector: return "vector";
        case TypeKind::hvector: return "hvector";
        case TypeKind::indexed: return "indexed";
        case TypeKind::hindexed: return "hindexed";
        case TypeKind::strukt: return "struct";
        case TypeKind::resized: return "resized";
    }
    return "?";
}

Datatype Datatype::make_basic(std::string name, std::size_t bytes) {
    auto n = std::make_shared<Node>();
    n->kind = TypeKind::basic;
    n->name = std::move(name);
    n->size = bytes;
    n->lb = 0;
    n->ub = static_cast<std::ptrdiff_t>(bytes);
    return Datatype(std::move(n));
}

Datatype Datatype::byte_() { return make_basic("byte", 1); }
Datatype Datatype::char_() { return make_basic("char", 1); }
Datatype Datatype::int32() { return make_basic("int32", 4); }
Datatype Datatype::int64() { return make_basic("int64", 8); }
Datatype Datatype::float32() { return make_basic("float32", 4); }
Datatype Datatype::float64() { return make_basic("float64", 8); }

Datatype Datatype::contiguous(int count, const Datatype& base) {
    SCIMPI_REQUIRE(base.valid(), "contiguous: invalid base type");
    SCIMPI_REQUIRE(count >= 0, "contiguous: negative count");
    auto n = std::make_shared<Node>();
    n->kind = TypeKind::contiguous;
    n->count = count;
    n->children = {base.node_};
    n->size = static_cast<std::size_t>(count) * base.size();
    n->lb = base.lb();
    n->ub = n->lb + static_cast<std::ptrdiff_t>(count) * base.extent();
    n->depth = base.depth() + 1;
    n->blocks = count * base.blocks_per_item();
    n->steps = 1 + count * base.traversal_steps_per_item();
    return Datatype(std::move(n));
}

Datatype Datatype::vector(int count, int blocklen, int stride, const Datatype& base) {
    return hvector(count, blocklen, stride * base.extent(), base);
}

Datatype Datatype::hvector(int count, int blocklen, std::ptrdiff_t stride_bytes,
                           const Datatype& base) {
    SCIMPI_REQUIRE(base.valid(), "hvector: invalid base type");
    SCIMPI_REQUIRE(count >= 0 && blocklen >= 0, "hvector: negative count/blocklen");
    auto n = std::make_shared<Node>();
    n->kind = TypeKind::hvector;
    n->count = count;
    n->blocklen = blocklen;
    n->stride_bytes = stride_bytes;
    n->children = {base.node_};
    n->size = static_cast<std::size_t>(count) * static_cast<std::size_t>(blocklen) *
              base.size();
    // Bounds: extremes occur at the first/last replication and block.
    std::ptrdiff_t lo = 0, hi = 0;
    if (count > 0 && blocklen > 0) {
        lo = std::numeric_limits<std::ptrdiff_t>::max();
        hi = std::numeric_limits<std::ptrdiff_t>::min();
        for (const int i : {0, count - 1})
            for (const int j : {0, blocklen - 1}) {
                const std::ptrdiff_t d = i * stride_bytes + j * base.extent();
                lo = std::min(lo, d + base.lb());
                hi = std::max(hi, d + base.lb() + base.extent());
            }
    }
    n->lb = lo;
    n->ub = hi;
    n->depth = base.depth() + 1;
    n->blocks = static_cast<std::int64_t>(count) * blocklen * base.blocks_per_item();
    n->steps = 1 + static_cast<std::int64_t>(count) * blocklen *
                       base.traversal_steps_per_item();
    return Datatype(std::move(n));
}

Datatype Datatype::indexed(std::span<const int> blocklens, std::span<const int> displs,
                           const Datatype& base) {
    SCIMPI_REQUIRE(blocklens.size() == displs.size(), "indexed: length mismatch");
    std::vector<std::ptrdiff_t> byte_displs(displs.size());
    for (std::size_t i = 0; i < displs.size(); ++i)
        byte_displs[i] = displs[i] * base.extent();
    return hindexed(blocklens, byte_displs, base);
}

Datatype Datatype::hindexed(std::span<const int> blocklens,
                            std::span<const std::ptrdiff_t> displs_bytes,
                            const Datatype& base) {
    SCIMPI_REQUIRE(base.valid(), "hindexed: invalid base type");
    SCIMPI_REQUIRE(blocklens.size() == displs_bytes.size(), "hindexed: length mismatch");
    auto n = std::make_shared<Node>();
    n->kind = TypeKind::hindexed;
    n->blocklens.assign(blocklens.begin(), blocklens.end());
    n->displs.assign(displs_bytes.begin(), displs_bytes.end());
    n->children = {base.node_};
    std::size_t sz = 0;
    std::ptrdiff_t lo = std::numeric_limits<std::ptrdiff_t>::max();
    std::ptrdiff_t hi = std::numeric_limits<std::ptrdiff_t>::min();
    std::int64_t blocks = 0;
    std::int64_t steps = 1;
    for (std::size_t i = 0; i < blocklens.size(); ++i) {
        SCIMPI_REQUIRE(blocklens[i] >= 0, "hindexed: negative blocklen");
        sz += static_cast<std::size_t>(blocklens[i]) * base.size();
        if (blocklens[i] > 0) {
            lo = std::min(lo, displs_bytes[i] + base.lb());
            hi = std::max(hi, displs_bytes[i] + base.lb() +
                                  blocklens[i] * base.extent());
        }
        blocks += blocklens[i] * base.blocks_per_item();
        steps += blocklens[i] * base.traversal_steps_per_item();
    }
    if (lo > hi) lo = hi = 0;  // empty type
    n->size = sz;
    n->lb = lo;
    n->ub = hi;
    n->depth = base.depth() + 1;
    n->blocks = blocks;
    n->steps = steps;
    return Datatype(std::move(n));
}

Datatype Datatype::structure(std::span<const int> blocklens,
                             std::span<const std::ptrdiff_t> displs_bytes,
                             std::span<const Datatype> types) {
    SCIMPI_REQUIRE(blocklens.size() == displs_bytes.size() &&
                       blocklens.size() == types.size(),
                   "struct: length mismatch");
    auto n = std::make_shared<Node>();
    n->kind = TypeKind::strukt;
    n->blocklens.assign(blocklens.begin(), blocklens.end());
    n->displs.assign(displs_bytes.begin(), displs_bytes.end());
    std::size_t sz = 0;
    std::ptrdiff_t lo = std::numeric_limits<std::ptrdiff_t>::max();
    std::ptrdiff_t hi = std::numeric_limits<std::ptrdiff_t>::min();
    std::int64_t blocks = 0;
    std::int64_t steps = 1;
    int depth = 1;
    for (std::size_t i = 0; i < types.size(); ++i) {
        SCIMPI_REQUIRE(types[i].valid(), "struct: invalid member type");
        SCIMPI_REQUIRE(blocklens[i] >= 0, "struct: negative blocklen");
        n->children.push_back(types[i].node_);
        sz += static_cast<std::size_t>(blocklens[i]) * types[i].size();
        if (blocklens[i] > 0) {
            lo = std::min(lo, displs_bytes[i] + types[i].lb());
            hi = std::max(hi, displs_bytes[i] + types[i].lb() +
                                  blocklens[i] * types[i].extent());
        }
        blocks += blocklens[i] * types[i].blocks_per_item();
        steps += blocklens[i] * types[i].traversal_steps_per_item();
        depth = std::max(depth, types[i].depth() + 1);
    }
    if (lo > hi) lo = hi = 0;
    n->size = sz;
    n->lb = lo;
    n->ub = hi;
    n->depth = depth;
    n->blocks = blocks;
    n->steps = steps;
    return Datatype(std::move(n));
}

Datatype Datatype::resized(const Datatype& base, std::ptrdiff_t lb,
                           std::ptrdiff_t extent) {
    SCIMPI_REQUIRE(base.valid(), "resized: invalid base type");
    SCIMPI_REQUIRE(extent >= 0, "resized: negative extent");
    auto n = std::make_shared<Node>();
    n->kind = TypeKind::resized;
    n->children = {base.node_};
    n->size = base.size();
    n->lb = lb;
    n->ub = lb + extent;
    n->depth = base.depth() + 1;
    n->blocks = base.blocks_per_item();
    n->steps = base.traversal_steps_per_item();
    return Datatype(std::move(n));
}


Datatype Datatype::indexed_block(int blocklen, std::span<const int> displs,
                                 const Datatype& base) {
    SCIMPI_REQUIRE(blocklen >= 0, "indexed_block: negative blocklen");
    std::vector<int> lens(displs.size(), blocklen);
    return indexed(lens, displs, base);
}

Datatype Datatype::subarray(std::span<const int> sizes, std::span<const int> subsizes,
                            std::span<const int> starts, const Datatype& base) {
    SCIMPI_REQUIRE(sizes.size() == subsizes.size() && sizes.size() == starts.size(),
                   "subarray: dimension mismatch");
    SCIMPI_REQUIRE(!sizes.empty(), "subarray: needs at least one dimension");
    for (std::size_t d = 0; d < sizes.size(); ++d) {
        SCIMPI_REQUIRE(subsizes[d] >= 0 && starts[d] >= 0, "subarray: negative extent");
        SCIMPI_REQUIRE(starts[d] + subsizes[d] <= sizes[d],
                       "subarray: slab exceeds array bounds");
    }
    // Build from the innermost (fastest-varying, C order) dimension out:
    // a contiguous run of subsizes[n-1], then an hvector per outer dim with
    // the full row pitch of that dimension as the stride.
    const std::size_t n = sizes.size();
    Datatype t = Datatype::contiguous(subsizes[n - 1], base);
    std::ptrdiff_t pitch = sizes[n - 1] * base.extent();  // bytes per row
    for (std::size_t d = n - 1; d-- > 0;) {
        t = Datatype::hvector(subsizes[d], 1, pitch, t);
        pitch *= sizes[d];
    }
    // Place the slab at its start offset and give the type the extent of the
    // full array so consecutive instances tile correctly.
    std::ptrdiff_t offset = 0;
    std::ptrdiff_t dim_pitch = base.extent();
    for (std::size_t d = n; d-- > 0;) {
        offset += starts[d] * dim_pitch;
        dim_pitch *= sizes[d];
    }
    const std::array<int, 1> ones{1};
    const std::array<std::ptrdiff_t, 1> displ{offset};
    const std::array<Datatype, 1> inner{t};
    return resized(structure(ones, displ, inner), 0, dim_pitch);
}

}  // namespace scimpi::mpi
