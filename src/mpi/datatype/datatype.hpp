// MPI derived datatypes: tree representation (Figure 3 of the paper) with
// the full set of MPI-1 type constructors. Committing a type builds its
// flattened ff-stack representation (flatten.hpp) used by direct_pack_ff.
//
// Conventions: displacements and extents are in bytes ("h" constructors) or
// in elements of the base type (vector/indexed), exactly as in MPI.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "common/config.hpp"
#include "common/status.hpp"
#include "mpi/datatype/flatten.hpp"

namespace scimpi::mpi {

enum class TypeKind {
    basic,
    contiguous,
    vector,    // element-strided
    hvector,   // byte-strided
    indexed,   // element displacements
    hindexed,  // byte displacements
    strukt,    // heterogeneous children
    resized,   // lb/extent override
};

const char* type_kind_name(TypeKind k);

class Datatype {
public:
    Datatype() = default;  // invalid handle

    // ---- basic types ----
    static Datatype byte_();
    static Datatype char_();
    static Datatype int32();
    static Datatype int64();
    static Datatype float32();
    static Datatype float64();

    // ---- MPI type constructors ----
    static Datatype contiguous(int count, const Datatype& base);
    static Datatype vector(int count, int blocklen, int stride, const Datatype& base);
    static Datatype hvector(int count, int blocklen, std::ptrdiff_t stride_bytes,
                            const Datatype& base);
    static Datatype indexed(std::span<const int> blocklens, std::span<const int> displs,
                            const Datatype& base);
    static Datatype hindexed(std::span<const int> blocklens,
                             std::span<const std::ptrdiff_t> displs_bytes,
                             const Datatype& base);
    static Datatype structure(std::span<const int> blocklens,
                              std::span<const std::ptrdiff_t> displs_bytes,
                              std::span<const Datatype> types);
    static Datatype resized(const Datatype& base, std::ptrdiff_t lb,
                            std::ptrdiff_t extent);
    /// MPI_Type_create_indexed_block: equal-length blocks at element displs.
    static Datatype indexed_block(int blocklen, std::span<const int> displs,
                                  const Datatype& base);
    /// MPI_Type_create_subarray (C order): an n-dimensional slab out of an
    /// n-dimensional array. sizes/subsizes/starts are in elements of `base`.
    static Datatype subarray(std::span<const int> sizes,
                             std::span<const int> subsizes,
                             std::span<const int> starts, const Datatype& base);

    [[nodiscard]] bool valid() const { return node_ != nullptr; }
    [[nodiscard]] TypeKind kind() const;

    /// Payload bytes per type instance.
    [[nodiscard]] std::size_t size() const;
    /// Memory span per type instance (ub - lb).
    [[nodiscard]] std::ptrdiff_t extent() const;
    [[nodiscard]] std::ptrdiff_t lb() const;
    /// True if one instance is a single dense block (size == extent, lb 0).
    [[nodiscard]] bool is_contiguous() const;
    /// Depth of the constructor tree (basic type = 1).
    [[nodiscard]] int depth() const;
    /// Basic blocks in the type map of one instance.
    [[nodiscard]] std::int64_t blocks_per_item() const;
    /// Tree-node visits a recursive packer performs per instance.
    [[nodiscard]] std::int64_t traversal_steps_per_item() const;

    /// Prepare the type for communication: builds the flattened ff-stack
    /// representation. Idempotent.
    void commit(const Config& cfg = default_config());
    [[nodiscard]] bool committed() const;
    /// Flattened representation; requires committed().
    [[nodiscard]] const FlatRep& flat() const;

    /// Visit the basic blocks of `count` instances at `base` displacement in
    /// canonical type-map order: f(byte_offset, length).
    void for_each_block(std::ptrdiff_t base, int count,
                        const std::function<void(std::ptrdiff_t, std::size_t)>& f) const;

    /// Structural fingerprint of the flattened layout (used by the protocol
    /// layer to decide whether both ends may use leaf-major ff order).
    [[nodiscard]] std::uint64_t fingerprint() const;

    /// Human-readable tree dump (debugging, docs).
    [[nodiscard]] std::string describe() const;

    friend bool operator==(const Datatype& a, const Datatype& b) {
        return a.node_ == b.node_;
    }

private:
    struct Node;
    explicit Datatype(std::shared_ptr<Node> node) : node_(std::move(node)) {}

    struct Node {
        TypeKind kind = TypeKind::basic;
        std::string name;                 // for basic types / describe()
        std::size_t size = 0;             // payload bytes per instance
        std::ptrdiff_t lb = 0;
        std::ptrdiff_t ub = 0;            // extent = ub - lb
        int count = 0;                    // replication (contig/vector)
        int blocklen = 0;                 // vector family
        std::ptrdiff_t stride_bytes = 0;  // vector family
        std::vector<int> blocklens;               // indexed/struct
        std::vector<std::ptrdiff_t> displs;       // bytes, indexed/struct
        std::vector<std::shared_ptr<Node>> children;
        int depth = 1;
        std::int64_t blocks = 1;          // basic blocks per instance
        std::int64_t steps = 1;           // recursive traversal node visits
        std::optional<FlatRep> flat;      // built at commit

        [[nodiscard]] std::ptrdiff_t extent() const { return ub - lb; }
    };

    static Datatype make_basic(std::string name, std::size_t bytes);
    static void walk_blocks(const Node& n, std::ptrdiff_t base,
                            const std::function<void(std::ptrdiff_t, std::size_t)>& f);
    static void flatten_into(const Node& n, std::ptrdiff_t base,
                             std::vector<FFStackItem>& stack, FlatRep& out);
    static void describe_into(const Node& n, int indent, std::string& out);

    std::shared_ptr<Node> node_;
};

}  // namespace scimpi::mpi
