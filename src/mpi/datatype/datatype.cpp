#include "mpi/datatype/datatype.hpp"

#include <algorithm>
#include <limits>

namespace scimpi::mpi {

TypeKind Datatype::kind() const {
    SCIMPI_REQUIRE(valid(), "kind() on invalid datatype");
    return node_->kind;
}

std::size_t Datatype::size() const {
    SCIMPI_REQUIRE(valid(), "size() on invalid datatype");
    return node_->size;
}

std::ptrdiff_t Datatype::extent() const {
    SCIMPI_REQUIRE(valid(), "extent() on invalid datatype");
    return node_->extent();
}

std::ptrdiff_t Datatype::lb() const {
    SCIMPI_REQUIRE(valid(), "lb() on invalid datatype");
    return node_->lb;
}

bool Datatype::is_contiguous() const {
    SCIMPI_REQUIRE(valid(), "is_contiguous() on invalid datatype");
    if (node_->kind == TypeKind::basic) return true;
    return node_->lb == 0 &&
           static_cast<std::size_t>(node_->extent()) == node_->size;
}

int Datatype::depth() const {
    SCIMPI_REQUIRE(valid(), "depth() on invalid datatype");
    return node_->depth;
}

std::int64_t Datatype::blocks_per_item() const {
    SCIMPI_REQUIRE(valid(), "blocks_per_item() on invalid datatype");
    return node_->blocks;
}

std::int64_t Datatype::traversal_steps_per_item() const {
    SCIMPI_REQUIRE(valid(), "traversal_steps_per_item() on invalid datatype");
    return node_->steps;
}

bool Datatype::committed() const { return valid() && node_->flat.has_value(); }

void Datatype::commit(const Config& cfg) {
    SCIMPI_REQUIRE(valid(), "commit() on invalid datatype");
    if (node_->flat.has_value()) return;
    FlatRep rep;
    rep.type_size = node_->size;
    rep.type_extent = node_->extent();
    std::vector<FFStackItem> stack;
    flatten_into(*node_, 0, stack, rep);
    SCIMPI_REQUIRE(stack.empty(), "flatten stack imbalance");
    if (cfg.ff_merge_stacks) {
        merge_flat(rep);
    } else {
        rep.max_depth = 0;
        for (const auto& leaf : rep.leaves)
            rep.max_depth =
                std::max(rep.max_depth, static_cast<int>(leaf.stack.size()));
    }
    node_->flat = std::move(rep);
}

const FlatRep& Datatype::flat() const {
    SCIMPI_REQUIRE(committed(), "flat() requires a committed datatype");
    return *node_->flat;
}

std::uint64_t Datatype::fingerprint() const {
    SCIMPI_REQUIRE(committed(), "fingerprint() requires a committed datatype");
    return node_->flat->structural_hash();
}

void Datatype::flatten_into(const Node& n, std::ptrdiff_t base,
                            std::vector<FFStackItem>& stack, FlatRep& out) {
    switch (n.kind) {
        case TypeKind::basic: {
            FlatLeaf leaf;
            leaf.blocklen = n.size;
            leaf.first_offset = base;
            leaf.stack = stack;
            if (leaf.blocklen > 0) out.leaves.push_back(std::move(leaf));
            return;
        }
        case TypeKind::contiguous: {
            if (n.count == 0) return;
            stack.push_back({n.count, n.children[0]->extent()});
            flatten_into(*n.children[0], base, stack, out);
            stack.pop_back();
            return;
        }
        case TypeKind::vector:
        case TypeKind::hvector: {
            if (n.count == 0 || n.blocklen == 0) return;
            stack.push_back({n.count, n.stride_bytes});
            stack.push_back({n.blocklen, n.children[0]->extent()});
            flatten_into(*n.children[0], base, stack, out);
            stack.pop_back();
            stack.pop_back();
            return;
        }
        case TypeKind::indexed:
        case TypeKind::hindexed: {
            for (std::size_t i = 0; i < n.blocklens.size(); ++i) {
                if (n.blocklens[i] == 0) continue;
                stack.push_back({n.blocklens[i], n.children[0]->extent()});
                flatten_into(*n.children[0], base + n.displs[i], stack, out);
                stack.pop_back();
            }
            return;
        }
        case TypeKind::strukt: {
            for (std::size_t i = 0; i < n.blocklens.size(); ++i) {
                if (n.blocklens[i] == 0) continue;
                stack.push_back({n.blocklens[i], n.children[i]->extent()});
                flatten_into(*n.children[i], base + n.displs[i], stack, out);
                stack.pop_back();
            }
            return;
        }
        case TypeKind::resized: {
            flatten_into(*n.children[0], base, stack, out);
            return;
        }
    }
    panic("flatten_into: unknown type kind");
}

void Datatype::walk_blocks(const Node& n, std::ptrdiff_t base,
                           const std::function<void(std::ptrdiff_t, std::size_t)>& f) {
    switch (n.kind) {
        case TypeKind::basic:
            if (n.size > 0) f(base, n.size);
            return;
        case TypeKind::contiguous: {
            const std::ptrdiff_t ext = n.children[0]->extent();
            for (int i = 0; i < n.count; ++i)
                walk_blocks(*n.children[0], base + i * ext, f);
            return;
        }
        case TypeKind::vector:
        case TypeKind::hvector: {
            const std::ptrdiff_t ext = n.children[0]->extent();
            for (int i = 0; i < n.count; ++i)
                for (int j = 0; j < n.blocklen; ++j)
                    walk_blocks(*n.children[0], base + i * n.stride_bytes + j * ext, f);
            return;
        }
        case TypeKind::indexed:
        case TypeKind::hindexed: {
            const std::ptrdiff_t ext = n.children[0]->extent();
            for (std::size_t i = 0; i < n.blocklens.size(); ++i)
                for (int j = 0; j < n.blocklens[i]; ++j)
                    walk_blocks(*n.children[0], base + n.displs[i] + j * ext, f);
            return;
        }
        case TypeKind::strukt: {
            for (std::size_t i = 0; i < n.blocklens.size(); ++i) {
                const std::ptrdiff_t ext = n.children[i]->extent();
                for (int j = 0; j < n.blocklens[i]; ++j)
                    walk_blocks(*n.children[i], base + n.displs[i] + j * ext, f);
            }
            return;
        }
        case TypeKind::resized:
            walk_blocks(*n.children[0], base, f);
            return;
    }
    panic("walk_blocks: unknown type kind");
}

void Datatype::for_each_block(
    std::ptrdiff_t base, int count,
    const std::function<void(std::ptrdiff_t, std::size_t)>& f) const {
    SCIMPI_REQUIRE(valid(), "for_each_block() on invalid datatype");
    // Coalesce adjacent basic blocks: contiguous runs (e.g. the elements
    // inside one vector block) are one copy for any reasonable packer.
    std::ptrdiff_t pend_off = 0;
    std::size_t pend_len = 0;
    const auto emit = [&](std::ptrdiff_t off, std::size_t len) {
        if (pend_len > 0 && pend_off + static_cast<std::ptrdiff_t>(pend_len) == off) {
            pend_len += len;
            return;
        }
        if (pend_len > 0) f(pend_off, pend_len);
        pend_off = off;
        pend_len = len;
    };
    for (int c = 0; c < count; ++c)
        walk_blocks(*node_, base + c * node_->extent(), emit);
    if (pend_len > 0) f(pend_off, pend_len);
}

void Datatype::describe_into(const Node& n, int indent, std::string& out) {
    out.append(static_cast<std::size_t>(indent) * 2, ' ');
    out += type_kind_name(n.kind);
    if (n.kind == TypeKind::basic) out += "(" + n.name + ")";
    out += " size=" + std::to_string(n.size) +
           " extent=" + std::to_string(n.extent());
    if (n.count > 0) out += " count=" + std::to_string(n.count);
    if (n.blocklen > 0) out += " blocklen=" + std::to_string(n.blocklen);
    if (n.stride_bytes != 0) out += " stride=" + std::to_string(n.stride_bytes);
    out += "\n";
    for (const auto& c : n.children) describe_into(*c, indent + 1, out);
}

std::string Datatype::describe() const {
    SCIMPI_REQUIRE(valid(), "describe() on invalid datatype");
    std::string out;
    describe_into(*node_, 0, out);
    return out;
}

}  // namespace scimpi::mpi
