#include "mpi/datatype/pack_generic.hpp"

#include <algorithm>
#include <cstring>
#include <limits>

namespace scimpi::mpi {

GenericPacker::GenericPacker(const Datatype& type, int count, void* userbuf)
    : type_(type),
      count_(count),
      user_(static_cast<std::byte*>(userbuf)),
      total_(type.size() * static_cast<std::size_t>(count)) {
    SCIMPI_REQUIRE(type.valid(), "GenericPacker: invalid datatype");
    SCIMPI_REQUIRE(count >= 0, "GenericPacker: negative count");
}

template <bool Pack>
PackWork GenericPacker::run(std::size_t pos, std::size_t len, std::byte* stream) const {
    SCIMPI_REQUIRE(pos + len <= total_, "pack range exceeds message");
    PackWork work;
    if (len == 0) return work;
    work.min_block = std::numeric_limits<std::size_t>::max();
    std::size_t cursor = 0;  // position in the packed stream
    const std::size_t end = pos + len;
    type_.for_each_block(0, count_, [&](std::ptrdiff_t mem_off, std::size_t blk) {
        if (cursor >= end || cursor + blk <= pos) {
            cursor += blk;
            return;  // outside the requested range (walker still visits it)
        }
        const std::size_t lo = std::max(cursor, pos);
        const std::size_t hi = std::min(cursor + blk, end);
        const std::size_t n = hi - lo;
        std::byte* mem = user_ + mem_off + static_cast<std::ptrdiff_t>(lo - cursor);
        std::byte* str = stream + (lo - pos);
        if constexpr (Pack)
            std::memcpy(str, mem, n);
        else
            std::memcpy(mem, str, n);
        work.bytes += n;
        ++work.blocks;
        work.min_block = std::min(work.min_block, n);
        work.max_block = std::max(work.max_block, n);
        cursor += blk;
    });
    SCIMPI_REQUIRE(work.bytes == len, "generic pack: type map shorter than range");
    if (work.blocks == 0) work.min_block = 0;
    return work;
}

PackWork GenericPacker::pack(std::size_t pos, std::size_t len, std::byte* out) const {
    return run<true>(pos, len, out);
}

PackWork GenericPacker::unpack(std::size_t pos, std::size_t len,
                               const std::byte* in) const {
    // The walker only writes into user memory; the stream side is read-only.
    return run<false>(pos, len, const_cast<std::byte*>(in));
}

SimTime GenericPacker::cost(const PackWork& work, const mem::CopyModel& model) {
    if (work.bytes == 0) return model.profile().copy_call_overhead;
    const std::size_t avg_block =
        std::max<std::size_t>(1, work.bytes / static_cast<std::size_t>(
                                                  std::max<std::int64_t>(1, work.blocks)));
    // Strided side: blocks of avg_block scattered in memory (stride unknown
    // to the walker; assume sparse, i.e. full line fetches for small blocks).
    const auto pattern = mem::AccessPattern::strided(
        avg_block, std::max<std::size_t>(avg_block * 2, model.profile().cache_line));
    SimTime t = model.copy_cost(work.bytes, pattern, {},
                                static_cast<std::size_t>(work.blocks));
    // Recursive tree descent per basic block (minus the plain loop overhead
    // the copy model already charged).
    t += work.blocks * (model.profile().recursive_pack_overhead -
                        model.profile().per_block_overhead);
    return t;
}

}  // namespace scimpi::mpi
