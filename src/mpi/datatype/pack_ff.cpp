#include "mpi/datatype/pack_ff.hpp"

#include <algorithm>
#include <cstring>
#include <limits>

namespace scimpi::mpi {

namespace {

/// Odometer over one leaf's stack: tracks the block counters and the
/// accumulated memory offset; O(1) amortized advance.
struct LeafCursor {
    const FlatLeaf* leaf = nullptr;
    std::vector<std::int64_t> digits;  // counter per stack level (outer..inner)
    std::ptrdiff_t offset = 0;         // first_offset + sum(digit*extent)
    bool exhausted = false;

    /// Position the cursor on block index `b` (find_position's O(D) step).
    void seek(const FlatLeaf& l, std::int64_t b) {
        leaf = &l;
        digits.assign(l.stack.size(), 0);
        offset = l.first_offset;
        exhausted = false;
        // Decode b as mixed-radix digits, innermost level varying fastest.
        for (std::size_t i = l.stack.size(); i-- > 0;) {
            const auto& s = l.stack[i];
            digits[i] = b % s.count;
            offset += digits[i] * s.extent;
            b /= s.count;
        }
        SCIMPI_REQUIRE(b == 0, "ff seek beyond leaf block count");
    }

    /// Advance to the next block; sets exhausted when the leaf is done.
    void advance() {
        for (std::size_t i = digits.size(); i-- > 0;) {
            const auto& s = leaf->stack[i];
            if (++digits[i] < s.count) {
                offset += s.extent;
                return;
            }
            offset -= (s.count - 1) * s.extent;
            digits[i] = 0;
        }
        exhausted = true;  // all levels rolled over (or stack empty: 1 block)
    }
};

}  // namespace

FFPacker::FFPacker(const Datatype& type, int count, void* userbuf)
    : type_(type),
      count_(count),
      user_(static_cast<std::byte*>(userbuf)),
      total_(type.size() * static_cast<std::size_t>(count)) {
    SCIMPI_REQUIRE(type.committed(), "FFPacker requires a committed datatype");
    SCIMPI_REQUIRE(count >= 0, "FFPacker: negative count");
    const auto& leaves = type.flat().leaves;
    leaf_prefix_.reserve(leaves.size() + 1);
    leaf_prefix_.push_back(0);
    for (const auto& leaf : leaves)
        leaf_prefix_.push_back(leaf_prefix_.back() + leaf.total_bytes());
    SCIMPI_REQUIRE(static_cast<std::size_t>(leaf_prefix_.back()) == type.size(),
                   "flattened size mismatch");
}

PackWork FFPacker::for_range(
    std::size_t pos, std::size_t len,
    const std::function<void(std::byte*, std::size_t)>& emit) const {
    SCIMPI_REQUIRE(pos + len <= total_, "ff range exceeds message");
    PackWork work;
    if (len == 0) return work;
    work.min_block = std::numeric_limits<std::size_t>::max();

    const FlatRep& flat = type_.flat();
    const std::size_t tsize = flat.type_size;

    // ---- find_position: locate instance, leaf, block and split offset ----
    std::size_t inst = pos / tsize;
    std::size_t off_in_inst = pos % tsize;
    std::size_t li = 0;  // leaf index: O(N) scan of the prefix table
    while (static_cast<std::int64_t>(off_in_inst) >= leaf_prefix_[li + 1]) ++li;
    std::size_t off_in_leaf =
        off_in_inst - static_cast<std::size_t>(leaf_prefix_[li]);
    const FlatLeaf* leaf = &flat.leaves[li];
    std::size_t split = off_in_leaf % leaf->blocklen;  // copy_split_block
    LeafCursor cur;
    cur.seek(*leaf, static_cast<std::int64_t>(off_in_leaf / leaf->blocklen));

    std::ptrdiff_t inst_base =
        static_cast<std::ptrdiff_t>(inst) * flat.type_extent;
    std::size_t remaining = len;

    // ---- top-level loop (paper Figure 6) ----
    while (remaining > 0) {
        const std::size_t n = std::min(leaf->blocklen - split, remaining);
        emit(user_ + inst_base + cur.offset + static_cast<std::ptrdiff_t>(split), n);
        work.bytes += n;
        ++work.blocks;
        work.min_block = std::min(work.min_block, n);
        work.max_block = std::max(work.max_block, n);
        remaining -= n;
        split = 0;
        cur.advance();
        if (cur.exhausted) {
            // leaf = leaf->next; wrap to the next instance after the last.
            if (++li >= flat.leaves.size()) {
                li = 0;
                ++inst;
                inst_base += flat.type_extent;
            }
            leaf = &flat.leaves[li];
            cur.seek(*leaf, 0);
        }
    }
    return work;
}

PackWork FFPacker::pack(std::size_t pos, std::size_t len, std::byte* out) const {
    std::byte* dst = out;
    return for_range(pos, len, [&dst](std::byte* mem, std::size_t n) {
        std::memcpy(dst, mem, n);
        dst += n;
    });
}

PackWork FFPacker::unpack(std::size_t pos, std::size_t len, const std::byte* in) const {
    const std::byte* src = in;
    return for_range(pos, len, [&src](std::byte* mem, std::size_t n) {
        std::memcpy(mem, src, n);
        src += n;
    });
}

SimTime FFPacker::cost(const PackWork& work, const mem::CopyModel& model) {
    if (work.bytes == 0) return model.profile().copy_call_overhead;
    const std::size_t avg_block =
        std::max<std::size_t>(1, work.bytes / static_cast<std::size_t>(
                                                  std::max<std::int64_t>(1, work.blocks)));
    const auto pattern = mem::AccessPattern::strided(
        avg_block, std::max<std::size_t>(avg_block * 2, model.profile().cache_line));
    return model.copy_cost(work.bytes, pattern, {},
                           static_cast<std::size_t>(work.blocks));
}

mem::AccessPattern FFPacker::dominant_pattern() const {
    const FlatRep& flat = type_.flat();
    // Use the leaf contributing the most payload.
    const FlatLeaf* best = nullptr;
    std::int64_t best_bytes = -1;
    for (const auto& leaf : flat.leaves) {
        if (leaf.total_bytes() > best_bytes) {
            best_bytes = leaf.total_bytes();
            best = &leaf;
        }
    }
    if (best == nullptr || best->stack.empty())
        return mem::AccessPattern::contig();
    const auto stride = static_cast<std::size_t>(
        std::max<std::ptrdiff_t>(std::abs(best->stack.back().extent),
                                 static_cast<std::ptrdiff_t>(best->blocklen)));
    return mem::AccessPattern::strided(best->blocklen, stride);
}

std::size_t FFPacker::memory_traffic(std::size_t bytes) const {
    // Line-waste estimate with the reference line size; the protocol layer
    // passes the result to the adapter, whose host profile set the line.
    const mem::CopyModel model{mem::MachineProfile{}};
    return model.traffic_bytes(bytes, dominant_pattern());
}

}  // namespace scimpi::mpi
