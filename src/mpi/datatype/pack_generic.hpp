// Generic pack/unpack: the MPICH-style recursive datatype walker
// (Figure 4 top). Packs in canonical type-map order; every basic block costs
// a recursive tree descent, which is precisely the overhead direct_pack_ff
// removes. Supports partial operations by stream offset (it re-walks the
// type map and skips, as generic MPICH segment code does).
#pragma once

#include <cstddef>

#include "common/units.hpp"
#include "mem/copy_model.hpp"
#include "mpi/datatype/datatype.hpp"

namespace scimpi::mpi {

/// Work metrics of one pack/unpack invocation, for the cost model.
struct PackWork {
    std::size_t bytes = 0;        ///< payload moved
    std::int64_t blocks = 0;      ///< basic blocks touched
    std::size_t min_block = 0;    ///< smallest block touched (0 if none)
    std::size_t max_block = 0;    ///< largest block touched
};

class GenericPacker {
public:
    /// A view of `count` instances of `type` at `userbuf`. The type does not
    /// need to be committed (generic MPICH walks the raw tree).
    GenericPacker(const Datatype& type, int count, void* userbuf);

    [[nodiscard]] std::size_t total_bytes() const { return total_; }

    /// Copy packed-stream range [pos, pos+len) into `out`.
    PackWork pack(std::size_t pos, std::size_t len, std::byte* out) const;

    /// Scatter packed-stream range [pos, pos+len) from `in` into the view.
    PackWork unpack(std::size_t pos, std::size_t len, const std::byte* in) const;

    /// Simulated CPU time of a generic pack/unpack performing `work`,
    /// including the recursive walker overhead per block.
    static SimTime cost(const PackWork& work, const mem::CopyModel& model);

private:
    template <bool Pack>
    PackWork run(std::size_t pos, std::size_t len, std::byte* stream) const;

    Datatype type_;
    int count_;
    std::byte* user_;
    std::size_t total_;
};

}  // namespace scimpi::mpi
