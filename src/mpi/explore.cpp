#include "mpi/explore.hpp"

#include <algorithm>
#include <cstdio>
#include <optional>
#include <utility>

#include "common/status.hpp"

namespace scimpi::mpi {

ExploreClusterResult explore_cluster(const ClusterOptions& base,
                                     const std::function<void(Comm&)>& rank_main) {
    SCIMPI_REQUIRE(base.schedule == nullptr,
                   "explore_cluster: base options already carry a controller");
    ExploreClusterResult out;

    // Cross-schedule registry: explore.* counters survive the per-schedule
    // Clusters (each of which has its own registry).
    obs::MetricsRegistry metrics;
    metrics.enable(true);

    check::ExploreOptions xopt;
    xopt.max_schedules = base.explore.max_schedules;
    xopt.max_depth = base.explore.max_depth;
    xopt.fuzz = base.explore.fuzz;
    xopt.dpor = base.explore.dpor;
    xopt.metrics = &metrics;
    xopt.progress = stderr;

    // Captures the stats snapshot of the most recent violating schedule; the
    // final value comes from the verification replay below, so it always
    // matches the minimized trace.
    std::optional<obs::RunReport> finding_report;

    const check::RunFn run = [&](sim::ScheduleController& ctrl) {
        ClusterOptions o = base;
        o.check = true;
        o.schedule = &ctrl;
        o.explore.enabled = false;
        check::RunOutcome ro;
        Cluster cl(o);
        cl.run(rank_main);  // Panic propagates; the explorer records it
        check::Checker* ck = cl.checker();
        if (ck != nullptr && !ck->violations().empty()) {
            ro.violation = true;
            ro.report = ck->report_string();
            ro.signature = ck->signature();
            finding_report = cl.stats_report();
        }
        return ro;
    };

    out.result = check::explore(run, xopt);
    check::ExploreResult& r = out.result;

    std::string trace_file;
    if (r.found && !base.explore.trace_file.empty()) {
        trace_file = base.explore.trace_file;
        const Status st = r.trace.save(trace_file);
        if (!st.is_ok()) {
            std::fprintf(stderr, "explore: %s\n", st.to_string().c_str());
            trace_file.clear();
        }
    }

    if (r.found) {
        // Verification replay of the minimized schedule through the plain
        // replay path — the same code SCIMPI_EXPLORE_REPLAY uses — so the
        // reported repro artifact is known-good before anyone ships it.
        sim::ReplayController rc(r.trace);
        const check::RunOutcome ro = [&] {
            try {
                return run(rc);
            } catch (const Panic& p) {
                check::RunOutcome o;
                o.deadlock = true;
                o.report = std::string(p.what()) + "\n";
                o.signature = std::string("panic:") + p.what();
                return o;
            }
        }();
        out.replay_report = ro.report;
        out.replay_matches = ro.report == r.finding.report;
    }

    if (finding_report.has_value()) out.report = std::move(*finding_report);
    obs::RunReport::ExploreSummary& xs = out.report.explore;
    xs.enabled = true;
    xs.found = r.found;
    xs.exhausted = r.exhausted;
    xs.schedules = r.schedules;
    xs.replays = r.replays;
    xs.pruned = r.pruned;
    xs.choice_points = r.choice_points;
    xs.trace_decisions = r.trace.decisions.size();
    xs.fuzz_ns = static_cast<std::uint64_t>(xopt.fuzz);
    xs.wall_seconds = r.wall_seconds;
    xs.schedules_per_sec =
        r.wall_seconds > 0 ? static_cast<double>(r.schedules) / r.wall_seconds : 0.0;
    xs.trace_file = trace_file;

    // Fold the cross-schedule explore.* counters into the report so stats
    // consumers see them alongside the finding run's own counters.
    for (auto& [name, value] : metrics.counters())
        out.report.counters.emplace_back(name, value);
    std::sort(out.report.counters.begin(), out.report.counters.end());
    return out;
}

}  // namespace scimpi::mpi
