// The public communicator API of the library: the C++ face of the MPI
// subset (point-to-point, collectives, special memory, simulated wall
// clock). One-sided communication lives in mpi/rma/window.hpp and is
// created through Comm::win_create / Comm::alloc_mem.
#pragma once

#include <memory>
#include <span>
#include <vector>

#include "mpi/datatype/datatype.hpp"
#include "mpi/rank.hpp"
#include "mpi/req/request.hpp"
#include "mpi/runtime.hpp"

namespace scimpi::mpi {

class Win;

/// A communicator's group: its context id and its members as world ranks
/// (index in `members` == rank within the communicator).
struct CommGroup {
    int context = 0;
    std::vector<int> members;
};

/// Non-blocking operation handle (see mpi/req/request.hpp): unifies sends,
/// receives, persistent requests, and nonblocking collectives.
using Request = req::Request;

class Comm {
public:
    /// The world communicator.
    Comm(Cluster& cluster, Rank& rank);
    /// A sub-communicator (see split()).
    Comm(Cluster& cluster, Rank& rank, std::shared_ptr<const CommGroup> group);

    /// Rank within this communicator.
    [[nodiscard]] int rank() const { return local_rank_; }
    [[nodiscard]] int size() const { return static_cast<int>(group_->members.size()); }
    [[nodiscard]] int node() const { return rank_->node(); }
    /// World rank of communicator-local `local`.
    [[nodiscard]] int world_rank(int local) const {
        return group_->members.at(static_cast<std::size_t>(local));
    }
    [[nodiscard]] int context() const { return group_->context; }
    /// Communicator-local rank of a world rank (-1 if not a member).
    [[nodiscard]] int local_of_world(int world) const {
        for (std::size_t i = 0; i < group_->members.size(); ++i)
            if (group_->members[i] == world) return static_cast<int>(i);
        return -1;
    }

    /// MPI_Comm_split: collective; ranks with equal `color` form a new
    /// communicator, ordered by (key, world rank). Matching in the new
    /// communicator is isolated by a fresh context id.
    Comm split(int color, int key);
    [[nodiscard]] Cluster& cluster() { return *cluster_; }
    [[nodiscard]] Rank& rank_state() { return *rank_; }
    [[nodiscard]] sim::Process& proc() { return rank_->proc(); }

    /// Simulated seconds (MPI_Wtime).
    [[nodiscard]] double wtime() const { return cluster_->wtime(); }

    // ---- point-to-point (tags must be >= 0; negative tags are internal) ----
    Status send(const void* buf, int count, const Datatype& type, int dst, int tag);
    RecvResult recv(void* buf, int count, const Datatype& type, int src, int tag);
    Request isend(const void* buf, int count, const Datatype& type, int dst, int tag);
    Request irecv(void* buf, int count, const Datatype& type, int src, int tag);
    Status wait(Request& req);
    Status wait_all(std::span<Request> reqs);
    /// MPI_Test: true (and the sticky status in *st) once `req` completed.
    bool test(Request& req, Status* st = nullptr);
    /// MPI_Waitany: block until any active request completes; returns its
    /// index, or -1 when none is active.
    int wait_any(std::span<Request> reqs);
    /// MPI_Testsome: indices of requests completed without blocking.
    std::vector<int> test_some(std::span<Request> reqs);
    /// Envelope of a completed receive request (source is communicator-
    /// local, like recv()).
    [[nodiscard]] RecvResult recv_result(const Request& req) const;

    // ---- persistent requests (MPI_Send_init / MPI_Recv_init) ----
    Request send_init(const void* buf, int count, const Datatype& type, int dst,
                      int tag);
    Request recv_init(void* buf, int count, const Datatype& type, int src, int tag);
    void start(Request& req);
    void start_all(std::span<Request> reqs);

    // ---- nonblocking collectives (req/nbc.hpp schedules; byte-oriented
    // like allgather(in, bytes_each, out); complete via wait/test) ----
    Request ibarrier();
    Request ibcast(void* buf, std::size_t bytes, int root);
    Request iallreduce_sum(const double* in, double* out, int n);
    Request iallgather(const void* in, std::size_t bytes_each, void* out);

    /// Combined send+receive (no deadlock regardless of ordering).
    Status sendrecv(const void* sbuf, int scount, const Datatype& stype, int dst,
                    int stag, void* rbuf, int rcount, const Datatype& rtype, int src,
                    int rtag);
    /// MPI_Sendrecv_replace: the received data overwrites `buf`.
    Status sendrecv_replace(void* buf, int count, const Datatype& type, int dst,
                            int stag, int src, int rtag);

    /// MPI_Probe: block until a matching message is pending; its envelope is
    /// returned without receiving the message.
    RecvResult probe(int src, int tag);
    /// MPI_Iprobe: non-blocking variant; true if a message is pending.
    bool iprobe(int src, int tag, RecvResult* out = nullptr);

    // ---- explicit packing (MPI_Pack / MPI_Unpack) ----
    [[nodiscard]] std::size_t pack_size(int count, const Datatype& type) const {
        return type.size() * static_cast<std::size_t>(count);
    }
    /// Append `count` x `type` from `inbuf` to `outbuf` at `*position`.
    Status pack(const void* inbuf, int count, const Datatype& type,
                std::span<std::byte> outbuf, std::size_t* position);
    /// Extract `count` x `type` from `inbuf` at `*position` into `outbuf`.
    Status unpack(std::span<const std::byte> inbuf, std::size_t* position,
                  void* outbuf, int count, const Datatype& type);

    // ---- collectives (src/mpi/coll/; SCIMPI_COLL selects algorithms) ----
    void barrier();
    Status bcast(void* buf, int count, const Datatype& type, int root);
    Status reduce_sum(const double* in, double* out, int n, int root);
    Status allreduce_sum(const double* in, double* out, int n);
    Status allgather(const void* in, std::size_t bytes_each, void* out);
    /// Typed allgather (MPI_Allgather): every rank contributes `count` x
    /// `type`; block i of `out` receives rank i's contribution. Non-
    /// contiguous types flow through the canonical packed stream (flattened
    /// straight into the collective segments when order-safe).
    Status allgather(const void* in, int count, const Datatype& type, void* out);
    Status gather(const void* in, std::size_t bytes_each, void* out, int root);
    Status scatter(const void* in, std::size_t bytes_each, void* out, int root);
    Status alltoall(const void* in, std::size_t bytes_each, void* out);

    // ---- special memory (MPI_Alloc_mem: SCI-shareable) ----
    Result<std::span<std::byte>> alloc_mem(std::size_t bytes);
    Status free_mem(std::span<std::byte> mem);
    /// True if `p` lies in this rank's node arena (directly remotely
    /// accessible, the precondition for the direct one-sided path).
    [[nodiscard]] bool is_shared_mem(const void* p) const;

    // ---- one-sided (MPI-2); see mpi/rma/window.hpp ----
    /// Collective: every rank contributes `base[0..size)`.
    std::shared_ptr<Win> win_create(void* base, std::size_t size);

private:
    friend class Win;
    Cluster* cluster_;
    Rank* rank_;
    std::shared_ptr<const CommGroup> group_;
    int local_rank_ = -1;
};

}  // namespace scimpi::mpi
