// Cluster: owns the whole simulated machine (engine, fabric, node memories,
// adapters, ranks) and launches rank main functions as simulated processes.
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "check/checker.hpp"
#include "common/config.hpp"
#include "fault/controller.hpp"
#include "fault/monitor.hpp"
#include "mem/machine_profile.hpp"
#include "mem/node_memory.hpp"
#include "mpi/rank.hpp"
#include "obs/metrics.hpp"
#include "obs/recorder.hpp"
#include "sci/dma.hpp"
#include "sci/fabric.hpp"
#include "sci/segment.hpp"
#include "sim/dispatcher.hpp"
#include "sim/engine.hpp"
#include "sim/schedule.hpp"

namespace scimpi::mpi {

class Comm;

namespace coll {
class CollRuntime;
}

struct ClusterOptions {
    int nodes = 2;
    int procs_per_node = 1;
    Config cfg = default_config();
    sci::SciParams sci{};
    mem::MachineProfile host = mem::pentium3_800();
    std::size_t arena_bytes = 32_MiB;
    /// 0 = single ringlet; torus_w > 0 = 2D torus of torus_w x
    /// (nodes/torus_w); torus_w and torus_h > 0 = 3D torus of
    /// torus_w x torus_h x (nodes/(torus_w*torus_h)).
    int torus_w = 0;
    int torus_h = 0;
    /// Observability. collect_stats enables the metrics registry (also
    /// forced on by SCIMPI_STATS=1 or a stats_file). stats_file / trace_file
    /// are dumped at Cluster teardown (env: SCIMPI_STATS_FILE,
    /// SCIMPI_TRACE_FILE; a trace file auto-enables the tracer).
    bool collect_stats = false;
    std::string stats_file;
    std::string trace_file;
    /// Per-rank time-attribution profiling (obs/profiler.hpp); exported in
    /// stats_report() / the stats file. Also forced on by SCIMPI_PROFILE=1.
    bool profile = false;
    /// Flight-recorder sampling cadence in simulated ns; 0 disables the
    /// recorder. Also settable via SCIMPI_RECORD (accepts ns/us/ms/s
    /// suffixes, e.g. "10us"; the option wins when both are given). Sampled
    /// series land in RunReport::timeseries and, when tracing, as
    /// Chrome-trace counter tracks.
    SimTime record = 0;
    /// Causal event log (obs/evgraph.hpp): a non-empty path enables the
    /// per-run event graph and dumps it as JSONL at teardown — including on
    /// abort paths, where the writer still terminates the stream with a
    /// valid trailer so scimpi-analyze can read truncated runs. Env:
    /// SCIMPI_EVLOG. Enabling the graph also adds the critical_path section
    /// to stats_report() (RunReport schema v5) and, when tracing, a
    /// "critical path" overlay track in the Chrome trace.
    std::string evlog;
    /// Node cap for the event graph (0 = default, 4M nodes); recording stops
    /// (drop counter in the trailer) once reached. Env: SCIMPI_EVLOG_CAP.
    std::size_t evlog_cap = 0;
    /// scimpi-check: happens-before race and epoch-discipline checking for
    /// one-sided communication (src/check/checker.hpp). Also forced on by
    /// SCIMPI_CHECK=1. Checked runs are bit-identical to unchecked ones.
    bool check = false;
    /// Asynchronous progress: spawn one daemon process per rank that drains
    /// the control inbox and pumps the request engine, so nonblocking
    /// operations advance while rank code computes (the overlap the req/
    /// engine measures). Also forced on by SCIMPI_ASYNC=1. Off, progress
    /// only happens inside blocking MPI calls, as in classic single-threaded
    /// MPICH.
    bool async_progress = false;
    /// Fault injection: a programmatic schedule and/or a text spec file
    /// (see src/fault/schedule.hpp for the format; env: SCIMPI_FAULTS).
    /// A non-empty schedule spawns a FaultController alongside the ranks.
    fault::FaultSchedule faults;
    std::string fault_spec_file;
    /// Collective algorithm override (src/mpi/coll/tuning.hpp): empty means
    /// size/topology-based auto selection; "p2p"/"seg" force one path
    /// globally; "bcast=flat,alltoall=p2p" overrides per operation. Also
    /// settable via SCIMPI_COLL (the option wins when both are given).
    std::string coll;
    /// External schedule controller (sim/schedule.hpp), installed on the
    /// engine for the run's lifetime. The explorer drives one fresh Cluster
    /// per candidate schedule through this; when set by the caller, the
    /// checker's stderr report at teardown is suppressed (the explorer owns
    /// reporting). SCIMPI_EXPLORE_REPLAY=<trace file> loads a decision trace
    /// emitted by exploration and replays that exact schedule (the report is
    /// printed normally in that case).
    sim::ScheduleController* schedule = nullptr;
    /// Schedule-space exploration (check/explorer.hpp, driven through
    /// mpi::explore_cluster). The Cluster itself only folds the env toggles
    /// into this spec; front ends (race_demo --explore) read it back and run
    /// the explorer around fresh Clusters.
    struct ExploreSpec {
        bool enabled = false;                ///< SCIMPI_EXPLORE=1
        std::uint64_t max_schedules = 256;   ///< SCIMPI_EXPLORE_BUDGET
        std::uint64_t max_depth = 4096;      ///< SCIMPI_EXPLORE_DEPTH
        SimTime fuzz = 2000;                 ///< SCIMPI_EXPLORE_FUZZ (10us style)
        bool dpor = true;                    ///< SCIMPI_EXPLORE_NAIVE=1 disables
        std::string trace_file;              ///< SCIMPI_EXPLORE_TRACE
    };
    ExploreSpec explore;
};

class Cluster {
public:
    explicit Cluster(ClusterOptions opt);
    ~Cluster();
    Cluster(const Cluster&) = delete;
    Cluster& operator=(const Cluster&) = delete;

    /// Spawn all world ranks running `rank_main` and run the simulation to
    /// completion. An implicit finalize barrier runs after rank_main.
    void run(const std::function<void(Comm&)>& rank_main);

    [[nodiscard]] int world_size() const { return static_cast<int>(ranks_.size()); }
    [[nodiscard]] int node_of(int rank) const { return rank / opt_.procs_per_node; }

    [[nodiscard]] const ClusterOptions& options() const { return opt_; }
    sim::Engine& engine() { return engine_; }
    sim::Dispatcher& dispatcher() { return dispatcher_; }
    sci::Fabric& fabric() { return fabric_; }
    sci::SegmentDirectory& directory() { return directory_; }
    mem::NodeMemory& memory(int node) { return *memories_.at(static_cast<std::size_t>(node)); }
    sci::SciAdapter& adapter(int node) { return *adapters_.at(static_cast<std::size_t>(node)); }
    Rank& rank_state(int r) { return *ranks_.at(static_cast<std::size_t>(r)); }

    /// Simulated seconds since simulation start.
    [[nodiscard]] double wtime() const { return to_seconds(engine_.now()); }

    /// The cluster-wide counter/gauge registry (see src/obs/metrics.hpp).
    [[nodiscard]] obs::MetricsRegistry& metrics() { return metrics_; }

    /// The flight recorder (see src/obs/recorder.hpp); inert unless
    /// ClusterOptions::record / SCIMPI_RECORD set a sampling cadence.
    [[nodiscard]] obs::Recorder& recorder() { return recorder_; }

    /// Write the stats/trace files configured for this run (idempotent).
    /// Runs automatically at destruction *and* on abort paths out of run()
    /// (panic, deadlock, rndv_fail teardown), so a failed run still leaves
    /// usable telemetry on disk.
    void flush_telemetry();

    /// Fault-injection controller; null when the run has no fault schedule.
    [[nodiscard]] fault::FaultController* fault_controller() { return faults_.get(); }
    /// Connection monitor; null unless Config::monitor_period > 0. The MPI
    /// layer consults it to fail fast on peers declared dead.
    [[nodiscard]] fault::ConnectionMonitor* monitor() { return monitor_.get(); }

    /// scimpi-check happens-before checker; null unless the run enabled
    /// checking. Callers cache the pointer: a disabled hook is one null test.
    [[nodiscard]] check::Checker* checker() { return checker_.get(); }

    /// Collective engine state: tuning decisions plus the per-communicator
    /// segment-set pool (src/mpi/coll/). Always present.
    [[nodiscard]] coll::CollRuntime& coll_runtime() { return *coll_; }

    /// Structured snapshot of the run: every registry counter/gauge plus the
    /// per-link wire statistics. Valid any time; typically taken after run().
    [[nodiscard]] obs::RunReport stats_report() const;

private:
    void init_recorder();

    ClusterOptions opt_;
    obs::MetricsRegistry metrics_;
    obs::Recorder recorder_;
    bool telemetry_flushed_ = false;
    sim::Engine engine_;
    sim::Dispatcher dispatcher_;
    sci::Fabric fabric_;
    sci::SegmentDirectory directory_;
    std::vector<std::unique_ptr<mem::NodeMemory>> memories_;
    std::vector<std::unique_ptr<sci::SciAdapter>> adapters_;
    std::vector<std::unique_ptr<Rank>> ranks_;
    std::unique_ptr<fault::FaultController> faults_;
    std::unique_ptr<fault::ConnectionMonitor> monitor_;
    std::unique_ptr<check::Checker> checker_;
    std::unique_ptr<sim::ReplayController> replay_;  ///< SCIMPI_EXPLORE_REPLAY
    bool external_schedule_ = false;  ///< caller-installed controller (explorer)
    std::unique_ptr<coll::CollRuntime> coll_;  // destroyed before the directory
};

}  // namespace scimpi::mpi
