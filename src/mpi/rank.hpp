// Per-rank protocol state: matching queues, protocol engines and the
// progress loop. Internal to the library; applications use mpi::Comm.
//
// Protocols (SCI-MPICH style):
//   * short  — payload inline in the control packet (<= short_threshold),
//   * eager  — payload pushed into the receiver's eager buffers, flow
//     controlled by per-pair credits (<= eager_threshold),
//   * rendezvous — RTS/CTS handshake, then the sender packs chunks directly
//     into a ring buffer in the receiver's memory (2 chunks, double
//     buffered). With direct_pack_ff the sender gathers non-contiguous
//     blocks straight into the remote chunk (Figure 4 bottom); the generic
//     path stages through a local pack buffer (Figure 4 top).
//
// Wire pack-order negotiation (beyond the paper, which pairs ff with ff
// implicitly): the CTS grants ff_leaf_major only when both fingerprints
// match; otherwise the stream is canonical and each side independently uses
// ff when its own leaf-major order is canonical, falling back to the
// generic walker otherwise.
#pragma once

#include <deque>
#include <functional>
#include <memory>
#include <optional>
#include <unordered_map>

#include "mpi/datatype/pack_ff.hpp"
#include "mpi/datatype/pack_generic.hpp"
#include "mpi/req/table.hpp"
#include "mpi/types.hpp"
#include "obs/metrics.hpp"
#include "sci/adapter.hpp"
#include "smi/region.hpp"
#include "sim/sync.hpp"

namespace scimpi::mpi {

class Cluster;
class RmaState;

namespace req {
class Engine;
}

struct SendOp {
    std::uint64_t handle = 0;
    Envelope env;
    const void* buf = nullptr;
    int count = 0;
    Datatype type;
    bool complete = false;
    Status status;
    // rendezvous state
    bool cts_received = false;
    bool aborted = false;  ///< retry budget exhausted; drain acks, send no more
    std::uint64_t recv_handle = 0;
    std::optional<sci::SciMapping> ring;  ///< imported receiver ring
    PackMode mode = PackMode::canonical;
    std::size_t next_pos = 0;      ///< packed-stream position already sent
    int credits = 0;               ///< free ring chunks
    int acks_pending = 0;          ///< chunks sent but not yet acknowledged
    std::uint64_t next_chunk = 0;  ///< ring chunk index to fill next
    std::uint64_t check_id = 0;    ///< scimpi-check pending-buffer entry
    std::uint64_t ev_done = 0;     ///< causal-graph completion node (wait edges)
};

struct RecvOp {
    std::uint64_t handle = 0;
    void* buf = nullptr;
    int count = 0;
    Datatype type;
    int src_filter = ANY_SOURCE;
    int tag_filter = ANY_TAG;
    int context = 0;
    bool matched = false;
    bool complete = false;
    Envelope env;  ///< valid once matched
    Status status;
    std::size_t received = 0;
    PackMode mode = PackMode::canonical;
    std::uint64_t sender_handle = 0;
    SimTime post_time = 0;  ///< when the receive was posted (wait-state analysis)
    // Per-transfer rendezvous ring (2 chunks in this rank's node arena),
    // allocated at RTS time and released at completion.
    std::span<std::byte> ring_mem;
    sci::SegmentId ring_seg;
    std::uint64_t check_id = 0;  ///< scimpi-check pending-buffer entry
    std::uint64_t ev_done = 0;   ///< causal-graph completion node (wait edges)
};

class Rank {
public:
    Rank(Cluster& cluster, int rank, int node);
    ~Rank();

    [[nodiscard]] int rank() const { return rank_; }
    [[nodiscard]] int node() const { return node_; }
    [[nodiscard]] Cluster& cluster() { return cluster_; }
    [[nodiscard]] sci::SciAdapter& adapter();
    [[nodiscard]] const mem::CopyModel& copy_model() const { return copy_model_; }

    void bind(sim::Process& proc) { proc_ = &proc; }
    [[nodiscard]] sim::Process& proc() {
        SCIMPI_REQUIRE(proc_ != nullptr, "rank not bound to a process");
        return *proc_;
    }

    /// The process currently executing this rank's protocol code: the async
    /// progress daemon while it dispatches on the rank's behalf, otherwise
    /// the rank's own process. Protocol-path delays must charge the
    /// executing process, so daemon-driven progress does not consume the
    /// application's timeline (that is what buys communication overlap).
    [[nodiscard]] sim::Process& cur_proc();

    // ---- p2p (src/dst are world ranks; context separates communicators) ----
    std::shared_ptr<SendOp> isend(const void* buf, int count, const Datatype& type,
                                  int dst, int tag, int context = 0);
    std::shared_ptr<RecvOp> irecv(void* buf, int count, const Datatype& type,
                                  int src, int tag, int context = 0);
    Status send(const void* buf, int count, const Datatype& type, int dst, int tag,
                int context = 0);
    RecvResult recv(void* buf, int count, const Datatype& type, int src, int tag,
                    int context = 0);
    void wait(SendOp& op);
    void wait(RecvOp& op);

    /// Record a transparent wait node [w0, now] on the calling track when
    /// time actually passed, with a scheduling edge from the completion
    /// event `release` that ended the wait (0 = unknown). Transparent nodes
    /// carry no blame of their own; the critical-path walk chains through
    /// them to the delay's originator.
    void note_wait(sim::Process& self, SimTime w0, std::uint64_t release,
                   const char* name);

    /// Probe for a pending message matching (src, tag) without receiving
    /// it. Blocking variant waits until one arrives.
    std::optional<Envelope> probe(int src, int tag, bool blocking, int context = 0);

    /// Drive the progress engine: handle exactly one incoming control
    /// message (blocking).
    void progress_one();
    /// Handle all currently queued control messages without blocking.
    /// No-op while the async-progress daemon is active (it is the sole
    /// dispatcher then; a second driver would re-enter dispatch).
    void progress_poll();
    /// Block until progress was made: with the async daemon active, park
    /// until it signals; otherwise handle one control message directly.
    void progress_wait();
    /// Body of the per-rank async-progress daemon (ClusterOptions::
    /// async_progress): drains the inbox and pumps the request engine on
    /// behalf of the rank, waking parked progress_wait() callers.
    void progress_daemon_body(sim::Process& p);

    /// Per-rank request engine (mpi/req), created on first use.
    [[nodiscard]] req::Engine& requests();

    /// Delayed-delivery entry point used by peers (via the dispatcher).
    sim::Mailbox<CtrlMsg>& inbox() { return inbox_; }

    /// Aggregate protocol statistics.
    struct Stats {
        std::uint64_t sends_short = 0, sends_eager = 0, sends_rndv = 0;
        std::uint64_t bytes_sent = 0, bytes_received = 0;
        std::uint64_t unexpected = 0;
        std::uint64_t ff_packs = 0, generic_packs = 0;
        std::uint64_t send_retries = 0, send_recoveries = 0, send_giveups = 0;
    };
    [[nodiscard]] const Stats& stats() const { return stats_; }

    /// Outstanding-request depths (flight-recorder probes): sends/recvs
    /// started but not yet complete, plus queued unexpected/posted entries.
    /// Backed by the request table (req::OpTable), the single source of
    /// truth for in-flight protocol operations.
    [[nodiscard]] std::size_t live_send_count() const { return ops_.send_count(); }
    [[nodiscard]] std::size_t live_recv_count() const { return ops_.recv_count(); }
    [[nodiscard]] std::size_t unexpected_count() const { return unexpected_.size(); }
    [[nodiscard]] std::size_t posted_count() const { return posted_.size(); }

    /// Context-id allocation for Comm::split (collectively synchronized).
    [[nodiscard]] int peek_next_context() const { return next_context_; }
    void set_next_context(int c) { next_context_ = c; }

    /// One-sided communication state (created by Cluster; see mpi/rma).
    [[nodiscard]] RmaState& rma() {
        SCIMPI_REQUIRE(rma_ != nullptr, "RMA state not initialised");
        return *rma_;
    }
    void set_rma(std::unique_ptr<RmaState> rma);

private:
    friend class Cluster;

    /// Size the per-peer tables once the world size is known.
    void init_world(int world_size);

    // Control-plane helpers. post_ctrl returns the causal-graph node of the
    // wire push (0 when the event graph is disabled) so short/eager sends
    // can use it as their completion event.
    std::uint64_t post_ctrl(int dst, CtrlMsg msg);
    void dispatch(CtrlMsg msg);
    void start_send(SendOp& op);
    void pump_rndv(SendOp& op);
    /// Run `attempt` under the cluster's backoff policy (fault/retry.hpp),
    /// charging the mpi.send_retries / _recoveries / _giveups counters.
    Status retry_remote(int peer_node, const std::function<Status()>& attempt);
    /// Give up on a rendezvous send: record `st`, stop pumping and tell the
    /// receiver (rndv_fail) so it completes with the error and frees its ring.
    void abort_rndv(SendOp& op, const Status& st);
    void handle_rts(RecvOp& op, const CtrlMsg& rts);
    void handle_chunk(RecvOp& op, const CtrlMsg& chunk);
    void deliver_inline(RecvOp& op, const CtrlMsg& msg);
    bool try_match(RecvOp& op);
    static bool matches(const RecvOp& op, const Envelope& env);

    // Wire-side cost of pushing `bytes` to rank `dst` outside a mapped
    // segment path (short/eager payloads).
    void charge_stream_to(int dst, std::size_t bytes, std::size_t src_traffic);

    /// Pack `len` stream bytes starting at `pos` into the remote ring chunk.
    /// Returns the adapter status; callers retry on link_failure.
    Status pack_into_ring(SendOp& op, const sci::SciMapping& ring,
                          std::size_t ring_off, std::size_t pos, std::size_t len);
    /// Unpack `len` stream bytes from the local ring chunk into the user buffer.
    void unpack_from_ring(RecvOp& op, std::span<std::byte> chunk, std::size_t pos,
                          std::size_t len);

    [[nodiscard]] bool use_ff_side(const Datatype& type, PackMode mode,
                                   bool fp_match) const;

    Cluster& cluster_;
    int rank_;
    int node_;
    sim::Process* proc_ = nullptr;
    mem::CopyModel copy_model_;

    sim::Mailbox<CtrlMsg> inbox_;
    std::deque<std::shared_ptr<RecvOp>> posted_;
    std::deque<CtrlMsg> unexpected_;
    req::OpTable ops_;  ///< in-flight sends/recvs, keyed by handle

    // Eager flow control: credits per destination rank.
    std::vector<int> eager_credits_;
    sim::WaitQueue credit_waiters_;
    /// Arrival node of the last eager credit per peer: the release event a
    /// credit-starved sender's wait node hangs off (late-receiver blame).
    std::vector<std::uint64_t> last_credit_ev_;

    // Async progress (ClusterOptions::async_progress / SCIMPI_ASYNC).
    sim::Process* daemon_proc_ = nullptr;  ///< non-null once the daemon runs
    sim::WaitQueue progress_waiters_;

    std::unique_ptr<req::Engine> req_;  ///< lazily created (see requests())

    int next_context_ = 1;  ///< allocator for Comm::split (see comm.cpp)
    std::vector<std::uint64_t> send_seq_;  // per destination

    Stats stats_;

    /// Cluster-wide registry counters, resolved once at construction; all
    /// ranks share the same slots so values aggregate across the world.
    struct ProtoMetrics {
        obs::Counter* sends_short = nullptr;
        obs::Counter* sends_eager = nullptr;
        obs::Counter* sends_rndv = nullptr;
        obs::Counter* bytes_short = nullptr;
        obs::Counter* bytes_eager = nullptr;
        obs::Counter* bytes_rndv = nullptr;
        obs::Counter* unexpected = nullptr;
        obs::Counter* ff_packs = nullptr;
        obs::Counter* generic_packs = nullptr;
        obs::Counter* ff_direct_writes = nullptr;
        obs::Counter* ff_direct_blocks = nullptr;
        obs::Counter* ff_direct_bytes = nullptr;
        obs::Counter* generic_staged_bytes = nullptr;
        obs::Counter* send_retries = nullptr;
        obs::Counter* send_recoveries = nullptr;
        obs::Counter* send_giveups = nullptr;
        obs::Histogram* lat_short = nullptr;
        obs::Histogram* lat_eager = nullptr;
        obs::Histogram* lat_rndv = nullptr;
        obs::Histogram* ff_throughput = nullptr;
    };
    ProtoMetrics pm_;

    std::unique_ptr<RmaState> rma_;
};

}  // namespace scimpi::mpi
