// Rank protocol engine: matching, short/eager/rendezvous, progress loop.
#include <algorithm>
#include <cstring>

#include "fault/retry.hpp"
#include "mpi/comm.hpp"
#include "mpi/rank.hpp"
#include "mpi/req/request.hpp"
#include "mpi/rma/window.hpp"
#include "mpi/runtime.hpp"
#include "obs/evgraph.hpp"
#include "sim/trace.hpp"

namespace scimpi::mpi {

namespace {
constexpr SimTime kLocalCtrlIssue = 120;      // ns: write a flag in local shm
constexpr SimTime kLocalCtrlDelivery = 250;   // ns: peer poll detects it
constexpr SimTime kRemotePollDetect = 600;    // ns on top of the pipeline latency

/// Causal-graph node labels per control-message kind.
const char* ctrl_name(CtrlKind k) {
    switch (k) {
        case CtrlKind::short_msg: return "ctrl:short";
        case CtrlKind::eager: return "ctrl:eager";
        case CtrlKind::eager_credit: return "ctrl:credit";
        case CtrlKind::rndv_rts: return "ctrl:rts";
        case CtrlKind::rndv_cts: return "ctrl:cts";
        case CtrlKind::rndv_chunk: return "ctrl:chunk";
        case CtrlKind::rndv_ack: return "ctrl:ack";
        case CtrlKind::rndv_fail: return "ctrl:fail";
    }
    return "ctrl:?";
}
}  // namespace

Rank::Rank(Cluster& cluster, int rank, int node)
    : cluster_(cluster), rank_(rank), node_(node), copy_model_(cluster.options().host) {
    obs::MetricsRegistry& m = cluster.metrics();
    pm_.sends_short = &m.counter("mpi.sends_short");
    pm_.sends_eager = &m.counter("mpi.sends_eager");
    pm_.sends_rndv = &m.counter("mpi.sends_rndv");
    pm_.bytes_short = &m.counter("mpi.bytes_short");
    pm_.bytes_eager = &m.counter("mpi.bytes_eager");
    pm_.bytes_rndv = &m.counter("mpi.bytes_rndv");
    pm_.unexpected = &m.counter("mpi.unexpected_msgs");
    pm_.ff_packs = &m.counter("pack.ff_packs");
    pm_.generic_packs = &m.counter("pack.generic_packs");
    pm_.ff_direct_writes = &m.counter("pack.ff_direct_writes");
    pm_.ff_direct_blocks = &m.counter("pack.ff_direct_blocks");
    pm_.ff_direct_bytes = &m.counter("pack.ff_direct_bytes");
    pm_.generic_staged_bytes = &m.counter("pack.generic_staged_bytes");
    pm_.send_retries = &m.counter("mpi.send_retries");
    pm_.send_recoveries = &m.counter("mpi.send_recoveries");
    pm_.send_giveups = &m.counter("mpi.send_giveups");
    pm_.lat_short = &m.histogram("mpi.latency_short_ns");
    pm_.lat_eager = &m.histogram("mpi.latency_eager_ns");
    pm_.lat_rndv = &m.histogram("mpi.latency_rndv_ns");
    pm_.ff_throughput = &m.histogram("pack.ff_throughput_mibs");
}

Rank::~Rank() = default;

sci::SciAdapter& Rank::adapter() { return cluster_.adapter(node_); }

sim::Process& Rank::cur_proc() {
    sim::Process* cur = proc().engine().current();
    return cur != nullptr ? *cur : proc();
}

void Rank::set_rma(std::unique_ptr<RmaState> rma) { rma_ = std::move(rma); }

bool Rank::matches(const RecvOp& op, const Envelope& env) {
    if (op.context != env.context) return false;
    if (op.src_filter != ANY_SOURCE && op.src_filter != env.src) return false;
    if (op.tag_filter == ANY_TAG) return env.tag >= 0;  // wildcards never match
                                                        // internal (negative) tags
    return op.tag_filter == env.tag;
}

// ---------------------------------------------------------------------------
// Control plane
// ---------------------------------------------------------------------------

std::uint64_t Rank::post_ctrl(int dst, CtrlMsg msg) {
    sim::Process& self = cur_proc();
    Rank& peer = cluster_.rank_state(dst);
    const auto& p = cluster_.fabric().params();
    const SimTime push_t0 = self.now();
    SimTime delivery;
    if (peer.node() == node_) {
        self.delay(kLocalCtrlIssue);
        delivery = kLocalCtrlDelivery;
    } else {
        // Doorbell word plus any inline payload, pushed by PIO.
        const sim::ProfScope io(self, obs::ProfState::pio_write);
        self.delay(p.txn_overhead + p.stream_restart);
        if (!msg.inline_data.empty())
            self.delay(adapter().pio_stream_cost(msg.inline_data.size()));
        cluster_.fabric().account(node_, peer.node(), msg.inline_data.size() + 32);
        delivery = p.write_latency + kRemotePollDetect;
    }
    obs::EventGraph& g = self.engine().evgraph();
    if (g.enabled())
        msg.ev = g.node(self.id(),
                        peer.node() == node_ ? obs::EvCat::proto : obs::EvCat::pio,
                        ctrl_name(msg.kind), push_t0, self.now(),
                        msg.inline_data.size());
    const std::uint64_t push_ev = msg.ev;
    auto* inbox = &peer.inbox();
    cluster_.dispatcher().after(delivery, [inbox, m = std::move(msg)]() mutable {
        inbox->send(std::move(m));
    });
    return push_ev;
}

void Rank::progress_one() {
    sim::Process& self = cur_proc();
    std::optional<CtrlMsg> msg;
    {
        // Time blocked here is "waiting for a control message" regardless of
        // which caller spun the progress engine.
        const sim::ProfScope wait(self, obs::ProfState::wait_recv);
        msg = inbox_.recv(self);
    }
    dispatch(std::move(*msg));
}

std::optional<Envelope> Rank::probe(int src, int tag, bool blocking, int context) {
    RecvOp matcher;
    matcher.src_filter = src;
    matcher.tag_filter = tag;
    matcher.context = context;
    for (;;) {
        progress_poll();
        for (const CtrlMsg& msg : unexpected_)
            if (matches(matcher, msg.env)) return msg.env;
        if (!blocking) return std::nullopt;
        progress_wait();  // wait for the next arrival, then rescan
    }
}

void Rank::progress_poll() {
    if (daemon_proc_ != nullptr && proc().engine().current() != daemon_proc_)
        return;  // the daemon is the sole dispatcher
    while (auto msg = inbox_.try_recv()) dispatch(std::move(*msg));
}

void Rank::progress_wait() {
    // With the async daemon running, everyone but the daemon itself parks
    // until the daemon dispatched something on this rank's behalf. The
    // daemon (e.g. driving a schedule's eager send that ran out of credits)
    // remains the sole inbox dispatcher and makes progress directly.
    if (daemon_proc_ != nullptr && proc().engine().current() != daemon_proc_) {
        sim::Process& self = cur_proc();
        const sim::ProfScope wait(self, obs::ProfState::wait_recv);
        progress_waiters_.park(self, "async progress");
        return;
    }
    progress_one();
}

void Rank::progress_daemon_body(sim::Process& p) {
    daemon_proc_ = &p;
    for (;;) {
        // Parked here between arrivals; unwound by the engine at teardown
        // (daemon processes do not trip deadlock detection).
        CtrlMsg msg = inbox_.recv(p);
        dispatch(std::move(msg));
        while (auto more = inbox_.try_recv()) dispatch(std::move(*more));
        // Completions may unblock nonblocking-collective schedules; advance
        // them on the daemon's timeline, then let waiters re-examine.
        if (req_ != nullptr) req_->pump();
        progress_waiters_.wake_all();
    }
}

void Rank::dispatch(CtrlMsg msg) {
    // Arrival node on whichever track dispatches (rank or daemon). The gap
    // back to the sender's push node is the wire: a link edge carrying the
    // SCI node pair when the hop crossed the fabric, a scheduling edge for
    // same-node shm delivery. msg.ev is rewritten so later handling (even
    // after a stay in the unexpected queue) hangs off the arrival.
    {
        sim::Process& self = cur_proc();
        obs::EventGraph& g = self.engine().evgraph();
        if (g.enabled() && msg.ev != 0) {
            const std::uint64_t arr =
                g.node(self.id(), obs::EvCat::proto, ctrl_name(msg.kind),
                       self.now(), self.now(), msg.inline_data.size());
            const int from_node =
                msg.env.src >= 0 ? cluster_.rank_state(msg.env.src).node() : -1;
            if (from_node >= 0 && from_node != node_)
                g.edge(msg.ev, arr, obs::EvCat::link, from_node, node_);
            else
                g.edge(msg.ev, arr, obs::EvCat::sched);
            msg.ev = arr;
        }
    }
    switch (msg.kind) {
        case CtrlKind::short_msg:
        case CtrlKind::eager:
        case CtrlKind::rndv_rts: {
            // Try to match a posted receive (in post order).
            for (auto it = posted_.begin(); it != posted_.end(); ++it) {
                if (!matches(**it, msg.env)) continue;
                auto op = *it;
                posted_.erase(it);
                op->matched = true;
                op->env = msg.env;
                // The receive was already posted when the data arrived:
                // classic late-sender pattern (user messages only).
                obs::Profiler& prof = proc().engine().profiler();
                if (prof.enabled() && msg.env.tag >= 0)
                    prof.late_sender(proc().id(), proc().now() - op->post_time);
                if (msg.kind == CtrlKind::rndv_rts)
                    handle_rts(*op, msg);
                else
                    deliver_inline(*op, msg);
                return;
            }
            ++stats_.unexpected;
            pm_.unexpected->inc();
            msg.arrived = proc().now();
            unexpected_.push_back(std::move(msg));
            return;
        }
        case CtrlKind::eager_credit: {
            ++eager_credits_[static_cast<std::size_t>(msg.env.src)];
            last_credit_ev_[static_cast<std::size_t>(msg.env.src)] = msg.ev;
            credit_waiters_.wake_all();
            return;
        }
        case CtrlKind::rndv_cts: {
            const std::shared_ptr<SendOp> sp = ops_.send(msg.sender_handle);
            SCIMPI_REQUIRE(sp != nullptr, "CTS for unknown send");
            SendOp& op = *sp;
            op.cts_received = true;
            op.recv_handle = msg.recv_handle;
            op.mode = msg.mode;
            op.credits = static_cast<int>(msg.b);
            const sci::SegmentId seg{static_cast<int>(msg.a >> 32),
                                     static_cast<int>(msg.a & 0xffffffffu)};
            auto m = cluster_.directory().import(node_, seg);
            SCIMPI_REQUIRE(m.is_ok(), "rendezvous ring import failed");
            op.ring = m.value();
            pump_rndv(op);
            return;
        }
        case CtrlKind::rndv_ack: {
            const std::shared_ptr<SendOp> sp = ops_.send(msg.sender_handle);
            SCIMPI_REQUIRE(sp != nullptr, "ack for unknown send");
            SendOp& op = *sp;
            ++op.credits;
            --op.acks_pending;
            pump_rndv(op);
            return;
        }
        case CtrlKind::rndv_chunk: {
            const std::shared_ptr<RecvOp> rp = ops_.recv(msg.recv_handle);
            SCIMPI_REQUIRE(rp != nullptr, "chunk for unknown recv");
            handle_chunk(*rp, msg);
            return;
        }
        case CtrlKind::rndv_fail: {
            // Sender gave up mid-rendezvous: complete the receive with its
            // error and release the ring so nothing leaks or hangs.
            const std::shared_ptr<RecvOp> rp = ops_.recv(msg.recv_handle);
            if (rp == nullptr) return;  // raced with completion
            RecvOp& op = *rp;
            // Terminate the message's flow arrow here: the abort is where the
            // transfer's story ends on the timeline.
            if (op.env.flow != 0)
                proc().engine().tracer().flow_end(proc().id(), "msg", "p2p",
                                                  proc().now(), op.env.flow);
            op.status = Status::error(static_cast<Errc>(msg.a),
                                      "sender aborted rendezvous from rank " +
                                          std::to_string(msg.env.src));
            if (!op.ring_mem.empty()) {
                SCIMPI_REQUIRE(cluster_.directory().destroy(op.ring_seg).is_ok(),
                               "ring segment release failed");
                SCIMPI_REQUIRE(cluster_.memory(node_).free(op.ring_mem).is_ok(),
                               "ring memory release failed");
                op.ring_mem = {};
            }
            op.complete = true;
            op.ev_done = msg.ev;  // the abort notification ended the wait
            ops_.erase_recv(msg.recv_handle);
            return;
        }
    }
    panic("dispatch: unknown control message kind");
}

// ---------------------------------------------------------------------------
// Packing helpers
// ---------------------------------------------------------------------------

bool Rank::use_ff_side(const Datatype& type, PackMode mode, bool /*fp_match*/) const {
    if (!cluster_.options().cfg.use_direct_pack_ff) return false;
    if (mode == PackMode::ff_leaf_major) return true;
    return type.flat().leaf_major_is_canonical();
}

Status Rank::pack_into_ring(SendOp& op, const sci::SciMapping& ring,
                            std::size_t ring_off, std::size_t pos, std::size_t len) {
    sim::Process& self = cur_proc();
    const sim::TraceScope trace(self, "rndv:pack_chunk", "p2p", len);
    const sim::ProfScope prof(self, obs::ProfState::pack);
    const Config& cfg = cluster_.options().cfg;
    auto* src = static_cast<std::byte*>(const_cast<void*>(op.buf));
    // DMA rendezvous (paper Section 6 outlook): move large chunks with the
    // adapter's DMA engine instead of PIO.
    const bool dma_ok = cfg.use_dma_rndv && len >= cfg.dma_rndv_threshold;
    const obs::ProfState io_state =
        dma_ok ? obs::ProfState::dma : obs::ProfState::pio_write;

    obs::EventGraph& g = self.engine().evgraph();
    if (op.type.is_contiguous()) {
        const sim::ProfScope io(self, io_state);
        const SimTime t0 = self.now();
        const Status st =
            dma_ok ? adapter().dma_write(self, ring, ring_off, src + pos, len)
                   : adapter().write(self, ring, ring_off, src + pos, len, len);
        if (g.enabled())
            g.node(self.id(), dma_ok ? obs::EvCat::dma : obs::EvCat::pio,
                   "rndv:write", t0, self.now(), len);
        return st;
    }

    FFPacker ff(op.type, op.count, src);
    const bool small_blocks_ok =
        cfg.ff_min_block == 0 ||
        ff.dominant_pattern().block >= cfg.ff_min_block;
    if (use_ff_side(op.type, op.mode, false) && small_blocks_ok) {
        ++stats_.ff_packs;
        pm_.ff_packs->inc();
        std::vector<sci::SciAdapter::ConstIovec> blocks;
        ff.for_range(pos, len, [&blocks](std::byte* mem, std::size_t n) {
            blocks.push_back({mem, n});
        });
        pm_.ff_direct_writes->inc();
        pm_.ff_direct_blocks->add(blocks.size());
        pm_.ff_direct_bytes->add(len);
        const std::size_t traffic = ff.memory_traffic(len);
        const sim::ProfScope io(self, io_state);
        const SimTime t0 = self.now();
        const Status st =
            dma_ok ? adapter().dma_write_gather(self, ring, ring_off, blocks)
                   : adapter().write_gather(self, ring, ring_off, blocks, traffic);
        if (const SimTime dt = self.now() - t0; st && dt > 0)
            pm_.ff_throughput->record(len * 1'000'000'000ull / (dt * 1'048'576ull));
        if (g.enabled())
            g.node(self.id(), dma_ok ? obs::EvCat::dma : obs::EvCat::pio,
                   "pack:ff_direct", t0, self.now(), len);
        return st;
    }

    // Generic: local pack into a scratch buffer, then one contiguous write
    // (the extra copy of Figure 4 top).
    ++stats_.generic_packs;
    pm_.generic_packs->inc();
    pm_.generic_staged_bytes->add(len);
    std::vector<std::byte> scratch(len);
    GenericPacker gp(op.type, op.count, src);
    const PackWork work = gp.pack(pos, len, scratch.data());
    const SimTime stage_t0 = self.now();
    self.delay(GenericPacker::cost(work, copy_model_));
    // Two nodes so scimpi-analyze --diff separates the staging copy (the
    // extra hop the ff path avoids) from the wire write itself.
    if (g.enabled())
        g.node(self.id(), obs::EvCat::pack, "pack:stage", stage_t0, self.now(), len);
    const sim::ProfScope io(self, obs::ProfState::pio_write);
    const SimTime write_t0 = self.now();
    const Status st = adapter().write(self, ring, ring_off, scratch.data(), len, len);
    if (g.enabled())
        g.node(self.id(), obs::EvCat::pio, "pack:write", write_t0, self.now(), len);
    return st;
}

void Rank::unpack_from_ring(RecvOp& op, std::span<std::byte> chunk, std::size_t pos,
                            std::size_t len) {
    sim::Process& self = cur_proc();
    const sim::TraceScope trace(self, "rndv:unpack_chunk", "p2p", len);
    const sim::ProfScope prof(self, obs::ProfState::pack);
    auto* dst = static_cast<std::byte*>(op.buf);
    const std::size_t capacity =
        op.type.size() * static_cast<std::size_t>(op.count);
    if (pos >= capacity) return;  // truncated tail: drain without storing
    const std::size_t usable = std::min(len, capacity - pos);

    const SimTime t0 = self.now();
    if (op.type.is_contiguous()) {
        self.delay(copy_model_.copy_cost(usable, {}, {}));
        std::memcpy(dst + pos, chunk.data(), usable);
    } else if (use_ff_side(op.type, op.mode, false)) {
        ++stats_.ff_packs;
        pm_.ff_packs->inc();
        FFPacker ff(op.type, op.count, dst);
        const PackWork work = ff.unpack(pos, usable, chunk.data());
        self.delay(FFPacker::cost(work, copy_model_));
    } else {
        ++stats_.generic_packs;
        pm_.generic_packs->inc();
        GenericPacker gp(op.type, op.count, dst);
        const PackWork work = gp.unpack(pos, usable, chunk.data());
        self.delay(GenericPacker::cost(work, copy_model_));
    }
    obs::EventGraph& g = self.engine().evgraph();
    if (g.enabled() && self.now() > t0)
        g.node(self.id(), obs::EvCat::pack, "rndv:unpack", t0, self.now(), usable);
}

// ---------------------------------------------------------------------------
// Send side
// ---------------------------------------------------------------------------

std::shared_ptr<SendOp> Rank::isend(const void* buf, int count, const Datatype& type,
                                    int dst, int tag, int context) {
    SCIMPI_REQUIRE(dst >= 0 && dst < cluster_.world_size(), "isend: bad destination");
    auto op = std::make_shared<SendOp>();
    op->handle = ops_.next_handle();
    op->buf = buf;
    op->count = count;
    op->type = type;
    if (!op->type.committed()) op->type.commit(cluster_.options().cfg);
    op->env.src = rank_;
    op->env.dst = dst;
    op->env.context = context;
    op->env.tag = tag;
    op->env.seq = send_seq_[static_cast<std::size_t>(dst)]++;
    op->env.bytes = type.size() * static_cast<std::size_t>(count);
    op->env.type_fp = op->type.fingerprint();
    op->env.sender_canonical = op->type.flat().leaf_major_is_canonical();
    ops_.insert_send(op->handle, op);
    // scimpi-check: the buffer belongs to the library until the matching
    // Wait/Test; conflicting accesses to it through a watched segment are
    // racy-after-Isend reuse (closed in Rank::wait(SendOp&)).
    if (auto* ck = cluster_.checker()) {
        if (auto loc = cluster_.directory().locate(node_, buf, op->env.bytes))
            op->check_id = ck->on_request_issue(rank_, loc->first.node,
                                                loc->first.id, loc->second,
                                                op->env.bytes, /*is_send=*/true,
                                                proc().now());
    }
    start_send(*op);
    return op;
}

void Rank::start_send(SendOp& op) {
    sim::Process& self = cur_proc();
    const Config& cfg = cluster_.options().cfg;
    const std::size_t bytes = op.env.bytes;
    const sim::TraceScope trace(self, "mpi:send_start", "p2p", bytes);
    stats_.bytes_sent += bytes;
    op.env.post_time = self.now();
    auto* src = static_cast<std::byte*>(const_cast<void*>(op.buf));

    // Allocate the message's flow id lazily, when it is actually about to go
    // on the wire, so failed sends never leave an unmatched flow start.
    sim::Tracer& tracer = self.engine().tracer();
    auto open_flow = [&] {
        if (!tracer.enabled()) return;
        op.env.flow = tracer.new_flow_id();
        tracer.flow_start(self.id(), "msg", "p2p", self.now(), op.env.flow);
    };

    // Bulk payloads (eager slots, rendezvous chunks) need a usable route;
    // retry with backoff while a link flap is in progress. Short messages
    // ride the doorbell path, which is modeled hardware-reliable.
    const int peer_node = cluster_.rank_state(op.env.dst).node();
    auto route_ready = [this, peer_node]() -> Status {
        if (peer_node == node_) return Status::ok();
        if (cluster_.fabric().route_usable(node_, peer_node)) return Status::ok();
        return Status::error(Errc::link_failure,
                             cluster_.fabric().describe_down_route(node_, peer_node));
    };

    auto pack_inline = [&](std::vector<std::byte>& out) {
        const sim::ProfScope prof(self, obs::ProfState::pack);
        const SimTime pack_t0 = self.now();
        const auto note_pack = [&] {
            obs::EventGraph& g = self.engine().evgraph();
            if (g.enabled() && self.now() > pack_t0)
                g.node(self.id(), obs::EvCat::pack, "send:pack_inline", pack_t0,
                       self.now(), bytes);
        };
        out.resize(bytes);
        if (bytes == 0) return;
        if (op.type.is_contiguous()) {
            self.delay(copy_model_.copy_cost(bytes, {}, {}));
            std::memcpy(out.data(), src, bytes);
        } else if (use_ff_side(op.type, PackMode::canonical, false)) {
            ++stats_.ff_packs;
            pm_.ff_packs->inc();
            FFPacker ff(op.type, op.count, src);
            const PackWork w = ff.pack(0, bytes, out.data());
            self.delay(FFPacker::cost(w, copy_model_));
        } else {
            ++stats_.generic_packs;
            pm_.generic_packs->inc();
            pm_.generic_staged_bytes->add(bytes);
            GenericPacker gp(op.type, op.count, src);
            const PackWork w = gp.pack(0, bytes, out.data());
            self.delay(GenericPacker::cost(w, copy_model_));
        }
        note_pack();
    };

    if (bytes <= cfg.short_threshold) {
        ++stats_.sends_short;
        pm_.sends_short->inc();
        pm_.bytes_short->add(bytes);
        open_flow();
        CtrlMsg msg;
        msg.kind = CtrlKind::short_msg;
        msg.env = op.env;
        pack_inline(msg.inline_data);
        op.ev_done = post_ctrl(op.env.dst, std::move(msg));
        op.complete = true;
        ops_.erase_send(op.handle);
        return;
    }

    if (bytes <= cfg.eager_threshold) {
        ++stats_.sends_eager;
        pm_.sends_eager->inc();
        pm_.bytes_eager->add(bytes);
        if (const Status st = retry_remote(peer_node, route_ready); !st) {
            op.status = st;
            op.complete = true;
            ops_.erase_send(op.handle);
            return;
        }
        auto& credits = eager_credits_[static_cast<std::size_t>(op.env.dst)];
        if (credits == 0) {  // flow control: wait for a slot
            const SimTime wait_t0 = self.now();
            while (credits == 0) progress_wait();
            note_wait(self, wait_t0,
                      last_credit_ev_[static_cast<std::size_t>(op.env.dst)],
                      "wait:credit");
        }
        --credits;
        open_flow();
        CtrlMsg msg;
        msg.kind = CtrlKind::eager;
        msg.env = op.env;
        pack_inline(msg.inline_data);
        op.ev_done = post_ctrl(op.env.dst, std::move(msg));
        op.complete = true;
        ops_.erase_send(op.handle);
        return;
    }

    ++stats_.sends_rndv;
    pm_.sends_rndv->inc();
    pm_.bytes_rndv->add(bytes);
    // Fail fast (or wait a flap out) before engaging the receiver; failures
    // after the handshake are handled chunk-by-chunk in pump_rndv.
    if (const Status st = retry_remote(peer_node, route_ready); !st) {
        op.status = st;
        op.complete = true;
        ops_.erase_send(op.handle);
        return;
    }
    open_flow();
    CtrlMsg rts;
    rts.kind = CtrlKind::rndv_rts;
    rts.env = op.env;
    rts.sender_handle = op.handle;
    post_ctrl(op.env.dst, std::move(rts));
    // The CTS arrives through the progress engine; pump_rndv continues there.
}

void Rank::pump_rndv(SendOp& op) {
    if (!op.cts_received) return;
    const std::size_t chunk_size = cluster_.options().cfg.rndv_chunk;
    const auto& ring = *op.ring;
    const int peer_node = cluster_.rank_state(op.env.dst).node();
    while (!op.aborted && op.credits > 0 && op.next_pos < op.env.bytes) {
        const std::size_t len = std::min(chunk_size, op.env.bytes - op.next_pos);
        const std::size_t slot = op.next_chunk % 2;
        const Status st = retry_remote(peer_node, [&, this] {
            return pack_into_ring(op, ring, slot * chunk_size, op.next_pos, len);
        });
        if (!st) {
            abort_rndv(op, st);
            break;
        }
        adapter().store_barrier(cur_proc());
        CtrlMsg msg;
        msg.kind = CtrlKind::rndv_chunk;
        msg.env = op.env;
        msg.sender_handle = op.handle;
        msg.recv_handle = op.recv_handle;
        msg.a = slot;
        msg.b = len;
        post_ctrl(op.env.dst, std::move(msg));
        --op.credits;
        ++op.acks_pending;
        op.next_pos += len;
        ++op.next_chunk;
    }
    // An aborted send still waits for the acks of chunks already on the wire
    // so late rndv_ack messages never hit an unknown handle.
    if ((op.next_pos >= op.env.bytes || op.aborted) && op.acks_pending == 0) {
        op.complete = true;
        ops_.erase_send(op.handle);
        sim::Process& self = cur_proc();
        obs::EventGraph& g = self.engine().evgraph();
        if (g.enabled())
            op.ev_done = g.node(self.id(), obs::EvCat::proto, "send:done",
                                self.now(), self.now(), op.env.bytes);
        // The receiver's last ack orders its state before the sender's
        // continuation (rendezvous completion is a two-way sync point).
        if (auto* ck = cluster_.checker()) ck->on_p2p(op.env.dst, rank_);
    }
}

Status Rank::retry_remote(int peer_node, const std::function<Status()>& attempt) {
    const fault::RetryOutcome out = fault::retry_with_backoff(
        cur_proc(), cluster_.options().cfg, cluster_.monitor(), node_, peer_node,
        attempt);
    if (out.retries > 0) {
        stats_.send_retries += static_cast<std::uint64_t>(out.retries);
        pm_.send_retries->add(static_cast<std::uint64_t>(out.retries));
    }
    if (out.recovered) {
        ++stats_.send_recoveries;
        pm_.send_recoveries->inc();
    }
    if (out.gave_up) {
        ++stats_.send_giveups;
        pm_.send_giveups->inc();
    }
    return out.status;
}

void Rank::abort_rndv(SendOp& op, const Status& st) {
    op.aborted = true;
    op.status = st;
    CtrlMsg fail;
    fail.kind = CtrlKind::rndv_fail;
    fail.env = op.env;
    fail.sender_handle = op.handle;
    fail.recv_handle = op.recv_handle;
    fail.a = static_cast<std::uint64_t>(st.code());
    post_ctrl(op.env.dst, std::move(fail));
}

// ---------------------------------------------------------------------------
// Receive side
// ---------------------------------------------------------------------------

std::shared_ptr<RecvOp> Rank::irecv(void* buf, int count, const Datatype& type,
                                    int src, int tag, int context) {
    auto op = std::make_shared<RecvOp>();
    op->handle = ops_.next_handle();
    op->buf = buf;
    op->count = count;
    op->type = type;
    if (!op->type.committed()) op->type.commit(cluster_.options().cfg);
    op->src_filter = src;
    op->tag_filter = tag;
    op->context = context;
    op->post_time = proc().now();
    ops_.insert_recv(op->handle, op);
    // scimpi-check: any access to the posted buffer (even a load) races
    // with the incoming message until the matching Wait/Test.
    if (auto* ck = cluster_.checker()) {
        const std::size_t bytes = type.size() * static_cast<std::size_t>(count);
        if (auto loc = cluster_.directory().locate(node_, buf, bytes))
            op->check_id = ck->on_request_issue(rank_, loc->first.node,
                                                loc->first.id, loc->second, bytes,
                                                /*is_send=*/false, proc().now());
    }
    if (!try_match(*op)) posted_.push_back(op);
    return op;
}

bool Rank::try_match(RecvOp& op) {
    for (auto it = unexpected_.begin(); it != unexpected_.end(); ++it) {
        if (!matches(op, it->env)) continue;
        CtrlMsg msg = std::move(*it);
        unexpected_.erase(it);
        op.matched = true;
        op.env = msg.env;
        // The data sat in the unexpected queue until this receive showed up:
        // late-receiver pattern (user messages only).
        obs::Profiler& prof = proc().engine().profiler();
        if (prof.enabled() && msg.env.tag >= 0)
            prof.late_receiver(proc().id(), proc().now() - msg.arrived);
        if (msg.kind == CtrlKind::rndv_rts)
            handle_rts(op, msg);
        else
            deliver_inline(op, msg);
        return true;
    }
    return false;
}

void Rank::deliver_inline(RecvOp& op, const CtrlMsg& msg) {
    sim::Process& self = cur_proc();
    const sim::TraceScope trace(self, "mpi:deliver_inline", "p2p", msg.env.bytes);
    const std::size_t capacity =
        op.type.size() * static_cast<std::size_t>(op.count);
    const std::size_t usable = std::min(msg.env.bytes, capacity);
    if (msg.env.bytes > capacity)
        op.status = Status::error(Errc::truncated, "message longer than receive buffer");
    auto* dst = static_cast<std::byte*>(op.buf);
    const SimTime unpack_t0 = self.now();
    if (usable > 0) {
        const sim::ProfScope prof(self, obs::ProfState::pack);
        if (op.type.is_contiguous()) {
            self.delay(copy_model_.copy_cost(usable, {}, {}));
            std::memcpy(dst, msg.inline_data.data(), usable);
        } else if (use_ff_side(op.type, PackMode::canonical, false)) {
            ++stats_.ff_packs;
            pm_.ff_packs->inc();
            FFPacker ff(op.type, op.count, dst);
            const PackWork w = ff.unpack(0, usable, msg.inline_data.data());
            self.delay(FFPacker::cost(w, copy_model_));
        } else {
            ++stats_.generic_packs;
            pm_.generic_packs->inc();
            GenericPacker gp(op.type, op.count, dst);
            const PackWork w = gp.unpack(0, usable, msg.inline_data.data());
            self.delay(GenericPacker::cost(w, copy_model_));
        }
    }
    stats_.bytes_received += msg.env.bytes;
    op.received = msg.env.bytes;
    op.complete = true;
    ops_.erase_recv(op.handle);
    obs::EventGraph& g = self.engine().evgraph();
    if (g.enabled()) {
        if (self.now() > unpack_t0)
            g.node(self.id(), obs::EvCat::pack, "deliver:unpack", unpack_t0,
                   self.now(), usable);
        op.ev_done = g.node(self.id(), obs::EvCat::proto, "recv:done", self.now(),
                            self.now(), msg.env.bytes);
        if (msg.ev != 0) g.edge(msg.ev, op.ev_done, obs::EvCat::sched);
        g.message(msg.env.src, rank_, msg.env.bytes, self.now() - msg.env.post_time);
    }
    // Happens-before edge for scimpi-check: the sender's clock at delivery
    // time (an over-approximation that only *adds* order, never races).
    if (auto* ck = cluster_.checker()) ck->on_p2p(msg.env.src, rank_);
    // Post-to-delivery latency plus the arrow tip of the message's flow.
    if (msg.kind == CtrlKind::short_msg)
        pm_.lat_short->record(self.now() - msg.env.post_time);
    else
        pm_.lat_eager->record(self.now() - msg.env.post_time);
    if (msg.env.flow != 0)
        self.engine().tracer().flow_end(self.id(), "msg", "p2p", self.now(),
                                        msg.env.flow);
    if (msg.kind == CtrlKind::eager) {
        CtrlMsg credit;
        credit.kind = CtrlKind::eager_credit;
        credit.env.src = rank_;
        credit.env.dst = msg.env.src;
        post_ctrl(msg.env.src, std::move(credit));
    }
}

void Rank::handle_rts(RecvOp& op, const CtrlMsg& rts) {
    const sim::TraceScope trace(cur_proc(), "rndv:handle_rts", "p2p", rts.env.bytes);
    const Config& cfg = cluster_.options().cfg;
    const std::size_t capacity =
        op.type.size() * static_cast<std::size_t>(op.count);
    if (rts.env.bytes > capacity)
        op.status = Status::error(Errc::truncated, "message longer than receive buffer");
    op.sender_handle = rts.sender_handle;

    auto mem = cluster_.memory(node_).allocate(2 * cfg.rndv_chunk, 64);
    SCIMPI_REQUIRE(mem.is_ok(), "rendezvous ring allocation failed");
    op.ring_mem = mem.value();
    op.ring_seg = cluster_.directory().create(node_, op.ring_mem);

    const bool fp_match = rts.env.type_fp == op.type.fingerprint();
    op.mode = fp_match ? PackMode::ff_leaf_major : PackMode::canonical;

    CtrlMsg cts;
    cts.kind = CtrlKind::rndv_cts;
    cts.env.src = rank_;
    cts.env.dst = rts.env.src;
    cts.sender_handle = rts.sender_handle;
    cts.recv_handle = op.handle;
    cts.a = (static_cast<std::uint64_t>(op.ring_seg.node) << 32) |
            static_cast<std::uint32_t>(op.ring_seg.id);
    cts.b = 2;  // chunk credits
    cts.mode = op.mode;
    post_ctrl(rts.env.src, std::move(cts));
}

void Rank::handle_chunk(RecvOp& op, const CtrlMsg& msg) {
    sim::Process& self = cur_proc();
    const sim::TraceScope trace(self, "rndv:recv_chunk", "p2p", msg.b);
    const Config& cfg = cluster_.options().cfg;
    SCIMPI_REQUIRE(!op.ring_mem.empty(), "chunk without ring");
    const std::size_t slot = msg.a;
    const std::size_t len = msg.b;
    unpack_from_ring(op, op.ring_mem.subspan(slot * cfg.rndv_chunk, len), op.received,
                     len);
    op.received += len;
    CtrlMsg ack;
    ack.kind = CtrlKind::rndv_ack;
    ack.env.src = rank_;
    ack.env.dst = op.env.src;
    ack.sender_handle = op.sender_handle;
    ack.a = slot;
    post_ctrl(op.env.src, std::move(ack));
    if (op.received >= op.env.bytes) {
        stats_.bytes_received += op.env.bytes;
        SCIMPI_REQUIRE(cluster_.directory().destroy(op.ring_seg).is_ok(),
                       "ring segment release failed");
        SCIMPI_REQUIRE(cluster_.memory(node_).free(op.ring_mem).is_ok(),
                       "ring memory release failed");
        op.ring_mem = {};
        op.complete = true;
        ops_.erase_recv(op.handle);
        obs::EventGraph& g = self.engine().evgraph();
        if (g.enabled()) {
            op.ev_done = g.node(self.id(), obs::EvCat::proto, "recv:done",
                                self.now(), self.now(), op.env.bytes);
            if (msg.ev != 0) g.edge(msg.ev, op.ev_done, obs::EvCat::sched);
            g.message(op.env.src, rank_, op.env.bytes,
                      self.now() - op.env.post_time);
        }
        if (auto* ck = cluster_.checker()) ck->on_p2p(op.env.src, rank_);
        pm_.lat_rndv->record(self.now() - op.env.post_time);
        if (op.env.flow != 0)
            self.engine().tracer().flow_end(self.id(), "msg", "p2p", self.now(),
                                            op.env.flow);
    }
}

// ---------------------------------------------------------------------------
// Blocking wrappers
// ---------------------------------------------------------------------------

void Rank::note_wait(sim::Process& self, SimTime w0, std::uint64_t release,
                     const char* name) {
    obs::EventGraph& g = self.engine().evgraph();
    if (!g.enabled() || self.now() <= w0) return;
    const std::uint64_t n =
        g.node(self.id(), obs::EvCat::wait_recv, name, w0, self.now());
    if (release != 0) g.edge(release, n, obs::EvCat::sched);
}

void Rank::wait(SendOp& op) {
    if (!op.complete) {
        sim::Process& self = cur_proc();
        const SimTime wait_t0 = self.now();
        while (!op.complete) progress_wait();
        note_wait(self, wait_t0, op.ev_done, "wait:send");
    }
    if (op.check_id != 0) {
        // Wait success hands the buffer back to the application: close the
        // pending-request entry and tick the rank's clock (happens-before
        // edge ordering later accesses after the communication).
        if (auto* ck = cluster_.checker())
            ck->on_request_complete(rank_, op.check_id, proc().now());
        op.check_id = 0;
    }
}

void Rank::wait(RecvOp& op) {
    if (!op.complete) {
        sim::Process& self = cur_proc();
        const SimTime wait_t0 = self.now();
        while (!op.complete) progress_wait();
        note_wait(self, wait_t0, op.ev_done, "wait:recv");
    }
    if (op.check_id != 0) {
        if (auto* ck = cluster_.checker())
            ck->on_request_complete(rank_, op.check_id, proc().now());
        op.check_id = 0;
    }
}

Status Rank::send(const void* buf, int count, const Datatype& type, int dst, int tag,
                  int context) {
    auto op = isend(buf, count, type, dst, tag, context);
    wait(*op);
    return op->status;
}

RecvResult Rank::recv(void* buf, int count, const Datatype& type, int src, int tag,
                      int context) {
    auto op = irecv(buf, count, type, src, tag, context);
    wait(*op);
    return RecvResult{op->status, op->env.src, op->env.tag, op->received};
}

void Rank::charge_stream_to(int dst, std::size_t bytes, std::size_t src_traffic) {
    Rank& peer = cluster_.rank_state(dst);
    sim::Process& self = cur_proc();
    if (peer.node() == node_) {
        self.delay(copy_model_.copy_cost(bytes, {}, {}));
        return;
    }
    const sim::ProfScope io(self, obs::ProfState::pio_write);
    self.delay(adapter().pio_stream_cost(bytes, src_traffic));
    cluster_.fabric().account(node_, peer.node(), bytes);
}

}  // namespace scimpi::mpi
