// One-sided communication calls: path selection and the four data paths
// (direct put, direct get, remote-put get, emulated put/accumulate).
#include <algorithm>
#include <cstring>

#include "mpi/comm.hpp"
#include "mpi/rma/proto.hpp"
#include "mpi/rma/window.hpp"
#include "mpi/runtime.hpp"
#include "obs/evgraph.hpp"
#include "sim/trace.hpp"

namespace scimpi::mpi {

namespace {

/// Record an rma-category node covering [t0, now] when time passed.
void note_rma(sim::Process& self, const char* name, SimTime t0, std::size_t bytes) {
    obs::EventGraph& g = self.engine().evgraph();
    if (g.enabled() && self.now() > t0)
        g.node(self.id(), obs::EvCat::rma, name, t0, self.now(), bytes);
}

/// Collect the basic blocks of `count` x `type` as (offset, len) pairs in
/// canonical order. Origin and target share the layout (mirrored put/get).
std::vector<rma_proto::Block> layout_blocks(const Datatype& type, int count,
                                            std::size_t disp) {
    std::vector<rma_proto::Block> blocks;
    type.for_each_block(static_cast<std::ptrdiff_t>(disp), count,
                        [&](std::ptrdiff_t off, std::size_t len) {
                            blocks.push_back({static_cast<std::uint64_t>(off), len});
                        });
    return blocks;
}

/// Target-window byte ranges of the op, for the scimpi-check access log.
std::vector<check::ByteRange> check_blocks(const Datatype& type, int count,
                                           std::size_t disp) {
    std::vector<check::ByteRange> out;
    type.for_each_block(static_cast<std::ptrdiff_t>(disp), count,
                        [&](std::ptrdiff_t off, std::size_t len) {
                            out.push_back({static_cast<std::uint64_t>(off),
                                           static_cast<std::uint64_t>(off) + len});
                        });
    return out;
}

}  // namespace

Status Win::put(const void* origin, int count, const Datatype& type, int target,
                std::size_t disp) {
    Datatype t = type;
    if (!t.committed()) t.commit(comm_->cluster().options().cfg);
    const std::size_t bytes = t.size() * static_cast<std::size_t>(count);
    const sim::TraceScope trace(rank_->proc(), "rma:put", "rma", bytes);
    if (bytes == 0) return Status::ok();
    const std::size_t needed =
        static_cast<std::size_t>(t.extent()) * static_cast<std::size_t>(count);
    const int wtarget = comm_->world_rank(target);
    sim::Process& self = rank_->proc();
    if (disp + needed > peers_[static_cast<std::size_t>(target)].size) {
        if (ck_ != nullptr)
            ck_->on_oob(id_, rank_->rank(), wtarget, disp, needed,
                        peers_[static_cast<std::size_t>(target)].size, self.now(),
                        self.id());
        return Status::error(Errc::invalid_argument, "put beyond window bounds");
    }

    if (target == my_rank()) {
        if (ck_ != nullptr)
            ck_->on_rma_op(id_, rank_->rank(), rank_->rank(),
                           check::AccessKind::local_store, check_mode(target),
                           check_blocks(t, count, disp), self.now(), self.id());
        return op_local(const_cast<void*>(origin), count, t, disp, /*is_put=*/true);
    }
    if (!epoch_allows(target)) {
        if (ck_ != nullptr)
            ck_->on_op_outside_epoch(id_, rank_->rank(), wtarget,
                                     check::AccessKind::put,
                                     {disp, disp + needed}, self.now(), self.id());
        return Status::error(Errc::rma_sync_error, "put outside any access epoch");
    }
    if (ck_ != nullptr)
        ck_->on_rma_op(id_, rank_->rank(), wtarget, check::AccessKind::put,
                       check_mode(target), check_blocks(t, count, disp),
                       self.now(), self.id());
    if (peers_[static_cast<std::size_t>(target)].shared &&
        comm_->cluster().options().cfg.osc_direct && direct_path_usable(target))
        return put_direct(origin, count, t, target, disp);
    return put_emulated(origin, count, t, target, disp);
}

Status Win::get(void* origin, int count, const Datatype& type, int target,
                std::size_t disp) {
    Datatype t = type;
    if (!t.committed()) t.commit(comm_->cluster().options().cfg);
    const std::size_t bytes = t.size() * static_cast<std::size_t>(count);
    const sim::TraceScope trace(rank_->proc(), "rma:get", "rma", bytes);
    if (bytes == 0) return Status::ok();
    const std::size_t needed =
        static_cast<std::size_t>(t.extent()) * static_cast<std::size_t>(count);
    const int wtarget = comm_->world_rank(target);
    sim::Process& self = rank_->proc();
    if (disp + needed > peers_[static_cast<std::size_t>(target)].size) {
        if (ck_ != nullptr)
            ck_->on_oob(id_, rank_->rank(), wtarget, disp, needed,
                        peers_[static_cast<std::size_t>(target)].size, self.now(),
                        self.id());
        return Status::error(Errc::invalid_argument, "get beyond window bounds");
    }

    const Config& cfg = comm_->cluster().options().cfg;
    if (target == my_rank()) {
        if (ck_ != nullptr)
            ck_->on_rma_op(id_, rank_->rank(), rank_->rank(),
                           check::AccessKind::local_load, check_mode(target),
                           check_blocks(t, count, disp), self.now(), self.id());
        return op_local(origin, count, t, disp, /*is_put=*/false);
    }
    if (!epoch_allows(target)) {
        if (ck_ != nullptr)
            ck_->on_op_outside_epoch(id_, rank_->rank(), wtarget,
                                     check::AccessKind::get,
                                     {disp, disp + needed}, self.now(), self.id());
        return Status::error(Errc::rma_sync_error, "get outside any access epoch");
    }
    if (ck_ != nullptr)
        ck_->on_rma_op(id_, rank_->rank(), wtarget, check::AccessKind::get,
                       check_mode(target), check_blocks(t, count, disp),
                       self.now(), self.id());
    // Direct remote reads are slow on SCI: only up to the threshold, and
    // only when the target window is directly accessible (Section 4.2).
    if (peers_[static_cast<std::size_t>(target)].shared && cfg.osc_direct &&
        bytes <= cfg.get_remote_put_threshold && direct_path_usable(target))
        return get_direct(origin, count, t, target, disp);
    if (peers_[static_cast<std::size_t>(target)].shared && cfg.osc_direct)
        rm_.get_conversions->inc();
    return get_remote_put(origin, count, t, target, disp);
}

bool Win::direct_path_usable(int target) {
    Cluster& cluster = comm_->cluster();
    Rank& peer = cluster.rank_state(comm_->world_rank(target));
    if (peer.node() == rank_->node()) return true;
    if (cluster.fabric().route_usable(rank_->node(), peer.node()) &&
        cluster.fabric().route_usable(peer.node(), rank_->node()))
        return true;
    // Leave the error to the direct path when fallback is disabled: callers
    // then see link_failure naming the dead link instead of a silent detour.
    if (!cluster.options().cfg.rma_fallback) return true;
    ++stats_.path_fallbacks;
    rm_.path_fallbacks->inc();
    return false;
}

Status Win::op_local(void* origin, int count, const Datatype& type, std::size_t disp,
                     bool is_put) {
    ++stats_.local_ops;
    rm_.local_ops->inc();
    sim::Process& self = rank_->proc();
    const mem::CopyModel& cm = rank_->copy_model();
    auto* user = static_cast<std::byte*>(origin);
    Status st;
    std::size_t moved = 0;
    std::int64_t blocks = 0;
    type.for_each_block(0, count, [&](std::ptrdiff_t off, std::size_t len) {
        std::byte* win_mem = local_.data() + disp + static_cast<std::size_t>(off);
        if (is_put)
            std::memcpy(win_mem, user + off, len);
        else
            std::memcpy(user + off, win_mem, len);
        moved += len;
        ++blocks;
    });
    const SimTime t0 = self.now();
    self.delay(cm.copy_cost(moved, {}, {}, static_cast<std::size_t>(blocks)));
    note_rma(self, "rma:local", t0, moved);
    return st;
}

Status Win::put_direct(const void* origin, int count, const Datatype& type, int target,
                       std::size_t disp) {
    ++stats_.direct_puts;
    rm_.direct_puts->inc();
    rm_.direct_put_bytes->add(type.size() * static_cast<std::size_t>(count));
    sim::Process& self = rank_->proc();
    const sim::ProfScope io(self, obs::ProfState::pio_write);
    const SimTime t0 = self.now();
    const sci::SciMapping& map = peer_mapping(target);
    const auto* user = static_cast<const std::byte*>(origin);
    Status st;
    type.for_each_block(0, count, [&](std::ptrdiff_t off, std::size_t len) {
        if (!st.is_ok()) return;
        st = rank_->adapter().write(self, map, disp + static_cast<std::size_t>(off),
                                    user + off, len, len);
    });
    if (st) rm_.lat_direct->record(self.now() - t0);
    note_rma(self, "rma:put_direct", t0, type.size() * static_cast<std::size_t>(count));
    return st;
}

Status Win::get_direct(void* origin, int count, const Datatype& type, int target,
                       std::size_t disp) {
    ++stats_.direct_gets;
    rm_.direct_gets->inc();
    sim::Process& self = rank_->proc();
    const sim::ProfScope io(self, obs::ProfState::pio_write);
    const SimTime t0 = self.now();
    const sci::SciMapping& map = peer_mapping(target);
    auto* user = static_cast<std::byte*>(origin);
    Status st;
    type.for_each_block(0, count, [&](std::ptrdiff_t off, std::size_t len) {
        if (!st.is_ok()) return;
        st = rank_->adapter().read(self, map, disp + static_cast<std::size_t>(off),
                                   user + off, len);
    });
    if (st) rm_.lat_direct->record(self.now() - t0);
    note_rma(self, "rma:get_direct", t0, type.size() * static_cast<std::size_t>(count));
    return st;
}

Status Win::put_emulated(const void* origin, int count, const Datatype& type,
                         int target, std::size_t disp) {
    ++stats_.emulated_puts;
    sim::Process& self = rank_->proc();
    RmaState& rma = rank_->rma();
    const std::size_t bytes = type.size() * static_cast<std::size_t>(count);
    rm_.emulated_puts->inc();
    rm_.emulated_put_bytes->add(bytes);
    const SimTime ev_t0 = self.now();

    smi::Signal s;
    s.from_rank = rank_->rank();  // world rank: acks route through the cluster
    s.kind = rma_proto::kPut;
    s.a = static_cast<std::uint64_t>(id_);
    s.post_time = self.now();
    rma_proto::serialize_blocks(s.payload, layout_blocks(type, count, disp));

    // Pack the data in canonical order behind the descriptors.
    const std::size_t header = s.payload.size();
    s.payload.resize(header + bytes);
    {
        const sim::ProfScope prof(self, obs::ProfState::pack);
        GenericPacker gp(type, count, const_cast<void*>(origin));
        const PackWork work = gp.pack(0, bytes, s.payload.data() + header);
        self.delay(GenericPacker::cost(work, rank_->copy_model()));
    }
    {
        const sim::ProfScope io(self, obs::ProfState::pio_write);
        self.delay(rank_->adapter().pio_stream_cost(s.payload.size()));
    }

    sim::Tracer& tracer = self.engine().tracer();
    if (tracer.enabled()) {
        s.flow = tracer.new_flow_id();
        tracer.flow_start(self.id(), "rma", "rma", self.now(), s.flow);
    }
    rma.add_pending();
    Rank& peer = comm_->cluster().rank_state(comm_->world_rank(target));
    peer.rma().channel().post(self, rank_->node(), std::move(s));
    note_rma(self, "rma:put_emulated", ev_t0, bytes);
    return Status::ok();
}

Status Win::get_remote_put(void* origin, int count, const Datatype& type, int target,
                           std::size_t disp) {
    ++stats_.remote_put_gets;
    rm_.remote_put_gets->inc();
    sim::Process& self = rank_->proc();
    Cluster& cluster = comm_->cluster();
    RmaState& rma = rank_->rma();
    const std::size_t bytes = type.size() * static_cast<std::size_t>(count);

    // Staging segment in our arena for the target's remote-put.
    auto staging = cluster.memory(rank_->node()).allocate(bytes, 64);
    if (!staging)
        return Status::error(Errc::out_of_memory, "get staging allocation failed");
    const sci::SegmentId seg = cluster.directory().create(rank_->node(), staging.value());

    const std::uint64_t op_id = rma.next_op_id();
    auto done = rma.new_op_event(op_id);
    const SimTime issue_t0 = self.now();

    smi::Signal s;
    s.from_rank = rank_->rank();
    s.kind = rma_proto::kGet;
    s.a = static_cast<std::uint64_t>(id_);
    s.b = (static_cast<std::uint64_t>(seg.node) << 32) |
          static_cast<std::uint32_t>(seg.id);
    s.c = op_id;
    s.post_time = self.now();
    rma_proto::serialize_blocks(s.payload, layout_blocks(type, count, disp));
    {
        const sim::ProfScope io(self, obs::ProfState::pio_write);
        self.delay(rank_->adapter().pio_stream_cost(s.payload.size()));
    }

    sim::Tracer& tracer = self.engine().tracer();
    if (tracer.enabled()) {
        s.flow = tracer.new_flow_id();
        tracer.flow_start(self.id(), "rma", "rma", self.now(), s.flow);
    }
    const SimTime t0 = self.now();
    Rank& peer = cluster.rank_state(comm_->world_rank(target));
    peer.rma().channel().post(self, rank_->node(), std::move(s));
    note_rma(self, "rma:get_issue", issue_t0, bytes);
    {
        // Blocked until the target handler writes + barriers, then acks.
        const sim::ProfScope wait(self, obs::ProfState::wait_sync);
        const SimTime wait_t0 = self.now();
        done->wait(self);
        obs::EventGraph& g = self.engine().evgraph();
        if (g.enabled() && self.now() > wait_t0)
            g.node(self.id(), obs::EvCat::wait_sync, "rma:get_wait", wait_t0,
                   self.now(), bytes);
    }
    rm_.lat_remote_put->record(self.now() - t0);

    // The handler acks with an error when its remote-put could not reach our
    // staging segment even after retries (fault injection): the staged data
    // is garbage, so release it and report the failure.
    if (const Status st = rma.take_op_error(op_id); !st) {
        SCIMPI_REQUIRE(cluster.directory().destroy(seg).is_ok(), "staging seg leak");
        SCIMPI_REQUIRE(cluster.memory(rank_->node()).free(staging.value()).is_ok(),
                       "staging mem leak");
        return st;
    }

    // Scatter the staged stream into the origin layout (local copy).
    const SimTime scatter_t0 = self.now();
    auto* user = static_cast<std::byte*>(origin);
    const std::byte* cursor = staging.value().data();
    std::int64_t blocks = 0;
    type.for_each_block(0, count, [&](std::ptrdiff_t off, std::size_t len) {
        std::memcpy(user + off, cursor, len);
        cursor += len;
        ++blocks;
    });
    self.delay(rank_->copy_model().copy_cost(bytes, {}, {},
                                             static_cast<std::size_t>(blocks)));
    note_rma(self, "rma:get_scatter", scatter_t0, bytes);

    SCIMPI_REQUIRE(cluster.directory().destroy(seg).is_ok(), "staging seg leak");
    SCIMPI_REQUIRE(cluster.memory(rank_->node()).free(staging.value()).is_ok(),
                   "staging mem leak");
    return Status::ok();
}

Status Win::accumulate(const void* origin, int count, const Datatype& type,
                       int target, std::size_t disp, ReduceOp op) {
    ++stats_.accumulates;
    rm_.accumulates->inc();
    sim::Process& self = rank_->proc();
    Datatype t = type;
    if (!t.committed()) t.commit(comm_->cluster().options().cfg);
    const std::size_t bytes = t.size() * static_cast<std::size_t>(count);
    const sim::TraceScope trace(self, "rma:accumulate", "rma", bytes);
    if (bytes == 0) return Status::ok();
    const std::size_t needed =
        static_cast<std::size_t>(t.extent()) * static_cast<std::size_t>(count);
    const int wtarget = comm_->world_rank(target);
    if (disp + needed > peers_[static_cast<std::size_t>(target)].size) {
        if (ck_ != nullptr)
            ck_->on_oob(id_, rank_->rank(), wtarget, disp, needed,
                        peers_[static_cast<std::size_t>(target)].size, self.now(),
                        self.id());
        return Status::error(Errc::invalid_argument, "accumulate beyond window bounds");
    }
    if (bytes % sizeof(double) != 0)
        return Status::error(Errc::invalid_argument, "accumulate needs doubles");
    if (target != my_rank() && !epoch_allows(target)) {
        if (ck_ != nullptr)
            ck_->on_op_outside_epoch(id_, rank_->rank(), wtarget,
                                     check::AccessKind::accumulate,
                                     {disp, disp + needed}, self.now(), self.id());
        return Status::error(Errc::rma_sync_error,
                             "accumulate outside any access epoch");
    }
    if (ck_ != nullptr)
        ck_->on_rma_op(id_, rank_->rank(), wtarget, check::AccessKind::accumulate,
                       check_mode(target), check_blocks(t, count, disp),
                       self.now(), self.id());

    if (target == my_rank()) {
        // Local read-modify-write straight on the window.
        const auto* user = static_cast<const std::byte*>(origin);
        std::int64_t blocks = 0;
        Status st;
        t.for_each_block(0, count, [&](std::ptrdiff_t off, std::size_t len) {
            auto* dst = reinterpret_cast<double*>(local_.data() + disp +
                                                  static_cast<std::size_t>(off));
            const auto* add = reinterpret_cast<const double*>(user + off);
            for (std::size_t i = 0; i < len / sizeof(double); ++i)
                dst[i] = apply_op(op, dst[i], add[i]);
            ++blocks;
        });
        self.delay(2 * rank_->copy_model().copy_cost(bytes, {}, {},
                                                     static_cast<std::size_t>(blocks)) +
                   static_cast<SimTime>(bytes / sizeof(double)));
        return Status::ok();
    }

    // Accumulate always goes through the target handler: SCI offers no
    // remote read-modify-write, so the combination happens target-side.
    RmaState& rma = rank_->rma();
    const SimTime ev_t0 = self.now();
    smi::Signal s;
    s.from_rank = rank_->rank();
    s.kind = rma_proto::kAccumulate;
    s.a = static_cast<std::uint64_t>(id_);
    s.b = static_cast<std::uint64_t>(op);
    s.post_time = self.now();
    rma_proto::serialize_blocks(s.payload, layout_blocks(t, count, disp));
    const std::size_t header = s.payload.size();
    s.payload.resize(header + bytes);
    {
        const sim::ProfScope prof(self, obs::ProfState::pack);
        GenericPacker gp(t, count, const_cast<void*>(origin));
        const PackWork work = gp.pack(0, bytes, s.payload.data() + header);
        self.delay(GenericPacker::cost(work, rank_->copy_model()));
    }
    {
        const sim::ProfScope io(self, obs::ProfState::pio_write);
        self.delay(rank_->adapter().pio_stream_cost(s.payload.size()));
    }

    sim::Tracer& tracer = self.engine().tracer();
    if (tracer.enabled()) {
        s.flow = tracer.new_flow_id();
        tracer.flow_start(self.id(), "rma", "rma", self.now(), s.flow);
    }
    rma.add_pending();
    Rank& peer = comm_->cluster().rank_state(comm_->world_rank(target));
    peer.rma().channel().post(self, rank_->node(), std::move(s));
    note_rma(self, "rma:accumulate", ev_t0, bytes);
    return Status::ok();
}

double Win::apply_op(ReduceOp op, double current, double incoming) {
    switch (op) {
        case ReduceOp::sum: return current + incoming;
        case ReduceOp::prod: return current * incoming;
        case ReduceOp::min: return std::min(current, incoming);
        case ReduceOp::max: return std::max(current, incoming);
        case ReduceOp::replace: return incoming;
    }
    panic("unknown reduce op");
}

}  // namespace scimpi::mpi
