// MPI-2 one-sided communication (paper Section 4).
//
// A window is created collectively; each rank contributes a memory region.
// SCI-MPICH's key distinction is remembered per peer: regions allocated via
// MPI_Alloc_mem live in the node arena and are *SCI shared* — accessible
// directly by remote CPUs — while private (heap) regions require *emulation*
// through a remote handler invoked by an SCI interrupt (smi::SignalChannel).
//
// Data paths implemented (Section 4.2):
//   * direct put  — origin CPU writes through the imported segment,
//   * direct get  — origin CPU reads remotely, only up to
//     Config::get_remote_put_threshold (reads are slow on SCI),
//   * remote-put get — above the threshold (or for private memory) the
//     target's handler *writes* the data into the origin's staging segment,
//   * emulated put / accumulate — control message + handler-side copy/RMW.
//
// Synchronization: fence, post/start/complete/wait, lock/unlock (shared
// memory locks, paper reference [14]).
#pragma once

#include <map>
#include <memory>
#include <span>
#include <vector>

#include "mpi/datatype/datatype.hpp"
#include "mpi/types.hpp"
#include "obs/metrics.hpp"
#include "sci/segment.hpp"
#include "smi/lock.hpp"
#include "smi/signal.hpp"

namespace scimpi::check {
class Checker;
enum class SyncMode : std::uint8_t;
}

namespace scimpi::mpi {

class Comm;
class Rank;
class RmaState;

/// Per-peer window description, exchanged at creation.
struct WinPeer {
    bool shared = false;        ///< region is in the node arena (direct access)
    sci::SegmentId seg;         ///< valid when shared
    std::size_t size = 0;
    int node = -1;
};

class Win {
public:
    /// Collective constructor (MPI_Win_create). `base` may be private heap
    /// memory or a Comm::alloc_mem region; SCI-MPICH detects which.
    static std::shared_ptr<Win> create(Comm& comm, void* base, std::size_t size);
    ~Win();

    Win(const Win&) = delete;
    Win& operator=(const Win&) = delete;

    // ---- communication calls (must be inside an epoch) ----
    /// Store `count` instances of `type` at byte displacement `disp` in
    /// `target`'s window; the target layout mirrors the origin layout.
    Status put(const void* origin, int count, const Datatype& type, int target,
               std::size_t disp);
    Status get(void* origin, int count, const Datatype& type, int target,
               std::size_t disp);
    /// Reduction operator for accumulate (element type: double).
    enum class ReduceOp : std::uint8_t { sum, prod, min, max, replace };

    /// MPI_Accumulate over doubles with any layout whose basic blocks are
    /// multiples of sizeof(double). Combination happens target-side (SCI
    /// offers no remote read-modify-write).
    Status accumulate(const void* origin, int count, const Datatype& type,
                      int target, std::size_t disp, ReduceOp op);
    /// MPI_Accumulate with MPI_SUM over doubles (the paper's use case).
    Status accumulate_sum(const double* origin, int count, int target,
                          std::size_t disp) {
        return accumulate(origin, count, Datatype::float64(), target, disp,
                          ReduceOp::sum);
    }

    // ---- synchronization ----
    void fence();                                ///< active target, collective
    void post(std::span<const int> origin_group);   ///< exposure epoch begin
    void wait();                                    ///< exposure epoch end
    /// MPI_Win_test: non-blocking wait(). True (and the epoch is closed)
    /// when every origin in the post group has completed.
    bool test();
    void start(std::span<const int> target_group);  ///< access epoch begin
    void complete();                                ///< access epoch end
    void lock(int target, bool exclusive = true);   ///< passive target
    void unlock(int target);

    [[nodiscard]] bool target_shared(int target) const {
        return peers_[static_cast<std::size_t>(target)].shared;
    }
    [[nodiscard]] std::span<std::byte> local() { return local_; }
    /// Element-wise combination used by accumulate (also by the handler).
    static double apply_op(ReduceOp op, double current, double incoming);
    [[nodiscard]] int id() const { return id_; }
    [[nodiscard]] int my_rank() const;

    struct Stats {
        std::uint64_t direct_puts = 0;
        std::uint64_t direct_gets = 0;
        std::uint64_t emulated_puts = 0;
        std::uint64_t remote_put_gets = 0;
        std::uint64_t local_ops = 0;
        std::uint64_t accumulates = 0;
        std::uint64_t path_fallbacks = 0;  ///< direct path dead -> emulated
    };
    [[nodiscard]] const Stats& stats() const { return stats_; }

private:
    friend class RmaState;
    Win(Comm& comm, std::span<std::byte> local, int id);

    /// Imported mapping of a shared peer window (lazily cached).
    const sci::SciMapping& peer_mapping(int target);

    Status put_direct(const void* origin, int count, const Datatype& type, int target,
                      std::size_t disp);
    Status get_direct(void* origin, int count, const Datatype& type, int target,
                      std::size_t disp);
    Status put_emulated(const void* origin, int count, const Datatype& type,
                        int target, std::size_t disp);
    Status get_remote_put(void* origin, int count, const Datatype& type, int target,
                          std::size_t disp);
    Status op_local(void* origin_or_src, int count, const Datatype& type,
                    std::size_t disp, bool is_put);

    /// Degraded-mode routing: false when the direct (mapped-segment) path to
    /// `target` is currently unusable and Config::rma_fallback redirects the
    /// op to the handler-based emulation (counted as a path fallback).
    bool direct_path_usable(int target);

    Comm* comm_;
    Rank* rank_;
    std::span<std::byte> local_;
    int id_;
    std::vector<WinPeer> peers_;
    std::map<int, sci::SciMapping> mappings_;
    Stats stats_;

    /// Cluster-wide registry counters (shared slots, resolved at creation).
    struct RmaMetrics {
        obs::Counter* direct_puts = nullptr;
        obs::Counter* direct_gets = nullptr;
        obs::Counter* emulated_puts = nullptr;
        obs::Counter* remote_put_gets = nullptr;
        obs::Counter* get_conversions = nullptr;  ///< shared target, size-forced
        obs::Counter* local_ops = nullptr;
        obs::Counter* accumulates = nullptr;
        obs::Counter* direct_put_bytes = nullptr;
        obs::Counter* emulated_put_bytes = nullptr;
        obs::Counter* path_fallbacks = nullptr;  ///< dead route -> emulated path
        obs::Histogram* lat_direct = nullptr;      ///< origin-side op latency
        obs::Histogram* lat_emulated = nullptr;    ///< post -> handler done
        obs::Histogram* lat_remote_put = nullptr;  ///< full get round trip
    };
    RmaMetrics rm_;

    /// scimpi-check hooks; null unless the cluster enabled checking. All
    /// hook arguments use world ranks (epoch state is per world rank).
    check::Checker* ck_ = nullptr;

    /// True if `target` may currently be accessed from this rank (inside a
    /// fence epoch, a started access epoch containing it, or under a lock).
    [[nodiscard]] bool epoch_allows(int target) const;

    /// Which synchronization regime currently authorizes accesses to
    /// `target` (for the checker's conflict predicate; `none` for local
    /// accesses outside any epoch).
    [[nodiscard]] check::SyncMode check_mode(int target) const;

    // post/start/complete/wait bookkeeping (counters incremented by the
    // handler daemon, waited on by the rank process).
    int posts_seen_ = 0;       // RMA_POST notifications received (origin side)
    int completes_seen_ = 0;   // RMA_COMPLETE notifications (target side)
    std::vector<int> access_group_;
    std::vector<int> exposure_group_;
    bool fence_epoch_ = false;      // between two fences
    std::vector<int> locked_;       // passive-target locks we hold
};

/// Per-rank one-sided state: the handler daemon, window registry, pending-op
/// accounting and the staging machinery for remote-put gets.
class RmaState {
public:
    explicit RmaState(Rank& rank);
    ~RmaState();

    /// Spawn the handler daemon (called when the owning rank starts).
    void start_handler();

    [[nodiscard]] smi::SignalChannel& channel() { return channel_; }
    void register_win(Win* win);
    void unregister_win(int id);

    /// Origin-side completion accounting for fire-and-forget emulated ops.
    void add_pending() { ++pending_; }
    void wait_all_pending(sim::Process& self);

    /// Blocking wait for a specific acknowledged op (emulated gets).
    std::shared_ptr<sim::Event> new_op_event(std::uint64_t op_id);
    /// Error reported by an ack for `op_id` (ok if none); consumes the entry.
    Status take_op_error(std::uint64_t op_id);

    /// Wait until a predicate over handler-updated state becomes true.
    void wait_signal_change(sim::Process& self) {
        change_q_.park(self, "rma post/complete signal");
    }
    void notify_change() { change_q_.wake_all(); }

    [[nodiscard]] int next_win_id() { return next_win_id_++; }
    [[nodiscard]] int peek_next_win_id() const { return next_win_id_; }
    void set_next_win_id(int id) { next_win_id_ = id; }
    [[nodiscard]] std::uint64_t next_op_id() { return next_op_id_++; }

    /// The passive-target lock of window `win_id` *owned by this rank* —
    /// every origin locking this rank goes through this shared instance.
    smi::SmiLock& win_lock(int win_id);

private:
    void handler_loop(sim::Process& self);
    void serve_put(sim::Process& self, const smi::Signal& s);
    void serve_get(sim::Process& self, const smi::Signal& s);
    void serve_accumulate(sim::Process& self, const smi::Signal& s);

    Rank& rank_;
    smi::SignalChannel channel_;
    std::map<int, Win*> windows_;
    std::map<int, std::unique_ptr<smi::SmiLock>> win_locks_;
    int pending_ = 0;
    sim::WaitQueue pending_q_;
    sim::WaitQueue change_q_;
    std::map<std::uint64_t, std::shared_ptr<sim::Event>> op_events_;
    std::map<std::uint64_t, Status> op_errors_;  ///< failed remote-put acks
    int next_win_id_ = 1;
    std::uint64_t next_op_id_ = 1;
};

}  // namespace scimpi::mpi
