// Wire protocol of the one-sided emulation path: signal kinds and the
// block-descriptor serialization carried in signal payloads.
#pragma once

#include <cstdint>
#include <cstring>
#include <vector>

#include "common/status.hpp"

namespace scimpi::mpi::rma_proto {

enum Kind : int {
    kPut = 1,         ///< payload: blocks + data; handler scatters into window
    kGet = 2,         ///< payload: blocks; handler remote-puts into staging
    kAccumulate = 3,  ///< payload: blocks + doubles; handler sums in place
    kAck = 4,         ///< c == op id (get) or 0 (generic completion)
    kPost = 5,        ///< exposure epoch opened at the sender of the signal
    kComplete = 6,    ///< access epoch closed by the sender of the signal
};

struct Block {
    std::uint64_t off = 0;
    std::uint64_t len = 0;
};

inline void append_u64(std::vector<std::byte>& out, std::uint64_t v) {
    const auto old = out.size();
    out.resize(old + 8);
    std::memcpy(out.data() + old, &v, 8);
}

inline std::uint64_t read_u64(const std::vector<std::byte>& in, std::size_t& pos) {
    SCIMPI_REQUIRE(pos + 8 <= in.size(), "rma payload underflow");
    std::uint64_t v = 0;
    std::memcpy(&v, in.data() + pos, 8);
    pos += 8;
    return v;
}

inline void serialize_blocks(std::vector<std::byte>& out,
                             const std::vector<Block>& blocks) {
    append_u64(out, blocks.size());
    for (const auto& b : blocks) {
        append_u64(out, b.off);
        append_u64(out, b.len);
    }
}

inline std::vector<Block> parse_blocks(const std::vector<std::byte>& in,
                                       std::size_t& pos) {
    const std::uint64_t n = read_u64(in, pos);
    std::vector<Block> blocks(n);
    for (auto& b : blocks) {
        b.off = read_u64(in, pos);
        b.len = read_u64(in, pos);
    }
    return blocks;
}

}  // namespace scimpi::mpi::rma_proto
