// The remote handler: a daemon process per rank that serves emulated
// one-sided accesses (paper Section 4.2 — "internal control messages in
// conjunction with a remote interrupt are used to invoke a remote handler").
#include <cstring>

#include "fault/retry.hpp"
#include "mpi/comm.hpp"
#include "mpi/rma/proto.hpp"
#include "mpi/rma/window.hpp"
#include "mpi/runtime.hpp"
#include "sim/trace.hpp"

namespace scimpi::mpi {

void RmaState::start_handler() {
    static constexpr const char* kName = "rma-handler-rank";
    rank_.cluster().engine().spawn_daemon(
        kName + std::to_string(rank_.rank()),
        [this](sim::Process& self) { handler_loop(self); });
}

void RmaState::handler_loop(sim::Process& self) {
    for (;;) {
        const smi::Signal s = channel_.wait(self);
        switch (s.kind) {
            case rma_proto::kPut:
                serve_put(self, s);
                break;
            case rma_proto::kGet:
                serve_get(self, s);
                break;
            case rma_proto::kAccumulate:
                serve_accumulate(self, s);
                break;
            case rma_proto::kAck: {
                if (s.c != 0) {
                    const auto it = op_events_.find(s.c);
                    SCIMPI_REQUIRE(it != op_events_.end(), "ack for unknown op");
                    // `a` carries an Errc when the target's remote-put failed.
                    if (s.a != 0)
                        op_errors_[s.c] = Status::error(
                            static_cast<Errc>(s.a),
                            "remote-put from rank " + std::to_string(s.from_rank) +
                                " failed after retries");
                    it->second->set();
                    op_events_.erase(it);
                } else {
                    SCIMPI_REQUIRE(pending_ > 0, "ack underflow");
                    if (--pending_ == 0) pending_q_.wake_all();
                }
                break;
            }
            case rma_proto::kPost: {
                const auto it = windows_.find(static_cast<int>(s.a));
                SCIMPI_REQUIRE(it != windows_.end(), "post for unknown window");
                sim::note_subject(it->second);
                ++it->second->posts_seen_;
                notify_change();
                break;
            }
            case rma_proto::kComplete: {
                const auto it = windows_.find(static_cast<int>(s.a));
                SCIMPI_REQUIRE(it != windows_.end(), "complete for unknown window");
                sim::note_subject(it->second);
                ++it->second->completes_seen_;
                notify_change();
                break;
            }
            default:
                panic("rma handler: unknown signal kind");
        }
    }
}

void RmaState::serve_put(sim::Process& self, const smi::Signal& s) {
    sim::TraceScope trace(self, "rma:serve_put", "rma");
    const auto wit = windows_.find(static_cast<int>(s.a));
    SCIMPI_REQUIRE(wit != windows_.end(), "put for unknown window");
    Win& win = *wit->second;

    std::size_t pos = 0;
    const auto blocks = rma_proto::parse_blocks(s.payload, pos);
    std::size_t moved = 0;
    for (const auto& b : blocks) {
        SCIMPI_REQUIRE(b.off + b.len <= win.local().size(),
                       "emulated put beyond window");
        std::memcpy(win.local().data() + b.off, s.payload.data() + pos + moved, b.len);
        moved += b.len;
    }
    self.delay(rank_.copy_model().copy_cost(moved, {}, {}, blocks.size()));
    trace.set_bytes(moved);
    if (win.ck_ != nullptr)
        win.ck_->on_remote_apply(win.id(), s.from_rank, self.now(), self.id());
    // The op is done once the data sits in the target window: record the
    // post-to-done latency here and land the flow arrow in this handler span.
    win.rm_.lat_emulated->record(self.now() - s.post_time);
    if (s.flow != 0)
        self.engine().tracer().flow_end(self.id(), "rma", "rma", self.now(), s.flow);

    smi::Signal ack;
    ack.from_rank = rank_.rank();
    ack.kind = rma_proto::kAck;
    ack.c = 0;
    rank_.cluster().rank_state(s.from_rank).rma().channel().post(self, rank_.node(),
                                                                 std::move(ack));
}

void RmaState::serve_get(sim::Process& self, const smi::Signal& s) {
    sim::TraceScope trace(self, "rma:serve_get", "rma");
    const auto wit = windows_.find(static_cast<int>(s.a));
    SCIMPI_REQUIRE(wit != windows_.end(), "get for unknown window");
    Win& win = *wit->second;

    std::size_t pos = 0;
    const auto blocks = rma_proto::parse_blocks(s.payload, pos);

    // Remote-put: gather the requested blocks out of the local window and
    // write them into the origin's staging segment (Section 4.2: the target
    // writes because remote reads are slow).
    const sci::SegmentId seg{static_cast<int>(s.b >> 32),
                             static_cast<int>(s.b & 0xffffffffu)};
    auto m = rank_.cluster().directory().import(rank_.node(), seg);
    SCIMPI_REQUIRE(m.is_ok(), "staging segment import failed");

    std::vector<sci::SciAdapter::ConstIovec> iov;
    iov.reserve(blocks.size());
    std::size_t total = 0;
    for (const auto& b : blocks) {
        SCIMPI_REQUIRE(b.off + b.len <= win.local().size(),
                       "emulated get beyond window");
        iov.push_back({win.local().data() + b.off, b.len});
        total += b.len;
    }
    trace.set_bytes(total);
    // The write back to the origin's staging segment crosses the fabric and
    // can hit injected faults; retry under the shared backoff policy and, if
    // the budget runs out, report the error through the ack instead of
    // leaving the origin parked forever.
    Cluster& cluster = rank_.cluster();
    const int origin_node = cluster.rank_state(s.from_rank).node();
    const fault::RetryOutcome out = fault::retry_with_backoff(
        self, cluster.options().cfg, cluster.monitor(), rank_.node(), origin_node,
        [&] { return rank_.adapter().write_gather(self, m.value(), 0, iov, total); });
    if (out.status.is_ok()) rank_.adapter().store_barrier(self);
    if (win.ck_ != nullptr)
        win.ck_->on_remote_apply(win.id(), s.from_rank, self.now(), self.id());
    if (s.flow != 0)
        self.engine().tracer().flow_end(self.id(), "rma", "rma", self.now(), s.flow);

    smi::Signal ack;
    ack.from_rank = rank_.rank();
    ack.kind = rma_proto::kAck;
    ack.c = s.c;
    ack.a = static_cast<std::uint64_t>(out.status.code());
    rank_.cluster().rank_state(s.from_rank).rma().channel().post(self, rank_.node(),
                                                                 std::move(ack));
}

void RmaState::serve_accumulate(sim::Process& self, const smi::Signal& s) {
    sim::TraceScope trace(self, "rma:serve_accumulate", "rma");
    const auto wit = windows_.find(static_cast<int>(s.a));
    SCIMPI_REQUIRE(wit != windows_.end(), "accumulate for unknown window");
    Win& win = *wit->second;

    std::size_t pos = 0;
    const auto blocks = rma_proto::parse_blocks(s.payload, pos);
    std::size_t moved = 0;
    for (const auto& b : blocks) {
        SCIMPI_REQUIRE(b.off + b.len <= win.local().size(),
                       "accumulate beyond window");
        SCIMPI_REQUIRE(b.len % sizeof(double) == 0, "accumulate needs doubles");
        auto* dst = reinterpret_cast<double*>(win.local().data() + b.off);
        const auto n = b.len / sizeof(double);
        std::vector<double> add(n);
        std::memcpy(add.data(), s.payload.data() + pos + moved, b.len);
        const auto op = static_cast<Win::ReduceOp>(s.b);
        for (std::size_t i = 0; i < n; ++i) dst[i] = Win::apply_op(op, dst[i], add[i]);
        moved += b.len;
    }
    // Read-modify-write: two local streams plus the flops.
    self.delay(2 * rank_.copy_model().copy_cost(moved, {}, {}, blocks.size()) +
               static_cast<SimTime>(moved / sizeof(double)));
    trace.set_bytes(moved);
    if (win.ck_ != nullptr)
        win.ck_->on_remote_apply(win.id(), s.from_rank, self.now(), self.id());
    win.rm_.lat_emulated->record(self.now() - s.post_time);
    if (s.flow != 0)
        self.engine().tracer().flow_end(self.id(), "rma", "rma", self.now(), s.flow);

    smi::Signal ack;
    ack.from_rank = rank_.rank();
    ack.kind = rma_proto::kAck;
    ack.c = 0;
    rank_.cluster().rank_state(s.from_rank).rma().channel().post(self, rank_.node(),
                                                                 std::move(ack));
}

}  // namespace scimpi::mpi
