#include "mpi/rma/window.hpp"

#include "mpi/comm.hpp"
#include "mpi/rank.hpp"
#include "mpi/runtime.hpp"
#include "sim/trace.hpp"

#include <algorithm>

namespace scimpi::mpi {

Win::Win(Comm& comm, std::span<std::byte> local, int id)
    : comm_(&comm), rank_(&comm.rank_state()), local_(local), id_(id) {
    obs::MetricsRegistry& m = comm.cluster().metrics();
    rm_.direct_puts = &m.counter("rma.direct_puts");
    rm_.direct_gets = &m.counter("rma.direct_gets");
    rm_.emulated_puts = &m.counter("rma.emulated_puts");
    rm_.remote_put_gets = &m.counter("rma.remote_put_gets");
    rm_.get_conversions = &m.counter("rma.get_conversions");
    rm_.local_ops = &m.counter("rma.local_ops");
    rm_.accumulates = &m.counter("rma.accumulates");
    rm_.direct_put_bytes = &m.counter("rma.direct_put_bytes");
    rm_.emulated_put_bytes = &m.counter("rma.emulated_put_bytes");
    rm_.path_fallbacks = &m.counter("rma.path_fallbacks");
    rm_.lat_direct = &m.histogram("rma.latency_direct_ns");
    rm_.lat_emulated = &m.histogram("rma.latency_emulated_ns");
    rm_.lat_remote_put = &m.histogram("rma.latency_remote_put_ns");
    ck_ = comm.cluster().checker();
}

int Win::my_rank() const { return comm_->rank(); }  // communicator-local

std::shared_ptr<Win> Win::create(Comm& comm, void* base, std::size_t size) {
    Rank& rank = comm.rank_state();
    Cluster& cluster = comm.cluster();
    RmaState& rma = rank.rma();

    WinPeer me;
    me.node = rank.node();
    me.size = size;
    // SCI-MPICH remembers which parts of the global window live in SCI
    // shared memory (Section 4.2): regions from MPI_Alloc_mem do.
    if (size > 0 && comm.is_shared_mem(base)) {
        me.shared = true;
        me.seg = cluster.directory().create(rank.node(),
                                            {static_cast<std::byte*>(base), size});
    }

    // Exchange peer info {shared, seg.node, seg.id, size, node, next_win_id}
    // as u64[6]. The window id must be identical on every participant (the
    // emulation handlers route by it), so agree on the max pending id.
    const std::uint64_t mine[6] = {
        me.shared ? 1u : 0u,
        static_cast<std::uint64_t>(static_cast<std::int64_t>(me.seg.node)),
        static_cast<std::uint64_t>(static_cast<std::int64_t>(me.seg.id)),
        me.size,
        static_cast<std::uint64_t>(me.node),
        static_cast<std::uint64_t>(rma.peek_next_win_id()),
    };
    std::vector<std::uint64_t> all(6u * static_cast<std::size_t>(comm.size()));
    const Status st = comm.allgather(mine, sizeof mine, all.data());
    SCIMPI_REQUIRE(st.is_ok(), "win_create allgather failed: " + st.to_string());

    int id = 1;
    for (int r = 0; r < comm.size(); ++r)
        id = std::max(id, static_cast<int>(all[6u * static_cast<std::size_t>(r) + 5]));
    rma.set_next_win_id(id + 1);

    auto win = std::shared_ptr<Win>(
        new Win(comm, {static_cast<std::byte*>(base), size}, id));
    win->peers_.resize(static_cast<std::size_t>(comm.size()));
    for (int r = 0; r < comm.size(); ++r) {
        const std::uint64_t* p = all.data() + 6u * static_cast<std::size_t>(r);
        WinPeer& peer = win->peers_[static_cast<std::size_t>(r)];
        peer.shared = p[0] != 0;
        peer.seg.node = static_cast<int>(static_cast<std::int64_t>(p[1]));
        peer.seg.id = static_cast<int>(static_cast<std::int64_t>(p[2]));
        peer.size = p[3];
        peer.node = static_cast<int>(p[4]);
    }

    rma.register_win(win.get());
    if (win->ck_ != nullptr)
        win->ck_->on_win_create(id, rank.rank(), size);
    comm.barrier();  // no access before every rank finished creation
    return win;
}

Win::~Win() {
    rank_->rma().unregister_win(id_);
    const WinPeer& me = peers_.empty()
                            ? WinPeer{}
                            : peers_[static_cast<std::size_t>(my_rank())];
    if (me.shared) (void)comm_->cluster().directory().destroy(me.seg);
}

const sci::SciMapping& Win::peer_mapping(int target) {
    const auto it = mappings_.find(target);
    if (it != mappings_.end()) return it->second;
    const WinPeer& peer = peers_[static_cast<std::size_t>(target)];
    SCIMPI_REQUIRE(peer.shared, "peer window is not in shared memory");
    auto m = comm_->cluster().directory().import(rank_->node(), peer.seg);
    SCIMPI_REQUIRE(m.is_ok(), "window segment import failed");
    return mappings_.emplace(target, m.value()).first->second;
}

// ---------------------------------------------------------------------------
// RmaState
// ---------------------------------------------------------------------------

RmaState::RmaState(Rank& rank)
    : rank_(rank),
      channel_(rank.cluster().dispatcher(), rank.cluster().fabric().params(),
               rank.node()) {}

RmaState::~RmaState() = default;

void RmaState::register_win(Win* win) {
    windows_[win->id()] = win;
    win_locks_.emplace(win->id(),
                       std::make_unique<smi::SmiLock>(
                           rank_.node(), rank_.cluster().fabric().params()));
}

void RmaState::unregister_win(int id) {
    windows_.erase(id);
    win_locks_.erase(id);
}

smi::SmiLock& RmaState::win_lock(int win_id) {
    const auto it = win_locks_.find(win_id);
    SCIMPI_REQUIRE(it != win_locks_.end(), "lock on unknown window");
    return *it->second;
}

void RmaState::wait_all_pending(sim::Process& self) {
    const sim::ProfScope wait(self, obs::ProfState::wait_sync);
    while (pending_ > 0) pending_q_.park(self, "rma pending acks");
}

std::shared_ptr<sim::Event> RmaState::new_op_event(std::uint64_t op_id) {
    auto ev = std::make_shared<sim::Event>();
    op_events_[op_id] = ev;
    return ev;
}

Status RmaState::take_op_error(std::uint64_t op_id) {
    const auto it = op_errors_.find(op_id);
    if (it == op_errors_.end()) return Status::ok();
    Status st = it->second;
    op_errors_.erase(it);
    return st;
}

}  // namespace scimpi::mpi
