// One-sided synchronization: fence, post/start/complete/wait, lock/unlock.
#include "mpi/comm.hpp"
#include "mpi/rma/proto.hpp"
#include "mpi/rma/window.hpp"
#include "mpi/runtime.hpp"
#include "obs/evgraph.hpp"
#include "sim/trace.hpp"

#include <algorithm>

namespace scimpi::mpi {

namespace {
/// Transparent wait_sync node covering [t0, now]; zero-width nodes are kept
/// so the checker's lock hand-over edges have a stable anchor.
void note_sync(sim::Process& self, const char* name, SimTime t0) {
    obs::EventGraph& g = self.engine().evgraph();
    if (g.enabled()) g.node(self.id(), obs::EvCat::wait_sync, name, t0, self.now());
}
}  // namespace

bool Win::epoch_allows(int target) const {
    if (fence_epoch_) return true;
    if (std::find(access_group_.begin(), access_group_.end(), target) !=
        access_group_.end())
        return true;
    return std::find(locked_.begin(), locked_.end(), target) != locked_.end();
}

check::SyncMode Win::check_mode(int target) const {
    if (fence_epoch_) return check::SyncMode::fence;
    if (std::find(access_group_.begin(), access_group_.end(), target) !=
        access_group_.end())
        return check::SyncMode::pscw;
    if (std::find(locked_.begin(), locked_.end(), target) != locked_.end())
        return check::SyncMode::lock;
    return check::SyncMode::none;
}

void Win::fence() {
    sim::Process& self = rank_->proc();
    const sim::TraceScope trace(self, "rma:fence", "rma");
    const SimTime t0 = self.now();
    fence_epoch_ = true;  // a fence both closes the old epoch and opens a new one
    // 1. Direct puts of this epoch must have arrived at their targets.
    rank_->adapter().store_barrier(self);
    // 2. Emulated ops must have been applied (handler acks).
    rank_->rma().wait_all_pending(self);
    // 3. Epoch separation across the group.
    comm_->barrier();
    note_sync(self, "rma:fence", t0);
    if (ck_ != nullptr) ck_->on_fence(id_, rank_->rank(), self.now(), self.id());
}

void Win::post(std::span<const int> origin_group) {
    sim::Process& self = rank_->proc();
    exposure_group_.assign(origin_group.begin(), origin_group.end());
    if (ck_ != nullptr) {
        std::vector<int> origins;
        origins.reserve(exposure_group_.size());
        for (const int o : exposure_group_) origins.push_back(comm_->world_rank(o));
        ck_->on_post(id_, rank_->rank(), origins, self.now(), self.id());
    }
    for (const int origin : exposure_group_) {
        smi::Signal s;
        s.from_rank = rank_->rank();
        s.kind = rma_proto::kPost;
        s.a = static_cast<std::uint64_t>(id_);
        comm_->cluster()
            .rank_state(comm_->world_rank(origin))
            .rma()
            .channel()
            .post(self, rank_->node(), std::move(s));
    }
}

void Win::start(std::span<const int> target_group) {
    sim::Process& self = rank_->proc();
    // DPOR dependence: this reads posts_seen_, which the rma handler
    // increments when a kPost signal lands.
    sim::note_subject(this);
    access_group_.assign(target_group.begin(), target_group.end());
    // Wait until every target in the group has posted its exposure epoch.
    const sim::ProfScope wait(self, obs::ProfState::wait_sync);
    const SimTime t0 = self.now();
    while (posts_seen_ < static_cast<int>(access_group_.size()))
        rank_->rma().wait_signal_change(self);
    posts_seen_ -= static_cast<int>(access_group_.size());
    note_sync(self, "rma:start", t0);
    if (ck_ != nullptr) {
        std::vector<int> targets;
        targets.reserve(access_group_.size());
        for (const int t : access_group_) targets.push_back(comm_->world_rank(t));
        ck_->on_start(id_, rank_->rank(), targets, self.now(), self.id());
    }
}

void Win::complete() {
    sim::Process& self = rank_->proc();
    const SimTime t0 = self.now();
    rank_->adapter().store_barrier(self);
    rank_->rma().wait_all_pending(self);
    note_sync(self, "rma:complete", t0);
    if (ck_ != nullptr) ck_->on_complete(id_, rank_->rank(), self.now(), self.id());
    for (const int target : access_group_) {
        smi::Signal s;
        s.from_rank = rank_->rank();
        s.kind = rma_proto::kComplete;
        s.a = static_cast<std::uint64_t>(id_);
        comm_->cluster()
            .rank_state(comm_->world_rank(target))
            .rma()
            .channel()
            .post(self, rank_->node(), std::move(s));
    }
    access_group_.clear();
}

bool Win::test() {
    // DPOR dependence: the order of this read against the rma handler's
    // kComplete increment decides whether the epoch looks open or closed.
    sim::note_subject(this);
    if (completes_seen_ < static_cast<int>(exposure_group_.size())) return false;
    completes_seen_ -= static_cast<int>(exposure_group_.size());
    // Only a test() that actually closes an open exposure epoch is a wait;
    // repeated calls with no epoch would read as unmatched waits otherwise.
    if (ck_ != nullptr && !exposure_group_.empty()) {
        sim::Process& self = rank_->proc();
        ck_->on_wait(id_, rank_->rank(), self.now(), self.id());
    }
    exposure_group_.clear();
    return true;
}

void Win::wait() {
    sim::Process& self = rank_->proc();
    sim::note_subject(this);
    const sim::ProfScope wait(self, obs::ProfState::wait_sync);
    const SimTime t0 = self.now();
    while (completes_seen_ < static_cast<int>(exposure_group_.size()))
        rank_->rma().wait_signal_change(self);
    completes_seen_ -= static_cast<int>(exposure_group_.size());
    note_sync(self, "rma:wait", t0);
    if (ck_ != nullptr) ck_->on_wait(id_, rank_->rank(), self.now(), self.id());
    exposure_group_.clear();
}

void Win::lock(int target, bool /*exclusive*/) {
    // Shared-memory lock owned by the target rank (paper ref. [14]). Only
    // exclusive locks are implemented — shared locks degrade to exclusive.
    sim::Process& self = rank_->proc();
    const SimTime t0 = self.now();
    {
        const sim::ProfScope wait(self, obs::ProfState::wait_sync);
        comm_->cluster()
            .rank_state(comm_->world_rank(target))
            .rma()
            .win_lock(id_)
            .acquire(self, rank_->node());
    }
    // Recorded before on_lock: the checker's hand-over edge (previous
    // unlocker -> this acquisition) must land on this wait node.
    note_sync(self, "rma:lock", t0);
    locked_.push_back(target);
    if (ck_ != nullptr)
        ck_->on_lock(id_, rank_->rank(), comm_->world_rank(target), self.now(),
                     self.id());
}

void Win::unlock(int target) {
    sim::Process& self = rank_->proc();
    // Passive target: our accesses must be globally visible before the lock
    // is released.
    rank_->adapter().store_barrier(self);
    rank_->rma().wait_all_pending(self);
    // Recorded before on_unlock: the checker stashes this node as the
    // hand-over source for the next acquirer of the lock.
    {
        obs::EventGraph& g = self.engine().evgraph();
        if (g.enabled())
            g.node(self.id(), obs::EvCat::rma, "rma:unlock", self.now(), self.now());
    }
    if (ck_ != nullptr)
        ck_->on_unlock(id_, rank_->rank(), comm_->world_rank(target), self.now(),
                       self.id());
    std::erase(locked_, target);
    comm_->cluster()
        .rank_state(comm_->world_rank(target))
        .rma()
        .win_lock(id_)
        .release(self, rank_->node());
}

}  // namespace scimpi::mpi
