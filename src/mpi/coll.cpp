// Collectives over the p2p engine: dissemination barrier, binomial-tree
// broadcast and reduction, ring allgather. Internal messages use reserved
// negative tags, which user-level ANY_TAG receives never match.
#include <cstring>
#include <vector>

#include "mpi/comm.hpp"

namespace scimpi::mpi {

namespace {
constexpr int kTagBarrier = -16;
constexpr int kTagBcast = -32;
constexpr int kTagReduce = -48;
constexpr int kTagGather = -64;

/// Internal send/recv bypass the non-negative tag check of the public API
/// and translate communicator-local ranks to world ranks.
Status internal_send(Comm& c, const void* buf, std::size_t bytes, int dst, int tag) {
    return c.rank_state().send(buf, static_cast<int>(bytes), Datatype::byte_(),
                               c.world_rank(dst), tag, c.context());
}
RecvResult internal_recv(Comm& c, void* buf, std::size_t bytes, int src, int tag) {
    return c.rank_state().recv(buf, static_cast<int>(bytes), Datatype::byte_(),
                               c.world_rank(src), tag, c.context());
}
}  // namespace

void Comm::barrier() {
    const int n = size();
    const int r = rank();
    if (n == 1) return;
    std::byte token{0};
    int round = 0;
    for (int k = 1; k < n; k <<= 1, ++round) {
        const int dst = (r + k) % n;
        const int src = (r - k + n) % n;
        auto rx = rank_->irecv(&token, 1, Datatype::byte_(), world_rank(src),
                               kTagBarrier - round, context());
        auto tx = rank_->isend(&token, 1, Datatype::byte_(), world_rank(dst),
                               kTagBarrier - round, context());
        rank_->wait(*tx);
        rank_->wait(*rx);
    }
}

Status Comm::bcast(void* buf, int count, const Datatype& type, int root) {
    const int n = size();
    if (n == 1) return Status::ok();
    const int vr = (rank() - root + n) % n;
    // Receive from the parent (clear the lowest set bit).
    int mask = 1;
    while (mask < n) {
        if ((vr & mask) != 0) {
            const int parent = ((vr - mask) + root) % n;
            const RecvResult res = rank_->recv(buf, count, type, world_rank(parent),
                                               kTagBcast, context());
            if (!res.status) return res.status;
            break;
        }
        mask <<= 1;
    }
    // Forward to children.
    mask >>= 1;
    while (mask > 0) {
        if ((vr & (mask - 1)) == 0 && (vr & mask) == 0 && vr + mask < n) {
            const int child = (vr + mask + root) % n;
            const Status st = rank_->send(buf, count, type, world_rank(child),
                                          kTagBcast, context());
            if (!st) return st;
        }
        mask >>= 1;
    }
    return Status::ok();
}

Status Comm::reduce_sum(const double* in, double* out, int n_elems, int root) {
    const int n = size();
    const int vr = (rank() - root + n) % n;
    std::vector<double> acc(in, in + n_elems);
    std::vector<double> tmp(static_cast<std::size_t>(n_elems));
    int mask = 1;
    while (mask < n) {
        if ((vr & mask) != 0) {
            const int parent = ((vr - mask) + root) % n;
            const Status st = internal_send(*this, acc.data(),
                                            acc.size() * sizeof(double), parent,
                                            kTagReduce);
            if (!st) return st;
            break;
        }
        if (vr + mask < n) {
            const int child = (vr + mask + root) % n;
            const RecvResult res = internal_recv(
                *this, tmp.data(), tmp.size() * sizeof(double), child, kTagReduce);
            if (!res.status) return res.status;
            // Model the arithmetic: one flop per element at ~1 ns each.
            proc().delay(n_elems);
            for (int i = 0; i < n_elems; ++i) acc[static_cast<std::size_t>(i)] +=
                tmp[static_cast<std::size_t>(i)];
        }
        mask <<= 1;
    }
    if (rank() == root) std::memcpy(out, acc.data(), acc.size() * sizeof(double));
    return Status::ok();
}

Status Comm::allreduce_sum(const double* in, double* out, int n_elems) {
    std::vector<double> result(static_cast<std::size_t>(n_elems));
    Status st = reduce_sum(in, result.data(), n_elems, 0);
    if (!st) return st;
    if (rank() == 0) std::memcpy(out, result.data(), result.size() * sizeof(double));
    st = bcast(out, static_cast<int>(result.size() * sizeof(double)),
               Datatype::byte_(), 0);
    return st;
}

Status Comm::allgather(const void* in, std::size_t bytes_each, void* out) {
    const int n = size();
    const int r = rank();
    auto* dst = static_cast<std::byte*>(out);
    std::memcpy(dst + static_cast<std::size_t>(r) * bytes_each, in, bytes_each);
    // Ring: in step s, pass along the block that originated at (r - s).
    for (int s = 0; s < n - 1; ++s) {
        const int send_block = (r - s + n) % n;
        const int recv_block = (r - s - 1 + n) % n;
        const int to = (r + 1) % n;
        const int from = (r - 1 + n) % n;
        auto rx = rank_->irecv(dst + static_cast<std::size_t>(recv_block) * bytes_each,
                               static_cast<int>(bytes_each), Datatype::byte_(),
                               world_rank(from), kTagGather - s, context());
        auto tx = rank_->isend(dst + static_cast<std::size_t>(send_block) * bytes_each,
                               static_cast<int>(bytes_each), Datatype::byte_(),
                               world_rank(to), kTagGather - s, context());
        rank_->wait(*tx);
        rank_->wait(*rx);
        if (!rx->status) return rx->status;
    }
    return Status::ok();
}

Status Comm::gather(const void* in, std::size_t bytes_each, void* out, int root) {
    const int n = size();
    if (rank() != root)
        return internal_send(*this, in, bytes_each, root, kTagGather - 100);
    auto* dst = static_cast<std::byte*>(out);
    std::memcpy(dst + static_cast<std::size_t>(root) * bytes_each, in, bytes_each);
    for (int r = 0; r < n; ++r) {
        if (r == root) continue;
        const RecvResult res = internal_recv(
            *this, dst + static_cast<std::size_t>(r) * bytes_each, bytes_each, r,
            kTagGather - 100);
        if (!res.status) return res.status;
    }
    return Status::ok();
}

Status Comm::scatter(const void* in, std::size_t bytes_each, void* out, int root) {
    const int n = size();
    if (rank() == root) {
        const auto* src = static_cast<const std::byte*>(in);
        for (int r = 0; r < n; ++r) {
            if (r == root) continue;
            const Status st = internal_send(
                *this, src + static_cast<std::size_t>(r) * bytes_each, bytes_each, r,
                kTagGather - 101);
            if (!st) return st;
        }
        std::memcpy(out, src + static_cast<std::size_t>(root) * bytes_each, bytes_each);
        return Status::ok();
    }
    return internal_recv(*this, out, bytes_each, root, kTagGather - 101).status;
}

Status Comm::alltoall(const void* in, std::size_t bytes_each, void* out) {
    const int n = size();
    const int r = rank();
    const auto* src = static_cast<const std::byte*>(in);
    auto* dst = static_cast<std::byte*>(out);
    std::memcpy(dst + static_cast<std::size_t>(r) * bytes_each,
                src + static_cast<std::size_t>(r) * bytes_each, bytes_each);
    // Pairwise exchange: in step s swap with peer (r + s) and (r - s).
    for (int s = 1; s < n; ++s) {
        const int to = (r + s) % n;
        const int from = (r - s + n) % n;
        auto rx = rank_->irecv(dst + static_cast<std::size_t>(from) * bytes_each,
                               static_cast<int>(bytes_each), Datatype::byte_(),
                               world_rank(from), kTagGather - 200 - s, context());
        auto tx = rank_->isend(src + static_cast<std::size_t>(to) * bytes_each,
                               static_cast<int>(bytes_each), Datatype::byte_(),
                               world_rank(to), kTagGather - 200 - s, context());
        rank_->wait(*tx);
        rank_->wait(*rx);
        if (!rx->status) return rx->status;
    }
    return Status::ok();
}

}  // namespace scimpi::mpi
