// mpi::explore_cluster — the MPI front end of check::Explorer: runs a rank
// program across systematically perturbed schedules, one fresh Cluster per
// candidate schedule, until the checker flags a violation (or the run
// deadlocks) or the DPOR-reduced schedule space / budget is exhausted.
//
// On a finding the minimized decision trace is written to
// ClusterOptions::explore.trace_file (when set); SCIMPI_EXPLORE_REPLAY=<that
// file> re-runs the exact schedule in a normal single-run Cluster and must
// reproduce the byte-identical violation report.
#pragma once

#include <functional>

#include "check/explorer.hpp"
#include "mpi/runtime.hpp"
#include "obs/metrics.hpp"

namespace scimpi::mpi {

struct ExploreClusterResult {
    check::ExploreResult result;
    /// Stats snapshot of the verification replay of the minimized schedule
    /// (an empty default report when nothing was found), with the
    /// RunReport::explore summary section filled either way.
    obs::RunReport report;
    /// Checker report of that verification replay; byte-identical to
    /// result.finding.report when the replay reproduced the finding.
    std::string replay_report;
    bool replay_matches = false;
};

/// Explore the schedule space of `rank_main` under `base` (whose `explore`
/// spec supplies budget/depth/fuzz; `base.schedule` must be null). Each
/// schedule runs with checking enabled regardless of base.check.
ExploreClusterResult explore_cluster(const ClusterOptions& base,
                                     const std::function<void(Comm&)>& rank_main);

}  // namespace scimpi::mpi
