// The per-rank table of in-flight protocol operations. Single source of
// truth for outstanding sends/receives: the protocol engine inserts ops at
// issue and erases them at completion, the request engine resolves handles
// through it, and the flight-recorder queue-depth gauges
// (mpi.live_sends/mpi.live_recvs) read its sizes — there is deliberately no
// second bookkeeping copy anywhere.
#pragma once

#include <cstdint>
#include <memory>
#include <unordered_map>

namespace scimpi::mpi {

struct SendOp;
struct RecvOp;

namespace req {

class OpTable {
public:
    /// Allocate the next operation handle (shared across sends and recvs so
    /// a handle identifies one op unambiguously).
    std::uint64_t next_handle() { return next_handle_++; }

    void insert_send(std::uint64_t h, std::shared_ptr<SendOp> op) {
        sends_.emplace(h, std::move(op));
    }
    void insert_recv(std::uint64_t h, std::shared_ptr<RecvOp> op) {
        recvs_.emplace(h, std::move(op));
    }

    [[nodiscard]] std::shared_ptr<SendOp> send(std::uint64_t h) const {
        const auto it = sends_.find(h);
        return it == sends_.end() ? nullptr : it->second;
    }
    [[nodiscard]] std::shared_ptr<RecvOp> recv(std::uint64_t h) const {
        const auto it = recvs_.find(h);
        return it == recvs_.end() ? nullptr : it->second;
    }

    void erase_send(std::uint64_t h) { sends_.erase(h); }
    void erase_recv(std::uint64_t h) { recvs_.erase(h); }

    [[nodiscard]] std::size_t send_count() const { return sends_.size(); }
    [[nodiscard]] std::size_t recv_count() const { return recvs_.size(); }

private:
    std::unordered_map<std::uint64_t, std::shared_ptr<SendOp>> sends_;
    std::unordered_map<std::uint64_t, std::shared_ptr<RecvOp>> recvs_;
    std::uint64_t next_handle_ = 1;
};

}  // namespace req
}  // namespace scimpi::mpi
