// MPI-style request handles and the per-rank request/progress engine.
//
// A Request unifies the protocol layer's SendOp/RecvOp and the nonblocking
// collective schedules (req/nbc.hpp) behind one completion interface:
// Isend/Irecv/Wait/Test/Waitall/Waitany/Testsome, plus persistent requests
// (Send_init/Recv_init/Start/Startall) that re-issue a frozen argument set
// without re-validating it each iteration.
//
// Lifecycle:
//   * non-persistent: issued at creation, finalized by the first successful
//     Wait/Test; afterwards the handle stays queryable (sticky status).
//   * persistent: created inactive; Start issues an operation and makes it
//     active; Wait/Test completion returns it to inactive, ready for the
//     next Start. Wait on an inactive persistent request returns
//     immediately (MPI semantics).
//
// Finalization routes through Rank::wait so the scimpi-check pending-buffer
// entry opened at issue time is closed exactly once, and records the
// overlap achieved by the request: of the window between issue and
// completion, the time *not* spent blocked in Wait was available to user
// compute (obs::Profiler::comm_overlap, reported per rank in RunReport).
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "mpi/datatype/datatype.hpp"
#include "mpi/types.hpp"
#include "obs/metrics.hpp"

namespace scimpi::mpi {

class Rank;
struct SendOp;
struct RecvOp;

namespace req {

class Engine;
class NbcSched;

enum class Kind : std::uint8_t { none, send, recv, coll };

/// Shared state behind a Request handle (copyable, like MPI_Request).
struct State {
    Kind kind = Kind::none;
    bool persistent = false;
    bool started = false;  ///< operation in flight, not yet finalized
    bool done = false;     ///< non-persistent only: finalized for good
    std::shared_ptr<SendOp> send;
    std::shared_ptr<RecvOp> recv;
    std::shared_ptr<NbcSched> coll;
    Status status;
    RecvResult result;  ///< receives only, valid once finalized
    // Frozen arguments (persistent requests re-issue from these).
    const void* sbuf = nullptr;
    void* rbuf = nullptr;
    int count = 0;
    Datatype type;
    int peer = -1;  ///< world rank
    int tag = 0;
    int context = 0;
    SimTime issue_time = 0;
};

/// Non-blocking operation handle. Default-constructed handles are invalid
/// and behave like MPI_REQUEST_NULL: Wait/Test succeed immediately.
class Request {
public:
    Request() = default;

    [[nodiscard]] bool valid() const { return st_ != nullptr; }
    [[nodiscard]] bool persistent() const { return st_ != nullptr && st_->persistent; }
    /// An operation is in flight and not yet finalized.
    [[nodiscard]] bool active() const { return st_ != nullptr && st_->started; }
    /// The underlying operation finished (Wait will not block). Invalid and
    /// inactive-persistent requests count as complete.
    [[nodiscard]] bool complete() const;
    [[nodiscard]] Status status() const { return st_ != nullptr ? st_->status : Status::ok(); }
    /// Source/tag/bytes of a completed receive (world source; Comm
    /// translates to communicator-local).
    [[nodiscard]] const RecvResult& result() const;

private:
    friend class Engine;
    std::shared_ptr<State> st_;
};

/// Per-rank request engine: owns the nonblocking-collective schedules in
/// flight and implements the Wait/Test family over all request kinds.
/// Created lazily by Rank::requests().
class Engine {
public:
    explicit Engine(Rank& rank);
    Engine(const Engine&) = delete;
    Engine& operator=(const Engine&) = delete;

    Request isend(const void* buf, int count, const Datatype& type, int dst,
                  int tag, int context);
    Request irecv(void* buf, int count, const Datatype& type, int src, int tag,
                  int context);

    // Persistent requests.
    Request send_init(const void* buf, int count, const Datatype& type, int dst,
                      int tag, int context);
    Request recv_init(void* buf, int count, const Datatype& type, int src, int tag,
                      int context);
    void start(Request& r);
    void startall(std::span<Request> rs);

    /// Register a built nonblocking-collective schedule and issue its first
    /// round; the returned request completes when the program runs dry.
    Request start_coll(std::shared_ptr<NbcSched> sched);
    /// Tag base for the next collective on `context` (advances a per-context
    /// sequence number; members of a communicator issue collectives in the
    /// same order, so the bases agree across ranks).
    int nbc_tag_base(int context);

    // Completion.
    Status wait(Request& r);
    bool test(Request& r, Status* st = nullptr);
    Status waitall(std::span<Request> rs);
    /// Block until any active request completes; returns its index, or -1
    /// when none is active (all invalid/inactive/finalized).
    int waitany(std::span<Request> rs);
    /// Indices of requests that completed without blocking (may be empty).
    std::vector<int> testsome(std::span<Request> rs);

    /// Drive all in-flight collective schedules as far as they go without
    /// blocking. Reentrancy-guarded: the progress daemon and a rank blocked
    /// inside a schedule's own send can both arrive here.
    void pump();

    [[nodiscard]] std::size_t live_coll_count() const { return scheds_.size(); }

private:
    [[nodiscard]] static bool op_complete(const State& s);
    /// Close out a completed operation: status/result, overlap accounting,
    /// checker hand-off; persistent requests return to inactive.
    void finalize(State& s, SimTime wait_enter);
    void issue(State& s);

    Rank& rank_;
    std::vector<std::shared_ptr<NbcSched>> scheds_;
    std::vector<std::pair<int, int>> nbc_seq_;  ///< context -> next sequence
    bool pumping_ = false;
    obs::Histogram* overlap_pct_ = nullptr;  ///< req.overlap_pct
    obs::Counter* c_ops_ = nullptr;          ///< req.nonblocking_ops
    obs::Counter* c_pstarts_ = nullptr;      ///< req.persistent_starts
    obs::Counter* c_nbc_ = nullptr;          ///< req.nbc_scheds
};

}  // namespace req
}  // namespace scimpi::mpi
