#include "mpi/req/nbc.hpp"

#include <cstring>

#include "mpi/datatype/datatype.hpp"
#include "mpi/rank.hpp"

namespace scimpi::mpi::req {

NbcSched::NbcSched(Rank& rank, int context, int tag_base, std::string label)
    : rank_(rank), context_(context), tag_base_(tag_base), label_(std::move(label)) {}

void NbcSched::issue(const NbcRound& r) {
    const int tag = tag_base_ - static_cast<int>(next_round_);
    // Pre-post the receives of the round before its sends: a peer's send
    // for this round can then always land on a posted receive.
    for (const NbcStep& st : r.steps)
        if (!st.send)
            live_r_.push_back(rank_.irecv(st.rbuf, static_cast<int>(st.bytes),
                                          Datatype::byte_(), st.peer, tag,
                                          context_));
    for (const NbcStep& st : r.steps)
        if (st.send)
            live_s_.push_back(rank_.isend(st.sbuf, static_cast<int>(st.bytes),
                                          Datatype::byte_(), st.peer, tag,
                                          context_));
}

bool NbcSched::pump() {
    if (done_) return true;
    SCIMPI_REQUIRE(rounds.size() <= kNbcMaxRounds, "NBC schedule too long");
    for (;;) {
        bool inflight = false;
        for (const auto& s : live_s_)
            if (!s->complete) { inflight = true; break; }
        if (!inflight)
            for (const auto& r : live_r_)
                if (!r->complete) { inflight = true; break; }
        if (inflight) break;
        // Rank::wait returns immediately (everything is complete) but closes
        // the scimpi-check pending-buffer entries the round's ops opened.
        for (const auto& s : live_s_) {
            rank_.wait(*s);
            if (!s->status && status_.is_ok()) status_ = s->status;
        }
        for (const auto& r : live_r_) {
            rank_.wait(*r);
            if (!r->status && status_.is_ok()) status_ = r->status;
        }
        live_s_.clear();
        live_r_.clear();
        if (next_round_ > 0 && rounds[next_round_ - 1].post) rounds[next_round_ - 1].post();
        if (next_round_ >= rounds.size()) {
            done_ = true;
            break;
        }
        issue(rounds[next_round_]);
        ++next_round_;
        // Loop: short/eager steps may have completed synchronously, in which
        // case the next round can be issued right away.
    }
    return done_;
}

// ---------------------------------------------------------------------------
// Schedule builders
// ---------------------------------------------------------------------------

std::shared_ptr<NbcSched> make_ibarrier(Rank& rk, const std::vector<int>& members,
                                        int me, int context, int tag_base) {
    auto sched = std::make_shared<NbcSched>(rk, context, tag_base, "ibarrier");
    const int n = static_cast<int>(members.size());
    if (n <= 1) return sched;
    // Dissemination: after round t every rank has heard (transitively) from
    // 2^(t+1) predecessors; ceil(log2 n) rounds synchronize everyone.
    sched->scratch.emplace_back(1);  // send token
    auto* token = sched->scratch.back().data();
    for (int dist = 1; dist < n; dist *= 2) {
        NbcRound round;
        sched->scratch.emplace_back(1);
        NbcStep tx;
        tx.send = true;
        tx.sbuf = token;
        tx.bytes = 1;
        tx.peer = members[static_cast<std::size_t>((me + dist) % n)];
        NbcStep rx;
        rx.rbuf = sched->scratch.back().data();
        rx.bytes = 1;
        rx.peer = members[static_cast<std::size_t>((me - dist + n) % n)];
        round.steps.push_back(rx);
        round.steps.push_back(tx);
        sched->rounds.push_back(std::move(round));
    }
    return sched;
}

std::shared_ptr<NbcSched> make_ibcast(Rank& rk, const std::vector<int>& members,
                                      int me, int context, int tag_base, void* buf,
                                      std::size_t bytes, int root) {
    auto sched = std::make_shared<NbcSched>(rk, context, tag_base, "ibcast");
    const int n = static_cast<int>(members.size());
    if (n <= 1) return sched;
    // Binomial doubling with globally aligned rounds: in round t (mask=2^t)
    // every rank that already holds the data (vr < mask) forwards it to
    // vr + mask; vr in [mask, 2*mask) receives. Ranks idle in a round carry
    // an empty round so tags line up across the communicator.
    const int vr = (me - root + n) % n;
    for (int mask = 1; mask < n; mask <<= 1) {
        NbcRound round;
        if (vr < mask && vr + mask < n) {
            NbcStep tx;
            tx.send = true;
            tx.sbuf = buf;
            tx.bytes = bytes;
            tx.peer = members[static_cast<std::size_t>((vr + mask + root) % n)];
            round.steps.push_back(tx);
        } else if (vr >= mask && vr < 2 * mask) {
            NbcStep rx;
            rx.rbuf = buf;
            rx.bytes = bytes;
            rx.peer = members[static_cast<std::size_t>((vr - mask + root) % n)];
            round.steps.push_back(rx);
        }
        sched->rounds.push_back(std::move(round));
    }
    return sched;
}

std::shared_ptr<NbcSched> make_iallreduce(Rank& rk, const std::vector<int>& members,
                                          int me, int context, int tag_base,
                                          const double* in, double* out, int n_elems) {
    auto sched = std::make_shared<NbcSched>(rk, context, tag_base, "iallreduce");
    const int n = static_cast<int>(members.size());
    const std::size_t bytes = static_cast<std::size_t>(n_elems) * sizeof(double);
    sched->scratch.emplace_back(bytes);  // acc
    sched->scratch.emplace_back(bytes);  // tmp
    auto* acc = reinterpret_cast<double*>(sched->scratch[0].data());
    auto* tmp = reinterpret_cast<double*>(sched->scratch[1].data());
    std::memcpy(acc, in, bytes);
    Rank* rp = &rk;
    auto reduce_post = [rp, acc, tmp, n_elems] {
        rp->cur_proc().delay(n_elems);  // one flop per element, as in coll/
        for (int i = 0; i < n_elems; ++i)
            acc[static_cast<std::size_t>(i)] += tmp[static_cast<std::size_t>(i)];
    };
    if (n > 1) {
        // Recursive doubling with the MPICH non-power-of-two fold/unfold
        // (mirrors coll/p2p_algos.cpp allreduce_rdouble), one round per
        // exchange so every member agrees on the round→tag mapping.
        int pof2 = 1;
        while (pof2 * 2 <= n) pof2 *= 2;
        const int rem = n - pof2;
        int newrank = 0;
        {
            NbcRound fold;
            if (me < 2 * rem) {
                NbcStep st;
                st.bytes = bytes;
                if ((me % 2) != 0) {
                    st.send = true;
                    st.sbuf = acc;
                    st.peer = members[static_cast<std::size_t>(me - 1)];
                    newrank = -1;
                } else {
                    st.rbuf = tmp;
                    st.peer = members[static_cast<std::size_t>(me + 1)];
                    fold.post = reduce_post;
                    newrank = me / 2;
                }
                fold.steps.push_back(st);
            } else {
                newrank = me - rem;
            }
            sched->rounds.push_back(std::move(fold));
        }
        for (int mask = 1; mask < pof2; mask <<= 1) {
            NbcRound xchg;
            if (newrank >= 0) {
                const int partner_new = newrank ^ mask;
                const int partner =
                    partner_new < rem ? partner_new * 2 : partner_new + rem;
                NbcStep tx;
                tx.send = true;
                tx.sbuf = acc;
                tx.bytes = bytes;
                tx.peer = members[static_cast<std::size_t>(partner)];
                NbcStep rx;
                rx.rbuf = tmp;
                rx.bytes = bytes;
                rx.peer = tx.peer;
                xchg.steps.push_back(rx);
                xchg.steps.push_back(tx);
                // The send reads acc and completes before the round's post
                // runs, so reducing into acc here never corrupts the stream.
                xchg.post = reduce_post;
            }
            sched->rounds.push_back(std::move(xchg));
        }
        {
            NbcRound unfold;
            if (me < 2 * rem) {
                NbcStep st;
                st.bytes = bytes;
                if ((me % 2) != 0) {
                    st.rbuf = acc;
                    st.peer = members[static_cast<std::size_t>(me - 1)];
                } else {
                    st.send = true;
                    st.sbuf = acc;
                    st.peer = members[static_cast<std::size_t>(me + 1)];
                }
                unfold.steps.push_back(st);
            }
            sched->rounds.push_back(std::move(unfold));
        }
    }
    NbcRound fin;
    fin.post = [acc, out, bytes] { std::memcpy(out, acc, bytes); };
    sched->rounds.push_back(std::move(fin));
    return sched;
}

std::shared_ptr<NbcSched> make_iallgather(Rank& rk, const std::vector<int>& members,
                                          int me, int context, int tag_base,
                                          const void* in, std::size_t bytes_each,
                                          void* out) {
    auto sched = std::make_shared<NbcSched>(rk, context, tag_base, "iallgather");
    const int n = static_cast<int>(members.size());
    auto* dst = static_cast<std::byte*>(out);
    std::memcpy(dst + static_cast<std::size_t>(me) * bytes_each, in, bytes_each);
    // Ring: in step s, pass along the block that originated at (me - s).
    // The block sent in round s was received in round s-1, which the round
    // barrier orders before this round's send.
    for (int s = 0; s < n - 1; ++s) {
        NbcRound round;
        const int send_block = (me - s + n) % n;
        const int recv_block = (me - s - 1 + n) % n;
        NbcStep tx;
        tx.send = true;
        tx.sbuf = dst + static_cast<std::size_t>(send_block) * bytes_each;
        tx.bytes = bytes_each;
        tx.peer = members[static_cast<std::size_t>((me + 1) % n)];
        NbcStep rx;
        rx.rbuf = dst + static_cast<std::size_t>(recv_block) * bytes_each;
        rx.bytes = bytes_each;
        rx.peer = members[static_cast<std::size_t>((me - 1 + n) % n)];
        round.steps.push_back(rx);
        round.steps.push_back(tx);
        sched->rounds.push_back(std::move(round));
    }
    return sched;
}

}  // namespace scimpi::mpi::req
