#include "mpi/req/request.hpp"

#include "mpi/rank.hpp"
#include "mpi/req/nbc.hpp"
#include "mpi/runtime.hpp"
#include "obs/profiler.hpp"
#include "sim/engine.hpp"

namespace scimpi::mpi {

// Lazy so ranks that never touch nonblocking requests pay nothing.
req::Engine& Rank::requests() {
    if (req_ == nullptr) req_ = std::make_unique<req::Engine>(*this);
    return *req_;
}

namespace req {

namespace {

bool state_complete(const State& s) {
    switch (s.kind) {
        case Kind::none: return true;
        case Kind::send: return s.send == nullptr || s.send->complete;
        case Kind::recv: return s.recv == nullptr || s.recv->complete;
        case Kind::coll: return s.coll == nullptr || s.coll->done();
    }
    return true;
}

/// Active and not yet finalized: the only states Wait/Test must drive.
bool needs_completion(const State* s) {
    return s != nullptr && s->kind != Kind::none && !s->done && s->started;
}

/// Causal-graph completion node of the underlying op (0 when unknown):
/// the release event a blocked Wait's transparent node hangs off.
std::uint64_t state_ev_done(const State& s) {
    switch (s.kind) {
        case Kind::send: return s.send != nullptr ? s.send->ev_done : 0;
        case Kind::recv: return s.recv != nullptr ? s.recv->ev_done : 0;
        case Kind::none:
        case Kind::coll: return 0;  // collectives record their own edges
    }
    return 0;
}

}  // namespace

bool Request::complete() const {
    if (st_ == nullptr || st_->done || !st_->started) return true;
    return state_complete(*st_);
}

const RecvResult& Request::result() const {
    SCIMPI_REQUIRE(st_ != nullptr, "result() on an invalid request");
    return st_->result;
}

Engine::Engine(Rank& rank) : rank_(rank) {
    obs::MetricsRegistry& m = rank.cluster().metrics();
    overlap_pct_ = &m.histogram("req.overlap_pct");
    c_ops_ = &m.counter("req.nonblocking_ops");
    c_pstarts_ = &m.counter("req.persistent_starts");
    c_nbc_ = &m.counter("req.nbc_scheds");
}

bool Engine::op_complete(const State& s) { return state_complete(s); }

void Engine::issue(State& s) {
    s.issue_time = rank_.proc().now();
    s.started = true;
    c_ops_->inc();
    if (s.kind == Kind::send)
        s.send = rank_.isend(s.sbuf, s.count, s.type, s.peer, s.tag, s.context);
    else
        s.recv = rank_.irecv(s.rbuf, s.count, s.type, s.peer, s.tag, s.context);
}

Request Engine::isend(const void* buf, int count, const Datatype& type, int dst,
                      int tag, int context) {
    Request r;
    r.st_ = std::make_shared<State>();
    State& s = *r.st_;
    s.kind = Kind::send;
    s.sbuf = buf;
    s.count = count;
    s.type = type;
    s.peer = dst;
    s.tag = tag;
    s.context = context;
    issue(s);
    return r;
}

Request Engine::irecv(void* buf, int count, const Datatype& type, int src, int tag,
                      int context) {
    Request r;
    r.st_ = std::make_shared<State>();
    State& s = *r.st_;
    s.kind = Kind::recv;
    s.rbuf = buf;
    s.count = count;
    s.type = type;
    s.peer = src;
    s.tag = tag;
    s.context = context;
    issue(s);
    return r;
}

Request Engine::send_init(const void* buf, int count, const Datatype& type, int dst,
                          int tag, int context) {
    Request r;
    r.st_ = std::make_shared<State>();
    State& s = *r.st_;
    s.kind = Kind::send;
    s.persistent = true;
    s.sbuf = buf;
    s.count = count;
    s.type = type;
    s.peer = dst;
    s.tag = tag;
    s.context = context;
    return r;
}

Request Engine::recv_init(void* buf, int count, const Datatype& type, int src,
                          int tag, int context) {
    Request r;
    r.st_ = std::make_shared<State>();
    State& s = *r.st_;
    s.kind = Kind::recv;
    s.persistent = true;
    s.rbuf = buf;
    s.count = count;
    s.type = type;
    s.peer = src;
    s.tag = tag;
    s.context = context;
    return r;
}

void Engine::start(Request& r) {
    SCIMPI_REQUIRE(r.st_ != nullptr && r.st_->persistent,
                   "start: not a persistent request");
    SCIMPI_REQUIRE(!r.st_->started, "start: persistent request already active");
    c_pstarts_->inc();
    issue(*r.st_);
}

void Engine::startall(std::span<Request> rs) {
    for (Request& r : rs) start(r);
}

Request Engine::start_coll(std::shared_ptr<NbcSched> sched) {
    Request r;
    r.st_ = std::make_shared<State>();
    State& s = *r.st_;
    s.kind = Kind::coll;
    s.coll = sched;
    s.issue_time = rank_.proc().now();
    s.started = true;
    c_nbc_->inc();
    scheds_.push_back(std::move(sched));
    pump();  // issue round 0 (and any rounds that complete synchronously)
    return r;
}

int Engine::nbc_tag_base(int context) {
    for (auto& [ctx, seq] : nbc_seq_)
        if (ctx == context)
            return kTagNbcBase - (seq++ % kNbcSeqWindow) * kNbcMaxRounds;
    nbc_seq_.emplace_back(context, 1);
    return kTagNbcBase;
}

void Engine::pump() {
    if (pumping_ || scheds_.empty()) return;
    // The guard serializes the two possible drivers (the rank inside
    // Wait/Test and the async-progress daemon): a schedule suspended inside
    // one of its own sends must not be re-entered by the other driver.
    pumping_ = true;
    for (std::size_t i = 0; i < scheds_.size(); ++i) {
        // Copy the shared_ptr: a nested completion may append to scheds_.
        const std::shared_ptr<NbcSched> sched = scheds_[i];
        sched->pump();
    }
    std::erase_if(scheds_, [](const auto& s) { return s->done(); });
    pumping_ = false;
}

void Engine::finalize(State& s, SimTime wait_enter) {
    const SimTime now = rank_.proc().now();
    switch (s.kind) {
        case Kind::send:
            rank_.wait(*s.send);  // already complete: closes checker bookkeeping
            s.status = s.send->status;
            break;
        case Kind::recv:
            rank_.wait(*s.recv);
            s.status = s.recv->status;
            s.result = RecvResult{s.recv->status, s.recv->env.src, s.recv->env.tag,
                                  s.recv->received};
            break;
        case Kind::coll:
            s.status = s.coll->status();
            break;
        case Kind::none: break;
    }
    if (s.kind != Kind::none) {
        // Overlap attribution: of the issue→completion window, whatever was
        // not spent blocked inside this Wait was available to user compute.
        // Test-path completions expose no wait time at all.
        const SimTime window = now - s.issue_time;
        const SimTime exposed = now > wait_enter ? now - wait_enter : 0;
        const SimTime overlapped = window > exposed ? window - exposed : 0;
        if (window > 0) {
            obs::Profiler& prof = rank_.proc().engine().profiler();
            if (prof.enabled())
                prof.comm_overlap(rank_.proc().id(),
                                  static_cast<std::uint64_t>(overlapped),
                                  static_cast<std::uint64_t>(window));
            overlap_pct_->record(
                static_cast<std::uint64_t>(overlapped * 100 / window));
        }
    }
    s.send.reset();
    s.recv.reset();
    s.coll.reset();
    s.started = false;
    if (!s.persistent) s.done = true;
}

Status Engine::wait(Request& r) {
    State* s = r.st_.get();
    if (!needs_completion(s)) return s != nullptr ? s->status : Status::ok();
    const SimTime enter = rank_.proc().now();
    pump();
    if (!op_complete(*s)) {
        while (!op_complete(*s)) {
            rank_.progress_wait();
            pump();
        }
        rank_.note_wait(rank_.cur_proc(), enter, state_ev_done(*s), "wait:req");
    }
    finalize(*s, enter);
    return s->status;
}

bool Engine::test(Request& r, Status* st) {
    State* s = r.st_.get();
    if (!needs_completion(s)) {
        if (st != nullptr) *st = s != nullptr ? s->status : Status::ok();
        return true;
    }
    rank_.progress_poll();
    pump();
    if (!op_complete(*s)) return false;
    finalize(*s, rank_.proc().now());
    if (st != nullptr) *st = s->status;
    return true;
}

Status Engine::waitall(std::span<Request> rs) {
    Status first;
    for (Request& r : rs) {
        const Status st = wait(r);
        if (!st && first.is_ok()) first = st;
    }
    return first;
}

int Engine::waitany(std::span<Request> rs) {
    const SimTime enter = rank_.proc().now();
    for (;;) {
        rank_.progress_poll();
        pump();
        bool any_active = false;
        for (std::size_t i = 0; i < rs.size(); ++i) {
            State* s = rs[i].st_.get();
            if (!needs_completion(s)) continue;
            any_active = true;
            if (op_complete(*s)) {
                rank_.note_wait(rank_.cur_proc(), enter, state_ev_done(*s),
                                "wait:any");
                finalize(*s, enter);
                return static_cast<int>(i);
            }
        }
        if (!any_active) return -1;
        rank_.progress_wait();
    }
}

std::vector<int> Engine::testsome(std::span<Request> rs) {
    rank_.progress_poll();
    pump();
    std::vector<int> out;
    const SimTime now = rank_.proc().now();
    for (std::size_t i = 0; i < rs.size(); ++i) {
        State* s = rs[i].st_.get();
        if (!needs_completion(s) || !op_complete(*s)) continue;
        finalize(*s, now);
        out.push_back(static_cast<int>(i));
    }
    return out;
}

}  // namespace req
}  // namespace scimpi::mpi
