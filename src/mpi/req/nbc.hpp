// Nonblocking collectives as resumable step programs (libNBC style).
//
// A schedule is a list of rounds; a round is a set of point-to-point steps
// (posted together) plus an optional post-action (reduction, copy) that runs
// once every step of the round has completed. Rounds are separated by an
// implicit barrier: round r+1 is only issued after all of round r's sends
// and receives finished locally — which also means a round's messages can
// never be confused with a later round's (each round gets its own tag).
//
// Round indices are globally aligned: a rank that does not communicate in
// some round carries an empty round at that index, so "round r" means the
// same thing — and carries the same tag — on every member. The schedules
// are pumped by the request engine (req::Engine::pump) from Wait/Test and,
// when async progress is on, by the per-rank progress daemon.
#pragma once

#include <cstddef>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "mpi/types.hpp"

namespace scimpi::mpi {

class Rank;
struct SendOp;
struct RecvOp;

namespace req {

/// Base of the nonblocking-collective tag space. Step tags are
/// kTagNbcBase - (seq % 512) * 64 - round, far below every other reserved
/// internal tag (the closest is -1100), so schedules never cross-match
/// with barrier/bcast/stream traffic. 512 concurrently-live schedules per
/// context and 64 rounds per schedule are enforced limits.
inline constexpr int kTagNbcBase = -4096;
inline constexpr int kNbcMaxRounds = 64;
inline constexpr int kNbcSeqWindow = 512;

/// One point-to-point step of a round (peer is a world rank).
struct NbcStep {
    bool send = false;
    const void* sbuf = nullptr;
    void* rbuf = nullptr;
    std::size_t bytes = 0;
    int peer = -1;
};

struct NbcRound {
    std::vector<NbcStep> steps;
    /// Runs once, after every step of this round completed locally
    /// (reductions, final copies). May charge simulated time to the
    /// process currently driving progress.
    std::function<void()> post;
};

class NbcSched {
public:
    NbcSched(Rank& rank, int context, int tag_base, std::string label);
    NbcSched(const NbcSched&) = delete;
    NbcSched& operator=(const NbcSched&) = delete;

    /// Advance the program: run post-actions of completed rounds and issue
    /// the next round while possible. Returns true when the schedule is
    /// done. Not reentrant — callers serialize through req::Engine::pump.
    bool pump();

    [[nodiscard]] bool done() const { return done_; }
    [[nodiscard]] const Status& status() const { return status_; }
    [[nodiscard]] const std::string& label() const { return label_; }

    std::vector<NbcRound> rounds;
    /// Scratch buffers referenced by steps/posts; owned by the schedule so
    /// they live until completion.
    std::vector<std::vector<std::byte>> scratch;

private:
    void issue(const NbcRound& r);

    Rank& rank_;
    int context_;
    int tag_base_;
    std::string label_;
    std::size_t next_round_ = 0;  ///< next round index to issue
    std::vector<std::shared_ptr<SendOp>> live_s_;
    std::vector<std::shared_ptr<RecvOp>> live_r_;
    bool done_ = false;
    Status status_;
};

// Schedule builders. `members` are the communicator's world ranks, `me` the
// local rank within it, `tag_base` from req::Engine::nbc_tag_base(context).
// Datatypes are handled by the caller (Comm) — schedules move raw bytes.
std::shared_ptr<NbcSched> make_ibarrier(Rank& rk, const std::vector<int>& members,
                                        int me, int context, int tag_base);
std::shared_ptr<NbcSched> make_ibcast(Rank& rk, const std::vector<int>& members,
                                      int me, int context, int tag_base, void* buf,
                                      std::size_t bytes, int root);
std::shared_ptr<NbcSched> make_iallreduce(Rank& rk, const std::vector<int>& members,
                                          int me, int context, int tag_base,
                                          const double* in, double* out, int n);
std::shared_ptr<NbcSched> make_iallgather(Rank& rk, const std::vector<int>& members,
                                          int me, int context, int tag_base,
                                          const void* in, std::size_t bytes_each,
                                          void* out);

}  // namespace req
}  // namespace scimpi::mpi
