#include "mpi/runtime.hpp"

#include <cstdlib>

#include "common/log.hpp"
#include "mpi/coll/coll.hpp"
#include "mpi/comm.hpp"
#include "mpi/rma/window.hpp"

namespace scimpi::mpi {

namespace {

/// SCIMPI_STATS=1 style boolean toggle ("", "0" -> false).
bool env_flag(const char* name) {
    const char* v = std::getenv(name);
    return v != nullptr && v[0] != '\0' && !(v[0] == '0' && v[1] == '\0');
}

std::string env_path(const char* name) {
    const char* v = std::getenv(name);
    return v != nullptr ? std::string(v) : std::string();
}

/// SCIMPI_RECORD=10us style duration: a number with an optional ns/us/ms/s
/// suffix (bare numbers are ns). Unparseable or non-positive -> 0 (off).
SimTime env_duration(const char* name) {
    const char* v = std::getenv(name);
    if (v == nullptr || v[0] == '\0') return 0;
    char* end = nullptr;
    const double x = std::strtod(v, &end);
    if (end == v || x <= 0.0) return 0;
    const std::string suffix(end);
    double mult = 0.0;
    if (suffix.empty() || suffix == "ns") mult = 1.0;
    else if (suffix == "us") mult = 1e3;
    else if (suffix == "ms") mult = 1e6;
    else if (suffix == "s") mult = 1e9;
    else return 0;
    return static_cast<SimTime>(x * mult);
}

/// SCIMPI_EVLOG_CAP=1000000 style unsigned count; unparseable/zero -> 0.
std::uint64_t env_u64(const char* name) {
    const char* v = std::getenv(name);
    if (v == nullptr || v[0] == '\0') return 0;
    char* end = nullptr;
    const unsigned long long x = std::strtoull(v, &end, 10);
    return end == v ? 0 : x;
}

sci::Topology make_topology(const ClusterOptions& opt) {
    if (opt.torus_w > 0 && opt.torus_h > 0) {
        const int plane = opt.torus_w * opt.torus_h;
        SCIMPI_REQUIRE(opt.nodes % plane == 0, "nodes not divisible by torus plane");
        return sci::Topology::torus3d(opt.torus_w, opt.torus_h, opt.nodes / plane);
    }
    if (opt.torus_w > 0) {
        SCIMPI_REQUIRE(opt.nodes % opt.torus_w == 0, "nodes not divisible by torus_w");
        return sci::Topology::torus2d(opt.torus_w, opt.nodes / opt.torus_w);
    }
    return sci::Topology::ring(opt.nodes);
}
}  // namespace

Cluster::Cluster(ClusterOptions opt)
    : opt_(opt), dispatcher_(engine_), fabric_(make_topology(opt), opt.sci) {
    SCIMPI_REQUIRE(opt_.nodes >= 1 && opt_.procs_per_node >= 1,
                   "cluster needs at least one node and one process");
    if (env_flag("SCIMPI_STATS")) opt_.collect_stats = true;
    if (env_flag("SCIMPI_PROFILE")) opt_.profile = true;
    if (env_flag("SCIMPI_CHECK")) opt_.check = true;
    if (env_flag("SCIMPI_ASYNC")) opt_.async_progress = true;
    if (opt_.stats_file.empty()) opt_.stats_file = env_path("SCIMPI_STATS_FILE");
    if (opt_.trace_file.empty()) opt_.trace_file = env_path("SCIMPI_TRACE_FILE");
    if (opt_.fault_spec_file.empty()) opt_.fault_spec_file = env_path("SCIMPI_FAULTS");
    if (opt_.coll.empty()) opt_.coll = env_path("SCIMPI_COLL");
    if (opt_.evlog.empty()) opt_.evlog = env_path("SCIMPI_EVLOG");
    // Schedule-space exploration (see sim/schedule.hpp, check/explorer.hpp).
    // A caller-installed controller means an explorer drives this Cluster:
    // it owns violation reporting, so the teardown stderr report is muted.
    external_schedule_ = opt_.schedule != nullptr;
    if (env_flag("SCIMPI_EXPLORE")) opt_.explore.enabled = true;
    if (const std::uint64_t b = env_u64("SCIMPI_EXPLORE_BUDGET"); b > 0)
        opt_.explore.max_schedules = b;
    if (const std::uint64_t d = env_u64("SCIMPI_EXPLORE_DEPTH"); d > 0)
        opt_.explore.max_depth = d;
    if (const SimTime f = env_duration("SCIMPI_EXPLORE_FUZZ"); f > 0)
        opt_.explore.fuzz = f;
    if (env_flag("SCIMPI_EXPLORE_NAIVE")) opt_.explore.dpor = false;
    if (opt_.explore.trace_file.empty())
        opt_.explore.trace_file = env_path("SCIMPI_EXPLORE_TRACE");
    if (const std::string replay = env_path("SCIMPI_EXPLORE_REPLAY");
        opt_.schedule == nullptr && !replay.empty()) {
        auto trace = sim::DecisionTrace::load(replay);
        SCIMPI_REQUIRE(trace.is_ok(), "SCIMPI_EXPLORE_REPLAY '" + replay +
                                          "': " + trace.status().to_string());
        replay_ = std::make_unique<sim::ReplayController>(std::move(trace.value()));
        opt_.schedule = replay_.get();
        opt_.check = true;  // replaying a violation schedule implies checking
    }
    if (opt_.schedule != nullptr) engine_.set_schedule_controller(opt_.schedule);
    // SCIMPI_DIRECT_PACK=0|1 overrides the pack engine choice, so one binary
    // can produce the two event logs a `scimpi-analyze --diff` A/B needs.
    if (const char* ff = std::getenv("SCIMPI_DIRECT_PACK");
        ff != nullptr && ff[0] != '\0')
        opt_.cfg.use_direct_pack_ff = env_flag("SCIMPI_DIRECT_PACK");
    if (!opt_.stats_file.empty()) opt_.collect_stats = true;
    metrics_.enable(opt_.collect_stats);
    engine_.profiler().enable(opt_.profile);
    if (!opt_.trace_file.empty()) engine_.tracer().enable();
    if (!opt_.evlog.empty()) {
        engine_.evgraph().enable();
        if (opt_.evlog_cap == 0)
            opt_.evlog_cap = static_cast<std::size_t>(env_u64("SCIMPI_EVLOG_CAP"));
        if (opt_.evlog_cap > 0) engine_.evgraph().set_cap(opt_.evlog_cap);
    }
    engine_.bind_metrics(metrics_);
    fabric_.bind_metrics(metrics_);
    fabric_.bind_engine(&engine_);
    fabric_.set_reroute(opt_.cfg.torus_reroute);
    if (!opt_.fault_spec_file.empty()) {
        auto loaded = fault::FaultSchedule::load(opt_.fault_spec_file);
        SCIMPI_REQUIRE(loaded.is_ok(), "fault spec '" + opt_.fault_spec_file +
                                           "': " + loaded.status().to_string());
        opt_.faults.merge(loaded.value());
    }
    if (opt_.check) {
        checker_ = std::make_unique<check::Checker>(opt_.nodes * opt_.procs_per_node);
        checker_->enable();
        checker_->bind_metrics(metrics_);
        checker_->bind_tracer(&engine_.tracer());
        checker_->bind_event_graph(&engine_.evgraph());
        directory_.bind_checker(checker_.get());
    }
    for (int n = 0; n < opt_.nodes; ++n) {
        memories_.push_back(std::make_unique<mem::NodeMemory>(n, opt_.arena_bytes));
        adapters_.push_back(std::make_unique<sci::SciAdapter>(
            n, fabric_, dispatcher_, opt_.host, opt_.cfg));
        adapters_.back()->bind_metrics(metrics_);
        adapters_.back()->bind_checker(checker_.get());
    }
    const int world = opt_.nodes * opt_.procs_per_node;
    for (int r = 0; r < world; ++r) {
        ranks_.push_back(std::make_unique<Rank>(*this, r, node_of(r)));
        ranks_.back()->init_world(world);
    }
    for (const auto& r : ranks_) {
        r->set_rma(std::make_unique<RmaState>(*r));
        r->rma().channel().bind_metrics(metrics_);
    }
    if (!opt_.faults.empty()) {
        faults_ = std::make_unique<fault::FaultController>(engine_, fabric_,
                                                           opt_.faults);
        faults_->bind_metrics(metrics_);
        for (int n = 0; n < opt_.nodes; ++n)
            faults_->set_adapter(n, adapters_[static_cast<std::size_t>(n)].get());
        for (const auto& r : ranks_)
            faults_->add_channel(r->node(), &r->rma().channel());
    }
    if (opt_.cfg.monitor_period > 0) {
        monitor_ = std::make_unique<fault::ConnectionMonitor>(engine_, fabric_,
                                                              opt_.cfg);
        monitor_->bind_metrics(metrics_);
        for (int n = 0; n < opt_.nodes; ++n)
            monitor_->set_adapter(n, adapters_[static_cast<std::size_t>(n)].get());
    }
    coll_ = std::make_unique<coll::CollRuntime>(*this, opt_.coll);
    if (opt_.record <= 0) opt_.record = env_duration("SCIMPI_RECORD");
    if (opt_.record > 0) init_recorder();
}

void Cluster::init_recorder() {
    recorder_.configure({opt_.record, 2048});
    // Per-link utilization: cumulative wire traffic (data + echo), with the
    // rate scaled by the link's nominal capacity in bytes/ns so a fully
    // saturated link samples at 1.0.
    const double cap_bytes_per_ns =
        fabric_.params().nominal_link_bw() * static_cast<double>(1_MiB) / 1e9;
    for (int l = 0; l < fabric_.topology().links(); ++l) {
        const std::string base = "link" + std::to_string(l);
        recorder_.add_cumulative(base + ".wire_bytes", [this, l] {
            return static_cast<double>(fabric_.link_stats(l).total());
        });
        recorder_.add_rate(base + ".util", base + ".wire_bytes",
                           1.0 / cap_bytes_per_ns);
    }
    recorder_.add_gauge(
        "fabric.inflight_bytes",
        [this] { return static_cast<double>(fabric_.inflight_bytes()); },
        &metrics_.gauge("fabric.inflight_bytes"));
    recorder_.add_gauge("fabric.active_transfers", [this] {
        return static_cast<double>(fabric_.active_transfers());
    });
    recorder_.add_gauge(
        "adapter.pending_stores",
        [this] {
            int n = 0;
            for (const auto& a : adapters_) n += a->pending_store_count();
            return static_cast<double>(n);
        },
        &metrics_.gauge("adapter.pending_stores"));
    recorder_.add_gauge(
        "mpi.live_sends",
        [this] {
            std::size_t n = 0;
            for (const auto& r : ranks_) n += r->live_send_count();
            return static_cast<double>(n);
        },
        &metrics_.gauge("mpi.live_sends"));
    recorder_.add_gauge(
        "mpi.live_recvs",
        [this] {
            std::size_t n = 0;
            for (const auto& r : ranks_) n += r->live_recv_count();
            return static_cast<double>(n);
        },
        &metrics_.gauge("mpi.live_recvs"));
    recorder_.add_gauge(
        "mpi.unexpected_queued",
        [this] {
            std::size_t n = 0;
            for (const auto& r : ranks_) n += r->unexpected_count();
            return static_cast<double>(n);
        },
        &metrics_.gauge("mpi.unexpected_queued"));
    recorder_.add_gauge("mpi.posted_recvs", [this] {
        std::size_t n = 0;
        for (const auto& r : ranks_) n += r->posted_count();
        return static_cast<double>(n);
    });
    // DES engine self-metrics. The wall-clock series is host-dependent by
    // nature; everything sim-side stays bit-deterministic.
    recorder_.add_cumulative("sim.events", [this] {
        return static_cast<double>(engine_.events_dispatched());
    });
    recorder_.add_gauge(
        "sim.heap", [this] { return static_cast<double>(engine_.heap_size()); },
        &metrics_.gauge("sim.heap"));
    recorder_.add_cumulative("sim.wall_ns", [this] {
        return static_cast<double>(engine_.wall_ns());
    });
    recorder_.add_rate("sim.events_per_sim_sec", "sim.events", 1e9);
    recorder_.add_ratio("sim.events_per_sec_wall", "sim.events", "sim.wall_ns",
                        1e9);
    recorder_.add_rate("sim.wall_per_sim_second", "sim.wall_ns", 1.0);
    engine_.set_sampler(opt_.record,
                        [this](SimTime t) { recorder_.sample(t); });
}

Cluster::~Cluster() {
    if (checker_ != nullptr && !external_schedule_) checker_->print_report(stderr);
    flush_telemetry();
}

void Cluster::flush_telemetry() {
    if (telemetry_flushed_) return;
    telemetry_flushed_ = true;
    if (!opt_.stats_file.empty()) {
        const Status st = stats_report().write_json(opt_.stats_file);
        if (!st) SCIMPI_WARN("stats dump failed: ", st.to_string());
    }
    if (!opt_.evlog.empty()) {
        // Satellite of the causal layer: the event log is flushed on every
        // teardown path — including Panic aborts — and write_jsonl always
        // terminates the stream with a trailer, so scimpi-analyze can read
        // logs from runs that died mid-flight.
        const Status st = engine_.evgraph().write_jsonl(opt_.evlog, engine_.now());
        if (!st) SCIMPI_WARN("evlog dump failed: ", st.to_string());
    }
    if (!opt_.trace_file.empty()) {
        // Critical-path overlay: replay the walk's attributed segments as
        // spans on a dedicated track, so Perfetto shows *where* the path ran
        // alongside the per-rank spans.
        if (engine_.evgraph().enabled() && engine_.tracer().enabled()) {
            const obs::CriticalPath cp =
                obs::critical_path(engine_.evgraph(), engine_.now());
            engine_.tracer().set_track_name(-2, "critical path");
            for (const obs::CritSeg& s : cp.segments)
                engine_.tracer().span(-2, obs::ev_cat_name(s.cat), "critpath",
                                      s.t0, s.t1);
        }
        // Replay the recorded series as Chrome-trace counter tracks so
        // Perfetto shows utilization/queue-depth curves beside the spans.
        if (recorder_.enabled() && engine_.tracer().enabled()) {
            for (const obs::TimeSeries& ts : recorder_.series())
                for (std::size_t i = 0; i < ts.t.size(); ++i)
                    engine_.tracer().counter(ts.name,
                                             static_cast<SimTime>(ts.t[i]),
                                             ts.v[i]);
        }
        const Status st = engine_.tracer().write_chrome_json(opt_.trace_file);
        if (!st) SCIMPI_WARN("trace dump failed: ", st.to_string());
    }
}

obs::RunReport Cluster::stats_report() const {
    obs::RunReport r;
    r.world = static_cast<int>(ranks_.size());
    r.nodes = opt_.nodes;
    r.sim_seconds = to_seconds(engine_.now());
    r.sim_time_ns = static_cast<std::uint64_t>(engine_.now());
    r.events_dispatched = engine_.events_dispatched();
    r.stats_enabled = metrics_.enabled();
    r.profile_enabled = engine_.profiler().enabled();
    r.check_enabled = checker_ != nullptr;
    if (checker_ != nullptr) {
        for (const check::Violation& v : checker_->violations())
            r.violations.push_back({check::kind_name(v.kind), v.win, v.rank_a,
                                    v.rank_b, v.range.lo, v.range.hi,
                                    static_cast<std::uint64_t>(v.time_a),
                                    static_cast<std::uint64_t>(v.time_b), v.detail});
        r.check_suppressed = checker_->suppressed();
    }
    r.seed = opt_.cfg.seed;
    r.fault_seed = opt_.faults.seed();
    r.fault_spec = opt_.fault_spec_file;
    r.wall_ns = engine_.wall_ns();
    if (r.wall_ns > 0)
        r.events_per_sec_wall = static_cast<double>(r.events_dispatched) * 1e9 /
                                static_cast<double>(r.wall_ns);
    if (r.sim_time_ns > 0)
        r.wall_per_sim_second = static_cast<double>(r.wall_ns) /
                                static_cast<double>(r.sim_time_ns);
    if (recorder_.enabled()) {
        r.record_cadence_ns = static_cast<std::uint64_t>(recorder_.cadence());
        r.timeseries = recorder_.series();
        r.hotspots = obs::congestion_hotspots(r.timeseries, 5);
    }
    if (engine_.evgraph().enabled()) {
        const obs::CriticalPath cp =
            obs::critical_path(engine_.evgraph(), engine_.now());
        r.critical_path.enabled = true;
        r.critical_path.total_ns = cp.total_ns;
        r.critical_path.steps = cp.steps;
        for (int c = 0; c < obs::kEvCats; ++c)
            if (cp.cat_ns[static_cast<std::size_t>(c)] > 0)
                r.critical_path.categories.emplace_back(
                    obs::ev_cat_name(static_cast<obs::EvCat>(c)),
                    cp.cat_ns[static_cast<std::size_t>(c)]);
        for (const auto& [name, ns] : cp.link_ns)
            r.critical_path.links.emplace_back(name, ns);
        for (const auto& [rank, ns] : cp.rank_ns)
            r.critical_path.ranks.emplace_back(rank, ns);
    }
    r.counters = metrics_.counters();
    r.gauges = metrics_.gauge_maxima();
    // v4: histograms that recorded no samples are omitted (their snapshot
    // rows are all zeros and only bloat the report).
    r.histograms = metrics_.histograms();
    std::erase_if(r.histograms,
                  [](const obs::HistogramSnapshot& h) { return h.count == 0; });
    for (int l = 0; l < fabric_.topology().links(); ++l) {
        const sci::LinkStats& ls = fabric_.link_stats(l);
        r.links.push_back({l, ls.payload_bytes, ls.wire_bytes, ls.echo_bytes});
    }
    if (engine_.profiler().enabled()) {
        for (const auto& rk : ranks_) {
            if (rk->proc_ == nullptr) continue;  // run() never started
            const obs::Profiler::Snapshot s =
                engine_.profiler().snapshot(rk->proc_->id(), engine_.now());
            obs::RunReport::RankProfile p;
            p.rank = rk->rank();
            p.state_ns = s.state_ns;
            p.total_ns = s.total_ns;
            p.late_senders = s.late_senders;
            p.late_receivers = s.late_receivers;
            p.late_sender_wait_ns = s.late_sender_wait_ns;
            p.late_receiver_wait_ns = s.late_receiver_wait_ns;
            p.overlap_ops = s.overlap_ops;
            p.overlap_ns = s.overlap_ns;
            p.comm_window_ns = s.comm_window_ns;
            r.profiles.push_back(p);
        }
    }
    return r;
}

void Cluster::run(const std::function<void(Comm&)>& rank_main) {
    if (faults_ != nullptr) faults_->start();
    if (monitor_ != nullptr) monitor_->start();
    for (const auto& r : ranks_) {
        Rank* rank = r.get();
        sim::Process& proc = engine_.spawn("rank" + std::to_string(rank->rank()),
                                           [this, rank,
                                            &rank_main](sim::Process& p) {
            rank->bind(p);
            rank->rma().start_handler();
            Comm comm(*this, *rank);
            rank_main(comm);
            comm.barrier();  // implicit finalize: drain pending protocol traffic
        });
        // Perfetto track label: "rank 3" reads better than the raw spawn name.
        engine_.tracer().set_track_name(proc.id(),
                                        "rank " + std::to_string(rank->rank()));
        engine_.evgraph().set_track_rank(proc.id(), rank->rank());
        if (checker_ != nullptr) checker_->register_actor(proc.id(), rank->rank());
    }
    if (opt_.async_progress) {
        // One progress daemon per rank: drains the control inbox and pumps
        // the request engine while rank code computes. Daemons park in
        // Mailbox::recv until traffic arrives, are exempt from deadlock
        // detection, and are unwound by the engine at teardown.
        for (const auto& r : ranks_) {
            Rank* rank = r.get();
            sim::Process& dproc = engine_.spawn_daemon(
                "prog" + std::to_string(rank->rank()),
                [rank](sim::Process& p) { rank->progress_daemon_body(p); });
            // Daemon work is charged to the rank it serves, so critical-path
            // blame lands on the right rank under async progress.
            engine_.evgraph().set_track_rank(dproc.id(), rank->rank());
        }
    }
    try {
        engine_.run();
    } catch (...) {
        // Abort path (process panic, deadlock, rndv_fail teardown): write
        // the telemetry files now, with whatever the run accumulated, so a
        // failed run still leaves usable evidence on disk.
        flush_telemetry();
        throw;
    }
    // All rank processes have finished: tear the collective segment sets
    // down so the node arenas drain back to empty (bytes_in_use() == 0).
    coll_->release_sets();
}

void Rank::init_world(int world_size) {
    eager_credits_.assign(static_cast<std::size_t>(world_size),
                          static_cast<int>(cluster_.options().cfg.eager_slots));
    send_seq_.assign(static_cast<std::size_t>(world_size), 0);
    last_credit_ev_.assign(static_cast<std::size_t>(world_size), 0);
}

}  // namespace scimpi::mpi
