#include "mpi/runtime.hpp"

#include "mpi/comm.hpp"
#include "mpi/rma/window.hpp"

namespace scimpi::mpi {

namespace {
sci::Topology make_topology(const ClusterOptions& opt) {
    if (opt.torus_w > 0 && opt.torus_h > 0) {
        const int plane = opt.torus_w * opt.torus_h;
        SCIMPI_REQUIRE(opt.nodes % plane == 0, "nodes not divisible by torus plane");
        return sci::Topology::torus3d(opt.torus_w, opt.torus_h, opt.nodes / plane);
    }
    if (opt.torus_w > 0) {
        SCIMPI_REQUIRE(opt.nodes % opt.torus_w == 0, "nodes not divisible by torus_w");
        return sci::Topology::torus2d(opt.torus_w, opt.nodes / opt.torus_w);
    }
    return sci::Topology::ring(opt.nodes);
}
}  // namespace

Cluster::Cluster(ClusterOptions opt)
    : opt_(opt), dispatcher_(engine_), fabric_(make_topology(opt), opt.sci) {
    SCIMPI_REQUIRE(opt_.nodes >= 1 && opt_.procs_per_node >= 1,
                   "cluster needs at least one node and one process");
    for (int n = 0; n < opt_.nodes; ++n) {
        memories_.push_back(std::make_unique<mem::NodeMemory>(n, opt_.arena_bytes));
        adapters_.push_back(std::make_unique<sci::SciAdapter>(
            n, fabric_, dispatcher_, opt_.host, opt_.cfg));
    }
    const int world = opt_.nodes * opt_.procs_per_node;
    for (int r = 0; r < world; ++r) {
        ranks_.push_back(std::make_unique<Rank>(*this, r, node_of(r)));
        ranks_.back()->init_world(world);
    }
    for (const auto& r : ranks_) r->set_rma(std::make_unique<RmaState>(*r));
}

Cluster::~Cluster() = default;

void Cluster::run(const std::function<void(Comm&)>& rank_main) {
    for (const auto& r : ranks_) {
        Rank* rank = r.get();
        engine_.spawn("rank" + std::to_string(rank->rank()), [this, rank,
                                                              &rank_main](sim::Process& p) {
            rank->bind(p);
            rank->rma().start_handler();
            Comm comm(*this, *rank);
            rank_main(comm);
            comm.barrier();  // implicit finalize: drain pending protocol traffic
        });
    }
    engine_.run();
}

void Rank::init_world(int world_size) {
    eager_credits_.assign(static_cast<std::size_t>(world_size),
                          static_cast<int>(cluster_.options().cfg.eager_slots));
    send_seq_.assign(static_cast<std::size_t>(world_size), 0);
}

}  // namespace scimpi::mpi
