#include "fault/retry.hpp"

#include <algorithm>
#include <string>

#include "fault/monitor.hpp"
#include "sim/engine.hpp"
#include "sim/trace.hpp"

namespace scimpi::fault {

RetryOutcome retry_with_backoff(sim::Process& self, const Config& cfg,
                                const ConnectionMonitor* monitor, int src_node,
                                int dst_node,
                                const std::function<Status()>& attempt) {
    RetryOutcome out;
    out.status = attempt();
    if (out.status.is_ok() || out.status.code() != Errc::link_failure) return out;

    SimTime backoff = cfg.retry_backoff;
    SimTime spent = 0;
    while (out.retries < cfg.send_retries) {
        if (monitor != nullptr && !monitor->reachable(src_node, dst_node)) {
            out.gave_up = true;
            out.status = Status::error(
                Errc::peer_unreachable,
                "node " + std::to_string(dst_node) +
                    " declared dead by the connection monitor: " +
                    out.status.detail());
            return out;
        }
        if (spent + backoff > cfg.retry_budget) break;
        {
            const sim::TraceScope trace(self, "fault:retry_backoff", "fault");
            const sim::ProfScope prof(self, obs::ProfState::retry_backoff);
            const SimTime t0 = self.now();
            self.delay(backoff);
            // Causal graph: backoff time is retry-category so a --diff of a
            // fault-injected run against a clean one pins the delta here.
            obs::EventGraph& g = self.engine().evgraph();
            if (g.enabled())
                g.node(self.id(), obs::EvCat::retry, "fault:backoff", t0,
                       self.now());
        }
        // Cold path by definition (a link already failed), so resolving the
        // histogram through the engine per backoff is fine.
        if (obs::MetricsRegistry* m = self.engine().metrics(); m != nullptr)
            m->histogram("fault.retry_backoff_ns").record(backoff);
        spent += backoff;
        backoff = std::min(backoff * 2, cfg.retry_backoff_max);
        ++out.retries;
        out.status = attempt();
        if (out.status.is_ok()) {
            out.recovered = true;
            return out;
        }
        if (out.status.code() != Errc::link_failure) return out;
    }
    out.gave_up = true;
    out.status = Status::error(Errc::peer_unreachable,
                               "retry budget exhausted towards node " +
                                   std::to_string(dst_node) + ": " +
                                   out.status.detail());
    return out;
}

}  // namespace scimpi::fault
