// Shared exponential-backoff retry policy for transient link failures.
//
// One attempt runs immediately; while it keeps failing with
// Errc::link_failure the caller sleeps Config::retry_backoff ns (doubling
// per retry up to retry_backoff_max) and tries again, at most
// Config::send_retries times and never exceeding retry_budget ns of total
// backoff. Exhaustion — or a peer the ConnectionMonitor has declared dead —
// surfaces as Errc::peer_unreachable instead of a hang. Non-link errors
// pass through untouched.
#pragma once

#include <functional>

#include "common/config.hpp"
#include "common/status.hpp"

namespace scimpi::sim {
class Process;
}

namespace scimpi::fault {

class ConnectionMonitor;

struct RetryOutcome {
    Status status;
    int retries = 0;         ///< backoff sleeps taken
    bool recovered = false;  ///< succeeded after at least one retry
    bool gave_up = false;    ///< budget exhausted or peer dead -> peer_unreachable
};

/// Run `attempt` under the backoff policy of `cfg`. `monitor` may be null;
/// when set, a (src_node, dst_node) pair it reports dead stops the retry
/// loop immediately.
RetryOutcome retry_with_backoff(sim::Process& self, const Config& cfg,
                                const ConnectionMonitor* monitor, int src_node,
                                int dst_node,
                                const std::function<Status()>& attempt);

}  // namespace scimpi::fault
