// FaultController: a simulated process that walks a materialized
// FaultSchedule and applies each event to the machine at its virtual time —
// link state via Fabric::set_link_up, CRC windows via per-link error rates,
// adapter stalls via SciAdapter::stall_until, interrupt drops via
// SignalChannel::drop_next. It keeps per-link nesting depths so overlapping
// soak flaps and error windows compose sanely (a link is up again only when
// every overlapping down-window has ended).
//
// The controller is an ordinary (non-daemon) process: it finishes after the
// last event, so it never keeps the simulation alive on its own, yet its
// pending events stop the engine from declaring deadlock while e.g. every
// rank is backing off waiting for a link to return.
#pragma once

#include <vector>

#include "fault/schedule.hpp"
#include "obs/metrics.hpp"
#include "sci/adapter.hpp"
#include "sci/fabric.hpp"
#include "sim/engine.hpp"
#include "smi/signal.hpp"

namespace scimpi::fault {

class FaultController {
public:
    FaultController(sim::Engine& engine, sci::Fabric& fabric, FaultSchedule schedule);

    /// Node `node`'s adapter (for stall events). Optional per node.
    void set_adapter(int node, sci::SciAdapter* adapter);
    /// A signal channel whose handler runs on `node` (for irq-drop events).
    /// A node may host several (one per rank); drops hit all of them.
    void add_channel(int node, smi::SignalChannel* channel);

    /// Resolve fault.* counters (fault.injected, fault.link_down, ...).
    void bind_metrics(obs::MetricsRegistry& m);

    /// Spawn the "faults" process. Call before Engine::run().
    void start();

    struct Counters {
        std::uint64_t injected = 0;
        std::uint64_t link_downs = 0;
        std::uint64_t link_ups = 0;
        std::uint64_t error_windows = 0;
        std::uint64_t adapter_stalls = 0;
        std::uint64_t irq_drops = 0;
    };
    [[nodiscard]] const Counters& counters() const { return counters_; }
    [[nodiscard]] const std::vector<FaultEvent>& events() const { return events_; }

private:
    void run(sim::Process& self);
    void apply(sim::Process& self, const FaultEvent& e);
    void count(obs::Counter* c);

    sim::Engine& engine_;
    sci::Fabric& fabric_;
    std::vector<FaultEvent> events_;
    std::vector<int> down_depth_;                      // per link
    std::vector<std::vector<double>> active_rates_;    // per link error windows
    std::vector<sci::SciAdapter*> adapters_;           // per node, may be null
    std::vector<std::vector<smi::SignalChannel*>> channels_;  // per node
    Counters counters_;
    obs::Counter* injected_c_ = nullptr;
    obs::Counter* link_down_c_ = nullptr;
    obs::Counter* link_up_c_ = nullptr;
    obs::Counter* error_windows_c_ = nullptr;
    obs::Counter* stalls_c_ = nullptr;
    obs::Counter* irq_drops_c_ = nullptr;
    bool started_ = false;
};

}  // namespace scimpi::fault
