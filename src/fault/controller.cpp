#include "fault/controller.hpp"

#include <algorithm>
#include <string>

namespace scimpi::fault {

FaultController::FaultController(sim::Engine& engine, sci::Fabric& fabric,
                                 FaultSchedule schedule)
    : engine_(engine),
      fabric_(fabric),
      events_(schedule.materialize(fabric.topology().links())),
      down_depth_(static_cast<std::size_t>(fabric.topology().links()), 0),
      active_rates_(static_cast<std::size_t>(fabric.topology().links())),
      adapters_(static_cast<std::size_t>(fabric.topology().nodes()), nullptr),
      channels_(static_cast<std::size_t>(fabric.topology().nodes())) {}

void FaultController::set_adapter(int node, sci::SciAdapter* adapter) {
    adapters_.at(static_cast<std::size_t>(node)) = adapter;
}

void FaultController::add_channel(int node, smi::SignalChannel* channel) {
    channels_.at(static_cast<std::size_t>(node)).push_back(channel);
}

void FaultController::bind_metrics(obs::MetricsRegistry& m) {
    injected_c_ = &m.counter("fault.injected");
    link_down_c_ = &m.counter("fault.link_down");
    link_up_c_ = &m.counter("fault.link_up");
    error_windows_c_ = &m.counter("fault.error_windows");
    stalls_c_ = &m.counter("fault.adapter_stalls");
    irq_drops_c_ = &m.counter("fault.irq_drops");
}

void FaultController::count(obs::Counter* c) {
    ++counters_.injected;
    if (injected_c_ != nullptr) injected_c_->inc();
    if (c != nullptr) c->inc();
}

void FaultController::start() {
    SCIMPI_REQUIRE(!started_, "FaultController started twice");
    started_ = true;
    if (events_.empty()) return;
    engine_.spawn("faults", [this](sim::Process& self) { run(self); });
}

void FaultController::run(sim::Process& self) {
    for (const FaultEvent& e : events_) {
        if (e.t > self.now()) self.delay(e.t - self.now());
        apply(self, e);
    }
}

void FaultController::apply(sim::Process& self, const FaultEvent& e) {
    sim::Tracer& tr = engine_.tracer();
    if (tr.enabled())
        tr.instant(0,
                   std::string("fault.") + fault_kind_name(e.kind) + " " +
                       std::to_string(e.target),
                   self.now());
    switch (e.kind) {
        case FaultKind::link_down: {
            auto& depth = down_depth_.at(static_cast<std::size_t>(e.target));
            if (depth++ == 0) fabric_.set_link_up(e.target, false);
            ++counters_.link_downs;
            count(link_down_c_);
            break;
        }
        case FaultKind::link_up: {
            auto& depth = down_depth_.at(static_cast<std::size_t>(e.target));
            // A stray "up" for a link that is not down is ignored (depth 0).
            if (depth > 0 && --depth == 0) fabric_.set_link_up(e.target, true);
            ++counters_.link_ups;
            count(link_up_c_);
            break;
        }
        case FaultKind::error_window_begin: {
            auto& rates = active_rates_.at(static_cast<std::size_t>(e.target));
            rates.push_back(e.rate);
            fabric_.set_link_error_rate(e.target,
                                        *std::max_element(rates.begin(), rates.end()));
            ++counters_.error_windows;
            count(error_windows_c_);
            break;
        }
        case FaultKind::error_window_end: {
            auto& rates = active_rates_.at(static_cast<std::size_t>(e.target));
            const auto it = std::find(rates.begin(), rates.end(), e.rate);
            if (it != rates.end()) rates.erase(it);
            fabric_.set_link_error_rate(
                e.target,
                rates.empty() ? 0.0 : *std::max_element(rates.begin(), rates.end()));
            // The matching begin already counted this window.
            break;
        }
        case FaultKind::adapter_stall: {
            sci::SciAdapter* a = adapters_.at(static_cast<std::size_t>(e.target));
            if (a != nullptr) a->stall_until(self.now() + e.duration);
            ++counters_.adapter_stalls;
            count(stalls_c_);
            break;
        }
        case FaultKind::irq_drop: {
            for (smi::SignalChannel* ch : channels_.at(static_cast<std::size_t>(e.target)))
                ch->drop_next(e.count);
            ++counters_.irq_drops;
            count(irq_drops_c_);
            break;
        }
    }
}

}  // namespace scimpi::fault
