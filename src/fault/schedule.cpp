#include "fault/schedule.hpp"

#include <algorithm>
#include <cctype>
#include <fstream>
#include <sstream>

#include "common/rng.hpp"

namespace scimpi::fault {

const char* fault_kind_name(FaultKind k) {
    switch (k) {
        case FaultKind::link_down: return "link_down";
        case FaultKind::link_up: return "link_up";
        case FaultKind::error_window_begin: return "error_window_begin";
        case FaultKind::error_window_end: return "error_window_end";
        case FaultKind::adapter_stall: return "adapter_stall";
        case FaultKind::irq_drop: return "irq_drop";
    }
    return "unknown";
}

FaultSchedule& FaultSchedule::link_down(SimTime t, int link) {
    events_.push_back({t, FaultKind::link_down, link, 0.0, 0, 0});
    return *this;
}

FaultSchedule& FaultSchedule::link_up(SimTime t, int link) {
    events_.push_back({t, FaultKind::link_up, link, 0.0, 0, 0});
    return *this;
}

FaultSchedule& FaultSchedule::flap(SimTime t, int link, SimTime down_for) {
    link_down(t, link);
    link_up(t + down_for, link);
    return *this;
}

FaultSchedule& FaultSchedule::error_window(SimTime t0, SimTime t1, int link,
                                           double rate) {
    events_.push_back({t0, FaultKind::error_window_begin, link, rate, 0, 0});
    events_.push_back({t1, FaultKind::error_window_end, link, rate, 0, 0});
    return *this;
}

FaultSchedule& FaultSchedule::adapter_stall(SimTime t, int node, SimTime down_for) {
    events_.push_back({t, FaultKind::adapter_stall, node, 0.0, down_for, 0});
    return *this;
}

FaultSchedule& FaultSchedule::drop_interrupts(SimTime t, int node, int count) {
    events_.push_back({t, FaultKind::irq_drop, node, 0.0, 0, count});
    return *this;
}

FaultSchedule& FaultSchedule::soak(SimTime t0, SimTime t1, SimTime period, double p,
                                   SimTime down_for) {
    SCIMPI_REQUIRE(period > 0, "soak needs a positive period");
    soaks_.push_back({t0, t1, period, p, down_for});
    return *this;
}

FaultSchedule& FaultSchedule::merge(const FaultSchedule& other) {
    events_.insert(events_.end(), other.events_.begin(), other.events_.end());
    soaks_.insert(soaks_.end(), other.soaks_.begin(), other.soaks_.end());
    seed_ = other.seed_;
    return *this;
}

std::vector<FaultEvent> FaultSchedule::materialize(int links) const {
    std::vector<FaultEvent> out = events_;
    Rng rng(seed_ * 0x8f1bbcdcu + 0x2545f491u);
    for (const Soak& s : soaks_) {
        for (SimTime t = s.t0; t < s.t1; t += s.period) {
            for (int link = 0; link < links; ++link) {
                if (!rng.chance(s.p)) continue;
                out.push_back({t, FaultKind::link_down, link, 0.0, 0, 0});
                out.push_back({t + s.down_for, FaultKind::link_up, link, 0.0, 0, 0});
            }
        }
    }
    std::stable_sort(out.begin(), out.end(),
                     [](const FaultEvent& a, const FaultEvent& b) { return a.t < b.t; });
    return out;
}

namespace {

/// "100us" / "3ms" / "250" (ns) -> SimTime. Returns false on junk.
bool parse_time(const std::string& tok, SimTime* out) {
    std::size_t i = 0;
    while (i < tok.size() && (std::isdigit(static_cast<unsigned char>(tok[i])) != 0))
        ++i;
    if (i == 0) return false;
    SimTime v = 0;
    for (std::size_t j = 0; j < i; ++j) v = v * 10 + (tok[j] - '0');
    const std::string suffix = tok.substr(i);
    if (suffix.empty() || suffix == "ns") {
        *out = v;
    } else if (suffix == "us") {
        *out = v * 1000;
    } else if (suffix == "ms") {
        *out = v * 1000 * 1000;
    } else if (suffix == "s") {
        *out = v * 1000 * 1000 * 1000;
    } else {
        return false;
    }
    return true;
}

Status bad_line(int lineno, const std::string& why) {
    return Status::error(Errc::invalid_argument,
                         "fault spec line " + std::to_string(lineno) + ": " + why);
}

}  // namespace

Result<FaultSchedule> FaultSchedule::parse(std::string_view text) {
    FaultSchedule sched;
    std::istringstream in{std::string(text)};
    std::string line;
    int lineno = 0;
    while (std::getline(in, line)) {
        ++lineno;
        if (const auto hash = line.find('#'); hash != std::string::npos)
            line.erase(hash);
        std::istringstream ls(line);
        std::string cmd;
        if (!(ls >> cmd)) continue;  // blank / comment-only line

        const auto want_time = [&](SimTime* t) -> bool {
            std::string tok;
            return (ls >> tok) && parse_time(tok, t);
        };

        if (cmd == "seed") {
            std::uint64_t s = 0;
            if (!(ls >> s)) return bad_line(lineno, "seed needs an integer");
            sched.set_seed(s);
        } else if (cmd == "down" || cmd == "up") {
            SimTime t = 0;
            int link = -1;
            if (!want_time(&t) || !(ls >> link) || link < 0)
                return bad_line(lineno, cmd + " needs <time> <link>");
            if (cmd == "down")
                sched.link_down(t, link);
            else
                sched.link_up(t, link);
        } else if (cmd == "flap") {
            SimTime t = 0, dur = 0;
            int link = -1;
            if (!want_time(&t) || !(ls >> link) || link < 0 || !want_time(&dur))
                return bad_line(lineno, "flap needs <time> <link> <duration>");
            sched.flap(t, link, dur);
        } else if (cmd == "error") {
            SimTime t0 = 0, t1 = 0;
            int link = -1;
            double rate = 0.0;
            if (!want_time(&t0) || !want_time(&t1) || !(ls >> link) || link < 0 ||
                !(ls >> rate) || rate < 0.0 || rate > 1.0)
                return bad_line(lineno, "error needs <t0> <t1> <link> <rate in [0,1]>");
            sched.error_window(t0, t1, link, rate);
        } else if (cmd == "stall") {
            SimTime t = 0, dur = 0;
            int node = -1;
            if (!want_time(&t) || !(ls >> node) || node < 0 || !want_time(&dur))
                return bad_line(lineno, "stall needs <time> <node> <duration>");
            sched.adapter_stall(t, node, dur);
        } else if (cmd == "drop-irq") {
            SimTime t = 0;
            int node = -1, count = 0;
            if (!want_time(&t) || !(ls >> node) || node < 0 || !(ls >> count) ||
                count <= 0)
                return bad_line(lineno, "drop-irq needs <time> <node> <count>");
            sched.drop_interrupts(t, node, count);
        } else if (cmd == "soak") {
            SimTime t0 = 0, t1 = 0, period = 0, dur = 0;
            double p = 0.0;
            if (!want_time(&t0) || !want_time(&t1) || !want_time(&period) ||
                period <= 0 || !(ls >> p) || p < 0.0 || p > 1.0 || !want_time(&dur))
                return bad_line(lineno,
                                "soak needs <t0> <t1> <period> <p in [0,1]> <down_for>");
            sched.soak(t0, t1, period, p, dur);
        } else {
            return bad_line(lineno, "unknown directive '" + cmd + "'");
        }
        std::string trailing;
        if (ls >> trailing) return bad_line(lineno, "trailing junk '" + trailing + "'");
    }
    return sched;
}

Result<FaultSchedule> FaultSchedule::load(const std::string& path) {
    std::ifstream f(path);
    if (!f) return Status::error(Errc::io_error, "cannot open fault spec " + path);
    std::ostringstream buf;
    buf << f.rdbuf();
    return parse(buf.str());
}

}  // namespace scimpi::fault
