// Connection monitor (SCI-MPICH's watchdog, paper Section 2): a daemon
// process that probes node pairs with SciAdapter::probe_peer and tracks a
// healthy / suspect / dead verdict per ordered pair. The MPI layer consults
// it before (re)trying a send so an exhausted peer surfaces as
// Errc::peer_unreachable instead of a hang.
//
// The monitor is event-driven, not free-running: it parks while the fabric
// is quiet and is woken by link state changes (Fabric's link listener).
// After a wake it sweeps every pair, re-probing suspects each
// Config::monitor_period until they either recover or accumulate
// Config::monitor_dead_after consecutive failures and are declared dead.
// Dead pairs are left alone (no more probes) until a link comes back up,
// which revives them as suspects for one more sweep — so the daemon always
// converges back to its parked state and never keeps the simulation alive.
#pragma once

#include <cstdint>
#include <vector>

#include "common/config.hpp"
#include "obs/metrics.hpp"
#include "sci/adapter.hpp"
#include "sci/fabric.hpp"
#include "sim/engine.hpp"
#include "sim/sync.hpp"

namespace scimpi::fault {

enum class PeerState : std::uint8_t { healthy, suspect, dead };

class ConnectionMonitor {
public:
    ConnectionMonitor(sim::Engine& engine, sci::Fabric& fabric, Config cfg);

    void set_adapter(int node, sci::SciAdapter* adapter);

    /// Resolve monitor.* counters.
    void bind_metrics(obs::MetricsRegistry& m);

    /// Spawn the daemon and hook the fabric's link listener. Call before
    /// Engine::run().
    void start();

    [[nodiscard]] PeerState state(int src_node, int dst_node) const;
    /// False once (src, dst) is declared dead — callers should fail fast
    /// with Errc::peer_unreachable rather than retry.
    [[nodiscard]] bool reachable(int src_node, int dst_node) const {
        return state(src_node, dst_node) != PeerState::dead;
    }

    struct Counters {
        std::uint64_t sweeps = 0;
        std::uint64_t probes = 0;
        std::uint64_t probe_failures = 0;
        std::uint64_t peers_suspect = 0;
        std::uint64_t peers_dead = 0;
        std::uint64_t peers_recovered = 0;
    };
    [[nodiscard]] const Counters& counters() const { return counters_; }

private:
    struct Pair {
        PeerState state = PeerState::healthy;
        int fails = 0;  ///< consecutive probe failures
    };

    void run(sim::Process& self);
    void sweep(sim::Process& self);
    void on_link_event(int link, bool up);
    [[nodiscard]] bool any_suspect() const;
    Pair& pair(int src, int dst) {
        return pairs_[static_cast<std::size_t>(src * nodes_ + dst)];
    }
    [[nodiscard]] const Pair& pair(int src, int dst) const {
        return pairs_[static_cast<std::size_t>(src * nodes_ + dst)];
    }

    sim::Engine& engine_;
    sci::Fabric& fabric_;
    Config cfg_;
    int nodes_;
    std::vector<Pair> pairs_;
    std::vector<sci::SciAdapter*> adapters_;
    sim::WaitQueue wake_q_;
    bool attention_ = false;
    bool started_ = false;
    Counters counters_;
    obs::Counter* sweeps_c_ = nullptr;
    obs::Counter* probes_c_ = nullptr;
    obs::Counter* probe_fail_c_ = nullptr;
    obs::Counter* suspect_c_ = nullptr;
    obs::Counter* dead_c_ = nullptr;
    obs::Counter* recovered_c_ = nullptr;
};

}  // namespace scimpi::fault
