#include "fault/monitor.hpp"

namespace scimpi::fault {

ConnectionMonitor::ConnectionMonitor(sim::Engine& engine, sci::Fabric& fabric,
                                     Config cfg)
    : engine_(engine),
      fabric_(fabric),
      cfg_(cfg),
      nodes_(fabric.topology().nodes()),
      pairs_(static_cast<std::size_t>(nodes_) * static_cast<std::size_t>(nodes_)),
      adapters_(static_cast<std::size_t>(nodes_), nullptr) {
    SCIMPI_REQUIRE(cfg_.monitor_period > 0, "monitor needs a positive period");
    SCIMPI_REQUIRE(cfg_.monitor_dead_after > 0, "monitor_dead_after must be >= 1");
}

void ConnectionMonitor::set_adapter(int node, sci::SciAdapter* adapter) {
    adapters_.at(static_cast<std::size_t>(node)) = adapter;
}

void ConnectionMonitor::bind_metrics(obs::MetricsRegistry& m) {
    sweeps_c_ = &m.counter("monitor.sweeps");
    probes_c_ = &m.counter("monitor.probes");
    probe_fail_c_ = &m.counter("monitor.probe_failures");
    suspect_c_ = &m.counter("monitor.peers_suspect");
    dead_c_ = &m.counter("monitor.peers_dead");
    recovered_c_ = &m.counter("monitor.peers_recovered");
}

PeerState ConnectionMonitor::state(int src_node, int dst_node) const {
    if (src_node == dst_node) return PeerState::healthy;
    return pair(src_node, dst_node).state;
}

bool ConnectionMonitor::any_suspect() const {
    for (const Pair& p : pairs_)
        if (p.state == PeerState::suspect) return true;
    return false;
}

void ConnectionMonitor::on_link_event(int link, bool up) {
    (void)link;
    if (up) {
        // A recovered link may revive dead pairs: give each one more chance.
        for (Pair& p : pairs_) {
            if (p.state == PeerState::dead) {
                p.state = PeerState::suspect;
                p.fails = 0;
            }
        }
    }
    attention_ = true;
    wake_q_.wake_all();
}

void ConnectionMonitor::start() {
    SCIMPI_REQUIRE(!started_, "ConnectionMonitor started twice");
    started_ = true;
    fabric_.set_link_listener([this](int link, bool up) { on_link_event(link, up); });
    engine_.spawn_daemon("conn-monitor",
                         [this](sim::Process& self) { run(self); });
}

void ConnectionMonitor::run(sim::Process& self) {
    while (true) {
        if (!attention_ && !any_suspect()) {
            // Quiet fabric: sleep until a link event.
            wake_q_.park(self, "link event");
            continue;
        }
        attention_ = false;
        sweep(self);
        // Suspects in flight: re-probe after a period. Every suspect either
        // recovers or reaches monitor_dead_after, so this loop is finite and
        // the daemon always parks again.
        if (any_suspect()) self.delay(cfg_.monitor_period);
    }
}

void ConnectionMonitor::sweep(sim::Process& self) {
    ++counters_.sweeps;
    if (sweeps_c_ != nullptr) sweeps_c_->inc();
    for (int src = 0; src < nodes_; ++src) {
        sci::SciAdapter* adapter = adapters_[static_cast<std::size_t>(src)];
        if (adapter == nullptr) continue;
        for (int dst = 0; dst < nodes_; ++dst) {
            if (src == dst) continue;
            Pair& p = pair(src, dst);
            if (p.state == PeerState::dead) continue;  // until a link returns
            ++counters_.probes;
            if (probes_c_ != nullptr) probes_c_->inc();
            const bool ok = adapter->probe_peer(self, dst);
            if (ok) {
                if (p.state == PeerState::suspect) {
                    ++counters_.peers_recovered;
                    if (recovered_c_ != nullptr) recovered_c_->inc();
                }
                p.state = PeerState::healthy;
                p.fails = 0;
                continue;
            }
            ++counters_.probe_failures;
            if (probe_fail_c_ != nullptr) probe_fail_c_->inc();
            ++p.fails;
            if (p.state == PeerState::healthy) {
                p.state = PeerState::suspect;
                ++counters_.peers_suspect;
                if (suspect_c_ != nullptr) suspect_c_->inc();
            }
            if (p.fails >= cfg_.monitor_dead_after) {
                p.state = PeerState::dead;
                ++counters_.peers_dead;
                if (dead_c_ != nullptr) dead_c_->inc();
            }
        }
    }
}

}  // namespace scimpi::fault
