// Deterministic fault schedules (see DESIGN.md §8). A FaultSchedule is a
// list of virtual-clock events — link down/up, CRC error-rate windows on a
// link, adapter stalls, dropped remote interrupts — built programmatically
// or parsed from a small line-based text spec:
//
//   # comment
//   seed 42                     # splitmix64 seed for soak expansion
//   down 100us 0                # link 0 goes down at t=100us
//   up   300us 0                # ...and comes back at t=300us
//   flap 1ms 3 200us            # link 3 down at 1ms for 200us
//   error 0 500us 2 0.2         # link 2 sees 20% CRC errors in [0, 500us)
//   stall 50us 1 100us          # node 1's adapter wedged for 100us
//   drop-irq 10us 2 3           # swallow node 2's next 3 remote interrupts
//   soak 0 10ms 500us 0.05 200us  # every 500us each link flaps with p=0.05
//                                 # for 200us (probabilistic soak mode)
//
// Times are integers with an optional ns/us/ms/s suffix (default ns).
// materialize() expands soak windows with the seeded RNG, so the same
// spec + seed always yields the same event sequence — and therefore a
// bit-identical stats report.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.hpp"
#include "common/units.hpp"

namespace scimpi::fault {

enum class FaultKind : std::uint8_t {
    link_down,          ///< pull the cable of a link
    link_up,            ///< plug it back in
    error_window_begin, ///< start injecting CRC errors at `rate` on a link
    error_window_end,   ///< stop that window
    adapter_stall,      ///< wedge a node's adapter for `duration`
    irq_drop,           ///< swallow a node's next `count` remote interrupts
};

const char* fault_kind_name(FaultKind k);

struct FaultEvent {
    SimTime t = 0;
    FaultKind kind = FaultKind::link_down;
    int target = 0;       ///< link id (link/error events) or node id
    double rate = 0.0;    ///< error windows
    SimTime duration = 0; ///< adapter stalls
    int count = 0;        ///< irq drops
};

class FaultSchedule {
public:
    FaultSchedule() = default;

    // ---- programmatic builders (times are absolute virtual ns) ----
    FaultSchedule& link_down(SimTime t, int link);
    FaultSchedule& link_up(SimTime t, int link);
    /// down at `t`, back up at `t + down_for`.
    FaultSchedule& flap(SimTime t, int link, SimTime down_for);
    FaultSchedule& error_window(SimTime t0, SimTime t1, int link, double rate);
    FaultSchedule& adapter_stall(SimTime t, int node, SimTime down_for);
    FaultSchedule& drop_interrupts(SimTime t, int node, int count);
    /// Probabilistic soak: every `period` in [t0, t1) each link flaps with
    /// probability `p` for `down_for`. Expanded deterministically from the
    /// schedule seed at materialize() time.
    FaultSchedule& soak(SimTime t0, SimTime t1, SimTime period, double p,
                        SimTime down_for);

    FaultSchedule& set_seed(std::uint64_t seed) {
        seed_ = seed;
        return *this;
    }
    [[nodiscard]] std::uint64_t seed() const { return seed_; }

    /// Append everything from `other` (a parsed spec file on top of a
    /// programmatic schedule, say). `other`'s seed wins.
    FaultSchedule& merge(const FaultSchedule& other);

    /// Parse the text spec format documented above.
    static Result<FaultSchedule> parse(std::string_view text);
    /// Read `path` and parse it.
    static Result<FaultSchedule> load(const std::string& path);

    [[nodiscard]] bool empty() const {
        return events_.empty() && soaks_.empty();
    }
    [[nodiscard]] const std::vector<FaultEvent>& explicit_events() const {
        return events_;
    }

    /// Expand soak windows for a fabric with `links` links, merge with the
    /// explicit events, and return everything sorted by (time, insertion
    /// order). Pure function of (spec, seed, links).
    [[nodiscard]] std::vector<FaultEvent> materialize(int links) const;

private:
    struct Soak {
        SimTime t0 = 0, t1 = 0, period = 0;
        double p = 0.0;
        SimTime down_for = 0;
    };

    std::vector<FaultEvent> events_;
    std::vector<Soak> soaks_;
    std::uint64_t seed_ = 1;
};

}  // namespace scimpi::fault
