// Machine (node) timing profiles: CPU, cache hierarchy and local memory
// system parameters used by the copy-cost model and the interconnect models.
// The reference profile is the paper's cluster node: dual Pentium-III
// 800 MHz on a ServerWorks ServerSet III LE board with 64 bit/66 MHz PCI.
#pragma once

#include <cstddef>
#include <string>

#include "common/units.hpp"

namespace scimpi::mem {

struct MachineProfile {
    std::string name;

    // CPU
    double cpu_ghz = 0.8;

    // Cache hierarchy
    std::size_t l1_size = 16_KiB;
    std::size_t l2_size = 256_KiB;
    std::size_t cache_line = 32;          ///< bytes; P-III line size
    std::size_t wc_buffer = 32;           ///< CPU write-combine buffer size

    // Local memory system (copy = read + write stream)
    double copy_bw_l1 = 1600.0;           ///< MiB/s, both streams in L1
    double copy_bw_l2 = 800.0;            ///< MiB/s, resident in L2
    double copy_bw_mem = 300.0;           ///< MiB/s, streaming main memory
    double mem_read_bw = 340.0;           ///< MiB/s, read-only stream (feeds PIO
                                          ///< writes; the LE chipset limit behind
                                          ///< the paper's footnote 2)

    // Software overheads
    SimTime copy_call_overhead = 60;      ///< ns per copy-routine invocation
    SimTime per_block_overhead = 100;     ///< ns per basic block (loop, address
                                          ///< generation, memcpy call: ~80 cycles)
    SimTime recursive_pack_overhead = 200;  ///< ns per basic block for the generic
                                            ///< recursive datatype walker (MPICH-style;
                                            ///< the cost direct_pack_ff eliminates)

    // PCI bus the SCI adapter sits on
    double pci_bw = 480.0;                ///< MiB/s nominal (64 bit / 66 MHz ~ 528;
                                          ///< 480 leaves protocol headroom)
};

/// The paper's cluster node (Section II footnote 1).
MachineProfile pentium3_800();

/// Sun UltraSparc II node (mentioned in §3.4 for the cache-effect check).
MachineProfile ultrasparc2_400();

/// Node profile for the Xeon 550 quad SMP (ZAMpano, Table 1).
MachineProfile xeon_550_quad();

/// Node profile for the Pentium-II 400 Myrinet cluster (Parnass2, Table 1).
MachineProfile pentium2_400();

/// Sun Fire 6800 750 MHz board (Table 1).
MachineProfile sunfire_750();

/// Cray T3E-1200 Alpha EV5.6 node (Table 1).
MachineProfile t3e_1200();

}  // namespace scimpi::mem
