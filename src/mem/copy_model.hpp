// Analytic cache-aware cost model for process-local copies (packing,
// unpacking, staging). The model charges for:
//   * a per-invocation software overhead and a per-basic-block overhead,
//   * bandwidth chosen by the cache level the copy's footprint fits in,
//   * cache-line waste for blocks smaller than a line under a wide stride.
// It deliberately stays analytic (no per-line cache simulation): the paper's
// effects of interest — the >128 KiB PIO dip, the L2 chunking rule for
// rendezvous, pack cost vs block size — are footprint effects.
#pragma once

#include <cstddef>

#include "common/units.hpp"
#include "mem/machine_profile.hpp"

namespace scimpi::mem {

/// Describes one side (source or destination) of a copy.
struct AccessPattern {
    /// Length of each contiguous run. 0 means "single contiguous block".
    std::size_t block = 0;
    /// Distance between run starts; only meaningful if block > 0.
    std::size_t stride = 0;

    [[nodiscard]] bool contiguous() const { return block == 0 || stride <= block; }

    static AccessPattern contig() { return {}; }
    static AccessPattern strided(std::size_t block, std::size_t stride) {
        return {block, stride};
    }
};

class CopyModel {
public:
    explicit CopyModel(MachineProfile profile) : p_(std::move(profile)) {}

    [[nodiscard]] const MachineProfile& profile() const { return p_; }

    /// Cost of one copy-routine invocation moving `bytes` of payload split
    /// into `nblocks` basic blocks, with the given side patterns.
    [[nodiscard]] SimTime copy_cost(std::size_t bytes, AccessPattern src,
                                    AccessPattern dst, std::size_t nblocks = 1) const;

    /// Cost of a read-only traversal (e.g. checksum, accumulate read side).
    [[nodiscard]] SimTime read_cost(std::size_t bytes, AccessPattern src,
                                    std::size_t nblocks = 1) const;

    /// Effective local copy bandwidth (MiB/s) for the footprint: which cache
    /// level does a working set of `footprint` bytes stream from?
    [[nodiscard]] double level_bandwidth(std::size_t footprint) const;

    /// Bytes actually moved through the memory system for a pattern:
    /// payload plus cache-line waste (whole lines are fetched).
    [[nodiscard]] std::size_t traffic_bytes(std::size_t bytes, AccessPattern a) const;

private:
    MachineProfile p_;
};

}  // namespace scimpi::mem
