// First-fit free-list allocator with coalescing, used for the exportable
// SCI segment arena of each node (and by MPI_Alloc_mem on top of it).
// Operates on offsets so it can be tested independently of any backing store.
#pragma once

#include <cstddef>
#include <map>

#include "common/status.hpp"

namespace scimpi::mem {

class Allocator {
public:
    explicit Allocator(std::size_t capacity);

    /// Allocate `bytes` aligned to `align` (power of two). Returns the offset.
    Result<std::size_t> allocate(std::size_t bytes, std::size_t align = 64);

    /// Release a block previously returned by allocate().
    Status free(std::size_t offset);

    [[nodiscard]] std::size_t capacity() const { return capacity_; }
    [[nodiscard]] std::size_t bytes_in_use() const { return in_use_; }
    [[nodiscard]] std::size_t bytes_free() const { return capacity_ - in_use_; }
    [[nodiscard]] std::size_t allocation_count() const { return live_.size(); }

    /// Largest single block currently allocatable (fragmentation probe).
    [[nodiscard]] std::size_t largest_free_block() const;

private:
    std::size_t capacity_;
    std::size_t in_use_ = 0;
    std::map<std::size_t, std::size_t> free_;  // offset -> length, coalesced
    std::map<std::size_t, std::size_t> live_;  // user offset -> (aligned) length
    std::map<std::size_t, std::size_t> base_;  // user offset -> block base offset
};

}  // namespace scimpi::mem
