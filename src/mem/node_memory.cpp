#include "mem/node_memory.hpp"

namespace scimpi::mem {

NodeMemory::NodeMemory(int node_id, std::size_t arena_bytes)
    : node_id_(node_id), arena_(arena_bytes), alloc_(arena_bytes) {}

Result<std::span<std::byte>> NodeMemory::allocate(std::size_t bytes, std::size_t align) {
    auto off = alloc_.allocate(bytes, align);
    if (!off) return off.status();
    return std::span<std::byte>(arena_.data() + off.value(), bytes);
}

Status NodeMemory::free(std::span<std::byte> region) {
    if (!contains(region.data()))
        return Status::error(Errc::invalid_argument, "region not in this node's arena");
    return alloc_.free(offset_of(region.data()));
}

bool NodeMemory::contains(const void* p) const {
    const auto* b = static_cast<const std::byte*>(p);
    return b >= arena_.data() && b < arena_.data() + arena_.size();
}

std::size_t NodeMemory::offset_of(const void* p) const {
    SCIMPI_REQUIRE(contains(p), "offset_of: pointer outside arena");
    return static_cast<std::size_t>(static_cast<const std::byte*>(p) - arena_.data());
}

}  // namespace scimpi::mem
