// Per-node physically-contiguous memory arena from which SCI-exportable
// segments (and MPI_Alloc_mem windows) are carved. User buffers in rank code
// are ordinary host memory; only memory that must be remotely accessible
// lives here. Since the whole cluster is simulated in one address space, a
// "remote" access is a host pointer dereference plus modelled time.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "common/status.hpp"
#include "mem/allocator.hpp"

namespace scimpi::mem {

class NodeMemory {
public:
    NodeMemory(int node_id, std::size_t arena_bytes);

    NodeMemory(const NodeMemory&) = delete;
    NodeMemory& operator=(const NodeMemory&) = delete;

    [[nodiscard]] int node_id() const { return node_id_; }

    /// Carve an exportable region out of the arena.
    Result<std::span<std::byte>> allocate(std::size_t bytes, std::size_t align = 64);

    /// Return a region to the arena.
    Status free(std::span<std::byte> region);

    /// True if `p` points into this node's arena (i.e. is SCI-shareable).
    [[nodiscard]] bool contains(const void* p) const;

    [[nodiscard]] std::size_t capacity() const { return alloc_.capacity(); }
    [[nodiscard]] std::size_t bytes_in_use() const { return alloc_.bytes_in_use(); }

    /// Offset of `p` within the arena. Precondition: contains(p).
    [[nodiscard]] std::size_t offset_of(const void* p) const;

    [[nodiscard]] std::byte* base() { return arena_.data(); }

private:
    int node_id_;
    std::vector<std::byte> arena_;
    Allocator alloc_;
};

}  // namespace scimpi::mem
