#include "mem/machine_profile.hpp"

namespace scimpi::mem {

MachineProfile pentium3_800() {
    MachineProfile p;
    p.name = "PentiumIII-800/ServerSetIII-LE";
    return p;  // defaults are this machine
}

MachineProfile ultrasparc2_400() {
    MachineProfile p;
    p.name = "UltraSparcII-400";
    p.cpu_ghz = 0.4;
    p.l1_size = 16_KiB;
    p.l2_size = 4_MiB;
    p.cache_line = 64;
    p.wc_buffer = 64;
    p.copy_bw_l1 = 1200.0;
    p.copy_bw_l2 = 650.0;
    p.copy_bw_mem = 250.0;
    p.mem_read_bw = 280.0;
    p.copy_call_overhead = 90;
    p.per_block_overhead = 140;
    return p;
}

MachineProfile xeon_550_quad() {
    MachineProfile p;
    p.name = "PentiumIII-Xeon-550-quad";
    p.cpu_ghz = 0.55;
    p.l2_size = 1_MiB;
    p.copy_bw_l1 = 1100.0;
    p.copy_bw_l2 = 600.0;
    // The paper calls the 4-way Xeon memory system "inferior": a single
    // shared front-side bus that saturates quickly under concurrency.
    p.copy_bw_mem = 220.0;
    p.mem_read_bw = 250.0;
    p.copy_call_overhead = 80;
    p.per_block_overhead = 120;
    p.pci_bw = 120.0;  // 32 bit / 33 MHz PCI
    return p;
}

MachineProfile pentium2_400() {
    MachineProfile p;
    p.name = "PentiumII-400";
    p.cpu_ghz = 0.4;
    p.l2_size = 512_KiB;
    p.copy_bw_l1 = 800.0;
    p.copy_bw_l2 = 450.0;
    p.copy_bw_mem = 180.0;
    p.mem_read_bw = 210.0;
    p.copy_call_overhead = 110;
    p.per_block_overhead = 160;
    p.pci_bw = 120.0;  // 32 bit / 33 MHz PCI
    return p;
}

MachineProfile sunfire_750() {
    MachineProfile p;
    p.name = "SunFire6800-750";
    p.cpu_ghz = 0.75;
    p.l1_size = 64_KiB;
    p.l2_size = 8_MiB;
    p.cache_line = 64;
    p.wc_buffer = 64;
    p.copy_bw_l1 = 2400.0;
    p.copy_bw_l2 = 1300.0;
    p.copy_bw_mem = 600.0;  // Fireplane interconnect, high-cost design
    p.mem_read_bw = 700.0;
    p.copy_call_overhead = 50;
    p.per_block_overhead = 60;
    return p;
}

MachineProfile t3e_1200() {
    MachineProfile p;
    p.name = "CrayT3E-1200";
    p.cpu_ghz = 0.6;  // EV5.6 600 MHz
    p.l1_size = 8_KiB;
    p.l2_size = 96_KiB;  // on-chip SCACHE; T3E has no board-level cache
    p.cache_line = 64;
    p.wc_buffer = 64;
    p.copy_bw_l1 = 1800.0;
    p.copy_bw_l2 = 900.0;
    p.copy_bw_mem = 500.0;  // stream-buffer assisted local memory
    p.mem_read_bw = 550.0;
    p.copy_call_overhead = 40;
    p.per_block_overhead = 50;
    return p;
}

}  // namespace scimpi::mem
