#include "mem/copy_model.hpp"

#include <algorithm>

namespace scimpi::mem {

double CopyModel::level_bandwidth(std::size_t footprint) const {
    if (footprint <= p_.l1_size) return p_.copy_bw_l1;
    if (footprint <= p_.l2_size) return p_.copy_bw_l2;
    return p_.copy_bw_mem;
}

std::size_t CopyModel::traffic_bytes(std::size_t bytes, AccessPattern a) const {
    if (a.contiguous() || a.block == 0) return bytes;
    // Blocks smaller than a cache line under a wide stride pull whole lines:
    // a block of b bytes can straddle up to ceil(b/line)+? lines; model the
    // common aligned case: max(line, roundup(b, line)) bytes per block.
    const std::size_t line = p_.cache_line;
    const std::size_t per_block = std::max(line, (a.block + line - 1) / line * line);
    const std::size_t nblocks = (bytes + a.block - 1) / a.block;
    return std::max(bytes, nblocks * per_block);
}

SimTime CopyModel::copy_cost(std::size_t bytes, AccessPattern src, AccessPattern dst,
                             std::size_t nblocks) const {
    if (bytes == 0) return p_.copy_call_overhead;
    // A copy streams through both sides: charge the heavier traffic.
    const std::size_t traffic = std::max(traffic_bytes(bytes, src), traffic_bytes(bytes, dst));
    // Footprint in cache is source + destination working set.
    const std::size_t footprint = traffic_bytes(bytes, src) + traffic_bytes(bytes, dst);
    const double bw = level_bandwidth(footprint);
    SimTime t = transfer_time(traffic, bw);
    t += p_.copy_call_overhead;
    t += static_cast<SimTime>(nblocks) * p_.per_block_overhead;
    return t;
}

SimTime CopyModel::read_cost(std::size_t bytes, AccessPattern src, std::size_t nblocks) const {
    if (bytes == 0) return p_.copy_call_overhead;
    const std::size_t traffic = traffic_bytes(bytes, src);
    // Read-only streams avoid the write-allocate half; use the dedicated
    // read bandwidth for main memory, cache bandwidths otherwise.
    double bw = level_bandwidth(traffic);
    if (traffic > p_.l2_size) bw = p_.mem_read_bw;
    SimTime t = transfer_time(traffic, bw);
    t += p_.copy_call_overhead;
    t += static_cast<SimTime>(nblocks) * p_.per_block_overhead;
    return t;
}

}  // namespace scimpi::mem
