#include "mem/allocator.hpp"

namespace scimpi::mem {

namespace {
constexpr std::size_t align_up(std::size_t v, std::size_t a) {
    return (v + a - 1) & ~(a - 1);
}
constexpr bool is_pow2(std::size_t v) { return v != 0 && (v & (v - 1)) == 0; }
}  // namespace

Allocator::Allocator(std::size_t capacity) : capacity_(capacity) {
    if (capacity > 0) free_.emplace(0, capacity);
}

Result<std::size_t> Allocator::allocate(std::size_t bytes, std::size_t align) {
    if (bytes == 0) return Status::error(Errc::invalid_argument, "zero-size allocation");
    if (!is_pow2(align)) return Status::error(Errc::invalid_argument, "alignment not a power of two");

    for (auto it = free_.begin(); it != free_.end(); ++it) {
        const std::size_t base = it->first;
        const std::size_t len = it->second;
        const std::size_t user = align_up(base, align);
        const std::size_t pad = user - base;
        if (pad + bytes > len) continue;

        // Split the free block: [base, user) stays free as padding remainder,
        // [user, user+bytes) is allocated, tail stays free.
        const std::size_t tail_off = user + bytes;
        const std::size_t tail_len = len - pad - bytes;
        free_.erase(it);
        if (pad > 0) free_.emplace(base, pad);
        if (tail_len > 0) free_.emplace(tail_off, tail_len);

        live_.emplace(user, bytes);
        base_.emplace(user, user);  // padding was returned to the free list
        in_use_ += bytes;
        return user;
    }
    return Status::error(Errc::out_of_memory, "segment arena exhausted");
}

Status Allocator::free(std::size_t offset) {
    const auto it = live_.find(offset);
    if (it == live_.end())
        return Status::error(Errc::invalid_argument, "free of unknown offset");
    const std::size_t len = it->second;
    const std::size_t blk = base_.at(offset);
    live_.erase(it);
    base_.erase(offset);
    in_use_ -= len;

    // Insert and coalesce with neighbours.
    auto [pos, inserted] = free_.emplace(blk, len);
    SCIMPI_REQUIRE(inserted, "allocator free-list corruption");
    // merge with next
    auto next = std::next(pos);
    if (next != free_.end() && pos->first + pos->second == next->first) {
        pos->second += next->second;
        free_.erase(next);
    }
    // merge with previous
    if (pos != free_.begin()) {
        auto prev = std::prev(pos);
        if (prev->first + prev->second == pos->first) {
            prev->second += pos->second;
            free_.erase(pos);
        }
    }
    return Status::ok();
}

std::size_t Allocator::largest_free_block() const {
    std::size_t best = 0;
    for (const auto& [off, len] : free_) best = std::max(best, len);
    return best;
}

}  // namespace scimpi::mem
