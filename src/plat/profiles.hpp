// Comparison platforms of the paper's Table 1. The SCI-MPICH rows (M-S,
// M-s) are produced by the full simulator; the comparator platforms are
// parameterized models built from the same MachineProfile / CopyModel /
// packer-cost machinery (see platform_model.hpp), each encoding the
// interconnect characteristics and MPI-implementation behaviour the paper
// reports:
//   C    Cray T3E-1200       — E-register strided hardware transfers, OSC
//   F-G  Sun Fire / GigE     — Sun HPC 3.1, no OSC over the network
//   F-s  Sun Fire shared mem — block-size-triggered datatype optimization
//   X-f  Xeon quad / FastE   — LAM 6.5.4, message-based OSC, high latency
//   X-s  Xeon quad shm       — weak shared memory bus (bad OSC scaling)
//   S-M  P-II / Myrinet 1280 — SCore, GM DMA with expensive registration
//   S-s  P-II shared mem     — SCore shm
//   V    Giganet VIA SMP     — ref [15] comparison point in Section 5.3
#pragma once

#include <string>
#include <vector>

#include "common/units.hpp"
#include "mem/machine_profile.hpp"

namespace scimpi::plat {

enum class PlatformId {
    cray_t3e,         // C
    sunfire_gigabit,  // F-G
    sunfire_shm,      // F-s
    lam_fastethernet, // X-f
    lam_xeon_shm,     // X-s
    score_myrinet,    // S-M
    score_p2_shm,     // S-s
    via_smp,          // V (ref [15])
};

/// Datatype-handling strategy of the platform's MPI library (Section 5.1).
enum class DatatypeOpt {
    generic,        ///< recursive pack-and-send everywhere
    shm_blockjump,  ///< Sun shm: efficiency jumps 0.5 -> 1 at >= 16 KiB blocks
    hw_strided,     ///< T3E: hardware strided transfers, best for 8-32 KiB
};

struct NetParams {
    double bw = 100.0;            ///< MiB/s peak wire bandwidth
    SimTime latency = 50'000;     ///< one-way small-message latency (ns)
    SimTime per_msg_cpu = 5'000;  ///< per-message sender+receiver CPU cost (ns)
    int copies = 2;               ///< host copies per transfer (TCP: 2, DMA: 0)
    double reg_bw = 0.0;          ///< MiB/s DMA registration throughput
                                  ///< (Myrinet GM: dominates until ~700 KiB)
};

struct BusParams {
    double total_bw = 800.0;     ///< MiB/s aggregate memory-system bandwidth
    double per_proc_bw = 400.0;  ///< MiB/s a single process can draw
};

struct PlatformSpec {
    PlatformId id{};
    std::string code;  ///< Table 1 ID (C, F-G, ...)
    std::string name;
    mem::MachineProfile host;
    bool internode = true;  ///< false: shared-memory platform
    NetParams net;
    BusParams bus;
    DatatypeOpt dt_opt = DatatypeOpt::generic;
    bool supports_osc = false;
    bool osc_get_deadlocks = false;  ///< X-s footnote b: only MPI_Get works
    SimTime osc_op_overhead = 2'000; ///< per one-sided call software cost (ns)
    SimTime osc_small_latency = 0;   ///< floor latency of one one-sided op (ns)
    double osc_peak_bw = 0.0;        ///< MiB/s ceiling for one-sided streams
    int scaling_procs_max = 24;      ///< largest configuration in Figure 12
};

PlatformSpec spec(PlatformId id);
std::vector<PlatformId> all_platforms();
std::vector<PlatformId> osc_platforms();

}  // namespace scimpi::plat
