#include "plat/platform_model.hpp"

#include <algorithm>
#include <cmath>

namespace scimpi::plat {

using mpi::GenericPacker;
using mpi::PackWork;

SimTime PlatformModel::pack_time(std::size_t total, std::size_t block) const {
    if (block == 0 || block >= total) {
        // Contiguous: the staging copy of a generic implementation.
        return copy_.copy_cost(total, {}, {});
    }
    const std::size_t nblocks = (total + block - 1) / block;
    switch (spec_.dt_opt) {
        case DatatypeOpt::generic: {
            PackWork w;
            w.bytes = total;
            w.blocks = static_cast<std::int64_t>(nblocks);
            w.min_block = w.max_block = block;
            return GenericPacker::cost(w, copy_);
        }
        case DatatypeOpt::shm_blockjump: {
            // Sun HPC shared memory (Fig. 10): for blocks >= 16 KiB the
            // library copies each block directly between the user buffers
            // (only per-block call overhead; efficiency jumps to ~1). Below
            // the threshold it stages through a pack buffer, which crosses
            // the same memory system once more (efficiency ~0.5).
            if (block >= 16_KiB)
                return static_cast<SimTime>(nblocks) *
                       copy_.profile().copy_call_overhead;
            return scimpi::transfer_time(total, spec_.bus.per_proc_bw) +
                   static_cast<SimTime>(nblocks) * copy_.profile().per_block_overhead;
        }
        case DatatypeOpt::hw_strided: {
            // T3E E-registers move strided data in hardware: a per-block
            // engine setup plus wire-speed streaming. Very small blocks are
            // setup-dominated; blocks beyond the stream cache spill and add
            // a memory-speed local pass (Fig. 10: low < 4 KiB, ~1 between
            // 8 and 32 KiB, low again > 32 KiB).
            constexpr SimTime kBlockSetup = 1'800;
            SimTime t = static_cast<SimTime>(nblocks) * kBlockSetup;
            if (block > 32_KiB)
                t += copy_.copy_cost(total, {}, {});
            return t;
        }
    }
    panic("unknown datatype optimization");
}

SimTime PlatformModel::wire_time(std::size_t total) const {
    if (spec_.internode) {
        const NetParams& n = spec_.net;
        SimTime t = n.latency + n.per_msg_cpu;
        t += scimpi::transfer_time(total, n.bw);
        if (n.reg_bw > 0.0) t += scimpi::transfer_time(total, n.reg_bw);  // GM registration
        // Host copies through the memory system (TCP-style stacks).
        for (int c = 0; c < n.copies; ++c) t += copy_.copy_cost(total, {}, {});
        return t;
    }
    // Shared memory: two copies (in and out of the shm segment) over the bus.
    const double bw = std::min(spec_.bus.per_proc_bw, spec_.bus.total_bw);
    return 2 * (scimpi::transfer_time(total, bw) + copy_.profile().copy_call_overhead);
}

SimTime PlatformModel::transfer_time(std::size_t total, std::size_t block) const {
    if (total == 0) return spec_.internode ? spec_.net.latency : 500;
    SimTime t = wire_time(total);
    if (block != 0) {
        // Pack on the sender, unpack on the receiver.
        t += 2 * pack_time(total, block);
    }
    return t;
}

SimTime PlatformModel::osc_latency(std::size_t access, bool is_put) const {
    SCIMPI_REQUIRE(spec_.supports_osc, spec_.code + " does not support one-sided");
    SimTime t = spec_.osc_small_latency + spec_.osc_op_overhead;
    if (spec_.osc_peak_bw > 0.0) t += scimpi::transfer_time(access, spec_.osc_peak_bw);
    if (!is_put) {
        // Gets need the data back: one extra traversal of the transport.
        t += spec_.internode ? spec_.net.latency : spec_.osc_small_latency / 2;
    }
    return t;
}

double PlatformModel::osc_bandwidth(std::size_t access, bool is_put) const {
    SCIMPI_REQUIRE(spec_.supports_osc, spec_.code + " does not support one-sided");
    // Within one epoch the per-op latency pipelines away; the per-op
    // software overhead and the stream ceiling remain.
    SimTime per_op = spec_.osc_op_overhead +
                     scimpi::transfer_time(access, spec_.osc_peak_bw);
    if (!is_put) per_op += spec_.osc_op_overhead;  // request/response bookkeeping
    return bandwidth_mib(access, per_op);
}

double PlatformModel::osc_scaling_bandwidth(int nprocs, std::size_t access) const {
    SCIMPI_REQUIRE(nprocs >= 2, "scaling needs >= 2 processes");
    double per_proc = osc_bandwidth(access, /*is_put=*/true);
    if (!spec_.internode) {
        // Shared bus: n concurrent writers share the memory system.
        per_proc = std::min(per_proc, spec_.bus.total_bw / nprocs);
    } else if (spec_.id == PlatformId::cray_t3e) {
        // 3D-torus bisection scales with the machine: per-process bandwidth
        // stays constant but keeps its "uneven, regular" access-size ripple.
        const int bucket = static_cast<int>(std::log2(std::max<std::size_t>(access, 1)));
        per_proc *= (bucket % 2 == 0) ? 1.0 : 0.8;
    }
    return per_proc;
}

}  // namespace scimpi::plat
