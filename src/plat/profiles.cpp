#include "plat/profiles.hpp"

#include "common/status.hpp"

namespace scimpi::plat {

PlatformSpec spec(PlatformId id) {
    PlatformSpec s;
    s.id = id;
    switch (id) {
        case PlatformId::cray_t3e:
            s.code = "C";
            s.name = "Cray T3E-1200 (custom interconnect, Cray MPI)";
            s.host = mem::t3e_1200();
            s.internode = true;
            s.net = {330.0, 4'000, 1'200, 0, 0.0};  // E-registers: no host copies
            s.dt_opt = DatatypeOpt::hw_strided;
            s.supports_osc = true;
            s.osc_op_overhead = 1'500;
            s.osc_small_latency = 4'500;
            s.osc_peak_bw = 175.0;
            s.scaling_procs_max = 32;
            return s;
        case PlatformId::sunfire_gigabit:
            s.code = "F-G";
            s.name = "Sun Fire 6800 / Gigabit Ethernet (Sun HPC 3.1)";
            s.host = mem::sunfire_750();
            s.internode = true;
            s.net = {62.0, 90'000, 18'000, 2, 0.0};  // TCP stack overheads
            s.dt_opt = DatatypeOpt::generic;
            s.supports_osc = false;  // Table 1 footnote a
            return s;
        case PlatformId::sunfire_shm:
            s.code = "F-s";
            s.name = "Sun Fire 6800 24-way shared memory (Sun HPC 3.1)";
            s.host = mem::sunfire_750();
            s.internode = false;
            s.bus = {3'200.0, 700.0};  // Fireplane: strong but finite
            s.dt_opt = DatatypeOpt::shm_blockjump;
            s.supports_osc = true;
            s.osc_op_overhead = 900;
            s.osc_small_latency = 1'100;
            s.osc_peak_bw = 650.0;
            s.scaling_procs_max = 24;
            return s;
        case PlatformId::lam_fastethernet:
            s.code = "X-f";
            s.name = "Xeon quad SMP / Fast Ethernet (LAM 6.5.4)";
            s.host = mem::xeon_550_quad();
            s.internode = true;
            s.net = {11.0, 120'000, 25'000, 2, 0.0};
            s.dt_opt = DatatypeOpt::generic;
            s.supports_osc = true;  // message-based, very high latency
            s.osc_op_overhead = 30'000;
            s.osc_small_latency = 250'000;
            s.osc_peak_bw = 10.0;  // paper: "a maximum of 10 MiB via fast ethernet"
            return s;
        case PlatformId::lam_xeon_shm:
            s.code = "X-s";
            s.name = "Xeon quad SMP shared memory (LAM 6.5.4)";
            s.host = mem::xeon_550_quad();
            s.internode = false;
            s.bus = {420.0, 220.0};  // "inferior memory system design"
            s.dt_opt = DatatypeOpt::generic;
            s.supports_osc = true;
            s.osc_get_deadlocks = true;  // footnote b: MPI_Put deadlocked
            s.osc_op_overhead = 4'000;
            s.osc_small_latency = 9'000;
            s.osc_peak_bw = 200.0;
            s.scaling_procs_max = 4;
            return s;
        case PlatformId::score_myrinet:
            s.code = "S-M";
            s.name = "Pentium-II dual / Myrinet 1280 (SCore 2.4.1)";
            s.host = mem::pentium2_400();
            s.internode = true;
            // GM: DMA, but registration throughput dominates until ~700 KiB
            // (Section 5.2 discussion of [19]).
            s.net = {125.0, 12'000, 4'000, 0, 180.0};
            s.dt_opt = DatatypeOpt::generic;
            s.supports_osc = false;  // Table 1: no
            return s;
        case PlatformId::score_p2_shm:
            s.code = "S-s";
            s.name = "Pentium-II dual shared memory (SCore 2.4.1)";
            s.host = mem::pentium2_400();
            s.internode = false;
            s.bus = {350.0, 180.0};
            s.dt_opt = DatatypeOpt::generic;
            s.supports_osc = false;
            return s;
        case PlatformId::via_smp:
            s.code = "V";
            s.name = "Giganet VIA SMP cluster (ref. [15])";
            s.host = mem::pentium3_800();
            s.internode = true;
            s.net = {95.0, 28'000, 9'000, 1, 0.0};  // write-only remote access,
                                                    // explicit sync per op
            s.dt_opt = DatatypeOpt::generic;
            s.supports_osc = true;
            s.osc_op_overhead = 15'000;
            s.osc_small_latency = 60'000;  // ~3-15x SCI-MPICH (Section 5.3)
            s.osc_peak_bw = 85.0;
            return s;
    }
    panic("unknown platform id");
}

std::vector<PlatformId> all_platforms() {
    return {PlatformId::cray_t3e,         PlatformId::sunfire_gigabit,
            PlatformId::sunfire_shm,      PlatformId::lam_fastethernet,
            PlatformId::lam_xeon_shm,     PlatformId::score_myrinet,
            PlatformId::score_p2_shm,     PlatformId::via_smp};
}

std::vector<PlatformId> osc_platforms() {
    std::vector<PlatformId> out;
    for (const auto id : all_platforms())
        if (spec(id).supports_osc) out.push_back(id);
    return out;
}

}  // namespace scimpi::plat
