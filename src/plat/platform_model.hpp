// Closed-form performance evaluators for the comparator platforms of
// Figures 10-12. They compose the same building blocks as the simulator —
// CopyModel cache-aware copies and the packer work metrics — with each
// platform's interconnect parameters. The SCI-MPICH rows of those figures
// are produced by running the full simulator instead (see bench/).
#pragma once

#include "mem/copy_model.hpp"
#include "mpi/datatype/pack_generic.hpp"
#include "plat/profiles.hpp"

namespace scimpi::plat {

class PlatformModel {
public:
    explicit PlatformModel(PlatformSpec s)
        : spec_(std::move(s)), copy_(spec_.host) {}
    explicit PlatformModel(PlatformId id) : PlatformModel(spec(id)) {}

    [[nodiscard]] const PlatformSpec& platform() const { return spec_; }

    /// Two-sided transfer of `total` payload bytes arranged as blocks of
    /// `block` bytes with stride 2*block (the noncontig micro-benchmark);
    /// block == 0 means contiguous.
    [[nodiscard]] SimTime transfer_time(std::size_t total, std::size_t block) const;
    [[nodiscard]] double transfer_bandwidth(std::size_t total, std::size_t block) const {
        return bandwidth_mib(total, transfer_time(total, block));
    }
    /// Figure 10 metric: non-contiguous vs contiguous efficiency.
    [[nodiscard]] double noncontig_efficiency(std::size_t total, std::size_t block) const {
        return transfer_bandwidth(total, block) / transfer_bandwidth(total, 0);
    }

    /// One one-sided access of `access` bytes (latency chart of Fig. 9/11).
    [[nodiscard]] SimTime osc_latency(std::size_t access, bool is_put) const;
    /// Streaming one-sided bandwidth within one synchronization epoch.
    [[nodiscard]] double osc_bandwidth(std::size_t access, bool is_put) const;
    /// Figure 12 metric: per-process put bandwidth with `nprocs` active.
    [[nodiscard]] double osc_scaling_bandwidth(int nprocs, std::size_t access) const;

private:
    /// Time the platform's datatype machinery needs to gather/scatter
    /// `total` bytes in `block`-sized pieces on one side.
    [[nodiscard]] SimTime pack_time(std::size_t total, std::size_t block) const;
    /// Wire (or bus) time for `total` contiguous bytes.
    [[nodiscard]] SimTime wire_time(std::size_t total) const;

    PlatformSpec spec_;
    mem::CopyModel copy_;
};

}  // namespace scimpi::plat
