#include "sim/trace.hpp"

#include <cerrno>
#include <cstdio>
#include <cstring>

#include "obs/metrics.hpp"
#include "sim/engine.hpp"
#include "sim/process.hpp"

namespace scimpi::sim {

std::uint32_t Tracer::intern(std::string_view s) {
    if (s.empty()) return 0;
    const auto it = ids_.find(s);
    if (it != ids_.end()) return it->second;
    const auto id = static_cast<std::uint32_t>(names_.size());
    names_.emplace_back(s);
    ids_.emplace(names_.back(), id);
    return id;
}

std::string Tracer::to_chrome_json() const {
    std::string out = "[\n";
    char buf[192];
    bool first = true;
    // Perfetto metadata: name the process once and every known track, so
    // timelines read "rank 3" instead of a bare thread id.
    out += R"(  {"name": "process_name", "ph": "M", "pid": 0, )"
           R"("args": {"name": "scimpi cluster"}})";
    first = false;
    for (const auto& [track, name] : track_names_) {
        out += ",\n";
        std::snprintf(buf, sizeof buf,
                      R"(  {"name": "thread_name", "ph": "M", "pid": 0, "tid": %d, )",
                      track);
        out += buf;
        out += R"("args": {"name": ")";
        obs::json_escape(out, name);
        out += R"("}})";
    }
    for (const Event& e : events_) {
        if (!first) out += ",\n";
        first = false;
        out += R"(  {"name": ")";
        obs::json_escape(out, names_[e.name_id]);
        out += '"';
        if (e.cat_id != 0) {
            out += R"(, "cat": ")";
            obs::json_escape(out, names_[e.cat_id]);
            out += '"';
        }
        switch (e.kind) {
            case Kind::span:
                std::snprintf(buf, sizeof buf,
                              R"(, "ph": "X", "ts": %.3f, "dur": %.3f, "pid": 0, "tid": %d)",
                              to_us(e.t0), to_us(e.t1 - e.t0), e.track);
                out += buf;
                if (e.arg != kNoArg) {
                    std::snprintf(buf, sizeof buf, R"(, "args": {"bytes": %llu})",
                                  static_cast<unsigned long long>(e.arg));
                    out += buf;
                }
                break;
            case Kind::instant:
                std::snprintf(buf, sizeof buf,
                              R"(, "ph": "i", "ts": %.3f, "pid": 0, "tid": %d, "s": "t")",
                              to_us(e.t0), e.track);
                out += buf;
                break;
            case Kind::counter:
                std::snprintf(buf, sizeof buf,
                              R"(, "ph": "C", "ts": %.3f, "pid": 0, "args": {"value": %.6g})",
                              to_us(e.t0), e.value);
                out += buf;
                break;
            case Kind::flow_start:
                std::snprintf(buf, sizeof buf,
                              R"(, "ph": "s", "ts": %.3f, "pid": 0, "tid": %d, "id": %llu)",
                              to_us(e.t0), e.track,
                              static_cast<unsigned long long>(e.arg));
                out += buf;
                break;
            case Kind::flow_end:
                // "bp": "e" binds the finish to the enclosing slice, which is
                // what Perfetto expects for arrows that land *inside* a span.
                std::snprintf(buf, sizeof buf,
                              R"(, "ph": "f", "bp": "e", "ts": %.3f, "pid": 0, "tid": %d, "id": %llu)",
                              to_us(e.t0), e.track,
                              static_cast<unsigned long long>(e.arg));
                out += buf;
                break;
        }
        out += '}';
    }
    out += "\n]\n";
    return out;
}

Status Tracer::write_chrome_json(const std::string& path) const {
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (f == nullptr)
        return Status::error(Errc::io_error, "trace: cannot open '" + path +
                                                 "': " + std::strerror(errno));
    const std::string json = to_chrome_json();
    const bool ok = std::fwrite(json.data(), 1, json.size(), f) == json.size();
    const int write_errno = errno;
    if (std::fclose(f) != 0)
        return Status::error(Errc::io_error, "trace: close failed for '" + path +
                                                 "': " + std::strerror(errno));
    if (!ok)
        return Status::error(Errc::io_error, "trace: short write to '" + path +
                                                 "': " + std::strerror(write_errno));
    return Status::ok();
}

TraceScope::TraceScope(Process& proc, std::string_view name, std::string_view cat,
                       std::uint64_t bytes)
    : proc_(proc),
      bytes_(bytes),
      t0_(proc.now()),
      armed_(proc.engine().tracer().enabled()) {
    if (armed_) {
        Tracer& tr = proc_.engine().tracer();
        name_id_ = tr.intern(name);
        cat_id_ = tr.intern(cat);
    }
}

TraceScope::~TraceScope() {
    if (armed_)
        proc_.engine().tracer().span_ids(proc_.id(), name_id_, cat_id_, t0_,
                                         proc_.now(), bytes_);
}

ProfScope::ProfScope(Process& proc, obs::ProfState state)
    : proc_(proc), armed_(proc.engine().profiler().enabled()) {
    if (armed_) proc_.engine().profiler().push(proc_.id(), state, proc_.now());
}

ProfScope::~ProfScope() {
    if (armed_) proc_.engine().profiler().pop(proc_.id(), proc_.now());
}

}  // namespace scimpi::sim
