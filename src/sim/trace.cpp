#include "sim/trace.hpp"

#include <cstdio>

#include "sim/engine.hpp"
#include "sim/process.hpp"

namespace scimpi::sim {

namespace {
void append_escaped(std::string& out, const std::string& s) {
    for (const char c : s) {
        if (c == '"' || c == '\\') out.push_back('\\');
        out.push_back(c);
    }
}
}  // namespace

std::string Tracer::to_chrome_json() const {
    std::string out = "[\n";
    char buf[160];
    bool first = true;
    for (const Event& e : events_) {
        if (!first) out += ",\n";
        first = false;
        out += R"(  {"name": ")";
        append_escaped(out, e.name);
        if (e.is_instant) {
            std::snprintf(buf, sizeof buf,
                          R"(", "ph": "i", "ts": %.3f, "pid": 0, "tid": %d, "s": "t"})",
                          to_us(e.t0), e.track);
        } else {
            std::snprintf(
                buf, sizeof buf,
                R"(", "ph": "X", "ts": %.3f, "dur": %.3f, "pid": 0, "tid": %d})",
                to_us(e.t0), to_us(e.t1 - e.t0), e.track);
        }
        out += buf;
    }
    out += "\n]\n";
    return out;
}

bool Tracer::write_chrome_json(const std::string& path) const {
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (f == nullptr) return false;
    const std::string json = to_chrome_json();
    const bool ok = std::fwrite(json.data(), 1, json.size(), f) == json.size();
    std::fclose(f);
    return ok;
}

TraceScope::TraceScope(Process& proc, std::string name)
    : proc_(proc),
      name_(std::move(name)),
      t0_(proc.now()),
      armed_(proc.engine().tracer().enabled()) {}

TraceScope::~TraceScope() {
    if (armed_) proc_.engine().tracer().span(proc_.id(), name_, t0_, proc_.now());
}

}  // namespace scimpi::sim
