#include "sim/sync.hpp"

// All primitives are header-only templates/inline; this TU exists to give
// the module a home for future out-of-line definitions and to surface
// header self-containment errors at build time.
