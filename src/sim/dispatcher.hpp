// Timed-callback service: runs closures at requested simulation times on a
// dedicated service process. Used to model asynchronous completions — e.g.
// a message becoming visible at the receiver some latency after the sender
// finished pushing it onto the wire.
#pragma once

#include <functional>
#include <queue>
#include <vector>

#include "sim/engine.hpp"
#include "sim/process.hpp"

namespace scimpi::sim {

class Dispatcher {
public:
    /// Spawns the service process on `engine`. The dispatcher must outlive
    /// the engine's run().
    explicit Dispatcher(Engine& engine, std::string name = "dispatcher");

    /// Run `fn` at absolute simulation time `t` (>= now). Callable from any
    /// process. Callbacks with equal times run in insertion order.
    void at(SimTime t, std::function<void()> fn);

    /// Run `fn` after `delay` ns.
    void after(SimTime delay, std::function<void()> fn) {
        at(engine_.now() + delay, std::move(fn));
    }

    [[nodiscard]] std::size_t pending() const { return items_.size(); }

private:
    struct Item {
        SimTime t;
        std::uint64_t seq;
        std::function<void()> fn;
        bool operator>(const Item& o) const {
            return t != o.t ? t > o.t : seq > o.seq;
        }
    };

    void service_loop(Process& self);
    std::size_t pop_due(Process& self, std::vector<Item>& due);

    Engine& engine_;
    Process* proc_ = nullptr;
    std::priority_queue<Item, std::vector<Item>, std::greater<>> items_;
    std::uint64_t seq_ = 0;
};

}  // namespace scimpi::sim
