// Synchronization primitives for simulated processes. All of them rely on
// the engine's single-active-thread invariant: their internal state is only
// ever touched by the baton holder, so no host-level locking is needed.
//
// Every primitive reports itself to the schedule controller (when one is
// installed) via sim::note_subject, and the points where several parked
// processes could legitimately be woken in either order (WaitQueue::wake_one,
// SimMutex::unlock) are exposed as `handover` choice points. Without a
// controller all of this is a null-pointer check.
#pragma once

#include <deque>
#include <optional>
#include <string_view>

#include "common/status.hpp"
#include "sim/engine.hpp"
#include "sim/process.hpp"
#include "sim/schedule.hpp"

namespace scimpi::sim {

/// FIFO queue of parked processes. Building block for the other primitives.
class WaitQueue {
public:
    /// Park the calling process until woken. `why` names the wait object for
    /// deadlock diagnostics (see Process::block).
    void park(Process& self, std::string_view why = "wait queue") {
        note_subject(this);
        waiters_.push_back(&self);
        self.block(why);
    }

    /// Wake the longest-waiting process (returns false if none). With a
    /// schedule controller installed and several waiters parked, which one
    /// receives the hand-over is a choice point.
    bool wake_one() {
        note_subject(this);
        if (waiters_.empty()) return false;
        const std::size_t pick = choose_waiter();
        Process* p = waiters_[pick];
        waiters_.erase(waiters_.begin() + static_cast<std::ptrdiff_t>(pick));
        p->engine().wake(*p);
        return true;
    }

    void wake_all() {
        while (wake_one()) {}
    }

    [[nodiscard]] bool empty() const { return waiters_.empty(); }
    [[nodiscard]] std::size_t size() const { return waiters_.size(); }

private:
    std::size_t choose_waiter() {
        if (waiters_.size() < 2) return 0;
        ScheduleController* c = waiters_.front()->engine().schedule_controller();
        if (c == nullptr) return 0;
        Engine& eng = waiters_.front()->engine();
        ChoicePoint cp;
        cp.kind = ChoiceKind::handover;
        cp.now = eng.now();
        cp.alts.reserve(waiters_.size());
        for (Process* w : waiters_)
            cp.alts.push_back(ChoiceAlt{w->name(), w->id(), eng.now()});
        const std::size_t pick = c->choose(cp);
        SCIMPI_REQUIRE(pick < waiters_.size(), "handover choice out of range");
        return pick;
    }

    std::deque<Process*> waiters_;
};

/// Manual-reset event: wait() passes while set.
class Event {
public:
    void wait(Process& self) {
        note_subject(this);
        while (!set_) q_.park(self, "event wait");
    }
    void set() {
        note_subject(this);
        set_ = true;
        q_.wake_all();
    }
    void reset() { set_ = false; }
    [[nodiscard]] bool is_set() const { return set_; }

private:
    bool set_ = false;
    WaitQueue q_;
};

/// Unbounded message queue with blocking receive.
template <typename T>
class Mailbox {
public:
    void send(T v) {
        note_subject(this);
        items_.push_back(std::move(v));
        q_.wake_one();
    }

    T recv(Process& self, std::string_view why = "mailbox recv") {
        note_subject(this);
        while (items_.empty()) q_.park(self, why);
        T v = std::move(items_.front());
        items_.pop_front();
        // More items may remain for other waiters parked behind us.
        if (!items_.empty()) q_.wake_one();
        return v;
    }

    std::optional<T> try_recv() {
        note_subject(this);
        if (items_.empty()) return std::nullopt;
        T v = std::move(items_.front());
        items_.pop_front();
        return v;
    }

    [[nodiscard]] bool empty() const { return items_.empty(); }
    [[nodiscard]] std::size_t size() const { return items_.size(); }

private:
    std::deque<T> items_;
    WaitQueue q_;
};

/// FIFO-fair mutex with direct ownership hand-off on unlock.
class SimMutex {
public:
    void lock(Process& self, std::string_view why = "mutex lock") {
        note_subject(this);
        if (owner_ == nullptr) {
            owner_ = &self;
            return;
        }
        SCIMPI_REQUIRE(owner_ != &self, "SimMutex is not recursive");
        waiters_.push_back(&self);
        self.block(why);
        // unlock() handed ownership to us before waking us.
        SCIMPI_REQUIRE(owner_ == &self, "SimMutex hand-off violated");
    }

    bool try_lock(Process& self) {
        note_subject(this);
        if (owner_ != nullptr) return false;
        owner_ = &self;
        return true;
    }

    void unlock(Process& self) {
        note_subject(this);
        SCIMPI_REQUIRE(owner_ == &self, "SimMutex::unlock by non-owner");
        if (waiters_.empty()) {
            owner_ = nullptr;
            return;
        }
        const std::size_t pick = choose_next(self);
        Process* next = waiters_[pick];
        waiters_.erase(waiters_.begin() + static_cast<std::ptrdiff_t>(pick));
        owner_ = next;
        next->engine().wake(*next);
    }

    [[nodiscard]] bool locked() const { return owner_ != nullptr; }
    [[nodiscard]] Process* owner() const { return owner_; }

private:
    std::size_t choose_next(Process& self) {
        if (waiters_.size() < 2) return 0;
        ScheduleController* c = self.engine().schedule_controller();
        if (c == nullptr) return 0;
        ChoicePoint cp;
        cp.kind = ChoiceKind::handover;
        cp.now = self.engine().now();
        cp.alts.reserve(waiters_.size());
        for (Process* w : waiters_)
            cp.alts.push_back(ChoiceAlt{w->name(), w->id(), cp.now});
        const std::size_t pick = c->choose(cp);
        SCIMPI_REQUIRE(pick < waiters_.size(), "handover choice out of range");
        return pick;
    }

    std::deque<Process*> waiters_;
    Process* owner_ = nullptr;
};

class SimCondVar {
public:
    /// Atomically release `m`, park, and re-acquire `m` before returning.
    void wait(Process& self, SimMutex& m) {
        m.unlock(self);
        q_.park(self, "condvar wait");
        m.lock(self);
    }

    void notify_one() { q_.wake_one(); }
    void notify_all() { q_.wake_all(); }

private:
    WaitQueue q_;
};

/// Reusable cyclic barrier for a fixed participant count.
class SimBarrier {
public:
    explicit SimBarrier(int participants) : n_(participants) {
        SCIMPI_REQUIRE(participants > 0, "SimBarrier needs >= 1 participant");
    }

    void arrive_and_wait(Process& self) {
        note_subject(this);
        const std::uint64_t my_round = round_;
        if (++arrived_ == n_) {
            arrived_ = 0;
            ++round_;
            q_.wake_all();
            return;
        }
        while (round_ == my_round) q_.park(self, "barrier");
    }

    [[nodiscard]] int participants() const { return n_; }

private:
    int n_;
    int arrived_ = 0;
    std::uint64_t round_ = 0;
    WaitQueue q_;
};

}  // namespace scimpi::sim
