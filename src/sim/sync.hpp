// Synchronization primitives for simulated processes. All of them rely on
// the engine's single-active-thread invariant: their internal state is only
// ever touched by the baton holder, so no host-level locking is needed.
#pragma once

#include <deque>
#include <optional>

#include "common/status.hpp"
#include "sim/engine.hpp"
#include "sim/process.hpp"

namespace scimpi::sim {

/// FIFO queue of parked processes. Building block for the other primitives.
class WaitQueue {
public:
    /// Park the calling process until woken.
    void park(Process& self) {
        waiters_.push_back(&self);
        self.block();
    }

    /// Wake the longest-waiting process (returns false if none).
    bool wake_one() {
        if (waiters_.empty()) return false;
        Process* p = waiters_.front();
        waiters_.pop_front();
        p->engine().wake(*p);
        return true;
    }

    void wake_all() {
        while (wake_one()) {}
    }

    [[nodiscard]] bool empty() const { return waiters_.empty(); }
    [[nodiscard]] std::size_t size() const { return waiters_.size(); }

private:
    std::deque<Process*> waiters_;
};

/// Manual-reset event: wait() passes while set.
class Event {
public:
    void wait(Process& self) {
        while (!set_) q_.park(self);
    }
    void set() {
        set_ = true;
        q_.wake_all();
    }
    void reset() { set_ = false; }
    [[nodiscard]] bool is_set() const { return set_; }

private:
    bool set_ = false;
    WaitQueue q_;
};

/// Unbounded message queue with blocking receive.
template <typename T>
class Mailbox {
public:
    void send(T v) {
        items_.push_back(std::move(v));
        q_.wake_one();
    }

    T recv(Process& self) {
        while (items_.empty()) q_.park(self);
        T v = std::move(items_.front());
        items_.pop_front();
        // More items may remain for other waiters parked behind us.
        if (!items_.empty()) q_.wake_one();
        return v;
    }

    std::optional<T> try_recv() {
        if (items_.empty()) return std::nullopt;
        T v = std::move(items_.front());
        items_.pop_front();
        return v;
    }

    [[nodiscard]] bool empty() const { return items_.empty(); }
    [[nodiscard]] std::size_t size() const { return items_.size(); }

private:
    std::deque<T> items_;
    WaitQueue q_;
};

/// FIFO-fair mutex with direct ownership hand-off on unlock.
class SimMutex {
public:
    void lock(Process& self) {
        if (owner_ == nullptr) {
            owner_ = &self;
            return;
        }
        SCIMPI_REQUIRE(owner_ != &self, "SimMutex is not recursive");
        waiters_.push_back(&self);
        self.block();
        // unlock() handed ownership to us before waking us.
        SCIMPI_REQUIRE(owner_ == &self, "SimMutex hand-off violated");
    }

    bool try_lock(Process& self) {
        if (owner_ != nullptr) return false;
        owner_ = &self;
        return true;
    }

    void unlock(Process& self) {
        SCIMPI_REQUIRE(owner_ == &self, "SimMutex::unlock by non-owner");
        if (waiters_.empty()) {
            owner_ = nullptr;
            return;
        }
        Process* next = waiters_.front();
        waiters_.pop_front();
        owner_ = next;
        next->engine().wake(*next);
    }

    [[nodiscard]] bool locked() const { return owner_ != nullptr; }
    [[nodiscard]] Process* owner() const { return owner_; }

private:
    std::deque<Process*> waiters_;
    Process* owner_ = nullptr;
};

class SimCondVar {
public:
    /// Atomically release `m`, park, and re-acquire `m` before returning.
    void wait(Process& self, SimMutex& m) {
        m.unlock(self);
        q_.park(self);
        m.lock(self);
    }

    void notify_one() { q_.wake_one(); }
    void notify_all() { q_.wake_all(); }

private:
    WaitQueue q_;
};

/// Reusable cyclic barrier for a fixed participant count.
class SimBarrier {
public:
    explicit SimBarrier(int participants) : n_(participants) {
        SCIMPI_REQUIRE(participants > 0, "SimBarrier needs >= 1 participant");
    }

    void arrive_and_wait(Process& self) {
        const std::uint64_t my_round = round_;
        if (++arrived_ == n_) {
            arrived_ = 0;
            ++round_;
            q_.wake_all();
            return;
        }
        while (round_ == my_round) q_.park(self);
    }

    [[nodiscard]] int participants() const { return n_; }

private:
    int n_;
    int arrived_ = 0;
    std::uint64_t round_ = 0;
    WaitQueue q_;
};

}  // namespace scimpi::sim
