// Deterministic discrete-event simulation engine.
//
// Every simulated MPI rank is a sim::Process backed by an OS thread, but the
// engine hands a single execution "baton" around: exactly one thread (a
// process or the scheduler) runs at any moment. Rank code therefore calls
// blocking library routines naturally, while results stay bit-deterministic
// on any host regardless of core count.
//
// Scheduling is a min-heap ordered by (wakeup time, insertion sequence), so
// simultaneous events run in FIFO order of scheduling.
#pragma once

#include <chrono>
#include <cstdint>
#include <functional>
#include <memory>
#include <queue>
#include <string>
#include <vector>

#include "common/status.hpp"
#include "common/units.hpp"
#include "obs/evgraph.hpp"
#include "obs/metrics.hpp"
#include "sim/trace.hpp"

namespace scimpi::sim {

class Process;
class ScheduleController;

class Engine {
public:
    Engine();
    ~Engine();
    Engine(const Engine&) = delete;
    Engine& operator=(const Engine&) = delete;

    /// Create a process. May be called before run() or from a running
    /// process (the child is scheduled at the current time).
    Process& spawn(std::string name, std::function<void(Process&)> body);

    /// Like spawn(), but the process is a service daemon: it may block
    /// forever without tripping deadlock detection (it is unwound at engine
    /// teardown instead).
    Process& spawn_daemon(std::string name, std::function<void(Process&)> body);

    /// Run until every process has finished. Throws Panic if a process threw
    /// or if all remaining processes are blocked (deadlock), listing them.
    void run();

    [[nodiscard]] SimTime now() const { return now_; }
    [[nodiscard]] std::size_t process_count() const { return processes_.size(); }
    [[nodiscard]] Process* current() const { return current_; }
    [[nodiscard]] std::uint64_t events_dispatched() const { return events_dispatched_; }
    /// Pending event-queue entries (including stale reschedule residue).
    [[nodiscard]] std::size_t heap_size() const { return queue_.size(); }
    /// Host wall-clock spent inside run() so far, in nanoseconds; valid
    /// mid-run (the flight recorder samples it) and after run() returns.
    [[nodiscard]] std::uint64_t wall_ns() const;

    /// Install a flight-recorder hook: whenever the event loop's clock first
    /// reaches the next multiple of `cadence` it calls `fn(now)` between two
    /// event dispatches (sampling never perturbs simulated time, and cannot
    /// keep the queue alive the way a self-rescheduling daemon would).
    /// cadence <= 0 removes the hook.
    void set_sampler(SimTime cadence, std::function<void(SimTime)> fn);

    /// Event tracer (disabled by default; see sim/trace.hpp).
    [[nodiscard]] Tracer& tracer() { return tracer_; }

    /// Per-track time-attribution profiler (disabled by default; see
    /// obs/profiler.hpp and sim::ProfScope).
    [[nodiscard]] obs::Profiler& profiler() { return profiler_; }
    [[nodiscard]] const obs::Profiler& profiler() const { return profiler_; }

    /// Causal event graph for critical-path analysis (disabled by default;
    /// see obs/evgraph.hpp). Lives on the engine like the tracer so deep
    /// layers (protocol, fault retry) reach it without plumbing.
    [[nodiscard]] obs::EventGraph& evgraph() { return evgraph_; }
    [[nodiscard]] const obs::EventGraph& evgraph() const { return evgraph_; }

    /// Attach a metrics registry: the engine then feeds `sim.context_switches`
    /// (baton handovers) and `sim.deadlock_checks` (end-of-run blocked-process
    /// scans). Handles resolve once; increments are no-ops while disabled.
    void bind_metrics(obs::MetricsRegistry& m);

    /// The bound registry, nullptr before bind_metrics(). Lets deep layers
    /// (fault retry) resolve cold-path histograms without plumbing.
    [[nodiscard]] obs::MetricsRegistry* metrics() const { return metrics_; }

    /// Install a schedule controller (see sim/schedule.hpp): the event loop
    /// then offers every co-enabled dispatch set (entries within the
    /// controller's fuzz() window of the earliest wakeup) as a choice point,
    /// and the sync primitives report hand-over choices and shared-object
    /// footprints. nullptr restores plain deterministic FIFO dispatch.
    void set_schedule_controller(ScheduleController* c) { sched_ = c; }
    [[nodiscard]] ScheduleController* schedule_controller() const { return sched_; }

    /// Low-level: insert `p` into the ready queue at absolute time `t`
    /// (>= now). Requires that `p` is suspended and not already scheduled.
    void schedule(Process& p, SimTime t);

    /// Wake a blocked process at the current time.
    void wake(Process& p) { schedule(p, now_); }

    /// Ensure `p` (suspended) wakes no later than `t`: schedules if blocked,
    /// pulls an existing later wakeup forward, and leaves an existing
    /// earlier-or-equal wakeup alone.
    void reschedule_earlier(Process& p, SimTime t);

private:
    friend class Process;

    struct QEntry {
        SimTime t;
        std::uint64_t seq;
        Process* p;
        std::uint64_t gen;  // stale-entry detection after reschedule
        bool operator>(const QEntry& o) const {
            return t != o.t ? t > o.t : seq > o.seq;
        }
    };

    void resume(Process& p);      // hand baton to p, wait for it back
    void run_loop();              // dispatch until quiescent or error
    void shutdown_remaining();    // unwind parked threads before throwing/destroying

    std::vector<std::unique_ptr<Process>> processes_;
    std::priority_queue<QEntry, std::vector<QEntry>, std::greater<>> queue_;
    SimTime now_ = 0;
    std::uint64_t seq_ = 0;
    std::uint64_t events_dispatched_ = 0;
    std::uint64_t wall_base_ns_ = 0;
    std::chrono::steady_clock::time_point wall_run_start_{};
    SimTime sampler_cadence_ = 0;
    SimTime sampler_next_ = 0;
    std::function<void(SimTime)> sampler_;
    Process* current_ = nullptr;
    Tracer tracer_;
    obs::Profiler profiler_;
    obs::EventGraph evgraph_;
    obs::MetricsRegistry* metrics_ = nullptr;
    ScheduleController* sched_ = nullptr;
    obs::Counter* ctx_switches_ = nullptr;
    obs::Counter* deadlock_checks_ = nullptr;
    bool running_ = false;
    std::string pending_error_;   // first process exception, rethrown by run()
};

}  // namespace scimpi::sim
