#include "sim/process.hpp"

#include "common/status.hpp"
#include "sim/engine.hpp"
#include "sim/schedule.hpp"

namespace scimpi::sim {

Process::Process(Engine& engine, int id, std::string name,
                 std::function<void(Process&)> body)
    : engine_(engine), id_(id), name_(std::move(name)), body_(std::move(body)) {}

Process::~Process() {
    if (thread_.joinable()) {
        {
            const std::lock_guard<std::mutex> lock(mutex_);
            shutdown_ = true;
            cv_.notify_all();
        }
        thread_.join();
    }
}

SimTime Process::now() const { return engine_.now(); }

void Process::start_thread() {
    thread_ = std::thread([this] { thread_main(); });
}

void Process::thread_main() {
    try {
        {
            // Wait for the first baton.
            std::unique_lock<std::mutex> lock(mutex_);
            cv_.wait(lock, [this] { return baton_ || shutdown_; });
            if (shutdown_) throw ShutdownSignal{};
            baton_ = false;
        }
        // Bind this OS thread to its engine so argument-less primitives can
        // reach the schedule controller (see sim::current_engine()).
        set_current_engine(&engine_);
        state_ = State::running;
        body_(*this);
    } catch (const ShutdownSignal&) {
        // Engine tear-down: unwind silently.
    } catch (const std::exception& e) {
        engine_.pending_error_ = name_ + ": " + e.what();
    } catch (...) {
        engine_.pending_error_ = name_ + ": unknown exception";
    }
    state_ = State::finished;
    const std::lock_guard<std::mutex> lock(mutex_);
    returned_ = true;
    cv_.notify_all();
}

void Process::resume_from_engine() {
    std::unique_lock<std::mutex> lock(mutex_);
    if (state_ == State::created) {
        state_ = State::ready;
        start_thread();
    }
    returned_ = false;
    baton_ = true;
    cv_.notify_all();
    cv_.wait(lock, [this] { return returned_; });
}

void Process::suspend() {
    std::unique_lock<std::mutex> lock(mutex_);
    returned_ = true;
    cv_.notify_all();
    cv_.wait(lock, [this] { return baton_ || shutdown_; });
    if (shutdown_) throw ShutdownSignal{};
    baton_ = false;
    state_ = State::running;
}

void Process::delay(SimTime ns) {
    SCIMPI_REQUIRE(engine_.current() == this,
                   "delay() must be called from the process's own body");
    SCIMPI_REQUIRE(ns >= 0, "delay() with negative duration");
    engine_.schedule(*this, engine_.now() + ns);
    state_ = State::blocked;
    suspend();
}

void Process::block(std::string_view why) {
    SCIMPI_REQUIRE(engine_.current() == this,
                   "block() must be called from the process's own body");
    wait_why_ = why;
    state_ = State::blocked;
    suspend();
    wait_why_.clear();
}

}  // namespace scimpi::sim
