#include "sim/engine.hpp"

#include <chrono>

#include "sim/process.hpp"

namespace scimpi::sim {

Engine::Engine() = default;

Engine::~Engine() { shutdown_remaining(); }

void Engine::bind_metrics(obs::MetricsRegistry& m) {
    metrics_ = &m;
    ctx_switches_ = &m.counter("sim.context_switches");
    deadlock_checks_ = &m.counter("sim.deadlock_checks");
}

Process& Engine::spawn(std::string name, std::function<void(Process&)> body) {
    const int id = static_cast<int>(processes_.size());
    tracer_.set_track_name(id, name);
    processes_.push_back(std::unique_ptr<Process>(
        new Process(*this, id, std::move(name), std::move(body))));
    Process& p = *processes_.back();
    schedule(p, now_);
    return p;
}

Process& Engine::spawn_daemon(std::string name, std::function<void(Process&)> body) {
    Process& p = spawn(std::move(name), std::move(body));
    p.daemon_ = true;
    return p;
}

void Engine::schedule(Process& p, SimTime t) {
    SCIMPI_REQUIRE(!p.finished(), "schedule() on finished process " + p.name());
    SCIMPI_REQUIRE(!p.scheduled_, "schedule() on already-scheduled process " + p.name());
    SCIMPI_REQUIRE(t >= now_, "schedule() into the past");
    p.scheduled_ = true;
    p.pending_time_ = t;
    queue_.push(QEntry{t, seq_++, &p, p.gen_});
}

void Engine::reschedule_earlier(Process& p, SimTime t) {
    SCIMPI_REQUIRE(t >= now_, "reschedule_earlier() into the past");
    if (!p.scheduled_) {
        schedule(p, t);
        return;
    }
    if (p.pending_time_ <= t) return;  // existing wakeup is already sooner
    ++p.gen_;                          // invalidate the queued entry
    p.scheduled_ = false;
    schedule(p, t);
}

void Engine::set_sampler(SimTime cadence, std::function<void(SimTime)> fn) {
    if (cadence <= 0 || !fn) {
        sampler_cadence_ = 0;
        sampler_ = nullptr;
        return;
    }
    sampler_cadence_ = cadence;
    sampler_ = std::move(fn);
    // First boundary strictly after the current time.
    sampler_next_ = (now_ / cadence + 1) * cadence;
}

std::uint64_t Engine::wall_ns() const {
    std::uint64_t ns = wall_base_ns_;
    if (running_)
        ns += static_cast<std::uint64_t>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(
                std::chrono::steady_clock::now() - wall_run_start_)
                .count());
    return ns;
}

void Engine::run() {
    SCIMPI_REQUIRE(!running_, "Engine::run() is not reentrant");
    running_ = true;
    wall_run_start_ = std::chrono::steady_clock::now();
    while (!queue_.empty() && pending_error_.empty()) {
        const QEntry e = queue_.top();
        queue_.pop();
        if (e.p->finished()) continue;   // finished while queued (shutdown path)
        if (e.gen != e.p->gen_) continue;  // stale entry after reschedule
        e.p->scheduled_ = false;
        if (sampler_cadence_ > 0 && e.t >= sampler_next_) {
            // Crossed one or more cadence boundaries: sample once, between
            // events, stamped at the time actually reached. Catch up
            // sampler_next_ past e.t so an idle stretch costs one sample.
            now_ = e.t;
            sampler_(now_);
            sampler_next_ = (e.t / sampler_cadence_ + 1) * sampler_cadence_;
        }
        now_ = e.t;
        ++events_dispatched_;
        if (ctx_switches_ != nullptr) ctx_switches_->inc();
        resume(*e.p);
    }
    wall_base_ns_ += static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - wall_run_start_)
            .count());
    running_ = false;

    if (!pending_error_.empty()) {
        std::string err = pending_error_;
        pending_error_.clear();
        shutdown_remaining();
        panic(err);
    }

    if (deadlock_checks_ != nullptr) deadlock_checks_->inc();
    std::string blocked;
    for (const auto& p : processes_)
        if (!p->finished() && !p->daemon_) blocked += " " + p->name();
    if (!blocked.empty()) {
        shutdown_remaining();
        panic("simulation deadlock; blocked processes:" + blocked);
    }
}

void Engine::resume(Process& p) {
    current_ = &p;
    p.resume_from_engine();
    current_ = nullptr;
}

void Engine::shutdown_remaining() {
    // ~Process signals shutdown_ (parked threads throw ShutdownSignal through
    // the user stack, running destructors) and joins each thread.
    processes_.clear();
    while (!queue_.empty()) queue_.pop();
}

}  // namespace scimpi::sim
