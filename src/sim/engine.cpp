#include "sim/engine.hpp"

#include <chrono>

#include "sim/process.hpp"
#include "sim/schedule.hpp"

namespace scimpi::sim {

Engine::Engine() = default;

Engine::~Engine() { shutdown_remaining(); }

void Engine::bind_metrics(obs::MetricsRegistry& m) {
    metrics_ = &m;
    ctx_switches_ = &m.counter("sim.context_switches");
    deadlock_checks_ = &m.counter("sim.deadlock_checks");
}

Process& Engine::spawn(std::string name, std::function<void(Process&)> body) {
    const int id = static_cast<int>(processes_.size());
    tracer_.set_track_name(id, name);
    processes_.push_back(std::unique_ptr<Process>(
        new Process(*this, id, std::move(name), std::move(body))));
    Process& p = *processes_.back();
    schedule(p, now_);
    return p;
}

Process& Engine::spawn_daemon(std::string name, std::function<void(Process&)> body) {
    Process& p = spawn(std::move(name), std::move(body));
    p.daemon_ = true;
    return p;
}

void Engine::schedule(Process& p, SimTime t) {
    SCIMPI_REQUIRE(!p.finished(), "schedule() on finished process " + p.name());
    SCIMPI_REQUIRE(!p.scheduled_, "schedule() on already-scheduled process " + p.name());
    SCIMPI_REQUIRE(t >= now_, "schedule() into the past");
    p.scheduled_ = true;
    p.pending_time_ = t;
    if (sched_ != nullptr && current_ != nullptr && current_ != &p)
        sched_->on_edge(current_->id(), p.id());
    queue_.push(QEntry{t, seq_++, &p, p.gen_});
}

void Engine::reschedule_earlier(Process& p, SimTime t) {
    SCIMPI_REQUIRE(t >= now_, "reschedule_earlier() into the past");
    if (!p.scheduled_) {
        schedule(p, t);
        return;
    }
    if (p.pending_time_ <= t) return;  // existing wakeup is already sooner
    ++p.gen_;                          // invalidate the queued entry
    p.scheduled_ = false;
    schedule(p, t);
}

void Engine::set_sampler(SimTime cadence, std::function<void(SimTime)> fn) {
    if (cadence <= 0 || !fn) {
        sampler_cadence_ = 0;
        sampler_ = nullptr;
        return;
    }
    sampler_cadence_ = cadence;
    sampler_ = std::move(fn);
    // First boundary strictly after the current time.
    sampler_next_ = (now_ / cadence + 1) * cadence;
}

std::uint64_t Engine::wall_ns() const {
    std::uint64_t ns = wall_base_ns_;
    if (running_)
        ns += static_cast<std::uint64_t>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(
                std::chrono::steady_clock::now() - wall_run_start_)
                .count());
    return ns;
}

void Engine::run() {
    SCIMPI_REQUIRE(!running_, "Engine::run() is not reentrant");
    running_ = true;
    wall_run_start_ = std::chrono::steady_clock::now();
    try {
        run_loop();
    } catch (...) {
        // A schedule controller threw on the engine thread (replay
        // divergence, choice out of range). Unwind the parked process
        // threads *now*, while the objects their stacks reference are still
        // alive — the caller's members die before this engine does.
        running_ = false;
        shutdown_remaining();
        throw;
    }
    wall_base_ns_ += static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - wall_run_start_)
            .count());
    running_ = false;

    if (!pending_error_.empty()) {
        std::string err = pending_error_;
        pending_error_.clear();
        shutdown_remaining();
        panic(err);
    }

    if (deadlock_checks_ != nullptr) deadlock_checks_->inc();
    std::string blocked;
    for (const auto& p : processes_) {
        if (p->finished() || p->daemon_) continue;
        blocked += " " + p->name();
        if (!p->wait_why_.empty()) blocked += " (in " + p->wait_why_ + ")";
    }
    if (!blocked.empty()) {
        shutdown_remaining();
        panic("simulation deadlock; blocked processes:" + blocked);
    }
}

void Engine::run_loop() {
    while (!queue_.empty() && pending_error_.empty()) {
        QEntry e = queue_.top();
        queue_.pop();
        if (e.p->finished()) continue;   // finished while queued (shutdown path)
        if (e.gen != e.p->gen_) continue;  // stale entry after reschedule
        if (sched_ != nullptr) {
            // Collect every valid entry within the fuzz window of the
            // earliest wakeup; the controller picks which one runs first.
            // Entries are heap-popped, so cands is (t, seq)-sorted and
            // cands[0] is the deterministic FIFO default.
            const SimTime limit = e.t + sched_->fuzz();
            std::vector<QEntry> cands{e};
            while (!queue_.empty() && queue_.top().t <= limit) {
                const QEntry n = queue_.top();
                queue_.pop();
                if (n.p->finished() || n.gen != n.p->gen_) continue;
                cands.push_back(n);
            }
            std::size_t pick = 0;
            if (cands.size() > 1) {
                ChoicePoint cp;
                cp.kind = ChoiceKind::dispatch;
                cp.now = now_;
                cp.alts.reserve(cands.size());
                for (const QEntry& c : cands)
                    cp.alts.push_back(ChoiceAlt{c.p->name(), c.p->id(), c.t});
                pick = sched_->choose(cp);
                SCIMPI_REQUIRE(pick < cands.size(), "schedule choice out of range");
            }
            for (std::size_t i = 0; i < cands.size(); ++i)
                if (i != pick) queue_.push(cands[i]);
            e = cands[pick];
        }
        e.p->scheduled_ = false;
        // Dispatching a later co-enabled entry first leaves earlier entries
        // in the queue with t < now_; time never runs backwards for them.
        const SimTime t_eff = e.t > now_ ? e.t : now_;
        if (sampler_cadence_ > 0 && t_eff >= sampler_next_) {
            // Crossed one or more cadence boundaries: sample once, between
            // events, stamped at the time actually reached. Catch up
            // sampler_next_ past t_eff so an idle stretch costs one sample.
            now_ = t_eff;
            sampler_(now_);
            sampler_next_ = (t_eff / sampler_cadence_ + 1) * sampler_cadence_;
        }
        now_ = t_eff;
        ++events_dispatched_;
        if (ctx_switches_ != nullptr) ctx_switches_->inc();
        if (sched_ != nullptr) sched_->on_dispatch(e.p->id(), now_);
        resume(*e.p);
    }
}

void Engine::resume(Process& p) {
    current_ = &p;
    p.resume_from_engine();
    current_ = nullptr;
}

void Engine::shutdown_remaining() {
    // ~Process signals shutdown_ (parked threads throw ShutdownSignal through
    // the user stack, running destructors) and joins each thread.
    processes_.clear();
    while (!queue_.empty()) queue_.pop();
}

}  // namespace scimpi::sim
