#include "sim/schedule.hpp"

#include <cstdio>
#include <sstream>

#include "sim/engine.hpp"
#include "sim/process.hpp"

namespace scimpi::sim {

namespace {
thread_local Engine* t_current_engine = nullptr;
}  // namespace

Engine* current_engine() { return t_current_engine; }

void set_current_engine(Engine* e) { t_current_engine = e; }

void note_subject(const void* subject) {
    Engine* e = t_current_engine;
    if (e == nullptr) return;
    ScheduleController* c = e->schedule_controller();
    if (c == nullptr) return;
    Process* p = e->current();
    if (p != nullptr) c->on_subject(p->id(), subject);
}

const char* choice_kind_name(ChoiceKind k) {
    switch (k) {
        case ChoiceKind::dispatch: return "dispatch";
        case ChoiceKind::delivery: return "delivery";
        case ChoiceKind::handover: return "handover";
    }
    return "?";
}

std::string DecisionTrace::to_string() const {
    std::string out = "# scimpi explore trace v1\n";
    out += "fuzz " + std::to_string(fuzz) + "\n";
    for (const Decision& d : decisions)
        out += "choice " + std::to_string(d.index) + " " + d.label + "\n";
    return out;
}

Status DecisionTrace::save(const std::string& path) const {
    FILE* f = std::fopen(path.c_str(), "w");
    if (f == nullptr)
        return Status::error(Errc::io_error, "cannot open trace file " + path);
    const std::string text = to_string();
    const std::size_t n = std::fwrite(text.data(), 1, text.size(), f);
    const int rc = std::fclose(f);
    if (n != text.size() || rc != 0)
        return Status::error(Errc::io_error, "short write to trace file " + path);
    return Status::ok();
}

Result<DecisionTrace> DecisionTrace::parse(const std::string& text) {
    DecisionTrace t;
    std::istringstream in(text);
    std::string line;
    int lineno = 0;
    while (std::getline(in, line)) {
        ++lineno;
        const std::size_t first = line.find_first_not_of(" \t\r");
        if (first == std::string::npos || line[first] == '#') continue;
        std::istringstream ls(line);
        std::string word;
        ls >> word;
        if (word == "fuzz") {
            if (!(ls >> t.fuzz) || t.fuzz < 0)
                return Status::error(Errc::invalid_argument,
                                     "trace line " + std::to_string(lineno) + ": bad fuzz value");
        } else if (word == "choice") {
            Decision d;
            if (!(ls >> d.index >> d.label))
                return Status::error(Errc::invalid_argument,
                                     "trace line " + std::to_string(lineno) + ": bad choice");
            t.decisions.push_back(std::move(d));
        } else {
            return Status::error(Errc::invalid_argument,
                                 "trace line " + std::to_string(lineno) +
                                     ": unknown directive '" + word + "'");
        }
    }
    return t;
}

Result<DecisionTrace> DecisionTrace::load(const std::string& path) {
    FILE* f = std::fopen(path.c_str(), "r");
    if (f == nullptr)
        return Status::error(Errc::io_error, "cannot open trace file " + path);
    std::string text;
    char buf[4096];
    std::size_t n = 0;
    while ((n = std::fread(buf, 1, sizeof buf, f)) > 0) text.append(buf, n);
    std::fclose(f);
    return parse(text);
}

ReplayController::ReplayController(DecisionTrace trace) : trace_(std::move(trace)) {
    for (const Decision& d : trace_.decisions) by_index_[d.index] = d.label;
}

std::size_t ReplayController::choose(const ChoicePoint& cp) {
    const std::uint64_t index = next_index_++;
    const auto it = by_index_.find(index);
    if (it == by_index_.end()) return 0;
    for (std::size_t i = 0; i < cp.alts.size(); ++i)
        if (cp.alts[i].label == it->second) return i;
    panic("schedule replay diverged: choice " + std::to_string(index) + " wants '" +
          it->second + "' but the " + std::string(choice_kind_name(cp.kind)) +
          " point offers no such alternative (trace from a different program?)");
}

}  // namespace scimpi::sim
