// Event tracing for simulated runs: named spans, instant markers, counter
// tracks, and cross-track flow arrows on the virtual timeline, exportable as
// Chrome trace JSON (chrome://tracing, https://ui.perfetto.dev). Disabled by
// default — zero overhead unless enabled.
//
// Names and categories are interned: each event stores two 32-bit string ids
// instead of a std::string, so tracing a long run does not allocate per
// event. Spans may carry a category (Perfetto colours/filters by it) and an
// optional "bytes" argument explaining how much data the span moved; counter
// events ("ph":"C") render as stacked counter tracks, e.g. the per-link load
// emitted by sci::Fabric.
//
// Flow events ("ph":"s"/"f") draw arrows between spans on different tracks:
// the protocol layer allocates a flow id per message / RMA op at post time
// and the delivery side terminates it, so Perfetto shows the causal arrow
// from a send on the origin rank to its completion on the target rank.
// Track metadata events ("ph":"M") name the tracks — "rank 3" instead of a
// bare thread id.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "common/status.hpp"
#include "common/units.hpp"
#include "obs/profiler.hpp"

namespace scimpi::sim {

class Process;

class Tracer {
public:
    /// Sentinel for "span carries no byte argument".
    static constexpr std::uint64_t kNoArg = ~0ull;

    enum class Kind : std::uint8_t { span, instant, counter, flow_start, flow_end };

    void enable() {
        enabled_ = true;
        if (events_.capacity() < kReserveEvents) events_.reserve(kReserveEvents);
    }
    void disable() { enabled_ = false; }
    [[nodiscard]] bool enabled() const { return enabled_; }

    /// Intern `s`, returning its stable id (0 is reserved for the empty
    /// string). Call sites on hot paths may cache the id.
    std::uint32_t intern(std::string_view s);
    [[nodiscard]] const std::string& name(std::uint32_t id) const {
        return names_.at(id);
    }

    /// Record a completed span [t0, t1] on `track` (usually a process id).
    void span(int track, std::string_view name, SimTime t0, SimTime t1) {
        span(track, name, {}, t0, t1, kNoArg);
    }
    void span(int track, std::string_view name, std::string_view cat, SimTime t0,
              SimTime t1, std::uint64_t bytes = kNoArg) {
        if (!enabled_) return;
        span_ids(track, intern(name), intern(cat), t0, t1, bytes);
    }
    /// Pre-interned variant for hot paths (TraceScope).
    void span_ids(int track, std::uint32_t name_id, std::uint32_t cat_id, SimTime t0,
                  SimTime t1, std::uint64_t bytes = kNoArg) {
        if (!enabled_) return;
        events_.push_back({name_id, cat_id, track, t0, t1, Kind::span, bytes, 0.0});
    }

    /// Record an instantaneous marker.
    void instant(int track, std::string_view name, SimTime t) {
        if (!enabled_) return;
        events_.push_back({intern(name), 0, track, t, t, Kind::instant, kNoArg, 0.0});
    }

    /// Record a counter sample: `name` is the counter track, `value` its
    /// level at simulated time `t` (Chrome trace "ph":"C").
    void counter(std::string_view name, SimTime t, double value) {
        if (!enabled_) return;
        counter_ids(intern(name), t, value);
    }
    void counter_ids(std::uint32_t name_id, SimTime t, double value) {
        if (!enabled_) return;
        events_.push_back({name_id, 0, 0, t, t, Kind::counter, kNoArg, value});
    }

    /// Allocate a fresh flow id (1-based; 0 means "no flow"). Callers guard
    /// with enabled() so disabled runs never touch the counter.
    [[nodiscard]] std::uint64_t new_flow_id() { return next_flow_id_++; }

    /// Flow arrow endpoints ("ph":"s"/"f"). Perfetto binds a start to a
    /// finish by (name, cat, id), so both endpoints must pass the same name
    /// and category; `track` is the rank/process the endpoint lands on.
    void flow_start(int track, std::string_view name, std::string_view cat,
                    SimTime t, std::uint64_t flow_id) {
        if (!enabled_) return;
        events_.push_back(
            {intern(name), intern(cat), track, t, t, Kind::flow_start, flow_id, 0.0});
    }
    void flow_end(int track, std::string_view name, std::string_view cat, SimTime t,
                  std::uint64_t flow_id) {
        if (!enabled_) return;
        events_.push_back(
            {intern(name), intern(cat), track, t, t, Kind::flow_end, flow_id, 0.0});
    }

    /// Human-readable track name, emitted as a "thread_name" metadata event
    /// ("ph":"M") by write_json so Perfetto shows "rank 3" instead of a bare
    /// tid. Recorded even while disabled (it is cheap and set-up-time only).
    void set_track_name(int track, std::string name) {
        track_names_[track] = std::move(name);
    }
    [[nodiscard]] const std::map<int, std::string>& track_names() const {
        return track_names_;
    }

    [[nodiscard]] std::size_t event_count() const { return events_.size(); }
    void clear() { events_.clear(); }

    struct Event {
        std::uint32_t name_id;
        std::uint32_t cat_id;  ///< 0 == no category
        int track;
        SimTime t0, t1;
        Kind kind;
        std::uint64_t arg;  ///< span byte count (kNoArg when absent) or flow id
        double value;       ///< counter level (Kind::counter only)
    };
    [[nodiscard]] const std::vector<Event>& events() const { return events_; }
    [[nodiscard]] const std::string& name_of(const Event& e) const {
        return names_.at(e.name_id);
    }
    [[nodiscard]] const std::string& cat_of(const Event& e) const {
        return names_.at(e.cat_id);
    }

    /// Serialize as a Chrome trace JSON array (timestamps in microseconds).
    [[nodiscard]] std::string to_chrome_json() const;

    /// Write to a file; the error Status names the failing path and errno.
    [[nodiscard]] Status write_chrome_json(const std::string& path) const;

private:
    static constexpr std::size_t kReserveEvents = 4096;

    // Heterogeneous lookup: intern(string_view) never builds a temporary
    // std::string just to probe the table.
    struct SvHash {
        using is_transparent = void;
        std::size_t operator()(std::string_view s) const {
            return std::hash<std::string_view>{}(s);
        }
    };
    struct SvEq {
        using is_transparent = void;
        bool operator()(std::string_view a, std::string_view b) const { return a == b; }
    };

    bool enabled_ = false;
    std::vector<Event> events_;
    std::vector<std::string> names_{std::string()};  // id 0 == ""
    std::unordered_map<std::string, std::uint32_t, SvHash, SvEq> ids_{
        {std::string(), 0}};
    std::map<int, std::string> track_names_;
    std::uint64_t next_flow_id_ = 1;
};

/// RAII span: records [construction, destruction] on the process's track,
/// tagged with an optional category and byte count.
class TraceScope {
public:
    TraceScope(Process& proc, std::string_view name, std::string_view cat = {},
               std::uint64_t bytes = Tracer::kNoArg);
    ~TraceScope();
    TraceScope(const TraceScope&) = delete;
    TraceScope& operator=(const TraceScope&) = delete;

    /// Attach/replace the byte argument after construction (for paths that
    /// only learn the transfer size mid-span).
    void set_bytes(std::uint64_t bytes) { bytes_ = bytes; }

private:
    Process& proc_;
    std::uint32_t name_id_ = 0;
    std::uint32_t cat_id_ = 0;
    std::uint64_t bytes_;
    SimTime t0_;
    bool armed_;
};

/// RAII time-attribution scope: enters `state` on the process's profiler
/// track for the scope's lifetime (innermost scope wins; see
/// obs/profiler.hpp). A no-op while the engine's profiler is disabled.
class ProfScope {
public:
    ProfScope(Process& proc, obs::ProfState state);
    ~ProfScope();
    ProfScope(const ProfScope&) = delete;
    ProfScope& operator=(const ProfScope&) = delete;

private:
    Process& proc_;
    bool armed_;
};

}  // namespace scimpi::sim
