// Event tracing for simulated runs: named spans and instant markers on the
// virtual timeline, exportable as Chrome trace JSON (chrome://tracing,
// Perfetto). Disabled by default — zero overhead unless enabled.
#pragma once

#include <string>
#include <vector>

#include "common/units.hpp"

namespace scimpi::sim {

class Process;

class Tracer {
public:
    void enable() { enabled_ = true; }
    void disable() { enabled_ = false; }
    [[nodiscard]] bool enabled() const { return enabled_; }

    /// Record a completed span [t0, t1] on `track` (usually a process id).
    void span(int track, const std::string& name, SimTime t0, SimTime t1) {
        if (!enabled_) return;
        events_.push_back({name, track, t0, t1, false});
    }

    /// Record an instantaneous marker.
    void instant(int track, const std::string& name, SimTime t) {
        if (!enabled_) return;
        events_.push_back({name, track, t, t, true});
    }

    [[nodiscard]] std::size_t event_count() const { return events_.size(); }
    void clear() { events_.clear(); }

    struct Event {
        std::string name;
        int track;
        SimTime t0, t1;
        bool is_instant;
    };
    [[nodiscard]] const std::vector<Event>& events() const { return events_; }

    /// Serialize as a Chrome trace JSON array (timestamps in microseconds).
    [[nodiscard]] std::string to_chrome_json() const;

    /// Write to a file; returns false on I/O failure.
    bool write_chrome_json(const std::string& path) const;

private:
    bool enabled_ = false;
    std::vector<Event> events_;
};

/// RAII span: records [construction, destruction] on the process's track.
class TraceScope {
public:
    TraceScope(Process& proc, std::string name);
    ~TraceScope();
    TraceScope(const TraceScope&) = delete;
    TraceScope& operator=(const TraceScope&) = delete;

private:
    Process& proc_;
    std::string name_;
    SimTime t0_;
    bool armed_;
};

}  // namespace scimpi::sim
