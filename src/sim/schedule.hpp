// Schedule-space exploration hooks for the deterministic engine.
//
// A ScheduleController observes (and may perturb) the points where the
// simulation's outcome could legitimately depend on ordering:
//
//   dispatch  — which co-enabled ready-queue entry runs next. With fuzz() = F
//               every queued wakeup within F ns of the earliest one is
//               considered co-enabled; dispatching a later entry first models
//               bounded timing jitter (interrupt latency, link jitter) that a
//               real cluster exhibits but a single deterministic run hides.
//   delivery  — which of several due Dispatcher callbacks (message/signal
//               deliveries) fires first within one service slice.
//   handover  — which parked process a WaitQueue::wake_one / SimMutex::unlock
//               hands control to.
//
// Alternative 0 is always the deterministic FIFO default, so a controller
// that returns 0 everywhere (or no controller at all) reproduces the normal
// seed run bit-for-bit. Choices are indexed in encounter order; a sparse
// {index -> label} decision map therefore replays any explored schedule.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/status.hpp"
#include "common/units.hpp"

namespace scimpi::sim {

enum class ChoiceKind : std::uint8_t { dispatch, delivery, handover };

const char* choice_kind_name(ChoiceKind k);

/// One selectable alternative at a choice point. `label` is stable across
/// runs of the same program (process name or dispatcher item sequence) and is
/// what decision traces store; `proc` is the process about to run (-1 for
/// opaque delivery closures).
struct ChoiceAlt {
    std::string label;
    int proc = -1;
    SimTime t = 0;
};

struct ChoicePoint {
    ChoiceKind kind = ChoiceKind::dispatch;
    SimTime now = 0;
    std::vector<ChoiceAlt> alts;  // alts[0] = deterministic FIFO default
};

/// Base controller: deterministic defaults, no perturbation. Exploration and
/// replay derive from this. All hooks are invoked with the baton held (either
/// by the engine loop or by the current process), so implementations need no
/// locking.
class ScheduleController {
public:
    virtual ~ScheduleController() = default;

    /// Pick one of cp.alts; called only when cp.alts.size() >= 2.
    virtual std::size_t choose(const ChoicePoint& cp) {
        (void)cp;
        return 0;
    }

    /// Co-enabled window in ns for engine dispatch (0 = exact ties only).
    [[nodiscard]] virtual SimTime fuzz() const { return 0; }

    /// A happens-before edge: the running process `from` scheduled/woke `to`.
    virtual void on_edge(int from, int to) { (void)from, (void)to; }

    /// The running process `proc` touched shared object `subject` (a sync
    /// primitive or a domain-level shared counter). Footprints feed DPOR's
    /// dependence relation.
    virtual void on_subject(int proc, const void* subject) { (void)proc, (void)subject; }

    /// Process `proc` was handed the baton at time `t` (one "slice" begins).
    virtual void on_dispatch(int proc, SimTime t) { (void)proc, (void)t; }
};

/// One recorded non-default decision: at choice point `index`, pick the
/// alternative whose label is `label`.
struct Decision {
    std::uint64_t index = 0;
    std::string label;
};

/// A portable, replayable schedule: the fuzz window plus the sparse list of
/// non-default decisions. Text format (one directive per line, '#' comments):
///
///   # scimpi explore trace v1
///   fuzz 2000
///   choice 7 rank0
///   choice 12 handler1
struct DecisionTrace {
    SimTime fuzz = 0;
    std::vector<Decision> decisions;

    [[nodiscard]] std::string to_string() const;
    [[nodiscard]] Status save(const std::string& path) const;
    static Result<DecisionTrace> parse(const std::string& text);
    static Result<DecisionTrace> load(const std::string& path);
};

/// Replays a DecisionTrace: at choice point i, picks the recorded label if
/// one exists (panicking if the program no longer offers it — the trace
/// belongs to a different program or binary) and the FIFO default otherwise.
class ReplayController : public ScheduleController {
public:
    explicit ReplayController(DecisionTrace trace);

    std::size_t choose(const ChoicePoint& cp) override;
    [[nodiscard]] SimTime fuzz() const override { return trace_.fuzz; }

    [[nodiscard]] std::uint64_t choice_points_seen() const { return next_index_; }

private:
    DecisionTrace trace_;
    std::map<std::uint64_t, std::string> by_index_;
    std::uint64_t next_index_ = 0;
};

class Engine;

/// The engine whose process currently holds the baton on this thread, or
/// nullptr outside any simulated process. Lets argument-less primitives
/// (Mailbox::send, Event::set) report subjects without plumbing a Process&.
Engine* current_engine();

/// Internal: bound by Process to its OS thread when it first receives the
/// baton. Not for user code.
void set_current_engine(Engine* e);

/// Report `subject` as touched by the currently running process, if a
/// controller is installed. No-op (and cheap) otherwise.
void note_subject(const void* subject);

}  // namespace scimpi::sim
