#pragma once

#include <condition_variable>
#include <functional>
#include <mutex>
#include <string>
#include <string_view>
#include <thread>

#include "common/units.hpp"

namespace scimpi::sim {

class Engine;

/// A simulated thread of control (an MPI rank, a DMA engine, a handler
/// thread...). Created via Engine::spawn. All member functions except those
/// documented as engine-side must be called from the process's own body.
class Process {
public:
    ~Process();
    Process(const Process&) = delete;
    Process& operator=(const Process&) = delete;

    [[nodiscard]] Engine& engine() const { return engine_; }
    [[nodiscard]] int id() const { return id_; }
    [[nodiscard]] const std::string& name() const { return name_; }
    [[nodiscard]] SimTime now() const;

    /// Advance simulated time by `ns` (charge compute / transfer cost).
    void delay(SimTime ns);

    /// Reschedule at the current time, after every other already-scheduled
    /// same-time event (cooperative yield).
    void yield() { delay(0); }

    /// Low-level: suspend until another process calls Engine::wake(*this) or
    /// schedules us. Used by the synchronization primitives. `why` names the
    /// wait object (e.g. "mailbox recv", "rma post/complete signals") and is
    /// reported by the engine's deadlock diagnostic; it is cleared on wakeup.
    void block(std::string_view why = {});

    /// The wait-object label of the current/last block(), for diagnostics.
    [[nodiscard]] const std::string& wait_why() const { return wait_why_; }

    /// True while suspended with no pending wakeup (engine-side query).
    [[nodiscard]] bool is_blocked() const { return state_ == State::blocked && !scheduled_; }
    [[nodiscard]] bool finished() const { return state_ == State::finished; }

private:
    friend class Engine;
    enum class State { created, ready, running, blocked, finished };
    struct ShutdownSignal {};

    Process(Engine& engine, int id, std::string name, std::function<void(Process&)> body);
    void start_thread();
    void thread_main();
    void suspend();          // give baton back to engine, wait to be resumed
    void resume_from_engine();  // engine-side: give baton to this process

    Engine& engine_;
    const int id_;
    const std::string name_;
    std::function<void(Process&)> body_;

    std::thread thread_;
    std::mutex mutex_;
    std::condition_variable cv_;
    bool baton_ = false;       // true: the process may run
    bool returned_ = false;    // true: the process gave the baton back
    bool shutdown_ = false;    // true: unwind instead of resuming

    State state_ = State::created;
    std::string wait_why_;        // wait-object label while blocked
    bool daemon_ = false;         // exempt from deadlock detection
    bool scheduled_ = false;      // present in the engine ready queue
    SimTime pending_time_ = 0;    // wakeup time while scheduled_
    std::uint64_t gen_ = 0;       // bumped to invalidate stale queue entries
};

}  // namespace scimpi::sim
