#include "sim/dispatcher.hpp"

namespace scimpi::sim {

Dispatcher::Dispatcher(Engine& engine, std::string name) : engine_(engine) {
    proc_ = &engine_.spawn_daemon(std::move(name),
                                  [this](Process& self) { service_loop(self); });
}

void Dispatcher::at(SimTime t, std::function<void()> fn) {
    SCIMPI_REQUIRE(t >= engine_.now(), "Dispatcher::at() into the past");
    items_.push(Item{t, seq_++, std::move(fn)});
    // The service process is suspended (we hold the baton); make sure it
    // wakes no later than the new item's deadline.
    engine_.reschedule_earlier(*proc_, t);
}

void Dispatcher::service_loop(Process& self) {
    // The dispatcher blocks forever when idle; the engine's deadlock check
    // must not count it, so it finishes only at engine teardown
    // (ShutdownSignal unwinds the block()). Idle blocking is fine because
    // at() always arms a wakeup for newly added work.
    for (;;) {
        while (!items_.empty() && items_.top().t <= self.now()) {
            // top() is const; copy the closure out before popping.
            auto fn = items_.top().fn;
            items_.pop();
            fn();
        }
        if (items_.empty()) {
            self.block();
        } else {
            engine_.schedule(self, items_.top().t);
            self.block();
        }
    }
}

}  // namespace scimpi::sim
