#include "sim/dispatcher.hpp"

#include "sim/schedule.hpp"

namespace scimpi::sim {

Dispatcher::Dispatcher(Engine& engine, std::string name) : engine_(engine) {
    proc_ = &engine_.spawn_daemon(std::move(name),
                                  [this](Process& self) { service_loop(self); });
}

void Dispatcher::at(SimTime t, std::function<void()> fn) {
    SCIMPI_REQUIRE(t >= engine_.now(), "Dispatcher::at() into the past");
    note_subject(this);
    items_.push(Item{t, seq_++, std::move(fn)});
    // The service process is suspended (we hold the baton); make sure it
    // wakes no later than the new item's deadline.
    engine_.reschedule_earlier(*proc_, t);
}

std::size_t Dispatcher::pop_due(Process& self, std::vector<Item>& due) {
    due.clear();
    while (!items_.empty() && items_.top().t <= self.now()) {
        due.push_back(items_.top());
        items_.pop();
    }
    if (due.size() < 2) return 0;
    ScheduleController* c = engine_.schedule_controller();
    if (c == nullptr) return 0;
    // Several deliveries are due in the same service slice: which callback
    // fires first is a delivery choice point. Labels are the per-dispatcher
    // insertion sequence numbers, stable across runs of the same program.
    ChoicePoint cp;
    cp.kind = ChoiceKind::delivery;
    cp.now = self.now();
    cp.alts.reserve(due.size());
    for (const Item& it : due)
        cp.alts.push_back(ChoiceAlt{"d" + std::to_string(it.seq), -1, it.t});
    const std::size_t pick = c->choose(cp);
    SCIMPI_REQUIRE(pick < due.size(), "delivery choice out of range");
    return pick;
}

void Dispatcher::service_loop(Process& self) {
    // The dispatcher blocks forever when idle; the engine's deadlock check
    // must not count it, so it finishes only at engine teardown
    // (ShutdownSignal unwinds the block()). Idle blocking is fine because
    // at() always arms a wakeup for newly added work.
    std::vector<Item> due;
    for (;;) {
        while (!items_.empty() && items_.top().t <= self.now()) {
            const std::size_t pick = pop_due(self, due);
            if (due.size() == 1) {
                // Common case: run the single due callback directly.
                due.front().fn();
            } else {
                // Run the chosen callback; re-queue the rest (still due, so
                // the outer loop immediately re-collects them and offers the
                // remaining order as further choice points).
                for (std::size_t i = 0; i < due.size(); ++i)
                    if (i != pick) items_.push(due[i]);
                due[pick].fn();
            }
            due.clear();
        }
        if (items_.empty()) {
            self.block("dispatcher idle");
        } else {
            // Under schedule fuzzing the engine clock may already be past the
            // next deadline (a later co-enabled event ran first); never arm a
            // wakeup in the past.
            const SimTime next = items_.top().t;
            engine_.schedule(self, next > self.now() ? next : self.now());
            self.block("dispatcher timer");
        }
    }
}

}  // namespace scimpi::sim
