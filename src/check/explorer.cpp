#include "check/explorer.hpp"

#include <algorithm>
#include <chrono>
#include <map>
#include <set>
#include <vector>

#include "check/clock.hpp"
#include "common/status.hpp"

namespace scimpi::check {
namespace {

/// One baton slice: everything a process did between receiving the baton and
/// giving it back. The unit of the DPOR dependence relation.
struct Slice {
    int proc = -1;
    VectorClock vc;                     ///< proc's clock at slice start
    std::vector<const void*> subjects;  ///< shared objects touched
};

struct RecAlt {
    std::string label;
    int proc = -1;
};

/// A choice point as recorded during one run.
struct RecChoice {
    sim::ChoiceKind kind = sim::ChoiceKind::dispatch;
    std::vector<RecAlt> alts;
    std::size_t chosen = 0;
    std::size_t slice_at = 0;  ///< slices executed before this choice
};

/// ScheduleController that replays a sparse decision prefix, records every
/// choice point, and builds the slice/vector-clock model DPOR analyzes.
class RecordingController final : public sim::ScheduleController {
public:
    RecordingController(SimTime fuzz, std::map<std::uint64_t, std::string> decisions)
        : fuzz_(fuzz), decisions_(std::move(decisions)) {}

    std::size_t choose(const sim::ChoicePoint& cp) override {
        const std::uint64_t index = choices_.size();
        std::size_t pick = 0;
        const auto it = decisions_.find(index);
        if (it != decisions_.end()) {
            bool matched = false;
            for (std::size_t i = 0; i < cp.alts.size(); ++i) {
                if (cp.alts[i].label == it->second) {
                    pick = i;
                    matched = true;
                    break;
                }
            }
            SCIMPI_REQUIRE(matched, "exploration diverged: decision " +
                                        std::to_string(index) + " wants '" + it->second +
                                        "' but the program no longer offers it");
        }
        RecChoice rec;
        rec.kind = cp.kind;
        rec.chosen = pick;
        rec.slice_at = slices_.size();
        rec.alts.reserve(cp.alts.size());
        for (const sim::ChoiceAlt& a : cp.alts) rec.alts.push_back(RecAlt{a.label, a.proc});
        choices_.push_back(std::move(rec));
        return pick;
    }

    [[nodiscard]] SimTime fuzz() const override { return fuzz_; }

    void on_dispatch(int proc, SimTime t) override {
        (void)t;
        ensure_proc(proc);
        const auto p = static_cast<std::size_t>(proc);
        clocks_[p].join(pending_[p]);
        pending_[p] = VectorClock();
        clocks_[p].ensure(proc + 1);
        clocks_[p].tick(proc);
        Slice s;
        s.proc = proc;
        s.vc = clocks_[p];
        slices_.push_back(std::move(s));
    }

    void on_edge(int from, int to) override {
        ensure_proc(from);
        ensure_proc(to);
        pending_[static_cast<std::size_t>(to)].join(clocks_[static_cast<std::size_t>(from)]);
    }

    void on_subject(int proc, const void* subject) override {
        if (slices_.empty() || slices_.back().proc != proc) return;
        auto& subj = slices_.back().subjects;
        if (std::find(subj.begin(), subj.end(), subject) == subj.end())
            subj.push_back(subject);
    }

    std::vector<RecChoice> choices_;
    std::vector<Slice> slices_;

private:
    void ensure_proc(int p) {
        const auto n = static_cast<std::size_t>(p) + 1;
        if (clocks_.size() < n) {
            clocks_.resize(n);
            pending_.resize(n);
        }
    }

    SimTime fuzz_;
    std::map<std::uint64_t, std::string> decisions_;
    std::vector<VectorClock> clocks_;
    std::vector<VectorClock> pending_;
};

/// A node of the DFS tree: one choice point on the current path, its
/// explored labels (`done`, the sleep-set projection) and the backtrack
/// alternatives DPOR scheduled (`todo`, the persistent-set seeds).
struct Node {
    RecChoice rec;
    std::string taken;
    std::set<std::string> done;
    std::vector<std::string> todo;
};

const std::string& default_label(const RecChoice& r) { return r.alts.front().label; }

bool want(const Node& n, const std::string& label) {
    return label != n.taken && n.done.count(label) == 0 &&
           std::find(n.todo.begin(), n.todo.end(), label) == n.todo.end();
}

std::uint64_t untried(const Node& n) {
    std::uint64_t k = 0;
    for (const RecAlt& a : n.rec.alts)
        if (want(n, a.label)) ++k;
    return k;
}

bool subjects_intersect(const Slice& a, const Slice& b) {
    for (const void* s : a.subjects)
        if (std::find(b.subjects.begin(), b.subjects.end(), s) != b.subjects.end())
            return true;
    return false;
}

void add_backtracks_naive(std::vector<Node>& nodes, std::uint64_t max_depth) {
    const std::size_t limit = std::min<std::size_t>(nodes.size(), max_depth);
    for (std::size_t c = 0; c < limit; ++c)
        for (const RecAlt& a : nodes[c].rec.alts)
            if (want(nodes[c], a.label)) nodes[c].todo.push_back(a.label);
}

/// First slice of `proc` at or after position `from`; slices.size() if none.
std::size_t next_slice_of(const std::vector<std::vector<std::size_t>>& by_proc,
                          int proc, std::size_t from, std::size_t none) {
    if (proc < 0 || static_cast<std::size_t>(proc) >= by_proc.size()) return none;
    const auto& v = by_proc[static_cast<std::size_t>(proc)];
    const auto it = std::lower_bound(v.begin(), v.end(), from);
    return it == v.end() ? none : *it;
}

void add_backtracks_dpor(std::vector<Node>& nodes, const std::vector<Slice>& slices,
                         std::uint64_t max_depth) {
    const std::size_t limit = std::min<std::size_t>(nodes.size(), max_depth);
    const std::size_t none = slices.size();

    std::vector<std::vector<std::size_t>> by_proc;
    for (std::size_t i = 0; i < slices.size(); ++i) {
        const auto p = static_cast<std::size_t>(slices[i].proc);
        if (by_proc.size() <= p) by_proc.resize(p + 1);
        by_proc[p].push_back(i);
    }

    // Dispatch choice points: race-pair-driven backtracking. For every pair
    // of concurrent, footprint-conflicting slices (i before j), the choice
    // point that dispatched i must also try the alternatives leading toward
    // j — its process if co-enabled there, otherwise j's causal ancestors
    // among the alternatives, otherwise (conservatively) every alternative.
    std::map<std::size_t, std::size_t> cp_of_slice;  // slice index -> node index
    for (std::size_t c = 0; c < limit; ++c)
        if (nodes[c].rec.kind == sim::ChoiceKind::dispatch)
            cp_of_slice[nodes[c].rec.slice_at] = c;

    for (const auto& [i, c] : cp_of_slice) {
        if (i >= slices.size()) continue;
        Node& n = nodes[c];
        for (std::size_t j = i + 1; j < slices.size(); ++j) {
            if (slices[j].proc == slices[i].proc) continue;
            if (!subjects_intersect(slices[i], slices[j])) continue;
            if (!VectorClock::concurrent(slices[i].vc, slices[j].vc)) continue;
            std::vector<std::string> cands;
            bool direct = false;
            for (const RecAlt& a : n.rec.alts) {
                if (a.label == n.taken) continue;
                if (a.proc == slices[j].proc) {
                    cands.assign(1, a.label);
                    direct = true;
                    break;
                }
                const std::size_t sa = next_slice_of(by_proc, a.proc, n.rec.slice_at, none);
                if (sa == none) {
                    cands.push_back(a.label);  // never ran again: unknown, keep
                } else if (sa <= j && VectorClock::dominated(slices[sa].vc, slices[j].vc)) {
                    cands.push_back(a.label);  // causal ancestor of slice j
                }
            }
            if (cands.empty() && !direct)
                for (const RecAlt& a : n.rec.alts)
                    if (a.label != n.taken) cands.push_back(a.label);
            for (const std::string& l : cands)
                if (want(n, l)) n.todo.push_back(l);
        }
    }

    for (std::size_t c = 0; c < limit; ++c) {
        Node& n = nodes[c];
        if (n.rec.kind == sim::ChoiceKind::handover) {
            // Hand-over choice points: explore an alternative waiter only if
            // its next slice conflicts with something that ran in between.
            for (const RecAlt& a : n.rec.alts) {
                if (!want(n, a.label)) continue;
                const std::size_t sa = next_slice_of(by_proc, a.proc, n.rec.slice_at, none);
                bool conflict = sa == none;  // never observed: conservative
                for (std::size_t s = n.rec.slice_at; !conflict && s < sa; ++s)
                    conflict = slices[s].proc != a.proc &&
                               subjects_intersect(slices[s], slices[sa]) &&
                               VectorClock::concurrent(slices[s].vc, slices[sa].vc);
                if (conflict) n.todo.push_back(a.label);
            }
        } else if (n.rec.kind == sim::ChoiceKind::delivery) {
            // Delivery closures are opaque to the dependence relation: never
            // pruned (DESIGN.md §16). Same-time deliveries are rare in the
            // DES, so this does not explode in practice.
            for (const RecAlt& a : n.rec.alts)
                if (want(n, a.label)) n.todo.push_back(a.label);
        }
    }
}

RunOutcome run_once(const RunFn& run, sim::ScheduleController& ctrl) {
    try {
        return run(ctrl);
    } catch (const Panic& p) {
        RunOutcome out;
        out.deadlock = true;
        out.report = std::string(p.what()) + "\n";
        out.signature = std::string("panic:") + p.what();
        return out;
    }
}

std::map<std::uint64_t, std::string> as_map(const std::vector<sim::Decision>& ds) {
    std::map<std::uint64_t, std::string> m;
    for (const sim::Decision& d : ds) m[d.index] = d.label;
    return m;
}

/// Greedily drop decisions (deepest first), keeping a removal whenever the
/// reduced schedule still reproduces the same violation signature.
void minimize(const RunFn& run, const ExploreOptions& opt, ExploreResult& res) {
    std::vector<sim::Decision> kept = res.trace.decisions;
    std::uint64_t budget = opt.minimize_budget;
    for (std::size_t i = kept.size(); i-- > 0 && budget > 0;) {
        std::vector<sim::Decision> trial = kept;
        trial.erase(trial.begin() + static_cast<std::ptrdiff_t>(i));
        RecordingController ctrl(opt.fuzz, as_map(trial));
        const RunOutcome out = run_once(run, ctrl);
        ++res.replays;
        --budget;
        if ((out.violation || out.deadlock) && out.signature == res.finding.signature) {
            kept = std::move(trial);
            res.finding = out;
        }
    }
    res.trace.decisions = std::move(kept);
}

}  // namespace

ExploreResult explore(const RunFn& run, const ExploreOptions& opt) {
    const auto t0 = std::chrono::steady_clock::now();
    ExploreResult res;
    res.trace.fuzz = opt.fuzz;

    obs::Counter* c_sched = nullptr;
    obs::Counter* c_pruned = nullptr;
    obs::Counter* c_cps = nullptr;
    obs::Counter* c_replays = nullptr;
    if (opt.metrics != nullptr) {
        c_sched = &opt.metrics->counter("explore.schedules");
        c_pruned = &opt.metrics->counter("explore.pruned_alternatives");
        c_cps = &opt.metrics->counter("explore.choice_points");
        c_replays = &opt.metrics->counter("explore.replays");
    }

    std::vector<Node> path;
    while (res.schedules < opt.max_schedules) {
        std::map<std::uint64_t, std::string> decisions;
        for (std::size_t i = 0; i < path.size(); ++i)
            if (path[i].taken != default_label(path[i].rec)) decisions[i] = path[i].taken;

        RecordingController ctrl(opt.fuzz, decisions);
        const RunOutcome out = run_once(run, ctrl);
        ++res.schedules;
        if (c_sched != nullptr) c_sched->inc();
        if (c_cps != nullptr && ctrl.choices_.size() > res.choice_points)
            c_cps->add(ctrl.choices_.size() - res.choice_points);
        res.choice_points = std::max<std::uint64_t>(res.choice_points, ctrl.choices_.size());

        if (opt.progress != nullptr && res.schedules % 16 == 0) {
            const double secs =
                std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
                    .count();
            std::fprintf(opt.progress,
                         "explore: %llu schedules (%.0f/s), depth %zu, pruned %llu\n",
                         static_cast<unsigned long long>(res.schedules),
                         secs > 0 ? static_cast<double>(res.schedules) / secs : 0.0,
                         ctrl.choices_.size(),
                         static_cast<unsigned long long>(res.pruned));
        }

        if (out.violation || out.deadlock) {
            res.found = true;
            res.finding = out;
            res.trace.decisions.clear();
            for (const auto& [idx, label] : decisions)
                res.trace.decisions.push_back(sim::Decision{idx, label});
            minimize(run, opt, res);
            break;
        }

        // Deterministic prefix replay: this run must revisit every choice
        // point already on the path, in order, before diverging.
        SCIMPI_REQUIRE(ctrl.choices_.size() >= path.size(),
                       "exploration lost choice points across replays");
        for (std::size_t i = path.size(); i < ctrl.choices_.size(); ++i) {
            Node n;
            n.rec = ctrl.choices_[i];
            n.taken = n.rec.alts[n.rec.chosen].label;
            n.done.insert(n.taken);
            path.push_back(std::move(n));
        }

        if (opt.dpor)
            add_backtracks_dpor(path, ctrl.slices_, opt.max_depth);
        else
            add_backtracks_naive(path, opt.max_depth);

        std::size_t b = path.size();
        while (b > 0 && path[b - 1].todo.empty()) --b;
        if (b == 0) {
            res.exhausted = true;
            break;
        }
        for (std::size_t i = b; i < path.size(); ++i) res.pruned += untried(path[i]);
        path.resize(b);
        Node& nb = path[b - 1];
        nb.taken = nb.todo.back();
        nb.todo.pop_back();
        nb.done.insert(nb.taken);
    }

    for (const Node& n : path) res.pruned += untried(n);
    if (c_pruned != nullptr) c_pruned->add(res.pruned);
    if (c_replays != nullptr) c_replays->add(res.replays);
    res.wall_seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
    return res;
}

}  // namespace scimpi::check
