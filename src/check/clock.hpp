// Vector clocks for the happens-before layer of scimpi-check (DESIGN.md
// §10). One component per world rank; a rank ticks its own component at
// every checker-visible event and joins (component-wise max) at every
// synchronization edge the checker observes — message delivery, fence
// barrier, post/start and complete/wait pairs, lock hand-over.
//
// Two access snapshots are *concurrent* when neither dominates the other;
// that is the race predicate for shared-segment accesses. All operations
// are pure bookkeeping: the checker never advances simulated time.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace scimpi::check {

class VectorClock {
public:
    VectorClock() = default;
    explicit VectorClock(int world)
        : c_(static_cast<std::size_t>(world), 0) {}

    [[nodiscard]] int size() const { return static_cast<int>(c_.size()); }
    [[nodiscard]] std::uint64_t at(int rank) const {
        return c_[static_cast<std::size_t>(rank)];
    }

    /// Grow to at least `n` components (zero-filled). Lets users that learn
    /// the actor count lazily (the schedule explorer) start from a default-
    /// constructed clock.
    void ensure(int n) {
        if (static_cast<std::size_t>(n) > c_.size())
            c_.resize(static_cast<std::size_t>(n), 0);
    }

    /// Advance `rank`'s own component (a new event in its program order).
    void tick(int rank) { ++c_[static_cast<std::size_t>(rank)]; }

    /// Component-wise max: absorb everything `other` has observed.
    void join(const VectorClock& other) {
        if (c_.size() < other.c_.size()) c_.resize(other.c_.size(), 0);
        for (std::size_t i = 0; i < other.c_.size(); ++i)
            if (other.c_[i] > c_[i]) c_[i] = other.c_[i];
    }

    /// True when every component of `a` is <= the matching component of
    /// `b`, i.e. `a` happened before (or equals) `b`.
    [[nodiscard]] static bool dominated(const VectorClock& a, const VectorClock& b) {
        const std::size_t n = a.c_.size() < b.c_.size() ? b.c_.size() : a.c_.size();
        for (std::size_t i = 0; i < n; ++i) {
            const std::uint64_t av = i < a.c_.size() ? a.c_[i] : 0;
            const std::uint64_t bv = i < b.c_.size() ? b.c_[i] : 0;
            if (av > bv) return false;
        }
        return true;
    }

    /// Neither ordering holds: the two snapshots are causally unrelated.
    [[nodiscard]] static bool concurrent(const VectorClock& a, const VectorClock& b) {
        return !dominated(a, b) && !dominated(b, a);
    }

    /// "[1,0,3]" — diagnostics only.
    [[nodiscard]] std::string to_string() const {
        std::string s = "[";
        for (std::size_t i = 0; i < c_.size(); ++i) {
            if (i != 0) s += ',';
            s += std::to_string(c_[i]);
        }
        s += ']';
        return s;
    }

private:
    std::vector<std::uint64_t> c_;
};

}  // namespace scimpi::check
