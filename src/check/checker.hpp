// scimpi-check: a deterministic RMA-epoch and shared-segment race detector
// (MUST / Nasty-MPI style; DESIGN.md §10).
//
// The simulator already makes every mis-synchronized one-sided program
// reproducible — the checker turns the reproduction into a diagnosis. It
// instruments every access to simulated RMA windows and (watched) SCI
// shared segments with per-rank vector clocks advanced at synchronization
// points (fence, post/start/complete/wait, lock/unlock, message delivery)
// and reports, with byte ranges and simulated timestamps:
//
//   * put_put_overlap   — two origins put overlapping bytes in one epoch,
//   * put_get_overlap   — a read overlaps a write in one epoch,
//   * acc_put_overlap   — accumulate mixed with put/get on the same bytes,
//   * local_access_during_exposure — the target touches exposed window
//                         memory between post and wait,
//   * op_outside_epoch  — an RMA call with no fence/start/lock epoch open,
//   * oob_displacement  — a displacement past the target window's end,
//   * pscw_mismatch     — unmatched or crossed post/start/complete/wait
//                         (and lock/unlock) calls,
//   * segment_race      — causally unrelated conflicting accesses to a
//                         watched raw SCI segment (smi/sci layer),
//   * request_race      — a watched-segment access overlapping a buffer
//                         handed to a nonblocking send/recv that has not
//                         been completed by Wait/Test yet (racy-after-Isend
//                         buffer reuse; mpi/req layer).
//
// Cost model: zero when disabled — every caller holds a `Checker*` that is
// null unless the run enabled checking (`ClusterOptions::check`,
// SCIMPI_CHECK=1, `quickstart --check`), so a disabled hook is one pointer
// test. Enabled hooks do pure bookkeeping and never advance simulated
// time, so a checked run is bit-identical to an unchecked one.
//
// This layer depends only on common/, obs/ (counters) and sim/trace.hpp
// (violation instants on the Perfetto timeline); the mpi/smi/sci layers
// call *into* it, never the reverse.
#pragma once

#include <cstdint>
#include <cstdio>
#include <map>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "check/clock.hpp"
#include "common/units.hpp"
#include "obs/evgraph.hpp"
#include "obs/metrics.hpp"
#include "sim/trace.hpp"

namespace scimpi::check {

enum class ViolationKind : std::uint8_t {
    put_put_overlap,
    put_get_overlap,
    acc_put_overlap,
    local_access_during_exposure,
    op_outside_epoch,
    oob_displacement,
    pscw_mismatch,
    segment_race,
    request_race,
};
inline constexpr int kViolationKinds = 9;
const char* kind_name(ViolationKind k);

/// Half-open byte interval [lo, hi) within a window or segment.
struct ByteRange {
    std::uint64_t lo = 0;
    std::uint64_t hi = 0;

    [[nodiscard]] bool overlaps(const ByteRange& o) const {
        return lo < o.hi && o.lo < hi;
    }
    [[nodiscard]] ByteRange intersect(const ByteRange& o) const {
        return {lo > o.lo ? lo : o.lo, hi < o.hi ? hi : o.hi};
    }
};

/// How an access touches window/segment memory.
enum class AccessKind : std::uint8_t { put, get, accumulate, local_load, local_store };
const char* access_name(AccessKind k);

/// Which synchronization regime authorized an RMA access. Only fence
/// epochs advance the per-window fence counter, so the same-epoch conflict
/// rule applies exclusively between two fence-mode accesses; PSCW and
/// lock accesses are ordered (or not) purely by the vector clocks.
enum class SyncMode : std::uint8_t { none, fence, pscw, lock };

/// One reported violation. `rank_a`/`time_a` describe the earlier recorded
/// access, `rank_b`/`time_b` the one that exposed the conflict; single-site
/// violations (OOB, epoch misuse) leave `rank_a == -1`.
struct Violation {
    ViolationKind kind = ViolationKind::pscw_mismatch;
    int win = -1;  ///< window id, -1 for raw-segment violations
    int rank_a = -1;
    int rank_b = -1;
    ByteRange range;
    SimTime time_a = 0;
    SimTime time_b = 0;
    std::string detail;
};

class Checker {
public:
    explicit Checker(int world);
    Checker(const Checker&) = delete;
    Checker& operator=(const Checker&) = delete;

    void enable(bool on = true) { enabled_ = on; }
    [[nodiscard]] bool enabled() const { return enabled_; }

    /// Resolve the check.* counters (violations total and per kind).
    void bind_metrics(obs::MetricsRegistry& m);
    /// Emit a "check:<kind>" instant on the recording track per violation.
    void bind_tracer(sim::Tracer* t) { tracer_ = t; }
    /// Mirror happens-before edges the checker computes (currently the
    /// lock hand-over chain) into the causal event graph, so the
    /// critical-path walk can cross passive-target sync points the protocol
    /// layer itself cannot see. Null (the default) disables mirroring.
    void bind_event_graph(obs::EventGraph* g) { evgraph_ = g; }

    /// Map a simulated process id (trace track) to its world rank, so
    /// segment accesses observed below the MPI layer can be attributed.
    void register_actor(int track, int world_rank);
    [[nodiscard]] int actor_rank(int track) const;

    // ---- synchronization hooks (all ranks are world ranks) ----
    /// A message from `src` was delivered to `dst` (happens-before edge).
    void on_p2p(int src, int dst);
    void on_fence(int win, int rank, SimTime now, int track);
    void on_post(int win, int target, const std::vector<int>& origins,
                 SimTime now, int track);
    void on_start(int win, int origin, const std::vector<int>& targets,
                  SimTime now, int track);
    void on_complete(int win, int origin, SimTime now, int track);
    void on_wait(int win, int target, SimTime now, int track);
    void on_lock(int win, int origin, int target, SimTime now, int track);
    void on_unlock(int win, int origin, int target, SimTime now, int track);

    // ---- window lifecycle ----
    void on_win_create(int win, int rank, std::uint64_t size);

    // ---- window access hooks ----
    /// An RMA op was issued (origin side). `blocks` are the target-window
    /// byte ranges the op touches; local_load/local_store mean the origin
    /// accesses its own window portion (origin == target). `mode` is the
    /// synchronization regime the op was issued under at the origin.
    void on_rma_op(int win, int origin, int target, AccessKind kind,
                   SyncMode mode, const std::vector<ByteRange>& blocks,
                   SimTime now, int track);
    void on_op_outside_epoch(int win, int origin, int target, AccessKind kind,
                             ByteRange span, SimTime now, int track);
    void on_oob(int win, int origin, int target, std::uint64_t disp,
                std::uint64_t bytes_needed, std::uint64_t win_size, SimTime now,
                int track);
    /// The emulation handler applied an op at the target (trace instant so
    /// Perfetto shows where racing data actually landed).
    void on_remote_apply(int win, int origin, SimTime now, int track);

    // ---- raw shared-segment hooks (smi::Region / sci::SciAdapter) ----
    /// Opt a segment into race checking. Only watched segments are tracked:
    /// protocol-internal segments (eager slots, rendezvous rings, staging)
    /// synchronize through means the checker cannot see and stay unwatched.
    void watch_segment(int seg_node, int seg_id);
    void unwatch_segment(int seg_node, int seg_id);
    /// Called by the segment directory on destroy (drops the watch).
    void on_segment_destroyed(int seg_node, int seg_id);
    /// Called by the adapter / region for every access through a mapping.
    void on_segment_access(int seg_node, int seg_id, int track, std::uint64_t off,
                           std::uint64_t len, bool is_store, SimTime now);

    // ---- nonblocking-request buffer hooks (mpi/req layer) ----
    /// A nonblocking send/recv was issued whose buffer lives inside the
    /// given segment: the bytes belong to the library until the matching
    /// completion. Returns a pending-entry id to pass to
    /// on_request_complete, or 0 when the segment is unwatched (the common
    /// case — heap buffers — costs one map lookup). Same-rank reuse is the
    /// point: vector clocks cannot order a rank against itself, so pending
    /// entries are checked directly by on_segment_access.
    std::uint64_t on_request_issue(int rank, int seg_node, int seg_id,
                                   std::uint64_t off, std::uint64_t len,
                                   bool is_send, SimTime now);
    /// Wait/Test succeeded: the buffer is the application's again. Closes
    /// the pending entry and ticks the rank's clock — the happens-before
    /// edge that orders later accesses after the communication.
    void on_request_complete(int rank, std::uint64_t id, SimTime now);

    // ---- results ----
    [[nodiscard]] const std::vector<Violation>& violations() const {
        return violations_;
    }
    [[nodiscard]] std::size_t count(ViolationKind k) const;
    /// Violations that matched an already-reported (kind, win, ranks, range)
    /// signature and were not recorded again (loops hammering one race).
    [[nodiscard]] std::uint64_t suppressed() const { return suppressed_; }
    /// Formatted stderr-style table; no-op when there are no violations.
    void print_report(std::FILE* out) const;
    /// The same table as a string (empty when there are no violations).
    /// Deterministic byte-for-byte for a given schedule — the explorer's
    /// replay check compares these directly.
    [[nodiscard]] std::string report_string() const;
    /// Stable signature of the recorded violation set: one
    /// kind:win:ranks:range line per violation. Exploration uses it to decide
    /// whether two schedules hit the same bug (trace minimization).
    [[nodiscard]] std::string signature() const;

    [[nodiscard]] const VectorClock& clock(int rank) const {
        return clocks_[static_cast<std::size_t>(rank)];
    }

private:
    struct AccessRecord {
        int origin = -1;
        int target = -1;
        AccessKind kind = AccessKind::put;
        SyncMode mode = SyncMode::none;  ///< regime the op was issued under
        ByteRange range;
        std::uint64_t epoch = 0;  ///< origin's fence-epoch count at issue time
        VectorClock vc;           ///< origin clock at issue (post-tick)
        SimTime time = 0;
    };

    /// Per-(window, rank) epoch state. `epoch` counts the fences this rank
    /// itself has passed on the window. Fence is collective, so every rank's
    /// count agrees: two ops carry the same count iff the same fence epoch
    /// was open when each was issued — regardless of how the simulator
    /// interleaved the ranks' fence returns. (The target's exposure state
    /// for PSCW lives in `exposed`/`post_origins`, not in this counter.)
    struct WinRankState {
        std::uint64_t epoch = 0;
        bool exposed = false;      ///< post issued, wait not yet
        bool access_open = false;  ///< start issued, complete not yet
        std::uint64_t size = 0;
        std::vector<int> post_origins;
        VectorClock post_clock;      ///< this rank's clock at post
        VectorClock complete_clock;  ///< this rank's clock at complete
        VectorClock lock_clock;      ///< hand-over clock of this rank's lock
        std::set<int> locks_held;    ///< targets this rank currently locks
    };

    struct WinState {
        std::map<int, WinRankState> ranks;
        std::vector<AccessRecord> accesses;
    };

    struct SegAccess {
        int rank = -1;
        bool store = false;
        ByteRange range;
        VectorClock vc;
        SimTime time = 0;
    };

    struct SegState {
        std::vector<SegAccess> log;
    };

    /// A buffer in flight under a nonblocking request (watched segments
    /// only), keyed by the id handed back from on_request_issue.
    struct PendingReq {
        int rank = -1;
        int seg_node = -1;
        int seg_id = -1;
        ByteRange range;
        bool is_send = false;
        SimTime time = 0;
    };

    WinState& win(int id) { return windows_[id]; }
    WinRankState& rank_state(int win_id, int rank);

    /// Drop `origin`'s records from 2+ fence epochs ago (the intervening
    /// barrier orders them before anything new; see DESIGN.md §10) and cap
    /// the per-window log.
    void prune(WinState& ws, int origin, std::uint64_t current_epoch);

    /// Conflict classification; returns false for compatible pairs
    /// (get/get, accumulate/accumulate, anything same-origin).
    static bool classify(AccessKind a, AccessKind b, ViolationKind* out);

    void report(ViolationKind kind, int win_id, int rank_a, int rank_b,
                ByteRange range, SimTime time_a, SimTime time_b,
                std::string detail, int track);

    bool enabled_ = false;
    int world_ = 0;
    std::vector<VectorClock> clocks_;
    std::map<int, int> actors_;  ///< trace track -> world rank
    std::map<int, WinState> windows_;
    std::map<std::pair<int, int>, SegState> segments_;  ///< watched only
    std::map<std::uint64_t, PendingReq> pending_;  ///< open request buffers
    std::uint64_t next_req_id_ = 1;
    std::vector<Violation> violations_;
    std::set<std::string> seen_;  ///< dedup signatures
    std::uint64_t suppressed_ = 0;
    sim::Tracer* tracer_ = nullptr;
    obs::EventGraph* evgraph_ = nullptr;
    /// Last graph node of the most recent unlock per (win, target): the
    /// source of the hand-over edge the next lock acquisition completes.
    std::map<std::pair<int, int>, std::uint64_t> last_unlock_ev_;
    obs::Counter* total_c_ = nullptr;
    obs::Counter* kind_c_[kViolationKinds] = {};
};

}  // namespace scimpi::check
