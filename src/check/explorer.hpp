// check::Explorer — stateless model checking over the engine's schedule
// space (DESIGN.md §16).
//
// A single deterministic run verifies one interleaving; the explorer replays
// the same program under systematically perturbed schedules until the
// happens-before checker flags a violation (or the run panics/deadlocks), or
// the reduced schedule space is exhausted. It is *stateless*: every schedule
// is a fresh execution of the program driven by a sparse decision prefix, so
// the simulator needs no snapshot/restore machinery.
//
// Pruning is classic dynamic partial-order reduction (DPOR, Flanagan &
// Godefroid): each executed run is cut into per-dispatch "slices" carrying a
// vector clock and the set of shared objects touched; two slices race when
// their footprints intersect and their clocks are concurrent. For every race
// the choice point that scheduled the earlier slice gains a backtrack
// alternative steering toward the later slice's process (its causal ancestor
// among the alternatives; all alternatives when none can be identified —
// conservative, never unsound). Per-node done-sets play the sleep-set role:
// an alternative explored once at a node is never re-added there. Delivery
// choice points have opaque closures and are never pruned.
//
// The explorer is generic: it drives any `RunFn` that executes the program
// under a given ScheduleController and reports what happened. The MPI-level
// front end (a fresh mpi::Cluster per schedule) lives in mpi/explore.hpp so
// this layer keeps its "mpi calls into check, never the reverse" rule.
#pragma once

#include <cstdint>
#include <cstdio>
#include <functional>
#include <string>

#include "common/units.hpp"
#include "obs/metrics.hpp"
#include "sim/schedule.hpp"

namespace scimpi::check {

struct ExploreOptions {
    std::uint64_t max_schedules = 256;  ///< executed-schedule budget
    std::uint64_t max_depth = 4096;     ///< choice points eligible for backtracking
    SimTime fuzz = 2000;                ///< co-enabled dispatch window, ns
    bool dpor = true;                   ///< false: naive DFS (every alternative)
    std::uint64_t minimize_budget = 64; ///< extra replays for trace minimization
    obs::MetricsRegistry* metrics = nullptr;  ///< explore.* counters (optional)
    std::FILE* progress = nullptr;            ///< progress lines (optional)
};

/// What one schedule of the program did. RunFn fills this; panics thrown out
/// of RunFn are converted to deadlock findings by the explorer.
struct RunOutcome {
    bool violation = false;  ///< the checker recorded at least one violation
    bool deadlock = false;   ///< the run panicked (deadlock / engine abort)
    std::string report;      ///< human-readable report (checker table / panic)
    std::string signature;   ///< stable bug identity for minimization
};

/// Executes the program once under `ctrl` and reports the outcome. Must be
/// deterministic given the controller's decisions.
using RunFn = std::function<RunOutcome(sim::ScheduleController&)>;

struct ExploreResult {
    bool found = false;      ///< a violating/deadlocking schedule was found
    bool exhausted = false;  ///< the reduced space was fully explored
    RunOutcome finding;      ///< outcome of the (minimized) violating schedule
    sim::DecisionTrace trace;       ///< replayable schedule of the finding
    std::uint64_t schedules = 0;    ///< program executions during the search
    std::uint64_t replays = 0;      ///< further executions spent minimizing
    std::uint64_t pruned = 0;       ///< alternatives DPOR discarded as independent
    std::uint64_t choice_points = 0;  ///< deepest run's choice-point count
    double wall_seconds = 0.0;
};

ExploreResult explore(const RunFn& run, const ExploreOptions& opt);

}  // namespace scimpi::check
