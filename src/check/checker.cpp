#include "check/checker.hpp"

#include <algorithm>

namespace scimpi::check {

namespace {

/// Bounded per-window access log: enough for any real epoch, small enough
/// that a runaway loop cannot grow without bound (oldest half is dropped).
constexpr std::size_t kMaxWinRecords = 8192;
constexpr std::size_t kMaxSegRecords = 8192;
/// Distinct violations recorded before further ones are only counted.
constexpr std::size_t kMaxViolations = 1024;

}  // namespace

const char* kind_name(ViolationKind k) {
    switch (k) {
        case ViolationKind::put_put_overlap: return "put_put_overlap";
        case ViolationKind::put_get_overlap: return "put_get_overlap";
        case ViolationKind::acc_put_overlap: return "acc_put_overlap";
        case ViolationKind::local_access_during_exposure:
            return "local_access_during_exposure";
        case ViolationKind::op_outside_epoch: return "op_outside_epoch";
        case ViolationKind::oob_displacement: return "oob_displacement";
        case ViolationKind::pscw_mismatch: return "pscw_mismatch";
        case ViolationKind::segment_race: return "segment_race";
        case ViolationKind::request_race: return "request_race";
    }
    return "unknown";
}

const char* access_name(AccessKind k) {
    switch (k) {
        case AccessKind::put: return "put";
        case AccessKind::get: return "get";
        case AccessKind::accumulate: return "accumulate";
        case AccessKind::local_load: return "local_load";
        case AccessKind::local_store: return "local_store";
    }
    return "unknown";
}

Checker::Checker(int world)
    : world_(world), clocks_(static_cast<std::size_t>(world), VectorClock(world)) {}

void Checker::bind_metrics(obs::MetricsRegistry& m) {
    total_c_ = &m.counter("check.violations");
    for (int k = 0; k < kViolationKinds; ++k)
        kind_c_[k] = &m.counter(std::string("check.") +
                                kind_name(static_cast<ViolationKind>(k)));
}

void Checker::register_actor(int track, int world_rank) {
    actors_[track] = world_rank;
}

int Checker::actor_rank(int track) const {
    const auto it = actors_.find(track);
    return it == actors_.end() ? -1 : it->second;
}

std::size_t Checker::count(ViolationKind k) const {
    std::size_t n = 0;
    for (const Violation& v : violations_)
        if (v.kind == k) ++n;
    return n;
}

Checker::WinRankState& Checker::rank_state(int win_id, int rank) {
    WinState& ws = win(win_id);
    const auto it = ws.ranks.find(rank);
    if (it != ws.ranks.end()) return it->second;
    WinRankState st;
    st.post_clock = VectorClock(world_);
    st.complete_clock = VectorClock(world_);
    st.lock_clock = VectorClock(world_);
    return ws.ranks.emplace(rank, std::move(st)).first->second;
}

void Checker::prune(WinState& ws, int origin, std::uint64_t current_epoch) {
    if (current_epoch >= 2)
        std::erase_if(ws.accesses, [&](const AccessRecord& a) {
            return a.origin == origin && a.epoch + 2 <= current_epoch;
        });
    if (ws.accesses.size() > kMaxWinRecords)
        ws.accesses.erase(ws.accesses.begin(),
                          ws.accesses.begin() +
                              static_cast<std::ptrdiff_t>(ws.accesses.size() / 2));
}

bool Checker::classify(AccessKind a, AccessKind b, ViolationKind* out) {
    const auto writes = [](AccessKind k) {
        return k == AccessKind::put || k == AccessKind::accumulate ||
               k == AccessKind::local_store;
    };
    if (!writes(a) && !writes(b)) return false;  // read/read is always fine
    const bool acc = a == AccessKind::accumulate || b == AccessKind::accumulate;
    const bool local = a == AccessKind::local_load || a == AccessKind::local_store ||
                       b == AccessKind::local_load || b == AccessKind::local_store;
    if (acc && a == b) return false;  // same-op accumulates may interleave
    if (local) {
        *out = ViolationKind::local_access_during_exposure;
        return true;
    }
    if (acc) {
        *out = ViolationKind::acc_put_overlap;
        return true;
    }
    if (a == AccessKind::put && b == AccessKind::put) {
        *out = ViolationKind::put_put_overlap;
        return true;
    }
    *out = ViolationKind::put_get_overlap;  // one side reads, the other writes
    return true;
}

void Checker::report(ViolationKind kind, int win_id, int rank_a, int rank_b,
                     ByteRange range, SimTime time_a, SimTime time_b,
                     std::string detail, int track) {
    // One diagnostic per distinct site: a loop re-racing the same bytes
    // reports once and counts the rest as suppressed.
    std::string sig = std::to_string(static_cast<int>(kind)) + ':' +
                      std::to_string(win_id) + ':' + std::to_string(rank_a) + ':' +
                      std::to_string(rank_b) + ':' + std::to_string(range.lo) + ':' +
                      std::to_string(range.hi);
    if (!seen_.insert(sig).second || violations_.size() >= kMaxViolations) {
        ++suppressed_;
        return;
    }
    // Counters track recorded diagnostics, so check.violations and the
    // per-kind counters agree with the violations array and the JSON report
    // (suppressed occurrences are accounted separately).
    if (total_c_ != nullptr) total_c_->inc();
    if (kind_c_[static_cast<int>(kind)] != nullptr)
        kind_c_[static_cast<int>(kind)]->inc();
    if (tracer_ != nullptr && tracer_->enabled())
        tracer_->instant(track, std::string("check:") + kind_name(kind), time_b);
    Violation v;
    v.kind = kind;
    v.win = win_id;
    v.rank_a = rank_a;
    v.rank_b = rank_b;
    v.range = range;
    v.time_a = time_a;
    v.time_b = time_b;
    v.detail = std::move(detail);
    violations_.push_back(std::move(v));
}

// ---------------------------------------------------------------------------
// Synchronization hooks
// ---------------------------------------------------------------------------

void Checker::on_p2p(int src, int dst) {
    if (!enabled_ || src == dst) return;
    auto& s = clocks_[static_cast<std::size_t>(src)];
    auto& d = clocks_[static_cast<std::size_t>(dst)];
    d.join(s);
    s.tick(src);
    d.tick(dst);
}

void Checker::on_fence(int win_id, int rank, SimTime /*now*/, int /*track*/) {
    if (!enabled_) return;
    WinRankState& st = rank_state(win_id, rank);
    ++st.epoch;
    prune(win(win_id), rank, st.epoch);
    clocks_[static_cast<std::size_t>(rank)].tick(rank);
}

void Checker::on_post(int win_id, int target, const std::vector<int>& origins,
                      SimTime now, int track) {
    if (!enabled_) return;
    WinRankState& st = rank_state(win_id, target);
    if (st.exposed)
        report(ViolationKind::pscw_mismatch, win_id, -1, target, {}, now, now,
               "post while an exposure epoch is already open", track);
    st.exposed = true;
    st.post_origins = origins;
    st.post_clock = clocks_[static_cast<std::size_t>(target)];
    clocks_[static_cast<std::size_t>(target)].tick(target);
}

void Checker::on_start(int win_id, int origin, const std::vector<int>& targets,
                       SimTime now, int track) {
    if (!enabled_) return;
    WinRankState& st = rank_state(win_id, origin);
    if (st.access_open)
        report(ViolationKind::pscw_mismatch, win_id, -1, origin, {}, now, now,
               "start while an access epoch is already open", track);
    st.access_open = true;
    auto& clk = clocks_[static_cast<std::size_t>(origin)];
    for (const int t : targets) clk.join(rank_state(win_id, t).post_clock);
    clk.tick(origin);
}

void Checker::on_complete(int win_id, int origin, SimTime now, int track) {
    if (!enabled_) return;
    WinRankState& st = rank_state(win_id, origin);
    if (!st.access_open) {
        report(ViolationKind::pscw_mismatch, win_id, -1, origin, {}, now, now,
               "complete without a matching start", track);
        return;
    }
    st.access_open = false;
    st.complete_clock = clocks_[static_cast<std::size_t>(origin)];
    clocks_[static_cast<std::size_t>(origin)].tick(origin);
}

void Checker::on_wait(int win_id, int target, SimTime now, int track) {
    if (!enabled_) return;
    WinRankState& st = rank_state(win_id, target);
    if (!st.exposed) {
        report(ViolationKind::pscw_mismatch, win_id, -1, target, {}, now, now,
               "wait without a matching post", track);
        return;
    }
    auto& clk = clocks_[static_cast<std::size_t>(target)];
    for (const int o : st.post_origins)
        clk.join(rank_state(win_id, o).complete_clock);
    st.exposed = false;
    st.post_origins.clear();
    clk.tick(target);
}

void Checker::on_lock(int win_id, int origin, int target, SimTime now, int track) {
    if (!enabled_) return;
    WinRankState& st = rank_state(win_id, origin);
    if (!st.locks_held.insert(target).second)
        report(ViolationKind::pscw_mismatch, win_id, -1, origin, {}, now, now,
               "lock on rank " + std::to_string(target) + " already held", track);
    auto& clk = clocks_[static_cast<std::size_t>(origin)];
    clk.join(rank_state(win_id, target).lock_clock);
    clk.tick(origin);
    // Mirror the hand-over HB edge into the event graph: the previous
    // holder's unlock released this acquisition, so lock-serialized time on
    // the critical path is blamed on the rank that held the lock.
    if (evgraph_ != nullptr && evgraph_->enabled()) {
        const auto it = last_unlock_ev_.find({win_id, target});
        if (it != last_unlock_ev_.end())
            evgraph_->edge(it->second, evgraph_->last(track),
                           obs::EvCat::wait_sync);
    }
}

void Checker::on_unlock(int win_id, int origin, int target, SimTime now, int track) {
    if (!enabled_) return;
    WinRankState& st = rank_state(win_id, origin);
    if (st.locks_held.erase(target) == 0) {
        report(ViolationKind::pscw_mismatch, win_id, -1, origin, {}, now, now,
               "unlock of rank " + std::to_string(target) + " without a lock",
               track);
        return;
    }
    auto& clk = clocks_[static_cast<std::size_t>(origin)];
    // Each lock session hands its clock to the next holder: their accesses
    // dominate ours through the lock clock, so no conflict is reported.
    rank_state(win_id, target).lock_clock.join(clk);
    clk.tick(origin);
    if (evgraph_ != nullptr && evgraph_->enabled())
        last_unlock_ev_[{win_id, target}] = evgraph_->last(track);
}

// ---------------------------------------------------------------------------
// Window accesses
// ---------------------------------------------------------------------------

void Checker::on_win_create(int win_id, int rank, std::uint64_t size) {
    if (!enabled_) return;
    rank_state(win_id, rank).size = size;
}

void Checker::on_rma_op(int win_id, int origin, int target, AccessKind kind,
                        SyncMode mode, const std::vector<ByteRange>& blocks,
                        SimTime now, int track) {
    if (!enabled_) return;
    WinState& ws = win(win_id);
    WinRankState& tst = rank_state(win_id, target);
    // This op is an event of its own: tick *before* snapshotting, or its
    // timestamp collapses into the origin's last sync point — which every
    // other rank already dominates after a barrier, hiding real races.
    clocks_[static_cast<std::size_t>(origin)].tick(origin);
    const VectorClock vc = clocks_[static_cast<std::size_t>(origin)];
    // Fence is collective, so the origin's own fence count identifies the
    // open fence epoch consistently across ranks (the target's counter is
    // bumped on the target's schedule and may lag or lead this op).
    const std::uint64_t epoch = rank_state(win_id, origin).epoch;

    const bool is_local =
        kind == AccessKind::local_load || kind == AccessKind::local_store;
    if (is_local && tst.exposed) {
        // MPI-2 forbids the target touching its window while it is exposed
        // (post issued, wait pending) — flag even without a remote overlap.
        ByteRange span = blocks.empty() ? ByteRange{} : blocks.front();
        for (const ByteRange& b : blocks) {
            if (b.lo < span.lo) span.lo = b.lo;
            if (b.hi > span.hi) span.hi = b.hi;
        }
        report(ViolationKind::local_access_during_exposure, win_id, target, origin,
               span, now, now,
               std::string(access_name(kind)) +
                   " of window memory inside the rank's own exposure epoch",
               track);
    }

    for (const AccessRecord& a : ws.accesses) {
        if (a.target != target || a.origin == origin) continue;
        ViolationKind kind_out{};
        if (!classify(a.kind, kind, &kind_out)) continue;
        // Two fence-mode accesses in the same fence epoch are erroneous per
        // MPI-2 even if the *issuing* calls were ordered: completion is only
        // forced at the closing fence. PSCW and lock epochs never advance
        // the fence counter (it stays 0 in fence-free programs), so for them
        // the counter proves nothing — their ordering lives entirely in the
        // vector clocks (post/complete pairing, lock hand-over), and only a
        // missing happens-before edge is a conflict.
        const bool same_fence_epoch = mode == SyncMode::fence &&
                                      a.mode == SyncMode::fence &&
                                      a.epoch == epoch;
        const bool unordered = VectorClock::concurrent(a.vc, vc);
        if (!same_fence_epoch && !unordered) continue;
        for (const ByteRange& b : blocks) {
            if (!a.range.overlaps(b)) continue;
            const ByteRange clash = a.range.intersect(b);
            report(kind_out, win_id, a.origin, origin, clash, a.time, now,
                   std::string(access_name(a.kind)) + " by rank " +
                       std::to_string(a.origin) + " vs " + access_name(kind) +
                       " by rank " + std::to_string(origin) + " on rank " +
                       std::to_string(target) + "'s window" +
                       (same_fence_epoch
                            ? ", fence epoch " + std::to_string(epoch)
                            : " (causally unrelated)"),
                   track);
            break;  // one diagnostic per conflicting pair of ops
        }
    }

    for (const ByteRange& b : blocks)
        ws.accesses.push_back({origin, target, kind, mode, b, epoch, vc, now});
    if (ws.accesses.size() > kMaxWinRecords) prune(ws, origin, epoch);
}

void Checker::on_op_outside_epoch(int win_id, int origin, int target,
                                  AccessKind kind, ByteRange span, SimTime now,
                                  int track) {
    if (!enabled_) return;
    report(ViolationKind::op_outside_epoch, win_id, -1, origin, span, now, now,
           std::string(access_name(kind)) + " to rank " + std::to_string(target) +
               " with no fence, start or lock epoch open",
           track);
}

void Checker::on_oob(int win_id, int origin, int target, std::uint64_t disp,
                     std::uint64_t bytes_needed, std::uint64_t win_size,
                     SimTime now, int track) {
    if (!enabled_) return;
    report(ViolationKind::oob_displacement, win_id, -1, origin,
           {disp, disp + bytes_needed}, now, now,
           "displacement " + std::to_string(disp) + " + " +
               std::to_string(bytes_needed) + " bytes exceeds rank " +
               std::to_string(target) + "'s window of " +
               std::to_string(win_size) + " bytes",
           track);
}

void Checker::on_remote_apply(int win_id, int origin, SimTime now, int track) {
    if (!enabled_ || tracer_ == nullptr || !tracer_->enabled()) return;
    tracer_->instant(track,
                     "check:apply win" + std::to_string(win_id) + " from rank " +
                         std::to_string(origin),
                     now);
}

// ---------------------------------------------------------------------------
// Raw shared segments
// ---------------------------------------------------------------------------

void Checker::watch_segment(int seg_node, int seg_id) {
    segments_.emplace(std::make_pair(seg_node, seg_id), SegState{});
}

void Checker::unwatch_segment(int seg_node, int seg_id) {
    segments_.erase({seg_node, seg_id});
}

void Checker::on_segment_destroyed(int seg_node, int seg_id) {
    if (!enabled_) return;
    unwatch_segment(seg_node, seg_id);
    // Requests whose buffers lived there can no longer race anything.
    std::erase_if(pending_, [seg_node, seg_id](const auto& kv) {
        return kv.second.seg_node == seg_node && kv.second.seg_id == seg_id;
    });
}

std::uint64_t Checker::on_request_issue(int rank, int seg_node, int seg_id,
                                        std::uint64_t off, std::uint64_t len,
                                        bool is_send, SimTime now) {
    if (!enabled_ || len == 0) return 0;
    if (segments_.find({seg_node, seg_id}) == segments_.end()) return 0;
    const std::uint64_t id = next_req_id_++;
    pending_.emplace(id, PendingReq{rank, seg_node, seg_id,
                                    ByteRange{off, off + len}, is_send, now});
    return id;
}

void Checker::on_request_complete(int rank, std::uint64_t id, SimTime /*now*/) {
    if (!enabled_ || id == 0) return;
    pending_.erase(id);
    clocks_[static_cast<std::size_t>(rank)].tick(rank);
}

void Checker::on_segment_access(int seg_node, int seg_id, int track,
                                std::uint64_t off, std::uint64_t len,
                                bool is_store, SimTime now) {
    if (!enabled_ || len == 0) return;
    const auto it = segments_.find({seg_node, seg_id});
    if (it == segments_.end()) return;  // unwatched: protocol-internal
    const int rank = actor_rank(track);
    if (rank < 0) return;  // daemons and engines are not program actors
    SegState& seg = it->second;
    const ByteRange range{off, off + len};
    // Buffers pending under a nonblocking request conflict with any store,
    // and with every access when the request is a receive (the incoming
    // message may land at any moment). Checked before the vector-clock log:
    // clocks cannot order a rank against itself, which is exactly the
    // racy-after-Isend same-rank reuse case.
    for (const auto& [id, p] : pending_) {
        if (p.seg_node != seg_node || p.seg_id != seg_id) continue;
        if (!p.range.overlaps(range)) continue;
        if (!is_store && p.is_send) continue;  // loads of a send buffer are safe
        report(ViolationKind::request_race, -1, p.rank, rank,
               p.range.intersect(range), p.time, now,
               std::string(is_store ? "store" : "load") + " by rank " +
                   std::to_string(rank) + " overlaps the buffer of an " +
                   (p.is_send ? "in-flight send" : "in-flight receive") +
                   " issued by rank " + std::to_string(p.rank) +
                   " (not yet completed by Wait/Test) on segment " +
                   std::to_string(seg_node) + "." + std::to_string(seg_id),
               track);
        break;
    }
    clocks_[static_cast<std::size_t>(rank)].tick(rank);  // tick-then-snapshot
    const VectorClock vc = clocks_[static_cast<std::size_t>(rank)];
    for (const SegAccess& a : seg.log) {
        if (a.rank == rank || (!a.store && !is_store)) continue;
        if (!a.range.overlaps(range)) continue;
        if (!VectorClock::concurrent(a.vc, vc)) continue;
        report(ViolationKind::segment_race, -1, a.rank, rank,
               a.range.intersect(range), a.time, now,
               std::string(a.store ? "store" : "load") + " by rank " +
                   std::to_string(a.rank) + " races " +
                   (is_store ? "store" : "load") + " by rank " +
                   std::to_string(rank) + " on segment " +
                   std::to_string(seg_node) + "." + std::to_string(seg_id),
               track);
        break;
    }
    seg.log.push_back({rank, is_store, range, vc, now});
    if (seg.log.size() > kMaxSegRecords)
        seg.log.erase(seg.log.begin(),
                      seg.log.begin() + static_cast<std::ptrdiff_t>(seg.log.size() / 2));
}

// ---------------------------------------------------------------------------
// Reporting
// ---------------------------------------------------------------------------

std::string Checker::signature() const {
    std::string sig;
    for (const Violation& v : violations_)
        sig += std::string(kind_name(v.kind)) + ':' + std::to_string(v.win) + ':' +
               std::to_string(v.rank_a) + ':' + std::to_string(v.rank_b) + ':' +
               std::to_string(v.range.lo) + ':' + std::to_string(v.range.hi) + '\n';
    return sig;
}

std::string Checker::report_string() const {
    if (violations_.empty()) return {};
    std::string out;
    char line[512];
    std::snprintf(line, sizeof line,
                  "scimpi-check: %zu violation%s detected (%llu further "
                  "occurrence%s suppressed)\n",
                  violations_.size(), violations_.size() == 1 ? "" : "s",
                  static_cast<unsigned long long>(suppressed_),
                  suppressed_ == 1 ? "" : "s");
    out += line;
    std::snprintf(line, sizeof line, "%-30s %4s %7s %19s %23s  %s\n", "kind",
                  "win", "ranks", "bytes", "sim time (ns)", "detail");
    out += line;
    for (const Violation& v : violations_) {
        char ranks[32];
        if (v.rank_a >= 0)
            std::snprintf(ranks, sizeof ranks, "%d<>%d", v.rank_a, v.rank_b);
        else
            std::snprintf(ranks, sizeof ranks, "%d", v.rank_b);
        char bytes[40];
        std::snprintf(bytes, sizeof bytes, "[%llu,%llu)",
                      static_cast<unsigned long long>(v.range.lo),
                      static_cast<unsigned long long>(v.range.hi));
        char times[48];
        std::snprintf(times, sizeof times, "%llu/%llu",
                      static_cast<unsigned long long>(v.time_a),
                      static_cast<unsigned long long>(v.time_b));
        std::snprintf(line, sizeof line, "%-30s %4d %7s %19s %23s  %s\n",
                      kind_name(v.kind), v.win, ranks, bytes, times,
                      v.detail.c_str());
        out += line;
    }
    return out;
}

void Checker::print_report(std::FILE* out) const {
    const std::string text = report_string();
    if (!text.empty()) std::fputs(text.c_str(), out);
}

}  // namespace scimpi::check
