// Cluster-wide observability: a typed counter/gauge registry plus the
// structured per-run report it feeds.
//
// Design goals (mirroring what the rest of the library needs):
//   * near-zero cost when disabled — every Counter/Gauge holds a pointer to
//     the registry's enabled flag, so a disabled increment is one predictable
//     load + branch and has *no* side effects,
//   * stable handles — modules resolve `Counter*` once (at construction) and
//     increment through the pointer on hot paths; no name lookups after
//     startup. Registry storage is node-based so handles never move,
//   * cluster-wide aggregation for free — every rank/adapter resolves the
//     same named counter, so increments from all simulated processes land in
//     one slot,
//   * structured export — RunReport is the JSON-serializable snapshot
//     returned by Cluster::stats_report() and dumped at teardown when
//     SCIMPI_STATS_FILE is set.
//
// This header depends only on common/status.hpp so every layer (sim, sci,
// mem, mpi) may include it.
#pragma once

#include <array>
#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/status.hpp"
#include "obs/profiler.hpp"

namespace scimpi::obs {

/// Append `s` to `out` as JSON string *content* (no surrounding quotes):
/// escapes quotes, backslashes and all control characters (U+0000..U+001F).
void json_escape(std::string& out, std::string_view s);

/// Monotonic event count. Obtain via MetricsRegistry::counter(); increments
/// are dropped entirely while the owning registry is disabled.
class Counter {
public:
    Counter(std::string name, const bool* enabled)
        : name_(std::move(name)), enabled_(enabled) {}

    void add(std::uint64_t d) {
        if (*enabled_) value_ += d;
    }
    void inc() { add(1); }

    [[nodiscard]] std::uint64_t value() const { return value_; }
    [[nodiscard]] const std::string& name() const { return name_; }

private:
    friend class MetricsRegistry;
    std::string name_;
    std::uint64_t value_ = 0;
    const bool* enabled_;
};

/// Instantaneous level with high-water-mark tracking (e.g. concurrent
/// transfers in flight). Like Counter, inert while disabled.
class Gauge {
public:
    Gauge(std::string name, const bool* enabled)
        : name_(std::move(name)), enabled_(enabled) {}

    void set(double v) {
        if (!*enabled_) return;
        value_ = v;
        if (v > max_) max_ = v;
    }
    void add(double d) { set(value_ + d); }

    [[nodiscard]] double value() const { return value_; }
    [[nodiscard]] double max() const { return max_; }
    [[nodiscard]] const std::string& name() const { return name_; }

private:
    friend class MetricsRegistry;
    std::string name_;
    double value_ = 0.0;
    double max_ = 0.0;
    const bool* enabled_;
};

/// Log2-bucketed latency/size distribution. Fixed storage (64 buckets, one
/// per bit width), so recording never allocates; like Counter, a disabled
/// record() is one predictable load + branch with no side effects. Bucket i
/// holds values whose bit width is i, i.e. [2^(i-1), 2^i - 1] (bucket 0
/// holds exactly the value 0). Percentiles interpolate linearly inside the
/// winning bucket and are clamped to the observed [min, max].
class Histogram {
public:
    static constexpr int kBuckets = 64;

    Histogram(std::string name, const bool* enabled)
        : name_(std::move(name)), enabled_(enabled) {}

    void record(std::uint64_t v) {
        if (!*enabled_) return;
        ++count_;
        sum_ += v;
        if (v < min_ || count_ == 1) min_ = v;
        if (v > max_) max_ = v;
        // Values >= 2^63 have bit width 64; fold them into the last bucket.
        const int b = bucket_index(v);
        ++buckets_[static_cast<std::size_t>(b < kBuckets ? b : kBuckets - 1)];
    }

    /// Bucket of value `v`: 0 for 0, otherwise its bit width.
    static int bucket_index(std::uint64_t v) {
        int w = 0;
        while (v != 0) {
            v >>= 1;
            ++w;
        }
        return w;
    }

    [[nodiscard]] std::uint64_t count() const { return count_; }
    [[nodiscard]] std::uint64_t sum() const { return sum_; }
    [[nodiscard]] std::uint64_t min() const { return count_ == 0 ? 0 : min_; }
    [[nodiscard]] std::uint64_t max() const { return max_; }
    [[nodiscard]] std::uint64_t bucket(int i) const {
        return buckets_.at(static_cast<std::size_t>(i));
    }
    [[nodiscard]] const std::string& name() const { return name_; }

    /// Estimate the p-th percentile (p in [0, 100]); 0 when empty. Linear
    /// interpolation inside the bucket, clamped to [min, max] so single
    /// samples and single-bucket populations report exact endpoints.
    [[nodiscard]] double percentile(double p) const;

private:
    friend class MetricsRegistry;
    std::string name_;
    const bool* enabled_;
    std::uint64_t count_ = 0;
    std::uint64_t sum_ = 0;
    std::uint64_t min_ = 0;
    std::uint64_t max_ = 0;
    std::array<std::uint64_t, kBuckets> buckets_{};
};

/// Point-in-time export of one histogram (percentiles precomputed).
struct HistogramSnapshot {
    std::string name;
    std::uint64_t count = 0;
    std::uint64_t sum = 0;
    std::uint64_t min = 0;
    std::uint64_t max = 0;
    double p50 = 0.0;
    double p90 = 0.0;
    double p99 = 0.0;

    /// Serialize the value part as a JSON object (no name).
    [[nodiscard]] std::string to_json() const;
};

class MetricsRegistry {
public:
    MetricsRegistry() = default;
    MetricsRegistry(const MetricsRegistry&) = delete;
    MetricsRegistry& operator=(const MetricsRegistry&) = delete;

    void enable(bool on = true) { enabled_ = on; }
    [[nodiscard]] bool enabled() const { return enabled_; }

    /// Find-or-create; the returned reference stays valid for the registry's
    /// lifetime (storage is node-based).
    Counter& counter(std::string_view name);
    Gauge& gauge(std::string_view name);
    Histogram& histogram(std::string_view name);

    /// Current value of a counter, 0 when it was never registered.
    [[nodiscard]] std::uint64_t value(std::string_view name) const;

    /// Zero every value; registrations (and resolved handles) survive.
    void reset();

    [[nodiscard]] std::vector<std::pair<std::string, std::uint64_t>> counters() const;
    [[nodiscard]] std::vector<std::pair<std::string, double>> gauge_maxima() const;
    [[nodiscard]] std::vector<HistogramSnapshot> histograms() const;

private:
    bool enabled_ = false;
    std::map<std::string, Counter, std::less<>> counters_;
    std::map<std::string, Gauge, std::less<>> gauges_;
    std::map<std::string, Histogram, std::less<>> histograms_;
};

/// One recorded metric stream (see obs/recorder.hpp): parallel arrays of
/// sample times (simulated ns) and values.
struct TimeSeries {
    std::string name;
    std::vector<std::uint64_t> t;
    std::vector<double> v;

    /// {"name": "...", "t": [...], "v": [...]}
    [[nodiscard]] std::string to_json() const;
};

/// One row of the derived congestion table: a link ranked by its peak
/// sampled utilization (fraction of nominal bandwidth over a sample window).
struct HotSpot {
    int link = -1;
    double peak_util = 0.0;
    std::uint64_t peak_t_ns = 0;  ///< window end where the peak occurred
    double mean_util = 0.0;       ///< time-weighted mean over the run
};

/// Structured snapshot of one simulated run: every registry counter/gauge/
/// histogram, per-rank time-attribution profiles, plus the per-link wire
/// statistics the fabric keeps unconditionally.
struct RunReport {
    /// Bumped whenever the JSON layout changes incompatibly. v2 added
    /// schema_version/seed/fault_spec/sim_time_ns, histograms and profiles;
    /// v3 added check_enabled and the scimpi-check violations array; v4
    /// added the flight-recorder timeseries/hotspots arrays, the DES
    /// self-metric scalars (wall_ns, events_per_sec_wall,
    /// wall_per_sim_second, record_cadence_ns), and omits histograms that
    /// recorded no samples; v5 added the critical_path section (enabled flag,
    /// total_ns, per-category/link/rank breakdowns from the causal event
    /// graph — see obs/evgraph.hpp); v6 added the explore section (schedule-
    /// space exploration summary: schedules executed, DPOR-pruned
    /// alternatives, choice points, replay-trace size — see
    /// check/explorer.hpp).
    static constexpr int kSchemaVersion = 6;

    int schema_version = kSchemaVersion;
    int world = 0;
    int nodes = 0;
    double sim_seconds = 0.0;
    std::uint64_t sim_time_ns = 0;
    std::uint64_t events_dispatched = 0;
    bool stats_enabled = false;  ///< counters are all zero when false
    bool profile_enabled = false;
    bool check_enabled = false;  ///< scimpi-check ran (violations meaningful)

    /// Run configuration needed to tell a config regression from a code one:
    /// the Config RNG seed, the fault schedule's soak seed, and the fault
    /// spec (file path, empty when the run injected no faults from a spec).
    std::uint64_t seed = 0;
    std::uint64_t fault_seed = 0;
    std::string fault_spec;

    /// DES engine self-metrics (v4). wall_ns is the host wall-clock the
    /// engine spent inside run(); the two derived scalars are whole-run
    /// averages (the timeseries below carry their evolution). All three are
    /// host-dependent: bench_compare.py skips them by default.
    std::uint64_t wall_ns = 0;
    double events_per_sec_wall = 0.0;
    double wall_per_sim_second = 0.0;
    /// Flight-recorder base cadence (ns); 0 when the recorder was off.
    std::uint64_t record_cadence_ns = 0;

    std::vector<std::pair<std::string, std::uint64_t>> counters;  // sorted by name
    std::vector<std::pair<std::string, double>> gauges;           // max values
    std::vector<HistogramSnapshot> histograms;                    // sorted by name

    struct Link {
        int id = 0;
        std::uint64_t payload_bytes = 0;
        std::uint64_t wire_bytes = 0;
        std::uint64_t echo_bytes = 0;
    };
    std::vector<Link> links;

    /// Per-rank time attribution (see obs/profiler.hpp); filled only when
    /// the run's Profiler was enabled. State times sum to sim_time_ns.
    struct RankProfile {
        int rank = 0;
        std::array<std::uint64_t, kProfStates> state_ns{};
        std::uint64_t total_ns = 0;
        std::uint64_t late_senders = 0;
        std::uint64_t late_receivers = 0;
        std::uint64_t late_sender_wait_ns = 0;
        std::uint64_t late_receiver_wait_ns = 0;
        /// Nonblocking-request overlap (mpi/req): of comm_window_ns of
        /// issue→completion time across overlap_ops requests, overlap_ns ran
        /// hidden under compute. JSON adds the derived overlap_ratio.
        std::uint64_t overlap_ops = 0;
        std::uint64_t overlap_ns = 0;
        std::uint64_t comm_window_ns = 0;
    };
    std::vector<RankProfile> profiles;

    /// One scimpi-check diagnostic (see src/check/checker.hpp); filled only
    /// when the run's Checker was enabled. `win` is -1 for raw-segment
    /// violations, `rank_a` is -1 for single-site ones (OOB, epoch misuse).
    struct Violation {
        std::string kind;
        int win = -1;
        int rank_a = -1;
        int rank_b = -1;
        std::uint64_t byte_lo = 0;
        std::uint64_t byte_hi = 0;
        std::uint64_t time_a = 0;
        std::uint64_t time_b = 0;
        std::string detail;
    };
    std::vector<Violation> violations;
    /// Repeats of already-reported violation sites that were only counted.
    std::uint64_t check_suppressed = 0;

    /// Flight-recorder output (v4): raw + derived sampled series, and the
    /// top-K links by peak utilization. Empty when the recorder was off.
    std::vector<TimeSeries> timeseries;
    std::vector<HotSpot> hotspots;

    /// Critical-path attribution (v5): the causal-event-graph walk's
    /// end-to-end breakdown. `enabled` is false (and the rest zero/empty)
    /// when the run recorded no event graph; when true, the category
    /// nanoseconds sum exactly to total_ns (== sim_time_ns).
    struct CriticalPathSummary {
        bool enabled = false;
        std::uint64_t total_ns = 0;
        std::uint64_t steps = 0;  ///< graph nodes visited by the walk
        std::vector<std::pair<std::string, std::uint64_t>> categories;
        std::vector<std::pair<std::string, std::uint64_t>> links;  // "a->b"
        std::vector<std::pair<int, std::uint64_t>> ranks;  // blamed rank -> ns
    };
    CriticalPathSummary critical_path;

    /// Schedule-space exploration summary (v6): what check::Explorer did
    /// when the run was driven by `--explore` / SCIMPI_EXPLORE. `enabled` is
    /// false (and the rest zero/empty) for ordinary single-schedule runs.
    struct ExploreSummary {
        bool enabled = false;
        bool found = false;      ///< a violating/deadlocking schedule exists
        bool exhausted = false;  ///< the reduced schedule space was completed
        std::uint64_t schedules = 0;
        std::uint64_t replays = 0;  ///< minimization re-executions
        std::uint64_t pruned = 0;   ///< alternatives DPOR discarded
        std::uint64_t choice_points = 0;
        std::uint64_t trace_decisions = 0;  ///< minimized repro trace size
        std::uint64_t fuzz_ns = 0;
        double wall_seconds = 0.0;
        double schedules_per_sec = 0.0;
        std::string trace_file;  ///< emitted repro artifact ("" = none)
    };
    ExploreSummary explore;

    /// Value of a named counter in this snapshot (0 when absent).
    [[nodiscard]] std::uint64_t counter(std::string_view name) const;
    /// Max value of a named gauge in this snapshot (0 when absent).
    [[nodiscard]] double gauge(std::string_view name) const;
    /// Named histogram snapshot (nullptr when absent).
    [[nodiscard]] const HistogramSnapshot* histogram(std::string_view name) const;
    /// Named recorded series (nullptr when absent).
    [[nodiscard]] const TimeSeries* series(std::string_view name) const;

    [[nodiscard]] std::string to_json() const;
    /// Serialize to `path`; on failure the Status detail names the path and
    /// the errno message.
    [[nodiscard]] Status write_json(const std::string& path) const;
};

}  // namespace scimpi::obs
