// Cluster-wide observability: a typed counter/gauge registry plus the
// structured per-run report it feeds.
//
// Design goals (mirroring what the rest of the library needs):
//   * near-zero cost when disabled — every Counter/Gauge holds a pointer to
//     the registry's enabled flag, so a disabled increment is one predictable
//     load + branch and has *no* side effects,
//   * stable handles — modules resolve `Counter*` once (at construction) and
//     increment through the pointer on hot paths; no name lookups after
//     startup. Registry storage is node-based so handles never move,
//   * cluster-wide aggregation for free — every rank/adapter resolves the
//     same named counter, so increments from all simulated processes land in
//     one slot,
//   * structured export — RunReport is the JSON-serializable snapshot
//     returned by Cluster::stats_report() and dumped at teardown when
//     SCIMPI_STATS_FILE is set.
//
// This header depends only on common/status.hpp so every layer (sim, sci,
// mem, mpi) may include it.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/status.hpp"

namespace scimpi::obs {

/// Append `s` to `out` as JSON string *content* (no surrounding quotes):
/// escapes quotes, backslashes and all control characters (U+0000..U+001F).
void json_escape(std::string& out, std::string_view s);

/// Monotonic event count. Obtain via MetricsRegistry::counter(); increments
/// are dropped entirely while the owning registry is disabled.
class Counter {
public:
    Counter(std::string name, const bool* enabled)
        : name_(std::move(name)), enabled_(enabled) {}

    void add(std::uint64_t d) {
        if (*enabled_) value_ += d;
    }
    void inc() { add(1); }

    [[nodiscard]] std::uint64_t value() const { return value_; }
    [[nodiscard]] const std::string& name() const { return name_; }

private:
    friend class MetricsRegistry;
    std::string name_;
    std::uint64_t value_ = 0;
    const bool* enabled_;
};

/// Instantaneous level with high-water-mark tracking (e.g. concurrent
/// transfers in flight). Like Counter, inert while disabled.
class Gauge {
public:
    Gauge(std::string name, const bool* enabled)
        : name_(std::move(name)), enabled_(enabled) {}

    void set(double v) {
        if (!*enabled_) return;
        value_ = v;
        if (v > max_) max_ = v;
    }
    void add(double d) { set(value_ + d); }

    [[nodiscard]] double value() const { return value_; }
    [[nodiscard]] double max() const { return max_; }
    [[nodiscard]] const std::string& name() const { return name_; }

private:
    friend class MetricsRegistry;
    std::string name_;
    double value_ = 0.0;
    double max_ = 0.0;
    const bool* enabled_;
};

class MetricsRegistry {
public:
    MetricsRegistry() = default;
    MetricsRegistry(const MetricsRegistry&) = delete;
    MetricsRegistry& operator=(const MetricsRegistry&) = delete;

    void enable(bool on = true) { enabled_ = on; }
    [[nodiscard]] bool enabled() const { return enabled_; }

    /// Find-or-create; the returned reference stays valid for the registry's
    /// lifetime (storage is node-based).
    Counter& counter(std::string_view name);
    Gauge& gauge(std::string_view name);

    /// Current value of a counter, 0 when it was never registered.
    [[nodiscard]] std::uint64_t value(std::string_view name) const;

    /// Zero every value; registrations (and resolved handles) survive.
    void reset();

    [[nodiscard]] std::vector<std::pair<std::string, std::uint64_t>> counters() const;
    [[nodiscard]] std::vector<std::pair<std::string, double>> gauge_maxima() const;

private:
    bool enabled_ = false;
    std::map<std::string, Counter, std::less<>> counters_;
    std::map<std::string, Gauge, std::less<>> gauges_;
};

/// Structured snapshot of one simulated run: every registry counter/gauge
/// plus the per-link wire statistics the fabric keeps unconditionally.
struct RunReport {
    int world = 0;
    int nodes = 0;
    double sim_seconds = 0.0;
    std::uint64_t events_dispatched = 0;
    bool stats_enabled = false;  ///< counters are all zero when false

    std::vector<std::pair<std::string, std::uint64_t>> counters;  // sorted by name
    std::vector<std::pair<std::string, double>> gauges;           // max values

    struct Link {
        int id = 0;
        std::uint64_t payload_bytes = 0;
        std::uint64_t wire_bytes = 0;
        std::uint64_t echo_bytes = 0;
    };
    std::vector<Link> links;

    /// Value of a named counter in this snapshot (0 when absent).
    [[nodiscard]] std::uint64_t counter(std::string_view name) const;
    /// Max value of a named gauge in this snapshot (0 when absent).
    [[nodiscard]] double gauge(std::string_view name) const;

    [[nodiscard]] std::string to_json() const;
    /// Serialize to `path`; on failure the Status detail names the path and
    /// the errno message.
    [[nodiscard]] Status write_json(const std::string& path) const;
};

}  // namespace scimpi::obs
