// Per-track time-attribution profiler: every simulated nanosecond of a
// process (an MPI rank, usually) is accounted to exactly one state, so a
// run can answer "where did the time go" — compute vs. packing vs. PIO
// writes vs. DMA vs. waiting — the way Scalasca-style wait-state analysis
// does for real MPI programs.
//
// Mechanics: each track keeps a stack of states (the implicit bottom is
// `compute`) plus the virtual time of the last transition. Scopes push a
// state on entry and pop it on exit (sim::ProfScope is the RAII wrapper);
// elapsed time is attributed to the innermost state active while it passed.
// A snapshot attributes the open tail up to `now`, so per-track state times
// always sum exactly to the queried time — the property the smoke_profile
// ctest pins.
//
// Wait-state summary: the protocol layer additionally classifies matched
// user messages as late-sender (receive posted first, data arrived later)
// or late-receiver (data waited in the unexpected queue), with the waited
// time, mirroring the classic KOJAK/Scalasca patterns.
//
// Like the Tracer, the profiler is disabled by default and every hook is a
// single load + branch when off — simulated results are bit-identical with
// profiling on or off.
#pragma once

#include <array>
#include <cstdint>
#include <map>
#include <vector>

#include "common/units.hpp"

namespace scimpi::obs {

/// What a simulated process is doing right now (innermost scope wins).
enum class ProfState : std::uint8_t {
    compute,        ///< default: user code between library calls
    pack,           ///< datatype pack/unpack and staging copies
    pio_write,      ///< CPU stores through a mapped segment (PIO)
    dma,            ///< blocked on the adapter's DMA engine
    wait_recv,      ///< blocked waiting for a control message
    wait_sync,      ///< blocked in RMA synchronization (fence/PSCW/lock acks)
    retry_backoff,  ///< sleeping out a fault-retry backoff
};

inline constexpr int kProfStates = 7;

const char* prof_state_name(ProfState s);

class Profiler {
public:
    Profiler() = default;
    Profiler(const Profiler&) = delete;
    Profiler& operator=(const Profiler&) = delete;

    void enable(bool on = true) { enabled_ = on; }
    [[nodiscard]] bool enabled() const { return enabled_; }

    /// Enter state `s` on `track` at virtual time `now`.
    void push(int track, ProfState s, SimTime now);
    /// Leave the innermost state of `track`, reverting to the enclosing one.
    void pop(int track, SimTime now);

    /// Wait-state classification of one matched message (receiver side).
    void late_sender(int track, SimTime waited);
    void late_receiver(int track, SimTime waited);

    /// One finalized nonblocking request: of its issue→completion window of
    /// `window_ns`, `overlapped_ns` were not spent blocked in Wait — time
    /// the communication ran underneath user compute. The achieved overlap
    /// ratio per rank is sum(overlapped) / sum(window).
    void comm_overlap(int track, std::uint64_t overlapped_ns,
                      std::uint64_t window_ns);

    struct Snapshot {
        std::array<std::uint64_t, kProfStates> state_ns{};
        std::uint64_t total_ns = 0;  ///< sum of state_ns; equals `now` queried
        std::uint64_t late_senders = 0;
        std::uint64_t late_receivers = 0;
        std::uint64_t late_sender_wait_ns = 0;
        std::uint64_t late_receiver_wait_ns = 0;
        std::uint64_t overlap_ops = 0;      ///< finalized nonblocking requests
        std::uint64_t overlap_ns = 0;       ///< communication hidden by compute
        std::uint64_t comm_window_ns = 0;   ///< total issue→completion windows
    };

    /// Attribution of `track` with the open tail accounted up to `now`.
    /// A track that never pushed reports all of `now` as compute.
    [[nodiscard]] Snapshot snapshot(int track, SimTime now) const;

private:
    struct Track {
        std::vector<ProfState> stack;  ///< empty == compute
        SimTime last = 0;
        std::array<std::uint64_t, kProfStates> ns{};
        std::uint64_t late_senders = 0;
        std::uint64_t late_receivers = 0;
        std::uint64_t late_sender_wait = 0;
        std::uint64_t late_receiver_wait = 0;
        std::uint64_t overlap_ops = 0;
        std::uint64_t overlap_ns = 0;
        std::uint64_t comm_window_ns = 0;
    };

    static void attribute(Track& t, SimTime now);

    bool enabled_ = false;
    std::map<int, Track> tracks_;
};

}  // namespace scimpi::obs
