#include "obs/evgraph.hpp"

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "obs/metrics.hpp"  // json_escape

namespace scimpi::obs {

namespace {

constexpr const char* kCatNames[kEvCats] = {
    "compute", "pack", "pio",       "dma",       "link",  "proto",
    "wait_recv", "wait_sync", "retry", "coll", "rma", "sched"};

}  // namespace

const char* ev_cat_name(EvCat c) {
    const auto i = static_cast<std::size_t>(c);
    return i < kEvCats ? kCatNames[i] : "?";
}

bool ev_cat_parse(std::string_view s, EvCat& out) {
    for (int i = 0; i < kEvCats; ++i) {
        if (s == kCatNames[i]) {
            out = static_cast<EvCat>(i);
            return true;
        }
    }
    return false;
}

std::uint32_t EventGraph::intern(std::string_view s) {
    const auto it = ids_.find(s);
    if (it != ids_.end()) return it->second;
    const auto id = static_cast<std::uint32_t>(names_.size());
    names_.emplace_back(s);
    ids_.emplace(names_.back(), id);
    return id;
}

std::uint64_t EventGraph::node(int track, EvCat cat, std::string_view name,
                               SimTime t0, SimTime t1, std::uint64_t bytes,
                               bool transparent) {
    if (!enabled_) return 0;
    if (nodes_.size() >= cap_) {
        ++dropped_;
        return 0;
    }
    EvNode n;
    n.t0 = t0;
    n.t1 = t1;
    n.bytes = bytes;
    n.prev = last(track);
    n.name = intern(name);
    n.track = track;
    n.cat = cat;
    // Wait states never carry attribution themselves; the walk chains
    // through to whatever released them.
    n.transparent = transparent || cat == EvCat::wait_recv ||
                    cat == EvCat::wait_sync || cat == EvCat::coll;
    nodes_.push_back(n);
    const auto id = static_cast<std::uint64_t>(nodes_.size());
    last_[track] = id;
    return id;
}

void EventGraph::edge(std::uint64_t from, std::uint64_t to, EvCat cat, int a,
                      int b) {
    if (!enabled_ || from == 0 || to == 0 || from >= to) return;
    EvEdge e;
    e.from = from;
    e.to = to;
    e.a = a;
    e.b = b;
    e.cat = cat;
    edges_.push_back(e);
}

void EventGraph::message(int src, int dst, std::uint64_t bytes, SimTime latency) {
    if (!enabled_) return;
    EvMsgCell& c = traffic_[{src, dst}];
    c.src = src;
    c.dst = dst;
    c.msgs += 1;
    c.bytes += bytes;
    c.lat_sum_ns += latency > 0 ? static_cast<std::uint64_t>(latency) : 0;
}

std::vector<EvMsgCell> EventGraph::messages() const {
    std::vector<EvMsgCell> out;
    out.reserve(traffic_.size());
    for (const auto& [key, cell] : traffic_) out.push_back(cell);
    return out;
}

int EventGraph::world() const {
    int w = 0;
    for (const auto& [track, rank] : track_rank_)
        if (rank + 1 > w) w = rank + 1;
    return w;
}

void EventGraph::clear() {
    nodes_.clear();
    edges_.clear();
    last_.clear();
    traffic_.clear();
    dropped_ = 0;
}

// ---------------------------------------------------------------------------
// JSONL serialization. One self-describing record per line, discriminated by
// its leading key: {"scimpi_evlog":1,...} header, {"track":..} rank map,
// {"n":..} node, {"e":..} edge, {"m":..} message cell, {"end":1,...} trailer.

Status EventGraph::write_jsonl(const std::string& path, SimTime sim_time) const {
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (f == nullptr)
        return Status::error(Errc::io_error, "evlog: cannot open '" + path +
                                                 "': " + std::strerror(errno));
    std::string out;
    out.reserve(256);
    char buf[192];
    bool ok = true;
    const auto flush = [&] {
        if (ok && std::fwrite(out.data(), 1, out.size(), f) != out.size()) ok = false;
        out.clear();
    };

    std::snprintf(buf, sizeof buf, "{\"scimpi_evlog\":1,\"world\":%d}\n", world());
    out += buf;
    for (const auto& [track, rank] : track_rank_) {
        std::snprintf(buf, sizeof buf, "{\"track\":%d,\"rank\":%d}\n", track, rank);
        out += buf;
    }
    flush();

    for (std::size_t i = 0; i < nodes_.size(); ++i) {
        const EvNode& n = nodes_[i];
        std::snprintf(buf, sizeof buf,
                      "{\"n\":%llu,\"k\":%d,\"c\":\"%s\",\"nm\":\"",
                      static_cast<unsigned long long>(i + 1), n.track,
                      ev_cat_name(n.cat));
        out += buf;
        json_escape(out, names_[n.name]);
        std::snprintf(buf, sizeof buf, "\",\"t0\":%lld,\"t1\":%lld",
                      static_cast<long long>(n.t0), static_cast<long long>(n.t1));
        out += buf;
        if (n.bytes != 0) {
            std::snprintf(buf, sizeof buf, ",\"b\":%llu",
                          static_cast<unsigned long long>(n.bytes));
            out += buf;
        }
        if (n.prev != 0) {
            std::snprintf(buf, sizeof buf, ",\"p\":%llu",
                          static_cast<unsigned long long>(n.prev));
            out += buf;
        }
        if (n.transparent) out += ",\"x\":1";
        out += "}\n";
        if (out.size() > 64 * 1024) flush();
    }
    flush();

    for (const EvEdge& e : edges_) {
        std::snprintf(buf, sizeof buf, "{\"e\":%llu,\"to\":%llu,\"c\":\"%s\"",
                      static_cast<unsigned long long>(e.from),
                      static_cast<unsigned long long>(e.to), ev_cat_name(e.cat));
        out += buf;
        if (e.a >= 0 || e.b >= 0) {
            std::snprintf(buf, sizeof buf, ",\"a\":%d,\"b\":%d", e.a, e.b);
            out += buf;
        }
        out += "}\n";
        if (out.size() > 64 * 1024) flush();
    }
    for (const auto& [key, c] : traffic_) {
        std::snprintf(buf, sizeof buf,
                      "{\"m\":%d,\"to\":%d,\"msgs\":%llu,\"b\":%llu,\"lat\":%llu}\n",
                      c.src, c.dst, static_cast<unsigned long long>(c.msgs),
                      static_cast<unsigned long long>(c.bytes),
                      static_cast<unsigned long long>(c.lat_sum_ns));
        out += buf;
        if (out.size() > 64 * 1024) flush();
    }

    std::snprintf(buf, sizeof buf,
                  "{\"end\":1,\"nodes\":%llu,\"edges\":%llu,\"dropped\":%llu,"
                  "\"sim_time_ns\":%llu}\n",
                  static_cast<unsigned long long>(nodes_.size()),
                  static_cast<unsigned long long>(edges_.size()),
                  static_cast<unsigned long long>(dropped_),
                  static_cast<unsigned long long>(sim_time < 0 ? 0 : sim_time));
    out += buf;
    flush();

    const int write_errno = errno;
    if (std::fclose(f) != 0)
        return Status::error(Errc::io_error, "evlog: close failed for '" + path +
                                                 "': " + std::strerror(errno));
    if (!ok)
        return Status::error(Errc::io_error, "evlog: short write to '" + path +
                                                 "': " + std::strerror(write_errno));
    return Status::ok();
}

// ---------------------------------------------------------------------------
// Loader. The format is machine-written with known key order, so a targeted
// field scanner is enough — this is NOT a general JSON parser and reads only
// logs produced by write_jsonl (and hand-written test fixtures that follow
// the same shape).

namespace {

bool find_i64(const std::string& line, const char* key, long long& out) {
    const std::string probe = std::string("\"") + key + "\":";
    const std::size_t pos = line.find(probe);
    if (pos == std::string::npos) return false;
    errno = 0;
    char* end = nullptr;
    const long long v = std::strtoll(line.c_str() + pos + probe.size(), &end, 10);
    if (end == line.c_str() + pos + probe.size() || errno == ERANGE) return false;
    out = v;
    return true;
}

bool find_str(const std::string& line, const char* key, std::string& out) {
    const std::string probe = std::string("\"") + key + "\":\"";
    const std::size_t pos = line.find(probe);
    if (pos == std::string::npos) return false;
    out.clear();
    for (std::size_t i = pos + probe.size(); i < line.size(); ++i) {
        const char c = line[i];
        if (c == '"') return true;
        if (c == '\\' && i + 1 < line.size()) {
            const char n = line[++i];
            switch (n) {
                case 'n': out += '\n'; break;
                case 't': out += '\t'; break;
                case 'r': out += '\r'; break;
                case 'b': out += '\b'; break;
                case 'f': out += '\f'; break;
                case 'u':
                    // Writer only emits \u00XX for control bytes; decode those.
                    if (i + 4 < line.size()) {
                        out += static_cast<char>(
                            std::strtol(line.substr(i + 1, 4).c_str(), nullptr, 16));
                        i += 4;
                    }
                    break;
                default: out += n; break;
            }
        } else {
            out += c;
        }
    }
    return false;  // unterminated string: torn line
}

}  // namespace

Result<EvLogLoaded> EventGraph::load_jsonl(const std::string& path) {
    std::FILE* f = std::fopen(path.c_str(), "r");
    if (f == nullptr)
        return Status::error(Errc::io_error, "evlog: cannot open '" + path +
                                                 "': " + std::strerror(errno));
    EvLogLoaded result;
    result.graph.enable();
    result.graph.set_cap(~std::size_t{0});
    result.truncated = true;  // until the trailer proves otherwise
    bool header_seen = false;
    std::string line;
    char chunk[1 << 16];
    std::string carry;
    bool done = false;
    while (!done) {
        const std::size_t got = std::fread(chunk, 1, sizeof chunk, f);
        if (got == 0) {
            done = true;
            line = carry;  // final unterminated line (torn trailer): ignore below
            carry.clear();
        } else {
            carry.append(chunk, got);
        }
        std::size_t start = 0;
        for (;;) {
            const std::size_t nl = carry.find('\n', start);
            if (nl == std::string::npos) break;
            line.assign(carry, start, nl - start);
            start = nl + 1;

            long long v = 0;
            if (!header_seen) {
                if (!find_i64(line, "scimpi_evlog", v) || v != 1) {
                    std::fclose(f);
                    return Status::error(Errc::invalid_argument,
                                         "evlog: '" + path +
                                             "' is not a scimpi event log");
                }
                if (find_i64(line, "world", v)) result.world = static_cast<int>(v);
                header_seen = true;
                continue;
            }
            if (find_i64(line, "end", v)) {
                result.truncated = false;
                if (find_i64(line, "sim_time_ns", v) && v >= 0)
                    result.sim_time_ns = static_cast<std::uint64_t>(v);
                continue;
            }
            if (find_i64(line, "track", v)) {
                const int track = static_cast<int>(v);
                if (find_i64(line, "rank", v))
                    result.graph.set_track_rank(track, static_cast<int>(v));
                continue;
            }
            if (find_i64(line, "n", v) && line.compare(0, 5, "{\"n\":") == 0) {
                long long track = 0, t0 = 0, t1 = 0, bytes = 0, x = 0;
                std::string cat_s, nm;
                EvCat cat = EvCat::compute;
                (void)find_i64(line, "k", track);
                (void)find_i64(line, "t0", t0);
                (void)find_i64(line, "t1", t1);
                (void)find_i64(line, "b", bytes);
                (void)find_i64(line, "x", x);
                if (find_str(line, "c", cat_s)) (void)ev_cat_parse(cat_s, cat);
                (void)find_str(line, "nm", nm);
                // node() re-derives prev from per-track order, matching the
                // writer's chain because nodes serialize in id order.
                (void)result.graph.node(static_cast<int>(track), cat, nm, t0, t1,
                                        bytes < 0 ? 0 : static_cast<std::uint64_t>(bytes),
                                        x != 0);
                continue;
            }
            if (find_i64(line, "e", v) && line.compare(0, 5, "{\"e\":") == 0) {
                const auto from = static_cast<std::uint64_t>(v);
                long long to = 0, a = -1, b = -1;
                std::string cat_s;
                EvCat cat = EvCat::sched;
                if (!find_i64(line, "to", to)) continue;
                (void)find_i64(line, "a", a);
                (void)find_i64(line, "b", b);
                if (find_str(line, "c", cat_s)) (void)ev_cat_parse(cat_s, cat);
                if (from >= 1 && to >= 1 &&
                    static_cast<std::uint64_t>(to) <= result.graph.nodes().size() &&
                    from <= result.graph.nodes().size())
                    result.graph.edge(from, static_cast<std::uint64_t>(to), cat,
                                      static_cast<int>(a), static_cast<int>(b));
                continue;
            }
            if (find_i64(line, "m", v) && line.compare(0, 5, "{\"m\":") == 0) {
                const int src = static_cast<int>(v);
                long long to = 0, msgs = 0, bytes = 0, lat = 0;
                if (!find_i64(line, "to", to)) continue;
                (void)find_i64(line, "msgs", msgs);
                (void)find_i64(line, "b", bytes);
                (void)find_i64(line, "lat", lat);
                EvMsgCell& c = result.graph.traffic_[{src, static_cast<int>(to)}];
                c.src = src;
                c.dst = static_cast<int>(to);
                c.msgs += msgs < 0 ? 0 : static_cast<std::uint64_t>(msgs);
                c.bytes += bytes < 0 ? 0 : static_cast<std::uint64_t>(bytes);
                c.lat_sum_ns += lat < 0 ? 0 : static_cast<std::uint64_t>(lat);
                continue;
            }
            // Unknown/torn record inside an otherwise valid log: skip.
        }
        carry.erase(0, start);
    }
    std::fclose(f);
    if (!header_seen)
        return Status::error(Errc::invalid_argument,
                             "evlog: '" + path + "' is empty or not a scimpi event log");
    if (result.truncated && result.sim_time_ns == 0 && !result.graph.nodes().empty()) {
        // Best-effort end time for truncated logs: the latest completion.
        SimTime end = 0;
        for (const EvNode& n : result.graph.nodes()) end = std::max(end, n.t1);
        result.sim_time_ns = static_cast<std::uint64_t>(end);
    }
    return result;
}

// ---------------------------------------------------------------------------
// Critical-path extraction.

namespace {

struct Pred {
    std::uint64_t from;
    const EvEdge* edge;  // nullptr for the program-order link
};

}  // namespace

CriticalPath critical_path(const EventGraph& g, SimTime end_time) {
    CriticalPath cp;
    if (end_time < 0) end_time = 0;
    cp.total_ns = static_cast<std::uint64_t>(end_time);
    const std::vector<EvNode>& nodes = g.nodes();

    const auto attr = [&](EvCat cat, int track, SimTime lo, SimTime hi, int la,
                          int lb) {
        if (hi <= lo) return;
        const auto ns = static_cast<std::uint64_t>(hi - lo);
        cp.cat_ns[static_cast<std::size_t>(cat)] += ns;
        if (cat == EvCat::link)
            cp.link_ns[std::to_string(la) + "->" + std::to_string(lb)] += ns;
        else if (const int rank = g.rank_of(track); rank >= 0)
            cp.rank_ns[rank] += ns;
        cp.segments.push_back({cat, lo, hi, track, la, lb});
    };

    if (nodes.empty()) {
        attr(EvCat::compute, -1, 0, end_time, -1, -1);
        return cp;
    }

    // Cross-edge predecessor index.
    std::vector<std::vector<const EvEdge*>> preds(nodes.size() + 1);
    for (const EvEdge& e : g.edges())
        if (e.to <= nodes.size() && e.from < e.to) preds[e.to].push_back(&e);

    // Start at the latest completion (ties: larger id, the later-scheduled).
    std::uint64_t cur = 1;
    for (std::uint64_t i = 2; i <= nodes.size(); ++i)
        if (nodes[i - 1].t1 >= nodes[cur - 1].t1) cur = i;

    SimTime cursor = end_time;
    // Node ids only ever step down (edges point forward in id space), so the
    // walk terminates; the step bound is a second guard for malformed logs.
    for (std::size_t guard = 0; guard <= nodes.size(); ++guard) {
        const EvNode& n = nodes[cur - 1];
        ++cp.steps;

        // Tail beyond this node (only the start node, defensively elsewhere):
        // nothing was happening on the path — application time.
        if (cursor > n.t1) {
            attr(n.transparent ? n.cat : EvCat::compute, n.track, n.t1, cursor, -1, -1);
            cursor = n.t1;
        }
        if (!n.transparent) {
            const SimTime lo = std::max<SimTime>(n.t0, 0);
            attr(n.cat, n.track, lo, std::min(cursor, n.t1), -1, -1);
            cursor = std::min(cursor, lo);
        }

        // Latest-finishing predecessor among the program-order link and all
        // cross edges; only earlier ids qualify (defends against bad logs).
        std::uint64_t best = n.prev < cur ? n.prev : 0;
        const EvEdge* best_edge = nullptr;
        for (const EvEdge* e : preds[cur]) {
            if (e->from >= cur) continue;
            if (best == 0 || nodes[e->from - 1].t1 > nodes[best - 1].t1 ||
                (nodes[e->from - 1].t1 == nodes[best - 1].t1 && e->from > best)) {
                best = e->from;
                best_edge = e;
            }
        }
        if (best == 0) {
            attr(EvCat::compute, n.track, 0, cursor, -1, -1);
            return cp;
        }
        const EvNode& p = nodes[best - 1];
        if (p.t1 < cursor) {
            // The gap the chosen dependency spans: an explicit edge charges
            // its own category (link gaps name the a->b pair and skip rank
            // blame); a program-order gap out of a transparent node keeps
            // the wait's category; otherwise the rank was computing.
            if (best_edge != nullptr) {
                attr(best_edge->cat, p.track, p.t1, cursor, best_edge->a,
                     best_edge->b);
            } else {
                attr(n.transparent ? n.cat : EvCat::compute, n.track, p.t1, cursor,
                     -1, -1);
            }
            cursor = p.t1;
        }
        cur = best;
    }
    // Guard tripped (cycle in a hand-corrupted log): close the books so the
    // invariant "categories tile total_ns" still holds.
    attr(EvCat::sched, nodes[cur - 1].track, 0, cursor, -1, -1);
    return cp;
}

}  // namespace scimpi::obs
