// Causal event graph: the substrate for offline critical-path analysis.
//
// Every sim-level completion event (a p2p protocol phase, a rendezvous
// handshake leg, an RMA op, a collective round, a pack/unpack, a fault
// retry backoff) is recorded as an interval node on a track (a sim process
// id, mapped to an MPI rank via set_track_rank). Nodes on one track chain
// implicitly in program order (`prev`); cross-track causality — a control
// message push observed by the peer's dispatch, a request completion waking
// a blocked Wait, a barrier exit enabled by the last rank's entry, a lock
// hand-over mirrored from scimpi-check's vector clocks — is an explicit
// edge carrying a gap category (link transit, protocol/sync wait, DES
// scheduling).
//
// critical_path() walks the graph backward from the last completion,
// tiling [0, end_time] exactly: active node intervals are attributed to
// their category, gaps between a node and its latest-finishing predecessor
// to the category of the edge that was followed. Wait nodes are
// *transparent* — they contribute no attribution of their own and the walk
// chains through their cross edge to the event that released them, so a
// late-sender wait is blamed on the rank that originated the delay chain
// (Scalasca-style root-cause propagation), not the rank that surfaced it.
//
// The graph serializes as line-oriented JSONL (SCIMPI_EVLOG /
// ClusterOptions::evlog); the writer always terminates the stream with a
// trailer record, and the loader tolerates its absence so logs from
// aborted runs stay readable. scimpi-analyze (tools/) consumes the format
// offline.
#pragma once

#include <array>
#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "common/status.hpp"
#include "common/units.hpp"

namespace scimpi::obs {

/// Critical-path attribution categories. Order is the serialization order;
/// append only.
enum class EvCat : std::uint8_t {
    compute = 0,  ///< application time between library events
    pack,         ///< datatype pack/unpack (staging copies, gather programs)
    pio,          ///< adapter programmed-IO stores (doorbells, inline payloads)
    dma,          ///< adapter DMA engine transfers
    link,         ///< SCI link transit (gap on a message edge)
    proto,        ///< protocol bookkeeping (matching, handshakes, ctrl handling)
    wait_recv,    ///< blocked in Wait/Recv/credit stall (transparent)
    wait_sync,    ///< blocked in barrier/fence/PSCW/lock (transparent)
    retry,        ///< fault retry backoff
    coll,         ///< collective algorithm residue (container, transparent)
    rma,          ///< one-sided op execution
    sched,        ///< DES scheduling / unattributed causal gap
};
inline constexpr int kEvCats = 12;
const char* ev_cat_name(EvCat c);
/// Inverse of ev_cat_name; false when `s` names no category.
bool ev_cat_parse(std::string_view s, EvCat& out);

struct EvNode {
    SimTime t0 = 0, t1 = 0;
    std::uint64_t bytes = 0;
    std::uint64_t prev = 0;   ///< program-order predecessor on same track (0 = none)
    std::uint32_t name = 0;   ///< interned label
    std::int32_t track = 0;   ///< sim process id
    EvCat cat = EvCat::compute;
    bool transparent = false; ///< contributes no attribution; walk passes through
};

struct EvEdge {
    std::uint64_t from = 0, to = 0;  ///< 1-based node ids, from < to
    std::int32_t a = -1, b = -1;     ///< SCI node pair for link naming ("a->b")
    EvCat cat = EvCat::sched;        ///< category charged to the gap this edge spans
};

/// Aggregated per-(src,dst) message traffic for the communication matrix.
struct EvMsgCell {
    std::int32_t src = 0, dst = 0;
    std::uint64_t msgs = 0;
    std::uint64_t bytes = 0;
    std::uint64_t lat_sum_ns = 0;
};

struct EvLogLoaded;

class EventGraph {
public:
    void enable() {
        enabled_ = true;
        if (nodes_.capacity() < kReserveNodes) nodes_.reserve(kReserveNodes);
    }
    void disable() { enabled_ = false; }
    [[nodiscard]] bool enabled() const { return enabled_; }

    /// Cap on recorded nodes; once reached, node() drops (counted in the
    /// trailer) so a runaway run cannot exhaust host memory.
    void set_cap(std::size_t cap) { cap_ = cap; }
    [[nodiscard]] std::uint64_t dropped() const { return dropped_; }

    /// Map a sim track (process id) to the MPI rank it executes for; async
    /// progress daemons map to the rank they serve.
    void set_track_rank(int track, int rank) { track_rank_[track] = rank; }
    [[nodiscard]] int rank_of(int track) const {
        const auto it = track_rank_.find(track);
        return it == track_rank_.end() ? -1 : it->second;
    }
    [[nodiscard]] int world() const;

    std::uint32_t intern(std::string_view s);
    [[nodiscard]] const std::string& name(std::uint32_t id) const {
        return names_.at(id);
    }

    /// Record an interval node, chained after the track's previous node.
    /// Returns the 1-based node id (0 while disabled or once capped).
    std::uint64_t node(int track, EvCat cat, std::string_view name, SimTime t0,
                       SimTime t1, std::uint64_t bytes = 0,
                       bool transparent = false);

    /// Record a cross-track causal edge. No-op if either endpoint is 0
    /// (disabled recording or a dropped node); `from` must precede `to`.
    void edge(std::uint64_t from, std::uint64_t to, EvCat cat, int a = -1,
              int b = -1);

    /// Accumulate one delivered message into the (src,dst) traffic matrix.
    void message(int src, int dst, std::uint64_t bytes, SimTime latency);

    /// Last node recorded on `track` (0 if none) — the implicit program-order
    /// head that the next node on the track will chain to.
    [[nodiscard]] std::uint64_t last(int track) const {
        const auto it = last_.find(track);
        return it == last_.end() ? 0 : it->second;
    }

    [[nodiscard]] const std::vector<EvNode>& nodes() const { return nodes_; }
    [[nodiscard]] const std::vector<EvEdge>& edges() const { return edges_; }
    [[nodiscard]] const EvNode& at(std::uint64_t id) const { return nodes_.at(id - 1); }
    [[nodiscard]] std::vector<EvMsgCell> messages() const;

    void clear();

    /// Serialize as JSONL: header, track map, nodes, edges, message cells,
    /// then a trailer record marking the log complete.
    [[nodiscard]] Status write_jsonl(const std::string& path, SimTime sim_time) const;

    /// Parse a log produced by write_jsonl. A missing trailer sets
    /// `truncated` instead of failing; malformed lines after a valid header
    /// are skipped (the tail of a torn write).
    static Result<EvLogLoaded> load_jsonl(const std::string& path);

private:
    static constexpr std::size_t kReserveNodes = 4096;

    struct SvHash {
        using is_transparent = void;
        std::size_t operator()(std::string_view s) const {
            return std::hash<std::string_view>{}(s);
        }
    };
    struct SvEq {
        using is_transparent = void;
        bool operator()(std::string_view x, std::string_view y) const { return x == y; }
    };

    bool enabled_ = false;
    std::size_t cap_ = 4u << 20;  // 4M nodes ≈ a few hundred MiB of JSONL
    std::uint64_t dropped_ = 0;
    std::vector<EvNode> nodes_;
    std::vector<EvEdge> edges_;
    std::map<int, std::uint64_t> last_;
    std::map<int, int> track_rank_;
    std::map<std::pair<int, int>, EvMsgCell> traffic_;
    std::vector<std::string> names_{std::string()};  // id 0 == ""
    std::unordered_map<std::string, std::uint32_t, SvHash, SvEq> ids_{
        {std::string(), 0}};
};

/// An event log parsed back from disk (scimpi-analyze, tests).
struct EvLogLoaded {
    EventGraph graph;
    std::uint64_t sim_time_ns = 0;
    int world = 0;
    bool truncated = false;  ///< no trailer: log from an aborted run
};

/// One attributed interval on the critical path (in backward-walk order;
/// reverse for a forward timeline overlay).
struct CritSeg {
    EvCat cat;
    SimTime t0, t1;
    int track;             ///< track blamed (edge gaps blame the origin side)
    std::int32_t link_a = -1, link_b = -1;  ///< set for link-category gaps
};

struct CriticalPath {
    std::uint64_t total_ns = 0;  ///< == end_time; categories tile it exactly
    std::array<std::uint64_t, kEvCats> cat_ns{};
    std::map<std::string, std::uint64_t> link_ns;  ///< "a->b" -> ns on path
    std::map<int, std::uint64_t> rank_ns;          ///< blamed rank -> ns
    std::vector<CritSeg> segments;
    std::size_t steps = 0;  ///< nodes visited by the walk

    [[nodiscard]] std::uint64_t category(EvCat c) const {
        return cat_ns[static_cast<std::size_t>(c)];
    }
};

/// Backward walk from the latest completion, attributing [0, end_time].
/// Deterministic: ties in predecessor choice break toward the larger node
/// id (the later-scheduled event).
CriticalPath critical_path(const EventGraph& g, SimTime end_time);

}  // namespace scimpi::obs
