#include "obs/metrics.hpp"

#include <cerrno>
#include <cstdio>
#include <cstring>

namespace scimpi::obs {

void json_escape(std::string& out, std::string_view s) {
    for (const char ch : s) {
        const auto c = static_cast<unsigned char>(ch);
        switch (c) {
            case '"': out += "\\\""; break;
            case '\\': out += "\\\\"; break;
            case '\b': out += "\\b"; break;
            case '\f': out += "\\f"; break;
            case '\n': out += "\\n"; break;
            case '\r': out += "\\r"; break;
            case '\t': out += "\\t"; break;
            default:
                if (c < 0x20) {
                    char buf[8];
                    std::snprintf(buf, sizeof buf, "\\u%04x", c);
                    out += buf;
                } else {
                    out.push_back(ch);
                }
        }
    }
}

Counter& MetricsRegistry::counter(std::string_view name) {
    const auto it = counters_.find(name);
    if (it != counters_.end()) return it->second;
    return counters_.emplace(std::string(name), Counter(std::string(name), &enabled_))
        .first->second;
}

Gauge& MetricsRegistry::gauge(std::string_view name) {
    const auto it = gauges_.find(name);
    if (it != gauges_.end()) return it->second;
    return gauges_.emplace(std::string(name), Gauge(std::string(name), &enabled_))
        .first->second;
}

std::uint64_t MetricsRegistry::value(std::string_view name) const {
    const auto it = counters_.find(name);
    return it == counters_.end() ? 0 : it->second.value();
}

void MetricsRegistry::reset() {
    for (auto& [_, c] : counters_) c.value_ = 0;
    for (auto& [_, g] : gauges_) {
        g.value_ = 0.0;
        g.max_ = 0.0;
    }
}

std::vector<std::pair<std::string, std::uint64_t>> MetricsRegistry::counters() const {
    std::vector<std::pair<std::string, std::uint64_t>> out;
    out.reserve(counters_.size());
    for (const auto& [name, c] : counters_) out.emplace_back(name, c.value());
    return out;  // std::map iteration is already name-sorted
}

std::vector<std::pair<std::string, double>> MetricsRegistry::gauge_maxima() const {
    std::vector<std::pair<std::string, double>> out;
    out.reserve(gauges_.size());
    for (const auto& [name, g] : gauges_) out.emplace_back(name, g.max());
    return out;
}

std::uint64_t RunReport::counter(std::string_view name) const {
    for (const auto& [n, v] : counters)
        if (n == name) return v;
    return 0;
}

double RunReport::gauge(std::string_view name) const {
    for (const auto& [n, v] : gauges)
        if (n == name) return v;
    return 0.0;
}

std::string RunReport::to_json() const {
    std::string out = "{\n";
    char buf[192];
    std::snprintf(buf, sizeof buf,
                  "  \"world\": %d,\n  \"nodes\": %d,\n  \"sim_seconds\": %.9f,\n"
                  "  \"events_dispatched\": %llu,\n  \"stats_enabled\": %s,\n",
                  world, nodes, sim_seconds,
                  static_cast<unsigned long long>(events_dispatched),
                  stats_enabled ? "true" : "false");
    out += buf;

    out += "  \"counters\": {";
    bool first = true;
    for (const auto& [name, value] : counters) {
        out += first ? "\n    \"" : ",\n    \"";
        first = false;
        json_escape(out, name);
        std::snprintf(buf, sizeof buf, "\": %llu",
                      static_cast<unsigned long long>(value));
        out += buf;
    }
    out += first ? "},\n" : "\n  },\n";

    out += "  \"gauges\": {";
    first = true;
    for (const auto& [name, value] : gauges) {
        out += first ? "\n    \"" : ",\n    \"";
        first = false;
        json_escape(out, name);
        std::snprintf(buf, sizeof buf, "\": %.6g", value);
        out += buf;
    }
    out += first ? "},\n" : "\n  },\n";

    out += "  \"links\": [";
    first = true;
    for (const Link& l : links) {
        out += first ? "\n    " : ",\n    ";
        first = false;
        std::snprintf(buf, sizeof buf,
                      "{\"id\": %d, \"payload_bytes\": %llu, \"wire_bytes\": %llu, "
                      "\"echo_bytes\": %llu}",
                      l.id, static_cast<unsigned long long>(l.payload_bytes),
                      static_cast<unsigned long long>(l.wire_bytes),
                      static_cast<unsigned long long>(l.echo_bytes));
        out += buf;
    }
    out += first ? "]\n" : "\n  ]\n";
    out += "}\n";
    return out;
}

Status RunReport::write_json(const std::string& path) const {
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (f == nullptr)
        return Status::error(Errc::io_error, "stats report: cannot open '" + path +
                                                 "': " + std::strerror(errno));
    const std::string json = to_json();
    const bool ok = std::fwrite(json.data(), 1, json.size(), f) == json.size();
    const int write_errno = errno;
    if (std::fclose(f) != 0)
        return Status::error(Errc::io_error, "stats report: close failed for '" + path +
                                                 "': " + std::strerror(errno));
    if (!ok)
        return Status::error(Errc::io_error, "stats report: short write to '" + path +
                                                 "': " + std::strerror(write_errno));
    return Status::ok();
}

}  // namespace scimpi::obs
