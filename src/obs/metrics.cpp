#include "obs/metrics.hpp"

#include <cerrno>
#include <cstdio>
#include <cstring>

namespace scimpi::obs {

void json_escape(std::string& out, std::string_view s) {
    for (const char ch : s) {
        const auto c = static_cast<unsigned char>(ch);
        switch (c) {
            case '"': out += "\\\""; break;
            case '\\': out += "\\\\"; break;
            case '\b': out += "\\b"; break;
            case '\f': out += "\\f"; break;
            case '\n': out += "\\n"; break;
            case '\r': out += "\\r"; break;
            case '\t': out += "\\t"; break;
            default:
                if (c < 0x20) {
                    char buf[8];
                    std::snprintf(buf, sizeof buf, "\\u%04x", c);
                    out += buf;
                } else {
                    out.push_back(ch);
                }
        }
    }
}

Counter& MetricsRegistry::counter(std::string_view name) {
    const auto it = counters_.find(name);
    if (it != counters_.end()) return it->second;
    return counters_.emplace(std::string(name), Counter(std::string(name), &enabled_))
        .first->second;
}

Gauge& MetricsRegistry::gauge(std::string_view name) {
    const auto it = gauges_.find(name);
    if (it != gauges_.end()) return it->second;
    return gauges_.emplace(std::string(name), Gauge(std::string(name), &enabled_))
        .first->second;
}

Histogram& MetricsRegistry::histogram(std::string_view name) {
    const auto it = histograms_.find(name);
    if (it != histograms_.end()) return it->second;
    return histograms_
        .emplace(std::string(name), Histogram(std::string(name), &enabled_))
        .first->second;
}

double Histogram::percentile(double p) const {
    if (count_ == 0) return 0.0;
    if (p <= 0.0) return static_cast<double>(min_);
    if (p >= 100.0) return static_cast<double>(max_);
    const double target = p / 100.0 * static_cast<double>(count_);
    double cum = 0.0;
    for (int i = 0; i < kBuckets; ++i) {
        const auto n = static_cast<double>(buckets_[static_cast<std::size_t>(i)]);
        if (n == 0.0) continue;
        if (cum + n >= target) {
            const double lo =
                i == 0 ? 0.0 : static_cast<double>(std::uint64_t{1} << (i - 1));
            const double hi =
                i == 0 ? 0.0
                       : (i >= 63 ? static_cast<double>(~std::uint64_t{0})
                                  : static_cast<double>((std::uint64_t{1} << i) - 1));
            double v = lo + (hi - lo) * ((target - cum) / n);
            // Clamp to the observed range: exact for single samples and for
            // populations confined to one bucket's edge.
            if (v < static_cast<double>(min_)) v = static_cast<double>(min_);
            if (v > static_cast<double>(max_)) v = static_cast<double>(max_);
            return v;
        }
        cum += n;
    }
    return static_cast<double>(max_);
}

std::string HistogramSnapshot::to_json() const {
    char buf[256];
    std::snprintf(buf, sizeof buf,
                  "{\"count\": %llu, \"sum\": %llu, \"min\": %llu, \"max\": %llu, "
                  "\"p50\": %.6g, \"p90\": %.6g, \"p99\": %.6g}",
                  static_cast<unsigned long long>(count),
                  static_cast<unsigned long long>(sum),
                  static_cast<unsigned long long>(min),
                  static_cast<unsigned long long>(max), p50, p90, p99);
    return buf;
}

std::uint64_t MetricsRegistry::value(std::string_view name) const {
    const auto it = counters_.find(name);
    return it == counters_.end() ? 0 : it->second.value();
}

void MetricsRegistry::reset() {
    for (auto& [_, c] : counters_) c.value_ = 0;
    for (auto& [_, g] : gauges_) {
        g.value_ = 0.0;
        g.max_ = 0.0;
    }
    for (auto& [_, h] : histograms_) {
        h.count_ = 0;
        h.sum_ = 0;
        h.min_ = 0;
        h.max_ = 0;
        h.buckets_.fill(0);
    }
}

std::vector<std::pair<std::string, std::uint64_t>> MetricsRegistry::counters() const {
    std::vector<std::pair<std::string, std::uint64_t>> out;
    out.reserve(counters_.size());
    for (const auto& [name, c] : counters_) out.emplace_back(name, c.value());
    return out;  // std::map iteration is already name-sorted
}

std::vector<std::pair<std::string, double>> MetricsRegistry::gauge_maxima() const {
    std::vector<std::pair<std::string, double>> out;
    out.reserve(gauges_.size());
    for (const auto& [name, g] : gauges_) out.emplace_back(name, g.max());
    return out;
}

std::vector<HistogramSnapshot> MetricsRegistry::histograms() const {
    std::vector<HistogramSnapshot> out;
    out.reserve(histograms_.size());
    for (const auto& [name, h] : histograms_) {
        HistogramSnapshot s;
        s.name = name;
        s.count = h.count();
        s.sum = h.sum();
        s.min = h.min();
        s.max = h.max();
        s.p50 = h.percentile(50.0);
        s.p90 = h.percentile(90.0);
        s.p99 = h.percentile(99.0);
        out.push_back(std::move(s));
    }
    return out;  // std::map iteration is already name-sorted
}

std::uint64_t RunReport::counter(std::string_view name) const {
    for (const auto& [n, v] : counters)
        if (n == name) return v;
    return 0;
}

double RunReport::gauge(std::string_view name) const {
    for (const auto& [n, v] : gauges)
        if (n == name) return v;
    return 0.0;
}

const HistogramSnapshot* RunReport::histogram(std::string_view name) const {
    for (const HistogramSnapshot& h : histograms)
        if (h.name == name) return &h;
    return nullptr;
}

const TimeSeries* RunReport::series(std::string_view name) const {
    for (const TimeSeries& ts : timeseries)
        if (ts.name == name) return &ts;
    return nullptr;
}

std::string TimeSeries::to_json() const {
    std::string out = "{\"name\": \"";
    json_escape(out, name);
    out += "\", \"t\": [";
    char buf[32];
    for (std::size_t i = 0; i < t.size(); ++i) {
        if (i != 0) out += ", ";
        std::snprintf(buf, sizeof buf, "%llu",
                      static_cast<unsigned long long>(t[i]));
        out += buf;
    }
    out += "], \"v\": [";
    for (std::size_t i = 0; i < v.size(); ++i) {
        if (i != 0) out += ", ";
        std::snprintf(buf, sizeof buf, "%.6g", v[i]);
        out += buf;
    }
    out += "]}";
    return out;
}

std::string RunReport::to_json() const {
    std::string out = "{\n";
    char buf[256];
    std::snprintf(buf, sizeof buf,
                  "  \"schema_version\": %d,\n  \"world\": %d,\n  \"nodes\": %d,\n"
                  "  \"sim_seconds\": %.9f,\n  \"sim_time_ns\": %llu,\n"
                  "  \"events_dispatched\": %llu,\n  \"stats_enabled\": %s,\n"
                  "  \"profile_enabled\": %s,\n  \"check_enabled\": %s,\n"
                  "  \"seed\": %llu,\n  \"fault_seed\": %llu,\n",
                  schema_version, world, nodes, sim_seconds,
                  static_cast<unsigned long long>(sim_time_ns),
                  static_cast<unsigned long long>(events_dispatched),
                  stats_enabled ? "true" : "false",
                  profile_enabled ? "true" : "false",
                  check_enabled ? "true" : "false",
                  static_cast<unsigned long long>(seed),
                  static_cast<unsigned long long>(fault_seed));
    out += buf;
    out += "  \"fault_spec\": \"";
    json_escape(out, fault_spec);
    out += "\",\n";
    std::snprintf(buf, sizeof buf,
                  "  \"wall_ns\": %llu,\n  \"events_per_sec_wall\": %.6g,\n"
                  "  \"wall_per_sim_second\": %.6g,\n"
                  "  \"record_cadence_ns\": %llu,\n",
                  static_cast<unsigned long long>(wall_ns), events_per_sec_wall,
                  wall_per_sim_second,
                  static_cast<unsigned long long>(record_cadence_ns));
    out += buf;

    out += "  \"counters\": {";
    bool first = true;
    for (const auto& [name, value] : counters) {
        out += first ? "\n    \"" : ",\n    \"";
        first = false;
        json_escape(out, name);
        std::snprintf(buf, sizeof buf, "\": %llu",
                      static_cast<unsigned long long>(value));
        out += buf;
    }
    out += first ? "},\n" : "\n  },\n";

    out += "  \"gauges\": {";
    first = true;
    for (const auto& [name, value] : gauges) {
        out += first ? "\n    \"" : ",\n    \"";
        first = false;
        json_escape(out, name);
        std::snprintf(buf, sizeof buf, "\": %.6g", value);
        out += buf;
    }
    out += first ? "},\n" : "\n  },\n";

    out += "  \"histograms\": {";
    first = true;
    for (const HistogramSnapshot& h : histograms) {
        out += first ? "\n    \"" : ",\n    \"";
        first = false;
        json_escape(out, h.name);
        out += "\": ";
        out += h.to_json();
    }
    out += first ? "},\n" : "\n  },\n";

    out += "  \"profiles\": [";
    first = true;
    for (const RankProfile& p : profiles) {
        out += first ? "\n    " : ",\n    ";
        first = false;
        std::snprintf(buf, sizeof buf, "{\"rank\": %d, \"total_ns\": %llu, ",
                      p.rank, static_cast<unsigned long long>(p.total_ns));
        out += buf;
        out += "\"states\": {";
        for (int s = 0; s < kProfStates; ++s) {
            if (s != 0) out += ", ";
            std::snprintf(buf, sizeof buf, "\"%s\": %llu",
                          prof_state_name(static_cast<ProfState>(s)),
                          static_cast<unsigned long long>(
                              p.state_ns[static_cast<std::size_t>(s)]));
            out += buf;
        }
        std::snprintf(buf, sizeof buf,
                      "}, \"late_senders\": %llu, \"late_receivers\": %llu, "
                      "\"late_sender_wait_ns\": %llu, \"late_receiver_wait_ns\": %llu, ",
                      static_cast<unsigned long long>(p.late_senders),
                      static_cast<unsigned long long>(p.late_receivers),
                      static_cast<unsigned long long>(p.late_sender_wait_ns),
                      static_cast<unsigned long long>(p.late_receiver_wait_ns));
        out += buf;
        const double ratio =
            p.comm_window_ns > 0
                ? static_cast<double>(p.overlap_ns) /
                      static_cast<double>(p.comm_window_ns)
                : 0.0;
        std::snprintf(buf, sizeof buf,
                      "\"overlap_ops\": %llu, \"overlap_ns\": %llu, "
                      "\"comm_window_ns\": %llu, \"overlap_ratio\": %.6f}",
                      static_cast<unsigned long long>(p.overlap_ops),
                      static_cast<unsigned long long>(p.overlap_ns),
                      static_cast<unsigned long long>(p.comm_window_ns), ratio);
        out += buf;
    }
    out += first ? "],\n" : "\n  ],\n";

    out += "  \"violations\": [";
    first = true;
    for (const Violation& v : violations) {
        out += first ? "\n    " : ",\n    ";
        first = false;
        out += "{\"kind\": \"";
        json_escape(out, v.kind);
        std::snprintf(buf, sizeof buf,
                      "\", \"win\": %d, \"rank_a\": %d, \"rank_b\": %d, "
                      "\"byte_lo\": %llu, \"byte_hi\": %llu, "
                      "\"time_a\": %llu, \"time_b\": %llu, \"detail\": \"",
                      v.win, v.rank_a, v.rank_b,
                      static_cast<unsigned long long>(v.byte_lo),
                      static_cast<unsigned long long>(v.byte_hi),
                      static_cast<unsigned long long>(v.time_a),
                      static_cast<unsigned long long>(v.time_b));
        out += buf;
        json_escape(out, v.detail);
        out += "\"}";
    }
    out += first ? "],\n" : "\n  ],\n";
    std::snprintf(buf, sizeof buf, "  \"check_suppressed\": %llu,\n",
                  static_cast<unsigned long long>(check_suppressed));
    out += buf;

    out += "  \"links\": [";
    first = true;
    for (const Link& l : links) {
        out += first ? "\n    " : ",\n    ";
        first = false;
        std::snprintf(buf, sizeof buf,
                      "{\"id\": %d, \"payload_bytes\": %llu, \"wire_bytes\": %llu, "
                      "\"echo_bytes\": %llu}",
                      l.id, static_cast<unsigned long long>(l.payload_bytes),
                      static_cast<unsigned long long>(l.wire_bytes),
                      static_cast<unsigned long long>(l.echo_bytes));
        out += buf;
    }
    out += first ? "],\n" : "\n  ],\n";

    out += "  \"timeseries\": [";
    first = true;
    for (const TimeSeries& ts : timeseries) {
        out += first ? "\n    " : ",\n    ";
        first = false;
        out += ts.to_json();
    }
    out += first ? "],\n" : "\n  ],\n";

    out += "  \"critical_path\": {";
    std::snprintf(buf, sizeof buf,
                  "\"enabled\": %s, \"total_ns\": %llu, \"steps\": %llu",
                  critical_path.enabled ? "true" : "false",
                  static_cast<unsigned long long>(critical_path.total_ns),
                  static_cast<unsigned long long>(critical_path.steps));
    out += buf;
    out += ", \"categories\": {";
    first = true;
    for (const auto& [name, ns] : critical_path.categories) {
        out += first ? "\"" : ", \"";
        first = false;
        json_escape(out, name);
        std::snprintf(buf, sizeof buf, "\": %llu",
                      static_cast<unsigned long long>(ns));
        out += buf;
    }
    out += "}, \"links\": {";
    first = true;
    for (const auto& [name, ns] : critical_path.links) {
        out += first ? "\"" : ", \"";
        first = false;
        json_escape(out, name);
        std::snprintf(buf, sizeof buf, "\": %llu",
                      static_cast<unsigned long long>(ns));
        out += buf;
    }
    out += "}, \"ranks\": {";
    first = true;
    for (const auto& [rank, ns] : critical_path.ranks) {
        std::snprintf(buf, sizeof buf, "%s\"%d\": %llu", first ? "" : ", ", rank,
                      static_cast<unsigned long long>(ns));
        first = false;
        out += buf;
    }
    out += "}},\n";

    out += "  \"explore\": {";
    std::snprintf(buf, sizeof buf,
                  "\"enabled\": %s, \"found\": %s, \"exhausted\": %s, "
                  "\"schedules\": %llu, \"replays\": %llu, \"pruned\": %llu, "
                  "\"choice_points\": %llu, \"trace_decisions\": %llu, "
                  "\"fuzz_ns\": %llu, \"wall_seconds\": %.6g, "
                  "\"schedules_per_sec\": %.6g, \"trace_file\": \"",
                  explore.enabled ? "true" : "false",
                  explore.found ? "true" : "false",
                  explore.exhausted ? "true" : "false",
                  static_cast<unsigned long long>(explore.schedules),
                  static_cast<unsigned long long>(explore.replays),
                  static_cast<unsigned long long>(explore.pruned),
                  static_cast<unsigned long long>(explore.choice_points),
                  static_cast<unsigned long long>(explore.trace_decisions),
                  static_cast<unsigned long long>(explore.fuzz_ns),
                  explore.wall_seconds, explore.schedules_per_sec);
    out += buf;
    json_escape(out, explore.trace_file);
    out += "\"},\n";

    out += "  \"hotspots\": [";
    first = true;
    for (const HotSpot& h : hotspots) {
        out += first ? "\n    " : ",\n    ";
        first = false;
        std::snprintf(buf, sizeof buf,
                      "{\"link\": %d, \"peak_util\": %.6g, \"peak_t_ns\": %llu, "
                      "\"mean_util\": %.6g}",
                      h.link, h.peak_util,
                      static_cast<unsigned long long>(h.peak_t_ns), h.mean_util);
        out += buf;
    }
    out += first ? "]\n" : "\n  ]\n";
    out += "}\n";
    return out;
}

Status RunReport::write_json(const std::string& path) const {
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (f == nullptr)
        return Status::error(Errc::io_error, "stats report: cannot open '" + path +
                                                 "': " + std::strerror(errno));
    const std::string json = to_json();
    const bool ok = std::fwrite(json.data(), 1, json.size(), f) == json.size();
    const int write_errno = errno;
    if (std::fclose(f) != 0)
        return Status::error(Errc::io_error, "stats report: close failed for '" + path +
                                                 "': " + std::strerror(errno));
    if (!ok)
        return Status::error(Errc::io_error, "stats report: short write to '" + path +
                                                 "': " + std::strerror(write_errno));
    return Status::ok();
}

}  // namespace scimpi::obs
