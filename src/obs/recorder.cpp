#include "obs/recorder.hpp"

#include <algorithm>
#include <cstdio>
#include <cstdlib>

namespace scimpi::obs {

std::vector<HotSpot> congestion_hotspots(const std::vector<TimeSeries>& series,
                                         int k) {
    std::vector<HotSpot> spots;
    for (const TimeSeries& s : series) {
        // %n demands the full "link<N>.util" name: sscanf assigns %d before
        // noticing a literal mismatch, so "link2.wire_bytes" would otherwise
        // also parse as link 2.
        int link = -1, consumed = 0;
        std::sscanf(s.name.c_str(), "link%d.util%n", &link, &consumed);
        if (link < 0 || consumed != static_cast<int>(s.name.size())) continue;
        HotSpot h;
        h.link = link;
        // Time-weighted mean: each sample i covers the window ending at t[i].
        double weighted = 0.0;
        std::uint64_t span = 0;
        for (std::size_t i = 0; i < s.v.size(); ++i) {
            if (s.v[i] > h.peak_util) {
                h.peak_util = s.v[i];
                h.peak_t_ns = s.t[i];
            }
            const std::uint64_t w = i == 0 ? 0 : s.t[i] - s.t[i - 1];
            weighted += s.v[i] * static_cast<double>(w);
            span += w;
        }
        if (h.peak_util <= 0.0) continue;  // idle link: not a hot spot
        h.mean_util = span == 0 ? 0.0 : weighted / static_cast<double>(span);
        spots.push_back(h);
    }
    std::sort(spots.begin(), spots.end(), [](const HotSpot& a, const HotSpot& b) {
        return a.peak_util != b.peak_util ? a.peak_util > b.peak_util
                                          : a.link < b.link;
    });
    if (k >= 0 && spots.size() > static_cast<std::size_t>(k))
        spots.resize(static_cast<std::size_t>(k));
    return spots;
}

void Recorder::configure(const Options& opt) {
    opt_ = opt;
    if (opt_.capacity < 4) opt_.capacity = 4;  // decimation needs headroom
}

void Recorder::add_gauge(std::string name, Probe probe, Gauge* mirror) {
    sources_.push_back({std::move(name), std::move(probe), mirror, {}});
}

void Recorder::add_cumulative(std::string name, Probe probe) {
    sources_.push_back({std::move(name), std::move(probe), nullptr, {}});
}

void Recorder::add_rate(std::string out, std::string src, double scale) {
    derived_.push_back({std::move(out), std::move(src), std::string(), scale});
}

void Recorder::add_ratio(std::string out, std::string num, std::string den,
                         double scale) {
    derived_.push_back({std::move(out), std::move(num), std::move(den), scale});
}

void Recorder::sample(SimTime now) {
    if (!enabled()) return;
    if (tick_++ % stride_ != 0) return;  // decimated: skip this boundary
    t_.push_back(static_cast<std::uint64_t>(now));
    for (Source& s : sources_) {
        const double v = s.probe ? s.probe() : 0.0;
        s.v.push_back(v);
        if (s.mirror != nullptr) s.mirror->set(v);
    }
    if (t_.size() >= opt_.capacity) decimate();
}

void Recorder::decimate() {
    // Keep every other sample (the even retained indices) and double the
    // stride so future boundaries match the new spacing.
    const auto keep = [](auto& vec) {
        std::size_t w = 0;
        for (std::size_t r = 0; r < vec.size(); r += 2) vec[w++] = vec[r];
        vec.resize(w);
    };
    keep(t_);
    for (Source& s : sources_) keep(s.v);
    stride_ *= 2;
    ++decimations_;
}

const std::vector<double>* Recorder::find_raw(const std::string& name) const {
    for (const Source& s : sources_)
        if (s.name == name) return &s.v;
    return nullptr;
}

std::vector<TimeSeries> Recorder::series() const {
    std::vector<TimeSeries> out;
    out.reserve(sources_.size() + derived_.size());
    for (const Source& s : sources_) out.push_back({s.name, t_, s.v});
    for (const Derived& d : derived_) {
        const std::vector<double>* num = find_raw(d.num);
        if (num == nullptr) continue;
        const std::vector<double>* den = d.den.empty() ? nullptr : find_raw(d.den);
        if (!d.den.empty() && den == nullptr) continue;
        TimeSeries ts;
        ts.name = d.name;
        for (std::size_t i = 1; i < t_.size(); ++i) {
            const double dn = (*num)[i] - (*num)[i - 1];
            const double dd = den != nullptr
                                  ? (*den)[i] - (*den)[i - 1]
                                  : static_cast<double>(t_[i] - t_[i - 1]);
            if (dd <= 0.0) continue;  // stalled denominator: no window
            ts.t.push_back(t_[i]);
            ts.v.push_back(dn / dd * d.scale);
        }
        out.push_back(std::move(ts));
    }
    return out;
}

void Recorder::clear() {
    t_.clear();
    for (Source& s : sources_) s.v.clear();
    tick_ = 0;
    stride_ = 1;
    decimations_ = 0;
}

}  // namespace scimpi::obs
