// Time-series flight recorder: a sim-time-driven sampler that periodically
// snapshots registered probes (instantaneous gauges, cumulative counters)
// into ring-buffered time series.
//
// Design:
//   * the DES engine drives sampling (Engine::set_sampler): whenever the
//     event loop's clock first reaches the next cadence boundary it calls
//     Recorder::sample() *between* events, so sampling never perturbs
//     simulated time and a disabled recorder costs one pointer test per
//     dispatched event,
//   * bounded memory — all series share one time base capped at `capacity`
//     samples; on overflow every other retained sample is dropped and the
//     effective cadence doubles (classic decimating flight recorder), so a
//     long run degrades resolution instead of growing without bound,
//   * cumulative vs gauge — probes that read monotone counters are declared
//     cumulative; rates and ratios are derived at *export* time from
//     consecutive retained samples, which keeps them exact across
//     decimation (a dropped sample widens the window, it never skews the
//     delta),
//   * export — series() returns raw + derived series for RunReport v4;
//     congestion_hotspots() ranks the "link<N>.util" series into the
//     report's top-K hot-spot table.
//
// Like the rest of obs/, this header depends only on common/ so every layer
// may include it; the sim engine is wired to it through a std::function.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "common/units.hpp"
#include "obs/metrics.hpp"

namespace scimpi::obs {

// TimeSeries and HotSpot — the report-schema types the recorder produces —
// live in obs/metrics.hpp beside RunReport.

/// Top `k` "link<N>.util" series of `series` by peak value, descending;
/// links that never carried traffic (all-zero) are skipped.
[[nodiscard]] std::vector<HotSpot> congestion_hotspots(
    const std::vector<TimeSeries>& series, int k);

class Recorder {
public:
    struct Options {
        SimTime cadence = 0;          ///< ns between samples; 0 = disabled
        std::size_t capacity = 2048;  ///< retained samples before decimation
    };

    void configure(const Options& opt);
    [[nodiscard]] bool enabled() const { return opt_.cadence > 0; }
    /// Configured base cadence (ns); the effective cadence after decimation
    /// is cadence() * stride().
    [[nodiscard]] SimTime cadence() const { return opt_.cadence; }
    [[nodiscard]] std::uint64_t stride() const { return stride_; }
    [[nodiscard]] std::size_t sample_count() const { return t_.size(); }
    [[nodiscard]] std::uint64_t decimations() const { return decimations_; }

    using Probe = std::function<double()>;

    /// Register an instantaneous probe (queue depth, load level). When
    /// `mirror` is non-null every sampled value is also set on that registry
    /// gauge, so the report's gauge table carries the observed maximum.
    void add_gauge(std::string name, Probe probe, Gauge* mirror = nullptr);

    /// Register a monotone cumulative probe (byte/event counters). Exported
    /// raw; rates derive from it via add_rate/add_ratio.
    void add_cumulative(std::string name, Probe probe);

    /// Derive, at export time, out[i] = (src[i]-src[i-1]) / (t[i]-t[i-1])
    /// * scale over consecutive retained samples of cumulative series
    /// `src`. With scale = 1e9 a per-ns delta becomes a per-second rate;
    /// with scale = 1/capacity_per_ns a byte counter becomes utilization.
    void add_rate(std::string out, std::string src, double scale);

    /// Derive out[i] = (num[i]-num[i-1]) / (den[i]-den[i-1]) * scale from
    /// two cumulative series (e.g. events per wall second). Windows where
    /// the denominator did not advance are skipped.
    void add_ratio(std::string out, std::string num, std::string den, double scale);

    /// Take one sample of every probe at simulated time `now` (ns).
    /// Called by the DES engine at cadence boundaries; after a decimation
    /// only every stride()-th call is recorded.
    void sample(SimTime now);

    /// Export every raw and derived series (raw first, registration order).
    [[nodiscard]] std::vector<TimeSeries> series() const;

    /// Drop all samples (registrations survive); used on cluster reset.
    void clear();

private:
    struct Source {
        std::string name;
        Probe probe;
        Gauge* mirror = nullptr;
        std::vector<double> v;
    };
    struct Derived {
        std::string name;
        std::string num;
        std::string den;  ///< empty: denominator is the sample time axis
        double scale = 1.0;
    };

    void decimate();
    [[nodiscard]] const std::vector<double>* find_raw(const std::string& name) const;

    Options opt_;
    std::vector<Source> sources_;
    std::vector<Derived> derived_;
    std::vector<std::uint64_t> t_;
    std::uint64_t tick_ = 0;        ///< cadence boundaries seen
    std::uint64_t stride_ = 1;      ///< record every stride-th boundary
    std::uint64_t decimations_ = 0;
};

}  // namespace scimpi::obs
