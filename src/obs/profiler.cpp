#include "obs/profiler.hpp"

#include "common/status.hpp"

namespace scimpi::obs {

const char* prof_state_name(ProfState s) {
    switch (s) {
        case ProfState::compute: return "compute";
        case ProfState::pack: return "pack";
        case ProfState::pio_write: return "pio_write";
        case ProfState::dma: return "dma";
        case ProfState::wait_recv: return "wait_recv";
        case ProfState::wait_sync: return "wait_sync";
        case ProfState::retry_backoff: return "retry_backoff";
    }
    return "?";
}

void Profiler::attribute(Track& t, SimTime now) {
    const ProfState cur = t.stack.empty() ? ProfState::compute : t.stack.back();
    t.ns[static_cast<std::size_t>(cur)] += static_cast<std::uint64_t>(now - t.last);
    t.last = now;
}

void Profiler::push(int track, ProfState s, SimTime now) {
    if (!enabled_) return;
    Track& t = tracks_[track];
    attribute(t, now);
    t.stack.push_back(s);
}

void Profiler::pop(int track, SimTime now) {
    if (!enabled_) return;
    Track& t = tracks_[track];
    SCIMPI_REQUIRE(!t.stack.empty(), "profiler pop without matching push");
    attribute(t, now);
    t.stack.pop_back();
}

void Profiler::late_sender(int track, SimTime waited) {
    if (!enabled_) return;
    Track& t = tracks_[track];
    ++t.late_senders;
    t.late_sender_wait += static_cast<std::uint64_t>(waited);
}

void Profiler::late_receiver(int track, SimTime waited) {
    if (!enabled_) return;
    Track& t = tracks_[track];
    ++t.late_receivers;
    t.late_receiver_wait += static_cast<std::uint64_t>(waited);
}

void Profiler::comm_overlap(int track, std::uint64_t overlapped_ns,
                            std::uint64_t window_ns) {
    if (!enabled_) return;
    Track& t = tracks_[track];
    ++t.overlap_ops;
    t.overlap_ns += overlapped_ns;
    t.comm_window_ns += window_ns;
}

Profiler::Snapshot Profiler::snapshot(int track, SimTime now) const {
    Snapshot out;
    const auto it = tracks_.find(track);
    if (it == tracks_.end()) {
        // Never instrumented: the whole run was (by definition) compute.
        out.state_ns[static_cast<std::size_t>(ProfState::compute)] =
            static_cast<std::uint64_t>(now);
        out.total_ns = static_cast<std::uint64_t>(now);
        return out;
    }
    Track t = it->second;  // copy: finalize without mutating live state
    attribute(t, now);
    out.state_ns = t.ns;
    for (const std::uint64_t v : out.state_ns) out.total_ns += v;
    out.late_senders = t.late_senders;
    out.late_receivers = t.late_receivers;
    out.late_sender_wait_ns = t.late_sender_wait;
    out.late_receiver_wait_ns = t.late_receiver_wait;
    out.overlap_ops = t.overlap_ops;
    out.overlap_ns = t.overlap_ns;
    out.comm_window_ns = t.comm_window_ns;
    return out;
}

}  // namespace scimpi::obs
