// Boundary-condition tests: exact protocol-threshold edges, resized-type
// tiling, simulated-clock monotonicity and arena accounting after heavy use.
#include <gtest/gtest.h>

#include <numeric>
#include <vector>

#include "mpi/comm.hpp"

namespace scimpi::mpi {
namespace {

TEST(Boundary, ExactProtocolThresholdEdges) {
    ClusterOptions opt;
    opt.nodes = 2;
    Cluster c(opt);
    const std::size_t short_thr = opt.cfg.short_threshold;
    const std::size_t eager_thr = opt.cfg.eager_threshold;
    c.run([&](Comm& comm) {
        const auto t = Datatype::byte_();
        // Sizes straddling both protocol switches, including the exact edge.
        const std::size_t sizes[] = {short_thr - 1, short_thr, short_thr + 1,
                                     eager_thr - 1, eager_thr, eager_thr + 1};
        for (std::size_t i = 0; i < std::size(sizes); ++i) {
            std::vector<std::byte> buf(sizes[i], std::byte{static_cast<unsigned char>(i)});
            if (comm.rank() == 0) {
                ASSERT_TRUE(comm.send(buf.data(), static_cast<int>(buf.size()), t, 1,
                                      static_cast<int>(i)));
            } else {
                std::vector<std::byte> out(sizes[i]);
                ASSERT_TRUE(comm.recv(out.data(), static_cast<int>(out.size()), t, 0,
                                      static_cast<int>(i))
                                .status);
                EXPECT_EQ(out, buf) << "size " << sizes[i];
            }
        }
    });
    // Inclusive thresholds: 127 and 128 go short; 129, 16383 and 16384 go
    // eager; only 16385 needs a rendezvous.
    const auto& st = c.rank_state(0).stats();
    EXPECT_GE(st.sends_short, 2u);  // plus finalize-barrier tokens
    EXPECT_EQ(st.sends_eager, 3u);
    EXPECT_EQ(st.sends_rndv, 1u);
}

TEST(Boundary, ResizedTypeTilesWithCustomExtent) {
    // A resized vector whose instances interleave: count > 1 must honour the
    // overridden extent.
    Cluster c(ClusterOptions{});
    c.run([](Comm& comm) {
        // One double, extent stretched to 24 bytes: instances at 0, 24, 48...
        auto t = Datatype::resized(Datatype::float64(), 0, 24);
        if (comm.rank() == 0) {
            std::vector<double> buf(12, 0.0);
            buf[0] = 1.0;
            buf[3] = 2.0;
            buf[6] = 3.0;
            ASSERT_TRUE(comm.send(buf.data(), 3, t, 1, 0));
        } else {
            std::vector<double> out(12, -1.0);
            ASSERT_TRUE(comm.recv(out.data(), 3, t, 0, 0).status);
            EXPECT_EQ(out[0], 1.0);
            EXPECT_EQ(out[3], 2.0);
            EXPECT_EQ(out[6], 3.0);
            EXPECT_EQ(out[1], -1.0);  // padding untouched
        }
    });
}

TEST(Boundary, WtimeIsMonotoneAcrossOperations) {
    ClusterOptions opt;
    opt.nodes = 2;
    Cluster c(opt);
    c.run([](Comm& comm) {
        double prev = comm.wtime();
        for (int i = 0; i < 5; ++i) {
            comm.barrier();
            std::vector<double> buf(1024, 1.0);
            const int peer = 1 - comm.rank();
            ASSERT_TRUE(comm.sendrecv(buf.data(), 1024, Datatype::float64(),
                                      peer, i, buf.data(), 1024,
                                      Datatype::float64(), peer, i));
            const double now = comm.wtime();
            EXPECT_GE(now, prev);
            prev = now;
        }
    });
}

TEST(Boundary, ArenaFullyReleasedAfterHeavyRendezvousTraffic) {
    ClusterOptions opt;
    opt.nodes = 2;
    Cluster c(opt);
    c.run([](Comm& comm) {
        const auto t = Datatype::float64();
        std::vector<double> buf(512_KiB / 8, 1.0);
        for (int i = 0; i < 8; ++i) {
            if (comm.rank() == 0)
                ASSERT_TRUE(comm.send(buf.data(), static_cast<int>(buf.size()), t, 1, i));
            else
                ASSERT_TRUE(
                    comm.recv(buf.data(), static_cast<int>(buf.size()), t, 0, i).status);
        }
    });
    // Every per-transfer ring and staging buffer must be returned.
    EXPECT_EQ(c.memory(0).bytes_in_use(), 0u);
    EXPECT_EQ(c.memory(1).bytes_in_use(), 0u);
}

TEST(Boundary, ManySmallMessagesKeepFifoPerPairUnderLoad) {
    ClusterOptions opt;
    opt.nodes = 2;
    opt.procs_per_node = 2;
    Cluster c(opt);
    c.run([](Comm& comm) {
        const auto t = Datatype::int32();
        const int peer = comm.rank() ^ 2;  // cross-node pairs
        if (comm.rank() < 2) {
            for (int i = 0; i < 200; ++i)
                ASSERT_TRUE(comm.send(&i, 1, t, peer, 3));
        } else {
            for (int i = 0; i < 200; ++i) {
                int v = -1;
                ASSERT_TRUE(comm.recv(&v, 1, t, peer, 3).status);
                ASSERT_EQ(v, i);
            }
        }
    });
}

TEST(Boundary, RecvCountLargerThanMessageIsFine) {
    // MPI allows receiving into a bigger buffer; r.bytes reports actual size.
    ClusterOptions opt;
    opt.nodes = 2;
    Cluster c(opt);
    c.run([](Comm& comm) {
        if (comm.rank() == 0) {
            const double v[2] = {1.5, 2.5};
            ASSERT_TRUE(comm.send(v, 2, Datatype::float64(), 1, 0));
        } else {
            std::vector<double> big(64, -1.0);
            const RecvResult r = comm.recv(big.data(), 64, Datatype::float64(), 0, 0);
            ASSERT_TRUE(r.status);
            EXPECT_EQ(r.bytes, 16u);
            EXPECT_EQ(big[0], 1.5);
            EXPECT_EQ(big[1], 2.5);
            EXPECT_EQ(big[2], -1.0);
        }
    });
}

}  // namespace
}  // namespace scimpi::mpi
