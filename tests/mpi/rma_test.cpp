#include <gtest/gtest.h>

#include <cstring>
#include <numeric>
#include <vector>

#include "mpi/comm.hpp"
#include "mpi/rma/window.hpp"

namespace scimpi::mpi {
namespace {

ClusterOptions nodes(int n) {
    ClusterOptions opt;
    opt.nodes = n;
    return opt;
}

/// Create a window over alloc_mem (SCI-shared) of `bytes` per rank.
std::shared_ptr<Win> shared_window(Comm& comm, std::size_t bytes) {
    auto mem = comm.alloc_mem(bytes);
    SCIMPI_REQUIRE(mem.is_ok(), "alloc_mem failed");
    std::memset(mem.value().data(), 0, bytes);
    return comm.win_create(mem.value().data(), bytes);
}

TEST(Rma, SharedWindowIsDetected) {
    Cluster c(nodes(2));
    c.run([](Comm& comm) {
        auto win = shared_window(comm, 4_KiB);
        EXPECT_TRUE(win->target_shared(0));
        EXPECT_TRUE(win->target_shared(1));
    });
}

TEST(Rma, PrivateWindowIsDetected) {
    Cluster c(nodes(2));
    c.run([](Comm& comm) {
        std::vector<std::byte> heap(4_KiB);
        auto win = comm.win_create(heap.data(), heap.size());
        EXPECT_FALSE(win->target_shared(comm.rank()));
        win->fence();
        win->fence();
    });
}

TEST(Rma, DirectPutVisibleAfterFence) {
    Cluster c(nodes(2));
    c.run([](Comm& comm) {
        auto win = shared_window(comm, 4_KiB);
        win->fence();
        if (comm.rank() == 0) {
            std::vector<double> data(64);
            std::iota(data.begin(), data.end(), 100.0);
            ASSERT_TRUE(win->put(data.data(), 64, Datatype::float64(), 1, 128));
        }
        win->fence();
        if (comm.rank() == 1) {
            const auto* d = reinterpret_cast<const double*>(win->local().data() + 128);
            EXPECT_EQ(d[0], 100.0);
            EXPECT_EQ(d[63], 163.0);
        }
        EXPECT_EQ(win->stats().direct_puts, comm.rank() == 0 ? 1u : 0u);
    });
}

TEST(Rma, EmulatedPutIntoPrivateWindow) {
    Cluster c(nodes(2));
    c.run([](Comm& comm) {
        std::vector<std::byte> heap(4_KiB, std::byte{0});
        auto win = comm.win_create(heap.data(), heap.size());
        win->fence();
        if (comm.rank() == 0) {
            const double v[2] = {3.5, 4.5};
            ASSERT_TRUE(win->put(v, 2, Datatype::float64(), 1, 64));
        }
        win->fence();
        if (comm.rank() == 1) {
            double out[2];
            std::memcpy(out, heap.data() + 64, sizeof out);
            EXPECT_EQ(out[0], 3.5);
            EXPECT_EQ(out[1], 4.5);
        }
        if (comm.rank() == 0) {
            EXPECT_EQ(win->stats().emulated_puts, 1u);
        }
    });
}

TEST(Rma, SmallGetUsesDirectRead) {
    Cluster c(nodes(2));
    c.run([](Comm& comm) {
        auto win = shared_window(comm, 4_KiB);
        auto* mine = reinterpret_cast<double*>(win->local().data());
        mine[0] = comm.rank() + 0.25;
        win->fence();
        double got = -1.0;
        const int peer = 1 - comm.rank();
        ASSERT_TRUE(win->get(&got, 1, Datatype::float64(), peer, 0));
        win->fence();
        EXPECT_EQ(got, peer + 0.25);
        EXPECT_EQ(win->stats().direct_gets, 1u);
        EXPECT_EQ(win->stats().remote_put_gets, 0u);
    });
}

TEST(Rma, LargeGetSwitchesToRemotePut) {
    Cluster c(nodes(2));
    c.run([](Comm& comm) {
        auto win = shared_window(comm, 64_KiB);
        auto* mine = reinterpret_cast<double*>(win->local().data());
        for (int i = 0; i < 4096; ++i) mine[i] = comm.rank() * 10000.0 + i;
        win->fence();
        std::vector<double> got(4096);
        const int peer = 1 - comm.rank();
        ASSERT_TRUE(win->get(got.data(), 4096, Datatype::float64(), peer, 0));
        win->fence();
        EXPECT_EQ(got[0], peer * 10000.0);
        EXPECT_EQ(got[4095], peer * 10000.0 + 4095);
        EXPECT_EQ(win->stats().remote_put_gets, 1u);
        EXPECT_EQ(win->stats().direct_gets, 0u);
    });
}

TEST(Rma, GetFromPrivateWindowAlwaysEmulated) {
    Cluster c(nodes(2));
    c.run([](Comm& comm) {
        std::vector<double> heap(16, comm.rank() + 1.5);
        auto win = comm.win_create(heap.data(), heap.size() * sizeof(double));
        win->fence();
        double got = 0.0;
        const int peer = 1 - comm.rank();
        ASSERT_TRUE(win->get(&got, 1, Datatype::float64(), peer, 0));  // 8 bytes,
        // below threshold, but private target memory forces emulation
        win->fence();
        EXPECT_EQ(got, peer + 1.5);
        EXPECT_EQ(win->stats().remote_put_gets, 1u);
    });
}

TEST(Rma, StridedPutMatchesSparseBenchmarkPattern) {
    Cluster c(nodes(2));
    c.run([](Comm& comm) {
        auto win = shared_window(comm, 64_KiB);
        win->fence();
        if (comm.rank() == 0) {
            // Put 8-byte elements with stride 2 (paper's sparse benchmark).
            const double v = 42.0;
            for (std::size_t off = 0; off + 8 <= 4_KiB; off += 16)
                ASSERT_TRUE(win->put(&v, 1, Datatype::float64(), 1, off));
        }
        win->fence();
        if (comm.rank() == 1) {
            const auto* d = reinterpret_cast<const double*>(win->local().data());
            EXPECT_EQ(d[0], 42.0);
            EXPECT_EQ(d[1], 0.0);  // gap untouched
            EXPECT_EQ(d[2], 42.0);
        }
    });
}

TEST(Rma, NonContiguousDatatypePut) {
    Cluster c(nodes(2));
    c.run([](Comm& comm) {
        auto win = shared_window(comm, 16_KiB);
        win->fence();
        if (comm.rank() == 0) {
            auto t = Datatype::vector(16, 2, 4, Datatype::float64());
            std::vector<double> data(static_cast<std::size_t>(t.extent()) / 8);
            std::iota(data.begin(), data.end(), 0.0);
            ASSERT_TRUE(win->put(data.data(), 1, t, 1, 0));
        }
        win->fence();
        if (comm.rank() == 1) {
            const auto* d = reinterpret_cast<const double*>(win->local().data());
            EXPECT_EQ(d[0], 0.0);
            EXPECT_EQ(d[1], 1.0);
            EXPECT_EQ(d[4], 4.0);   // second block
            EXPECT_EQ(d[2], 0.0);   // gap
        }
    });
}

TEST(Rma, AccumulateSumsAtTarget) {
    Cluster c(nodes(4));
    c.run([](Comm& comm) {
        auto win = shared_window(comm, 4_KiB);
        auto* mine = reinterpret_cast<double*>(win->local().data());
        mine[0] = 1000.0;
        win->fence();
        const double v = comm.rank() + 1.0;
        // Everyone accumulates into rank 0.
        if (comm.rank() != 0) {
            ASSERT_TRUE(win->accumulate_sum(&v, 1, 0, 0));
        }
        win->fence();
        if (comm.rank() == 0) {
            EXPECT_DOUBLE_EQ(mine[0], 1000.0 + 2 + 3 + 4);
        }
    });
}

TEST(Rma, PostStartCompleteWait) {
    Cluster c(nodes(2));
    c.run([](Comm& comm) {
        auto win = shared_window(comm, 4_KiB);
        const int peer = 1 - comm.rank();
        const int origin_group[1] = {peer};
        const int target_group[1] = {peer};
        if (comm.rank() == 1) {
            win->post(origin_group);  // expose to rank 0
            win->wait();
            const auto* d = reinterpret_cast<const double*>(win->local().data());
            EXPECT_EQ(d[0], 7.5);
        } else {
            win->start(target_group);
            const double v = 7.5;
            ASSERT_TRUE(win->put(&v, 1, Datatype::float64(), 1, 0));
            win->complete();
        }
        comm.barrier();
    });
}

TEST(Rma, LockUnlockPassiveTarget) {
    Cluster c(nodes(4));
    c.run([](Comm& comm) {
        auto win = shared_window(comm, 4_KiB);
        win->fence();
        // Everyone increments a counter in rank 0's window under the lock
        // (read-modify-write needs mutual exclusion).
        for (int iter = 0; iter < 5; ++iter) {
            win->lock(0);
            double v = 0.0;
            ASSERT_TRUE(win->get(&v, 1, Datatype::float64(), 0, 0));
            v += 1.0;
            ASSERT_TRUE(win->put(&v, 1, Datatype::float64(), 0, 0));
            win->unlock(0);
        }
        win->fence();
        if (comm.rank() == 0) {
            const auto* d = reinterpret_cast<const double*>(win->local().data());
            EXPECT_DOUBLE_EQ(d[0], 4.0 * 5.0);
        }
    });
}

TEST(Rma, PutBeyondWindowRejected) {
    Cluster c(nodes(2));
    c.run([](Comm& comm) {
        auto win = shared_window(comm, 1_KiB);
        win->fence();
        const double v = 1.0;
        const Status st = win->put(&v, 1, Datatype::float64(), 1 - comm.rank(), 1020);
        EXPECT_EQ(st.code(), Errc::invalid_argument);
        win->fence();
    });
}

TEST(Rma, LocalPutGetBypassNetwork) {
    Cluster c(nodes(2));
    c.run([](Comm& comm) {
        auto win = shared_window(comm, 4_KiB);
        win->fence();
        const double v = 5.25;
        ASSERT_TRUE(win->put(&v, 1, Datatype::float64(), comm.rank(), 8));
        double got = 0.0;
        ASSERT_TRUE(win->get(&got, 1, Datatype::float64(), comm.rank(), 8));
        EXPECT_EQ(got, 5.25);
        EXPECT_EQ(win->stats().local_ops, 2u);
        win->fence();
    });
}

TEST(Rma, DirectDisabledForcesEmulation) {
    ClusterOptions opt = nodes(2);
    opt.cfg.osc_direct = false;
    Cluster c(opt);
    c.run([](Comm& comm) {
        auto win = shared_window(comm, 4_KiB);
        win->fence();
        if (comm.rank() == 0) {
            const double v = 9.0;
            ASSERT_TRUE(win->put(&v, 1, Datatype::float64(), 1, 0));
            EXPECT_EQ(win->stats().emulated_puts, 1u);
            EXPECT_EQ(win->stats().direct_puts, 0u);
        }
        win->fence();
        if (comm.rank() == 1) {
            const auto* d = reinterpret_cast<const double*>(win->local().data());
            EXPECT_EQ(d[0], 9.0);
        }
    });
}

TEST(Rma, ManyConcurrentPutsStressFence) {
    Cluster c(nodes(8));
    c.run([](Comm& comm) {
        auto win = shared_window(comm, 64_KiB);
        win->fence();
        // All-to-all puts: rank r writes its id at slot r of every peer.
        const double v = comm.rank() * 1.0;
        for (int t = 0; t < comm.size(); ++t) {
            if (t != comm.rank()) {
                ASSERT_TRUE(win->put(&v, 1, Datatype::float64(), t,
                                     static_cast<std::size_t>(comm.rank()) * 8));
            }
        }
        win->fence();
        const auto* d = reinterpret_cast<const double*>(win->local().data());
        for (int r = 0; r < comm.size(); ++r) {
            if (r != comm.rank()) {
                EXPECT_EQ(d[r], r * 1.0) << "slot " << r;
            }
        }
    });
}


TEST(Rma, WinTestNonBlockingWait) {
    Cluster c(nodes(2));
    c.run([](Comm& comm) {
        auto win = shared_window(comm, 4_KiB);
        const int peer = 1 - comm.rank();
        const int group[1] = {peer};
        if (comm.rank() == 1) {
            win->post(group);
            // Poll with MPI_Win_test until rank 0 completes its epoch.
            int polls = 0;
            while (!win->test()) {
                comm.proc().delay(5'000);
                ++polls;
            }
            EXPECT_GT(polls, 0);  // the origin's epoch takes a while
            const auto* d = reinterpret_cast<const double*>(win->local().data());
            EXPECT_EQ(d[0], 3.25);
        } else {
            win->start(group);
            comm.proc().delay(100'000);  // keep the target polling
            const double v = 3.25;
            ASSERT_TRUE(win->put(&v, 1, Datatype::float64(), 1, 0));
            win->complete();
        }
        comm.barrier();
    });
}


TEST(Rma, AccessOutsideEpochRejected) {
    Cluster c(nodes(2));
    c.run([](Comm& comm) {
        auto win = shared_window(comm, 4_KiB);
        const double v = 1.0;
        // No fence yet: no epoch is open.
        EXPECT_EQ(win->put(&v, 1, Datatype::float64(), 1 - comm.rank(), 0).code(),
                  Errc::rma_sync_error);
        double out = 0.0;
        EXPECT_EQ(win->get(&out, 1, Datatype::float64(), 1 - comm.rank(), 0).code(),
                  Errc::rma_sync_error);
        EXPECT_EQ(win->accumulate(&v, 1, Datatype::float64(), 1 - comm.rank(), 0,
                                  Win::ReduceOp::sum)
                      .code(),
                  Errc::rma_sync_error);
        // Local access is always allowed (MPI: load/store on own window).
        EXPECT_TRUE(win->put(&v, 1, Datatype::float64(), comm.rank(), 0));
        win->fence();
        EXPECT_TRUE(win->put(&v, 1, Datatype::float64(), 1 - comm.rank(), 0));
        win->fence();
    });
}

TEST(Rma, PscwEpochOnlyCoversItsGroup) {
    Cluster c(nodes(3));
    c.run([](Comm& comm) {
        auto win = shared_window(comm, 4_KiB);
        const double v = 2.0;
        if (comm.rank() == 0) {
            const int group[1] = {1};
            win->start(group);  // access epoch covers rank 1 only
            EXPECT_TRUE(win->put(&v, 1, Datatype::float64(), 1, 0));
            EXPECT_EQ(win->put(&v, 1, Datatype::float64(), 2, 0).code(),
                      Errc::rma_sync_error);
            win->complete();
        } else if (comm.rank() == 1) {
            const int group[1] = {0};
            win->post(group);
            win->wait();
        }
        comm.barrier();
    });
}

TEST(Rma, LockOpensPassiveEpochForThatTargetOnly) {
    Cluster c(nodes(3));
    c.run([](Comm& comm) {
        auto win = shared_window(comm, 4_KiB);
        comm.barrier();
        if (comm.rank() == 0) {
            const double v = 3.0;
            win->lock(1);
            EXPECT_TRUE(win->put(&v, 1, Datatype::float64(), 1, 0));
            EXPECT_EQ(win->put(&v, 1, Datatype::float64(), 2, 0).code(),
                      Errc::rma_sync_error);
            win->unlock(1);
            EXPECT_EQ(win->put(&v, 1, Datatype::float64(), 1, 0).code(),
                      Errc::rma_sync_error);  // epoch closed again
        }
        comm.barrier();
    });
}

}  // namespace
}  // namespace scimpi::mpi
