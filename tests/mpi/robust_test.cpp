// Robustness and infrastructure tests: bit-determinism of the simulation,
// error-injection end-to-end, connection monitoring (dead links), torus
// topologies, and the DMA rendezvous path.
#include <gtest/gtest.h>

#include <cstring>
#include <numeric>
#include <vector>

#include "mpi/comm.hpp"
#include "mpi/rma/window.hpp"

namespace scimpi::mpi {
namespace {

/// A mixed workload touching p2p, collectives and one-sided communication.
double mixed_workload(const ClusterOptions& opt) {
    double checksum = 0.0;
    double finish_time = 0.0;
    Cluster c(opt);
    c.run([&](Comm& comm) {
        std::vector<double> data(4096);
        std::iota(data.begin(), data.end(), comm.rank() * 1.0);
        const int peer = comm.rank() ^ 1;
        std::vector<double> theirs(4096, 0.0);
        ASSERT_TRUE(comm.sendrecv(data.data(), 4096, Datatype::float64(), peer, 0,
                                  theirs.data(), 4096, Datatype::float64(), peer,
                                  0));
        double local = std::accumulate(theirs.begin(), theirs.end(), 0.0);
        double global = 0.0;
        ASSERT_TRUE(comm.allreduce_sum(&local, &global, 1));

        auto mem = comm.alloc_mem(1024);
        auto win = comm.win_create(mem.value().data(), 1024);
        win->fence();
        ASSERT_TRUE(win->put(&global, 1, Datatype::float64(), peer, 0));
        win->fence();
        if (comm.rank() == 0) {
            checksum = *reinterpret_cast<double*>(mem.value().data());
            finish_time = comm.wtime();
        }
        win->fence();
    });
    return checksum + finish_time * 1e9;
}

TEST(Determinism, IdenticalRunsProduceIdenticalTimesAndData) {
    ClusterOptions opt;
    opt.nodes = 4;
    const double a = mixed_workload(opt);
    const double b = mixed_workload(opt);
    EXPECT_EQ(a, b);  // bit-identical, including simulated finish time
}

TEST(Determinism, SeedChangesErrorPatternButNotResults) {
    auto retries_for = [](std::uint64_t seed, double* checksum) {
        ClusterOptions opt;
        opt.nodes = 2;
        opt.cfg.link_error_rate = 0.01;
        opt.cfg.seed = seed;
        Cluster c(opt);
        c.run([&](Comm& comm) {
            std::vector<double> mine(8192, 1.5), theirs(8192);
            ASSERT_TRUE(comm.sendrecv(mine.data(), 8192, Datatype::float64(),
                                      1 - comm.rank(), 0, theirs.data(), 8192,
                                      Datatype::float64(), 1 - comm.rank(), 0));
            if (comm.rank() == 0)
                *checksum = std::accumulate(theirs.begin(), theirs.end(), 0.0);
        });
        return c.adapter(0).stats().retries + 1000 * c.adapter(1).stats().retries;
    };
    double sum1 = 0.0, sum2 = 0.0;
    const auto r1 = retries_for(1, &sum1);
    const auto r2 = retries_for(2, &sum2);
    EXPECT_NE(r1, r2);          // the error pattern moved
    EXPECT_EQ(sum1, sum2);      // the data did not
    EXPECT_EQ(sum1, 8192 * 1.5);
}

TEST(ErrorInjection, LargeTransfersSurviveRetries) {
    ClusterOptions opt;
    opt.nodes = 2;
    opt.cfg.link_error_rate = 0.01;
    Cluster c(opt);
    c.run([](Comm& comm) {
        std::vector<double> data(1_MiB / 8);
        if (comm.rank() == 0) {
            std::iota(data.begin(), data.end(), 0.0);
            ASSERT_TRUE(comm.send(data.data(), static_cast<int>(data.size()),
                                  Datatype::float64(), 1, 0));
        } else {
            ASSERT_TRUE(comm.recv(data.data(), static_cast<int>(data.size()),
                                  Datatype::float64(), 0, 0)
                            .status);
            EXPECT_EQ(data[131071], 131071.0);
        }
    });
    EXPECT_GT(c.adapter(0).stats().retries, 10u);
}

TEST(ErrorInjection, RetriesSlowTheTransferDown) {
    auto timed = [](double rate) {
        ClusterOptions opt;
        opt.nodes = 2;
        opt.cfg.link_error_rate = rate;
        double seconds = 0.0;
        Cluster c(opt);
        c.run([&](Comm& comm) {
            std::vector<double> data(512_KiB / 8, 1.0);
            const double t0 = comm.wtime();
            if (comm.rank() == 0)
                ASSERT_TRUE(comm.send(data.data(), static_cast<int>(data.size()),
                                      Datatype::float64(), 1, 0));
            else {
                comm.recv(data.data(), static_cast<int>(data.size()),
                          Datatype::float64(), 0, 0);
                seconds = comm.wtime() - t0;
            }
        });
        return seconds;
    };
    EXPECT_GT(timed(0.05), 1.1 * timed(0.0));
}

TEST(ConnectionMonitoring, DeadLinkFailsWritesAndProbes) {
    ClusterOptions opt;
    opt.nodes = 4;
    Cluster c(opt);
    c.engine().spawn("prober", [&](sim::Process& p) {
        auto span = c.memory(1).allocate(4096);
        const auto seg = c.directory().create(1, span.value());
        auto map = c.directory().import(0, seg).value();
        const std::uint64_t v = 7;

        EXPECT_TRUE(c.adapter(0).probe_peer(p, 1));
        ASSERT_TRUE(c.adapter(0).write(p, map, 0, &v, 8));

        c.fabric().set_link_up(0, false);  // pull the cable 0 -> 1
        EXPECT_FALSE(c.adapter(0).probe_peer(p, 1));
        EXPECT_EQ(c.adapter(0).write(p, map, 0, &v, 8).code(), Errc::link_failure);
        // Reads come back over the remaining ring links 1..3, which are up,
        // but the request cannot reach node 1 in the first place... the
        // request route 0->1 is exactly link 0:
        std::uint64_t out = 0;
        EXPECT_TRUE(c.adapter(0).read(p, map, 0, &out, 8));  // return path distinct

        c.fabric().set_link_up(0, true);  // plug it back in
        EXPECT_TRUE(c.adapter(0).probe_peer(p, 1));
        EXPECT_TRUE(c.adapter(0).write(p, map, 0, &v, 8));
    });
    c.engine().run();
}

TEST(ConnectionMonitoring, DmaChecksRouteHealth) {
    ClusterOptions opt;
    opt.nodes = 2;
    Cluster c(opt);
    c.engine().spawn("p", [&](sim::Process& p) {
        auto span = c.memory(1).allocate(64_KiB);
        const auto seg = c.directory().create(1, span.value());
        auto map = c.directory().import(0, seg).value();
        std::vector<std::byte> buf(32_KiB, std::byte{1});
        c.fabric().set_link_up(0, false);
        EXPECT_EQ(c.adapter(0).dma_write(p, map, 0, buf.data(), buf.size()).code(),
                  Errc::link_failure);
    });
    c.engine().run();
}

TEST(Torus, SixteenNodeTorusAllToAll) {
    ClusterOptions opt;
    opt.nodes = 16;
    opt.torus_w = 4;  // 4x4 torus of ringlets
    opt.arena_bytes = 8_MiB;
    Cluster c(opt);
    c.run([](Comm& comm) {
        std::vector<std::uint64_t> out_data(16), in_data(16, 0);
        for (int r = 0; r < 16; ++r)
            out_data[static_cast<std::size_t>(r)] =
                static_cast<std::uint64_t>(comm.rank()) * 100 + static_cast<std::uint64_t>(r);
        ASSERT_TRUE(comm.alltoall(out_data.data(), 8, in_data.data()));
        for (int r = 0; r < 16; ++r)
            EXPECT_EQ(in_data[static_cast<std::size_t>(r)],
                      static_cast<std::uint64_t>(r) * 100 +
                          static_cast<std::uint64_t>(comm.rank()));
    });
}

TEST(Torus, RmaAcrossDimensions) {
    ClusterOptions opt;
    opt.nodes = 9;
    opt.torus_w = 3;
    opt.arena_bytes = 8_MiB;
    Cluster c(opt);
    c.run([](Comm& comm) {
        auto mem = comm.alloc_mem(1024);
        std::memset(mem.value().data(), 0, 1024);
        auto win = comm.win_create(mem.value().data(), 1024);
        win->fence();
        // Diagonal neighbour: crosses both torus dimensions.
        const int target = (comm.rank() + 4) % comm.size();
        const double v = 1000.0 + comm.rank();
        ASSERT_TRUE(win->put(&v, 1, Datatype::float64(), target,
                             static_cast<std::size_t>(comm.rank()) * 8));
        win->fence();
        const int source = (comm.rank() + comm.size() - 4) % comm.size();
        const auto* d = reinterpret_cast<const double*>(win->local().data());
        EXPECT_EQ(d[source], 1000.0 + source);
        win->fence();
    });
}

TEST(DmaRendezvous, CorrectAndFasterForLargeContiguous) {
    auto timed = [](bool use_dma) {
        ClusterOptions opt;
        opt.nodes = 2;
        opt.cfg.use_dma_rndv = use_dma;
        opt.cfg.rndv_chunk = 256_KiB;
        double seconds = 0.0;
        Cluster c(opt);
        c.run([&](Comm& comm) {
            std::vector<double> data(4_MiB / 8);
            const double t0 = comm.wtime();
            if (comm.rank() == 0) {
                std::iota(data.begin(), data.end(), 0.0);
                ASSERT_TRUE(comm.send(data.data(), static_cast<int>(data.size()),
                                      Datatype::float64(), 1, 0));
            } else {
                comm.recv(data.data(), static_cast<int>(data.size()),
                          Datatype::float64(), 0, 0);
                EXPECT_EQ(data[1000], 1000.0);
                seconds = comm.wtime() - t0;
            }
        });
        return seconds;
    };
    // DMA streams at 235 MiB/s vs the PIO path's ~160.
    EXPECT_LT(timed(true), 0.85 * timed(false));
}

TEST(DmaRendezvous, GatherModeHandlesNoncontig) {
    ClusterOptions opt;
    opt.nodes = 2;
    opt.cfg.use_dma_rndv = true;
    opt.cfg.dma_rndv_threshold = 16_KiB;
    Cluster c(opt);
    c.run([](Comm& comm) {
        // 64 KiB blocks with gaps: large enough for chained-descriptor DMA.
        auto t = Datatype::vector(8, 8192, 16384, Datatype::float64());
        const std::size_t span = static_cast<std::size_t>(t.extent()) / 8 + 16;
        std::vector<double> buf(span, -1.0);
        if (comm.rank() == 0) {
            std::iota(buf.begin(), buf.end(), 0.0);
            ASSERT_TRUE(comm.send(buf.data(), 1, t, 1, 0));
        } else {
            ASSERT_TRUE(comm.recv(buf.data(), 1, t, 0, 0).status);
            EXPECT_EQ(buf[0], 0.0);
            EXPECT_EQ(buf[8191], 8191.0);
            EXPECT_EQ(buf[8192], -1.0);  // gap
            EXPECT_EQ(buf[16384], 16384.0);
        }
    });
    EXPECT_GT(c.adapter(0).stats().dma_bytes, 0u);
}

TEST(DmaRendezvous, SmallChunksStayOnPio) {
    ClusterOptions opt;
    opt.nodes = 2;
    opt.cfg.use_dma_rndv = true;
    opt.cfg.dma_rndv_threshold = 1_MiB;  // nothing qualifies
    Cluster c(opt);
    c.run([](Comm& comm) {
        std::vector<double> data(64_KiB / 8, 2.0);
        if (comm.rank() == 0)
            ASSERT_TRUE(comm.send(data.data(), static_cast<int>(data.size()),
                                  Datatype::float64(), 1, 0));
        else
            ASSERT_TRUE(comm.recv(data.data(), static_cast<int>(data.size()),
                                  Datatype::float64(), 0, 0)
                            .status);
    });
    EXPECT_EQ(c.adapter(0).stats().dma_bytes, 0u);
}

}  // namespace
}  // namespace scimpi::mpi
