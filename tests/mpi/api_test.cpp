// Tests for the extended user-facing API: explicit pack/unpack, probe,
// sendrecv_replace, gather/scatter/alltoall, subarray/indexed_block types
// and generalized accumulate.
#include <gtest/gtest.h>

#include <array>
#include <cstring>
#include <numeric>
#include <vector>

#include "mpi/comm.hpp"
#include "mpi/rma/window.hpp"

namespace scimpi::mpi {
namespace {

ClusterOptions nodes(int n) {
    ClusterOptions opt;
    opt.nodes = n;
    return opt;
}

TEST(PackApi, RoundTripContiguousAndStrided) {
    Cluster c(nodes(1));
    c.run([](Comm& comm) {
        std::vector<double> data(64);
        std::iota(data.begin(), data.end(), 0.0);
        auto vec = Datatype::vector(8, 2, 4, Datatype::float64());

        std::vector<std::byte> buf(comm.pack_size(16, Datatype::float64()) +
                                   comm.pack_size(1, vec));
        std::size_t pos = 0;
        ASSERT_TRUE(comm.pack(data.data(), 16, Datatype::float64(), buf, &pos));
        ASSERT_TRUE(comm.pack(data.data(), 1, vec, buf, &pos));
        EXPECT_EQ(pos, buf.size());

        std::vector<double> out1(16, -1.0);
        std::vector<double> out2(32, -1.0);
        pos = 0;
        ASSERT_TRUE(comm.unpack(buf, &pos, out1.data(), 16, Datatype::float64()));
        ASSERT_TRUE(comm.unpack(buf, &pos, out2.data(), 1, vec));
        for (int i = 0; i < 16; ++i) EXPECT_EQ(out1[static_cast<std::size_t>(i)], i);
        // vector blocks: elements 0,1 then 4,5 then 8,9 ...
        EXPECT_EQ(out2[0], 0.0);
        EXPECT_EQ(out2[1], 1.0);
        EXPECT_EQ(out2[4], 4.0);
        EXPECT_EQ(out2[2], -1.0);  // gap untouched
    });
}

TEST(PackApi, OverflowReportsTruncated) {
    Cluster c(nodes(1));
    c.run([](Comm& comm) {
        std::vector<double> data(8, 1.0);
        std::vector<std::byte> buf(32);  // too small for 64 bytes
        std::size_t pos = 0;
        EXPECT_EQ(comm.pack(data.data(), 8, Datatype::float64(), buf, &pos).code(),
                  Errc::truncated);
        EXPECT_EQ(pos, 0u);
    });
}

TEST(PackApi, PackedDataIsSendable) {
    Cluster c(nodes(2));
    c.run([](Comm& comm) {
        auto vec = Datatype::vector(16, 1, 2, Datatype::float64());
        if (comm.rank() == 0) {
            std::vector<double> data(32);
            std::iota(data.begin(), data.end(), 0.0);
            std::vector<std::byte> buf(comm.pack_size(1, vec));
            std::size_t pos = 0;
            ASSERT_TRUE(comm.pack(data.data(), 1, vec, buf, &pos));
            ASSERT_TRUE(comm.send(buf.data(), static_cast<int>(buf.size()),
                                  Datatype::byte_(), 1, 0));
        } else {
            // Receive the packed stream and unpack with the same layout.
            std::vector<std::byte> buf(16 * 8);
            ASSERT_TRUE(comm.recv(buf.data(), static_cast<int>(buf.size()),
                                  Datatype::byte_(), 0, 0)
                            .status);
            std::vector<double> out(32, -1.0);
            std::size_t pos = 0;
            ASSERT_TRUE(comm.unpack(buf, &pos, out.data(), 1, vec));
            EXPECT_EQ(out[0], 0.0);
            EXPECT_EQ(out[2], 2.0);
            EXPECT_EQ(out[1], -1.0);
        }
    });
}

TEST(Probe, BlockingProbeReportsEnvelope) {
    Cluster c(nodes(2));
    c.run([](Comm& comm) {
        if (comm.rank() == 0) {
            std::vector<double> data(100, 3.0);
            ASSERT_TRUE(comm.send(data.data(), 100, Datatype::float64(), 1, 42));
        } else {
            const RecvResult info = comm.probe(0, 42);
            EXPECT_EQ(info.bytes, 800u);
            EXPECT_EQ(info.source, 0);
            EXPECT_EQ(info.tag, 42);
            // Size the buffer from the probe, then receive.
            std::vector<double> buf(info.bytes / 8);
            ASSERT_TRUE(
                comm.recv(buf.data(), static_cast<int>(buf.size()),
                          Datatype::float64(), info.source, info.tag)
                    .status);
            EXPECT_EQ(buf[99], 3.0);
        }
    });
}

TEST(Probe, IprobeNonBlocking) {
    Cluster c(nodes(2));
    c.run([](Comm& comm) {
        if (comm.rank() == 1) {
            EXPECT_FALSE(comm.iprobe(0, 7));  // nothing sent yet
            comm.barrier();
            // Wait until the message arrives.
            RecvResult info;
            while (!comm.iprobe(0, 7, &info)) comm.proc().delay(1000);
            EXPECT_EQ(info.bytes, 4u);
            int v = 0;
            ASSERT_TRUE(comm.recv(&v, 1, Datatype::int32(), 0, 7).status);
            EXPECT_EQ(v, 99);
        } else {
            comm.barrier();
            const int v = 99;
            ASSERT_TRUE(comm.send(&v, 1, Datatype::int32(), 1, 7));
        }
    });
}

TEST(SendrecvReplace, RotatesAroundRing) {
    Cluster c(nodes(4));
    c.run([](Comm& comm) {
        std::vector<double> buf(64, comm.rank() * 1.0);
        const int right = (comm.rank() + 1) % comm.size();
        const int left = (comm.rank() + comm.size() - 1) % comm.size();
        ASSERT_TRUE(comm.sendrecv_replace(buf.data(), 64, Datatype::float64(), right,
                                          3, left, 3));
        for (const double v : buf) EXPECT_EQ(v, left * 1.0);
    });
}

TEST(Coll2, GatherCollectsAtRoot) {
    Cluster c(nodes(5));
    c.run([](Comm& comm) {
        const std::uint64_t mine = 7000u + static_cast<std::uint64_t>(comm.rank());
        std::vector<std::uint64_t> all(static_cast<std::size_t>(comm.size()), 0);
        ASSERT_TRUE(comm.gather(&mine, sizeof mine, all.data(), 2));
        if (comm.rank() == 2) {
            for (int r = 0; r < comm.size(); ++r)
                EXPECT_EQ(all[static_cast<std::size_t>(r)],
                          7000u + static_cast<std::uint64_t>(r));
        }
    });
}

TEST(Coll2, ScatterDistributesFromRoot) {
    Cluster c(nodes(4));
    c.run([](Comm& comm) {
        std::vector<double> all(static_cast<std::size_t>(comm.size()));
        if (comm.rank() == 1)
            for (int r = 0; r < comm.size(); ++r)
                all[static_cast<std::size_t>(r)] = 50.0 + r;
        double mine = -1.0;
        ASSERT_TRUE(comm.scatter(all.data(), sizeof(double), &mine, 1));
        EXPECT_EQ(mine, 50.0 + comm.rank());
    });
}

TEST(Coll2, AlltoallTransposes) {
    Cluster c(nodes(4));
    c.run([](Comm& comm) {
        std::vector<int> out_data(4), in_data(4, -1);
        for (int r = 0; r < 4; ++r)
            out_data[static_cast<std::size_t>(r)] = comm.rank() * 10 + r;
        ASSERT_TRUE(comm.alltoall(out_data.data(), sizeof(int), in_data.data()));
        // in_data[r] is what rank r addressed to us.
        for (int r = 0; r < 4; ++r)
            EXPECT_EQ(in_data[static_cast<std::size_t>(r)], r * 10 + comm.rank());
    });
}

TEST(Subarray, ExtractsInterior2D) {
    // 8x8 array of doubles, 4x2 slab starting at (2,3).
    const std::array<int, 2> sizes{8, 8};
    const std::array<int, 2> subsizes{4, 2};
    const std::array<int, 2> starts{2, 3};
    auto t = Datatype::subarray(sizes, subsizes, starts, Datatype::float64());
    EXPECT_EQ(t.size(), 4u * 2 * 8);
    EXPECT_EQ(t.extent(), 8 * 8 * 8);  // full array pitch
    t.commit();

    std::vector<double> grid(64);
    std::iota(grid.begin(), grid.end(), 0.0);
    FFPacker p(t, 1, grid.data());
    std::vector<std::byte> out(t.size());
    p.pack(0, out.size(), out.data());
    const auto* d = reinterpret_cast<const double*>(out.data());
    // Row-major: rows 2..5, columns 3..4.
    int k = 0;
    for (int y = 2; y < 6; ++y)
        for (int x = 3; x < 5; ++x) EXPECT_EQ(d[k++], y * 8.0 + x);
}

TEST(Subarray, HaloColumnExchange) {
    Cluster c(nodes(2));
    c.run([](Comm& comm) {
        constexpr int N = 16;
        const std::array<int, 2> sizes{N, N};
        const std::array<int, 2> col_sub{N, 1};
        const std::array<int, 2> east{0, N - 1};
        const std::array<int, 2> west{0, 0};
        auto east_col = Datatype::subarray(sizes, col_sub, east, Datatype::float64());
        auto west_col = Datatype::subarray(sizes, col_sub, west, Datatype::float64());
        std::vector<double> grid(N * N, comm.rank() + 1.0);
        if (comm.rank() == 0) {
            ASSERT_TRUE(comm.send(grid.data(), 1, east_col, 1, 0));
        } else {
            ASSERT_TRUE(comm.recv(grid.data(), 1, west_col, 0, 0).status);
            for (int y = 0; y < N; ++y) {
                EXPECT_EQ(grid[static_cast<std::size_t>(y) * N], 1.0);      // received
                EXPECT_EQ(grid[static_cast<std::size_t>(y) * N + 1], 2.0);  // own
            }
        }
    });
}

TEST(IndexedBlock, EqualBlocksAtDispls) {
    const std::array<int, 3> displs{0, 5, 9};
    auto t = Datatype::indexed_block(2, displs, Datatype::int32());
    EXPECT_EQ(t.size(), 3u * 2 * 4);
    std::vector<std::pair<std::ptrdiff_t, std::size_t>> blocks;
    t.for_each_block(0, 1, [&](std::ptrdiff_t off, std::size_t len) {
        blocks.emplace_back(off, len);
    });
    const std::vector<std::pair<std::ptrdiff_t, std::size_t>> expected{
        {0, 8}, {20, 8}, {36, 8}};
    EXPECT_EQ(blocks, expected);
}

TEST(Accumulate, AllOpsApplyAtTarget) {
    Cluster c(nodes(2));
    c.run([](Comm& comm) {
        auto mem = comm.alloc_mem(64);
        auto* vals = reinterpret_cast<double*>(mem.value().data());
        for (int i = 0; i < 8; ++i) vals[i] = 10.0;
        auto win = comm.win_create(mem.value().data(), 64);
        win->fence();
        if (comm.rank() == 0) {
            const double v[1] = {4.0};
            ASSERT_TRUE(win->accumulate(v, 1, Datatype::float64(), 1, 0,
                                        Win::ReduceOp::sum));
            ASSERT_TRUE(win->accumulate(v, 1, Datatype::float64(), 1, 8,
                                        Win::ReduceOp::prod));
            ASSERT_TRUE(win->accumulate(v, 1, Datatype::float64(), 1, 16,
                                        Win::ReduceOp::min));
            ASSERT_TRUE(win->accumulate(v, 1, Datatype::float64(), 1, 24,
                                        Win::ReduceOp::max));
            ASSERT_TRUE(win->accumulate(v, 1, Datatype::float64(), 1, 32,
                                        Win::ReduceOp::replace));
        }
        win->fence();
        if (comm.rank() == 1) {
            EXPECT_DOUBLE_EQ(vals[0], 14.0);  // sum
            EXPECT_DOUBLE_EQ(vals[1], 40.0);  // prod
            EXPECT_DOUBLE_EQ(vals[2], 4.0);   // min
            EXPECT_DOUBLE_EQ(vals[3], 10.0);  // max
            EXPECT_DOUBLE_EQ(vals[4], 4.0);   // replace
        }
        win->fence();
    });
}

TEST(Accumulate, NonContiguousLayout) {
    Cluster c(nodes(2));
    c.run([](Comm& comm) {
        auto mem = comm.alloc_mem(256);
        auto* vals = reinterpret_cast<double*>(mem.value().data());
        for (int i = 0; i < 32; ++i) vals[i] = 1.0;
        auto win = comm.win_create(mem.value().data(), 256);
        win->fence();
        if (comm.rank() == 0) {
            // Every second double: vector(4, 1, 2).
            auto t = Datatype::vector(4, 1, 2, Datatype::float64());
            const double v[7] = {2, 0, 3, 0, 4, 0, 5};  // strided source view
            ASSERT_TRUE(win->accumulate(v, 1, t, 1, 0, Win::ReduceOp::sum));
        }
        win->fence();
        if (comm.rank() == 1) {
            EXPECT_DOUBLE_EQ(vals[0], 3.0);  // 1 + 2
            EXPECT_DOUBLE_EQ(vals[1], 1.0);  // gap untouched
            EXPECT_DOUBLE_EQ(vals[2], 4.0);  // 1 + 3
            EXPECT_DOUBLE_EQ(vals[4], 5.0);
            EXPECT_DOUBLE_EQ(vals[6], 6.0);
        }
        win->fence();
    });
}

TEST(Accumulate, LocalTargetShortCircuit) {
    Cluster c(nodes(2));
    c.run([](Comm& comm) {
        auto mem = comm.alloc_mem(16);
        auto* vals = reinterpret_cast<double*>(mem.value().data());
        vals[0] = 5.0;
        auto win = comm.win_create(mem.value().data(), 16);
        win->fence();
        const double v = 2.5;
        ASSERT_TRUE(win->accumulate(&v, 1, Datatype::float64(), comm.rank(), 0,
                                    Win::ReduceOp::sum));
        EXPECT_DOUBLE_EQ(vals[0], 7.5);  // applied immediately, locally
        win->fence();
    });
}

}  // namespace
}  // namespace scimpi::mpi
