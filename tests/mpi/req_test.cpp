// Pinned tests for the request engine (src/mpi/req/): MPI completion
// semantics (Wait/Test/Waitany/Testsome over invalid, inactive and finished
// handles), persistent-request reuse, nonblocking collectives against their
// blocking counterparts, the achieved-overlap profiler metric, and teardown
// with requests still live at Cluster shutdown.
#include <gtest/gtest.h>

#include <cstring>
#include <numeric>
#include <vector>

#include "mpi/comm.hpp"

namespace scimpi::mpi {
namespace {

ClusterOptions nodes(int n) {
    ClusterOptions opt;
    opt.nodes = n;
    return opt;
}

TEST(Req, InvalidRequestBehavesLikeRequestNull) {
    Cluster c(nodes(2));
    c.run([](Comm& comm) {
        Request null_req;
        EXPECT_FALSE(null_req.valid());
        EXPECT_TRUE(null_req.complete());
        EXPECT_TRUE(comm.wait(null_req).is_ok());
        Status st;
        EXPECT_TRUE(comm.test(null_req, &st));
        EXPECT_TRUE(st.is_ok());
    });
}

TEST(Req, WaitOnInactivePersistentReturnsImmediately) {
    Cluster c(nodes(2));
    c.run([](Comm& comm) {
        const auto t = Datatype::int32();
        int v = comm.rank() == 0 ? 77 : 0;
        const int peer = 1 - comm.rank();
        Request req = comm.rank() == 0 ? comm.send_init(&v, 1, t, peer, 3)
                                       : comm.recv_init(&v, 1, t, peer, 3);
        EXPECT_TRUE(req.persistent());
        EXPECT_FALSE(req.active());
        // Never started: Wait must not block and must report success.
        const double t0 = comm.wtime();
        EXPECT_TRUE(comm.wait(req).is_ok());
        EXPECT_EQ(comm.wtime(), t0);
        EXPECT_TRUE(comm.test(req));
        // Now actually run one round so the cluster tears down clean.
        comm.start(req);
        EXPECT_TRUE(req.active());
        EXPECT_TRUE(comm.wait(req).is_ok());
        EXPECT_FALSE(req.active());  // back to inactive, ready to restart
        if (comm.rank() == 1) EXPECT_EQ(v, 77);
        // And inactive again: Wait is again a no-op.
        EXPECT_TRUE(comm.wait(req).is_ok());
    });
}

TEST(Req, TestsomeWithNoCompletionsIsEmpty) {
    Cluster c(nodes(2));
    c.run([](Comm& comm) {
        const auto t = Datatype::int32();
        if (comm.rank() == 0) {
            int v = 0;
            std::vector<Request> reqs = {comm.irecv(&v, 1, t, 1, 9)};
            // The sender is parked for 100us: nothing can have completed yet.
            EXPECT_TRUE(comm.test_some(reqs).empty());
            EXPECT_TRUE(comm.wait_all(reqs).is_ok());
            EXPECT_EQ(v, 123);
            EXPECT_EQ(comm.recv_result(reqs[0]).source, 1);
            // Every request finalized: testsome has nothing active to report.
            EXPECT_TRUE(comm.test_some(reqs).empty());
        } else {
            comm.proc().delay(100_us);
            const int v = 123;
            ASSERT_TRUE(comm.send(&v, 1, t, 0, 9));
        }
    });
}

TEST(Req, WaitanyReturnsMinusOneWhenNoneActive) {
    Cluster c(nodes(2));
    c.run([](Comm& comm) {
        std::vector<Request> reqs(3);  // all invalid
        EXPECT_EQ(comm.wait_any(reqs), -1);
    });
}

TEST(Req, WaitanyPicksEarliestThenRemaining) {
    Cluster c(nodes(2));
    c.run([](Comm& comm) {
        const auto t = Datatype::int32();
        if (comm.rank() == 0) {
            int a = 0;
            int b = 0;
            std::vector<Request> reqs = {comm.irecv(&a, 1, t, 1, 1),
                                         comm.irecv(&b, 1, t, 1, 2)};
            const int first = comm.wait_any(reqs);
            EXPECT_EQ(first, 0);  // tag 1 is sent long before tag 2
            EXPECT_EQ(a, 10);
            const int second = comm.wait_any(reqs);
            EXPECT_EQ(second, 1);
            EXPECT_EQ(b, 20);
            EXPECT_EQ(comm.wait_any(reqs), -1);  // both finalized now
        } else {
            const int a = 10;
            const int b = 20;
            ASSERT_TRUE(comm.send(&a, 1, t, 0, 1));
            comm.proc().delay(200_us);
            ASSERT_TRUE(comm.send(&b, 1, t, 0, 2));
        }
    });
}

TEST(Req, NonPersistentStatusIsSticky) {
    Cluster c(nodes(2));
    c.run([](Comm& comm) {
        const auto t = Datatype::int32();
        const int peer = 1 - comm.rank();
        int out = comm.rank();
        int in = -1;
        Request reqs[2] = {comm.irecv(&in, 1, t, peer, 4),
                          comm.isend(&out, 1, t, peer, 4)};
        ASSERT_TRUE(comm.wait_all(reqs));
        EXPECT_EQ(in, peer);
        // Finalized handles stay queryable: repeated Wait/Test are no-ops
        // that return the recorded status.
        EXPECT_TRUE(comm.wait(reqs[0]).is_ok());
        EXPECT_TRUE(comm.test(reqs[1]));
        EXPECT_TRUE(reqs[0].complete());
        EXPECT_FALSE(reqs[0].active());
    });
}

TEST(Req, PersistentRingReusesFrozenBuffers) {
    Cluster c(nodes(4));
    c.run([](Comm& comm) {
        const auto t = Datatype::float64();
        const int right = (comm.rank() + 1) % comm.size();
        const int left = (comm.rank() + comm.size() - 1) % comm.size();
        std::vector<double> sbuf(64);
        std::vector<double> rbuf(64);
        std::vector<Request> reqs = {
            comm.recv_init(rbuf.data(), 64, t, left, 6),
            comm.send_init(sbuf.data(), 64, t, right, 6),
        };
        for (int it = 0; it < 5; ++it) {
            // New payload in the same frozen buffer each round.
            std::fill(sbuf.begin(), sbuf.end(), comm.rank() * 100.0 + it);
            comm.start_all(reqs);
            ASSERT_TRUE(comm.wait_all(reqs));
            for (const double v : rbuf) ASSERT_EQ(v, left * 100.0 + it);
        }
    });
}

TEST(Req, IbarrierCompletes) {
    Cluster c(nodes(4));
    c.run([](Comm& comm) {
        // Stagger the entries: the barrier still has to hold everyone.
        comm.proc().delay(static_cast<SimTime>(comm.rank()) * 10_us);
        const double entered = comm.wtime();
        Request r = comm.ibarrier();
        ASSERT_TRUE(comm.wait(r).is_ok());
        // Nobody leaves before the last rank (rank 3) entered.
        EXPECT_GE(comm.wtime(), 30e-6);
        EXPECT_GE(comm.wtime(), entered);
    });
}

TEST(Req, IbcastMatchesBlockingBcast) {
    Cluster c(nodes(4));
    c.run([](Comm& comm) {
        std::vector<double> nb(256, -1.0);
        std::vector<double> bl(256, -1.0);
        if (comm.rank() == 1)
            for (std::size_t i = 0; i < nb.size(); ++i)
                nb[i] = bl[i] = static_cast<double>(i) + 0.5;
        Request r = comm.ibcast(nb.data(), nb.size() * sizeof(double), 1);
        ASSERT_TRUE(comm.wait(r).is_ok());
        ASSERT_TRUE(comm.bcast(bl.data(), 256, Datatype::float64(), 1));
        EXPECT_EQ(nb, bl);
    });
}

TEST(Req, IallreduceMatchesBlockingAllreduce) {
    Cluster c(nodes(4));
    c.run([](Comm& comm) {
        std::vector<double> in(97);
        std::iota(in.begin(), in.end(), static_cast<double>(comm.rank()));
        std::vector<double> nb(97, 0.0);
        std::vector<double> bl(97, 0.0);
        Request r = comm.iallreduce_sum(in.data(), nb.data(), 97);
        ASSERT_TRUE(comm.wait(r).is_ok());
        ASSERT_TRUE(comm.allreduce_sum(in.data(), bl.data(), 97));
        EXPECT_EQ(nb, bl);
    });
}

TEST(Req, IallgatherMatchesBlockingAllgather) {
    Cluster c(nodes(4));
    c.run([](Comm& comm) {
        const std::size_t each = 512;
        std::vector<std::byte> in(each, static_cast<std::byte>(comm.rank() + 1));
        std::vector<std::byte> nb(each * 4);
        std::vector<std::byte> bl(each * 4);
        Request r = comm.iallgather(in.data(), each, nb.data());
        ASSERT_TRUE(comm.wait(r).is_ok());
        ASSERT_TRUE(comm.allgather(in.data(), each, bl.data()));
        EXPECT_EQ(nb, bl);
    });
}

TEST(Req, ConcurrentNbcSchedulesDoNotCrossMatch) {
    Cluster c(nodes(4));
    c.run([](Comm& comm) {
        std::vector<double> in(32, static_cast<double>(comm.rank()));
        std::vector<double> sum(32, 0.0);
        std::vector<std::byte> gin(64, static_cast<std::byte>(comm.rank()));
        std::vector<std::byte> gout(64 * 4);
        // Two schedules in flight at once on the same communicator: their
        // per-sequence tag bases keep the rounds apart.
        std::vector<Request> reqs = {comm.iallreduce_sum(in.data(), sum.data(), 32),
                                     comm.iallgather(gin.data(), 64, gout.data())};
        ASSERT_TRUE(comm.wait_all(reqs));
        for (const double v : sum) EXPECT_EQ(v, 0.0 + 1.0 + 2.0 + 3.0);
        for (int rk = 0; rk < 4; ++rk)
            for (int i = 0; i < 64; ++i)
                EXPECT_EQ(gout[static_cast<std::size_t>(rk * 64 + i)],
                          static_cast<std::byte>(rk));
    });
}

TEST(Req, OverlapRatioIsMeasuredUnderAsyncProgress) {
    ClusterOptions opt = nodes(2);
    opt.profile = true;
    opt.collect_stats = true;
    opt.async_progress = true;
    Cluster c(opt);
    c.run([](Comm& comm) {
        const int n = static_cast<int>(128_KiB / sizeof(double));  // rendezvous
        const int peer = 1 - comm.rank();
        std::vector<double> sbuf(static_cast<std::size_t>(n), 1.0);
        std::vector<double> rbuf(static_cast<std::size_t>(n), 0.0);
        for (int it = 0; it < 3; ++it) {
            Request reqs[2] = {
                comm.irecv(rbuf.data(), n, Datatype::float64(), peer, it),
                comm.isend(sbuf.data(), n, Datatype::float64(), peer, it),
            };
            comm.proc().delay(2_ms);  // plenty of compute to hide the transfer
            ASSERT_TRUE(comm.wait_all(reqs));
        }
    });
    const obs::RunReport rep = c.stats_report();
    ASSERT_EQ(rep.profiles.size(), 2u);
    for (const auto& p : rep.profiles) {
        EXPECT_GT(p.overlap_ops, 0u);
        EXPECT_GT(p.comm_window_ns, 0u);
        // The transfer fits entirely under the 2ms compute slab: nearly the
        // whole communication window must have been hidden.
        EXPECT_GT(p.overlap_ns, p.comm_window_ns / 2);
    }
}

TEST(Req, TeardownWithLiveRequestsDoesNotHangOrLeak) {
    Cluster c(nodes(2));
    c.run([](Comm& comm) {
        const auto t = Datatype::int32();
        if (comm.rank() == 0) {
            // A receive nobody ever matches and a persistent send never
            // started: both are still live when the rank returns. Shutdown
            // must neither hang nor leak (the ASan preset covers the leak).
            static int sink = 0;
            static int src = 41;
            Request orphan = comm.irecv(&sink, 1, t, 1, 99);
            Request inert = comm.send_init(&src, 1, t, 1, 98);
            EXPECT_TRUE(orphan.active());
            EXPECT_FALSE(inert.active());
        }
    });
    EXPECT_EQ(c.rank_state(0).live_recv_count(), 1u);
    EXPECT_EQ(c.rank_state(0).live_send_count(), 0u);
}

}  // namespace
}  // namespace scimpi::mpi
