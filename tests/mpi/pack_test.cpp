#include <gtest/gtest.h>

#include <array>
#include <cstring>
#include <numeric>
#include <vector>

#include "common/rng.hpp"
#include "common/units.hpp"
#include "mpi/datatype/pack_ff.hpp"
#include "mpi/datatype/pack_generic.hpp"

namespace scimpi::mpi {
namespace {

std::vector<std::byte> numbered(std::size_t n) {
    std::vector<std::byte> v(n);
    for (std::size_t i = 0; i < n; ++i)
        v[i] = static_cast<std::byte>((i * 131 + 7) & 0xff);
    return v;
}

/// Committed copy of a type.
Datatype committed(Datatype t) {
    t.commit();
    return t;
}

/// Pack everything with the given packer type in one call.
template <typename Packer>
std::vector<std::byte> pack_all(const Datatype& t, int count, void* buf) {
    Packer p(t, count, buf);
    std::vector<std::byte> out(p.total_bytes());
    p.pack(0, out.size(), out.data());
    return out;
}

TEST(PackGeneric, ContiguousTypeIsMemcpy) {
    auto t = committed(Datatype::contiguous(64, Datatype::float64()));
    auto buf = numbered(t.size());
    const auto out = pack_all<GenericPacker>(t, 1, buf.data());
    EXPECT_EQ(out, buf);
}

TEST(PackGeneric, VectorGathersBlocks) {
    auto t = committed(Datatype::vector(3, 1, 2, Datatype::float64()));
    auto buf = numbered(48);  // blocks at 0, 16, 32
    const auto out = pack_all<GenericPacker>(t, 1, buf.data());
    ASSERT_EQ(out.size(), 24u);
    EXPECT_EQ(std::memcmp(out.data(), buf.data() + 0, 8), 0);
    EXPECT_EQ(std::memcmp(out.data() + 8, buf.data() + 16, 8), 0);
    EXPECT_EQ(std::memcmp(out.data() + 16, buf.data() + 32, 8), 0);
}

TEST(PackGeneric, UnpackScattersBack) {
    auto t = committed(Datatype::vector(4, 2, 3, Datatype::int32()));
    auto original = numbered(t.extent() > 0 ? static_cast<std::size_t>(t.extent()) : 0);
    auto packed = pack_all<GenericPacker>(t, 1, original.data());

    std::vector<std::byte> restored(original.size(), std::byte{0});
    GenericPacker up(t, 1, restored.data());
    up.unpack(0, packed.size(), packed.data());
    // Data bytes equal; gap bytes stay zero.
    t.for_each_block(0, 1, [&](std::ptrdiff_t off, std::size_t len) {
        EXPECT_EQ(std::memcmp(restored.data() + off, original.data() + off, len), 0);
    });
}

TEST(PackFF, MatchesGenericOnSingleLeafTypes) {
    // Single-leaf types: leaf-major == canonical order, streams must agree.
    for (const int blocklen : {1, 2, 5}) {
        for (const int count : {1, 7, 32}) {
            auto t = committed(Datatype::vector(count, blocklen, blocklen * 2 + 1,
                                                Datatype::float64()));
            auto buf = numbered(static_cast<std::size_t>(t.extent()) * 2);
            const auto g = pack_all<GenericPacker>(t, 2, buf.data());
            const auto f = pack_all<FFPacker>(t, 2, buf.data());
            EXPECT_EQ(g, f) << "blocklen=" << blocklen << " count=" << count;
        }
    }
}

TEST(PackFF, LeafMajorOrderForStructTypes) {
    // struct {int32 @0, int32 @8} x 2 via hvector: ff packs all first
    // members, then all second members.
    const std::array<int, 2> lens{1, 1};
    const std::array<std::ptrdiff_t, 2> displs{0, 8};
    const std::array<Datatype, 2> types{Datatype::int32(), Datatype::int32()};
    auto s = Datatype::resized(Datatype::structure(lens, displs, types), 0, 16);
    auto t = committed(Datatype::hvector(2, 1, 16, s));
    auto buf = numbered(32);
    const auto f = pack_all<FFPacker>(t, 1, buf.data());
    ASSERT_EQ(f.size(), 16u);
    EXPECT_EQ(std::memcmp(f.data() + 0, buf.data() + 0, 4), 0);    // m0 of inst0
    EXPECT_EQ(std::memcmp(f.data() + 4, buf.data() + 16, 4), 0);   // m0 of inst1
    EXPECT_EQ(std::memcmp(f.data() + 8, buf.data() + 8, 4), 0);    // m1 of inst0
    EXPECT_EQ(std::memcmp(f.data() + 12, buf.data() + 24, 4), 0);  // m1 of inst1
    // And the generic stream differs (canonical order) — this is why the
    // protocol layer negotiates the packing mode.
    const auto g = pack_all<GenericPacker>(t, 1, buf.data());
    EXPECT_NE(f, g);
}

TEST(PackFF, RoundTripRestoresUserBuffer) {
    auto t = committed(Datatype::vector(16, 3, 5, Datatype::int32()));
    auto original = numbered(static_cast<std::size_t>(t.extent()) * 3);
    auto packed = pack_all<FFPacker>(t, 3, original.data());

    std::vector<std::byte> restored(original.size(), std::byte{0xee});
    FFPacker up(t, 3, restored.data());
    up.unpack(0, packed.size(), packed.data());
    t.for_each_block(0, 3, [&](std::ptrdiff_t off, std::size_t len) {
        EXPECT_EQ(std::memcmp(restored.data() + off, original.data() + off, len), 0);
    });
}

TEST(PackFF, ArbitrarySplitPointsProduceSameStream) {
    // The paper requires packing "starting at an arbitrary point... with no
    // constraints about the length".
    auto t = committed(Datatype::vector(9, 2, 5, Datatype::float64()));
    auto buf = numbered(static_cast<std::size_t>(t.extent()) * 2);
    const auto whole = pack_all<FFPacker>(t, 2, buf.data());

    Rng rng(2024);
    for (int trial = 0; trial < 20; ++trial) {
        FFPacker p(t, 2, buf.data());
        std::vector<std::byte> out(whole.size(), std::byte{0});
        std::size_t pos = 0;
        while (pos < out.size()) {
            const std::size_t n =
                std::min(out.size() - pos, 1 + rng.below(61));  // odd sizes
            p.pack(pos, n, out.data() + pos);
            pos += n;
        }
        EXPECT_EQ(out, whole) << "trial " << trial;
    }
}

TEST(PackFF, FindPositionSeeksMidBlock) {
    // Split inside a basic block exercises copy_split_block.
    auto t = committed(Datatype::vector(4, 1, 2, Datatype::float64()));
    auto buf = numbered(static_cast<std::size_t>(t.extent()));
    const auto whole = pack_all<FFPacker>(t, 1, buf.data());
    FFPacker p(t, 1, buf.data());
    std::vector<std::byte> out(whole.size(), std::byte{0});
    p.pack(0, 3, out.data());           // first 3 bytes of block 0
    p.pack(3, 10, out.data() + 3);      // rest of block 0 + block 1 + 1 byte
    p.pack(13, whole.size() - 13, out.data() + 13);
    EXPECT_EQ(out, whole);
}

TEST(PackFF, NegativeStrideVector) {
    auto t = committed(Datatype::hvector(4, 1, -16, Datatype::float64()));
    // Blocks at 0, -16, -32, -48 relative to start; place start at +48.
    auto buf = numbered(64);
    FFPacker p(t, 1, buf.data() + 48);
    std::vector<std::byte> out(32);
    p.pack(0, 32, out.data());
    EXPECT_EQ(std::memcmp(out.data() + 0, buf.data() + 48, 8), 0);
    EXPECT_EQ(std::memcmp(out.data() + 8, buf.data() + 32, 8), 0);
    EXPECT_EQ(std::memcmp(out.data() + 16, buf.data() + 16, 8), 0);
    EXPECT_EQ(std::memcmp(out.data() + 24, buf.data() + 0, 8), 0);
}

TEST(PackFF, WorkMetricsCountBlocksAndBytes) {
    auto t = committed(Datatype::vector(10, 1, 2, Datatype::float64()));
    auto buf = numbered(static_cast<std::size_t>(t.extent()));
    FFPacker p(t, 1, buf.data());
    std::vector<std::byte> out(80);
    const PackWork w = p.pack(0, 80, out.data());
    EXPECT_EQ(w.bytes, 80u);
    EXPECT_EQ(w.blocks, 10);
    EXPECT_EQ(w.min_block, 8u);
    EXPECT_EQ(w.max_block, 8u);
}

TEST(PackFF, SplitBlocksCountedSeparately) {
    auto t = committed(Datatype::vector(2, 1, 2, Datatype::float64()));
    auto buf = numbered(static_cast<std::size_t>(t.extent()));
    FFPacker p(t, 1, buf.data());
    std::vector<std::byte> out(16);
    const PackWork w = p.pack(4, 8, out.data());  // tail of b0 + head of b1
    EXPECT_EQ(w.blocks, 2);
    EXPECT_EQ(w.min_block, 4u);
}

TEST(PackCost, FFBeatsGenericForSmallBlocks) {
    const mem::CopyModel model(mem::pentium3_800());
    PackWork w;
    w.bytes = 256_KiB;
    w.blocks = 32768;  // 8-byte blocks
    // The recursive walker costs ~2x per block (recursive_pack_overhead vs
    // per_block_overhead); the copy itself is common to both.
    EXPECT_LT(FFPacker::cost(w, model),
              static_cast<SimTime>(0.7 * static_cast<double>(
                                             GenericPacker::cost(w, model))));
}

TEST(PackCost, ConvergeForLargeBlocks) {
    const mem::CopyModel model(mem::pentium3_800());
    PackWork w;
    w.bytes = 256_KiB;
    w.blocks = 2;  // 128 KiB blocks: copy dominates
    const double ratio =
        static_cast<double>(GenericPacker::cost(w, model)) /
        static_cast<double>(FFPacker::cost(w, model));
    EXPECT_LT(ratio, 1.05);
}

// ---------------------------------------------------------------------------
// Property sweep: random datatype trees, both packers, invariants.
// ---------------------------------------------------------------------------

Datatype random_type(Rng& rng, int depth) {
    if (depth <= 0 || rng.chance(0.35)) {
        switch (rng.below(4)) {
            case 0: return Datatype::byte_();
            case 1: return Datatype::int32();
            case 2: return Datatype::int64();
            default: return Datatype::float64();
        }
    }
    const Datatype base = random_type(rng, depth - 1);
    switch (rng.below(4)) {
        case 0:
            return Datatype::contiguous(static_cast<int>(1 + rng.below(4)), base);
        case 1: {
            const int count = static_cast<int>(1 + rng.below(5));
            const int blocklen = static_cast<int>(1 + rng.below(3));
            const int stride = blocklen + static_cast<int>(rng.below(3));  // >= blocklen
            return Datatype::vector(count, blocklen, stride, base);
        }
        case 2: {
            const std::size_t n = 1 + rng.below(3);
            std::vector<int> lens(n), displs(n);
            int cursor = 0;
            for (std::size_t i = 0; i < n; ++i) {
                lens[i] = static_cast<int>(1 + rng.below(3));
                displs[i] = cursor;
                cursor += lens[i] + static_cast<int>(rng.below(3));
            }
            return Datatype::indexed(lens, displs, base);
        }
        default: {
            // Non-overlapping struct of two members.
            const Datatype b2 = random_type(rng, depth - 1);
            const std::array<int, 2> lens{1, 1};
            const std::ptrdiff_t gap = static_cast<std::ptrdiff_t>(rng.below(16));
            const std::array<std::ptrdiff_t, 2> displs{
                0, base.lb() + base.extent() + gap - b2.lb()};
            const std::array<Datatype, 2> types{base, b2};
            return Datatype::structure(lens, displs, types);
        }
    }
}

class RandomTypeProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RandomTypeProperty, PackUnpackInvariants) {
    Rng rng(GetParam());
    Datatype t = random_type(rng, 3);
    t.commit();
    const int count = static_cast<int>(1 + rng.below(4));
    const std::size_t total = t.size() * static_cast<std::size_t>(count);
    if (total == 0) return;

    // Flat invariants.
    std::int64_t flat_total = 0;
    for (const auto& leaf : t.flat().leaves) {
        flat_total += leaf.total_bytes();
        for (const auto& s : leaf.stack) EXPECT_GT(s.count, 1);  // merged
    }
    EXPECT_EQ(static_cast<std::size_t>(flat_total), t.size());

    // Buffer with lb offset handling.
    const std::size_t span =
        static_cast<std::size_t>(t.extent()) * static_cast<std::size_t>(count) + 64;
    auto original = numbered(span);
    std::byte* base = original.data() + (t.lb() < 0 ? -t.lb() : 0);

    // ff pack-unpack round trip restores exactly the type-map bytes.
    FFPacker fp(t, count, base);
    std::vector<std::byte> stream(total);
    const PackWork w = fp.pack(0, total, stream.data());
    EXPECT_EQ(w.bytes, total);
    EXPECT_EQ(w.blocks % count, 0);

    std::vector<std::byte> scratch(span, std::byte{0});
    FFPacker fu(t, count, scratch.data() + (t.lb() < 0 ? -t.lb() : 0));
    fu.unpack(0, total, stream.data());
    std::size_t covered = 0;
    t.for_each_block(t.lb() < 0 ? -t.lb() : 0, count,
                     [&](std::ptrdiff_t off, std::size_t len) {
                         EXPECT_EQ(std::memcmp(scratch.data() + off,
                                               original.data() + off, len),
                                   0);
                         covered += len;
                     });
    EXPECT_EQ(covered, total);

    // Chunked ff pack equals whole pack.
    std::vector<std::byte> chunked(total, std::byte{0});
    std::size_t pos = 0;
    while (pos < total) {
        const std::size_t n = std::min(total - pos, 1 + rng.below(97));
        fp.pack(pos, n, chunked.data() + pos);
        pos += n;
    }
    EXPECT_EQ(chunked, stream);

    // Generic pack agrees whenever leaf-major is canonical.
    if (t.flat().leaf_major_is_canonical()) {
        GenericPacker gp(t, count, base);
        std::vector<std::byte> gstream(total);
        gp.pack(0, total, gstream.data());
        EXPECT_EQ(gstream, stream);
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomTypeProperty,
                         ::testing::Range<std::uint64_t>(1, 41));

}  // namespace
}  // namespace scimpi::mpi
