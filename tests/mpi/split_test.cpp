// Sub-communicator tests: MPI_Comm_split semantics, context isolation of
// matching and collectives, and windows created over sub-communicators.
#include <gtest/gtest.h>

#include <cstring>
#include <numeric>
#include <vector>

#include "mpi/comm.hpp"
#include "mpi/rma/window.hpp"

namespace scimpi::mpi {
namespace {

ClusterOptions nodes(int n) {
    ClusterOptions opt;
    opt.nodes = n;
    return opt;
}

TEST(Split, GroupsByColorOrderedByKey) {
    Cluster c(nodes(6));
    c.run([](Comm& world) {
        // Even/odd split; key reverses the world order within each half.
        Comm half = world.split(world.rank() % 2, -world.rank());
        EXPECT_EQ(half.size(), 3);
        // Members sorted by key: highest world rank gets local rank 0.
        const int expected_local = (world.size() - 1 - world.rank()) / 2;
        EXPECT_EQ(half.rank(), expected_local);
        EXPECT_EQ(half.world_rank(half.rank()), world.rank());
        EXPECT_NE(half.context(), world.context());
    });
}

TEST(Split, PointToPointWithinSubcomm) {
    Cluster c(nodes(4));
    c.run([](Comm& world) {
        Comm half = world.split(world.rank() / 2, world.rank());
        // Local ranks 0 and 1 in each half exchange data.
        const int peer = 1 - half.rank();
        const double mine = 100.0 * world.rank();
        double theirs = -1.0;
        ASSERT_TRUE(half.sendrecv(&mine, 1, Datatype::float64(), peer, 5, &theirs, 1,
                                  Datatype::float64(), peer, 5));
        EXPECT_EQ(theirs, 100.0 * world.rank_state().cluster()
                              .rank_state(half.world_rank(peer)).rank());
    });
}

TEST(Split, ContextsIsolateIdenticalTags) {
    // Same (source, tag) in world and sub-communicator must not cross-match.
    Cluster c(nodes(2));
    c.run([](Comm& world) {
        Comm sub = world.split(0, world.rank());
        const int tag = 9;
        if (world.rank() == 0) {
            const int a = 111, b = 222;
            ASSERT_TRUE(world.send(&a, 1, Datatype::int32(), 1, tag));
            ASSERT_TRUE(sub.send(&b, 1, Datatype::int32(), 1, tag));
        } else {
            // Receive on the sub-communicator FIRST: must get the sub message
            // even though the world message arrived earlier with the same tag.
            int v = 0;
            ASSERT_TRUE(sub.recv(&v, 1, Datatype::int32(), 0, tag).status);
            EXPECT_EQ(v, 222);
            ASSERT_TRUE(world.recv(&v, 1, Datatype::int32(), 0, tag).status);
            EXPECT_EQ(v, 111);
        }
    });
}

TEST(Split, CollectivesRunConcurrentlyPerHalf) {
    Cluster c(nodes(6));
    c.run([](Comm& world) {
        Comm half = world.split(world.rank() % 2, world.rank());
        double in = world.rank() + 1.0;
        double out = 0.0;
        ASSERT_TRUE(half.allreduce_sum(&in, &out, 1));
        // Even half: ranks 0,2,4 -> 1+3+5 = 9; odd half: 2+4+6 = 12.
        EXPECT_DOUBLE_EQ(out, world.rank() % 2 == 0 ? 9.0 : 12.0);
        half.barrier();
        // Allgather within the half.
        std::vector<double> all(3, 0.0);
        ASSERT_TRUE(half.allgather(&in, sizeof(double), all.data()));
        for (int i = 0; i < 3; ++i)
            EXPECT_DOUBLE_EQ(all[static_cast<std::size_t>(i)],
                             2.0 * i + (world.rank() % 2) + 1.0);
    });
}

TEST(Split, NestedSplits) {
    Cluster c(nodes(8));
    c.run([](Comm& world) {
        Comm half = world.split(world.rank() / 4, world.rank());
        Comm quarter = half.split(half.rank() / 2, half.rank());
        EXPECT_EQ(quarter.size(), 2);
        double in = 1.0, out = 0.0;
        ASSERT_TRUE(quarter.allreduce_sum(&in, &out, 1));
        EXPECT_DOUBLE_EQ(out, 2.0);
        // Contexts of sibling quarters differ from each other and the half.
        EXPECT_NE(quarter.context(), half.context());
        EXPECT_NE(half.context(), world.context());
    });
}

TEST(Split, WindowOverSubcomm) {
    Cluster c(nodes(4));
    c.run([](Comm& world) {
        Comm half = world.split(world.rank() / 2, world.rank());
        auto mem = world.alloc_mem(1024);
        std::memset(mem.value().data(), 0, 1024);
        auto win = half.win_create(mem.value().data(), 1024);
        win->fence();
        // Local rank 0 of each half puts into local rank 1.
        if (half.rank() == 0) {
            const double v = 500.0 + world.rank();
            ASSERT_TRUE(win->put(&v, 1, Datatype::float64(), 1, 0));
        }
        win->fence();
        if (half.rank() == 1) {
            const auto* d = reinterpret_cast<const double*>(win->local().data());
            // The putter is world rank 0 (first half) or 2 (second half).
            EXPECT_EQ(d[0], 500.0 + (world.rank() / 2) * 2);
        }
        win->fence();
    });
}

TEST(Split, EmulatedRmaOverSubcommRoutesAcks) {
    // Private (heap) windows over a sub-communicator exercise the handler
    // emulation path with world-rank routing.
    Cluster c(nodes(4));
    c.run([](Comm& world) {
        Comm half = world.split(world.rank() / 2, world.rank());
        std::vector<double> heap(16, 0.0);
        auto win = half.win_create(heap.data(), heap.size() * sizeof(double));
        win->fence();
        if (half.rank() == 0) {
            const double v = 7.0;
            ASSERT_TRUE(win->put(&v, 1, Datatype::float64(), 1, 0));
            ASSERT_TRUE(win->accumulate(&v, 1, Datatype::float64(), 1, 8,
                                        Win::ReduceOp::sum));
        }
        win->fence();
        if (half.rank() == 1) {
            EXPECT_EQ(heap[0], 7.0);
            EXPECT_EQ(heap[1], 7.0);
        }
        win->fence();
    });
}

TEST(Split, SingletonCommunicators) {
    Cluster c(nodes(3));
    c.run([](Comm& world) {
        Comm solo = world.split(world.rank(), 0);  // every rank its own comm
        EXPECT_EQ(solo.size(), 1);
        EXPECT_EQ(solo.rank(), 0);
        solo.barrier();  // must not hang
        double in = 5.0, out = 0.0;
        ASSERT_TRUE(solo.allreduce_sum(&in, &out, 1));
        EXPECT_DOUBLE_EQ(out, 5.0);
    });
}

}  // namespace
}  // namespace scimpi::mpi
